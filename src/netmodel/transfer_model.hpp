// Analytic transfer-time predictions derived from a NicProfile.
//
// Two users:
//  - the sampling subsystem validates its measured linear fits against these
//    closed forms (they must agree when no contention occurs);
//  - strategies may fall back to the analytic model when no sampling data is
//    available (e.g. a rail added after initialization).
//
// The analytic model deliberately ignores bus contention — contention is an
// emergent property of concurrent flows and is what the simulator computes;
// strategies reason about isolated-rail costs, exactly like the paper's
// boot-time sampling does.
#pragma once

#include <cstdint>
#include <utility>

#include "netmodel/nic_profile.hpp"

namespace nmad::netmodel {

class TransferModel {
 public:
  explicit TransferModel(NicProfile profile) : profile_(std::move(profile)) {}

  [[nodiscard]] const NicProfile& profile() const noexcept { return profile_; }

  /// Predicted one-way time (µs) for an isolated eager (PIO) packet of
  /// `payload_bytes`, excluding progression poll costs on other rails.
  [[nodiscard]] double eager_us(std::uint64_t payload_bytes) const noexcept;

  /// Predicted one-way time (µs) for an isolated rendezvous transfer of
  /// `payload_bytes` (control handshake + DMA), no contention.
  [[nodiscard]] double rendezvous_us(std::uint64_t payload_bytes) const noexcept;

  /// Predicted one-way time choosing the path the driver would choose.
  [[nodiscard]] double transfer_us(std::uint64_t payload_bytes) const noexcept;

  /// Marginal cost of one extra byte on the bulk path (µs/byte); the
  /// reciprocal of the DMA bandwidth. Used for split-ratio computation.
  [[nodiscard]] double bulk_cost_per_byte_us() const noexcept;

 private:
  NicProfile profile_;
};

}  // namespace nmad::netmodel
