// Performance profiles of the simulated NICs.
//
// Each profile is a LogGP-flavored parameterization of one network
// technology. The presets are calibrated to the numbers the paper reports
// for its experimental platform (§3.1): Myri-10G/MX at 2.8 µs / ~1200 MB/s
// and Quadrics QM500/Elan at 1.7 µs / ~850 MB/s, over a host I/O bus of
// ~2 GB/s. The *shape* reproduction of Figures 2–7 comes from how the
// scheduler and strategies interact with these parameters, not from the
// absolute values.
#pragma once

#include <cstdint>
#include <string>

#include "util/expected.hpp"

namespace nmad::netmodel {

struct NicProfile {
  std::string name;

  // --- Eager / PIO path (packets <= pio_threshold) -------------------------
  /// CPU time to initiate a send (descriptor setup, header write), µs.
  double send_overhead_us = 0.5;
  /// CPU time on the receiving host per delivered packet, µs.
  double recv_overhead_us = 0.5;
  /// Wire + NIC hardware latency (one way, excluding host overheads), µs.
  double wire_latency_us = 1.8;
  /// Host->NIC copy bandwidth of a PIO transfer, MB/s. The CPU is occupied
  /// for payload_bytes / pio_bandwidth during the copy.
  double pio_bandwidth_mbps = 1400.0;
  /// Largest packet sent via PIO on the eager track; larger packets use the
  /// rendezvous/DMA path. This is the paper's "PIO threshold" (§3.2): below
  /// it, transfers monopolize the CPU and cannot overlap.
  std::uint32_t pio_threshold = 8 * 1024;

  // --- Rendezvous / DMA path (packets > pio_threshold) ---------------------
  /// CPU time to program one DMA descriptor, µs (the CPU is then free).
  double dma_setup_us = 0.4;
  /// NIC link bandwidth for DMA transfers, MB/s (before bus sharing).
  double dma_bandwidth_mbps = 1280.0;
  /// Extra NIC-side latency to start a DMA once programmed, µs.
  double dma_start_us = 1.0;

  // --- Progression ----------------------------------------------------------
  /// Cost of one poll of this NIC when it has nothing to deliver, µs. Paid
  /// by the progression engine for every *other* rail it has to watch —
  /// the Fig. 6 gap between the multi-rail and Quadrics-only curves.
  double poll_cost_us = 0.4;

  /// Aggregation memcpy bandwidth (host memory copy), MB/s. Segments
  /// coalesced by an aggregating strategy pay bytes/copy_bandwidth of CPU.
  /// Not NIC-specific physically, but kept per-profile so heterogeneous
  /// hosts can be modeled; presets all use the platform's memcpy speed
  /// (cache-warm staging copies — the paper: "the overhead incurred by
  /// memory copies is very low").
  double copy_bandwidth_mbps = 5000.0;

  /// Sanity-check all parameters; returns an error naming the bad field.
  [[nodiscard]] util::Status validate() const;

  /// Predicted one-way time for a minimal (4-byte) eager packet, µs.
  /// Useful as the "latency" figure of merit; presets are calibrated so
  /// this matches the paper (2.8 µs Myri-10G, 1.7 µs Quadrics).
  [[nodiscard]] double min_latency_us() const noexcept {
    return send_overhead_us + wire_latency_us + recv_overhead_us;
  }
};

/// Preset calibrated to the paper's MX/Myri-10G measurements.
NicProfile myri10g();
/// Preset calibrated to the paper's Elan/Quadrics QM500 measurements.
NicProfile quadrics_qm500();
/// Dolphin SCI-style profile (nmad also ships a SiSCI driver); low latency,
/// modest bandwidth. Not used in the paper's figures; available for
/// extended experiments.
NicProfile dolphin_sci();
/// Myrinet-2000 / GM-2 profile (nmad's fourth driver, paper §2); the
/// previous Myricom generation — much slower than Myri-10G/MX.
NicProfile myrinet2000_gm2();
/// Commodity GigE/TCP profile, for contrast experiments.
NicProfile gige_tcp();

/// Host platform parameters shared by all NICs of one node.
struct HostProfile {
  std::string name = "opteron-1.8";
  /// Effective I/O bus capacity, MB/s. The paper's board is "theoretically
  /// able to support data transfers up to approximately 2 GB/s"; the
  /// effective ceiling is set slightly below.
  double bus_bandwidth_mbps = 1950.0;
  /// Number of CPU cores available to the progression engine for PIO
  /// (1 = the paper's implementation; >1 models its §4 future work).
  int pio_cores = 1;

  [[nodiscard]] util::Status validate() const;
};

/// Look up a preset by name ("myri10g", "quadrics", "sci", "tcp").
util::Expected<NicProfile> nic_profile_by_name(const std::string& name);

}  // namespace nmad::netmodel
