#include "netmodel/nic_profile.hpp"

#include "util/fmt.hpp"

namespace nmad::netmodel {

namespace {

util::Status require_positive(double v, const char* field) {
  if (v <= 0.0) {
    return util::make_error(
        util::sformat("NicProfile: %s must be > 0 (got %g)", field, v));
  }
  return {};
}

}  // namespace

util::Status NicProfile::validate() const {
  if (name.empty()) return util::make_error("NicProfile: empty name");
  if (auto s = require_positive(send_overhead_us, "send_overhead_us"); !s) return s;
  if (auto s = require_positive(recv_overhead_us, "recv_overhead_us"); !s) return s;
  if (auto s = require_positive(wire_latency_us, "wire_latency_us"); !s) return s;
  if (auto s = require_positive(pio_bandwidth_mbps, "pio_bandwidth_mbps"); !s) return s;
  if (auto s = require_positive(dma_setup_us, "dma_setup_us"); !s) return s;
  if (auto s = require_positive(dma_bandwidth_mbps, "dma_bandwidth_mbps"); !s) return s;
  if (auto s = require_positive(dma_start_us, "dma_start_us"); !s) return s;
  if (auto s = require_positive(copy_bandwidth_mbps, "copy_bandwidth_mbps"); !s) return s;
  if (poll_cost_us < 0.0) return util::make_error("NicProfile: poll_cost_us must be >= 0");
  if (pio_threshold == 0) return util::make_error("NicProfile: pio_threshold must be > 0");
  return {};
}

util::Status HostProfile::validate() const {
  if (bus_bandwidth_mbps <= 0.0) {
    return util::make_error("HostProfile: bus_bandwidth_mbps must be > 0");
  }
  if (pio_cores < 1) return util::make_error("HostProfile: pio_cores must be >= 1");
  return {};
}

NicProfile myri10g() {
  NicProfile p;
  p.name = "myri10g";
  // Calibration targets (paper §3.1): 2.8 µs latency, ~1200 MB/s saturated.
  // Host overheads dominate the minimal latency (per-packet request
  // handling in MX was ~1 µs per side in this era), which is what makes
  // multi-packet small messages visibly slower than aggregated ones
  // (Fig. 2a) and greedy balancing lose below the PIO threshold (Fig. 4a).
  p.send_overhead_us = 1.0;
  p.recv_overhead_us = 1.0;
  p.wire_latency_us = 0.8;   // 1.0 + 0.8 + 1.0 = 2.8 µs min latency
  p.pio_bandwidth_mbps = 900.0;
  p.pio_threshold = 8 * 1024;
  p.dma_setup_us = 0.4;
  p.dma_bandwidth_mbps = 1210.0;  // ~1200 MB/s measured at 8 MB
  p.dma_start_us = 1.0;
  p.poll_cost_us = 0.4;
  return p;
}

NicProfile quadrics_qm500() {
  NicProfile p;
  p.name = "quadrics";
  // Calibration targets (paper §3.1): 1.7 µs latency, ~850 MB/s saturated.
  p.send_overhead_us = 0.6;
  p.recv_overhead_us = 0.6;
  p.wire_latency_us = 0.5;   // 0.6 + 0.5 + 0.6 = 1.7 µs min latency
  p.pio_bandwidth_mbps = 700.0;
  p.pio_threshold = 8 * 1024;
  p.dma_setup_us = 0.4;
  p.dma_bandwidth_mbps = 858.0;   // ~850 MB/s measured at 8 MB
  p.dma_start_us = 0.8;
  p.poll_cost_us = 0.3;
  return p;
}

NicProfile dolphin_sci() {
  NicProfile p;
  p.name = "sci";
  p.send_overhead_us = 0.4;
  p.recv_overhead_us = 0.4;
  p.wire_latency_us = 0.6;   // SCI's historically very low latency
  p.pio_bandwidth_mbps = 320.0;
  p.pio_threshold = 8 * 1024;
  p.dma_setup_us = 0.5;
  p.dma_bandwidth_mbps = 340.0;
  p.dma_start_us = 1.2;
  p.poll_cost_us = 0.3;
  return p;
}

NicProfile myrinet2000_gm2() {
  NicProfile p;
  p.name = "gm2";
  // Myrinet-2000 with GM-2 era figures: ~6.5 us latency, ~245 MB/s.
  p.send_overhead_us = 2.2;
  p.recv_overhead_us = 2.2;
  p.wire_latency_us = 2.1;
  p.pio_bandwidth_mbps = 200.0;
  p.pio_threshold = 8 * 1024;
  p.dma_setup_us = 0.6;
  p.dma_bandwidth_mbps = 245.0;
  p.dma_start_us = 1.5;
  p.poll_cost_us = 0.5;
  return p;
}

NicProfile gige_tcp() {
  NicProfile p;
  p.name = "tcp";
  p.send_overhead_us = 4.0;
  p.recv_overhead_us = 4.0;
  p.wire_latency_us = 22.0;  // ~30 µs round-half latency of 2006-era GigE+TCP
  p.pio_bandwidth_mbps = 110.0;
  p.pio_threshold = 32 * 1024;  // no true RDMA; "DMA" models sendfile-style offload
  p.dma_setup_us = 2.0;
  p.dma_bandwidth_mbps = 117.0;
  p.dma_start_us = 5.0;
  p.poll_cost_us = 1.0;
  return p;
}

util::Expected<NicProfile> nic_profile_by_name(const std::string& name) {
  if (name == "myri10g") return myri10g();
  if (name == "quadrics") return quadrics_qm500();
  if (name == "sci") return dolphin_sci();
  if (name == "gm2") return myrinet2000_gm2();
  if (name == "tcp") return gige_tcp();
  return util::make_error(util::sformat(
      "unknown NIC profile '%s' (known: myri10g, quadrics, sci, gm2, tcp)",
      name.c_str()));
}

}  // namespace nmad::netmodel
