#include "netmodel/transfer_model.hpp"

#include <utility>

namespace nmad::netmodel {

double TransferModel::eager_us(std::uint64_t payload_bytes) const noexcept {
  const auto& p = profile_;
  return p.send_overhead_us +
         static_cast<double>(payload_bytes) / p.pio_bandwidth_mbps +
         p.wire_latency_us + p.recv_overhead_us;
}

double TransferModel::rendezvous_us(std::uint64_t payload_bytes) const noexcept {
  const auto& p = profile_;
  // REQ (minimal eager) + ACK (minimal eager back) + DMA programming +
  // stream + delivery notification.
  const double handshake = 2.0 * eager_us(16);
  const double dma = p.dma_setup_us + p.dma_start_us +
                     static_cast<double>(payload_bytes) / p.dma_bandwidth_mbps +
                     p.recv_overhead_us;
  return handshake + dma;
}

double TransferModel::transfer_us(std::uint64_t payload_bytes) const noexcept {
  return payload_bytes <= profile_.pio_threshold ? eager_us(payload_bytes)
                                                 : rendezvous_us(payload_bytes);
}

double TransferModel::bulk_cost_per_byte_us() const noexcept {
  return 1.0 / profile_.dma_bandwidth_mbps;
}

}  // namespace nmad::netmodel
