#include "sim/trace.hpp"

#include "util/fmt.hpp"
#include <utility>

namespace nmad::sim {

void Trace::record(TimeNs time, std::string category, std::string detail) {
  if (!enabled_) return;
  events_.push_back(TraceEvent{time, std::move(category), std::move(detail)});
}

std::vector<TraceEvent> Trace::by_category(const std::string& category) const {
  std::vector<TraceEvent> out;
  for (const auto& ev : events_) {
    if (ev.category == category) out.push_back(ev);
  }
  return out;
}

std::size_t Trace::count(const std::string& category) const {
  std::size_t n = 0;
  for (const auto& ev : events_) {
    if (ev.category == category) ++n;
  }
  return n;
}

std::string Trace::dump() const {
  std::string out;
  for (const auto& ev : events_) {
    out += util::sformat("%12.3f %-16s %s\n", ns_to_us(ev.time),
                         ev.category.c_str(), ev.detail.c_str());
  }
  return out;
}

}  // namespace nmad::sim
