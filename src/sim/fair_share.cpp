#include "sim/fair_share.hpp"

#include <algorithm>
#include <limits>
#include <utility>

#include "util/panic.hpp"

namespace nmad::sim {

namespace {
/// A flow is considered drained when less than half a byte remains —
/// floating-point progress accumulation can leave sub-byte residue.
constexpr double kDrainEpsilonBytes = 0.5;
}  // namespace

ConstraintId FairShareNet::add_constraint(double capacity_mbps, std::string name) {
  NMAD_ASSERT(capacity_mbps > 0.0, "constraint capacity must be positive");
  capacities_.push_back(capacity_mbps);
  constraint_names_.push_back(std::move(name));
  return ConstraintId{static_cast<std::uint32_t>(capacities_.size() - 1)};
}

double FairShareNet::capacity(ConstraintId id) const {
  NMAD_ASSERT(id.value < capacities_.size(), "bad constraint id");
  return capacities_[id.value];
}

void FairShareNet::set_capacity(ConstraintId id, double capacity_mbps) {
  NMAD_ASSERT(id.value < capacities_.size(), "bad constraint id");
  NMAD_ASSERT(capacity_mbps > 0.0, "constraint capacity must be positive");
  advance_to_now();
  capacities_[id.value] = capacity_mbps;
  recompute();
}

FlowId FairShareNet::start_flow(std::uint64_t bytes,
                                const std::vector<ConstraintId>& constraints,
                                Engine::Callback on_done) {
  NMAD_ASSERT(!constraints.empty(), "flow needs at least one constraint");
  for (ConstraintId c : constraints) {
    NMAD_ASSERT(c.value < capacities_.size(), "bad constraint id in flow");
  }
  advance_to_now();
  const std::uint64_t id = next_flow_id_++;
  Flow flow;
  flow.remaining_bytes = static_cast<double>(bytes);
  flow.constraints = constraints;
  flow.on_done = std::move(on_done);
  flows_.emplace(id, std::move(flow));
  recompute();
  return FlowId{id};
}

double FairShareNet::flow_rate(FlowId id) const {
  auto it = flows_.find(id.value);
  return it != flows_.end() ? it->second.rate_mbps : 0.0;
}

double FairShareNet::constraint_load(ConstraintId id) const {
  double load = 0.0;
  for (const auto& [_, flow] : flows_) {
    if (std::find(flow.constraints.begin(), flow.constraints.end(), id) !=
        flow.constraints.end()) {
      load += flow.rate_mbps;
    }
  }
  return load;
}

void FairShareNet::advance_to_now() {
  const TimeNs now = engine_.now();
  const TimeNs elapsed = now - last_advance_;
  last_advance_ = now;
  if (elapsed <= 0) return;
  for (auto& [_, flow] : flows_) {
    // rate [MB/s] * elapsed [ns] => bytes: mbps * 1e6 B/s * ns * 1e-9 s.
    flow.remaining_bytes -= flow.rate_mbps * static_cast<double>(elapsed) / 1000.0;
    if (flow.remaining_bytes < 0.0) flow.remaining_bytes = 0.0;
  }
}

void FairShareNet::assign_max_min_rates() {
  // Progressive water-filling. Start with every flow unfrozen and every
  // constraint at full capacity; repeatedly find the tightest constraint
  // (smallest per-flow fair share), freeze its flows at that share, deduct,
  // and continue until all flows are frozen.
  std::vector<std::uint64_t> unfrozen;
  unfrozen.reserve(flows_.size());
  for (auto& [id, flow] : flows_) {
    flow.rate_mbps = 0.0;
    unfrozen.push_back(id);
  }
  std::vector<double> residual = capacities_;

  while (!unfrozen.empty()) {
    // Count unfrozen flows per constraint.
    std::vector<int> users(capacities_.size(), 0);
    for (std::uint64_t fid : unfrozen) {
      for (ConstraintId c : flows_[fid].constraints) ++users[c.value];
    }
    double best_share = std::numeric_limits<double>::infinity();
    std::size_t best_constraint = capacities_.size();
    for (std::size_t c = 0; c < capacities_.size(); ++c) {
      if (users[c] == 0) continue;
      const double share = residual[c] / users[c];
      if (share < best_share) {
        best_share = share;
        best_constraint = c;
      }
    }
    NMAD_ASSERT(best_constraint < capacities_.size(),
                "unfrozen flow with no usable constraint");

    // Freeze every unfrozen flow crossing the bottleneck at the fair share,
    // deduct its rate from all of its constraints.
    std::vector<std::uint64_t> still_unfrozen;
    still_unfrozen.reserve(unfrozen.size());
    for (std::uint64_t fid : unfrozen) {
      Flow& flow = flows_[fid];
      const bool bottlenecked =
          std::find(flow.constraints.begin(), flow.constraints.end(),
                    ConstraintId{static_cast<std::uint32_t>(best_constraint)}) !=
          flow.constraints.end();
      if (!bottlenecked) {
        still_unfrozen.push_back(fid);
        continue;
      }
      flow.rate_mbps = best_share;
      for (ConstraintId c : flow.constraints) {
        residual[c.value] -= best_share;
        if (residual[c.value] < 0.0) residual[c.value] = 0.0;
      }
    }
    unfrozen = std::move(still_unfrozen);
  }
}

void FairShareNet::schedule_next_completion() {
  if (pending_completion_.valid()) {
    engine_.cancel(pending_completion_);
    pending_completion_ = EventId{};
  }
  if (flows_.empty()) return;

  double min_ns = std::numeric_limits<double>::infinity();
  for (const auto& [_, flow] : flows_) {
    NMAD_ASSERT(flow.rate_mbps > 0.0, "active flow with zero rate");
    const double ns = flow.remaining_bytes * 1000.0 / flow.rate_mbps;
    min_ns = std::min(min_ns, ns);
  }
  const auto delay = static_cast<TimeNs>(min_ns + 0.999);  // round up: finish, never under-run
  pending_completion_ = engine_.schedule(std::max<TimeNs>(delay, 0),
                                         [this] { on_completion_event(); });
}

void FairShareNet::on_completion_event() {
  pending_completion_ = EventId{};
  advance_to_now();

  // Collect every flow that has drained (several can finish at one instant).
  std::vector<Engine::Callback> done;
  for (auto it = flows_.begin(); it != flows_.end();) {
    if (it->second.remaining_bytes <= kDrainEpsilonBytes) {
      if (it->second.on_done) done.push_back(std::move(it->second.on_done));
      it = flows_.erase(it);
    } else {
      ++it;
    }
  }
  recompute();
  // Callbacks run after rates are consistent again, so a callback that
  // immediately starts a new flow observes a clean state.
  for (auto& cb : done) cb();
}

void FairShareNet::recompute() {
  assign_max_min_rates();
  schedule_next_completion();
}

}  // namespace nmad::sim
