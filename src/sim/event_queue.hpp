// Priority queue of timestamped events with stable FIFO ordering for ties
// and O(log n) cancellation support.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "sim/time.hpp"

namespace nmad::sim {

/// Opaque handle identifying a scheduled event (for cancellation).
struct EventId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(EventId, EventId) = default;
};

/// Min-heap of events ordered by (time, insertion sequence): two events at
/// the same timestamp fire in the order they were scheduled, which the
/// driver models rely on (e.g. a send completion scheduled before a
/// delivery at the same instant is observed first).
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`.
  EventId schedule_at(TimeNs at, Callback cb);

  /// Cancel a pending event. Returns false if the event already fired or was
  /// already cancelled. Cancellation is O(1) amortized (lazy deletion).
  bool cancel(EventId id);

  [[nodiscard]] bool empty() const noexcept { return live_count_ == 0; }
  [[nodiscard]] std::size_t size() const noexcept { return live_count_; }

  /// Earliest pending event time; panics when empty.
  [[nodiscard]] TimeNs next_time() const;

  /// Pop the earliest event and return its callback together with its
  /// timestamp; panics when empty.
  struct Fired {
    TimeNs time;
    Callback callback;
  };
  Fired pop();

 private:
  struct Entry {
    TimeNs time;
    std::uint64_t seq;
    std::uint64_t id;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      return a.time != b.time ? a.time > b.time : a.seq > b.seq;
    }
  };

  void drop_cancelled_head() const;

  mutable std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  std::unordered_map<std::uint64_t, Callback> callbacks_;
  std::uint64_t next_id_ = 1;
  std::uint64_t next_seq_ = 0;
  std::size_t live_count_ = 0;
};

}  // namespace nmad::sim
