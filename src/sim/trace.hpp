// Optional event trace for debugging and for tests that assert on the
// *sequence* of simulated actions (e.g. "both DMA flows overlapped",
// "the two PIO sends serialized").
#pragma once

#include <string>
#include <vector>

#include "sim/time.hpp"

namespace nmad::sim {

struct TraceEvent {
  TimeNs time;
  std::string category;  // e.g. "pio.start", "dma.done", "strat.pack"
  std::string detail;
};

class Trace {
 public:
  /// Recording is off until enable() — benches keep it off so the virtual
  /// timing work is not buried in string formatting.
  void enable() noexcept { enabled_ = true; }
  void disable() noexcept { enabled_ = false; }
  [[nodiscard]] bool enabled() const noexcept { return enabled_; }

  void record(TimeNs time, std::string category, std::string detail);

  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  void clear() noexcept { events_.clear(); }

  /// All events whose category matches exactly, in time order.
  [[nodiscard]] std::vector<TraceEvent> by_category(const std::string& category) const;

  /// Count of events with the given category.
  [[nodiscard]] std::size_t count(const std::string& category) const;

  /// Render as "time_us category detail" lines (debugging aid).
  [[nodiscard]] std::string dump() const;

 private:
  bool enabled_ = false;
  std::vector<TraceEvent> events_;
};

}  // namespace nmad::sim
