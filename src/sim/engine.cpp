#include "sim/engine.hpp"

#include <utility>

#include "util/panic.hpp"

namespace nmad::sim {

EventId Engine::schedule(TimeNs delay, Callback cb) {
  NMAD_ASSERT(delay >= 0, "negative event delay");
  std::lock_guard<std::mutex> lock(queue_mutex_);
  return queue_.schedule_at(now_.load(std::memory_order_relaxed) + delay,
                            std::move(cb));
}

EventId Engine::schedule_at(TimeNs at, Callback cb) {
  std::lock_guard<std::mutex> lock(queue_mutex_);
  NMAD_ASSERT(at >= now_.load(std::memory_order_relaxed),
              "scheduling into the past");
  return queue_.schedule_at(at, std::move(cb));
}

bool Engine::step() {
  Callback cb;
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    if (queue_.empty()) return false;
    auto fired = queue_.pop();
    NMAD_ASSERT(fired.time >= now_.load(std::memory_order_relaxed),
                "event queue time went backwards");
    now_.store(fired.time, std::memory_order_release);
    fired_.fetch_add(1, std::memory_order_relaxed);
    cb = std::move(fired.callback);
  }
  // Fired with the queue mutex released so the callback may schedule or
  // cancel events. The stepper-serialization lock (if any) is still held.
  cb();
  return true;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

bool Engine::run_until(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

void Engine::run_for(TimeNs duration) {
  const TimeNs deadline = now_.load(std::memory_order_relaxed) + duration;
  while (true) {
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.empty() || queue_.next_time() > deadline) break;
    }
    step();
  }
  // Advance the clock to the deadline if no event reached it.
  TimeNs cur = now_.load(std::memory_order_relaxed);
  while (cur < deadline &&
         !now_.compare_exchange_weak(cur, deadline, std::memory_order_release,
                                     std::memory_order_relaxed)) {
  }
}

}  // namespace nmad::sim
