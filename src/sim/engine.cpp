#include "sim/engine.hpp"

#include <utility>

#include "util/panic.hpp"

namespace nmad::sim {

EventId Engine::schedule(TimeNs delay, Callback cb) {
  NMAD_ASSERT(delay >= 0, "negative event delay");
  return queue_.schedule_at(now_ + delay, std::move(cb));
}

EventId Engine::schedule_at(TimeNs at, Callback cb) {
  NMAD_ASSERT(at >= now_, "scheduling into the past");
  return queue_.schedule_at(at, std::move(cb));
}

bool Engine::step() {
  if (queue_.empty()) return false;
  auto fired = queue_.pop();
  NMAD_ASSERT(fired.time >= now_, "event queue time went backwards");
  now_ = fired.time;
  ++fired_;
  fired.callback();
  return true;
}

std::size_t Engine::run() {
  std::size_t n = 0;
  while (step()) ++n;
  return n;
}

bool Engine::run_until(const std::function<bool()>& pred) {
  if (pred()) return true;
  while (step()) {
    if (pred()) return true;
  }
  return false;
}

void Engine::run_for(TimeNs duration) {
  const TimeNs deadline = now_ + duration;
  while (!queue_.empty() && queue_.next_time() <= deadline) {
    step();
  }
  if (now_ < deadline) now_ = deadline;
}

}  // namespace nmad::sim
