#include "sim/net_scenario.hpp"

#include <algorithm>

#include "util/panic.hpp"

namespace nmad::sim {

std::vector<CapacityPhase> profile_static() { return {}; }

std::vector<CapacityPhase> profile_step(TimeNs at, double scale) {
  return {{at, scale}};
}

std::vector<CapacityPhase> profile_drift(TimeNs start, TimeNs end, double from,
                                         double to, int steps) {
  NMAD_ASSERT(steps > 0, "drift needs at least one step");
  NMAD_ASSERT(end > start, "drift interval must be forward in time");
  std::vector<CapacityPhase> phases;
  phases.reserve(static_cast<std::size_t>(steps));
  for (int i = 1; i <= steps; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(steps);
    CapacityPhase phase;
    phase.at = start + static_cast<TimeNs>(
                           static_cast<double>(end - start) * frac);
    phase.scale = from + (to - from) * frac;
    phases.push_back(phase);
  }
  return phases;
}

std::vector<CapacityPhase> profile_degrade_recover(TimeNs degrade_at,
                                                   TimeNs recover_at,
                                                   double scale) {
  NMAD_ASSERT(recover_at > degrade_at, "recovery must follow degradation");
  return {{degrade_at, scale}, {recover_at, 1.0}};
}

void NetScenario::shape_link(ConstraintId link, double nominal_mbps,
                             const std::vector<CapacityPhase>& phases) {
  NMAD_ASSERT(nominal_mbps > 0.0, "nominal capacity must be positive");
  for (const CapacityPhase& phase : phases) {
    NMAD_ASSERT(phase.scale > 0.0,
                "zero-capacity phases are not representable (see header)");
    const double capacity = nominal_mbps * phase.scale;
    engine_.schedule_at(std::max(phase.at, engine_.now()),
                        [this, link, capacity] {
                          net_.set_capacity(link, capacity);
                        });
  }
}

void NetScenario::add_cross_traffic(ConstraintId constraint,
                                    double offered_mbps,
                                    std::uint64_t chunk_bytes, TimeNs start,
                                    TimeNs stop, std::uint64_t seed) {
  NMAD_ASSERT(offered_mbps > 0.0, "offered load must be positive");
  NMAD_ASSERT(chunk_bytes > 0, "cross-traffic chunks must carry bytes");
  NMAD_ASSERT(stop > start, "cross-traffic window must be forward in time");
  CrossTraffic ct;
  ct.constraint = constraint;
  ct.chunk_bytes = chunk_bytes;
  // One chunk every chunk_bytes / offered_mbps: bytes * 1000 / mbps => ns.
  ct.period = std::max<TimeNs>(
      static_cast<TimeNs>(static_cast<double>(chunk_bytes) * 1000.0 /
                          offered_mbps),
      1);
  ct.stop = stop;
  const std::size_t idx = cross_.size();
  cross_.push_back(ct);
  // Stagger the first injection by a seed-derived phase so different runs
  // shift relative to the foreground traffic (deterministic per seed).
  // Small consecutive seeds are spread across the whole period by the
  // golden-ratio multiplier (Fibonacci hashing).
  const std::uint64_t mixed = seed * 0x9e3779b97f4a7c15ull;
  const TimeNs first =
      start + static_cast<TimeNs>(mixed % static_cast<std::uint64_t>(ct.period));
  engine_.schedule_at(std::max(first, engine_.now()),
                      [this, idx] { inject_cross(idx); });
}

void NetScenario::inject_cross(std::size_t idx) {
  const CrossTraffic& ct = cross_[idx];
  // Fire-and-forget background flow: nobody waits on its completion.
  net_.start_flow(ct.chunk_bytes, {ct.constraint}, Engine::Callback{});
  const TimeNs next = engine_.now() + ct.period;
  if (next < ct.stop) {
    engine_.schedule_at(next, [this, idx] { inject_cross(idx); });
  }
}

}  // namespace nmad::sim
