// NetScenario: time-varying network conditions for the adaptive-striping
// scenario family — shaped link capacities (piecewise-constant multipliers
// of a nominal capacity) and periodic background cross-traffic, all driven
// by engine events so serial runs stay bit-reproducible.
//
// The profile factories cover the four shapes the adaptive-striping bench
// sweeps: a clean baseline (static), an abrupt loss of capacity (step), a
// gradual decline (drift, modeled as many small steps), and a transient
// outage that heals (degrade_recover). Asymmetric degradation is simply a
// step/drift applied to one rail's link while the others stay shaped flat.
//
// Lifetime: scheduled callbacks capture `this`; the scenario must outlive
// every engine run it has armed events for (benches keep it on the stack
// next to the platform, destroyed before it in reverse declaration order —
// which is safe because nothing runs the engine after the measurement).
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fair_share.hpp"

namespace nmad::sim {

/// One point of a piecewise-constant capacity profile: at virtual time
/// `at`, the shaped constraint's capacity becomes `scale` x nominal.
struct CapacityPhase {
  TimeNs at = 0;
  double scale = 1.0;
};

/// No change: the shaped link stays at nominal capacity.
std::vector<CapacityPhase> profile_static();
/// Abrupt step to `scale` x nominal at time `at`.
std::vector<CapacityPhase> profile_step(TimeNs at, double scale);
/// Linear drift from `from` to `to` x nominal between `start` and `end`,
/// discretized into `steps` equal steps.
std::vector<CapacityPhase> profile_drift(TimeNs start, TimeNs end, double from,
                                         double to, int steps = 16);
/// Step down to `scale` at `degrade_at`, back to nominal at `recover_at`.
std::vector<CapacityPhase> profile_degrade_recover(TimeNs degrade_at,
                                                   TimeNs recover_at,
                                                   double scale);

class NetScenario {
 public:
  NetScenario(Engine& engine, FairShareNet& net) : engine_(engine), net_(net) {}
  NetScenario(const NetScenario&) = delete;
  NetScenario& operator=(const NetScenario&) = delete;

  /// Capacity of `link` follows `phases` as multiples of `nominal_mbps`
  /// (phases must have positive scales; zero-capacity constraints are not
  /// representable in the fluid model — model an outage as a deep step
  /// plus the reliability layer's timeouts).
  void shape_link(ConstraintId link, double nominal_mbps,
                  const std::vector<CapacityPhase>& phases);

  /// Offered background load crossing `constraint`: one `chunk_bytes` flow
  /// injected every chunk_bytes/offered_mbps, from `start` until `stop`.
  /// `seed` staggers the injection phase so independent runs (the nightly
  /// bench's seeds) shift relative to the foreground traffic.
  void add_cross_traffic(ConstraintId constraint, double offered_mbps,
                         std::uint64_t chunk_bytes, TimeNs start, TimeNs stop,
                         std::uint64_t seed = 0);

 private:
  struct CrossTraffic {
    ConstraintId constraint;
    std::uint64_t chunk_bytes = 0;
    TimeNs period = 0;
    TimeNs stop = 0;
  };

  void inject_cross(std::size_t idx);

  Engine& engine_;
  FairShareNet& net_;
  /// deque: inject_cross captures indices; entries must not relocate.
  std::deque<CrossTraffic> cross_;
};

}  // namespace nmad::sim
