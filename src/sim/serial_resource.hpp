// A FIFO-serialized resource with a fixed number of servers.
//
// Models the host CPU executing Programmed I/O: a PIO transfer occupies one
// "server" exclusively for its whole duration, so with the paper's
// single-progression-thread implementation (capacity 1) two PIO sends on
// two different NICs serialize — the key reason greedy multi-rail balancing
// loses for small messages (§3.2). The capacity parameter exists to model
// the paper's future work (§4): a multi-threaded implementation running
// parallel PIO transfers on multiple cores (ablation A4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace nmad::sim {

class SerialResource {
 public:
  /// `capacity` = number of jobs that can execute concurrently (>= 1).
  SerialResource(Engine& engine, int capacity, std::string name);

  /// Enqueue a job of `duration` ns. Jobs start in submission order as
  /// servers free up; `on_done` fires at the job's completion time.
  /// Returns the job's computed completion time.
  TimeNs acquire(TimeNs duration, Engine::Callback on_done);

  /// Earliest virtual time at which a job submitted now would start.
  [[nodiscard]] TimeNs earliest_start() const noexcept;

  /// True when a job submitted now would have to wait.
  [[nodiscard]] bool saturated() const noexcept;

  [[nodiscard]] int capacity() const noexcept { return static_cast<int>(free_at_.size()); }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }

  /// Total ns of busy server time accumulated (for utilization reports).
  [[nodiscard]] TimeNs total_busy() const noexcept { return total_busy_; }

 private:
  Engine& engine_;
  std::string name_;
  /// free_at_[i] = virtual time when server i finishes its last queued job.
  /// FIFO order is preserved because each new job picks the server with the
  /// smallest free_at_, and completion callbacks fire in schedule order.
  std::vector<TimeNs> free_at_;
  TimeNs total_busy_ = 0;
};

}  // namespace nmad::sim
