// Fluid-flow bandwidth sharing with max-min fairness.
//
// Models the bandwidth-constrained parts of the platform: each NIC link and
// each host I/O bus is a *constraint* with a capacity in MB/s; each DMA
// transfer is a *flow* crossing a set of constraints (its NIC link, the
// sender's bus, the receiver's bus). Whenever the set of active flows
// changes, rates are recomputed with progressive water-filling (the
// standard max-min fair allocation), and the next flow completion is
// scheduled on the engine.
//
// This is what reproduces the paper's aggregate-bandwidth observations: two
// concurrent DMA flows on Myri-10G (1200 MB/s) and Quadrics (850 MB/s)
// would sum to 2050 MB/s, but both cross the same ~2 GB/s host bus, so the
// bus constraint caps the aggregate — exactly the 1675 MB/s plateau of
// Fig. 4(b) and the ceiling the adaptive-split strategy approaches in
// Fig. 7.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "sim/engine.hpp"

namespace nmad::sim {

struct ConstraintId {
  std::uint32_t value = 0;
  friend bool operator==(ConstraintId, ConstraintId) = default;
};

struct FlowId {
  std::uint64_t value = 0;
  [[nodiscard]] bool valid() const noexcept { return value != 0; }
  friend bool operator==(FlowId, FlowId) = default;
};

class FairShareNet {
 public:
  explicit FairShareNet(Engine& engine) : engine_(engine) {}

  /// Register a capacity constraint (NIC link, host bus, ...).
  ConstraintId add_constraint(double capacity_mbps, std::string name);

  /// Capacity lookup (for reporting / tests).
  [[nodiscard]] double capacity(ConstraintId id) const;

  /// Change a constraint's capacity at the current virtual time (the
  /// time-varying network profiles of sim/net_scenario.hpp). Flow progress
  /// is settled at the old rates first, then every rate is re-derived —
  /// in-flight transfers simply speed up or slow down from now on.
  void set_capacity(ConstraintId id, double capacity_mbps);

  /// Start a fluid flow of `bytes` across `constraints`. `on_done` fires on
  /// the engine when the last byte has moved. Every active flow always gets
  /// a positive rate (max-min fairness never starves a flow).
  FlowId start_flow(std::uint64_t bytes, const std::vector<ConstraintId>& constraints,
                    Engine::Callback on_done);

  /// Number of currently active flows.
  [[nodiscard]] std::size_t active_flows() const noexcept { return flows_.size(); }

  /// Current max-min rate of a flow in MB/s (0 if unknown/finished).
  [[nodiscard]] double flow_rate(FlowId id) const;

  /// Sum of current rates across the given constraint (MB/s); tests use it
  /// to check that no constraint is oversubscribed.
  [[nodiscard]] double constraint_load(ConstraintId id) const;

 private:
  struct Flow {
    double remaining_bytes = 0;
    double rate_mbps = 0;
    std::vector<ConstraintId> constraints;
    Engine::Callback on_done;
  };

  /// Advance all flows to now(), recompute max-min rates, and reschedule the
  /// next completion event.
  void recompute();
  void advance_to_now();
  void assign_max_min_rates();
  void schedule_next_completion();
  void on_completion_event();

  Engine& engine_;
  std::vector<double> capacities_;
  std::vector<std::string> constraint_names_;
  std::map<std::uint64_t, Flow> flows_;
  std::uint64_t next_flow_id_ = 1;
  TimeNs last_advance_ = 0;
  EventId pending_completion_{};
};

}  // namespace nmad::sim
