// Export a simulation trace to the Chrome/Perfetto trace-event JSON
// format (chrome://tracing, ui.perfetto.dev). Paired begin/end categories
// ("pio.start"/"pio.done", "dma.start"/"dma.done") become duration events
// on per-category rows; everything else becomes an instant event.
#pragma once

#include <string>

#include "sim/trace.hpp"
#include "util/expected.hpp"

namespace nmad::sim {

/// Render the trace as a Chrome trace-event JSON array (timestamps in µs).
[[nodiscard]] std::string to_chrome_trace(const Trace& trace);

/// Write to_chrome_trace(trace) to `path`.
util::Status write_chrome_trace(const Trace& trace, const std::string& path);

}  // namespace nmad::sim
