#include "sim/serial_resource.hpp"

#include <algorithm>
#include <utility>

#include "util/panic.hpp"

namespace nmad::sim {

SerialResource::SerialResource(Engine& engine, int capacity, std::string name)
    : engine_(engine), name_(std::move(name)) {
  NMAD_ASSERT(capacity >= 1, "SerialResource capacity must be >= 1");
  free_at_.assign(static_cast<std::size_t>(capacity), 0);
}

TimeNs SerialResource::earliest_start() const noexcept {
  const TimeNs earliest = *std::min_element(free_at_.begin(), free_at_.end());
  return std::max(earliest, engine_.now());
}

bool SerialResource::saturated() const noexcept {
  return earliest_start() > engine_.now();
}

TimeNs SerialResource::acquire(TimeNs duration, Engine::Callback on_done) {
  NMAD_ASSERT(duration >= 0, "negative job duration");
  auto it = std::min_element(free_at_.begin(), free_at_.end());
  const TimeNs start = std::max(*it, engine_.now());
  const TimeNs done = start + duration;
  *it = done;
  total_busy_ += duration;
  if (on_done) {
    engine_.schedule_at(done, std::move(on_done));
  }
  return done;
}

}  // namespace nmad::sim
