// The discrete-event simulation engine: a virtual clock plus an event queue.
//
// Everything in the simulated platform — NIC DMA engines, CPU occupancy,
// wire latencies, the communication library's progression — advances by
// scheduling callbacks on one Engine. Serial runs are bit-reproducible,
// which the benchmark suite and golden tests rely on.
//
// Thread model (for the threaded progression engine, core/progress.hpp):
//  - schedule / schedule_at / cancel and the observers (now, idle,
//    pending_events, events_fired) may be called from any thread: the
//    event queue is guarded by a leaf mutex and the clock is atomic.
//  - the STEPPERS (step / run / run_until / run_for) must be externally
//    serialized — at most one thread advances virtual time at a time.
//    In threaded mode SimWorld::progress_mutex() provides that
//    serialization; serial mode is single-threaded by construction.
//  - callbacks fire with the queue mutex RELEASED, so an event may freely
//    schedule/cancel further events. Whatever lock serializes the
//    steppers is still held, so callbacks that enter the scheduling
//    layer remain mutually excluded.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace nmad::sim {

class Engine {
 public:
  using Callback = EventQueue::Callback;

  /// Current virtual time. Safe from any thread; a cross-thread reader
  /// sees some recent instant (the clock only moves forward).
  [[nodiscard]] TimeNs now() const noexcept {
    return now_.load(std::memory_order_acquire);
  }

  /// Schedule `cb` to run `delay` ns from now (delay >= 0).
  EventId schedule(TimeNs delay, Callback cb);

  /// Schedule at an absolute virtual time (>= now()).
  EventId schedule_at(TimeNs at, Callback cb);

  bool cancel(EventId id) {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.cancel(id);
  }

  /// Run events until the queue drains. Returns the number of events fired.
  std::size_t run();

  /// Run events until `pred()` becomes true (checked after each event) or
  /// the queue drains. Returns true if the predicate was satisfied.
  bool run_until(const std::function<bool()>& pred);

  /// Run events with timestamp <= `deadline`; afterwards now() == deadline
  /// (or later if an event at deadline scheduled nothing further — now()
  /// never exceeds the last fired event's time or the deadline, whichever
  /// is larger).
  void run_for(TimeNs duration);

  /// Fire exactly one event if any is pending. Returns false on empty queue.
  bool step();

  [[nodiscard]] bool idle() const noexcept {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.empty();
  }
  [[nodiscard]] std::size_t pending_events() const noexcept {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    return queue_.size();
  }
  [[nodiscard]] std::uint64_t events_fired() const noexcept {
    return fired_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex queue_mutex_;  ///< leaf lock: guards queue_ only
  EventQueue queue_;
  std::atomic<TimeNs> now_{0};
  std::atomic<std::uint64_t> fired_{0};
};

}  // namespace nmad::sim
