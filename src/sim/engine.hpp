// The discrete-event simulation engine: a virtual clock plus an event queue.
//
// Everything in the simulated platform — NIC DMA engines, CPU occupancy,
// wire latencies, the communication library's progression — advances by
// scheduling callbacks on one Engine. Single-threaded by design: runs are
// bit-reproducible, which the benchmark suite and golden tests rely on.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.hpp"
#include "sim/time.hpp"

namespace nmad::sim {

class Engine {
 public:
  using Callback = EventQueue::Callback;

  /// Current virtual time.
  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Schedule `cb` to run `delay` ns from now (delay >= 0).
  EventId schedule(TimeNs delay, Callback cb);

  /// Schedule at an absolute virtual time (>= now()).
  EventId schedule_at(TimeNs at, Callback cb);

  bool cancel(EventId id) { return queue_.cancel(id); }

  /// Run events until the queue drains. Returns the number of events fired.
  std::size_t run();

  /// Run events until `pred()` becomes true (checked after each event) or
  /// the queue drains. Returns true if the predicate was satisfied.
  bool run_until(const std::function<bool()>& pred);

  /// Run events with timestamp <= `deadline`; afterwards now() == deadline
  /// (or later if an event at deadline scheduled nothing further — now()
  /// never exceeds the last fired event's time or the deadline, whichever
  /// is larger).
  void run_for(TimeNs duration);

  /// Fire exactly one event if any is pending. Returns false on empty queue.
  bool step();

  [[nodiscard]] bool idle() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending_events() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_fired() const noexcept { return fired_; }

 private:
  EventQueue queue_;
  TimeNs now_ = 0;
  std::uint64_t fired_ = 0;
};

}  // namespace nmad::sim
