#include "sim/trace_export.hpp"

#include <deque>
#include <fstream>
#include <map>

#include "util/fmt.hpp"

namespace nmad::sim {

namespace {

/// Categories forming begin/end pairs, matched FIFO per (begin-category,
/// detail prefix).
struct PairRule {
  const char* begin;
  const char* end;
  const char* row;  // Chrome "thread" name
};
constexpr PairRule kPairs[] = {
    {"pio.start", "pio.done", "pio"},
    {"dma.start", "dma.done", "dma"},
};

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::sformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

/// First whitespace-separated token of the detail string (the NIC name),
/// used to pair begins with ends when several rails are active.
std::string_view first_token(const std::string& s) {
  const std::size_t pos = s.find(' ');
  return pos == std::string::npos ? std::string_view(s)
                                  : std::string_view(s).substr(0, pos);
}

}  // namespace

std::string to_chrome_trace(const Trace& trace) {
  std::string out = "[\n";
  bool first_event = true;
  auto emit = [&](const std::string& line) {
    if (!first_event) out += ",\n";
    first_event = false;
    out += line;
  };

  // Pending begin events, keyed by (pair index, rail token).
  std::map<std::pair<int, std::string>, std::deque<const TraceEvent*>> open;

  for (const TraceEvent& ev : trace.events()) {
    int pair_idx = -1;
    bool is_begin = false;
    for (int i = 0; i < static_cast<int>(std::size(kPairs)); ++i) {
      if (ev.category == kPairs[i].begin) {
        pair_idx = i;
        is_begin = true;
        break;
      }
      if (ev.category == kPairs[i].end) {
        pair_idx = i;
        break;
      }
    }

    if (pair_idx < 0) {
      emit(util::sformat(
          R"(  {"name": "%s", "ph": "i", "ts": %.3f, "pid": 1, "tid": 1, "s": "g", "args": {"detail": "%s"}})",
          json_escape(ev.category).c_str(), ns_to_us(ev.time),
          json_escape(ev.detail).c_str()));
      continue;
    }

    const auto key =
        std::make_pair(pair_idx, std::string(first_token(ev.detail)));
    if (is_begin) {
      open[key].push_back(&ev);
      continue;
    }
    auto it = open.find(key);
    if (it == open.end() || it->second.empty()) {
      // Unmatched end: record as instant rather than dropping it.
      emit(util::sformat(
          R"(  {"name": "%s", "ph": "i", "ts": %.3f, "pid": 1, "tid": 1, "s": "g"})",
          json_escape(ev.category).c_str(), ns_to_us(ev.time)));
      continue;
    }
    const TraceEvent* begin = it->second.front();
    it->second.pop_front();
    emit(util::sformat(
        R"(  {"name": "%s", "cat": "%s", "ph": "X", "ts": %.3f, "dur": %.3f, "pid": 1, "tid": "%s %s", "args": {"detail": "%s"}})",
        json_escape(std::string(first_token(begin->detail))).c_str(),
        kPairs[pair_idx].row, ns_to_us(begin->time),
        ns_to_us(ev.time - begin->time), kPairs[pair_idx].row, key.second.c_str(),
        json_escape(begin->detail).c_str()));
  }
  out += "\n]\n";
  return out;
}

util::Status write_chrome_trace(const Trace& trace, const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::make_error(
        util::sformat("cannot open '%s' for writing", path.c_str()));
  }
  out << to_chrome_trace(trace);
  if (!out.good()) {
    return util::make_error(util::sformat("write to '%s' failed", path.c_str()));
  }
  return {};
}

}  // namespace nmad::sim
