// Virtual time for the discrete-event simulator.
//
// Time is an integer count of nanoseconds. An integer representation keeps
// event ordering exact and the simulation bit-reproducible; the sub-µs
// costs in the NIC models (overheads of 0.35 µs, poll costs of 0.4 µs) are
// all exact multiples of 1 ns.
#pragma once

#include <cstdint>

namespace nmad::sim {

/// Nanoseconds since simulation start.
using TimeNs = std::int64_t;

constexpr TimeNs kNsPerUs = 1000;

/// Convert a duration in microseconds (as used by NIC profiles and reports)
/// to nanoseconds, rounding to nearest.
constexpr TimeNs us_to_ns(double us) noexcept {
  return static_cast<TimeNs>(us * 1000.0 + (us >= 0 ? 0.5 : -0.5));
}

constexpr double ns_to_us(TimeNs ns) noexcept {
  return static_cast<double>(ns) / 1000.0;
}

/// Time to move `bytes` at `mbps` MB/s (1 MB = 1e6 bytes, the convention the
/// paper's bandwidth axes use), in nanoseconds.
constexpr TimeNs transfer_ns(std::uint64_t bytes, double mbps) noexcept {
  // bytes / (mbps * 1e6 B/s) seconds = bytes * 1e3 / mbps ns.
  return static_cast<TimeNs>(static_cast<double>(bytes) * 1000.0 / mbps + 0.5);
}

/// Bandwidth in MB/s achieved moving `bytes` in `ns`.
constexpr double bandwidth_mbps(std::uint64_t bytes, TimeNs ns) noexcept {
  return ns > 0 ? static_cast<double>(bytes) * 1000.0 / static_cast<double>(ns)
                : 0.0;
}

}  // namespace nmad::sim
