#include "sim/event_queue.hpp"

#include <utility>

#include "util/panic.hpp"

namespace nmad::sim {

EventId EventQueue::schedule_at(TimeNs at, Callback cb) {
  NMAD_ASSERT(cb != nullptr, "scheduling null callback");
  const std::uint64_t id = next_id_++;
  heap_.push(Entry{at, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  ++live_count_;
  return EventId{id};
}

bool EventQueue::cancel(EventId id) {
  auto it = callbacks_.find(id.value);
  if (it == callbacks_.end()) return false;
  callbacks_.erase(it);
  --live_count_;
  return true;
}

void EventQueue::drop_cancelled_head() const {
  while (!heap_.empty() && !callbacks_.contains(heap_.top().id)) {
    heap_.pop();
  }
}

TimeNs EventQueue::next_time() const {
  drop_cancelled_head();
  NMAD_ASSERT(!heap_.empty(), "next_time on empty event queue");
  return heap_.top().time;
}

EventQueue::Fired EventQueue::pop() {
  drop_cancelled_head();
  NMAD_ASSERT(!heap_.empty(), "pop on empty event queue");
  const Entry entry = heap_.top();
  heap_.pop();
  auto it = callbacks_.find(entry.id);
  NMAD_ASSERT(it != callbacks_.end(), "event without callback");
  Fired fired{entry.time, std::move(it->second)};
  callbacks_.erase(it);
  --live_count_;
  return fired;
}

}  // namespace nmad::sim
