#include "sampling/sampler.hpp"

#include <numeric>

#include "core/platform.hpp"
#include "sim/time.hpp"
#include "util/panic.hpp"
#include "util/stats.hpp"

namespace nmad::sampling {

namespace {

/// One-way transfer time of a single `size`-byte message over the platform,
/// measured from submission to receive completion.
double one_way_us(core::TwoNodePlatform& p, std::uint64_t size) {
  static std::vector<std::byte> payload;
  static std::vector<std::byte> sink;
  if (payload.size() < size) payload.resize(size, std::byte{0x5a});
  if (sink.size() < size) sink.resize(size);

  auto recv = p.b().irecv(p.gate_ba(), /*tag=*/7,
                          std::span<std::byte>(sink.data(), size));
  const sim::TimeNs t0 = p.now();
  auto send = p.a().isend(p.gate_ab(), /*tag=*/7,
                          std::span<const std::byte>(payload.data(), size));
  p.b().wait(recv);
  p.a().wait(send);
  return sim::ns_to_us(recv->completion_time() - t0);
}

}  // namespace

std::vector<std::uint64_t> sampling_sizes() {
  std::vector<std::uint64_t> sizes;
  for (std::uint64_t s = 64 * 1024; s <= 4 * 1024 * 1024; s *= 2) {
    sizes.push_back(s);
  }
  return sizes;
}

std::vector<RailSample> sample_rails(
    const netmodel::HostProfile& host_a, const netmodel::HostProfile& host_b,
    const std::vector<netmodel::NicProfile>& links) {
  std::vector<RailSample> samples;
  samples.reserve(links.size());

  for (const auto& nic : links) {
    // A scratch world containing only this rail: measurements are taken in
    // isolation, exactly like nmad's initialization-time sampling.
    core::PlatformConfig cfg;
    cfg.host_a = host_a;
    cfg.host_b = host_b;
    cfg.links = {nic};
    cfg.strategy = "single_rail";
    core::TwoNodePlatform p(std::move(cfg));

    RailSample sample;
    sample.rail_name = nic.name;
    sample.latency_us = one_way_us(p, 4);

    std::vector<double> xs;
    std::vector<double> ys;
    for (std::uint64_t size : sampling_sizes()) {
      xs.push_back(static_cast<double>(size));
      ys.push_back(one_way_us(p, size));
    }
    const util::LinearFit fit = util::fit_linear(xs, ys);
    NMAD_ASSERT(fit.slope > 0.0, "sampling produced non-positive slope");
    sample.intercept_us = fit.intercept;
    sample.slope_us_per_byte = fit.slope;
    sample.bandwidth_mbps = 1.0 / fit.slope;  // B/µs == MB/s
    sample.fit_r2 = fit.r2;
    samples.push_back(std::move(sample));
  }
  return samples;
}

std::vector<double> measure_rail_weights(
    const netmodel::HostProfile& host_a, const netmodel::HostProfile& host_b,
    const std::vector<netmodel::NicProfile>& links) {
  const std::vector<RailSample> samples = sample_rails(host_a, host_b, links);
  std::vector<double> weights;
  weights.reserve(samples.size());
  for (const RailSample& s : samples) weights.push_back(s.bandwidth_mbps);
  const double total = std::accumulate(weights.begin(), weights.end(), 0.0);
  NMAD_ASSERT(total > 0.0, "sampling produced zero total bandwidth");
  for (double& w : weights) w /= total;
  return weights;
}

}  // namespace nmad::sampling
