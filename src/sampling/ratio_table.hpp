// Persistent sampling results. Real NewMadeleine stores its sampling data
// on disk so initialization does not re-measure every run; this mirrors
// that with a small text format:
//
//   # nmad sampling cache v1
//   <rail-name> <latency_us> <intercept_us> <slope_us_per_byte> <r2>
#pragma once

#include <string>
#include <vector>

#include "sampling/sampler.hpp"
#include "util/expected.hpp"

namespace nmad::sampling {

class RatioTable {
 public:
  RatioTable() = default;
  explicit RatioTable(std::vector<RailSample> samples)
      : samples_(std::move(samples)) {}

  [[nodiscard]] const std::vector<RailSample>& samples() const noexcept {
    return samples_;
  }
  [[nodiscard]] bool empty() const noexcept { return samples_.empty(); }

  /// Normalized per-rail stripping weights (bandwidth shares).
  [[nodiscard]] std::vector<double> weights() const;

  /// Serialize to the cache text format.
  [[nodiscard]] std::string serialize() const;
  /// Parse the cache text format.
  static util::Expected<RatioTable> parse(const std::string& text);

  /// File round-trip helpers.
  util::Status save(const std::string& path) const;
  static util::Expected<RatioTable> load(const std::string& path);

 private:
  std::vector<RailSample> samples_;
};

}  // namespace nmad::sampling
