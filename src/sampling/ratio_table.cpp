#include "sampling/ratio_table.hpp"

#include "util/fmt.hpp"
#include <fstream>
#include <numeric>
#include <sstream>

#include "util/panic.hpp"

namespace nmad::sampling {

namespace {
constexpr std::string_view kHeader = "# nmad sampling cache v1";
}  // namespace

std::vector<double> RatioTable::weights() const {
  NMAD_ASSERT(!samples_.empty(), "weights() on empty ratio table");
  std::vector<double> w;
  w.reserve(samples_.size());
  for (const RailSample& s : samples_) w.push_back(s.bandwidth_mbps);
  const double total = std::accumulate(w.begin(), w.end(), 0.0);
  NMAD_ASSERT(total > 0.0, "ratio table with zero total bandwidth");
  for (double& x : w) x /= total;
  return w;
}

std::string RatioTable::serialize() const {
  std::string out(kHeader);
  out += '\n';
  for (const RailSample& s : samples_) {
    out += util::sformat("%s %.6f %.6f %.9e %.6f\n", s.rail_name.c_str(),
                         s.latency_us, s.intercept_us, s.slope_us_per_byte,
                         s.fit_r2);
  }
  return out;
}

util::Expected<RatioTable> RatioTable::parse(const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kHeader) {
    return util::make_error("bad sampling cache header");
  }
  std::vector<RailSample> samples;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    RailSample s;
    if (!(fields >> s.rail_name >> s.latency_us >> s.intercept_us >>
          s.slope_us_per_byte >> s.fit_r2)) {
      return util::make_error(
          util::sformat("bad sampling cache line: '%s'", line.c_str()));
    }
    if (s.slope_us_per_byte <= 0.0) {
      return util::make_error("non-positive slope in sampling cache");
    }
    s.bandwidth_mbps = 1.0 / s.slope_us_per_byte;
    samples.push_back(std::move(s));
  }
  if (samples.empty()) return util::make_error("empty sampling cache");
  return RatioTable(std::move(samples));
}

util::Status RatioTable::save(const std::string& path) const {
  std::ofstream out(path, std::ios::trunc);
  if (!out) {
    return util::make_error(
        util::sformat("cannot open '%s' for writing", path.c_str()));
  }
  out << serialize();
  if (!out.good()) {
    return util::make_error(util::sformat("write to '%s' failed", path.c_str()));
  }
  return {};
}

util::Expected<RatioTable> RatioTable::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) return util::make_error(util::sformat("cannot open '%s'", path.c_str()));
  std::ostringstream buf;
  buf << in.rdbuf();
  return parse(buf.str());
}

}  // namespace nmad::sampling
