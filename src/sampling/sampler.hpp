// Boot-time network sampling (paper §3.4): "according to samplings
// performed on the different available NICs (this step is done at the
// NewMadeleine initialization time), an adaptive stripping ratio can be
// determined."
//
// Each rail is measured in isolation (a scratch single-link world built
// from the same host/NIC profiles): a small-message ping for latency and a
// sweep of bulk transfers fitted to T(s) = intercept + slope * s. The
// reciprocal slopes — the rails' effective bulk bandwidths — become the
// stripping weights.
#pragma once

#include <cstdint>
#include <vector>

#include "netmodel/nic_profile.hpp"

namespace nmad::sampling {

struct RailSample {
  std::string rail_name;
  /// Measured one-way latency of a minimal message, µs.
  double latency_us = 0.0;
  /// Linear fit of one-way bulk transfer time: T(s) = intercept + slope*s.
  double intercept_us = 0.0;
  double slope_us_per_byte = 0.0;
  /// Effective bulk bandwidth (1 / slope), MB/s.
  double bandwidth_mbps = 0.0;
  /// Fit quality (coefficient of determination).
  double fit_r2 = 0.0;
};

/// Sizes used for the bulk sweep (64 KB .. 4 MB, doubling).
std::vector<std::uint64_t> sampling_sizes();

/// Measure every rail in isolation.
std::vector<RailSample> sample_rails(const netmodel::HostProfile& host_a,
                                     const netmodel::HostProfile& host_b,
                                     const std::vector<netmodel::NicProfile>& links);

/// Convenience: normalized stripping weights (one per rail, summing to 1),
/// derived from sample_rails bandwidths.
std::vector<double> measure_rail_weights(
    const netmodel::HostProfile& host_a, const netmodel::HostProfile& host_b,
    const std::vector<netmodel::NicProfile>& links);

}  // namespace nmad::sampling
