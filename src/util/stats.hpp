// Small statistics helpers for benchmark reporting.
#pragma once

#include <cstddef>
#include <vector>

namespace nmad::util {

/// Streaming mean/variance/min/max (Welford's algorithm).
class RunningStats {
 public:
  void add(double x) noexcept;
  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ > 0 ? mean_ : 0.0; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Percentile of a sample set using linear interpolation between closest
/// ranks. `q` in [0, 1]. The input vector is copied and sorted.
double percentile(std::vector<double> samples, double q);

/// Median convenience wrapper.
inline double median(std::vector<double> samples) {
  return percentile(std::move(samples), 0.5);
}

/// Least-squares fit of y = a + b*x. Returns {a, b}; requires >= 2 points
/// with distinct x (panics otherwise).
struct LinearFit {
  double intercept;
  double slope;
  /// Coefficient of determination (1.0 = perfect fit).
  double r2;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace nmad::util
