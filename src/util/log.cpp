#include "util/log.hpp"

#include <atomic>
#include <cstdlib>

namespace nmad::util {

namespace {

LogLevel level_from_env() noexcept {
  const char* env = std::getenv("NMAD_LOG");
  return env != nullptr ? parse_log_level(env) : LogLevel::kOff;
}

std::atomic<LogLevel> g_level{level_from_env()};

constexpr const char* level_name(LogLevel lvl) noexcept {
  switch (lvl) {
    case LogLevel::kError: return "ERROR";
    case LogLevel::kWarn:  return "WARN ";
    case LogLevel::kInfo:  return "INFO ";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kOff:   return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel lvl) noexcept { g_level.store(lvl); }

LogLevel parse_log_level(std::string_view s) noexcept {
  if (s == "error") return LogLevel::kError;
  if (s == "warn") return LogLevel::kWarn;
  if (s == "info") return LogLevel::kInfo;
  if (s == "debug") return LogLevel::kDebug;
  if (s == "trace") return LogLevel::kTrace;
  return LogLevel::kOff;
}

namespace detail {

void log_write(LogLevel lvl, std::string_view tag, std::string_view msg) {
  std::fprintf(stderr, "[nmad %s] %-8.*s %.*s\n", level_name(lvl),
               static_cast<int>(tag.size()), tag.data(),
               static_cast<int>(msg.size()), msg.data());
}

}  // namespace detail
}  // namespace nmad::util
