#include "util/panic.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <string>

namespace nmad::util {

namespace {
std::atomic<PanicHook> g_hook{nullptr};
}  // namespace

void set_panic_hook(PanicHook hook) noexcept { g_hook.store(hook); }
PanicHook panic_hook() noexcept { return g_hook.load(); }

void panic(std::string_view msg, const char* file, int line) {
  if (PanicHook hook = g_hook.load()) {
    std::string full(msg);
    full += " (";
    full += file;
    full += ":";
    full += std::to_string(line);
    full += ")";
    hook(full);
    // A hook that returns violates its contract; fall through to abort so we
    // never continue with corrupt state.
  }
  std::fprintf(stderr, "nmad panic: %.*s (%s:%d)\n",
               static_cast<int>(msg.size()), msg.data(), file, line);
  std::fflush(stderr);
  std::abort();
}

}  // namespace nmad::util
