#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/panic.hpp"

namespace nmad::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double percentile(std::vector<double> samples, double q) {
  NMAD_ASSERT(!samples.empty(), "percentile of empty sample set");
  NMAD_ASSERT(q >= 0.0 && q <= 1.0, "percentile q out of [0,1]");
  std::sort(samples.begin(), samples.end());
  if (samples.size() == 1) return samples[0];
  const double rank = q * static_cast<double>(samples.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, samples.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return samples[lo] + frac * (samples[hi] - samples[lo]);
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  NMAD_ASSERT(x.size() == y.size(), "fit_linear size mismatch");
  NMAD_ASSERT(x.size() >= 2, "fit_linear needs >= 2 points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  NMAD_ASSERT(denom != 0.0, "fit_linear: all x identical");
  LinearFit fit{};
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.intercept + fit.slope * x[i];
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

}  // namespace nmad::util
