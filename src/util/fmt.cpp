#include "util/fmt.hpp"

#include <cstdarg>
#include <cstdio>

#include "util/panic.hpp"

namespace nmad::util {

std::string sformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  NMAD_ASSERT(needed >= 0, "vsnprintf encoding error");
  std::string out(static_cast<std::size_t>(needed), '\0');
  std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  va_end(args_copy);
  return out;
}

}  // namespace nmad::util
