#include "util/byte_size.hpp"

#include <cctype>
#include <cmath>
#include "util/fmt.hpp"

namespace nmad::util {

Expected<std::uint64_t> parse_byte_size(std::string_view text) {
  if (text.empty()) return make_error("empty byte size");

  std::size_t i = 0;
  while (i < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[i])) || text[i] == '.')) {
    ++i;
  }
  if (i == 0) return make_error(std::string("byte size must start with a digit: '") +
                                std::string(text) + "'");

  double number = 0.0;
  try {
    number = std::stod(std::string(text.substr(0, i)));
  } catch (const std::exception&) {
    return make_error(std::string("bad number in byte size: '") + std::string(text) + "'");
  }
  if (number < 0.0) return make_error("negative byte size");

  std::string_view suffix = text.substr(i);
  double mult = 1.0;
  if (!suffix.empty()) {
    char c = static_cast<char>(std::toupper(static_cast<unsigned char>(suffix[0])));
    switch (c) {
      case 'K': mult = 1024.0; break;
      case 'M': mult = 1024.0 * 1024.0; break;
      case 'G': mult = 1024.0 * 1024.0 * 1024.0; break;
      case 'B': mult = 1.0; break;
      default:
        return make_error(std::string("unknown byte-size suffix: '") +
                          std::string(suffix) + "'");
    }
    // Allow "KB", "KiB", "MB", ... — everything after the first letter must
    // be a plausible unit tail.
    std::string_view tail = suffix.substr(1);
    if (!(tail.empty() || tail == "B" || tail == "b" || tail == "iB" || tail == "ib")) {
      return make_error(std::string("unknown byte-size suffix: '") +
                        std::string(suffix) + "'");
    }
    if (c == 'B' && !tail.empty()) {
      return make_error(std::string("unknown byte-size suffix: '") +
                        std::string(suffix) + "'");
    }
  } else if (text.find('.') != std::string_view::npos) {
    return make_error("fractional byte count requires a unit suffix");
  }

  double value = number * mult;
  if (value > 9.0e18) return make_error("byte size overflows uint64");
  return static_cast<std::uint64_t>(std::llround(value));
}

std::string format_byte_size(std::uint64_t bytes) {
  constexpr std::uint64_t kKi = 1024;
  constexpr std::uint64_t kMi = kKi * 1024;
  constexpr std::uint64_t kGi = kMi * 1024;
  if (bytes >= kGi && bytes % kGi == 0) return sformat("%lluG", static_cast<unsigned long long>(bytes / kGi));
  if (bytes >= kMi && bytes % kMi == 0) return sformat("%lluM", static_cast<unsigned long long>(bytes / kMi));
  if (bytes >= kKi && bytes % kKi == 0) return sformat("%lluK", static_cast<unsigned long long>(bytes / kKi));
  return sformat("%llu", static_cast<unsigned long long>(bytes));
}

}  // namespace nmad::util
