// A small Expected<T, E> (C++23 std::expected is not available in C++20).
//
// Used for recoverable errors at API boundaries (configuration parsing,
// file I/O, socket setup). Internal invariant violations use NMAD_ASSERT
// instead — see panic.hpp for the rationale.
#pragma once

#include <string>
#include <utility>
#include <variant>

#include "util/panic.hpp"

namespace nmad::util {

/// Default error payload: a human-readable message.
struct Error {
  std::string message;
};

template <typename T, typename E = Error>
class [[nodiscard]] Expected {
 public:
  Expected(T value) : data_(std::in_place_index<0>, std::move(value)) {}
  Expected(E error) : data_(std::in_place_index<1>, std::move(error)) {}

  [[nodiscard]] bool has_value() const noexcept { return data_.index() == 0; }
  explicit operator bool() const noexcept { return has_value(); }

  /// Access the value; panics if this holds an error.
  T& value() & {
    NMAD_ASSERT(has_value(), "Expected::value() on error state");
    return std::get<0>(data_);
  }
  const T& value() const& {
    NMAD_ASSERT(has_value(), "Expected::value() on error state");
    return std::get<0>(data_);
  }
  T&& value() && {
    NMAD_ASSERT(has_value(), "Expected::value() on error state");
    return std::get<0>(std::move(data_));
  }

  T value_or(T fallback) const& {
    return has_value() ? std::get<0>(data_) : std::move(fallback);
  }

  /// Access the error; panics if this holds a value.
  const E& error() const& {
    NMAD_ASSERT(!has_value(), "Expected::error() on value state");
    return std::get<1>(data_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }

 private:
  std::variant<T, E> data_;
};

/// Expected<void>: success carries nothing.
template <typename E>
class [[nodiscard]] Expected<void, E> {
 public:
  Expected() : error_(), ok_(true) {}
  Expected(E error) : error_(std::move(error)), ok_(false) {}

  [[nodiscard]] bool has_value() const noexcept { return ok_; }
  explicit operator bool() const noexcept { return ok_; }

  const E& error() const& {
    NMAD_ASSERT(!ok_, "Expected::error() on value state");
    return error_;
  }

 private:
  E error_;
  bool ok_;
};

using Status = Expected<void, Error>;

inline Error make_error(std::string msg) { return Error{std::move(msg)}; }

}  // namespace nmad::util
