// Minimal leveled logger.
//
// The library logs nothing by default (benchmarks measure virtual time and
// must not be perturbed); set the NMAD_LOG environment variable to
// error|warn|info|debug|trace to enable output, or call set_level().
#pragma once

#include <cstdio>
#include <string_view>

#include "util/fmt.hpp"

namespace nmad::util {

enum class LogLevel : int { kOff = 0, kError, kWarn, kInfo, kDebug, kTrace };

/// Global log level. Initialized once from $NMAD_LOG (default: off).
LogLevel log_level() noexcept;
void set_log_level(LogLevel lvl) noexcept;

/// Parse "error"/"warn"/"info"/"debug"/"trace" (case-sensitive); anything
/// else maps to kOff.
LogLevel parse_log_level(std::string_view s) noexcept;

namespace detail {
void log_write(LogLevel lvl, std::string_view tag, std::string_view msg);
}  // namespace detail

/// Log with printf semantics, e.g. NMAD_LOG_INFO("core", "gate %u", id).
#define NMAD_LOG_AT(lvl, tag, ...)                                      \
  do {                                                                  \
    if (::nmad::util::log_level() >= (lvl)) {                           \
      ::nmad::util::detail::log_write((lvl), (tag),                     \
                                      ::nmad::util::sformat(__VA_ARGS__)); \
    }                                                                   \
  } while (0)

#define NMAD_LOG_ERROR(tag, ...) \
  NMAD_LOG_AT(::nmad::util::LogLevel::kError, tag, __VA_ARGS__)
#define NMAD_LOG_WARN(tag, ...) \
  NMAD_LOG_AT(::nmad::util::LogLevel::kWarn, tag, __VA_ARGS__)
#define NMAD_LOG_INFO(tag, ...) \
  NMAD_LOG_AT(::nmad::util::LogLevel::kInfo, tag, __VA_ARGS__)
#define NMAD_LOG_DEBUG(tag, ...) \
  NMAD_LOG_AT(::nmad::util::LogLevel::kDebug, tag, __VA_ARGS__)
#define NMAD_LOG_TRACE(tag, ...) \
  NMAD_LOG_AT(::nmad::util::LogLevel::kTrace, tag, __VA_ARGS__)

}  // namespace nmad::util
