// Deterministic PRNG (xoshiro256**) for tests and workload generation.
//
// std::mt19937 would work, but xoshiro is smaller, faster, and its output is
// stable across standard-library implementations, which keeps
// golden-value tests portable.
#pragma once

#include <cstdint>

namespace nmad::util {

class Xoshiro256 {
 public:
  explicit Xoshiro256(std::uint64_t seed) noexcept {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t z = seed;
    for (auto& word : s_) {
      z += 0x9e3779b97f4a7c15ULL;
      std::uint64_t x = z;
      x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
      x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
      word = x ^ (x >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Modulo bias is irrelevant for test workloads.
    return next() % bound;
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// UniformRandomBitGenerator interface for <algorithm> shuffles.
  using result_type = std::uint64_t;
  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~0ULL; }
  result_type operator()() noexcept { return next(); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace nmad::util
