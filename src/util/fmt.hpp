// printf-style string formatting.
//
// The toolchain this library targets (GCC 12 / C++20) predates
// std::format; sformat() is the project-wide replacement. It is
// type-checked by the compiler via the format attribute.
#pragma once

#include <string>

namespace nmad::util {

/// vsnprintf into a std::string. Panics on encoding errors.
#if defined(__GNUC__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
sformat(const char* fmt, ...);

}  // namespace nmad::util
