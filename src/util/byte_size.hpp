// Parsing and formatting of byte sizes ("4K", "8M", "512", "1.5M").
//
// Used by benchmark sweeps, examples and the sampling cache file. Binary
// units (K = 1024) throughout, matching the paper's axis labels.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "util/expected.hpp"

namespace nmad::util {

/// Parse a byte count. Accepts a non-negative decimal (possibly fractional
/// when suffixed) followed by an optional K/M/G suffix (case-insensitive,
/// optional trailing 'B' or 'iB'). Examples: "4", "4K", "1.5M", "2GiB".
Expected<std::uint64_t> parse_byte_size(std::string_view text);

/// Format a byte count compactly: exact multiples of 1024 use K/M/G
/// ("32K", "8M"), everything else plain bytes ("4", "12345").
std::string format_byte_size(std::uint64_t bytes);

}  // namespace nmad::util
