// Fatal-error handling for the nmad library.
//
// Internal invariant violations abort via nmad::util::panic() rather than
// throwing: a communication engine whose scheduler state is corrupt cannot
// meaningfully recover, and an immediate abort with a precise message is far
// easier to debug than an exception unwinding through event-loop callbacks.
// Recoverable conditions (bad user arguments, I/O failures) use
// nmad::util::Expected instead — see expected.hpp.
#pragma once

#include <string_view>

namespace nmad::util {

/// Print `msg` (with source location) to stderr and abort. Never returns.
[[noreturn]] void panic(std::string_view msg, const char* file, int line);

/// Installable hook for tests: when set, panic() calls it instead of
/// aborting. The hook must not return (it may throw, e.g. a test exception).
using PanicHook = void (*)(std::string_view msg);
void set_panic_hook(PanicHook hook) noexcept;
PanicHook panic_hook() noexcept;

}  // namespace nmad::util

/// Abort with a message if `cond` is false. Enabled in all build types:
/// scheduler invariants are cheap relative to packet processing, and silent
/// corruption is the worst possible failure mode for a communication engine.
#define NMAD_ASSERT(cond, msg)                                  \
  do {                                                          \
    if (!(cond)) [[unlikely]] {                                 \
      ::nmad::util::panic("assertion failed: " #cond " — " msg, \
                          __FILE__, __LINE__);                  \
    }                                                           \
  } while (0)

/// Unconditional failure (e.g. unreachable switch arms).
#define NMAD_PANIC(msg) ::nmad::util::panic((msg), __FILE__, __LINE__)
