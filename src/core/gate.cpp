#include "core/gate.hpp"

#include <algorithm>
#include <numeric>

#include "obs/registry.hpp"
#include "proto/wire.hpp"
#include "util/panic.hpp"

namespace nmad::core {

void Rail::Metrics::register_into(obs::MetricsRegistry& registry,
                                  const std::string& prefix) const {
  registry.add(prefix + "packets_sent", &packets_sent);
  registry.add(prefix + "bytes_sent", &bytes_sent);
  registry.add(prefix + "small_payload_bytes", &small_payload_bytes);
  registry.add(prefix + "large_payload_bytes", &large_payload_bytes);
  registry.add(prefix + "pio_transfers", &pio_transfers);
  registry.add(prefix + "rdv_transfers", &rdv_transfers);
  registry.add(prefix + "control_packets", &control_packets);
  registry.add(prefix + "segments_sent", &segments_sent);
  registry.add(prefix + "aggregation_hits", &aggregation_hits);
  registry.add(prefix + "aggregation_misses", &aggregation_misses);
  registry.add(prefix + "nic_wakeups", &nic_wakeups);
  registry.add(prefix + "bytes_copied", &bytes_copied);
  registry.add(prefix + "allocs_hot_path", &allocs_hot_path);
  registry.add(prefix + "packet_size", &packet_size);
}

namespace {

/// Header blocks hold the packet header plus one SegHeader per aggregated
/// segment (strategies cap aggregation well below this); control packets
/// also fit. Rounded up so recycled blocks never regrow.
constexpr std::size_t kHeaderBlockCapacity = 2048;

}  // namespace

void Gate::AdaptiveMetrics::register_into(obs::MetricsRegistry& registry,
                                          const std::string& prefix) const {
  registry.add(prefix + "ratio_updates", &ratio_updates);
  registry.add(prefix + "ratio_holds", &ratio_holds);
}

Gate::Gate(GateId id, std::vector<drv::Driver*> drivers,
           std::unique_ptr<strat::Strategy> strategy, strat::StrategyConfig config)
    : id_(id), strategy_(std::move(strategy)), config_(config),
      header_pool_(kHeaderBlockCapacity),
      staging_pool_(config.aggregation_limit),
      estimator_(drivers.size(), config.adaptive) {
  NMAD_ASSERT(!drivers.empty(), "gate needs at least one rail");
  NMAD_ASSERT(strategy_ != nullptr, "gate needs a strategy");
  rails_.reserve(drivers.size());
  for (std::size_t i = 0; i < drivers.size(); ++i) {
    NMAD_ASSERT(drivers[i] != nullptr, "null driver in gate");
    rails_.emplace_back(*drivers[i], static_cast<RailIndex>(i));
    rail_order_.push_back(static_cast<RailIndex>(i));
  }

  small_threshold_ = rails_[0].caps().max_small_packet;
  double best_latency = rails_[0].caps().latency_us;
  std::vector<double> default_weights;
  for (const Rail& r : rails_) {
    small_threshold_ = std::min(small_threshold_, r.caps().max_small_packet);
    if (r.caps().latency_us < best_latency) {
      best_latency = r.caps().latency_us;
      fastest_rail_ = r.index();
    }
    default_weights.push_back(r.caps().bandwidth_mbps);
  }
  set_ratios(std::move(default_weights));
}

Rail& Gate::rail(RailIndex i) {
  NMAD_ASSERT(i < rails_.size(), "rail index out of range");
  return rails_[i];
}

void Gate::recompute_fastest() {
  bool found = false;
  double best_latency = 0.0;
  for (const Rail& r : rails_) {
    if (!r.alive()) continue;
    if (!found || r.caps().latency_us < best_latency) {
      best_latency = r.caps().latency_us;
      fastest_rail_ = r.index();
      found = true;
    }
  }
  // No rail alive: leave the stale value; the gate is about to fail and
  // nothing consults fastest_rail() afterwards.
}

void Gate::set_ratios(std::vector<double> weights) {
  NMAD_ASSERT(weights.size() == rails_.size(), "one weight per rail required");
  const double sum = std::accumulate(weights.begin(), weights.end(), 0.0);
  NMAD_ASSERT(sum > 0.0, "ratio weights must have positive sum");
  for (double& w : weights) {
    NMAD_ASSERT(w >= 0.0, "negative ratio weight");
    w /= sum;
  }
  ratios_ = std::move(weights);
  // These weights become the adaptive prior. Scale them into MB/s currency
  // (against the summed nominal capability bandwidth) so they blend with
  // the estimator's live MB/s figures; the overall scale cancels in the
  // final normalization, only cross-rail proportions matter.
  prior_ratios_ = ratios_;
  double total_caps = 0.0;
  for (const Rail& r : rails_) total_caps += r.caps().bandwidth_mbps;
  prior_mbps_.resize(ratios_.size());
  for (std::size_t i = 0; i < ratios_.size(); ++i) {
    prior_mbps_[i] = prior_ratios_[i] * total_caps;
    estimator_.publish_weight(static_cast<RailIndex>(i), ratios_[i]);
  }
}

void Gate::maybe_refresh_ratios(sim::TimeNs now) {
  const auto& cfg = config_.adaptive;
  if (!cfg.enabled || failed_) return;
  if (now - last_ratio_refresh_ < cfg.window_ns) return;
  last_ratio_refresh_ = now;
  auto derived = estimator_.derive_ratios(prior_mbps_, ratios_, now);
  if (!derived.has_value()) {
    adaptive_metrics.ratio_holds.inc();
  } else {
    ratios_ = std::move(*derived);
    adaptive_metrics.ratio_updates.inc();
    for (std::size_t i = 0; i < ratios_.size(); ++i) {
      estimator_.publish_weight(static_cast<RailIndex>(i), ratios_[i]);
    }
  }
  // Even on a hysteresis hold the *ordering* signals refresh: the pump's
  // rail-offer order (greedy strategies drain fast rails first) and the
  // fastest-rail pick for aggregated smalls follow the live estimates.
  std::vector<double> rates(rails_.size());
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    rates[i] =
        estimator_.effective_rate(static_cast<RailIndex>(i), prior_mbps_[i], now);
  }
  std::stable_sort(rail_order_.begin(), rail_order_.end(),
                   [&rates](RailIndex a, RailIndex b) {
                     return rates[a] > rates[b];
                   });

  // Fastest rail (eager/aggregation target): blend the capability latency
  // toward the measured rtt/2 by confidence. Without RTT samples (acks
  // off) this degrades to the capability figure, exactly the static pick.
  bool found = false;
  double best = 0.0;
  for (const Rail& r : rails_) {
    if (!r.alive()) continue;
    const double est_lat = estimator_.latency_us(r.index());
    double lat = r.caps().latency_us;
    if (est_lat > 0.0) {
      const double c = estimator_.confidence(r.index(), now);
      lat = (1.0 - c) * lat + c * est_lat;
    }
    if (!found || lat < best) {
      best = lat;
      fastest_rail_ = r.index();
      found = true;
    }
  }
}

double Gate::ratio(RailIndex i) const {
  NMAD_ASSERT(i < ratios_.size(), "ratio index out of range");
  return ratios_[i];
}

}  // namespace nmad::core
