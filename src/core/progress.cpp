#include "core/progress.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "sim/engine.hpp"
#include "util/log.hpp"
#include "util/panic.hpp"

namespace nmad::core {

namespace {

/// Escalating backoff for spin loops: stay hot for a few rounds, then
/// yield, then sleep — progress latency matters less than not burning a
/// core once the world has gone quiet.
void backoff(std::uint32_t round) {
  if (round < 16) return;
  if (round < 64) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

}  // namespace

ProgressMode progress_mode_from_env() {
  const char* v = std::getenv("NMAD_PROGRESS_MODE");
  if (v == nullptr) return ProgressMode::kDefault;
  if (std::strcmp(v, "threaded") == 0) return ProgressMode::kThreaded;
  if (std::strcmp(v, "serial") == 0) return ProgressMode::kSerial;
  NMAD_LOG_WARN("core", "NMAD_PROGRESS_MODE=%s not recognized, using serial", v);
  return ProgressMode::kDefault;
}

ProgressMode resolve_progress_mode(ProgressMode requested) {
  if (requested != ProgressMode::kDefault) return requested;
  const ProgressMode env = progress_mode_from_env();
  return env == ProgressMode::kDefault ? ProgressMode::kSerial : env;
}

const char* to_string(ProgressMode mode) {
  switch (mode) {
    case ProgressMode::kDefault:
      return "default";
    case ProgressMode::kSerial:
      return "serial";
    case ProgressMode::kThreaded:
      return "threaded";
  }
  NMAD_PANIC("bad ProgressMode");
}

ProgressEngine::ProgressEngine(Scheduler& scheduler, Config config, Hooks hooks)
    : scheduler_(scheduler),
      cfg_(config),
      hooks_(std::move(hooks)),
      submission_(cfg_.submission_capacity),
      completion_(cfg_.completion_capacity) {
  NMAD_ASSERT(hooks_.lock != nullptr, "ProgressEngine needs a progress mutex");
  NMAD_ASSERT(cfg_.threads >= 1, "ProgressEngine needs at least one thread");
  // Fired on a progress thread under the world lock; the push is the
  // SPSC producer side, serialized across threads by that same lock.
  scheduler_.set_completion_hook([this](const CompletionEvent& ev) {
    CompletionEvent copy = ev;
    if (!completion_.try_push(std::move(copy))) {
      completions_dropped_.fetch_add(1, std::memory_order_relaxed);
    }
  });
  threads_.reserve(cfg_.threads);
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    threads_.emplace_back([this, i] { thread_main(i); });
  }
}

ProgressEngine::~ProgressEngine() {
  stop();
  scheduler_.set_completion_hook(nullptr);
}

void ProgressEngine::stop() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

void ProgressEngine::push_submission(SubmitOp op) {
  // Backpressure: the ring is bounded, so a submission burst faster than
  // the progression can drain simply slows the application thread down to
  // the drain rate. try_push does not consume `op` on failure.
  std::uint32_t round = 0;
  while (!submission_.try_push(std::move(op))) {
    if (round == 0) {
      submission_backpressure_.fetch_add(1, std::memory_order_relaxed);
    }
    backoff(++round);
  }
}

void ProgressEngine::submit(SendHandle h) {
  SubmitOp op;
  op.send = std::move(h);
  push_submission(std::move(op));
}

void ProgressEngine::submit(RecvHandle h) {
  SubmitOp op;
  op.recv = std::move(h);
  push_submission(std::move(op));
}

bool ProgressEngine::drain_submissions() {
  SubmitOp op;
  bool any = false;
  while (submission_.try_pop(op)) {
    if (op.send != nullptr) {
      scheduler_.submit_send(std::move(op.send));
    } else if (op.recv != nullptr) {
      scheduler_.submit_recv(std::move(op.recv));
    }
    any = true;
  }
  return any;
}

void ProgressEngine::thread_main(std::size_t rail) {
  std::uint32_t idle_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    if (hooks_.lock->try_lock()) {
      std::lock_guard<std::mutex> guard(*hooks_.lock, std::adopt_lock);
      if (drain_submissions()) progressed = true;
      if (hooks_.engine != nullptr) {
        for (std::size_t i = 0; i < cfg_.engine_batch; ++i) {
          if (!hooks_.engine->step()) break;
          progressed = true;
        }
      }
      if (hooks_.poll && hooks_.poll(rail)) progressed = true;
      if (!progressed && hooks_.idle) hooks_.idle();
    }
    if (progressed) {
      idle_rounds = 0;
    } else {
      backoff(++idle_rounds);
    }
  }
}

void ProgressEngine::wait(const std::function<bool()>& pred) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point quiet_since{};
  bool quiet = false;
  std::uint32_t round = 0;
  while (!pred()) {
    backoff(++round);
    if (cfg_.stall_timeout_ms == 0) continue;
    // Deadlock watchdog: "quiet" must hold CONTINUOUSLY for the timeout —
    // a progress thread can be mid-callback with the queue momentarily
    // empty, so one quiet sample proves nothing.
    const bool is_quiet =
        (hooks_.engine == nullptr || hooks_.engine->idle()) &&
        submission_.empty();
    if (!is_quiet) {
      quiet = false;
      continue;
    }
    const auto now = Clock::now();
    if (!quiet) {
      quiet = true;
      quiet_since = now;
    } else if (now - quiet_since >
               std::chrono::milliseconds(cfg_.stall_timeout_ms)) {
      NMAD_PANIC(
          "threaded wait stalled: engine idle, submissions drained, predicate "
          "still false (deadlock in the communication pattern?)");
    }
  }
}

}  // namespace nmad::core
