#include "core/progress.hpp"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "obs/registry.hpp"
#include "sim/engine.hpp"
#include "util/log.hpp"
#include "util/panic.hpp"

namespace nmad::core {

namespace {

/// Monotonic engine identity — never reused, so a thread-local cache entry
/// for a destroyed engine can never alias a live one (even if the new
/// engine reuses the old one's heap address).
std::atomic<std::uint64_t> g_engine_ids{1};

/// Process-wide submitting-thread identity (std::thread::id is not usable
/// as a cheap map key across implementations).
std::atomic<std::uint64_t> g_thread_ids{1};

std::uint64_t this_thread_id() {
  thread_local std::uint64_t id = 0;
  if (id == 0) id = g_thread_ids.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Thread-local memo of this thread's lane slot per engine: the fast path
/// of submit()/pop_completion() resolves the lane without touching the
/// engine's registration mutex. Misses (cold thread, evicted entry) fall
/// back to the authoritative map, which always returns the SAME slot for
/// the same thread — an eviction can never split one thread's stream
/// across two lanes.
struct LaneCacheEntry {
  std::uint64_t engine_id = 0;  ///< 0 = empty
  std::uint32_t slot = 0;
};
constexpr std::size_t kLaneCacheSize = 8;
thread_local std::array<LaneCacheEntry, kLaneCacheSize> tls_lane_cache{};
thread_local std::uint32_t tls_lane_cache_clock = 0;

}  // namespace

ProgressMode progress_mode_from_env() {
  const char* v = std::getenv("NMAD_PROGRESS_MODE");
  if (v == nullptr) return ProgressMode::kDefault;
  if (std::strcmp(v, "threaded") == 0) return ProgressMode::kThreaded;
  if (std::strcmp(v, "serial") == 0) return ProgressMode::kSerial;
  NMAD_LOG_WARN("core", "NMAD_PROGRESS_MODE=%s not recognized, using serial", v);
  return ProgressMode::kDefault;
}

ProgressMode resolve_progress_mode(ProgressMode requested) {
  if (requested != ProgressMode::kDefault) return requested;
  const ProgressMode env = progress_mode_from_env();
  return env == ProgressMode::kDefault ? ProgressMode::kSerial : env;
}

std::size_t ring_capacity_from_env(const char* var, std::size_t fallback) {
  const char* v = std::getenv(var);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(v, &end, 10);
  if (end == v || *end != '\0' || parsed == 0) {
    NMAD_LOG_WARN("core", "%s=%s not a positive integer, using %zu", var, v,
                  fallback);
    return fallback;
  }
  return static_cast<std::size_t>(parsed);
}

const char* to_string(ProgressMode mode) {
  switch (mode) {
    case ProgressMode::kDefault:
      return "default";
    case ProgressMode::kSerial:
      return "serial";
    case ProgressMode::kThreaded:
      return "threaded";
  }
  NMAD_PANIC("bad ProgressMode");
}

ProgressEngine::ProgressEngine(Scheduler& scheduler, Config config, Hooks hooks)
    : scheduler_(scheduler),
      cfg_(config),
      hooks_(std::move(hooks)),
      engine_id_(g_engine_ids.fetch_add(1, std::memory_order_relaxed)) {
  NMAD_ASSERT(hooks_.lock != nullptr, "ProgressEngine needs a progress mutex");
  NMAD_ASSERT(cfg_.threads >= 1, "ProgressEngine needs at least one thread");
  // Fired on a progress thread under the world lock; that lock serializes
  // the progress threads into one logical producer per completion ring.
  scheduler_.set_completion_hook(
      [this](const CompletionEvent& ev) { deliver_completion(ev); });
  threads_.reserve(cfg_.threads);
  for (std::size_t i = 0; i < cfg_.threads; ++i) {
    threads_.emplace_back([this, i] { thread_main(i); });
  }
}

ProgressEngine::~ProgressEngine() {
  stop();
  scheduler_.set_completion_hook(nullptr);
}

void ProgressEngine::stop() {
  stop_.store(true, std::memory_order_release);
  for (std::thread& t : threads_) {
    if (t.joinable()) t.join();
  }
  threads_.clear();
}

std::uint32_t ProgressEngine::caller_slot() {
  for (const LaneCacheEntry& e : tls_lane_cache) {
    if (e.engine_id == engine_id_) return e.slot;
  }
  const std::uint64_t tid = this_thread_id();
  std::uint32_t slot;
  {
    std::lock_guard<std::mutex> lock(lanes_mu_);
    auto it = slot_by_thread_.find(tid);
    if (it != slot_by_thread_.end()) {
      slot = it->second;
    } else {
      slot = lane_count_.load(std::memory_order_relaxed);
      NMAD_ASSERT(slot < kMaxSubmitLanes,
                  "too many submitting threads for one progress engine "
                  "(kMaxSubmitLanes)");
      lanes_[slot] = std::make_unique<ThreadLane>(cfg_.submission_capacity,
                                                  cfg_.completion_capacity);
      slot_by_thread_.emplace(tid, slot);
      // Release-publish the lane AFTER its construction so progress
      // threads that acquire lane_count_ see a fully built ThreadLane.
      lane_count_.store(slot + 1, std::memory_order_release);
    }
  }
  // Memoize: prefer an empty cache entry, else evict round-robin.
  for (LaneCacheEntry& e : tls_lane_cache) {
    if (e.engine_id == 0) {
      e = LaneCacheEntry{engine_id_, slot};
      return slot;
    }
  }
  tls_lane_cache[tls_lane_cache_clock++ % kLaneCacheSize] =
      LaneCacheEntry{engine_id_, slot};
  return slot;
}

void ProgressEngine::push_submission(ThreadLane& lane, SubmitOp op) {
  // Backpressure: the ring is bounded, so a submission burst faster than
  // the progression can drain simply slows the application thread down to
  // the drain rate. Lossless — spins forever rather than dropping.
  const bool pushed = spsc_push_backoff(
      lane.submission, std::move(op), ~std::uint64_t{0}, [this] {
        submission_stalls_.fetch_add(1, std::memory_order_relaxed);
      });
  NMAD_ASSERT(pushed, "unbounded submission push returned");
}

void ProgressEngine::submit(SendHandle h) {
  const std::uint32_t slot = caller_slot();
  h->note_submit_lane(slot);
  SubmitOp op;
  op.send = std::move(h);
  push_submission(*lanes_[slot], std::move(op));
}

void ProgressEngine::submit(RecvHandle h) {
  const std::uint32_t slot = caller_slot();
  h->note_submit_lane(slot);
  SubmitOp op;
  op.recv = std::move(h);
  push_submission(*lanes_[slot], std::move(op));
}

bool ProgressEngine::drain_submissions() {
  bool any = false;
  const std::uint32_t n = lane_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    ThreadLane& lane = *lanes_[i];
    SubmitOp op;
    for (std::size_t k = 0; k < cfg_.drain_chunk; ++k) {
      // Account the op as in flight BEFORE popping: between the pop (ring
      // now empty) and submit (engine now busy) the wait() watchdog would
      // otherwise sample the world as quiet — and a drain thread starved
      // right here for stall_timeout_ms would turn that into a spurious
      // deadlock panic. The increment is sequenced before the pop's head
      // release-store, so a waiter that observes the empty ring also
      // observes the in-flight count.
      inflight_submissions_.fetch_add(1, std::memory_order_relaxed);
      if (!lane.submission.try_pop(op)) {
        inflight_submissions_.fetch_sub(1, std::memory_order_release);
        break;
      }
      if (op.send != nullptr) {
        scheduler_.submit_send(std::move(op.send));
      } else if (op.recv != nullptr) {
        scheduler_.submit_recv(std::move(op.recv));
      }
      inflight_submissions_.fetch_sub(1, std::memory_order_release);
      any = true;
    }
  }
  return any;
}

void ProgressEngine::flush_submissions() {
  std::lock_guard<std::mutex> lock(*hooks_.lock);
  // Loop until one full round-robin pass over all lanes moves nothing:
  // everything pushed before the call is then in the scheduler. Requests
  // racing in concurrently may land in a later pass or stay queued.
  while (drain_submissions()) {
  }
}

void ProgressEngine::deliver_completion(const CompletionEvent& ev) {
  completions_enqueued_.fetch_add(1, std::memory_order_relaxed);
  const std::uint32_t lanes = lane_count_.load(std::memory_order_acquire);
  if (ev.lane == kNoSubmitLane || ev.lane >= lanes) {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    fallback_.push_back(ev);
    fallback_nonempty_.store(true, std::memory_order_release);
    return;
  }
  ThreadLane& lane = *lanes_[ev.lane];
  {
    // While the overflow is non-empty, the ring must not be fed — the
    // consumer drains ring-before-overflow, so a ring push here would
    // deliver this event ahead of older spilled ones.
    std::lock_guard<std::mutex> lock(lane.overflow_mu);
    if (!lane.overflow.empty()) {
      completion_overflows_.fetch_add(1, std::memory_order_relaxed);
      lane.overflow.push_back(ev);
      return;
    }
  }
  CompletionEvent copy = ev;
  const bool pushed = spsc_push_backoff(
      lane.completion, std::move(copy), cfg_.completion_spin_rounds, [this] {
        completion_stalls_.fetch_add(1, std::memory_order_relaxed);
      });
  if (pushed) return;
  // Bounded spin exhausted: the submitting thread is not draining its
  // ring. Spill losslessly — the producer holds the world mutex and must
  // never block indefinitely on the application.
  completion_overflows_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(lane.overflow_mu);
  lane.overflow.push_back(std::move(copy));
  lane.overflow_nonempty.store(true, std::memory_order_release);
}

bool ProgressEngine::pop_completion(CompletionEvent& out) {
  const std::uint32_t slot = caller_slot();
  ThreadLane& lane = *lanes_[slot];
  // Ring before overflow: ring entries are always older (the producer
  // stops feeding the ring once the lane has spilled).
  if (lane.completion.try_pop(out)) return true;
  if (lane.overflow_nonempty.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(lane.overflow_mu);
    if (!lane.overflow.empty()) {
      out = std::move(lane.overflow.front());
      lane.overflow.pop_front();
      if (lane.overflow.empty()) {
        lane.overflow_nonempty.store(false, std::memory_order_release);
      }
      return true;
    }
  }
  if (fallback_nonempty_.load(std::memory_order_acquire)) {
    std::lock_guard<std::mutex> lock(fallback_mu_);
    if (!fallback_.empty()) {
      out = std::move(fallback_.front());
      fallback_.pop_front();
      if (fallback_.empty()) {
        fallback_nonempty_.store(false, std::memory_order_release);
      }
      return true;
    }
  }
  return false;
}

bool ProgressEngine::submissions_idle() const {
  const std::uint32_t n = lane_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    if (!lanes_[i]->submission.empty()) return false;
  }
  // Checked after the rings: an op popped but not yet in the scheduler is
  // still pending work (see drain_submissions). The acquire pairs with the
  // drain's release decrement, so count==0 implies the submit's engine
  // events are visible to a subsequent engine->idle() sample.
  return inflight_submissions_.load(std::memory_order_acquire) == 0;
}

void ProgressEngine::register_metrics(obs::MetricsRegistry& registry,
                                      const std::string& prefix) {
  registry.add(prefix + "submit.stalls", &submission_stalls_);
  registry.add(prefix + "ring.stalls", &completion_stalls_);
  registry.add(prefix + "ring.overflows", &completion_overflows_);
  registry.add(prefix + "completions", &completions_enqueued_);
}

void ProgressEngine::thread_main(std::size_t rail) {
  std::uint32_t idle_rounds = 0;
  while (!stop_.load(std::memory_order_acquire)) {
    bool progressed = false;
    if (hooks_.lock->try_lock()) {
      std::lock_guard<std::mutex> guard(*hooks_.lock, std::adopt_lock);
      if (drain_submissions()) progressed = true;
      if (hooks_.engine != nullptr) {
        for (std::size_t i = 0; i < cfg_.engine_batch; ++i) {
          if (!hooks_.engine->step()) break;
          progressed = true;
        }
      }
      if (hooks_.poll && hooks_.poll(rail)) progressed = true;
      if (!progressed && hooks_.idle) hooks_.idle();
    }
    if (progressed) {
      idle_rounds = 0;
    } else {
      ring_backoff(++idle_rounds);
    }
  }
}

void ProgressEngine::wait(const std::function<bool()>& pred) {
  using Clock = std::chrono::steady_clock;
  Clock::time_point quiet_since{};
  bool quiet = false;
  std::uint32_t round = 0;
  while (!pred()) {
    ring_backoff(++round);
    if (cfg_.stall_timeout_ms == 0) continue;
    // Deadlock watchdog: "quiet" must hold CONTINUOUSLY for the timeout —
    // a progress thread can be mid-callback with the queues momentarily
    // empty, so one quiet sample proves nothing.
    const bool is_quiet =
        (hooks_.engine == nullptr || hooks_.engine->idle()) &&
        submissions_idle();
    if (!is_quiet) {
      quiet = false;
      continue;
    }
    const auto now = Clock::now();
    if (!quiet) {
      quiet = true;
      quiet_since = now;
    } else if (now - quiet_since >
               std::chrono::milliseconds(cfg_.stall_timeout_ms)) {
      NMAD_PANIC(
          "threaded wait stalled: engine idle, submissions drained, predicate "
          "still false (deadlock in the communication pattern?)");
    }
  }
}

}  // namespace nmad::core
