// Session: the collect layer (paper §2, top layer) — the application-facing
// message-passing API. Messages are built incrementally from segments
// (pack interface) or submitted in one call; all operations are
// non-blocking, and wait() drives the progression engine until completion.
//
// The same Session runs over the simulator (virtual time) or over real
// drivers: the difference is encapsulated in the clock and progress
// functions supplied at construction.
#pragma once

#include <functional>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/scheduler.hpp"

namespace nmad::core {

class Session;

/// Incremental construction of an outgoing message (one or more segments).
/// Segments reference user memory: they are not copied at pack time and
/// must stay valid until the submitted request completes.
class PackBuilder {
 public:
  PackBuilder& add(std::span<const std::byte> segment);
  /// Submit the message; the builder must not be reused afterwards.
  SendHandle submit();

 private:
  friend class Session;
  PackBuilder(Session& session, GateId gate, Tag tag)
      : session_(&session), gate_(gate), tag_(tag) {}
  Session* session_;
  GateId gate_;
  Tag tag_;
  std::vector<std::span<const std::byte>> segments_;
  bool submitted_ = false;
};

/// Incremental extraction of an incoming message into scattered user
/// buffers. The message is received into the registered spans in order.
class UnpackBuilder {
 public:
  UnpackBuilder& add(std::span<std::byte> segment);
  /// Post the receive; completion scatters the payload into the segments.
  RecvHandle submit();

 private:
  friend class Session;
  UnpackBuilder(Session& session, GateId gate, Tag tag)
      : session_(&session), gate_(gate), tag_(tag) {}
  Session* session_;
  GateId gate_;
  Tag tag_;
  std::vector<std::span<std::byte>> segments_;
  bool submitted_ = false;
};

class Session {
 public:
  /// `progress(pred)` must drive the underlying engine until pred() holds
  /// (panicking or returning with pred false only if progress is
  /// impossible — a deadlock in the application's communication pattern).
  using ProgressFn = std::function<void(const std::function<bool()>&)>;

  /// `timer` is optional: required only when gates enable ack/retransmit
  /// (core/reliability.hpp) — it backs the RTO and delayed-ack timers.
  Session(std::string name, Scheduler::ClockFn clock, Scheduler::DeferFn defer,
          ProgressFn progress, Scheduler::TimerFn timer = nullptr);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

  /// Create a gate towards a peer over the given rails, with a strategy
  /// created by strat::make_strategy(strategy_name, cfg).
  GateId connect(std::vector<drv::Driver*> rails, std::string_view strategy_name,
                 const strat::StrategyConfig& cfg = {});

  // --- contiguous convenience API ----------------------------------------
  SendHandle isend(GateId gate, Tag tag, std::span<const std::byte> data);
  RecvHandle irecv(GateId gate, Tag tag, std::span<std::byte> buffer);

  /// Submit a multi-segment message in one call.
  SendHandle isend_segments(GateId gate, Tag tag,
                            std::vector<std::span<const std::byte>> segments);

  // --- incremental pack/unpack API ----------------------------------------
  [[nodiscard]] PackBuilder pack(GateId gate, Tag tag) {
    return PackBuilder(*this, gate, tag);
  }
  [[nodiscard]] UnpackBuilder unpack(GateId gate, Tag tag) {
    return UnpackBuilder(*this, gate, tag);
  }

  // --- completion ----------------------------------------------------------
  void wait(const SendHandle& h);
  void wait(const RecvHandle& h);
  void wait_all(std::span<const SendHandle> sends, std::span<const RecvHandle> recvs);
  [[nodiscard]] static bool test(const SendHandle& h) { return h->completed(); }
  [[nodiscard]] static bool test(const RecvHandle& h) { return h->completed(); }

  [[nodiscard]] sim::TimeNs now() const { return scheduler_.now(); }

  // --- observability --------------------------------------------------------
  /// Register every metric of this session (request aggregates, per-gate
  /// strategy counters, per-rail counters incl. driver internals) under
  /// `prefix` (e.g. "a."). Empty prefix uses "<session name>.".
  void register_metrics(obs::MetricsRegistry& registry, std::string prefix = "");

 private:
  friend class UnpackBuilder;

  /// Scatter bookkeeping for unpack receives: the message lands in a
  /// contiguous staging buffer, then is copied into the user segments when
  /// the application waits on (or tests) the handle.
  struct PendingUnpack {
    RecvHandle handle;
    std::shared_ptr<std::vector<std::byte>> staging;
    std::vector<std::span<std::byte>> segments;
  };
  RecvHandle post_unpack(GateId gate, Tag tag, std::vector<std::span<std::byte>> segments);
  void scatter_ready_unpacks();

  std::string name_;
  Scheduler scheduler_;
  ProgressFn progress_;
  std::vector<PendingUnpack> pending_unpacks_;
};

}  // namespace nmad::core
