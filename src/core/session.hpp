// Session: the collect layer (paper §2, top layer) — the application-facing
// message-passing API. Messages are built incrementally from segments
// (pack interface) or submitted in one call; all operations are
// non-blocking, and wait() drives the progression engine until completion.
//
// The same Session runs over the simulator (virtual time) or over real
// drivers: the difference is encapsulated in the clock and progress
// functions supplied at construction.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <span>
#include <string>
#include <vector>

#include "core/request_group.hpp"
#include "core/scheduler.hpp"

namespace nmad::sim {
class Engine;
}  // namespace nmad::sim

namespace nmad::core {

class ProgressEngine;
class Session;

/// Incremental construction of an outgoing message (one or more segments).
/// Segments reference user memory: they are not copied at pack time and
/// must stay valid until the submitted request completes.
class PackBuilder {
 public:
  PackBuilder& add(std::span<const std::byte> segment);
  /// Submit the message; the builder must not be reused afterwards.
  SendHandle submit();

 private:
  friend class Session;
  PackBuilder(Session& session, GateId gate, Tag tag)
      : session_(&session), gate_(gate), tag_(tag) {}
  Session* session_;
  GateId gate_;
  Tag tag_;
  std::vector<std::span<const std::byte>> segments_;
  bool submitted_ = false;
};

/// Incremental extraction of an incoming message into scattered user
/// buffers. The message is received into the registered spans in order.
class UnpackBuilder {
 public:
  UnpackBuilder& add(std::span<std::byte> segment);
  /// Post the receive; completion scatters the payload into the segments.
  RecvHandle submit();

 private:
  friend class Session;
  UnpackBuilder(Session& session, GateId gate, Tag tag)
      : session_(&session), gate_(gate), tag_(tag) {}
  Session* session_;
  GateId gate_;
  Tag tag_;
  std::vector<std::span<std::byte>> segments_;
  bool submitted_ = false;
};

class Session {
 public:
  /// `progress(pred)` must drive the underlying engine until pred() holds
  /// (panicking or returning with pred false only if progress is
  /// impossible — a deadlock in the application's communication pattern).
  using ProgressFn = std::function<void(const std::function<bool()>&)>;

  /// `timer` is optional: required only when gates enable ack/retransmit
  /// (core/reliability.hpp) — it backs the RTO and delayed-ack timers.
  Session(std::string name, Scheduler::ClockFn clock, Scheduler::DeferFn defer,
          ProgressFn progress, Scheduler::TimerFn timer = nullptr);
  ~Session();

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Scheduler& scheduler() noexcept { return scheduler_; }

  // --- threaded progression (core/progress.hpp) ---------------------------
  /// Switch this session to threaded progression: each submitting app
  /// thread gets its own lock-free submission/completion ring pair and
  /// `threads` progress threads (one per rail) drive the scheduler under
  /// `world_mutex`. Later connect()s are allowed if made under
  /// `world_mutex` (lazy establishment); all sessions sharing
  /// `engine` must be stop_threaded()'d before any of them is destroyed
  /// (engine events cross sessions). `engine` may be null for real
  /// drivers — then `poll` does the work. `idle` runs under the lock when
  /// a progress round moves nothing. `submit_ring_capacity` /
  /// `completion_ring_capacity` size each per-thread ring; 0 follows
  /// NMAD_SUBMIT_RING_CAP / NMAD_COMPLETION_RING_CAP, else the engine
  /// defaults (1024 / 4096).
  void start_threaded(std::mutex& world_mutex, sim::Engine* engine,
                      std::size_t threads,
                      std::function<void()> idle = nullptr,
                      std::function<bool(std::size_t)> poll = nullptr,
                      std::size_t submit_ring_capacity = 0,
                      std::size_t completion_ring_capacity = 0);
  /// Join the progress threads and fall back to serial entry points.
  void stop_threaded();
  [[nodiscard]] bool threaded() const noexcept {
    return progress_engine_ != nullptr;
  }
  /// The live engine in threaded mode (per-thread completion rings,
  /// backpressure counters); null in serial mode.
  [[nodiscard]] ProgressEngine* progress_engine() noexcept {
    return progress_engine_.get();
  }
  /// Burst scope: in threaded mode, blocks the progress threads while the
  /// returned lock is held so a series of isend/irecv calls lands in one
  /// strategy optimization window (the serial semantics). Returns an empty
  /// (lock-free) guard in serial mode.
  ///
  /// The lock is the WORLD progress mutex, shared by every session of the
  /// world: a burst taken on session A also freezes session B's drain (and
  /// the whole sim engine), and two app threads taking "bursts on
  /// different sessions" simply serialize — the second blocks until the
  /// first releases; their windows never overlap and never deadlock
  /// (single lock). OTHER threads may keep submitting on any session while
  /// a burst is held: pushes are lock-free and land in the frozen window,
  /// bounded per thread by the per-lane ring capacity (beyond it the
  /// submitter spins until the burst ends). Never wait() while holding a
  /// burst — the engine cannot run.
  [[nodiscard]] std::unique_lock<std::mutex> submission_burst();
  /// Threaded mode: block until every isend/irecv issued — by any thread,
  /// on this session — before this call has been drained into the
  /// scheduler (e.g. so receives are matchable before a peer's sends are
  /// released). Takes the world mutex, so it blocks while any burst is
  /// held (do not call it from a thread holding one). Submissions racing
  /// in concurrently with the call may or may not be included. No-op in
  /// serial mode, where submission is synchronous.
  void flush_submissions();

  /// Create a gate towards a peer over the given rails, with a strategy
  /// created by strat::make_strategy(strategy_name, cfg).
  GateId connect(std::vector<drv::Driver*> rails, std::string_view strategy_name,
                 const strat::StrategyConfig& cfg = {});

  // --- contiguous convenience API ----------------------------------------
  SendHandle isend(GateId gate, Tag tag, std::span<const std::byte> data);
  RecvHandle irecv(GateId gate, Tag tag, std::span<std::byte> buffer);

  /// Submit a multi-segment message in one call.
  SendHandle isend_segments(GateId gate, Tag tag,
                            std::vector<std::span<const std::byte>> segments);

  // --- incremental pack/unpack API ----------------------------------------
  [[nodiscard]] PackBuilder pack(GateId gate, Tag tag) {
    return PackBuilder(*this, gate, tag);
  }
  [[nodiscard]] UnpackBuilder unpack(GateId gate, Tag tag) {
    return UnpackBuilder(*this, gate, tag);
  }

  // --- completion ----------------------------------------------------------
  void wait(const SendHandle& h);
  void wait(const RecvHandle& h);
  void wait_all(std::span<const SendHandle> sends, std::span<const RecvHandle> recvs);
  /// Wait until every member of a (possibly multi-gate) group settles.
  void wait_group(const RequestGroup& group) {
    wait_all(group.sends(), group.recvs());
  }
  [[nodiscard]] static bool test(const SendHandle& h) { return h->completed(); }
  [[nodiscard]] static bool test(const RecvHandle& h) { return h->completed(); }

  [[nodiscard]] sim::TimeNs now() const { return scheduler_.now(); }

  // --- observability --------------------------------------------------------
  /// Register every metric of this session (request aggregates, per-gate
  /// strategy counters, per-rail counters incl. driver internals) under
  /// `prefix` (e.g. "a."). Empty prefix uses "<session name>.".
  void register_metrics(obs::MetricsRegistry& registry, std::string prefix = "");

 private:
  friend class UnpackBuilder;

  /// Scatter bookkeeping for unpack receives: the message lands in a
  /// contiguous staging buffer, then is copied into the user segments when
  /// the application waits on (or tests) the handle.
  struct PendingUnpack {
    RecvHandle handle;
    std::shared_ptr<std::vector<std::byte>> staging;
    std::vector<std::span<std::byte>> segments;
  };
  RecvHandle post_unpack(GateId gate, Tag tag, std::vector<std::span<std::byte>> segments);
  void scatter_ready_unpacks();

  std::string name_;
  Scheduler scheduler_;
  ProgressFn progress_;
  /// Live only in threaded mode. Declared after scheduler_ so it is
  /// destroyed (threads joined, completion hook removed) first.
  std::unique_ptr<ProgressEngine> progress_engine_;
  std::vector<PendingUnpack> pending_unpacks_;
};

}  // namespace nmad::core
