// RailGuard: per-rail reliability — sequencing, acknowledgement,
// retransmission and the rail health state machine.
//
// One guard sits between the scheduler and each rail's driver. On the way
// down it seals every frame with the reliability envelope (per-track
// sequence number, piggybacked cumulative acks, CRC32C over the gathered
// spans); on the way up it validates, deduplicates and acknowledges frames
// before handing the bare packet to the scheduler. With acknowledgements
// enabled it additionally retains each posted frame until the peer acks
// it, retransmitting after a timeout with exponential backoff + jitter,
// and drives the healthy → suspect → dead state machine (see
// core/reliability.hpp). A dead rail's retained frames are surrendered via
// take_unacked() for the scheduler to requeue on the survivors.
//
// Two opt-in extensions close the lifecycle:
//
//  - Keepalive probing (`keepalive_enabled`): a rail with no receive
//    activity for `keepalive_idle_ns` gets envelope-only probe frames;
//    unanswered probes count as misses and declare the rail dead after
//    `probe_max_misses` — so a killed link is detected even with zero
//    application traffic.
//  - Reconnection (`reconnect_enabled`): a dead rail moves to `probing`
//    and runs an epoch-bumping handshake with capped exponential backoff.
//    Every sealed frame carries the rail's current epoch; after a
//    completed handshake both peers reset their sequence/ack state under
//    the new epoch and frames from the previous incarnation are fenced by
//    epoch comparison and dropped (`stale_frames_dropped`). The scheduler
//    re-arms the rail through the `on_revived` hook.
//
// With acks disabled (the default) the guard is a thin sealing/validating
// shim with the exact legacy completion semantics: contributions are
// credited on local send completion and nothing is retained.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "core/reliability.hpp"
#include "core/types.hpp"
#include "drv/driver.hpp"
#include "obs/metrics.hpp"
#include "strat/strategy.hpp"
#include "util/rng.hpp"

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::strat {
class RateEstimator;
}  // namespace nmad::strat

namespace nmad::core {

/// Reliability counters for one rail. `state` mirrors the functional
/// RailState enum (0 healthy / 1 suspect / 2 dead / 3 probing) so the
/// metrics tree — and the CI bench gate — can see rail health; the enum
/// itself stays a plain member so the state machine works with
/// NMAD_METRICS=OFF.
struct RailGuardMetrics {
  obs::Counter retransmits;
  obs::Counter timeouts;
  obs::Counter acks_sent;  ///< standalone ack-only frames (piggybacks are free)
  obs::Counter acks_received;
  obs::Counter dup_frames;       ///< duplicate rx suppressed
  obs::Counter crc_drops;        ///< frames dropped on checksum mismatch
  obs::Counter malformed_drops;  ///< frames/packets dropped on decode failure
  obs::Counter state_transitions;
  obs::Counter requeued_packets;  ///< un-acked frames surrendered at death
  obs::Counter requeued_bytes;
  obs::Counter probes_sent;           ///< keepalive probe frames emitted
  obs::Counter stale_frames_dropped;  ///< frames fenced by epoch mismatch
  obs::Counter reconnects;            ///< completed reconnect handshakes
  obs::Gauge state;
  obs::Gauge epoch;  ///< current incarnation number (starts at 1)

  void register_into(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;
};

class RailGuard {
 public:
  /// A retained frame surrendered by a dead (or epoch-reset) rail, ready
  /// to repost.
  struct PendingFrame {
    drv::SendDesc desc;
    std::vector<strat::Contribution> contribs;
  };

  /// Everything the guard needs from the scheduling layer. All hooks are
  /// installed once (init) and outlive the guard's driver interactions;
  /// the scheduler wraps them with its liveness token.
  struct Hooks {
    std::function<sim::TimeNs()> now;
    /// Run a callback after a delay (retransmission / delayed-ack timers).
    /// May be null when acks are disabled — no timers are armed then.
    std::function<void(sim::TimeNs, std::function<void()>)> timer;
    /// Credit send contributions (request completion accounting).
    std::function<void(const std::vector<strat::Contribution>&)> credit;
    /// Deliver a validated packet (envelope already stripped).
    std::function<void(drv::Track, std::span<const std::byte>)> deliver;
    /// Account a guard-initiated post (retransmit, standalone ack) in the
    /// rail metrics, exactly like a scheduler-initiated one.
    std::function<void(const drv::SendDesc&)> note_post;
    /// Kick the gate's pump (a track went idle / state changed / an ack
    /// freed backlog room).
    std::function<void()> kick;
    /// State machine transition (new state). kDead triggers failover.
    std::function<void(RailState)> on_state_change;
    /// The rail completed a reconnect handshake and is healthy again under
    /// a new epoch: the scheduler un-fails the gate, lets the strategy
    /// re-include the rail and reschedules the pump. Fired *after* the
    /// kHealthy on_state_change. May be null (unit harnesses).
    std::function<void()> on_revived;
    /// Surrender retained frames outside the death path: a live rail that
    /// passively adopts a peer's new epoch must requeue its un-acked
    /// frames (their sequence numbers belong to the fenced incarnation).
    /// May be null — the frames are then dropped, acceptable only in unit
    /// harnesses that never reuse them.
    std::function<void(std::vector<PendingFrame>)> requeue;
  };

  RailGuard() = default;
  RailGuard(const RailGuard&) = delete;
  RailGuard& operator=(const RailGuard&) = delete;
  /// Movable only before init(): gates build their rail vector first and
  /// the scheduler installs guards afterwards (the driver/timer lambdas
  /// capture `this`, which a post-init move would dangle). A pre-init
  /// guard is all default state, so moving is just fresh construction.
  RailGuard(RailGuard&& other) noexcept { (void)other; }
  RailGuard& operator=(RailGuard&&) = delete;

  void init(drv::Driver& driver, RailIndex index, ReliabilityConfig cfg,
            Hooks hooks);

  /// Feed the gate's rate estimator from this guard's observations:
  /// DMA-frame (bytes, duration) on local completion, ack RTTs (skipping
  /// retransmitted frames, Karn's rule), retransmit timeouts, and state
  /// transitions. Installed by the scheduler right after init; null (the
  /// default) disables the feed.
  void set_estimator(strat::RateEstimator* estimator) noexcept {
    estimator_ = estimator;
  }

  /// Seal `desc` (sequence + piggybacked acks + CRC) and post it. The
  /// caller must have checked the driver's track idle. With acks enabled
  /// the original descriptor is retained for retransmission and a
  /// non-owning alias goes to the driver; contributions are credited when
  /// the peer acks. With acks disabled the descriptor goes straight down
  /// and contributions are credited on local completion (legacy).
  void post(drv::SendDesc desc, std::vector<strat::Contribution> contribs);

  /// A frame arrived from the driver (envelope + packet). Validates,
  /// processes acks, deduplicates, then delivers the packet via hooks.
  void on_frame(drv::Track track, std::span<const std::byte> frame);

  /// Opportunistic progress: retransmit due frames and emit owed
  /// standalone acks on idle tracks. Called from the gate pump. Returns
  /// true if anything was posted.
  bool flush();

  /// The driver reported a hard failure: the rail dies immediately.
  void on_driver_error(const drv::RailError& err);

  /// Surrender every retained un-acked frame (dead rails only). Frames
  /// already acked by the peer but pending local completion are credited,
  /// not returned.
  [[nodiscard]] std::vector<PendingFrame> take_unacked();

  [[nodiscard]] RailState state() const noexcept {
    return state_.load(std::memory_order_relaxed);
  }
  /// A probing rail counts as dead for failover purposes: it carries no
  /// traffic and does not keep a gate alive.
  [[nodiscard]] bool alive() const noexcept {
    const RailState s = state();
    return s == RailState::kHealthy || s == RailState::kSuspect;
  }
  [[nodiscard]] bool healthy() const noexcept {
    return state() == RailState::kHealthy;
  }
  /// Current incarnation number. Starts at 1; each completed reconnect
  /// handshake bumps it. Frames sealed under an older epoch are fenced.
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }
  [[nodiscard]] std::size_t unacked_count() const noexcept { return tx_.size(); }
  [[nodiscard]] const ReliabilityConfig& config() const noexcept { return cfg_; }

  RailGuardMetrics metrics;

 private:
  /// One retained (posted, un-acked) frame.
  struct TxEntry {
    std::uint32_t seq = 0;
    drv::Track track = drv::Track::kSmall;
    drv::SendDesc desc;  ///< original, owning descriptor
    std::vector<strat::Contribution> contribs;
    sim::TimeNs posted_at = 0;  ///< first post time (RTT / bandwidth samples)
    sim::TimeNs deadline = 0;
    std::uint32_t retries = 0;
    bool locally_done = false;  ///< driver reported local completion
    bool acked = false;
    bool in_flight = false;  ///< an alias of this frame occupies the track
  };

  /// Per-track receive state (dedup + cumulative ack bookkeeping).
  struct RxTrack {
    std::uint32_t contiguous = 0;  ///< all seqs <= this received
    std::set<std::uint32_t> beyond;
    std::uint32_t last_acked = 0;  ///< highest ack value sent to the peer
    bool force_ack = false;        ///< re-ack even without advance (dup seen)
  };

  void seal(drv::SendDesc& desc, std::uint8_t flags, std::uint32_t seq,
            std::uint32_t epoch);
  [[nodiscard]] drv::SendDesc make_alias(const TxEntry& entry) const;
  void process_acks(const proto::FrameEnvelope& env);
  bool apply_ack(drv::Track track, std::uint32_t upto);
  [[nodiscard]] bool rx_accept(drv::Track track, std::uint32_t seq);
  [[nodiscard]] bool owes_ack() const noexcept;
  void note_ack_needed();
  bool try_send_standalone_ack();
  [[nodiscard]] sim::TimeNs next_rto(std::uint32_t retries);
  void arm_retransmit_timer();
  void on_retransmit_timer();
  void handle_deadlines();
  void transition(RailState next);
  void die(const char* reason);
  /// Send an envelope-only control frame (probe / probe reply / handshake)
  /// if the eager track is idle. Returns true when posted.
  bool try_send_control(std::uint8_t flags, std::uint32_t epoch);
  void arm_keepalive_timer();
  void on_keepalive_timer();
  /// A valid current-epoch frame arrived: reset probe bookkeeping (and
  /// heal a keepalive-induced suspect).
  void note_rx_alive();
  void arm_reconnect_timer();
  void on_reconnect_timer();
  /// Handshake frame processing (kFrameReconnect / kFrameReconnectAck).
  void handle_handshake(const proto::FrameEnvelope& env);
  /// Adopt epoch `e` as the live incarnation: surrender or credit every
  /// retained frame, reset sequence/ack state and go healthy.
  void adopt_epoch(std::uint32_t e, bool initiated);
  /// Reset per-incarnation sequencing state (tx_ must already be empty).
  void reset_link_state();
  /// take_unacked() body without the dead-state assert: credit acked
  /// entries, surrender the rest, clear tx_.
  [[nodiscard]] std::vector<PendingFrame> surrender_tx();

  drv::Driver* driver_ = nullptr;
  RailIndex index_ = 0;
  ReliabilityConfig cfg_;
  Hooks hooks_;
  strat::RateEstimator* estimator_ = nullptr;
  util::Xoshiro256 jitter_{0};

  /// Atomic so any thread may ask alive()/healthy() (the state gauge used
  /// to be the only externally visible copy, written with a plain store
  /// justified by single-threadedness). Transitions still happen only on
  /// the progression engine, under its lock in threaded mode.
  std::atomic<RailState> state_{RailState::kHealthy};
  std::uint32_t consecutive_timeouts_ = 0;

  std::uint32_t next_seq_[drv::kTrackCount] = {0, 0};
  std::deque<TxEntry> tx_;  ///< retained frames, oldest first per push order
  RxTrack rx_[drv::kTrackCount];

  bool rto_timer_armed_ = false;
  sim::TimeNs rto_timer_deadline_ = 0;
  bool ack_timer_armed_ = false;
  /// A standalone ack is owed now (delay expired or a duplicate arrived).
  bool ack_due_ = false;
  /// Re-entrancy latch: handle_deadlines can indirectly re-enter itself
  /// (transition -> pump -> flush) while iterating the retention queue.
  bool in_deadlines_ = false;

  // --- epoch fencing ---------------------------------------------------
  /// Current incarnation; sealed into every outgoing frame. Epoch 0 on a
  /// received frame means "unfenced" (legacy peers, raw-driver tests).
  std::uint32_t epoch_ = 1;
  /// Epoch proposed by our in-flight reconnect handshake (probing only).
  std::uint32_t pending_epoch_ = 0;

  // --- keepalive probing -----------------------------------------------
  sim::TimeNs last_rx_ = 0;       ///< last valid current-epoch receive
  sim::TimeNs probe_sent_at_ = 0; ///< 0 = no probe outstanding
  std::uint32_t probe_misses_ = 0;
  bool keepalive_timer_armed_ = false;

  // --- reconnection ----------------------------------------------------
  std::uint32_t reconnect_attempts_ = 0;
  sim::TimeNs reconnect_delay_ = 0;  ///< next backoff interval
  bool reconnect_timer_armed_ = false;
};

}  // namespace nmad::core
