#include "core/session.hpp"

#include <cstring>
#include <utility>

#include "core/progress.hpp"
#include "util/panic.hpp"

namespace nmad::core {

PackBuilder& PackBuilder::add(std::span<const std::byte> segment) {
  NMAD_ASSERT(!submitted_, "PackBuilder reused after submit");
  segments_.push_back(segment);
  return *this;
}

SendHandle PackBuilder::submit() {
  NMAD_ASSERT(!submitted_, "PackBuilder submitted twice");
  submitted_ = true;
  return session_->isend_segments(gate_, tag_, std::move(segments_));
}

UnpackBuilder& UnpackBuilder::add(std::span<std::byte> segment) {
  NMAD_ASSERT(!submitted_, "UnpackBuilder reused after submit");
  segments_.push_back(segment);
  return *this;
}

RecvHandle UnpackBuilder::submit() {
  NMAD_ASSERT(!submitted_, "UnpackBuilder submitted twice");
  submitted_ = true;
  return session_->post_unpack(gate_, tag_, std::move(segments_));
}

Session::Session(std::string name, Scheduler::ClockFn clock,
                 Scheduler::DeferFn defer, ProgressFn progress,
                 Scheduler::TimerFn timer)
    : name_(std::move(name)),
      scheduler_(std::move(clock), std::move(defer), std::move(timer)),
      progress_(std::move(progress)) {
  NMAD_ASSERT(progress_ != nullptr, "Session needs a progress function");
}

Session::~Session() = default;

void Session::start_threaded(std::mutex& world_mutex, sim::Engine* engine,
                             std::size_t threads, std::function<void()> idle,
                             std::function<bool(std::size_t)> poll,
                             std::size_t submit_ring_capacity,
                             std::size_t completion_ring_capacity) {
  NMAD_ASSERT(progress_engine_ == nullptr, "session already threaded");
  ProgressEngine::Config cfg;
  cfg.threads = threads == 0 ? 1 : threads;
  cfg.submission_capacity = submit_ring_capacity != 0
                                ? submit_ring_capacity
                                : ring_capacity_from_env("NMAD_SUBMIT_RING_CAP",
                                                         cfg.submission_capacity);
  cfg.completion_capacity =
      completion_ring_capacity != 0
          ? completion_ring_capacity
          : ring_capacity_from_env("NMAD_COMPLETION_RING_CAP",
                                   cfg.completion_capacity);
  ProgressEngine::Hooks hooks;
  hooks.lock = &world_mutex;
  hooks.engine = engine;
  hooks.idle = std::move(idle);
  hooks.poll = std::move(poll);
  progress_engine_ =
      std::make_unique<ProgressEngine>(scheduler_, cfg, std::move(hooks));
}

void Session::stop_threaded() { progress_engine_.reset(); }

std::unique_lock<std::mutex> Session::submission_burst() {
  if (progress_engine_ != nullptr) return progress_engine_->pause();
  return {};
}

void Session::flush_submissions() {
  if (progress_engine_ != nullptr) progress_engine_->flush_submissions();
}

void Session::register_metrics(obs::MetricsRegistry& registry, std::string prefix) {
  if (prefix.empty()) prefix = name_ + ".";
  scheduler_.register_metrics(registry, prefix);
  if (progress_engine_ != nullptr) {
    progress_engine_->register_metrics(registry, prefix + "progress.");
  }
}

GateId Session::connect(std::vector<drv::Driver*> rails,
                        std::string_view strategy_name,
                        const strat::StrategyConfig& cfg) {
  return scheduler_.add_gate(std::move(rails),
                             strat::make_strategy(strategy_name, cfg), cfg);
}

SendHandle Session::isend(GateId gate, Tag tag, std::span<const std::byte> data) {
  return isend_segments(gate, tag, {data});
}

SendHandle Session::isend_segments(GateId gate, Tag tag,
                                   std::vector<std::span<const std::byte>> segments) {
  if (progress_engine_ != nullptr) {
    SendHandle h = scheduler_.make_send(gate, tag, std::move(segments));
    progress_engine_->submit(h);
    return h;
  }
  return scheduler_.isend(gate, tag, std::move(segments));
}

RecvHandle Session::irecv(GateId gate, Tag tag, std::span<std::byte> buffer) {
  if (progress_engine_ != nullptr) {
    RecvHandle h = scheduler_.make_recv(gate, tag, buffer);
    progress_engine_->submit(h);
    return h;
  }
  return scheduler_.irecv(gate, tag, buffer);
}

RecvHandle Session::post_unpack(GateId gate, Tag tag,
                                std::vector<std::span<std::byte>> segments) {
  std::size_t total = 0;
  for (const auto& s : segments) total += s.size();

  PendingUnpack pending;
  pending.staging = std::make_shared<std::vector<std::byte>>(total);
  pending.segments = std::move(segments);
  pending.handle = irecv(gate, tag, *pending.staging);
  RecvHandle handle = pending.handle;
  pending_unpacks_.push_back(std::move(pending));
  return handle;
}

void Session::scatter_ready_unpacks() {
  std::erase_if(pending_unpacks_, [](PendingUnpack& p) {
    if (!p.handle->completed()) return false;
    std::size_t offset = 0;
    const std::vector<std::byte>& staging = *p.staging;
    const std::size_t received = p.handle->received_len();
    for (const auto& seg : p.segments) {
      if (offset >= received) break;
      const std::size_t n = std::min(seg.size(), received - offset);
      std::memcpy(seg.data(), staging.data() + offset, n);
      offset += n;
    }
    return true;
  });
}

void Session::wait(const SendHandle& h) {
  if (progress_engine_ != nullptr) {
    progress_engine_->wait([&] { return h->done(); });
  } else {
    progress_([&] { return h->done(); });
  }
  NMAD_ASSERT(h->done(), "wait returned with incomplete send (deadlock?)");
}

void Session::wait(const RecvHandle& h) {
  if (progress_engine_ != nullptr) {
    progress_engine_->wait([&] { return h->done(); });
  } else {
    progress_([&] { return h->done(); });
  }
  NMAD_ASSERT(h->done(), "wait returned with incomplete recv (deadlock?)");
  scatter_ready_unpacks();
}

void Session::wait_all(std::span<const SendHandle> sends,
                       std::span<const RecvHandle> recvs) {
  // A request also settles by *failing* (its gate lost every rail) — wait
  // returns then too; callers distinguish via completed()/failed().
  auto all_done = [&] {
    for (const auto& h : sends) {
      if (!h->done()) return false;
    }
    for (const auto& h : recvs) {
      if (!h->done()) return false;
    }
    return true;
  };
  if (progress_engine_ != nullptr) {
    progress_engine_->wait(all_done);
  } else {
    progress_(all_done);
  }
  NMAD_ASSERT(all_done(), "wait_all returned with incomplete requests (deadlock?)");
  scatter_ready_unpacks();
}

}  // namespace nmad::core
