// TwoNodePlatform: convenience assembly of the paper's experimental setup —
// two hosts, N heterogeneous NIC links between them, one Session per host,
// and one gate per direction, all over one simulated world.
//
// This is the object benchmarks, tests and examples construct; it is
// equivalent to hand-assembling a SimWorld, drivers and Sessions.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/progress.hpp"
#include "core/session.hpp"
#include "drv/sim_world.hpp"
#include "netmodel/nic_profile.hpp"

namespace nmad::core {

struct PlatformConfig {
  netmodel::HostProfile host_a{};
  netmodel::HostProfile host_b{};
  /// One NIC profile per rail connecting the two hosts.
  std::vector<netmodel::NicProfile> links;
  /// Strategy installed on both gates (see strat::make_strategy).
  std::string strategy = "single_rail";
  strat::StrategyConfig strat_cfg{};
  /// Run boot-time sampling (in a scratch world) and install the measured
  /// per-rail bandwidth weights as the gates' split ratios — the paper's
  /// §3.4 initialization step. Without it, ratios default to the drivers'
  /// nominal capability bandwidths.
  bool sampled_ratios = false;
  /// Optional sampling cache file (real nmad persists its sampling data):
  /// when set and sampled_ratios is true, a valid cache with one entry per
  /// rail is loaded instead of re-measuring, and fresh measurements are
  /// saved back to it.
  std::string sampling_cache_path;
  /// Progression mode. kDefault follows NMAD_PROGRESS_MODE (else serial);
  /// pin kSerial explicitly in tests that rely on serial determinism
  /// (aggregation-window counts, exact event traces) so they stay correct
  /// when the suite runs with NMAD_PROGRESS_MODE=threaded.
  ProgressMode progress_mode = ProgressMode::kDefault;
  /// Progress threads per session in threaded mode; 0 = one per rail.
  std::size_t progress_threads = 0;
};

class TwoNodePlatform {
 public:
  explicit TwoNodePlatform(PlatformConfig config);
  ~TwoNodePlatform();
  TwoNodePlatform(const TwoNodePlatform&) = delete;
  TwoNodePlatform& operator=(const TwoNodePlatform&) = delete;

  [[nodiscard]] Session& a() noexcept { return *session_a_; }
  [[nodiscard]] Session& b() noexcept { return *session_b_; }
  /// Gate id of a's gate towards b (and vice versa); both are 0.
  [[nodiscard]] GateId gate_ab() const noexcept { return gate_ab_; }
  [[nodiscard]] GateId gate_ba() const noexcept { return gate_ba_; }

  [[nodiscard]] drv::SimWorld& world() noexcept { return *world_; }
  [[nodiscard]] sim::TimeNs now() const noexcept { return world_->now(); }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }
  /// The mode the platform actually runs (config resolved against the
  /// NMAD_PROGRESS_MODE environment): kSerial or kThreaded.
  [[nodiscard]] ProgressMode progress_mode() const noexcept { return mode_; }

  /// Rail endpoints on each side, in link order.
  [[nodiscard]] const std::vector<drv::SimDriver*>& rails_a() const noexcept {
    return rails_a_;
  }
  [[nodiscard]] const std::vector<drv::SimDriver*>& rails_b() const noexcept {
    return rails_b_;
  }

 private:
  PlatformConfig config_;
  ProgressMode mode_ = ProgressMode::kSerial;
  std::unique_ptr<drv::SimWorld> world_;
  std::vector<drv::SimDriver*> rails_a_;
  std::vector<drv::SimDriver*> rails_b_;
  std::unique_ptr<Session> session_a_;
  std::unique_ptr<Session> session_b_;
  GateId gate_ab_ = 0;
  GateId gate_ba_ = 0;
};

/// The paper's platform (§3.1): Myri-10G + Quadrics QM500 between two
/// Opteron hosts, with the given strategy.
PlatformConfig paper_platform(std::string strategy,
                              strat::StrategyConfig cfg = {});

/// `cfg` pinned to serial progression regardless of NMAD_PROGRESS_MODE.
/// For tests and benches that assert serial determinism: exact aggregation
/// windows, trace contents, virtual-time values, or that step the sim
/// engine from the application thread (racy with progress threads live).
[[nodiscard]] inline PlatformConfig pin_serial(PlatformConfig cfg) {
  cfg.progress_mode = ProgressMode::kSerial;
  return cfg;
}

}  // namespace nmad::core
