// TwoNodePlatform: convenience assembly of the paper's experimental setup —
// two hosts, N heterogeneous NIC links between them, one Session per host,
// and one gate per direction, all over one simulated world.
//
// MultiNodePlatform generalizes it beyond the paper's testbed: N hosts in a
// full mesh (one Session per host, one gate per peer, the same multi-rail
// link set on every edge), optionally with every rail endpoint wrapped in a
// ChaosDriver — the topology the collectives layer (src/coll/) runs on.
//
// These are the objects benchmarks, tests and examples construct; they are
// equivalent to hand-assembling a SimWorld, drivers and Sessions.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/progress.hpp"
#include "core/session.hpp"
#include "drv/chaos_driver.hpp"
#include "drv/sim_world.hpp"
#include "netmodel/nic_profile.hpp"
#include "obs/metrics.hpp"
#include "util/panic.hpp"

namespace nmad::core {

struct PlatformConfig {
  netmodel::HostProfile host_a{};
  netmodel::HostProfile host_b{};
  /// One NIC profile per rail connecting the two hosts.
  std::vector<netmodel::NicProfile> links;
  /// Strategy installed on both gates (see strat::make_strategy).
  std::string strategy = "single_rail";
  strat::StrategyConfig strat_cfg{};
  /// Run boot-time sampling (in a scratch world) and install the measured
  /// per-rail bandwidth weights as the gates' split ratios — the paper's
  /// §3.4 initialization step. Without it, ratios default to the drivers'
  /// nominal capability bandwidths.
  bool sampled_ratios = false;
  /// Optional sampling cache file (real nmad persists its sampling data):
  /// when set and sampled_ratios is true, a valid cache with one entry per
  /// rail is loaded instead of re-measuring, and fresh measurements are
  /// saved back to it.
  std::string sampling_cache_path;
  /// Progression mode. kDefault follows NMAD_PROGRESS_MODE (else serial);
  /// pin kSerial explicitly in tests that rely on serial determinism
  /// (aggregation-window counts, exact event traces) so they stay correct
  /// when the suite runs with NMAD_PROGRESS_MODE=threaded.
  ProgressMode progress_mode = ProgressMode::kDefault;
  /// Progress threads per session in threaded mode; 0 = one per rail.
  std::size_t progress_threads = 0;
  /// Per-thread submission/completion ring capacities in threaded mode;
  /// 0 = NMAD_SUBMIT_RING_CAP / NMAD_COMPLETION_RING_CAP, else the engine
  /// defaults. Benches that inject bursts larger than the default ring
  /// size raise these instead of spinning on backpressure.
  std::size_t submit_ring_capacity = 0;
  std::size_t completion_ring_capacity = 0;
};

class TwoNodePlatform {
 public:
  explicit TwoNodePlatform(PlatformConfig config);
  ~TwoNodePlatform();
  TwoNodePlatform(const TwoNodePlatform&) = delete;
  TwoNodePlatform& operator=(const TwoNodePlatform&) = delete;

  [[nodiscard]] Session& a() noexcept { return *session_a_; }
  [[nodiscard]] Session& b() noexcept { return *session_b_; }
  /// Gate id of a's gate towards b (and vice versa); both are 0.
  [[nodiscard]] GateId gate_ab() const noexcept { return gate_ab_; }
  [[nodiscard]] GateId gate_ba() const noexcept { return gate_ba_; }

  [[nodiscard]] drv::SimWorld& world() noexcept { return *world_; }
  [[nodiscard]] sim::TimeNs now() const noexcept { return world_->now(); }
  [[nodiscard]] const PlatformConfig& config() const noexcept { return config_; }
  /// The mode the platform actually runs (config resolved against the
  /// NMAD_PROGRESS_MODE environment): kSerial or kThreaded.
  [[nodiscard]] ProgressMode progress_mode() const noexcept { return mode_; }

  /// Rail endpoints on each side, in link order.
  [[nodiscard]] const std::vector<drv::SimDriver*>& rails_a() const noexcept {
    return rails_a_;
  }
  [[nodiscard]] const std::vector<drv::SimDriver*>& rails_b() const noexcept {
    return rails_b_;
  }

 private:
  PlatformConfig config_;
  ProgressMode mode_ = ProgressMode::kSerial;
  std::unique_ptr<drv::SimWorld> world_;
  std::vector<drv::SimDriver*> rails_a_;
  std::vector<drv::SimDriver*> rails_b_;
  std::unique_ptr<Session> session_a_;
  std::unique_ptr<Session> session_b_;
  GateId gate_ab_ = 0;
  GateId gate_ba_ = 0;
};

/// The paper's platform (§3.1): Myri-10G + Quadrics QM500 between two
/// Opteron hosts, with the given strategy.
PlatformConfig paper_platform(std::string strategy,
                              strat::StrategyConfig cfg = {});

// --- N-node platform --------------------------------------------------------

struct MultiNodeConfig {
  /// Number of nodes (ranks); every connected pair gets its own rail set.
  std::size_t nodes = 3;
  netmodel::HostProfile host{};
  /// NIC profiles of the rails on every edge. Empty = the paper's pair
  /// (Myri-10G + Quadrics QM500).
  std::vector<netmodel::NicProfile> links;
  /// Locality labels: hosts[i] is node i's host id (any integers). Must be
  /// empty (every node its own host — the historical homogeneous world) or
  /// exactly `nodes` long. Same-host edges use intra_host_links; the
  /// collectives layer derives its hierarchy Topology from these labels
  /// (see coll/topology.hpp and make_communicator).
  std::vector<std::size_t> hosts;
  /// Rail set of same-host (intra-domain) edges; empty = `links`. Lets a
  /// heterogeneous world give co-hosted ranks fast rails while cross-host
  /// edges ride the slow ones — the asymmetry hierarchical collectives
  /// exploit.
  std::vector<netmodel::NicProfile> intra_host_links;
  std::string strategy = "aggreg_greedy";
  strat::StrategyConfig strat_cfg{};
  /// See PlatformConfig::progress_mode.
  ProgressMode progress_mode = ProgressMode::kDefault;
  /// Progress threads per session in threaded mode; 0 = one per rail.
  std::size_t progress_threads = 0;
  /// See PlatformConfig::submit_ring_capacity / completion_ring_capacity.
  std::size_t submit_ring_capacity = 0;
  std::size_t completion_ring_capacity = 0;
  /// When non-empty, only these undirected node pairs get links and gates
  /// (sparse mesh) — entries are normalized to {min, max}; self-loops,
  /// out-of-range endpoints and duplicates are rejected (panic). Empty
  /// keeps the historical full mesh. The pattern sweep harness
  /// (bench/pattern_gen.cpp) uses this so a 16-rank point builds only the
  /// edges its pair set touches instead of all O(N^2) of them; gate(i, j)
  /// asserts on unconnected pairs, has_gate(i, j) probes them.
  std::vector<std::pair<std::size_t, std::size_t>> edges;
  /// Lazy establishment: construct no sessions and no edges up front —
  /// each Session and each edge's rails, guards and gates are created on
  /// first use (session(i) / ensure_gate(i, j); coll::Communicator
  /// resolves peers through the latter), plus any `edges` named above
  /// eagerly. A 512-rank world then costs O(edges actually used) instead
  /// of the full mesh's O(N^2). See docs/SCALING.md for the cost model.
  bool lazy = false;
  /// When set, every rail endpoint is wrapped in a ChaosDriver with this
  /// fault configuration (seeded from chaos_seed). The platform's progress
  /// paths then flush the chaos windows on quiescence, exactly like the
  /// two-party chaos tests.
  std::optional<drv::ChaosConfig> chaos;
  std::uint64_t chaos_seed = 1;
};

/// N sessions over one simulated world: session(i) owns one gate per
/// connected peer, each bundling the edge's rails on a dedicated physical
/// link. Fully meshed by default, sparse with config.edges, and on-demand
/// with config.lazy (sessions and edges created on first use). Gate ids
/// are exposed via gate(i, j); the flat per-peer vector gates_from(i) is
/// the shape coll::Communicator consumes (kNoGate entries resolve lazily
/// through ensure_gate).
class MultiNodePlatform {
 public:
  explicit MultiNodePlatform(MultiNodeConfig config);
  ~MultiNodePlatform();
  MultiNodePlatform(const MultiNodePlatform&) = delete;
  MultiNodePlatform& operator=(const MultiNodePlatform&) = delete;

  [[nodiscard]] std::size_t nodes() const noexcept { return config_.nodes; }
  /// Node i's session, created on first use in lazy worlds.
  [[nodiscard]] Session& session(std::size_t i);
  /// Node i's gate towards node j (i != j); asserts the edge exists.
  [[nodiscard]] GateId gate(std::size_t i, std::size_t j) const noexcept {
    NMAD_ASSERT(gate_[i][j] != kNoGate, "no gate: edge not in the mesh");
    return gate_[i][j];
  }
  /// Whether the (possibly sparse or lazy) mesh has established the edge
  /// between nodes i and j.
  [[nodiscard]] bool has_gate(std::size_t i, std::size_t j) const noexcept {
    return i != j && gate_[i][j] != kNoGate;
  }
  /// Peer-indexed gate vector for node i; entry [i] itself is unused, and
  /// sparse/lazy meshes carry kNoGate for unconnected peers.
  [[nodiscard]] std::vector<GateId> gates_from(std::size_t i) const {
    return gate_[i];
  }
  /// Lazy worlds: node i's gate towards node j, establishing the edge
  /// (rails, guards, gates on both endpoints — and the sessions
  /// themselves if missing) on first use. Thread-safe against running
  /// progress threads: establishment happens under the world progress
  /// mutex. Non-lazy worlds assert the edge already exists.
  GateId ensure_gate(std::size_t i, std::size_t j);

  /// Edges established so far (eager + lazy) and the lazily-created
  /// subset. Plain counts, valid with NMAD_METRICS=OFF; mirrored as the
  /// platform.sessions_established / platform.sessions_lazy_created
  /// metrics.
  [[nodiscard]] std::size_t established_edges() const noexcept {
    return established_edges_;
  }
  [[nodiscard]] std::size_t lazy_edges() const noexcept { return lazy_edges_; }

  [[nodiscard]] drv::SimWorld& world() noexcept { return *world_; }
  [[nodiscard]] sim::TimeNs now() const noexcept { return world_->now(); }
  [[nodiscard]] const MultiNodeConfig& config() const noexcept { return config_; }
  [[nodiscard]] ProgressMode progress_mode() const noexcept { return mode_; }

  /// Serial mode only: drive the engine from the calling thread until
  /// `pred` holds, flushing chaos windows whenever the engine drains.
  /// Returns false on global quiescence with `pred` still unmet (the
  /// communication pattern cannot complete — e.g. a peer's gate died).
  bool run_until(const std::function<bool()>& pred);

  /// Release every buffered chaos frame; returns true if any was held.
  /// No-op (false) when chaos is not configured.
  bool flush_chaos();

  /// Chaos endpoint of node `node` on physical link `link` of edge
  /// {node, peer}. Only valid when config().chaos is set.
  [[nodiscard]] drv::ChaosDriver& chaos_endpoint(std::size_t node,
                                                 std::size_t peer,
                                                 std::size_t link);
  /// Raw simulated endpoint of node `node` on `link` of edge {node, peer}
  /// (the SimDriver underneath any chaos wrapper) — the handle NetScenario
  /// link shaping needs (tx_link()). Asserts the edge exists.
  [[nodiscard]] drv::SimDriver& sim_endpoint(std::size_t node,
                                             std::size_t peer,
                                             std::size_t link);
  /// Hard-kill both endpoints of one physical link of edge {i, j}.
  void kill_link(std::size_t i, std::size_t j, std::size_t link);

  /// Register every session's metrics under "n<i>." prefixes.
  void register_metrics(obs::MetricsRegistry& registry);

 private:
  /// Create session i if missing (lazy worlds; threaded sessions start
  /// their progress threads immediately).
  Session& ensure_session(std::size_t i);
  /// Create the rails, chaos wrappers and both gates of edge {i, j}.
  /// Callers in threaded mode must hold the world progress mutex.
  void establish_edge(std::size_t i, std::size_t j, bool lazily);
  /// Host id of node i (hosts[i], or i itself when hosts is empty).
  [[nodiscard]] std::size_t host_of(std::size_t i) const noexcept {
    return config_.hosts.empty() ? i : config_.hosts[i];
  }

  MultiNodeConfig config_;
  ProgressMode mode_ = ProgressMode::kSerial;
  std::unique_ptr<drv::SimWorld> world_;
  std::vector<drv::NodeId> node_ids_;
  /// Chaos wrappers (empty without chaos). Declared before sessions_ so
  /// they outlive the schedulers their deliver upcalls target; the
  /// destructor drains them while the sessions are still alive.
  std::vector<std::unique_ptr<drv::ChaosDriver>> wrappers_;
  /// Next chaos wrapper seed (dense per-endpoint seeding, stable across
  /// eager and lazy establishment order).
  std::uint64_t chaos_next_seed_ = 0;
  /// endpoint_[i][j][link]: node i's driver on that link of edge {i, j}
  /// (the chaos wrapper when chaos is configured); empty vector when the
  /// edge is not (yet) established.
  std::vector<std::vector<std::vector<drv::Driver*>>> endpoint_;
  /// The raw SimDrivers underneath, same indexing.
  std::vector<std::vector<std::vector<drv::SimDriver*>>> sim_endpoint_;
  /// Null entries are sessions a lazy world has not created yet.
  std::vector<std::unique_ptr<Session>> sessions_;
  std::vector<std::vector<GateId>> gate_;
  std::size_t established_edges_ = 0;
  std::size_t lazy_edges_ = 0;
  obs::Counter sessions_established_;
  obs::Counter sessions_lazy_created_;
};

/// `cfg` pinned to serial progression regardless of NMAD_PROGRESS_MODE.
/// For tests and benches that assert serial determinism: exact aggregation
/// windows, trace contents, virtual-time values, or that step the sim
/// engine from the application thread (racy with progress threads live).
[[nodiscard]] inline PlatformConfig pin_serial(PlatformConfig cfg) {
  cfg.progress_mode = ProgressMode::kSerial;
  return cfg;
}

}  // namespace nmad::core
