// Non-blocking communication requests (the collect layer's currency).
//
// A request is created by Session::isend / Session::irecv and completed
// asynchronously by the scheduling layer. Handles returned to the
// application are shared_ptrs; the scheduler keeps raw pointers that are
// guaranteed valid because the Session retains every live request until
// completion.
//
// Thread model: under the threaded progression engine the application
// thread polls done()/completed()/failed() while a progress thread settles
// the request. The state is therefore an atomic, written with release and
// read with acquire ordering so everything the engine wrote before settling
// (received bytes in the user buffer, received_len_, completion_time_) is
// visible to the application once done() returns true. The auxiliary cells
// (bytes_sent_, received_len_, completion_time_, seq_) are relaxed atomics:
// they are single-writer (the progression engine, serialized by its lock)
// and carry no synchronization duty of their own.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace nmad::core {

enum class RequestState : std::uint8_t {
  kPending,    ///< submitted, data still moving
  kCompleted,  ///< all data locally sent / fully received
  kFailed,     ///< every rail of the request's gate died before completion
};

class SendRequest {
 public:
  SendRequest(Tag tag, std::vector<ConstSegment> segments,
              std::uint32_t total_len)
      : tag_(tag), segments_(std::move(segments)), total_len_(total_len) {}

  [[nodiscard]] Tag tag() const noexcept { return tag_; }
  /// Send ordinal for this (gate, tag) stream. Assigned when the scheduler
  /// accepts the submission — in threaded mode that is on a progress
  /// thread, in ring order, so it always matches application post order.
  [[nodiscard]] MsgSeq seq() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] MsgKey key() const noexcept { return MsgKey{tag_, seq()}; }
  [[nodiscard]] const std::vector<ConstSegment>& segments() const noexcept {
    return segments_;
  }
  [[nodiscard]] std::uint32_t total_len() const noexcept { return total_len_; }

  [[nodiscard]] bool completed() const noexcept {
    return state_.load(std::memory_order_acquire) == RequestState::kCompleted;
  }
  [[nodiscard]] bool failed() const noexcept {
    return state_.load(std::memory_order_acquire) == RequestState::kFailed;
  }
  /// Settled either way — the state a wait() terminates on.
  [[nodiscard]] bool done() const noexcept {
    return state_.load(std::memory_order_acquire) != RequestState::kPending;
  }
  /// Virtual time of local completion; -1 while pending.
  [[nodiscard]] sim::TimeNs completion_time() const noexcept {
    return completion_time_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint32_t bytes_sent() const noexcept {
    return bytes_sent_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] GateId gate() const noexcept { return gate_; }

  // --- scheduling-layer interface ----------------------------------------
  /// Bind the per-(gate, tag) sequence number (set once at submission).
  void assign_seq(MsgSeq seq) noexcept {
    seq_.store(seq, std::memory_order_relaxed);
  }
  /// Credit locally-completed payload bytes; completes the request when the
  /// whole message has left the node. Zero-length messages complete on
  /// their (empty) packet's completion.
  void credit_sent(std::uint32_t bytes, sim::TimeNs now);
  /// Mark the request failed (all rails of its gate are dead). No-op once
  /// completed.
  void fail(sim::TimeNs now);
  /// Stamp the submission instant (set once by the scheduler at isend).
  void note_submit_time(sim::TimeNs t) noexcept { submit_time_ = t; }
  [[nodiscard]] sim::TimeNs submit_time() const noexcept { return submit_time_; }
  void note_gate(GateId g) noexcept { gate_ = g; }
  /// Stamp the submitting thread's engine lane (set once, before the
  /// request enters the submission ring; the ring's release/acquire pair
  /// publishes it to the progression side). Routes the completion event
  /// back to the submitting thread's completion ring.
  void note_submit_lane(SubmitLane lane) noexcept {
    submit_lane_.store(lane, std::memory_order_relaxed);
  }
  [[nodiscard]] SubmitLane submit_lane() const noexcept {
    return submit_lane_.load(std::memory_order_relaxed);
  }

 private:
  Tag tag_;
  std::atomic<MsgSeq> seq_{0};
  std::vector<ConstSegment> segments_;
  std::uint32_t total_len_;
  std::atomic<std::uint32_t> bytes_sent_{0};
  std::atomic<RequestState> state_{RequestState::kPending};
  std::atomic<sim::TimeNs> completion_time_{-1};
  sim::TimeNs submit_time_ = 0;
  GateId gate_ = 0;
  std::atomic<SubmitLane> submit_lane_{kNoSubmitLane};
};

class RecvRequest {
 public:
  RecvRequest(Tag tag, std::span<std::byte> buffer)
      : tag_(tag), buffer_(buffer) {}

  [[nodiscard]] Tag tag() const noexcept { return tag_; }
  /// Receive ordinal for this (gate, tag) stream (assigned at submission).
  [[nodiscard]] MsgSeq seq() const noexcept {
    return seq_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] MsgKey key() const noexcept { return MsgKey{tag_, seq()}; }
  [[nodiscard]] std::span<std::byte> buffer() const noexcept { return buffer_; }

  [[nodiscard]] bool completed() const noexcept {
    return state_.load(std::memory_order_acquire) == RequestState::kCompleted;
  }
  [[nodiscard]] bool failed() const noexcept {
    return state_.load(std::memory_order_acquire) == RequestState::kFailed;
  }
  /// Settled either way — the state a wait() terminates on.
  [[nodiscard]] bool done() const noexcept {
    return state_.load(std::memory_order_acquire) != RequestState::kPending;
  }
  [[nodiscard]] sim::TimeNs completion_time() const noexcept {
    return completion_time_.load(std::memory_order_relaxed);
  }
  /// Actual message length (valid once completed).
  [[nodiscard]] std::uint32_t received_len() const noexcept {
    return received_len_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] GateId gate() const noexcept { return gate_; }

  // --- scheduling-layer interface ----------------------------------------
  void assign_seq(MsgSeq seq) noexcept {
    seq_.store(seq, std::memory_order_relaxed);
  }
  void complete(std::uint32_t received_len, sim::TimeNs now);
  /// Mark the request failed (all rails of its gate are dead). No-op once
  /// completed.
  void fail(sim::TimeNs now);
  /// Stamp the posting instant (set once by the scheduler at irecv).
  void note_submit_time(sim::TimeNs t) noexcept { submit_time_ = t; }
  [[nodiscard]] sim::TimeNs submit_time() const noexcept { return submit_time_; }
  void note_gate(GateId g) noexcept { gate_ = g; }
  /// See SendRequest::note_submit_lane.
  void note_submit_lane(SubmitLane lane) noexcept {
    submit_lane_.store(lane, std::memory_order_relaxed);
  }
  [[nodiscard]] SubmitLane submit_lane() const noexcept {
    return submit_lane_.load(std::memory_order_relaxed);
  }

 private:
  Tag tag_;
  std::atomic<MsgSeq> seq_{0};
  std::span<std::byte> buffer_;
  std::atomic<std::uint32_t> received_len_{0};
  std::atomic<RequestState> state_{RequestState::kPending};
  std::atomic<sim::TimeNs> completion_time_{-1};
  sim::TimeNs submit_time_ = 0;
  GateId gate_ = 0;
  std::atomic<SubmitLane> submit_lane_{kNoSubmitLane};
};

using SendHandle = std::shared_ptr<SendRequest>;
using RecvHandle = std::shared_ptr<RecvRequest>;

}  // namespace nmad::core
