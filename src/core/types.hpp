// Shared vocabulary types of the core (collect + scheduling) layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

#include "proto/wire.hpp"
#include "sim/time.hpp"

namespace nmad::core {

using Tag = proto::Tag;
using MsgSeq = proto::MsgSeq;

/// Identifies one message within one gate direction: sequence numbers are
/// assigned *per tag* on the sending side, so the k-th receive posted for a
/// tag matches the k-th message sent with that tag — deterministic matching
/// even when multi-rail transfers arrive out of order.
struct MsgKey {
  Tag tag = 0;
  MsgSeq seq = 0;
  friend auto operator<=>(const MsgKey&, const MsgKey&) = default;
};

/// A view of one contiguous piece of user memory inside a message.
struct ConstSegment {
  std::span<const std::byte> data;
  /// Byte offset of this segment within the logical message.
  std::uint32_t msg_offset = 0;
};

/// First tag of the space reserved for library-internal protocols: the
/// collectives layer (coll::Communicator) carves its per-instance tag
/// streams out of [kReservedTagBase, 0xffffffff], and api::mpi_like's
/// barrier token rides the very top of it. User-facing API layers must
/// reject application tags at or above this value — a user message on a
/// reserved tag would silently cross-match against protocol traffic.
inline constexpr Tag kReservedTagBase = 0xffff0000u;

/// Index of a rail within a gate.
using RailIndex = std::uint32_t;

/// Index of a per-thread submission/completion lane inside one threaded
/// progression engine (core/progress.hpp). Lanes are allocated densely per
/// engine, one per submitting application thread, on that thread's first
/// submit.
using SubmitLane = std::uint32_t;

/// "No lane": the request was submitted synchronously (serial mode) or by
/// a path that bypassed the engine — its completion event routes to the
/// engine's shared fallback queue instead of a per-thread ring.
inline constexpr SubmitLane kNoSubmitLane = 0xffffffffu;

/// Identifies one gate within one scheduler.
using GateId = std::uint32_t;

/// "No gate": the sentinel for peers a sparse mesh never connected, and the
/// marker lazy platforms leave in peer-gate vectors until first use (see
/// core::MultiNodePlatform and coll::Communicator's gate resolver).
inline constexpr GateId kNoGate = static_cast<GateId>(-1);

}  // namespace nmad::core
