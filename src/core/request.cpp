#include "core/request.hpp"

#include "util/panic.hpp"

namespace nmad::core {

void SendRequest::credit_sent(std::uint32_t bytes, sim::TimeNs now) {
  if (state_ == RequestState::kFailed) return;  // stale credit after failover
  NMAD_ASSERT(state_ == RequestState::kPending, "credit on completed send");
  bytes_sent_ += bytes;
  NMAD_ASSERT(bytes_sent_ <= total_len_, "send credited beyond message length");
  if (bytes_sent_ == total_len_) {
    state_ = RequestState::kCompleted;
    completion_time_ = now;
  }
}

void SendRequest::fail(sim::TimeNs now) {
  if (state_ != RequestState::kPending) return;
  state_ = RequestState::kFailed;
  completion_time_ = now;
}

void RecvRequest::complete(std::uint32_t received_len, sim::TimeNs now) {
  NMAD_ASSERT(state_ == RequestState::kPending, "double completion of recv");
  NMAD_ASSERT(received_len <= buffer_.size(), "received more than buffer holds");
  received_len_ = received_len;
  state_ = RequestState::kCompleted;
  completion_time_ = now;
}

void RecvRequest::fail(sim::TimeNs now) {
  if (state_ != RequestState::kPending) return;
  state_ = RequestState::kFailed;
  completion_time_ = now;
}

}  // namespace nmad::core
