#include "core/request.hpp"

#include "util/panic.hpp"

namespace nmad::core {

// State transitions run on the progression engine (serialized by its lock
// in threaded mode), so the read-check-write sequences below are
// single-writer; the release store publishes every side effect (delivered
// bytes, received_len_, completion_time_) to application threads that
// observe done() with an acquire load.

void SendRequest::credit_sent(std::uint32_t bytes, sim::TimeNs now) {
  const RequestState st = state_.load(std::memory_order_relaxed);
  if (st == RequestState::kFailed) return;  // stale credit after failover
  NMAD_ASSERT(st == RequestState::kPending, "credit on completed send");
  const std::uint32_t sent =
      bytes_sent_.fetch_add(bytes, std::memory_order_relaxed) + bytes;
  NMAD_ASSERT(sent <= total_len_, "send credited beyond message length");
  if (sent == total_len_) {
    completion_time_.store(now, std::memory_order_relaxed);
    state_.store(RequestState::kCompleted, std::memory_order_release);
  }
}

void SendRequest::fail(sim::TimeNs now) {
  if (state_.load(std::memory_order_relaxed) != RequestState::kPending) return;
  completion_time_.store(now, std::memory_order_relaxed);
  state_.store(RequestState::kFailed, std::memory_order_release);
}

void RecvRequest::complete(std::uint32_t received_len, sim::TimeNs now) {
  NMAD_ASSERT(state_.load(std::memory_order_relaxed) == RequestState::kPending,
              "double completion of recv");
  NMAD_ASSERT(received_len <= buffer_.size(), "received more than buffer holds");
  received_len_.store(received_len, std::memory_order_relaxed);
  completion_time_.store(now, std::memory_order_relaxed);
  state_.store(RequestState::kCompleted, std::memory_order_release);
}

void RecvRequest::fail(sim::TimeNs now) {
  if (state_.load(std::memory_order_relaxed) != RequestState::kPending) return;
  completion_time_.store(now, std::memory_order_relaxed);
  state_.store(RequestState::kFailed, std::memory_order_release);
}

}  // namespace nmad::core
