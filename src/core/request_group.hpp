// RequestGroup: completion bookkeeping for a set of requests that span
// multiple gates — the currency of the collectives layer, where one
// logical operation (a broadcast, a reduction round) fans out into sends
// and receives towards several peers at once.
//
// A group only *observes* its handles (all queries read the requests'
// atomic state), so it is safe to poll from the application thread while
// progress threads settle the members. Adding handles is not synchronized:
// one thread owns the group.
#pragma once

#include <vector>

#include "core/request.hpp"

namespace nmad::core {

class RequestGroup {
 public:
  void add(SendHandle h) { sends_.push_back(std::move(h)); }
  void add(RecvHandle h) { recvs_.push_back(std::move(h)); }

  /// Every member settled (completed or failed) — the state a wait
  /// terminates on.
  [[nodiscard]] bool all_settled() const noexcept {
    for (const auto& h : sends_) {
      if (!h->done()) return false;
    }
    for (const auto& h : recvs_) {
      if (!h->done()) return false;
    }
    return true;
  }

  /// At least one member failed (its gate lost every rail).
  [[nodiscard]] bool any_failed() const noexcept {
    for (const auto& h : sends_) {
      if (h->failed()) return true;
    }
    for (const auto& h : recvs_) {
      if (h->failed()) return true;
    }
    return false;
  }

  [[nodiscard]] std::size_t size() const noexcept {
    return sends_.size() + recvs_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

  [[nodiscard]] const std::vector<SendHandle>& sends() const noexcept {
    return sends_;
  }
  [[nodiscard]] const std::vector<RecvHandle>& recvs() const noexcept {
    return recvs_;
  }

  void clear() {
    sends_.clear();
    recvs_.clear();
  }

 private:
  std::vector<SendHandle> sends_;
  std::vector<RecvHandle> recvs_;
};

}  // namespace nmad::core
