// The core (transversal) scheduler — paper §2.
//
// "A transversal global scheduler is in charge of controlling the overall
// functioning of the library in link with the drivers, for NICs
// monitoring. When some NICs become idle, the global scheduler ensures
// that the optimizing scheduler is queried for some new packet."
//
// Concretely: request processing is fully disconnected from the API calls.
// isend/irecv only append to the strategy backlog and to the matching
// tables; packets are produced exclusively by pump(), which fires whenever
// a NIC track reports idle (send completion) or a packet arrives. The
// scheduler also owns the mechanics shared by all strategies: small/large
// classification, the rendezvous handshake, receive matching, unexpected
// messages, reassembly, and completion accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/gate.hpp"
#include "core/request.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "strat/strategy.hpp"

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::core {

/// Scheduler-wide request aggregates (the collect layer's view: what the
/// application submitted and when it completed).
struct RequestMetrics {
  obs::Counter sends_posted;
  obs::Counter recvs_posted;
  obs::Counter sends_completed;
  obs::Counter recvs_completed;
  /// Total message payload submitted / delivered to matched receives.
  obs::Counter send_bytes_submitted;
  obs::Counter recv_bytes_delivered;
  /// Messages whose data arrived before a matching receive was posted.
  obs::Counter unexpected_msgs;
  /// Message sizes (bytes) and request lifetimes (ns, submit->complete).
  obs::Histogram send_size;
  obs::Histogram recv_size;
  obs::Histogram send_latency_ns;
  obs::Histogram recv_latency_ns;

  void register_into(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;
};

class Scheduler {
 public:
  /// `now` supplies timestamps for request completion (virtual time over
  /// the simulator; wall-clock for real drivers).
  using ClockFn = std::function<sim::TimeNs()>;
  /// `defer(fn)` runs fn at the next progression point (a zero-delay event
  /// on the simulator; the next progress() round for real drivers). This is
  /// what disconnects request processing from the API calls (paper §2): an
  /// isend only appends to the backlog, and the strategy is consulted at
  /// the deferred progression point — so a burst of submissions forms an
  /// optimization window the strategy can aggregate or split.
  using DeferFn = std::function<void(std::function<void()>)>;
  /// `timer(delay, fn)` runs fn after `delay` ns (simulator event / real
  /// timer wheel). Required only when a gate enables ack/retransmit — the
  /// RailGuards arm their RTO and delayed-ack timers through it.
  using TimerFn = std::function<void(sim::TimeNs, std::function<void()>)>;

  Scheduler(ClockFn now, DeferFn defer, TimerFn timer = nullptr);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a gate over the given rail endpoints. The scheduler installs
  /// itself as the drivers' deliver upcall; each driver belongs to exactly
  /// one gate.
  GateId add_gate(std::vector<drv::Driver*> rails,
                  std::unique_ptr<strat::Strategy> strategy,
                  strat::StrategyConfig config = {});

  [[nodiscard]] Gate& gate(GateId id);
  [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }

  /// Submit a message made of `segments` (a logically contiguous sequence
  /// of user-memory views). The user memory must stay valid until the
  /// returned request completes.
  SendHandle isend(GateId gate, Tag tag,
                   std::vector<std::span<const std::byte>> segments);

  /// Post a receive for the next message with `tag` on `gate`. `buffer`
  /// must be at least as large as the matching message.
  RecvHandle irecv(GateId gate, Tag tag, std::span<std::byte> buffer);

  [[nodiscard]] sim::TimeNs now() const { return now_(); }

  /// Pending (uncompleted) requests — drained-state check for tests.
  [[nodiscard]] std::size_t pending_requests() const noexcept;

  /// Request-level aggregates (per-rail counters live on the gates' rails).
  [[nodiscard]] const RequestMetrics& metrics() const noexcept { return metrics_; }

  /// Register every metric of this scheduler — request aggregates plus,
  /// per gate, the strategy counters and each rail's counters (including
  /// the driver's own, under "drv.") — into `registry` with hierarchical
  /// names: `<prefix>requests.*`, `<prefix>gate<G>.strat.*`,
  /// `<prefix>gate<G>.rail<R>.*`.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix);

 private:
  /// Request a pump at the next progression point (idempotent per gate).
  void schedule_pump(Gate& gate);
  void pump(Gate& gate);
  bool pump_once(Gate& gate);
  void post_control(Gate& gate, Rail& rail, drv::SendDesc desc);
  void post_plan(Gate& gate, Rail& rail, strat::PacketPlan plan);
  /// Repost frames surrendered by dead rails onto healthy survivors.
  bool drain_resend(Gate& gate);
  /// Rail-level accounting shared by every post (data and control); must
  /// run before the driver post so the idle->busy transition is observable.
  void note_rail_post(Rail& rail, const drv::SendDesc& desc);
  /// Apply send-completion credit (local completion without acks; peer
  /// acknowledgement with them) and the completion metrics.
  void credit_contribs(Gate& gate, const std::vector<strat::Contribution>& contribs);
  /// Rail `idx` of `gate` was declared dead: requeue its un-acked frames,
  /// let the strategy retarget, and fail the gate if no rail survives.
  void on_rail_dead(Gate& gate, RailIndex idx);
  /// Every rail died: fail the gate's pending requests and drop its queues.
  void fail_gate(Gate& gate);
  /// `wire` is the driver's non-owning view of the received frame; every
  /// byte kept past this call is copied by reassembly into its message.
  void on_packet(Gate& gate, Rail& rail, drv::Track track,
                 std::span<const std::byte> wire);
  void handle_data_segment(Gate& gate, const proto::SegHeader& h,
                           std::span<const std::byte> payload);
  void handle_rdv_req(Gate& gate, const proto::SegHeader& h);
  void handle_rdv_ack(Gate& gate, const proto::SegHeader& h);
  void bind_recv(Gate& gate, Gate::Incoming& inc, RecvRequest* recv);
  void ensure_assembly(Gate::Incoming& inc);
  /// Completes the receive and drops the incoming entry when both the data
  /// and the matching receive are present.
  void try_finalize(Gate& gate, MsgKey key);
  void enqueue_ack(Gate& gate, MsgKey key);
  void sweep_completed();

  ClockFn now_;
  DeferFn defer_;
  TimerFn timer_;
  /// Liveness token: timer callbacks handed to the engine may outlive this
  /// scheduler; they hold a weak_ptr and turn into no-ops once it expires.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<std::unique_ptr<Gate>> gates_;
  std::vector<SendHandle> live_sends_;
  std::vector<RecvHandle> live_recvs_;
  RequestMetrics metrics_;
};

}  // namespace nmad::core
