// The core (transversal) scheduler — paper §2.
//
// "A transversal global scheduler is in charge of controlling the overall
// functioning of the library in link with the drivers, for NICs
// monitoring. When some NICs become idle, the global scheduler ensures
// that the optimizing scheduler is queried for some new packet."
//
// Concretely: request processing is fully disconnected from the API calls.
// isend/irecv only append to the strategy backlog and to the matching
// tables; packets are produced exclusively by pump(), which fires whenever
// a NIC track reports idle (send completion) or a packet arrives. The
// scheduler also owns the mechanics shared by all strategies: small/large
// classification, the rendezvous handshake, receive matching, unexpected
// messages, reassembly, and completion accounting.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <vector>

#include "core/gate.hpp"
#include "core/request.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "strat/strategy.hpp"

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::core {

/// Scheduler-wide request aggregates (the collect layer's view: what the
/// application submitted and when it completed).
struct RequestMetrics {
  obs::Counter sends_posted;
  obs::Counter recvs_posted;
  obs::Counter sends_completed;
  obs::Counter recvs_completed;
  /// Total message payload submitted / delivered to matched receives.
  obs::Counter send_bytes_submitted;
  obs::Counter recv_bytes_delivered;
  /// Messages whose data arrived before a matching receive was posted.
  obs::Counter unexpected_msgs;
  /// Message sizes (bytes) and request lifetimes (ns, submit->complete).
  obs::Histogram send_size;
  obs::Histogram recv_size;
  obs::Histogram send_latency_ns;
  obs::Histogram recv_latency_ns;

  void register_into(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;
};

/// A request settled (completed or failed). Fired by the scheduler on the
/// progression engine, immediately after the request's state store, in
/// settlement order. The threaded progression engine routes these into the
/// submitting thread's completion ring so the application can observe
/// cross-request ordering without locks. Ordering contract: *matching*
/// within one (gate, tag) stream always follows seq order (the k-th recv
/// gets the k-th message), but *settlement* reorders whenever transfers
/// genuinely finish out of order — a small eager message overtakes an
/// earlier rendezvous transfer, or multi-rail chunks land at different
/// times. Only single-rail traffic on one track settles strictly in seq
/// order. In the many-thread path each thread observes the events for ITS
/// OWN requests in settlement order (its lane ring is FIFO); no order is
/// defined between events delivered to different threads — see
/// docs/ARCHITECTURE.md "Many-thread submission".
struct CompletionEvent {
  enum class Kind : std::uint8_t { kSend, kRecv };
  Kind kind = Kind::kSend;
  GateId gate = 0;
  Tag tag = 0;
  MsgSeq seq = 0;
  std::uint32_t bytes = 0;  ///< message payload length
  sim::TimeNs time = 0;     ///< settlement timestamp (clock fn)
  bool failed = false;      ///< settled by failure, not completion
  /// Submitting thread's engine lane (kNoSubmitLane for requests submitted
  /// outside the threaded engine) — the completion routing key.
  SubmitLane lane = kNoSubmitLane;
};

class Scheduler {
 public:
  /// `now` supplies timestamps for request completion (virtual time over
  /// the simulator; wall-clock for real drivers).
  using ClockFn = std::function<sim::TimeNs()>;
  /// Observer for settled requests (see CompletionEvent). Runs on the
  /// progression engine with the scheduler's serialization held — keep it
  /// cheap and never call back into the scheduler from it.
  using CompletionHook = std::function<void(const CompletionEvent&)>;
  /// `defer(fn)` runs fn at the next progression point (a zero-delay event
  /// on the simulator; the next progress() round for real drivers). This is
  /// what disconnects request processing from the API calls (paper §2): an
  /// isend only appends to the backlog, and the strategy is consulted at
  /// the deferred progression point — so a burst of submissions forms an
  /// optimization window the strategy can aggregate or split.
  using DeferFn = std::function<void(std::function<void()>)>;
  /// `timer(delay, fn)` runs fn after `delay` ns (simulator event / real
  /// timer wheel). Required only when a gate enables ack/retransmit — the
  /// RailGuards arm their RTO and delayed-ack timers through it.
  using TimerFn = std::function<void(sim::TimeNs, std::function<void()>)>;

  Scheduler(ClockFn now, DeferFn defer, TimerFn timer = nullptr);
  ~Scheduler();
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Create a gate over the given rail endpoints. The scheduler installs
  /// itself as the drivers' deliver upcall; each driver belongs to exactly
  /// one gate.
  GateId add_gate(std::vector<drv::Driver*> rails,
                  std::unique_ptr<strat::Strategy> strategy,
                  strat::StrategyConfig config = {});

  [[nodiscard]] Gate& gate(GateId id);
  [[nodiscard]] std::size_t gate_count() const noexcept { return gates_.size(); }

  /// Submit a message made of `segments` (a logically contiguous sequence
  /// of user-memory views). The user memory must stay valid until the
  /// returned request completes. Equivalent to make_send + submit_send.
  SendHandle isend(GateId gate, Tag tag,
                   std::vector<std::span<const std::byte>> segments);

  /// Post a receive for the next message with `tag` on `gate`. `buffer`
  /// must be at least as large as the matching message. Equivalent to
  /// make_recv + submit_recv.
  RecvHandle irecv(GateId gate, Tag tag, std::span<std::byte> buffer);

  // --- split submission (threaded progression) ----------------------------
  // make_* builds and stamps the request without touching any gate or
  // scheduler mutable state (the request metrics are atomic), so it is safe
  // on the application thread with progress threads live. submit_* binds
  // the per-(gate, tag) sequence number and hands the request to the
  // strategy; it must run on the progression engine (under its lock in
  // threaded mode). Requests must reach submit_* in make_* order per
  // thread — the SPSC submission ring preserves exactly that, which keeps
  // matching order equal to application post order.
  [[nodiscard]] SendHandle make_send(
      GateId gate, Tag tag, std::vector<std::span<const std::byte>> segments);
  void submit_send(SendHandle req);
  [[nodiscard]] RecvHandle make_recv(GateId gate, Tag tag,
                                     std::span<std::byte> buffer);
  void submit_recv(RecvHandle req);

  /// Install the settled-request observer (nullptr to remove). Installed
  /// before progress threads start; not thread-safe against them.
  void set_completion_hook(CompletionHook hook) {
    completion_hook_ = std::move(hook);
  }

  [[nodiscard]] sim::TimeNs now() const { return now_(); }

  /// Pending (uncompleted) requests — drained-state check for tests. Reads
  /// scheduler-owned state: call only with the progression engine quiescent
  /// (or under its lock in threaded mode).
  [[nodiscard]] std::size_t pending_requests() const noexcept;

  /// Request-level aggregates (per-rail counters live on the gates' rails).
  [[nodiscard]] const RequestMetrics& metrics() const noexcept { return metrics_; }

  /// Register every metric of this scheduler — request aggregates plus,
  /// per gate, the strategy counters and each rail's counters (including
  /// the driver's own, under "drv.") — into `registry` with hierarchical
  /// names: `<prefix>requests.*`, `<prefix>gate<G>.strat.*`,
  /// `<prefix>gate<G>.rail<R>.*`.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix);

 private:
  /// Request a pump at the next progression point (idempotent per gate).
  void schedule_pump(Gate& gate);
  void pump(Gate& gate);
  bool pump_once(Gate& gate);
  void post_control(Gate& gate, Rail& rail, drv::SendDesc desc);
  void post_plan(Gate& gate, Rail& rail, strat::PacketPlan plan);
  /// Repost frames surrendered by dead rails onto healthy survivors.
  bool drain_resend(Gate& gate);
  /// Rail-level accounting shared by every post (data and control); must
  /// run before the driver post so the idle->busy transition is observable.
  void note_rail_post(Rail& rail, const drv::SendDesc& desc);
  /// Apply send-completion credit (local completion without acks; peer
  /// acknowledgement with them) and the completion metrics.
  void credit_contribs(Gate& gate, const std::vector<strat::Contribution>& contribs);
  /// Rail `idx` of `gate` was declared dead: requeue its un-acked frames,
  /// let the strategy retarget, and fail the gate if no rail survives.
  void on_rail_dead(Gate& gate, RailIndex idx);
  /// Rail `idx` completed a reconnect handshake: un-fail the gate (requests
  /// failed during a total outage stay failed — only *new* submissions use
  /// the resurrected rail), let the strategy re-include it and repump.
  void on_rail_revived(Gate& gate, RailIndex idx);
  /// Every rail died: fail the gate's pending requests and drop its queues.
  void fail_gate(Gate& gate);
  /// `wire` is the driver's non-owning view of the received frame; every
  /// byte kept past this call is copied by reassembly into its message.
  void on_packet(Gate& gate, Rail& rail, drv::Track track,
                 std::span<const std::byte> wire);
  void handle_data_segment(Gate& gate, const proto::SegHeader& h,
                           std::span<const std::byte> payload);
  void handle_rdv_req(Gate& gate, const proto::SegHeader& h);
  void handle_rdv_ack(Gate& gate, const proto::SegHeader& h);
  void bind_recv(Gate& gate, Gate::Incoming& inc, RecvRequest* recv);
  void ensure_assembly(Gate::Incoming& inc);
  /// Completes the receive and drops the incoming entry when both the data
  /// and the matching receive are present.
  void try_finalize(Gate& gate, MsgKey key);
  void enqueue_ack(Gate& gate, MsgKey key);
  void sweep_completed();
  void notify_send_settled(const SendRequest& req, sim::TimeNs t);
  void notify_recv_settled(const RecvRequest& req, sim::TimeNs t);

  ClockFn now_;
  DeferFn defer_;
  TimerFn timer_;
  /// Liveness token: timer callbacks handed to the engine may outlive this
  /// scheduler; they hold a weak_ptr and turn into no-ops once it expires.
  std::shared_ptr<bool> alive_ = std::make_shared<bool>(true);
  std::vector<std::unique_ptr<Gate>> gates_;
  std::vector<SendHandle> live_sends_;
  std::vector<RecvHandle> live_recvs_;
  RequestMetrics metrics_;
  CompletionHook completion_hook_;
};

}  // namespace nmad::core
