// Bounded lock-free single-producer/single-consumer ring buffer — the
// submission and completion queues between the application thread and the
// threaded progression engine (core/progress.hpp).
//
// Contract:
//  - exactly ONE thread calls try_push (the producer) and exactly ONE
//    thread calls try_pop (the consumer) at any point in time. "One
//    thread" may be a changing identity as long as successive calls on
//    the same side are ordered by a happens-before edge (e.g. progress
//    threads that take turns draining under the engine lock);
//  - capacity is rounded up to a power of two; the ring holds exactly
//    `capacity()` elements before try_push reports full;
//  - elements are moved in and out; a popped slot's element is destroyed
//    (moved-from) before the slot is republished to the producer.
//
// Memory ordering is the classic Lamport queue: the producer publishes a
// slot with a release store of head_, the consumer acquires it; the
// consumer frees a slot with a release store of tail_, the producer
// acquires that. Indices are monotonically increasing uint64s (no ABA);
// the slot index is `pos & mask_`.
#pragma once

#include <atomic>
#include <bit>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <utility>
#include <vector>

namespace nmad::core {

/// Fixed rather than std::hardware_destructive_interference_size: that
/// constant varies with -mtune (gcc warns about ABI instability) and 64 is
/// right for every target we build on.
inline constexpr std::size_t kCacheLineSize = 64;

/// Escalating backoff for ring spin loops: stay hot for a few rounds, then
/// yield, then sleep — latency matters less than not burning a core once
/// the peer side has gone quiet. Shared by every full-ring / idle spin in
/// the threaded progression engine so backpressure behaves uniformly.
inline void ring_backoff(std::uint32_t round) {
  if (round < 16) return;
  if (round < 64) {
    std::this_thread::yield();
    return;
  }
  std::this_thread::sleep_for(std::chrono::microseconds(50));
}

template <typename T>
class SpscRing {
 public:
  /// `capacity` is rounded up to the next power of two (min 2).
  explicit SpscRing(std::size_t capacity)
      : mask_(std::bit_ceil(capacity < 2 ? std::size_t{2} : capacity) - 1),
        slots_(mask_ + 1) {}

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_ + 1; }

  /// Producer side. Returns false when the ring is full.
  bool try_push(T&& value) {
    const std::uint64_t head = head_.load(std::memory_order_relaxed);
    if (head - cached_tail_ > mask_) {
      cached_tail_ = tail_.load(std::memory_order_acquire);
      if (head - cached_tail_ > mask_) return false;
    }
    slots_[head & mask_] = std::move(value);
    head_.store(head + 1, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::uint64_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == cached_head_) {
      cached_head_ = head_.load(std::memory_order_acquire);
      if (tail == cached_head_) return false;
    }
    out = std::move(slots_[tail & mask_]);
    slots_[tail & mask_] = T{};  // drop resources before republishing the slot
    tail_.store(tail + 1, std::memory_order_release);
    return true;
  }

  /// Approximate occupancy (exact when called from the producer or
  /// consumer thread; a racy estimate from anywhere else).
  [[nodiscard]] std::size_t size() const noexcept {
    const std::uint64_t head = head_.load(std::memory_order_acquire);
    const std::uint64_t tail = tail_.load(std::memory_order_acquire);
    return head >= tail ? static_cast<std::size_t>(head - tail) : 0;
  }
  [[nodiscard]] bool empty() const noexcept { return size() == 0; }

 private:
  const std::size_t mask_;
  std::vector<T> slots_;

  // Producer-owned line: the producer writes head_, and keeps a stale copy
  // of tail_ so the common-case push does not touch the consumer's line.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> head_{0};
  std::uint64_t cached_tail_ = 0;

  // Consumer-owned line.
  alignas(kCacheLineSize) std::atomic<std::uint64_t> tail_{0};
  std::uint64_t cached_head_ = 0;
};

/// Bounded-blocking push: spin with ring_backoff() until the ring accepts
/// `value` or `max_rounds` backoff rounds elapse. `on_first_stall` runs
/// exactly once, on the first failed fast-path attempt — the hook the
/// progression engine uses to count backpressure events. Returns false
/// (with `value` intact, try_push does not consume on failure) only after
/// the round budget is exhausted; pass a huge budget for an effectively
/// unbounded, lossless push.
template <typename T, typename OnStall>
bool spsc_push_backoff(SpscRing<T>& ring, T&& value, std::uint64_t max_rounds,
                       OnStall&& on_first_stall) {
  if (ring.try_push(std::move(value))) return true;
  on_first_stall();
  for (std::uint64_t round = 1; round <= max_rounds; ++round) {
    ring_backoff(static_cast<std::uint32_t>(
        round > 0xffffffffu ? 0xffffffffu : round));
    if (ring.try_push(std::move(value))) return true;
  }
  return false;
}

}  // namespace nmad::core
