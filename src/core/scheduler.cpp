#include "core/scheduler.hpp"

#include <algorithm>
#include <utility>

#include "obs/registry.hpp"
#include "proto/wire.hpp"
#include "util/log.hpp"
#include "util/panic.hpp"

namespace nmad::core {

namespace {

/// ns elapsed between two instants, clamped for histogram recording.
std::uint64_t elapsed_ns(sim::TimeNs from, sim::TimeNs to) {
  return to > from ? static_cast<std::uint64_t>(to - from) : 0;
}

}  // namespace

void RequestMetrics::register_into(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  registry.add(prefix + "sends_posted", &sends_posted);
  registry.add(prefix + "recvs_posted", &recvs_posted);
  registry.add(prefix + "sends_completed", &sends_completed);
  registry.add(prefix + "recvs_completed", &recvs_completed);
  registry.add(prefix + "send_bytes_submitted", &send_bytes_submitted);
  registry.add(prefix + "recv_bytes_delivered", &recv_bytes_delivered);
  registry.add(prefix + "unexpected_msgs", &unexpected_msgs);
  registry.add(prefix + "send_size", &send_size);
  registry.add(prefix + "recv_size", &recv_size);
  registry.add(prefix + "send_latency_ns", &send_latency_ns);
  registry.add(prefix + "recv_latency_ns", &recv_latency_ns);
}

Scheduler::Scheduler(ClockFn now, DeferFn defer, TimerFn timer)
    : now_(std::move(now)), defer_(std::move(defer)), timer_(std::move(timer)) {
  NMAD_ASSERT(now_ != nullptr, "Scheduler needs a clock");
  NMAD_ASSERT(defer_ != nullptr, "Scheduler needs a defer hook");
}

Scheduler::~Scheduler() = default;

GateId Scheduler::add_gate(std::vector<drv::Driver*> rails,
                           std::unique_ptr<strat::Strategy> strategy,
                           strat::StrategyConfig config) {
  NMAD_ASSERT(!config.reliability.ack_enabled || timer_ != nullptr,
              "ack_enabled requires a Scheduler timer hook");
  const auto id = static_cast<GateId>(gates_.size());
  gates_.push_back(
      std::make_unique<Gate>(id, rails, std::move(strategy), config));
  Gate& g = *gates_.back();
  for (Rail& rail : g.rails()) {
    const RailIndex idx = rail.index();
    RailGuard::Hooks hooks;
    hooks.now = now_;
    if (timer_ != nullptr) {
      hooks.timer = [this, token = std::weak_ptr<bool>(alive_)](
                        sim::TimeNs delay, std::function<void()> fn) {
        timer_(delay, [token, fn = std::move(fn)] {
          if (!token.expired()) fn();
        });
      };
    }
    hooks.credit = [this, id](const std::vector<strat::Contribution>& contribs) {
      credit_contribs(gate(id), contribs);
    };
    hooks.deliver = [this, id, idx](drv::Track track,
                                    std::span<const std::byte> packet) {
      Gate& target = gate(id);
      on_packet(target, target.rail(idx), track, packet);
    };
    hooks.note_post = [this, id, idx](const drv::SendDesc& desc) {
      note_rail_post(gate(id).rail(idx), desc);
    };
    hooks.kick = [this, id] { pump(gate(id)); };
    hooks.on_state_change = [this, id, idx](RailState st) {
      Gate& target = gate(id);
      if (st == RailState::kDead) {
        on_rail_dead(target, idx);
      } else {
        schedule_pump(target);
      }
    };
    hooks.on_revived = [this, id, idx] { on_rail_revived(gate(id), idx); };
    hooks.requeue = [this, id](std::vector<RailGuard::PendingFrame> frames) {
      Gate& target = gate(id);
      for (RailGuard::PendingFrame& pf : frames) {
        target.resend_.push_back(std::move(pf));
      }
      schedule_pump(target);
    };
    rail.guard.init(rail.driver(), idx, config.reliability, std::move(hooks));
    rail.guard.set_estimator(&g.estimator());
    rail.driver().set_deliver(
        [this, id, idx](drv::Track track, std::span<const std::byte> frame) {
          gate(id).rail(idx).guard.on_frame(track, frame);
        });
    rail.driver().set_error([this, id, idx](const drv::RailError& err) {
      gate(id).rail(idx).guard.on_driver_error(err);
    });
  }
  return id;
}

Gate& Scheduler::gate(GateId id) {
  NMAD_ASSERT(id < gates_.size(), "unknown gate id");
  return *gates_[id];
}

void Scheduler::register_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) {
  metrics_.register_into(registry, prefix + "requests.");
  for (const auto& gate_ptr : gates_) {
    Gate& g = *gate_ptr;
    const std::string gate_prefix =
        prefix + "gate" + std::to_string(g.id()) + ".";
    registry.label(gate_prefix + "strategy", std::string(g.strategy().name()));
    g.strategy().metrics().register_into(registry, gate_prefix + "strat.");
    g.adaptive_metrics.register_into(registry, gate_prefix + "adaptive.");
    g.header_pool().register_into(registry, gate_prefix + "pool.header_");
    g.staging_pool().register_into(registry, gate_prefix + "pool.staging_");
    for (Rail& rail : g.rails()) {
      const std::string rail_prefix =
          gate_prefix + "rail" + std::to_string(rail.index()) + ".";
      registry.label(rail_prefix + "nic", rail.caps().name);
      rail.metrics.register_into(registry, rail_prefix);
      rail.guard.metrics.register_into(registry, rail_prefix);
      g.estimator().register_rail_into(registry, rail.index(),
                                       rail_prefix + "est.");
      rail.driver().register_metrics(registry, rail_prefix + "drv.");
    }
  }
}

std::size_t Scheduler::pending_requests() const noexcept {
  std::size_t n = 0;
  for (const auto& h : live_sends_) {
    if (!h->done()) ++n;
  }
  for (const auto& h : live_recvs_) {
    if (!h->done()) ++n;
  }
  return n;
}

void Scheduler::sweep_completed() {
  constexpr std::size_t kSweepThreshold = 4096;
  if (live_sends_.size() > kSweepThreshold) {
    std::erase_if(live_sends_, [](const SendHandle& h) {
      return h->done() && h.use_count() == 1;
    });
  }
  if (live_recvs_.size() > kSweepThreshold) {
    std::erase_if(live_recvs_, [](const RecvHandle& h) {
      return h->done() && h.use_count() == 1;
    });
  }
}

// --------------------------------------------------------------------------
// Collect layer entry points
// --------------------------------------------------------------------------

SendHandle Scheduler::make_send(GateId gate_id, Tag tag,
                                std::vector<std::span<const std::byte>> segments) {
  NMAD_ASSERT(gate_id < gates_.size(), "unknown gate id");
  std::vector<ConstSegment> views;
  std::uint64_t offset = 0;
  for (const auto& s : segments) {
    if (s.empty()) continue;  // empty segments carry no bytes
    views.push_back(ConstSegment{s, static_cast<std::uint32_t>(offset)});
    offset += s.size();
  }
  NMAD_ASSERT(offset <= 0xffffffffULL, "message exceeds 4 GiB");
  const auto total = static_cast<std::uint32_t>(offset);

  auto req = std::make_shared<SendRequest>(tag, std::move(views), total);
  req->note_submit_time(now_());
  req->note_gate(gate_id);
  metrics_.sends_posted.inc();
  metrics_.send_bytes_submitted.inc(total);
  metrics_.send_size.record(total);
  return req;
}

void Scheduler::submit_send(SendHandle req) {
  sweep_completed();
  Gate& g = gate(req->gate());
  const Tag tag = req->tag();
  const MsgSeq seq = g.next_send_seq_[tag]++;
  req->assign_seq(seq);
  live_sends_.push_back(req);

  if (g.failed_) {
    // All rails dead: nothing will ever move. Fail fast.
    const sim::TimeNs t = now_();
    req->fail(t);
    notify_send_settled(*req, t);
    return;
  }

  strat::Strategy& strat = g.strategy();
  const std::uint32_t total = req->total_len();
  bool has_large = false;
  if (total == 0) {
    // A zero-length message still needs one (empty) packet so the receiver
    // observes it.
    strat.on_submit_small(g, strat::SmallEntry{req.get(), {}, 0});
  } else {
    for (const ConstSegment& seg : req->segments()) {
      if (seg.data.size() <= g.small_threshold()) {
        strat.on_submit_small(g,
                              strat::SmallEntry{req.get(), seg.data, seg.msg_offset});
      } else {
        strat.on_submit_large(g,
                              strat::LargeEntry{req.get(), seg.data, seg.msg_offset});
        has_large = true;
      }
    }
  }
  if (has_large) {
    g.control_.push_back(drv::SendDesc{
        drv::Track::kSmall,
        proto::encode_rdv_req_view(g.header_pool(), tag, seq, total), 0.0});
  }
  schedule_pump(g);
}

SendHandle Scheduler::isend(GateId gate_id, Tag tag,
                            std::vector<std::span<const std::byte>> segments) {
  SendHandle req = make_send(gate_id, tag, std::move(segments));
  submit_send(req);
  return req;
}

RecvHandle Scheduler::make_recv(GateId gate_id, Tag tag,
                                std::span<std::byte> buffer) {
  NMAD_ASSERT(gate_id < gates_.size(), "unknown gate id");
  auto req = std::make_shared<RecvRequest>(tag, buffer);
  req->note_submit_time(now_());
  req->note_gate(gate_id);
  metrics_.recvs_posted.inc();
  return req;
}

void Scheduler::submit_recv(RecvHandle req) {
  sweep_completed();
  Gate& g = gate(req->gate());
  const Tag tag = req->tag();
  const MsgSeq seq = g.next_recv_seq_[tag]++;
  req->assign_seq(seq);
  live_recvs_.push_back(req);

  if (g.failed_) {
    const sim::TimeNs t = now_();
    req->fail(t);
    notify_recv_settled(*req, t);
    return;
  }

  const MsgKey key{tag, seq};
  auto it = g.incoming_.find(key);
  if (it != g.incoming_.end()) {
    bind_recv(g, it->second, req.get());
    try_finalize(g, key);
  } else {
    g.incoming_[key].recv = req.get();
  }
  schedule_pump(g);
}

RecvHandle Scheduler::irecv(GateId gate_id, Tag tag, std::span<std::byte> buffer) {
  RecvHandle req = make_recv(gate_id, tag, buffer);
  submit_recv(req);
  return req;
}

// --------------------------------------------------------------------------
// Packing pump
// --------------------------------------------------------------------------

void Scheduler::schedule_pump(Gate& gate) {
  if (gate.pump_scheduled_) return;
  gate.pump_scheduled_ = true;
  defer_([this, &gate] {
    gate.pump_scheduled_ = false;
    pump(gate);
  });
}

void Scheduler::pump(Gate& gate) {
  if (gate.pumping_) {
    gate.repump_ = true;
    return;
  }
  gate.pumping_ = true;
  do {
    gate.repump_ = false;
    while (pump_once(gate)) {
    }
  } while (gate.repump_);
  gate.pumping_ = false;
}

bool Scheduler::pump_once(Gate& gate) {
  if (gate.failed_) return false;
  bool progress = false;

  // Adaptive striping: re-derive split ratios / rail order from the live
  // estimates once per optimization window (no-op unless enabled).
  gate.maybe_refresh_ratios(now_());

  // Reliability upkeep first: due retransmissions and owed standalone acks
  // (the guards post directly and account through the note_post hook).
  for (Rail& rail : gate.rails()) {
    if (rail.alive() && rail.guard.flush()) progress = true;
  }
  if (gate.failed_) return progress;  // a flush may have killed the last rail

  // Frames surrendered by dead rails jump the queue: they carry data the
  // peer is already waiting on.
  if (drain_resend(gate)) progress = true;

  // Rendezvous control packets take priority on the eager tracks; pick the
  // lowest-latency healthy idle rail for them.
  while (!gate.control_.empty()) {
    Rail* best = nullptr;
    for (Rail& r : gate.rails()) {
      if (r.healthy() && r.idle(drv::Track::kSmall) &&
          (best == nullptr || r.caps().latency_us < best->caps().latency_us)) {
        best = &r;
      }
    }
    if (best == nullptr) break;
    drv::SendDesc desc = std::move(gate.control_.front());
    gate.control_.pop_front();
    post_control(gate, *best, std::move(desc));
    progress = true;
  }

  // Just-in-time strategy packing: offer every healthy idle track to the
  // strategy (suspect rails keep retransmitting but take no new work).
  // Offer order follows gate.rail_order(): index order normally, live
  // estimated-rate order under adaptive striping — the greedy strategies'
  // kAnyRail backlog drains onto the fastest rail first.
  for (RailIndex ri : gate.rail_order()) {
    Rail& rail = gate.rail(ri);
    if (!rail.healthy()) continue;
    for (drv::Track track : {drv::Track::kSmall, drv::Track::kLarge}) {
      while (rail.healthy() && rail.idle(track)) {
        auto plan = gate.strategy().try_pack(gate, rail, track);
        if (!plan.has_value()) break;
        NMAD_ASSERT(plan->desc.track == track, "strategy packed for wrong track");
        post_plan(gate, rail, std::move(*plan));
        progress = true;
      }
    }
  }
  return progress;
}

bool Scheduler::drain_resend(Gate& gate) {
  bool progress = false;
  while (!gate.resend_.empty()) {
    RailGuard::PendingFrame& pf = gate.resend_.front();
    // Prefer the frame's original track on a healthy rail; an eager frame
    // too big for a survivor's PIO window rides its DMA track instead.
    Rail* target = nullptr;
    drv::Track track = pf.desc.track;
    for (Rail& r : gate.rails()) {
      if (!r.healthy()) continue;
      drv::Track t = pf.desc.track;
      if (t == drv::Track::kSmall &&
          pf.desc.view.wire_size() > r.caps().max_small_packet) {
        t = drv::Track::kLarge;
      }
      if (r.idle(t)) {
        target = &r;
        track = t;
        break;
      }
    }
    if (target == nullptr) break;
    drv::SendDesc desc = std::move(pf.desc);
    desc.track = track;
    std::vector<strat::Contribution> contribs = std::move(pf.contribs);
    gate.resend_.pop_front();
    note_rail_post(*target, desc);
    target->guard.post(std::move(desc), std::move(contribs));
    progress = true;
  }
  return progress;
}

void Scheduler::post_control(Gate& gate, Rail& rail, drv::SendDesc desc) {
  (void)gate;
  rail.tx.control_packets += 1;
  note_rail_post(rail, desc);
  rail.metrics.control_packets.inc();
  rail.guard.post(std::move(desc), {});
}

void Scheduler::post_plan(Gate& gate, Rail& rail, strat::PacketPlan plan) {
  const auto track_idx = static_cast<std::size_t>(plan.desc.track);
  rail.tx.packets[track_idx] += 1;
  rail.tx.segments += plan.contribs.size();
  std::uint64_t payload = 0;
  for (const auto& c : plan.contribs) payload += c.bytes;
  rail.tx.payload_bytes[track_idx] += payload;

  note_rail_post(rail, plan.desc);
  rail.metrics.segments_sent.inc(plan.contribs.size());
  if (plan.desc.track == drv::Track::kSmall) {
    rail.metrics.small_payload_bytes.inc(payload);
    if (plan.contribs.size() >= 2) {
      rail.metrics.aggregation_hits.inc();
    } else {
      rail.metrics.aggregation_misses.inc();
    }
  } else {
    rail.metrics.large_payload_bytes.inc(payload);
  }

  (void)gate;
  rail.guard.post(std::move(plan.desc), std::move(plan.contribs));
}

void Scheduler::note_rail_post(Rail& rail, const drv::SendDesc& desc) {
  Rail::Metrics& m = rail.metrics;
  if (rail.idle(drv::Track::kSmall) && rail.idle(drv::Track::kLarge)) {
    m.nic_wakeups.inc();
  }
  m.packets_sent.inc();
  m.bytes_sent.inc(desc.wire_size());
  m.packet_size.record(desc.wire_size());
  m.bytes_copied.inc(desc.view.copied_bytes());
  m.allocs_hot_path.inc(desc.view.heap_allocs());
  if (desc.track == drv::Track::kSmall) {
    m.pio_transfers.inc();
  } else {
    m.rdv_transfers.inc();
  }
}

void Scheduler::notify_send_settled(const SendRequest& req, sim::TimeNs t) {
  if (!completion_hook_) return;
  completion_hook_(CompletionEvent{CompletionEvent::Kind::kSend, req.gate(),
                                   req.tag(), req.seq(), req.total_len(), t,
                                   req.failed(), req.submit_lane()});
}

void Scheduler::notify_recv_settled(const RecvRequest& req, sim::TimeNs t) {
  if (!completion_hook_) return;
  completion_hook_(CompletionEvent{CompletionEvent::Kind::kRecv, req.gate(),
                                   req.tag(), req.seq(), req.received_len(), t,
                                   req.failed(), req.submit_lane()});
}

void Scheduler::credit_contribs(Gate& /*gate*/,
                                const std::vector<strat::Contribution>& contribs) {
  const sim::TimeNs t = now_();
  for (const strat::Contribution& c : contribs) {
    const bool was_completed = c.req->completed();
    c.req->credit_sent(c.bytes, t);
    if (!was_completed && c.req->completed()) {
      metrics_.sends_completed.inc();
      metrics_.send_latency_ns.record(elapsed_ns(c.req->submit_time(), t));
      notify_send_settled(*c.req, t);
    }
  }
}

void Scheduler::on_rail_dead(Gate& gate, RailIndex idx) {
  Rail& rail = gate.rail(idx);
  // Surrender the dead rail's retained frames; they repost on survivors.
  for (RailGuard::PendingFrame& pf : rail.guard.take_unacked()) {
    gate.resend_.push_back(std::move(pf));
  }
  gate.strategy().on_rail_dead(gate, idx);
  gate.recompute_fastest();
  bool any_alive = false;
  for (const Rail& r : gate.rails()) {
    if (r.alive()) {
      any_alive = true;
      break;
    }
  }
  if (!any_alive) {
    fail_gate(gate);
    return;
  }
  schedule_pump(gate);
}

void Scheduler::on_rail_revived(Gate& gate, RailIndex idx) {
  if (gate.failed_) {
    // Total-outage recovery: requests failed while every rail was down
    // stay settled as failed (no zombie resurrection); the gate itself
    // comes back for new submissions.
    NMAD_LOG_INFO("core", "gate%u: rail%u resurrected, gate accepting traffic",
                  gate.id(), idx);
    gate.failed_ = false;
  }
  gate.strategy().on_rail_revived(gate, idx);
  gate.recompute_fastest();
  schedule_pump(gate);
}

void Scheduler::fail_gate(Gate& gate) {
  if (gate.failed_) return;
  gate.failed_ = true;
  NMAD_LOG_WARN("core", "gate%u: every rail dead, failing pending requests",
                gate.id());
  gate.control_.clear();
  gate.resend_.clear();
  gate.incoming_.clear();
  gate.strategy().on_gate_failed(gate);
  const sim::TimeNs t = now_();
  for (const auto& h : live_sends_) {
    if (h->gate() != gate.id() || h->done()) continue;
    h->fail(t);
    notify_send_settled(*h, t);
  }
  for (const auto& h : live_recvs_) {
    if (h->gate() != gate.id() || h->done()) continue;
    h->fail(t);
    notify_recv_settled(*h, t);
  }
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void Scheduler::on_packet(Gate& gate, Rail& rail, drv::Track /*track*/,
                          std::span<const std::byte> wire) {
  auto decoded = proto::decode_packet(wire);
  if (!decoded) {
    // A frame that passed the envelope checksum but fails packet decode:
    // treat like corruption — drop it and let retransmission (if enabled)
    // heal the loss. Panicking would turn one bad frame into an outage.
    rail.guard.metrics.malformed_drops.inc();
    NMAD_LOG_WARN("core", "gate%u: dropping undecodable packet (%zu bytes)",
                  gate.id(), wire.size());
    return;
  }
  for (const auto& seg : decoded->segments) {
    switch (decoded->kind) {
      case proto::PacketKind::kData:
        handle_data_segment(gate, seg.header, seg.payload);
        break;
      case proto::PacketKind::kRdvReq:
        handle_rdv_req(gate, seg.header);
        break;
      case proto::PacketKind::kRdvAck:
        handle_rdv_ack(gate, seg.header);
        break;
    }
  }
  (void)rail;
  pump(gate);
}

void Scheduler::handle_data_segment(Gate& gate, const proto::SegHeader& h,
                                    std::span<const std::byte> payload) {
  const MsgKey key{h.tag, h.msg_seq};
  Gate::Incoming& inc = gate.incoming_[key];
  if (!inc.total_known) {
    inc.total_len = h.total_len;
    inc.total_known = true;
  } else {
    NMAD_ASSERT(inc.total_len == h.total_len,
                "inconsistent total length across chunks");
  }
  ensure_assembly(inc);
  if (auto st = inc.assembly->add_chunk(h.offset, payload); !st) {
    // Out-of-range or partially-overlapping chunk: drop it rather than
    // crash. Exact duplicates (failover reposts whose original landed)
    // return success and are simply not re-applied.
    NMAD_LOG_WARN("core", "dropping bad chunk: %s", st.error().message.c_str());
    return;
  }
  if (inc.assembly->complete()) {
    inc.data_complete = true;
    try_finalize(gate, key);
  }
}

void Scheduler::handle_rdv_req(Gate& gate, const proto::SegHeader& h) {
  const MsgKey key{h.tag, h.msg_seq};
  Gate::Incoming& inc = gate.incoming_[key];
  inc.rdv_seen = true;
  if (!inc.total_known) {
    inc.total_len = h.total_len;
    inc.total_known = true;
  }
  if (inc.recv != nullptr && !inc.rdv_acked) {
    ensure_assembly(inc);
    enqueue_ack(gate, key);
    inc.rdv_acked = true;
  }
}

void Scheduler::handle_rdv_ack(Gate& gate, const proto::SegHeader& h) {
  gate.strategy().on_rdv_granted(gate, MsgKey{h.tag, h.msg_seq});
}

void Scheduler::bind_recv(Gate& gate, Gate::Incoming& inc, RecvRequest* recv) {
  NMAD_ASSERT(inc.recv == nullptr, "incoming message bound twice");
  inc.recv = recv;
  if (inc.total_known) {
    NMAD_ASSERT(recv->buffer().size() >= inc.total_len,
                "receive buffer smaller than incoming message");
    if (inc.assembly != nullptr) {
      // Migrate from unexpected-message storage into the user buffer.
      inc.assembly->rebind(recv->buffer().first(inc.total_len));
      inc.temp.clear();
      inc.temp.shrink_to_fit();
    } else {
      ensure_assembly(inc);
    }
  }
  if (inc.rdv_seen && !inc.rdv_acked) {
    enqueue_ack(gate, MsgKey{recv->tag(), recv->seq()});
    inc.rdv_acked = true;
  }
}

void Scheduler::ensure_assembly(Gate::Incoming& inc) {
  if (inc.assembly != nullptr) return;
  NMAD_ASSERT(inc.total_known, "assembly requires known message length");
  std::span<std::byte> dest;
  if (inc.recv != nullptr) {
    NMAD_ASSERT(inc.recv->buffer().size() >= inc.total_len,
                "receive buffer smaller than incoming message");
    dest = inc.recv->buffer().first(inc.total_len);
  } else {
    inc.temp.resize(inc.total_len);
    dest = inc.temp;
    metrics_.unexpected_msgs.inc();
  }
  inc.assembly = std::make_unique<proto::MessageAssembly>(dest);
}

void Scheduler::try_finalize(Gate& gate, MsgKey key) {
  auto it = gate.incoming_.find(key);
  if (it == gate.incoming_.end()) return;
  Gate::Incoming& inc = it->second;
  if (!inc.data_complete || inc.recv == nullptr) return;
  const sim::TimeNs t = now_();
  inc.recv->complete(inc.total_len, t);
  metrics_.recvs_completed.inc();
  metrics_.recv_bytes_delivered.inc(inc.total_len);
  metrics_.recv_size.record(inc.total_len);
  metrics_.recv_latency_ns.record(elapsed_ns(inc.recv->submit_time(), t));
  notify_recv_settled(*inc.recv, t);
  gate.incoming_.erase(it);
}

void Scheduler::enqueue_ack(Gate& gate, MsgKey key) {
  gate.control_.push_back(drv::SendDesc{
      drv::Track::kSmall,
      proto::encode_rdv_ack_view(gate.header_pool(), key.tag, key.seq), 0.0});
}

}  // namespace nmad::core
