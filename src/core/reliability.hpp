// Reliability knobs and the rail health state machine's states.
//
// Kept in a leaf header (no gate/scheduler includes) so StrategyConfig can
// embed a ReliabilityConfig without cycles.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace nmad::core {

/// Health of one rail, driven by the RailGuard:
///
///   healthy --consecutive timeouts--> suspect --retries exhausted--> dead
///      ^                                 |                            ^ |
///      +---------- ack advance ----------+       driver RailError ----+ |
///      ^                                                               |
///      +------ reconnect handshake ------ probing <---reconnect timer--+
///
/// `suspect` rails receive no *new* traffic from the pump but keep
/// retransmitting — the retransmissions double as recovery probes, and one
/// acknowledged probe returns the rail to `healthy`. A `dead` rail is
/// quiesced: the scheduler requeues its un-acked frames and the strategies
/// re-split remaining work across the survivors. With
/// `reconnect_enabled` the guard then keeps trying to resurrect the rail:
/// it moves to `probing` and sends epoch-bumping reconnect handshakes with
/// capped exponential backoff; a completed handshake resets all sequencing
/// state, fences every frame of the previous incarnation by epoch, and
/// returns the rail to `healthy` through the adaptive striper's recovery
/// ramp. A probing rail counts as dead for failover purposes (it carries
/// no traffic and does not keep a gate alive).
enum class RailState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDead = 2,
  kProbing = 3,
};

[[nodiscard]] constexpr const char* rail_state_name(RailState s) noexcept {
  switch (s) {
    case RailState::kHealthy: return "healthy";
    case RailState::kSuspect: return "suspect";
    case RailState::kDead: return "dead";
    case RailState::kProbing: return "probing";
  }
  return "unknown";
}

/// Per-gate reliability configuration (lives in StrategyConfig).
///
/// `ack_enabled = false` (the default) preserves the paper's
/// reliable-network behavior exactly: frames still carry a sealed envelope
/// (sequence + CRC32C, so corruption is always detected and duplicates
/// always suppressed), but nothing is retained, no acks are emitted and no
/// timers are armed — zero retransmit-path overhead on the calibrated
/// simulation timings and the clean benches.
struct ReliabilityConfig {
  bool ack_enabled = false;
  /// Initial retransmission timeout.
  sim::TimeNs rto_ns = 2'000'000;
  /// Exponential backoff factor per retry, capped at rto_max_ns.
  double rto_backoff = 2.0;
  sim::TimeNs rto_max_ns = 50'000'000;
  /// Retries after which the rail is declared dead.
  std::uint32_t max_retries = 6;
  /// Consecutive timeouts after which a healthy rail turns suspect.
  std::uint32_t suspect_after = 2;
  /// How long a standalone ack may be delayed waiting for a piggyback.
  sim::TimeNs ack_delay_ns = 200'000;
  /// Uniform jitter applied to each RTO (fraction of the deadline, so
  /// retransmissions of parallel rails do not synchronize).
  double rto_jitter = 0.1;
  std::uint64_t jitter_seed = 0x9e3779b9;

  // --- keepalive probing (requires ack_enabled) ---------------------------
  /// Emit heartbeat probes on rails with no recent receive activity, so a
  /// dead link is detected even with zero application traffic. Off by
  /// default: clean benches and legacy configurations arm no extra timers.
  bool keepalive_enabled = false;
  /// A rail idle (nothing received) for this long gets a probe frame.
  sim::TimeNs keepalive_idle_ns = 5'000'000;
  /// An unanswered probe counts as a miss after this long.
  sim::TimeNs probe_timeout_ns = 2'000'000;
  /// Consecutive probe misses before the rail is declared dead
  /// (suspect_after misses already turn it suspect).
  std::uint32_t probe_max_misses = 3;

  // --- reconnection (requires ack_enabled) --------------------------------
  /// Attempt to resurrect dead rails: revive the driver and run the
  /// epoch-bumping reconnect handshake. Off by default — dead stays
  /// terminal, the pre-resurrection semantics.
  bool reconnect_enabled = false;
  /// First reconnect attempt fires this long after death.
  sim::TimeNs reconnect_backoff_ns = 1'000'000;
  /// Exponential backoff factor between attempts, capped at the max.
  double reconnect_backoff_factor = 2.0;
  sim::TimeNs reconnect_backoff_max_ns = 100'000'000;
  /// Give up after this many attempts; 0 = keep trying forever. Tests use
  /// a finite cap so simulated engines can drain.
  std::uint32_t reconnect_max_attempts = 0;
};

/// Online adaptive-striping knobs (consumed by strat/rate_estimator and the
/// gate's ratio-refresh logic). Kept in this leaf header next to
/// ReliabilityConfig so StrategyConfig can embed both without cycles.
///
/// With `enabled = false` (the default) the estimator still ingests samples
/// — a handful of relaxed atomic stores per completion — but split ratios
/// stay frozen at their boot-time values, preserving the paper's v3
/// behavior exactly.
struct AdaptiveConfig {
  bool enabled = false;
  /// EWMA smoothing factor applied per sample (0 < alpha <= 1).
  double ewma_alpha = 0.25;
  /// Estimate confidence halves for every such period without a sample.
  sim::TimeNs confidence_halflife_ns = 20'000'000;
  /// Minimum spacing between two ratio re-derivations (the adaptive
  /// optimization window).
  sim::TimeNs window_ns = 500'000;
  /// Skip installing re-derived ratios unless some rail's normalized
  /// weight moved by more than this — hysteresis against ratio thrash.
  double hysteresis = 0.03;
  /// Weight multiplier for a rail the guard holds in `suspect`: its
  /// recovery probes keep flowing but new stripes mostly avoid it.
  double suspect_penalty = 0.25;
  /// A recovered rail ramps linearly from suspect_penalty back to full
  /// weight over this long, instead of snapping back.
  sim::TimeNs recovery_ramp_ns = 5'000'000;
  /// Floor on any live rail's normalized weight, so slow rails keep
  /// carrying probe traffic and the estimator never starves of samples.
  double min_weight = 0.05;
  /// Each retransmit timeout multiplies the rail's confidence and EWMA
  /// bandwidth by this: a silent rail sheds weight *before* the guard's
  /// state machine declares it suspect or dead.
  double timeout_penalty = 0.5;
};

}  // namespace nmad::core
