// Reliability knobs and the rail health state machine's states.
//
// Kept in a leaf header (no gate/scheduler includes) so StrategyConfig can
// embed a ReliabilityConfig without cycles.
#pragma once

#include <cstdint>

#include "sim/time.hpp"

namespace nmad::core {

/// Health of one rail, driven by the RailGuard:
///
///   healthy --consecutive timeouts--> suspect --retries exhausted--> dead
///      ^                                 |                            ^
///      +---------- ack advance ----------+       driver RailError ----+
///
/// `suspect` rails receive no *new* traffic from the pump but keep
/// retransmitting — the retransmissions double as recovery probes, and one
/// acknowledged probe returns the rail to `healthy`. `dead` is terminal:
/// the scheduler quiesces the rail, requeues its un-acked frames and lets
/// the strategies re-split remaining work across the survivors.
enum class RailState : std::uint8_t {
  kHealthy = 0,
  kSuspect = 1,
  kDead = 2,
};

[[nodiscard]] constexpr const char* rail_state_name(RailState s) noexcept {
  switch (s) {
    case RailState::kHealthy: return "healthy";
    case RailState::kSuspect: return "suspect";
    case RailState::kDead: return "dead";
  }
  return "unknown";
}

/// Per-gate reliability configuration (lives in StrategyConfig).
///
/// `ack_enabled = false` (the default) preserves the paper's
/// reliable-network behavior exactly: frames still carry a sealed envelope
/// (sequence + CRC32C, so corruption is always detected and duplicates
/// always suppressed), but nothing is retained, no acks are emitted and no
/// timers are armed — zero retransmit-path overhead on the calibrated
/// simulation timings and the clean benches.
struct ReliabilityConfig {
  bool ack_enabled = false;
  /// Initial retransmission timeout.
  sim::TimeNs rto_ns = 2'000'000;
  /// Exponential backoff factor per retry, capped at rto_max_ns.
  double rto_backoff = 2.0;
  sim::TimeNs rto_max_ns = 50'000'000;
  /// Retries after which the rail is declared dead.
  std::uint32_t max_retries = 6;
  /// Consecutive timeouts after which a healthy rail turns suspect.
  std::uint32_t suspect_after = 2;
  /// How long a standalone ack may be delayed waiting for a piggyback.
  sim::TimeNs ack_delay_ns = 200'000;
  /// Uniform jitter applied to each RTO (fraction of the deadline, so
  /// retransmissions of parallel rails do not synchronize).
  double rto_jitter = 0.1;
  std::uint64_t jitter_seed = 0x9e3779b9;
};

}  // namespace nmad::core
