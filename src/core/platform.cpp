#include "core/platform.hpp"

#include <algorithm>
#include <utility>

#include "drv/sim_driver.hpp"
#include "obs/registry.hpp"
#include "sampling/ratio_table.hpp"
#include "sampling/sampler.hpp"
#include "util/panic.hpp"

namespace nmad::core {

TwoNodePlatform::TwoNodePlatform(PlatformConfig config)
    : config_(std::move(config)), world_(std::make_unique<drv::SimWorld>()) {
  NMAD_ASSERT(!config_.links.empty(), "platform needs at least one link");

  const drv::NodeId na = world_->add_node(config_.host_a);
  const drv::NodeId nb = world_->add_node(config_.host_b);
  for (const auto& nic : config_.links) {
    auto [ea, eb] = world_->add_link(na, nb, nic);
    rails_a_.push_back(ea);
    rails_b_.push_back(eb);
  }

  drv::SimWorld* w = world_.get();
  auto clock = [w] { return w->now(); };
  auto defer = [w](std::function<void()> fn) {
    w->engine().schedule(0, std::move(fn));
  };
  auto progress = [w](const std::function<bool()>& pred) {
    w->engine().run_until(pred);
  };
  auto timer = [w](sim::TimeNs delay, std::function<void()> fn) {
    w->engine().schedule(delay, std::move(fn));
  };
  session_a_ = std::make_unique<Session>("A", clock, defer, progress, timer);
  session_b_ = std::make_unique<Session>("B", clock, defer, progress, timer);

  gate_ab_ = session_a_->connect(
      std::vector<drv::Driver*>(rails_a_.begin(), rails_a_.end()),
      config_.strategy, config_.strat_cfg);
  gate_ba_ = session_b_->connect(
      std::vector<drv::Driver*>(rails_b_.begin(), rails_b_.end()),
      config_.strategy, config_.strat_cfg);

  if (config_.sampled_ratios) {
    std::vector<double> weights;
    bool from_cache = false;
    if (!config_.sampling_cache_path.empty()) {
      if (auto table = sampling::RatioTable::load(config_.sampling_cache_path);
          table && table->samples().size() == config_.links.size()) {
        weights = table->weights();
        from_cache = true;
      }
    }
    if (!from_cache) {
      const auto samples = sampling::sample_rails(config_.host_a, config_.host_b,
                                                  config_.links);
      sampling::RatioTable table(samples);
      weights = table.weights();
      if (!config_.sampling_cache_path.empty()) {
        // Best effort: an unwritable cache only costs re-measuring next run.
        (void)table.save(config_.sampling_cache_path);
      }
    }
    session_a_->scheduler().gate(gate_ab_).set_ratios(weights);
    session_b_->scheduler().gate(gate_ba_).set_ratios(weights);
  }

  mode_ = resolve_progress_mode(config_.progress_mode);
  if (mode_ == ProgressMode::kThreaded) {
    const std::size_t threads = config_.progress_threads != 0
                                    ? config_.progress_threads
                                    : config_.links.size();
    session_a_->start_threaded(w->progress_mutex(), &w->engine(), threads,
                               nullptr, nullptr, config_.submit_ring_capacity,
                               config_.completion_ring_capacity);
    session_b_->start_threaded(w->progress_mutex(), &w->engine(), threads,
                               nullptr, nullptr, config_.submit_ring_capacity,
                               config_.completion_ring_capacity);
  }
}

TwoNodePlatform::~TwoNodePlatform() {
  // Engine events cross sessions, so every progress thread must stop
  // before either session's scheduler is destroyed.
  session_a_->stop_threaded();
  session_b_->stop_threaded();
}

PlatformConfig paper_platform(std::string strategy, strat::StrategyConfig cfg) {
  PlatformConfig config;
  config.links = {netmodel::myri10g(), netmodel::quadrics_qm500()};
  config.strategy = std::move(strategy);
  config.strat_cfg = cfg;
  return config;
}

// --- MultiNodePlatform ------------------------------------------------------

MultiNodePlatform::MultiNodePlatform(MultiNodeConfig config)
    : config_(std::move(config)), world_(std::make_unique<drv::SimWorld>()) {
  NMAD_ASSERT(config_.nodes >= 2, "multi-node platform needs >= 2 nodes");
  if (config_.links.empty()) {
    config_.links = {netmodel::myri10g(), netmodel::quadrics_qm500()};
  }
  const std::size_t n = config_.nodes;
  NMAD_ASSERT(config_.hosts.empty() || config_.hosts.size() == n,
              "hosts must be empty or one label per node");
  mode_ = resolve_progress_mode(config_.progress_mode);
  chaos_next_seed_ = config_.chaos_seed;

  node_ids_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    node_ids_.push_back(world_->add_node(config_.host));
  }

  // Edge set: the historical full mesh, or — when config.edges names the
  // pairs a workload actually uses — only those, so large worlds stay
  // cheap (a 16-rank pattern point builds its handful of links, not 120).
  // A lazy world establishes only the named edges now; everything else is
  // created on first use (ensure_gate).
  std::vector<std::pair<std::size_t, std::size_t>> edges = config_.edges;
  if (!edges.empty()) {
    for (auto& [i, j] : edges) {
      NMAD_ASSERT(i < n && j < n, "sparse-mesh edge endpoint out of range");
      NMAD_ASSERT(i != j, "sparse-mesh edge is a self-loop");
      if (i > j) std::swap(i, j);
    }
    std::sort(edges.begin(), edges.end());
    NMAD_ASSERT(std::adjacent_find(edges.begin(), edges.end()) == edges.end(),
                "duplicate sparse-mesh edge");
  } else if (!config_.lazy) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) edges.emplace_back(i, j);
    }
  }

  endpoint_.assign(n, std::vector<std::vector<drv::Driver*>>(n));
  sim_endpoint_.assign(n, std::vector<std::vector<drv::SimDriver*>>(n));
  sessions_.resize(n);
  gate_.assign(n, std::vector<GateId>(n, kNoGate));

  if (!config_.lazy) {
    // Eager worlds create every session up front, exactly as before.
    for (std::size_t i = 0; i < n; ++i) (void)ensure_session(i);
  }
  for (const auto& [i, j] : edges) establish_edge(i, j, /*lazily=*/false);
}

Session& MultiNodePlatform::ensure_session(std::size_t i) {
  NMAD_ASSERT(i < sessions_.size(), "node index out of range");
  if (sessions_[i] != nullptr) return *sessions_[i];
  drv::SimWorld* w = world_.get();
  auto clock = [w] { return w->now(); };
  auto defer = [w](std::function<void()> fn) {
    w->engine().schedule(0, std::move(fn));
  };
  auto timer = [w](sim::TimeNs delay, std::function<void()> fn) {
    w->engine().schedule(delay, std::move(fn));
  };
  // Serial progress: the chaos-aware drive loop. Session::wait's deadlock
  // assertion fires if this returns with the predicate unmet.
  auto progress = [this](const std::function<bool()>& pred) {
    (void)run_until(pred);
  };
  sessions_[i] = std::make_unique<Session>("n" + std::to_string(i), clock,
                                           defer, progress, timer);
  if (mode_ == ProgressMode::kThreaded) {
    const std::size_t threads = config_.progress_threads != 0
                                    ? config_.progress_threads
                                    : config_.links.size();
    // The idle hook releases chaos-held frames from a progress thread
    // (under the world mutex) whenever the engine drains, so a run can
    // never stall below the scrambling window. wrappers_ only mutates
    // under the same mutex (establish_edge), so the iteration is safe.
    std::function<void()> idle;
    if (config_.chaos) {
      idle = [this] {
        for (auto& wr : wrappers_) wr->flush();
      };
    }
    sessions_[i]->start_threaded(w->progress_mutex(), &w->engine(), threads,
                                 idle, nullptr, config_.submit_ring_capacity,
                                 config_.completion_ring_capacity);
  }
  return *sessions_[i];
}

void MultiNodePlatform::establish_edge(std::size_t i, std::size_t j,
                                       bool lazily) {
  NMAD_ASSERT(i != j && i < config_.nodes && j < config_.nodes,
              "bad edge endpoints");
  if (i > j) std::swap(i, j);
  NMAD_ASSERT(gate_[i][j] == kNoGate, "edge already established");

  Session& si = ensure_session(i);
  Session& sj = ensure_session(j);

  // In threaded mode the progress threads are already stepping the world;
  // every scheduler/engine mutation below must happen under the world
  // progress mutex. Gate storage is pointer-stable (the scheduler holds
  // unique_ptrs), so in-flight requests on other gates are unaffected.
  std::unique_lock<std::mutex> guard;
  if (mode_ == ProgressMode::kThreaded) {
    guard = std::unique_lock<std::mutex>(world_->progress_mutex());
  }

  auto wrap = [&](drv::SimDriver* ep) -> drv::Driver* {
    if (!config_.chaos) return ep;
    wrappers_.push_back(std::make_unique<drv::ChaosDriver>(
        *ep, chaos_next_seed_++, *config_.chaos));
    return wrappers_.back().get();
  };
  // Same-host edges ride the (fast) intra-host rail set when one is
  // configured — the locality asymmetry hierarchical collectives exploit.
  const bool intra =
      !config_.intra_host_links.empty() && host_of(i) == host_of(j);
  const auto& nics = intra ? config_.intra_host_links : config_.links;
  for (const auto& nic : nics) {
    auto [ei, ej] = world_->add_link(node_ids_[i], node_ids_[j], nic);
    endpoint_[i][j].push_back(wrap(ei));
    endpoint_[j][i].push_back(wrap(ej));
    sim_endpoint_[i][j].push_back(ei);
    sim_endpoint_[j][i].push_back(ej);
  }
  gate_[i][j] = si.connect(endpoint_[i][j], config_.strategy, config_.strat_cfg);
  gate_[j][i] = sj.connect(endpoint_[j][i], config_.strategy, config_.strat_cfg);

  ++established_edges_;
  sessions_established_.inc();
  if (lazily) {
    ++lazy_edges_;
    sessions_lazy_created_.inc();
  }
}

Session& MultiNodePlatform::session(std::size_t i) {
  NMAD_ASSERT(config_.lazy || sessions_[i] != nullptr,
              "session missing from an eager world");
  return ensure_session(i);
}

GateId MultiNodePlatform::ensure_gate(std::size_t i, std::size_t j) {
  NMAD_ASSERT(i != j && i < config_.nodes && j < config_.nodes,
              "bad edge endpoints");
  if (gate_[i][j] == kNoGate) {
    NMAD_ASSERT(config_.lazy, "edge not in the mesh (non-lazy world)");
    establish_edge(i, j, /*lazily=*/true);
  }
  return gate_[i][j];
}

MultiNodePlatform::~MultiNodePlatform() {
  // Engine events cross sessions: every progress thread must stop before
  // any session's scheduler is destroyed.
  for (auto& s : sessions_) {
    if (s) s->stop_threaded();
  }
  // Drain the chaos buffers while the sessions (the deliver upcall
  // targets) are still alive; the wrappers' own destructor flush must
  // find nothing left.
  for (auto& wr : wrappers_) wr->flush();
}

bool MultiNodePlatform::run_until(const std::function<bool()>& pred) {
  NMAD_ASSERT(mode_ == ProgressMode::kSerial,
              "run_until drives the engine from the app thread (serial only)");
  for (int round = 0; round < 1000; ++round) {
    if (world_->engine().run_until(pred)) return true;
    // Engine drained with the predicate unmet: frames may be parked below
    // the chaos scrambling window. Release them and retry; if nothing was
    // held and the engine is idle, the pattern is genuinely stuck.
    if (!flush_chaos() && world_->engine().idle()) return false;
  }
  return false;
}

bool MultiNodePlatform::flush_chaos() {
  bool any = false;
  for (auto& wr : wrappers_) {
    any |= wr->buffered() > 0;
    wr->flush();
  }
  return any;
}

drv::ChaosDriver& MultiNodePlatform::chaos_endpoint(std::size_t node,
                                                    std::size_t peer,
                                                    std::size_t link) {
  NMAD_ASSERT(config_.chaos.has_value(), "platform built without chaos");
  NMAD_ASSERT(link < endpoint_[node][peer].size(), "edge not in the mesh");
  // With chaos configured every endpoint was constructed as a wrapper.
  return *static_cast<drv::ChaosDriver*>(endpoint_[node][peer][link]);
}

drv::SimDriver& MultiNodePlatform::sim_endpoint(std::size_t node,
                                                std::size_t peer,
                                                std::size_t link) {
  NMAD_ASSERT(link < sim_endpoint_[node][peer].size(), "edge not in the mesh");
  return *sim_endpoint_[node][peer][link];
}

void MultiNodePlatform::kill_link(std::size_t i, std::size_t j, std::size_t link) {
  chaos_endpoint(i, j, link).kill();
  chaos_endpoint(j, i, link).kill();
}

void MultiNodePlatform::register_metrics(obs::MetricsRegistry& registry) {
  registry.add("platform.sessions_established", &sessions_established_);
  registry.add("platform.sessions_lazy_created", &sessions_lazy_created_);
  for (std::size_t i = 0; i < sessions_.size(); ++i) {
    if (sessions_[i] == nullptr) continue;  // lazy world: never touched
    sessions_[i]->register_metrics(registry, "n" + std::to_string(i) + ".");
  }
}

}  // namespace nmad::core
