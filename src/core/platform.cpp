#include "core/platform.hpp"

#include <utility>

#include "drv/sim_driver.hpp"
#include "sampling/ratio_table.hpp"
#include "sampling/sampler.hpp"
#include "util/panic.hpp"

namespace nmad::core {

TwoNodePlatform::TwoNodePlatform(PlatformConfig config)
    : config_(std::move(config)), world_(std::make_unique<drv::SimWorld>()) {
  NMAD_ASSERT(!config_.links.empty(), "platform needs at least one link");

  const drv::NodeId na = world_->add_node(config_.host_a);
  const drv::NodeId nb = world_->add_node(config_.host_b);
  for (const auto& nic : config_.links) {
    auto [ea, eb] = world_->add_link(na, nb, nic);
    rails_a_.push_back(ea);
    rails_b_.push_back(eb);
  }

  drv::SimWorld* w = world_.get();
  auto clock = [w] { return w->now(); };
  auto defer = [w](std::function<void()> fn) {
    w->engine().schedule(0, std::move(fn));
  };
  auto progress = [w](const std::function<bool()>& pred) {
    w->engine().run_until(pred);
  };
  auto timer = [w](sim::TimeNs delay, std::function<void()> fn) {
    w->engine().schedule(delay, std::move(fn));
  };
  session_a_ = std::make_unique<Session>("A", clock, defer, progress, timer);
  session_b_ = std::make_unique<Session>("B", clock, defer, progress, timer);

  gate_ab_ = session_a_->connect(
      std::vector<drv::Driver*>(rails_a_.begin(), rails_a_.end()),
      config_.strategy, config_.strat_cfg);
  gate_ba_ = session_b_->connect(
      std::vector<drv::Driver*>(rails_b_.begin(), rails_b_.end()),
      config_.strategy, config_.strat_cfg);

  if (config_.sampled_ratios) {
    std::vector<double> weights;
    bool from_cache = false;
    if (!config_.sampling_cache_path.empty()) {
      if (auto table = sampling::RatioTable::load(config_.sampling_cache_path);
          table && table->samples().size() == config_.links.size()) {
        weights = table->weights();
        from_cache = true;
      }
    }
    if (!from_cache) {
      const auto samples = sampling::sample_rails(config_.host_a, config_.host_b,
                                                  config_.links);
      sampling::RatioTable table(samples);
      weights = table.weights();
      if (!config_.sampling_cache_path.empty()) {
        // Best effort: an unwritable cache only costs re-measuring next run.
        (void)table.save(config_.sampling_cache_path);
      }
    }
    session_a_->scheduler().gate(gate_ab_).set_ratios(weights);
    session_b_->scheduler().gate(gate_ba_).set_ratios(weights);
  }

  mode_ = resolve_progress_mode(config_.progress_mode);
  if (mode_ == ProgressMode::kThreaded) {
    const std::size_t threads = config_.progress_threads != 0
                                    ? config_.progress_threads
                                    : config_.links.size();
    session_a_->start_threaded(w->progress_mutex(), &w->engine(), threads);
    session_b_->start_threaded(w->progress_mutex(), &w->engine(), threads);
  }
}

TwoNodePlatform::~TwoNodePlatform() {
  // Engine events cross sessions, so every progress thread must stop
  // before either session's scheduler is destroyed.
  session_a_->stop_threaded();
  session_b_->stop_threaded();
}

PlatformConfig paper_platform(std::string strategy, strat::StrategyConfig cfg) {
  PlatformConfig config;
  config.links = {netmodel::myri10g(), netmodel::quadrics_qm500()};
  config.strategy = std::move(strategy);
  config.strat_cfg = cfg;
  return config;
}

}  // namespace nmad::core
