// Threaded progression: dedicated progress threads drive the scheduler so
// the application thread never enters it (paper §2 — request processing is
// disconnected from the API calls; here even the *driving* of that
// processing leaves the application thread).
//
// Data flow in threaded mode (T app threads, one lane each):
//
//   app thread t (of T)             progress threads (one per rail)
//   -------------------             ------------------------------
//   Scheduler::make_send/recv       loop:
//     (no shared mutable state)       try_lock(world progress mutex)
//   lane[t].submission  -------->      drain all lanes, round-robin
//     SPSC try_push, lock-free         -> Scheduler::submit_send/recv
//   poll Request::done()               step sim engine (batch)
//     acquire load                     poll rail driver (real drivers)
//   lane[t].completion  <--------      route CompletionEvent to the
//     SPSC try_pop, lock-free            submitting thread's lane
//                                     idle hook (e.g. chaos flush)
//                                   backoff when no progress
//
// Each submitting application thread registers a ThreadLane on its first
// submit(): an SPSC submission ring it alone produces into, and an SPSC
// completion ring it alone consumes from. Producer-side submission is
// therefore wait-free across threads — T threads submit with zero shared
// cache lines — while the progression side stays single-consumer per ring
// (progress threads take turns under the world mutex, which provides the
// happens-before edge the SPSC contract needs). Completion events carry
// the submitting thread's lane (stamped on the request before it enters
// the ring) and are routed back to that lane's completion ring. The
// alternative — one combining MPMC ring — was rejected: every submit would
// CAS on one shared head, exactly the cache-line ping-pong this PR
// removes; see docs/ARCHITECTURE.md "Many-thread submission".
//
// Backpressure is bounded and lossless, never drop-on-full:
//  * submission ring full -> the submitting thread spins with escalating
//    backoff until the drain side catches up (counted in
//    submission_stalls()); the application is slowed to the drain rate.
//  * completion ring full -> the progress thread (which holds the world
//    mutex and must never block on the application) spins a BOUNDED number
//    of backoff rounds (counted in completion_stalls()), then spills the
//    event to the lane's mutex-protected overflow list (counted in
//    completion_overflows()). The ring-then-overflow order is preserved:
//    once a lane has overflowed, new events append to the overflow until
//    the consumer drains it, so pop_completion() still yields that lane's
//    events in settlement order.
//
// The scheduler, strategies and gates stay single-threaded code: every
// entry into them happens with the world progress mutex held (on a sim
// world that is SimWorld::progress_mutex() — one lock for the whole world
// because engine events cross sessions). The lock-free surface is exactly
// the application-side hot path: building requests, pushing submissions,
// polling completion flags and draining the per-thread completion ring.
//
// Mode selection: ProgressMode::kDefault resolves the NMAD_PROGRESS_MODE
// environment variable ("serial" | "threaded"); an explicit kSerial or
// kThreaded wins over the environment, which lets tests that depend on
// serial determinism (aggregation-window counts, virtual-time traces) pin
// themselves while the rest of the suite follows the environment.
//
// Shutdown order: every ProgressEngine sharing a sim engine must be
// stopped before ANY of their sessions is destroyed — engine events cross
// sessions, so a still-running thread of session B can fire an event into
// session A's scheduler. TwoNodePlatform handles this in its destructor.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/request.hpp"
#include "core/scheduler.hpp"
#include "core/spsc_ring.hpp"

namespace nmad::sim {
class Engine;
}  // namespace nmad::sim

namespace nmad::core {

enum class ProgressMode : std::uint8_t {
  kDefault,   ///< resolve NMAD_PROGRESS_MODE, fall back to serial
  kSerial,    ///< classic single-threaded progression (bit-reproducible)
  kThreaded,  ///< per-rail progress threads + per-thread submission lanes
};

/// NMAD_PROGRESS_MODE environment override: "threaded" | "serial" (anything
/// else, or unset, is kDefault).
[[nodiscard]] ProgressMode progress_mode_from_env();

/// kDefault -> environment -> kSerial; explicit modes pass through.
[[nodiscard]] ProgressMode resolve_progress_mode(ProgressMode requested);

[[nodiscard]] const char* to_string(ProgressMode mode);

/// Resolve a per-lane ring-capacity knob (NMAD_SUBMIT_RING_CAP /
/// NMAD_COMPLETION_RING_CAP): unset, zero or unparsable -> `fallback`.
/// Values are rounded up to powers of two by the ring itself.
[[nodiscard]] std::size_t ring_capacity_from_env(const char* var,
                                                 std::size_t fallback);

/// Hard cap on submitting application threads per engine — lanes live in a
/// fixed array so progress threads can index them without a lock. 64 app
/// threads per session is far beyond any supported deployment; exceeding
/// it panics loudly rather than serializing silently.
inline constexpr std::size_t kMaxSubmitLanes = 64;

class ProgressEngine {
 public:
  struct Config {
    std::size_t threads = 1;  ///< progress threads (one per rail)
    /// Per-lane ring capacities (rounded up to powers of two). Overridable
    /// via NMAD_SUBMIT_RING_CAP / NMAD_COMPLETION_RING_CAP when the caller
    /// leaves them at the defaults (see ring_capacity_from_env).
    std::size_t submission_capacity = 1024;
    std::size_t completion_capacity = 4096;
    /// Max engine events fired per lock acquisition — bounds how long one
    /// thread holds the world mutex before others get a turn.
    std::size_t engine_batch = 64;
    /// Max submissions popped per lane per drain round — bounds the world
    /// mutex hold time while keeping the round-robin fair across lanes.
    std::size_t drain_chunk = 256;
    /// Backoff rounds a progress thread spends waiting on a full completion
    /// ring before spilling to the lane's overflow list. Bounded because
    /// the producer holds the world mutex: an application thread that
    /// stopped draining its ring must cost the engine bounded time.
    std::size_t completion_spin_rounds = 64;
    /// Panic after this long with the engine idle, all submission rings
    /// empty and a wait() predicate still false (application deadlock —
    /// the serial mode equivalent is run_until() draining the queue).
    /// 0 disables the watchdog.
    std::uint64_t stall_timeout_ms = 5000;
  };

  struct Hooks {
    /// World progress mutex (required): serializes every scheduler entry
    /// and every engine step across all sessions of the world.
    std::mutex* lock = nullptr;
    /// Discrete-event engine stepped under the lock (sim worlds). May be
    /// null for real drivers, where `poll` does the work instead.
    sim::Engine* engine = nullptr;
    /// Poll rail `i`'s driver (under the lock); returns true on progress.
    /// Null over the simulator — delivery rides engine events there.
    std::function<bool(std::size_t)> poll;
    /// Called under the lock when a full round made no progress (e.g. the
    /// chaos harness flushes its buffered frames here).
    std::function<void()> idle;
  };

  /// Installs itself as `scheduler`'s completion hook and starts the
  /// progress threads. Gates may still be added afterwards (lazy session
  /// establishment) as long as the connect happens under the world
  /// progress mutex — gate storage is pointer-stable, so running threads
  /// never observe a torn gate table.
  ProgressEngine(Scheduler& scheduler, Config config, Hooks hooks);
  /// stop()s and uninstalls the completion hook.
  ~ProgressEngine();
  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;

  /// Join all progress threads (idempotent). After this the engine routes
  /// nothing; the owning Session falls back to serial entry points.
  void stop();

  // --- application-thread interface ---------------------------------------
  /// Enqueue a made request for submission on the calling thread's lane
  /// (registered on first use). Wait-free across threads on the fast path;
  /// spins with escalating backoff while the lane's ring is full —
  /// lossless backpressure, counted in submission_stalls().
  void submit(SendHandle h);
  void submit(RecvHandle h);

  /// Block until pred() holds, while progress threads do the work. Panics
  /// if the world goes fully quiet (engine idle, every lane drained) for
  /// longer than Config::stall_timeout_ms with pred still false.
  void wait(const std::function<bool()>& pred);

  /// Pause the progress threads for a burst of submissions: while the
  /// returned lock is held no thread can drain any lane or step the
  /// engine, so every request pushed lands in ONE strategy optimization
  /// window — the serial semantics, where the engine only runs inside
  /// wait(). The lock is the WORLD mutex: bursts taken on different
  /// sessions of the same world exclude each other (and all progress), so
  /// two app threads holding "different sessions' bursts" are really
  /// serialized on one lock — see Session::submission_burst(). Other
  /// threads may keep submitting on their own lanes while a burst is held
  /// (their pushes land in the same frozen window). Never wait() while
  /// holding it, and never push more requests per lane than the lane's
  /// ring capacity (the drain side is blocked).
  [[nodiscard]] std::unique_lock<std::mutex> pause() {
    return std::unique_lock<std::mutex>(*hooks_.lock);
  }

  /// Drain every lane's submission ring from the calling thread (takes the
  /// world lock): on return every request submit()ed — by ANY thread —
  /// before the call has reached the scheduler. Lets an application
  /// sequence cross-session submissions deterministically (e.g. guarantee
  /// receives are in the matching table before the peer's sends are
  /// released). Requests pushed concurrently with the call may or may not
  /// be included.
  void flush_submissions();

  /// Drain one settled-request event for a request submitted by THIS
  /// thread (observational — a delayed event never delays request
  /// completion; the request's done flag is the authoritative signal).
  /// FIFO in settlement order per lane. Events for requests submitted
  /// outside the engine (kNoSubmitLane) are delivered to any popping
  /// thread from a shared fallback queue.
  bool pop_completion(CompletionEvent& out);

  // --- backpressure / routing counters (ground truth, live even with
  // NMAD_METRICS=OFF — gates in tests and benches read these) -------------
  /// Submission pushes that found the lane ring full and had to spin.
  [[nodiscard]] std::uint64_t submission_stalls() const noexcept {
    return submission_stalls_.load(std::memory_order_relaxed);
  }
  /// Completion pushes that found the lane ring full and had to spin.
  [[nodiscard]] std::uint64_t completion_stalls() const noexcept {
    return completion_stalls_.load(std::memory_order_relaxed);
  }
  /// Completion events spilled to a lane overflow list after the bounded
  /// spin — still delivered, never dropped; nonzero means an application
  /// thread stopped draining its completion ring while traffic settled.
  [[nodiscard]] std::uint64_t completion_overflows() const noexcept {
    return completion_overflows_.load(std::memory_order_relaxed);
  }
  /// Total completion events delivered (ring + overflow + fallback).
  [[nodiscard]] std::uint64_t completions_enqueued() const noexcept {
    return completions_enqueued_.load(std::memory_order_relaxed);
  }
  /// Lanes registered so far (== distinct threads that submitted).
  [[nodiscard]] std::uint32_t lane_count() const noexcept {
    return lane_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  /// Register the engine's counters into `registry` under `prefix`
  /// (e.g. "a.progress."). Ground-truth atomics, so they register and
  /// report even when obs counters are compiled out.
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix);

 private:
  /// Exactly one handle set. Default-constructed (both null) marks a
  /// moved-from ring slot.
  struct SubmitOp {
    SendHandle send;
    RecvHandle recv;
  };

  /// One submitting application thread's private channel pair plus the
  /// lossless spill path for its completion ring.
  struct ThreadLane {
    ThreadLane(std::size_t sub_cap, std::size_t comp_cap)
        : submission(sub_cap), completion(comp_cap) {}
    SpscRing<SubmitOp> submission;
    SpscRing<CompletionEvent> completion;
    /// Order-preserving pressure relief: while non-empty, the producer
    /// appends here (never to the ring) and the consumer drains the ring
    /// first — so ring entries are always older than overflow entries.
    std::mutex overflow_mu;
    std::deque<CompletionEvent> overflow;
    std::atomic<bool> overflow_nonempty{false};
  };

  void thread_main(std::size_t rail);
  bool drain_submissions();  // under the lock
  void push_submission(ThreadLane& lane, SubmitOp op);
  /// Route a settled-request event to its submitter's lane (under the
  /// world lock — the serialization that makes progress threads a single
  /// logical SPSC producer per completion ring).
  void deliver_completion(const CompletionEvent& ev);
  /// The calling thread's lane slot, registering a new lane on first use.
  [[nodiscard]] std::uint32_t caller_slot();
  /// All lanes' submission rings empty (the wait() watchdog's quiet test).
  [[nodiscard]] bool submissions_idle() const;

  Scheduler& scheduler_;
  Config cfg_;
  Hooks hooks_;

  /// Engine identity for the thread-local lane cache (never reused, so a
  /// stale cache entry can never alias a new engine).
  const std::uint64_t engine_id_;
  /// Lane registry: the map (under lanes_mu_) is authoritative for
  /// thread -> slot; the fixed array + release-published count let progress
  /// threads iterate lanes without taking the mutex.
  mutable std::mutex lanes_mu_;
  std::unordered_map<std::uint64_t, std::uint32_t> slot_by_thread_;
  std::array<std::unique_ptr<ThreadLane>, kMaxSubmitLanes> lanes_;
  std::atomic<std::uint32_t> lane_count_{0};

  /// Events for requests with no lane stamp (submitted outside the
  /// engine, e.g. made before start_threaded): any popping thread may
  /// consume them.
  std::mutex fallback_mu_;
  std::deque<CompletionEvent> fallback_;
  std::atomic<bool> fallback_nonempty_{false};

  std::atomic<std::uint64_t> submission_stalls_{0};
  std::atomic<std::uint64_t> completion_stalls_{0};
  std::atomic<std::uint64_t> completion_overflows_{0};
  std::atomic<std::uint64_t> completions_enqueued_{0};
  /// Ops popped from a submission ring but not yet handed to the
  /// scheduler; keeps the wait() watchdog from sampling a mid-drain
  /// instant as global quiescence.
  std::atomic<std::uint64_t> inflight_submissions_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace nmad::core
