// Threaded progression: dedicated progress threads drive the scheduler so
// the application thread never enters it (paper §2 — request processing is
// disconnected from the API calls; here even the *driving* of that
// processing leaves the application thread).
//
// Data flow in threaded mode:
//
//   app thread                      progress threads (one per rail)
//   ----------                      ------------------------------
//   Scheduler::make_send/recv       loop:
//     (no shared mutable state)       try_lock(world progress mutex)
//   SpscRing submission  ------->      drain submission ring
//     try_push, lock-free              -> Scheduler::submit_send/recv
//   poll Request::done()               step sim engine (batch)
//     acquire load                     poll rail driver (real drivers)
//   SpscRing completion  <-------      idle hook (e.g. chaos flush)
//     try_pop, lock-free             backoff when no progress
//
// The scheduler, strategies and gates stay single-threaded code: every
// entry into them happens with the world progress mutex held (on a sim
// world that is SimWorld::progress_mutex() — one lock for the whole world
// because engine events cross sessions). The lock-free surface is exactly
// the application-side hot path: building requests, pushing submissions,
// polling completion flags and draining the completion ring.
//
// Mode selection: ProgressMode::kDefault resolves the NMAD_PROGRESS_MODE
// environment variable ("serial" | "threaded"); an explicit kSerial or
// kThreaded wins over the environment, which lets tests that depend on
// serial determinism (aggregation-window counts, virtual-time traces) pin
// themselves while the rest of the suite follows the environment.
//
// Shutdown order: every ProgressEngine sharing a sim engine must be
// stopped before ANY of their sessions is destroyed — engine events cross
// sessions, so a still-running thread of session B can fire an event into
// session A's scheduler. TwoNodePlatform handles this in its destructor.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "core/request.hpp"
#include "core/scheduler.hpp"
#include "core/spsc_ring.hpp"

namespace nmad::sim {
class Engine;
}  // namespace nmad::sim

namespace nmad::core {

enum class ProgressMode : std::uint8_t {
  kDefault,   ///< resolve NMAD_PROGRESS_MODE, fall back to serial
  kSerial,    ///< classic single-threaded progression (bit-reproducible)
  kThreaded,  ///< per-rail progress threads + lock-free submission rings
};

/// NMAD_PROGRESS_MODE environment override: "threaded" | "serial" (anything
/// else, or unset, is kDefault).
[[nodiscard]] ProgressMode progress_mode_from_env();

/// kDefault -> environment -> kSerial; explicit modes pass through.
[[nodiscard]] ProgressMode resolve_progress_mode(ProgressMode requested);

[[nodiscard]] const char* to_string(ProgressMode mode);

class ProgressEngine {
 public:
  struct Config {
    std::size_t threads = 1;  ///< progress threads (one per rail)
    std::size_t submission_capacity = 1024;
    std::size_t completion_capacity = 4096;
    /// Max engine events fired per lock acquisition — bounds how long one
    /// thread holds the world mutex before others get a turn.
    std::size_t engine_batch = 64;
    /// Panic after this long with the engine idle, the submission ring
    /// empty and a wait() predicate still false (application deadlock —
    /// the serial mode equivalent is run_until() draining the queue).
    /// 0 disables the watchdog.
    std::uint64_t stall_timeout_ms = 5000;
  };

  struct Hooks {
    /// World progress mutex (required): serializes every scheduler entry
    /// and every engine step across all sessions of the world.
    std::mutex* lock = nullptr;
    /// Discrete-event engine stepped under the lock (sim worlds). May be
    /// null for real drivers, where `poll` does the work instead.
    sim::Engine* engine = nullptr;
    /// Poll rail `i`'s driver (under the lock); returns true on progress.
    /// Null over the simulator — delivery rides engine events there.
    std::function<bool(std::size_t)> poll;
    /// Called under the lock when a full round made no progress (e.g. the
    /// chaos harness flushes its buffered frames here).
    std::function<void()> idle;
  };

  /// Installs itself as `scheduler`'s completion hook and starts the
  /// progress threads. The scheduler's gates must all exist already.
  ProgressEngine(Scheduler& scheduler, Config config, Hooks hooks);
  /// stop()s and uninstalls the completion hook.
  ~ProgressEngine();
  ProgressEngine(const ProgressEngine&) = delete;
  ProgressEngine& operator=(const ProgressEngine&) = delete;

  /// Join all progress threads (idempotent). After this the engine routes
  /// nothing; the owning Session falls back to serial entry points.
  void stop();

  // --- application-thread interface ---------------------------------------
  /// Enqueue a made request for submission. Spins (yielding) while the
  /// ring is full — backpressure, counted in submission_backpressure().
  void submit(SendHandle h);
  void submit(RecvHandle h);

  /// Block until pred() holds, while progress threads do the work. Panics
  /// if the world goes fully quiet (engine idle, ring empty) for longer
  /// than Config::stall_timeout_ms with pred still false.
  void wait(const std::function<bool()>& pred);

  /// Pause the progress threads for a burst of submissions: while the
  /// returned lock is held no thread can drain the ring or step the
  /// engine, so every request pushed lands in ONE strategy optimization
  /// window — the serial semantics, where the engine only runs inside
  /// wait(). Never wait() while holding it, and never push more requests
  /// than the ring capacity (the drain side is blocked).
  [[nodiscard]] std::unique_lock<std::mutex> pause() {
    return std::unique_lock<std::mutex>(*hooks_.lock);
  }

  /// Drain the submission ring from the calling thread (takes the world
  /// lock): on return every request submit()ed before the call has reached
  /// the scheduler. Lets an application sequence cross-session submissions
  /// deterministically (e.g. guarantee receives are in the matching table
  /// before the peer's sends are released).
  void flush_submissions() {
    std::lock_guard<std::mutex> lock(*hooks_.lock);
    drain_submissions();
  }

  /// Drain one settled-request event (observational — a dropped event
  /// never delays request completion; the request's done flag is the
  /// authoritative signal). FIFO in settlement order.
  bool pop_completion(CompletionEvent& out) { return completion_.try_pop(out); }

  [[nodiscard]] std::uint64_t completions_dropped() const noexcept {
    return completions_dropped_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t submission_backpressure() const noexcept {
    return submission_backpressure_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t thread_count() const noexcept {
    return threads_.size();
  }

 private:
  /// Exactly one handle set. Default-constructed (both null) marks a
  /// moved-from ring slot.
  struct SubmitOp {
    SendHandle send;
    RecvHandle recv;
  };

  void thread_main(std::size_t rail);
  bool drain_submissions();  // under the lock
  void push_submission(SubmitOp op);

  Scheduler& scheduler_;
  Config cfg_;
  Hooks hooks_;
  SpscRing<SubmitOp> submission_;
  SpscRing<CompletionEvent> completion_;
  std::atomic<std::uint64_t> completions_dropped_{0};
  std::atomic<std::uint64_t> submission_backpressure_{0};
  std::atomic<bool> stop_{false};
  std::vector<std::thread> threads_;
};

}  // namespace nmad::core
