// Gate: the communication endpoint towards one peer node, bundling every
// rail (NIC link) that reaches that peer, plus the per-peer scheduling
// state. The paper's optimization strategies apply "to the whole
// communication flow between pairs of machines" — the gate is that pair's
// flow, and each gate owns its own strategy instance.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "core/rail_guard.hpp"
#include "core/request.hpp"
#include "core/types.hpp"
#include "drv/driver.hpp"
#include "obs/metrics.hpp"
#include "proto/pool.hpp"
#include "proto/reassembly.hpp"
#include "strat/rate_estimator.hpp"
#include "strat/strategy.hpp"

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::core {

/// One rail of a gate: a driver endpoint plus per-rail accounting.
class Rail {
 public:
  Rail(drv::Driver& driver, RailIndex index) : driver_(&driver), index_(index) {}

  [[nodiscard]] drv::Driver& driver() noexcept { return *driver_; }
  [[nodiscard]] const drv::Capabilities& caps() const noexcept {
    return driver_->caps();
  }
  [[nodiscard]] RailIndex index() const noexcept { return index_; }
  [[nodiscard]] bool idle(drv::Track track) const noexcept {
    return driver_->send_idle(track);
  }
  /// Rail health (see core/reliability.hpp). Dead rails are quiesced; only
  /// healthy ones take new traffic from the pump.
  [[nodiscard]] bool alive() const noexcept { return guard.alive(); }
  [[nodiscard]] bool healthy() const noexcept { return guard.healthy(); }

  /// Per-rail reliability layer (sealing, ack/retransmit, health state).
  /// Initialized by the scheduler in add_gate.
  RailGuard guard;

  /// Transmit accounting, per track (indexed by drv::Track).
  struct TxStats {
    std::uint64_t packets[drv::kTrackCount] = {0, 0};
    std::uint64_t payload_bytes[drv::kTrackCount] = {0, 0};
    /// Data segments carried (aggregated packets carry several).
    std::uint64_t segments = 0;
    /// Control packets (rendezvous REQ/ACK) sent on this rail.
    std::uint64_t control_packets = 0;
  };
  TxStats tx;

  /// Rail-level event counters (obs layer; compile out with NMAD_METRICS=OFF).
  /// Maintained by the scheduler on every packet it posts to this rail.
  struct Metrics {
    /// Every packet posted (data + control, both tracks).
    obs::Counter packets_sent;
    /// Wire bytes posted (encoded packets, headers included).
    obs::Counter bytes_sent;
    /// Data payload bytes per track.
    obs::Counter small_payload_bytes;
    obs::Counter large_payload_bytes;
    /// Posts on the eager track (Programmed I/O path, incl. control).
    obs::Counter pio_transfers;
    /// Posts on the large track (rendezvous/DMA path).
    obs::Counter rdv_transfers;
    /// Rendezvous REQ/ACK control packets.
    obs::Counter control_packets;
    /// Data segments carried (an aggregated packet carries several).
    obs::Counter segments_sent;
    /// Eager data packets that coalesced >= 2 backlog segments / exactly 1.
    obs::Counter aggregation_hits;
    obs::Counter aggregation_misses;
    /// Posts that found the whole NIC idle (idle -> busy transitions).
    obs::Counter nic_wakeups;
    /// Payload bytes memcpy'd while building the posted packets. Only the
    /// aggregation staging copy is charged (paper §3.1); the zero-copy
    /// paths (single-segment eager, DMA chunks, control) contribute zero.
    obs::Counter bytes_copied;
    /// Heap allocations on the packet-build hot path (pool misses + span
    /// list spills); ~zero in steady state once the pools are warm.
    obs::Counter allocs_hot_path;
    /// Wire size of every posted packet.
    obs::Histogram packet_size;

    void register_into(obs::MetricsRegistry& registry,
                       const std::string& prefix) const;
  };
  Metrics metrics;

 private:
  drv::Driver* driver_;
  RailIndex index_;
};

class Scheduler;

class Gate {
 public:
  Gate(GateId id, std::vector<drv::Driver*> drivers,
       std::unique_ptr<strat::Strategy> strategy, strat::StrategyConfig config);

  [[nodiscard]] GateId id() const noexcept { return id_; }
  [[nodiscard]] std::span<Rail> rails() noexcept { return rails_; }
  [[nodiscard]] std::size_t rail_count() const noexcept { return rails_.size(); }
  [[nodiscard]] Rail& rail(RailIndex i);

  [[nodiscard]] strat::Strategy& strategy() noexcept { return *strategy_; }
  [[nodiscard]] const strat::StrategyConfig& config() const noexcept { return config_; }

  /// Largest segment that may travel on the eager track of *any* rail
  /// (payload bytes); larger segments use the rendezvous path.
  [[nodiscard]] std::uint32_t small_threshold() const noexcept { return small_threshold_; }

  /// Rail with the lowest estimated latency (the paper's v2 strategy sends
  /// aggregated small messages there — Quadrics on the paper's platform).
  [[nodiscard]] RailIndex fastest_rail() const noexcept { return fastest_rail_; }

  /// Re-pick fastest_rail() among the rails still alive (after a death).
  void recompute_fastest();

  /// True while every rail is down and the gate fails submissions fast.
  /// Set when the last rail dies (pending requests are failed then);
  /// cleared when a rail completes a reconnect handshake.
  [[nodiscard]] bool failed() const noexcept { return failed_; }

  // --- packet buffer arenas -------------------------------------------------
  /// Pool of header blocks (packet header + seg headers; also whole
  /// control packets). Blocks recycle when the driver finishes the send.
  [[nodiscard]] proto::BufferPool& header_pool() noexcept { return header_pool_; }
  /// Pool of aggregation staging buffers (the paper's contiguous copy
  /// area); sized to the strategy's aggregation limit.
  [[nodiscard]] proto::BufferPool& staging_pool() noexcept { return staging_pool_; }

  // --- split ratios ---------------------------------------------------------
  /// Install per-rail bulk-bandwidth weights (from boot-time sampling).
  /// Weights are normalized internally; they need not sum to 1. Under
  /// adaptive striping these become the *prior* the live estimates blend
  /// against, not the final word.
  void set_ratios(std::vector<double> weights);
  /// Normalized weight of rail `i` (defaults to driver capability
  /// bandwidths when sampling has not run; re-derived online when
  /// config().adaptive.enabled).
  [[nodiscard]] double ratio(RailIndex i) const;
  [[nodiscard]] const std::vector<double>& ratios() const noexcept { return ratios_; }

  // --- adaptive striping ----------------------------------------------------
  /// Live per-rail rate estimates (strat/rate_estimator.hpp). Always fed;
  /// only consulted for ratios when config().adaptive.enabled.
  [[nodiscard]] strat::RateEstimator& estimator() noexcept { return estimator_; }
  /// Re-derive split ratios (and the pump's rail order) from the live
  /// estimates if the optimization window elapsed. Called from the
  /// scheduler's pump under the progress lock; no-op unless adaptive
  /// striping is enabled.
  void maybe_refresh_ratios(sim::TimeNs now);
  /// Rails in pump-offer order: descending effective rate under adaptive
  /// striping (greedy strategies drain the fast rails first), index order
  /// otherwise.
  [[nodiscard]] const std::vector<RailIndex>& rail_order() const noexcept {
    return rail_order_;
  }

  /// Adaptive ratio-refresh outcomes (obs layer).
  struct AdaptiveMetrics {
    obs::Counter ratio_updates;  ///< re-derived ratios installed
    obs::Counter ratio_holds;    ///< re-derivations skipped by hysteresis
    void register_into(obs::MetricsRegistry& registry,
                       const std::string& prefix) const;
  };
  AdaptiveMetrics adaptive_metrics;

 private:
  friend class Scheduler;

  /// Receive-side state of one in-flight incoming message.
  struct Incoming {
    std::uint32_t total_len = 0;
    bool total_known = false;
    bool rdv_seen = false;
    bool rdv_acked = false;
    bool data_complete = false;
    RecvRequest* recv = nullptr;
    /// Unexpected-message storage (assembly writes here until a receive is
    /// posted, then rebinds into the user buffer).
    std::vector<std::byte> temp;
    std::unique_ptr<proto::MessageAssembly> assembly;
  };

  GateId id_;
  std::vector<Rail> rails_;
  std::unique_ptr<strat::Strategy> strategy_;
  strat::StrategyConfig config_;
  proto::BufferPool header_pool_;
  proto::BufferPool staging_pool_;
  std::uint32_t small_threshold_ = 0;
  RailIndex fastest_rail_ = 0;
  std::vector<double> ratios_;
  /// Boot-time prior: the last set_ratios() weights, normalized, plus the
  /// same vector scaled to MB/s currency for blending with live estimates.
  std::vector<double> prior_ratios_;
  std::vector<double> prior_mbps_;
  std::vector<RailIndex> rail_order_;
  strat::RateEstimator estimator_;
  sim::TimeNs last_ratio_refresh_ = 0;

  // Send side.
  std::map<Tag, MsgSeq> next_send_seq_;
  // Receive side.
  std::map<Tag, MsgSeq> next_recv_seq_;
  std::map<MsgKey, Incoming> incoming_;
  // Rendezvous control packets awaiting an idle eager track.
  std::deque<drv::SendDesc> control_;
  // Un-acked frames surrendered by dead rails, awaiting repost on a
  // survivor (drained by the pump ahead of new strategy work).
  std::deque<RailGuard::PendingFrame> resend_;
  // Every rail died: requests failed, no further traffic.
  bool failed_ = false;
  // Pump re-entrancy guard.
  bool pumping_ = false;
  bool repump_ = false;
  // A deferred pump is already queued for this gate.
  bool pump_scheduled_ = false;
};

}  // namespace nmad::core
