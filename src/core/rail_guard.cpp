#include "core/rail_guard.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/registry.hpp"
#include "proto/wire.hpp"
#include "strat/rate_estimator.hpp"
#include "util/log.hpp"
#include "util/panic.hpp"

namespace nmad::core {

void RailGuardMetrics::register_into(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  registry.add(prefix + "retransmits", &retransmits);
  registry.add(prefix + "timeouts", &timeouts);
  registry.add(prefix + "acks_sent", &acks_sent);
  registry.add(prefix + "acks_received", &acks_received);
  registry.add(prefix + "dup_frames", &dup_frames);
  registry.add(prefix + "crc_drops", &crc_drops);
  registry.add(prefix + "malformed_drops", &malformed_drops);
  registry.add(prefix + "state_transitions", &state_transitions);
  registry.add(prefix + "requeued_packets", &requeued_packets);
  registry.add(prefix + "requeued_bytes", &requeued_bytes);
  registry.add(prefix + "state", &state);
}

void RailGuard::init(drv::Driver& driver, RailIndex index,
                     ReliabilityConfig cfg, Hooks hooks) {
  NMAD_ASSERT(driver_ == nullptr, "RailGuard initialized twice");
  driver_ = &driver;
  index_ = index;
  cfg_ = cfg;
  hooks_ = std::move(hooks);
  jitter_ = util::Xoshiro256(cfg_.jitter_seed + index);
  NMAD_ASSERT(hooks_.now && hooks_.credit && hooks_.deliver && hooks_.kick,
              "RailGuard hooks incomplete");
  NMAD_ASSERT(!cfg_.ack_enabled || hooks_.timer != nullptr,
              "ack/retransmit requires a timer hook");
  metrics.state.set(static_cast<std::int64_t>(state()));
}

// --------------------------------------------------------------------------
// Transmit path
// --------------------------------------------------------------------------

void RailGuard::seal(drv::SendDesc& desc, std::uint8_t flags,
                     std::uint32_t seq) {
  proto::FrameEnvelope env;
  env.flags = flags;
  env.seq = seq;
  // Every outgoing frame piggybacks our cumulative receive state; the
  // fields double as the standalone-ack payload.
  env.ack_small = rx_[0].contiguous;
  env.ack_large = rx_[1].contiguous;
  proto::seal_frame_envelope(desc.envelope, env, desc.view.head(),
                             desc.view.payload_spans());
  rx_[0].last_acked = env.ack_small;
  rx_[1].last_acked = env.ack_large;
  rx_[static_cast<std::size_t>(desc.track)].force_ack = false;
}

drv::SendDesc RailGuard::make_alias(const TxEntry& entry) const {
  drv::SendDesc alias(entry.desc.track, entry.desc.view.alias(),
                      entry.desc.extra_cpu_us);
  alias.envelope = entry.desc.envelope;
  return alias;
}

void RailGuard::post(drv::SendDesc desc, std::vector<strat::Contribution> contribs) {
  NMAD_ASSERT(driver_ != nullptr, "RailGuard used before init");
  NMAD_ASSERT(state() != RailState::kDead, "post on dead rail");
  const auto track_idx = static_cast<std::size_t>(desc.track);
  const std::uint32_t seq = ++next_seq_[track_idx];
  seal(desc, 0, seq);

  if (!cfg_.ack_enabled) {
    // Legacy semantics: contributions credit on local send completion and
    // nothing is retained — the wire is trusted to be reliable. The local
    // DMA completion doubles as a delivered-bytes sample for the rate
    // estimator (PIO completions measure the host copy and are skipped).
    const sim::TimeNs t0 = hooks_.now();
    const std::uint64_t wire = desc.wire_size();
    const drv::Track tr = desc.track;
    driver_->post_send(
        std::move(desc), [this, t0, wire, tr, contribs = std::move(contribs)] {
          if (estimator_ != nullptr && tr == drv::Track::kLarge) {
            const sim::TimeNs t1 = hooks_.now();
            estimator_->note_transfer(index_, wire, t1 - t0, t1);
          }
          hooks_.credit(contribs);
          hooks_.kick();
        });
    return;
  }

  TxEntry entry;
  entry.seq = seq;
  entry.track = desc.track;
  entry.desc = std::move(desc);
  entry.contribs = std::move(contribs);
  entry.posted_at = hooks_.now();
  entry.deadline = entry.posted_at + next_rto(0);
  entry.in_flight = true;
  tx_.push_back(std::move(entry));

  const drv::Track track = tx_.back().track;
  driver_->post_send(make_alias(tx_.back()), [this, seq, track] {
    for (auto it = tx_.begin(); it != tx_.end(); ++it) {
      if (it->seq != seq || it->track != track) continue;
      it->in_flight = false;
      it->locally_done = true;
      if (estimator_ != nullptr && track == drv::Track::kLarge &&
          it->retries == 0) {
        // First-transmission DMA completion: a clean bandwidth sample.
        const sim::TimeNs now = hooks_.now();
        estimator_->note_transfer(index_, it->desc.wire_size(),
                                  now - it->posted_at, now);
      }
      if (it->acked) {
        const auto done = std::move(it->contribs);
        tx_.erase(it);
        hooks_.credit(done);
      }
      break;
    }
    hooks_.kick();
  });
  arm_retransmit_timer();
}

sim::TimeNs RailGuard::next_rto(std::uint32_t retries) {
  double rto = static_cast<double>(cfg_.rto_ns) *
               std::pow(cfg_.rto_backoff, static_cast<double>(retries));
  rto = std::min(rto, static_cast<double>(cfg_.rto_max_ns));
  // +/- jitter/2 around the nominal deadline: parallel rails (and the two
  // peers of one rail) must not retransmit in lockstep.
  rto *= 1.0 + cfg_.rto_jitter * (jitter_.next_double() - 0.5);
  return static_cast<sim::TimeNs>(rto);
}

void RailGuard::arm_retransmit_timer() {
  if (!cfg_.ack_enabled || state() == RailState::kDead) return;
  sim::TimeNs earliest = 0;
  bool found = false;
  for (const TxEntry& e : tx_) {
    if (e.acked) continue;
    if (!found || e.deadline < earliest) {
      earliest = e.deadline;
      found = true;
    }
  }
  if (!found) return;
  if (rto_timer_armed_ && earliest >= rto_timer_deadline_) return;
  rto_timer_armed_ = true;
  rto_timer_deadline_ = earliest;
  const sim::TimeNs now = hooks_.now();
  const sim::TimeNs delay = earliest > now ? earliest - now : 0;
  hooks_.timer(delay, [this] { on_retransmit_timer(); });
}

void RailGuard::on_retransmit_timer() {
  rto_timer_armed_ = false;
  if (state() == RailState::kDead) return;
  handle_deadlines();
}

void RailGuard::handle_deadlines() {
  if (in_deadlines_) return;
  in_deadlines_ = true;
  const sim::TimeNs now = hooks_.now();
  // Index loop: a transition upcall inside the body can pump the gate and
  // push new retained frames (deque iterators would invalidate).
  for (std::size_t i = 0; i < tx_.size(); ++i) {
    if (tx_[i].acked || tx_[i].deadline > now) continue;
    metrics.timeouts.inc();
    if (estimator_ != nullptr) estimator_->note_timeout(index_, now);
    consecutive_timeouts_ += 1;
    tx_[i].retries += 1;
    if (tx_[i].retries > cfg_.max_retries) {
      in_deadlines_ = false;
      die("retransmit retries exhausted");
      return;
    }
    tx_[i].deadline = now + next_rto(tx_[i].retries);
    if (state() == RailState::kHealthy &&
        consecutive_timeouts_ >= cfg_.suspect_after) {
      transition(RailState::kSuspect);
    }
    // Retransmit if the track is free; a suspect rail's retransmissions
    // are its recovery probes. A busy (or killed) track just re-arms — the
    // retry is still charged, so a silent rail converges to dead.
    if (driver_->send_idle(tx_[i].track)) {
      metrics.retransmits.inc();
      drv::SendDesc alias = make_alias(tx_[i]);
      if (hooks_.note_post) hooks_.note_post(alias);
      tx_[i].in_flight = true;
      const std::uint32_t seq = tx_[i].seq;
      const drv::Track track = tx_[i].track;
      driver_->post_send(std::move(alias), [this, seq, track] {
        for (auto it = tx_.begin(); it != tx_.end(); ++it) {
          if (it->seq != seq || it->track != track) continue;
          it->in_flight = false;
          it->locally_done = true;
          if (it->acked) {
            const auto contribs = std::move(it->contribs);
            tx_.erase(it);
            hooks_.credit(contribs);
          }
          break;
        }
        hooks_.kick();
      });
    }
  }
  in_deadlines_ = false;
  arm_retransmit_timer();
}

bool RailGuard::flush() {
  if (state() == RailState::kDead || !cfg_.ack_enabled) return false;
  bool posted = false;
  // Due retransmissions first (they also re-arm the timer) ...
  const sim::TimeNs now = hooks_.now();
  bool any_due = false;
  for (const TxEntry& e : tx_) {
    if (!e.acked && e.deadline <= now) {
      any_due = true;
      break;
    }
  }
  if (any_due) {
    handle_deadlines();
    posted = true;
  }
  // ... then an owed standalone ack on an otherwise idle eager track.
  if (ack_due_ && owes_ack()) posted |= try_send_standalone_ack();
  return posted;
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void RailGuard::on_frame(drv::Track track, std::span<const std::byte> frame) {
  if (state() == RailState::kDead) return;  // quiesced: drop silently
  auto env = proto::decode_frame_envelope(frame);
  if (!env) {
    metrics.malformed_drops.inc();
    return;
  }
  if (!proto::verify_frame_checksum(frame)) {
    // Corrupt bytes are never trusted — and never acked, so the sender's
    // retransmission heals the loss.
    metrics.crc_drops.inc();
    return;
  }
  process_acks(*env);
  if ((env->flags & proto::kFrameAckOnly) != 0) return;

  if (env->seq != 0 && !rx_accept(track, env->seq)) {
    // Duplicate (retransmission whose original arrived, or injected dup):
    // suppress delivery but force a re-ack — the duplicate usually means
    // our previous ack was lost.
    metrics.dup_frames.inc();
    rx_[static_cast<std::size_t>(track)].force_ack = true;
    if (cfg_.ack_enabled) {
      ack_due_ = true;
      hooks_.kick();
    }
    return;
  }
  if (env->seq != 0) note_ack_needed();
  hooks_.deliver(track, frame.subspan(proto::kFrameEnvelopeBytes));
}

bool RailGuard::rx_accept(drv::Track track, std::uint32_t seq) {
  RxTrack& rx = rx_[static_cast<std::size_t>(track)];
  if (seq <= rx.contiguous || rx.beyond.count(seq) != 0) return false;
  if (seq == rx.contiguous + 1) {
    rx.contiguous = seq;
    auto it = rx.beyond.begin();
    while (it != rx.beyond.end() && *it == rx.contiguous + 1) {
      rx.contiguous = *it;
      it = rx.beyond.erase(it);
    }
  } else {
    rx.beyond.insert(seq);
  }
  return true;
}

void RailGuard::process_acks(const proto::FrameEnvelope& env) {
  bool advanced = false;
  advanced |= apply_ack(drv::Track::kSmall, env.ack_small);
  advanced |= apply_ack(drv::Track::kLarge, env.ack_large);
  if (!advanced) return;
  metrics.acks_received.inc();
  consecutive_timeouts_ = 0;
  if (state() == RailState::kSuspect) {
    // An acknowledged probe: the rail recovered.
    transition(RailState::kHealthy);
  }
}

bool RailGuard::apply_ack(drv::Track track, std::uint32_t upto) {
  bool advanced = false;
  for (auto it = tx_.begin(); it != tx_.end();) {
    if (it->track == track && !it->acked && it->seq <= upto) {
      advanced = true;
      it->acked = true;
      if (estimator_ != nullptr && it->retries == 0) {
        // Karn's rule: only never-retransmitted frames yield an RTT — a
        // retried frame's ack is ambiguous about which copy it answers.
        const sim::TimeNs now = hooks_.now();
        estimator_->note_rtt(index_, now - it->posted_at, now);
      }
      if (it->locally_done) {
        const auto contribs = std::move(it->contribs);
        it = tx_.erase(it);
        hooks_.credit(contribs);
        continue;
      }
    }
    ++it;
  }
  return advanced;
}

bool RailGuard::owes_ack() const noexcept {
  for (const RxTrack& rx : rx_) {
    if (rx.force_ack || rx.last_acked != rx.contiguous) return true;
  }
  return false;
}

void RailGuard::note_ack_needed() {
  if (!cfg_.ack_enabled || !owes_ack() || ack_timer_armed_) return;
  // Delay the standalone ack: outgoing data within the window piggybacks
  // the ack for free, which is the common case under load.
  ack_timer_armed_ = true;
  hooks_.timer(cfg_.ack_delay_ns, [this] {
    ack_timer_armed_ = false;
    if (state() == RailState::kDead || !owes_ack()) return;
    ack_due_ = true;
    if (!try_send_standalone_ack()) hooks_.kick();
  });
}

bool RailGuard::try_send_standalone_ack() {
  if (!driver_->send_idle(drv::Track::kSmall)) return false;
  drv::SendDesc desc;
  desc.track = drv::Track::kSmall;
  seal(desc, proto::kFrameAckOnly, 0);
  rx_[0].force_ack = false;
  rx_[1].force_ack = false;
  ack_due_ = false;
  metrics.acks_sent.inc();
  if (hooks_.note_post) hooks_.note_post(desc);
  driver_->post_send(std::move(desc), [this] { hooks_.kick(); });
  return true;
}

// --------------------------------------------------------------------------
// State machine
// --------------------------------------------------------------------------

void RailGuard::transition(RailState next) {
  if (state() == next) return;
  NMAD_ASSERT(state() != RailState::kDead, "no transitions out of dead");
  NMAD_LOG_INFO("rail", "rail%u: %s -> %s", index_, rail_state_name(state()),
                rail_state_name(next));
  state_.store(next, std::memory_order_relaxed);
  metrics.state_transitions.inc();
  metrics.state.set(static_cast<std::int64_t>(next));
  if (estimator_ != nullptr) estimator_->note_state(index_, next, hooks_.now());
  if (hooks_.on_state_change) hooks_.on_state_change(next);
}

void RailGuard::die(const char* reason) {
  if (state() == RailState::kDead) return;
  NMAD_LOG_WARN("rail", "rail%u declared dead: %s", index_, reason);
  transition(RailState::kDead);
}

void RailGuard::on_driver_error(const drv::RailError& err) {
  NMAD_LOG_WARN("rail", "rail%u driver error on %s track: %s (%s, errno=%d)",
                index_, drv::track_name(err.track), err.detail.c_str(),
                drv::rail_error_name(err.kind), err.sys_errno);
  die("driver reported a hard failure");
}

std::vector<RailGuard::PendingFrame> RailGuard::take_unacked() {
  NMAD_ASSERT(state() == RailState::kDead, "take_unacked on a live rail");
  std::vector<PendingFrame> out;
  out.reserve(tx_.size());
  for (TxEntry& e : tx_) {
    if (e.acked) {
      // The peer has the data; only local completion was pending (and the
      // driver will never report it now). Credit as sent.
      hooks_.credit(e.contribs);
      continue;
    }
    metrics.requeued_packets.inc();
    metrics.requeued_bytes.inc(e.desc.wire_size());
    out.push_back(PendingFrame{std::move(e.desc), std::move(e.contribs)});
  }
  tx_.clear();
  return out;
}

}  // namespace nmad::core
