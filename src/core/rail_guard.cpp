#include "core/rail_guard.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "obs/registry.hpp"
#include "proto/wire.hpp"
#include "strat/rate_estimator.hpp"
#include "util/log.hpp"
#include "util/panic.hpp"

namespace nmad::core {

void RailGuardMetrics::register_into(obs::MetricsRegistry& registry,
                                     const std::string& prefix) const {
  registry.add(prefix + "retransmits", &retransmits);
  registry.add(prefix + "timeouts", &timeouts);
  registry.add(prefix + "acks_sent", &acks_sent);
  registry.add(prefix + "acks_received", &acks_received);
  registry.add(prefix + "dup_frames", &dup_frames);
  registry.add(prefix + "crc_drops", &crc_drops);
  registry.add(prefix + "malformed_drops", &malformed_drops);
  registry.add(prefix + "state_transitions", &state_transitions);
  registry.add(prefix + "requeued_packets", &requeued_packets);
  registry.add(prefix + "requeued_bytes", &requeued_bytes);
  registry.add(prefix + "probes_sent", &probes_sent);
  registry.add(prefix + "stale_frames_dropped", &stale_frames_dropped);
  registry.add(prefix + "reconnects", &reconnects);
  registry.add(prefix + "state", &state);
  registry.add(prefix + "epoch", &epoch);
}

void RailGuard::init(drv::Driver& driver, RailIndex index,
                     ReliabilityConfig cfg, Hooks hooks) {
  NMAD_ASSERT(driver_ == nullptr, "RailGuard initialized twice");
  driver_ = &driver;
  index_ = index;
  cfg_ = cfg;
  hooks_ = std::move(hooks);
  jitter_ = util::Xoshiro256(cfg_.jitter_seed + index);
  NMAD_ASSERT(hooks_.now && hooks_.credit && hooks_.deliver && hooks_.kick,
              "RailGuard hooks incomplete");
  NMAD_ASSERT(!cfg_.ack_enabled || hooks_.timer != nullptr,
              "ack/retransmit requires a timer hook");
  NMAD_ASSERT(!(cfg_.keepalive_enabled || cfg_.reconnect_enabled) ||
                  cfg_.ack_enabled,
              "keepalive/reconnect require ack_enabled");
  metrics.state.set(static_cast<std::int64_t>(state()));
  metrics.epoch.set(static_cast<std::int64_t>(epoch_));
  last_rx_ = hooks_.now();
  reconnect_delay_ = cfg_.reconnect_backoff_ns;
  arm_keepalive_timer();
}

// --------------------------------------------------------------------------
// Transmit path
// --------------------------------------------------------------------------

void RailGuard::seal(drv::SendDesc& desc, std::uint8_t flags,
                     std::uint32_t seq, std::uint32_t epoch) {
  proto::FrameEnvelope env;
  env.flags = flags;
  env.seq = seq;
  // The incarnation stamp: receivers fence frames whose epoch does not
  // match their live one (reconnect handshakes carry the *proposed* epoch).
  env.epoch = epoch;
  // Every outgoing frame piggybacks our cumulative receive state; the
  // fields double as the standalone-ack payload.
  env.ack_small = rx_[0].contiguous;
  env.ack_large = rx_[1].contiguous;
  proto::seal_frame_envelope(desc.envelope, env, desc.view.head(),
                             desc.view.payload_spans());
  rx_[0].last_acked = env.ack_small;
  rx_[1].last_acked = env.ack_large;
  rx_[static_cast<std::size_t>(desc.track)].force_ack = false;
}

drv::SendDesc RailGuard::make_alias(const TxEntry& entry) const {
  drv::SendDesc alias(entry.desc.track, entry.desc.view.alias(),
                      entry.desc.extra_cpu_us);
  alias.envelope = entry.desc.envelope;
  return alias;
}

void RailGuard::post(drv::SendDesc desc, std::vector<strat::Contribution> contribs) {
  NMAD_ASSERT(driver_ != nullptr, "RailGuard used before init");
  NMAD_ASSERT(alive(), "post on a dead or probing rail");
  const auto track_idx = static_cast<std::size_t>(desc.track);
  const std::uint32_t seq = ++next_seq_[track_idx];
  seal(desc, 0, seq, epoch_);

  if (!cfg_.ack_enabled) {
    // Legacy semantics: contributions credit on local send completion and
    // nothing is retained — the wire is trusted to be reliable. The local
    // DMA completion doubles as a delivered-bytes sample for the rate
    // estimator (PIO completions measure the host copy and are skipped).
    const sim::TimeNs t0 = hooks_.now();
    const std::uint64_t wire = desc.wire_size();
    const drv::Track tr = desc.track;
    driver_->post_send(
        std::move(desc), [this, t0, wire, tr, contribs = std::move(contribs)] {
          if (estimator_ != nullptr && tr == drv::Track::kLarge) {
            const sim::TimeNs t1 = hooks_.now();
            estimator_->note_transfer(index_, wire, t1 - t0, t1);
          }
          hooks_.credit(contribs);
          hooks_.kick();
        });
    return;
  }

  TxEntry entry;
  entry.seq = seq;
  entry.track = desc.track;
  entry.desc = std::move(desc);
  entry.contribs = std::move(contribs);
  entry.posted_at = hooks_.now();
  entry.deadline = entry.posted_at + next_rto(0);
  entry.in_flight = true;
  tx_.push_back(std::move(entry));

  const drv::Track track = tx_.back().track;
  driver_->post_send(make_alias(tx_.back()), [this, seq, track] {
    for (auto it = tx_.begin(); it != tx_.end(); ++it) {
      if (it->seq != seq || it->track != track) continue;
      it->in_flight = false;
      it->locally_done = true;
      if (estimator_ != nullptr && track == drv::Track::kLarge &&
          it->retries == 0) {
        // First-transmission DMA completion: a clean bandwidth sample.
        const sim::TimeNs now = hooks_.now();
        estimator_->note_transfer(index_, it->desc.wire_size(),
                                  now - it->posted_at, now);
      }
      if (it->acked) {
        const auto done = std::move(it->contribs);
        tx_.erase(it);
        hooks_.credit(done);
      }
      break;
    }
    hooks_.kick();
  });
  arm_retransmit_timer();
}

sim::TimeNs RailGuard::next_rto(std::uint32_t retries) {
  double rto = static_cast<double>(cfg_.rto_ns) *
               std::pow(cfg_.rto_backoff, static_cast<double>(retries));
  rto = std::min(rto, static_cast<double>(cfg_.rto_max_ns));
  // +/- jitter/2 around the nominal deadline: parallel rails (and the two
  // peers of one rail) must not retransmit in lockstep.
  rto *= 1.0 + cfg_.rto_jitter * (jitter_.next_double() - 0.5);
  return static_cast<sim::TimeNs>(rto);
}

void RailGuard::arm_retransmit_timer() {
  if (!cfg_.ack_enabled || !alive()) return;
  sim::TimeNs earliest = 0;
  bool found = false;
  for (const TxEntry& e : tx_) {
    if (e.acked) continue;
    if (!found || e.deadline < earliest) {
      earliest = e.deadline;
      found = true;
    }
  }
  if (!found) return;
  if (rto_timer_armed_ && earliest >= rto_timer_deadline_) return;
  rto_timer_armed_ = true;
  rto_timer_deadline_ = earliest;
  const sim::TimeNs now = hooks_.now();
  const sim::TimeNs delay = earliest > now ? earliest - now : 0;
  hooks_.timer(delay, [this] { on_retransmit_timer(); });
}

void RailGuard::on_retransmit_timer() {
  rto_timer_armed_ = false;
  if (!alive()) return;
  handle_deadlines();
}

void RailGuard::handle_deadlines() {
  if (in_deadlines_) return;
  in_deadlines_ = true;
  const sim::TimeNs now = hooks_.now();
  // Index loop: a transition upcall inside the body can pump the gate and
  // push new retained frames (deque iterators would invalidate).
  for (std::size_t i = 0; i < tx_.size(); ++i) {
    if (tx_[i].acked || tx_[i].deadline > now) continue;
    metrics.timeouts.inc();
    if (estimator_ != nullptr) estimator_->note_timeout(index_, now);
    consecutive_timeouts_ += 1;
    tx_[i].retries += 1;
    if (tx_[i].retries > cfg_.max_retries) {
      in_deadlines_ = false;
      die("retransmit retries exhausted");
      return;
    }
    tx_[i].deadline = now + next_rto(tx_[i].retries);
    if (state() == RailState::kHealthy &&
        consecutive_timeouts_ >= cfg_.suspect_after) {
      transition(RailState::kSuspect);
    }
    // Retransmit if the track is free; a suspect rail's retransmissions
    // are its recovery probes. A busy (or killed) track just re-arms — the
    // retry is still charged, so a silent rail converges to dead.
    if (driver_->send_idle(tx_[i].track)) {
      metrics.retransmits.inc();
      drv::SendDesc alias = make_alias(tx_[i]);
      if (hooks_.note_post) hooks_.note_post(alias);
      tx_[i].in_flight = true;
      const std::uint32_t seq = tx_[i].seq;
      const drv::Track track = tx_[i].track;
      driver_->post_send(std::move(alias), [this, seq, track] {
        for (auto it = tx_.begin(); it != tx_.end(); ++it) {
          if (it->seq != seq || it->track != track) continue;
          it->in_flight = false;
          it->locally_done = true;
          if (it->acked) {
            const auto contribs = std::move(it->contribs);
            tx_.erase(it);
            hooks_.credit(contribs);
          }
          break;
        }
        hooks_.kick();
      });
    }
  }
  in_deadlines_ = false;
  arm_retransmit_timer();
}

bool RailGuard::flush() {
  if (!alive() || !cfg_.ack_enabled) return false;
  bool posted = false;
  // Due retransmissions first (they also re-arm the timer) ...
  const sim::TimeNs now = hooks_.now();
  bool any_due = false;
  for (const TxEntry& e : tx_) {
    if (!e.acked && e.deadline <= now) {
      any_due = true;
      break;
    }
  }
  if (any_due) {
    handle_deadlines();
    posted = true;
  }
  // ... then an owed standalone ack on an otherwise idle eager track.
  if (ack_due_ && owes_ack()) posted |= try_send_standalone_ack();
  return posted;
}

// --------------------------------------------------------------------------
// Receive path
// --------------------------------------------------------------------------

void RailGuard::on_frame(drv::Track track, std::span<const std::byte> frame) {
  const bool quiesced = !alive();  // dead or probing
  auto env = proto::decode_frame_envelope(frame);
  if (!env) {
    if (!quiesced) metrics.malformed_drops.inc();
    return;
  }
  if (!proto::verify_frame_checksum(frame)) {
    // Corrupt bytes are never trusted — and never acked, so the sender's
    // retransmission heals the loss.
    if (!quiesced) metrics.crc_drops.inc();
    return;
  }
  // Reconnect handshake frames are processed in ANY state — that is how
  // resurrection reaches a dead rail — and carry their own epoch logic.
  if ((env->flags & (proto::kFrameReconnect | proto::kFrameReconnectAck)) != 0) {
    if (cfg_.ack_enabled) handle_handshake(*env);
    return;
  }
  if (quiesced) return;  // drop silently: the rail carries no traffic
  // Epoch fence: a frame sealed under another incarnation is never
  // trusted — its sequence numbers and acks belong to fenced state.
  // Epoch 0 is unfenced (legacy peers, raw-driver paths, ack-off tests).
  if (env->epoch != 0 && env->epoch != epoch_) {
    metrics.stale_frames_dropped.inc();
    return;
  }
  note_rx_alive();
  process_acks(*env);
  if ((env->flags & proto::kFrameProbe) != 0) {
    // Answer immediately when the eager track is free; otherwise owe a
    // standalone ack — it doubles as the probe answer.
    if (!try_send_control(proto::kFrameAckOnly | proto::kFrameProbeReply,
                          epoch_) &&
        cfg_.ack_enabled) {
      ack_due_ = true;
      hooks_.kick();
    }
    return;
  }
  if ((env->flags & proto::kFrameAckOnly) != 0) return;

  if (env->seq != 0 && !rx_accept(track, env->seq)) {
    // Duplicate (retransmission whose original arrived, or injected dup):
    // suppress delivery but force a re-ack — the duplicate usually means
    // our previous ack was lost.
    metrics.dup_frames.inc();
    rx_[static_cast<std::size_t>(track)].force_ack = true;
    if (cfg_.ack_enabled) {
      ack_due_ = true;
      hooks_.kick();
    }
    return;
  }
  if (env->seq != 0) note_ack_needed();
  hooks_.deliver(track, frame.subspan(proto::kFrameEnvelopeBytes));
}

bool RailGuard::rx_accept(drv::Track track, std::uint32_t seq) {
  RxTrack& rx = rx_[static_cast<std::size_t>(track)];
  if (seq <= rx.contiguous || rx.beyond.count(seq) != 0) return false;
  if (seq == rx.contiguous + 1) {
    rx.contiguous = seq;
    auto it = rx.beyond.begin();
    while (it != rx.beyond.end() && *it == rx.contiguous + 1) {
      rx.contiguous = *it;
      it = rx.beyond.erase(it);
    }
  } else {
    rx.beyond.insert(seq);
  }
  return true;
}

void RailGuard::process_acks(const proto::FrameEnvelope& env) {
  bool advanced = false;
  advanced |= apply_ack(drv::Track::kSmall, env.ack_small);
  advanced |= apply_ack(drv::Track::kLarge, env.ack_large);
  if (!advanced) return;
  metrics.acks_received.inc();
  consecutive_timeouts_ = 0;
  if (state() == RailState::kSuspect) {
    // An acknowledged probe: the rail recovered.
    transition(RailState::kHealthy);
  }
}

bool RailGuard::apply_ack(drv::Track track, std::uint32_t upto) {
  bool advanced = false;
  for (auto it = tx_.begin(); it != tx_.end();) {
    if (it->track == track && !it->acked && it->seq <= upto) {
      advanced = true;
      it->acked = true;
      if (estimator_ != nullptr && it->retries == 0) {
        // Karn's rule: only never-retransmitted frames yield an RTT — a
        // retried frame's ack is ambiguous about which copy it answers.
        const sim::TimeNs now = hooks_.now();
        estimator_->note_rtt(index_, now - it->posted_at, now);
      }
      if (it->locally_done) {
        const auto contribs = std::move(it->contribs);
        it = tx_.erase(it);
        hooks_.credit(contribs);
        continue;
      }
    }
    ++it;
  }
  return advanced;
}

bool RailGuard::owes_ack() const noexcept {
  for (const RxTrack& rx : rx_) {
    if (rx.force_ack || rx.last_acked != rx.contiguous) return true;
  }
  return false;
}

void RailGuard::note_ack_needed() {
  if (!cfg_.ack_enabled || !owes_ack() || ack_timer_armed_) return;
  // Delay the standalone ack: outgoing data within the window piggybacks
  // the ack for free, which is the common case under load.
  ack_timer_armed_ = true;
  hooks_.timer(cfg_.ack_delay_ns, [this] {
    ack_timer_armed_ = false;
    if (!alive() || !owes_ack()) return;
    ack_due_ = true;
    if (!try_send_standalone_ack()) hooks_.kick();
  });
}

bool RailGuard::try_send_standalone_ack() {
  if (!try_send_control(proto::kFrameAckOnly, epoch_)) return false;
  metrics.acks_sent.inc();
  return true;
}

bool RailGuard::try_send_control(std::uint8_t flags, std::uint32_t epoch) {
  if (!driver_->send_idle(drv::Track::kSmall)) return false;
  drv::SendDesc desc;
  desc.track = drv::Track::kSmall;
  seal(desc, flags, 0, epoch);
  // Any envelope-only frame carries our cumulative acks: it settles every
  // owed re-ack exactly like a standalone ack would.
  rx_[0].force_ack = false;
  rx_[1].force_ack = false;
  ack_due_ = false;
  if (hooks_.note_post) hooks_.note_post(desc);
  driver_->post_send(std::move(desc), [this] { hooks_.kick(); });
  return true;
}

// --------------------------------------------------------------------------
// State machine
// --------------------------------------------------------------------------

void RailGuard::transition(RailState next) {
  if (state() == next) return;
  // Legal exits from dead: probing (our reconnect timer fired) and healthy
  // (we passively adopted the peer's new epoch). Everything else funnels
  // through the documented lattice in core/reliability.hpp.
  NMAD_LOG_INFO("rail", "rail%u: %s -> %s", index_, rail_state_name(state()),
                rail_state_name(next));
  state_.store(next, std::memory_order_relaxed);
  metrics.state_transitions.inc();
  metrics.state.set(static_cast<std::int64_t>(next));
  if (estimator_ != nullptr) estimator_->note_state(index_, next, hooks_.now());
  if (hooks_.on_state_change) hooks_.on_state_change(next);
}

void RailGuard::die(const char* reason) {
  if (state() == RailState::kDead) return;
  NMAD_LOG_WARN("rail", "rail%u declared dead: %s", index_, reason);
  transition(RailState::kDead);
  // The on_state_change hook has requeued our retained frames by now.
  // Start the resurrection cycle from a clean slate (if configured).
  probe_sent_at_ = 0;
  probe_misses_ = 0;
  pending_epoch_ = 0;
  reconnect_attempts_ = 0;
  reconnect_delay_ = cfg_.reconnect_backoff_ns;
  arm_reconnect_timer();
}

void RailGuard::on_driver_error(const drv::RailError& err) {
  NMAD_LOG_WARN("rail", "rail%u driver error on %s track: %s (%s, errno=%d)",
                index_, drv::track_name(err.track), err.detail.c_str(),
                drv::rail_error_name(err.kind), err.sys_errno);
  die("driver reported a hard failure");
}

std::vector<RailGuard::PendingFrame> RailGuard::take_unacked() {
  NMAD_ASSERT(state() == RailState::kDead, "take_unacked on a live rail");
  return surrender_tx();
}

std::vector<RailGuard::PendingFrame> RailGuard::surrender_tx() {
  std::vector<PendingFrame> out;
  out.reserve(tx_.size());
  for (TxEntry& e : tx_) {
    if (e.acked) {
      // The peer has the data; only local completion was pending (and the
      // driver will never report it now). Credit as sent.
      hooks_.credit(e.contribs);
      continue;
    }
    metrics.requeued_packets.inc();
    metrics.requeued_bytes.inc(e.desc.wire_size());
    out.push_back(PendingFrame{std::move(e.desc), std::move(e.contribs)});
  }
  tx_.clear();
  return out;
}

// --------------------------------------------------------------------------
// Keepalive probing
// --------------------------------------------------------------------------

void RailGuard::note_rx_alive() {
  last_rx_ = hooks_.now();
  probe_sent_at_ = 0;
  if (probe_misses_ != 0) {
    probe_misses_ = 0;
    // A keepalive-induced suspect (no retransmit timeouts pending) heals
    // on any valid receive; an RTO-induced one heals on ack advance.
    if (state() == RailState::kSuspect && consecutive_timeouts_ == 0) {
      transition(RailState::kHealthy);
    }
  }
}

void RailGuard::arm_keepalive_timer() {
  if (!cfg_.ack_enabled || !cfg_.keepalive_enabled || hooks_.timer == nullptr) {
    return;
  }
  if (keepalive_timer_armed_ || !alive()) return;
  keepalive_timer_armed_ = true;
  // While a probe is outstanding the next decision point is its timeout;
  // otherwise it is the idle threshold.
  const sim::TimeNs delay =
      probe_sent_at_ != 0 ? cfg_.probe_timeout_ns : cfg_.keepalive_idle_ns;
  hooks_.timer(delay, [this] { on_keepalive_timer(); });
}

void RailGuard::on_keepalive_timer() {
  keepalive_timer_armed_ = false;
  if (!alive()) return;  // the reconnect machinery owns dead/probing rails
  const sim::TimeNs now = hooks_.now();
  if (probe_sent_at_ != 0 && now - probe_sent_at_ >= cfg_.probe_timeout_ns) {
    probe_misses_ += 1;
    if (probe_misses_ >= cfg_.probe_max_misses) {
      die("keepalive probes unanswered");
      return;
    }
    if (state() == RailState::kHealthy &&
        probe_misses_ >= cfg_.suspect_after) {
      transition(RailState::kSuspect);
    }
    // Re-probe. A busy (or wedged) track still charges the next window —
    // a silent rail converges to dead either way.
    if (try_send_control(proto::kFrameAckOnly | proto::kFrameProbe, epoch_)) {
      metrics.probes_sent.inc();
    }
    probe_sent_at_ = now;
  } else if (probe_sent_at_ == 0 && now - last_rx_ >= cfg_.keepalive_idle_ns) {
    if (try_send_control(proto::kFrameAckOnly | proto::kFrameProbe, epoch_)) {
      metrics.probes_sent.inc();
    }
    // Charge the probe window even when the track refused the frame: an
    // idle rail whose track won't take an envelope-only probe is as
    // suspicious as one that swallows it (a dead port typically reports
    // itself busy). Either way, sustained silence converges to dead.
    probe_sent_at_ = now;
  }
  arm_keepalive_timer();
}

// --------------------------------------------------------------------------
// Reconnection (epoch-fenced resurrection)
// --------------------------------------------------------------------------

void RailGuard::arm_reconnect_timer() {
  if (!cfg_.ack_enabled || !cfg_.reconnect_enabled || hooks_.timer == nullptr) {
    return;
  }
  if (reconnect_timer_armed_) return;
  reconnect_timer_armed_ = true;
  if (reconnect_delay_ <= 0) reconnect_delay_ = cfg_.reconnect_backoff_ns;
  const sim::TimeNs delay = reconnect_delay_;
  // Capped exponential backoff for the attempt after this one.
  const double next = static_cast<double>(reconnect_delay_) *
                      cfg_.reconnect_backoff_factor;
  reconnect_delay_ = static_cast<sim::TimeNs>(
      std::min(next, static_cast<double>(cfg_.reconnect_backoff_max_ns)));
  hooks_.timer(delay, [this] { on_reconnect_timer(); });
}

void RailGuard::on_reconnect_timer() {
  reconnect_timer_armed_ = false;
  if (alive()) return;  // resurrected (or passively adopted) meanwhile
  if (state() == RailState::kDead) {
    transition(RailState::kProbing);
    pending_epoch_ = epoch_ + 1;
  }
  reconnect_attempts_ += 1;
  if (cfg_.reconnect_max_attempts != 0 &&
      reconnect_attempts_ > cfg_.reconnect_max_attempts) {
    NMAD_LOG_WARN("rail", "rail%u: giving up reconnecting after %u attempts",
                  index_, reconnect_attempts_ - 1);
    transition(RailState::kDead);
    return;
  }
  // Re-establish the endpoint, then propose the new incarnation. A failed
  // revive (or a busy track) just waits for the next backoff tick.
  if (driver_->revive()) {
    (void)try_send_control(proto::kFrameAckOnly | proto::kFrameReconnect,
                           pending_epoch_);
  }
  arm_reconnect_timer();
}

void RailGuard::handle_handshake(const proto::FrameEnvelope& env) {
  const std::uint32_t e = env.epoch;
  if ((env.flags & proto::kFrameReconnect) != 0) {
    if (e < epoch_) {
      metrics.stale_frames_dropped.inc();
      return;
    }
    if (e == epoch_) {
      // Our ReconnectAck was lost: re-ack the already-adopted epoch
      // without touching state (the adoption must stay idempotent).
      (void)try_send_control(proto::kFrameAckOnly | proto::kFrameReconnectAck,
                             epoch_);
      return;
    }
    // e > epoch_: the peer proposes a new incarnation. A dead endpoint
    // must come back first; a live one has nothing to re-establish.
    if (!driver_->revive()) return;
    adopt_epoch(e, /*initiated=*/false);
    (void)try_send_control(proto::kFrameAckOnly | proto::kFrameReconnectAck,
                           epoch_);
    return;
  }
  // kFrameReconnectAck: completes our own handshake.
  if (state() == RailState::kProbing && e == pending_epoch_) {
    adopt_epoch(e, /*initiated=*/true);
    return;
  }
  if (e < epoch_) metrics.stale_frames_dropped.inc();
  // e == epoch_ while healthy: duplicate ack of a completed handshake.
}

void RailGuard::adopt_epoch(std::uint32_t e, bool initiated) {
  const bool was_down = !alive();
  if (!tx_.empty()) {
    // Retained frames belong to the fenced incarnation: their sequence
    // numbers mean nothing under the new epoch. Hand them back for repost.
    std::vector<PendingFrame> frames = surrender_tx();
    if (hooks_.requeue) hooks_.requeue(std::move(frames));
  }
  reset_link_state();
  epoch_ = e;
  pending_epoch_ = 0;
  metrics.epoch.set(static_cast<std::int64_t>(epoch_));
  NMAD_LOG_INFO("rail", "rail%u: adopted epoch %u (%s)", index_, e,
                initiated ? "handshake completed" : "peer-initiated");
  if (state() != RailState::kHealthy) transition(RailState::kHealthy);
  if (was_down) {
    metrics.reconnects.inc();
    if (hooks_.on_revived) hooks_.on_revived();
  }
  arm_keepalive_timer();
}

void RailGuard::reset_link_state() {
  NMAD_ASSERT(tx_.empty(), "epoch reset with retained frames");
  next_seq_[0] = 0;
  next_seq_[1] = 0;
  rx_[0] = RxTrack{};
  rx_[1] = RxTrack{};
  consecutive_timeouts_ = 0;
  probe_sent_at_ = 0;
  probe_misses_ = 0;
  ack_due_ = false;
  last_rx_ = hooks_.now();
  reconnect_attempts_ = 0;
  reconnect_delay_ = cfg_.reconnect_backoff_ns;
}

}  // namespace nmad::core
