// CRC32C (Castagnoli, polynomial 0x1EDC6F41, reflected 0x82F63B78) — the
// frame-envelope checksum (iSCSI/ext4 flavor, chosen over CRC32/zlib for
// its better error-detection properties on short frames).
//
// The implementation is streaming: a frame's checksum is folded over the
// envelope prefix, the packet's header block and each payload span in turn,
// so the scatter-gather packet path never flattens a packet just to
// checksum it (the zero-copy contract of proto/wire.hpp is preserved).
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace nmad::proto {

inline constexpr std::uint32_t kCrc32cInit = 0xffffffffu;

/// Fold `data` into a running CRC32C state. Start from kCrc32cInit and
/// finalize with crc32c_finish once every piece has been folded in.
[[nodiscard]] std::uint32_t crc32c_update(std::uint32_t state,
                                          std::span<const std::byte> data) noexcept;

[[nodiscard]] constexpr std::uint32_t crc32c_finish(std::uint32_t state) noexcept {
  return state ^ 0xffffffffu;
}

/// One-shot convenience over a single contiguous buffer.
[[nodiscard]] std::uint32_t crc32c(std::span<const std::byte> data) noexcept;

}  // namespace nmad::proto
