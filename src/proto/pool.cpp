#include "proto/pool.hpp"

#include "obs/registry.hpp"
#include "util/panic.hpp"

namespace nmad::proto {

struct PooledBuffer::PoolState {
  /// Retired blocks, capacity preserved. Reserved to max_free up front so
  /// returning a block never allocates (release() is noexcept).
  std::vector<std::vector<std::byte>> free;
  std::size_t block_capacity = 0;
  std::size_t max_free = BufferPool::kDefaultMaxFree;
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t recycled = 0;
};

PooledBuffer PooledBuffer::unpooled(std::vector<std::byte> bytes) {
  return PooledBuffer(std::move(bytes), nullptr);
}

void PooledBuffer::release() noexcept {
  if (!live_) return;
  live_ = false;
  fresh_ = false;
  if (state_ != nullptr && state_->free.size() < state_->max_free) {
    storage_.clear();  // keeps capacity
    state_->recycled += 1;
    state_->free.push_back(std::move(storage_));
  }
  storage_ = std::vector<std::byte>();
  state_.reset();
}

BufferPool::BufferPool(std::size_t block_capacity, std::size_t max_free)
    : state_(std::make_shared<PooledBuffer::PoolState>()) {
  NMAD_ASSERT(max_free >= 1, "buffer pool needs room for at least one block");
  state_->block_capacity = block_capacity;
  state_->max_free = max_free;
  state_->free.reserve(max_free);
}

PooledBuffer BufferPool::acquire() {
  auto& st = *state_;
  if (!st.free.empty()) {
    std::vector<std::byte> block = std::move(st.free.back());
    st.free.pop_back();
    st.hits += 1;
    return PooledBuffer(std::move(block), state_);
  }
  st.misses += 1;
  std::vector<std::byte> block;
  block.reserve(st.block_capacity);
  PooledBuffer out(std::move(block), state_);
  out.fresh_ = true;
  return out;
}

std::size_t BufferPool::free_count() const noexcept { return state_->free.size(); }
std::uint64_t BufferPool::hit_count() const noexcept { return state_->hits; }
std::uint64_t BufferPool::miss_count() const noexcept { return state_->misses; }
std::uint64_t BufferPool::recycled_count() const noexcept {
  return state_->recycled;
}

void BufferPool::register_into(obs::MetricsRegistry& registry,
                               const std::string& prefix) const {
  registry.add_raw(prefix + "hits", &state_->hits);
  registry.add_raw(prefix + "misses", &state_->misses);
  registry.add_raw(prefix + "recycled", &state_->recycled);
}

}  // namespace nmad::proto
