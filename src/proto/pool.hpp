// Recycling buffer arenas for the packet hot path.
//
// Every packet the strategies emit needs a small header block (packet
// header + seg headers) and — only when segments are aggregated — a
// contiguous staging area for the copied payloads. Allocating those with
// operator new per packet puts the allocator on the paper's
// latency-critical just-in-time packing path; a BufferPool instead keeps a
// freelist of retired blocks (capacity preserved) and hands them back out,
// so steady-state packet construction performs zero heap allocations.
//
// Lifetime: PooledBuffer is an RAII handle; destroying it returns the
// storage to its pool's freelist. Blocks ride inside drv::SendDesc through
// the driver, so a block is recycled exactly when the driver drops the
// descriptor after local send completion. The pool's bookkeeping lives in
// a shared state block, so handles may safely outlive the BufferPool
// frontend (teardown order between gates and in-flight driver queues does
// not matter; orphaned storage is simply freed).
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::proto {

class BufferPool;

/// Owning handle to one block of bytes, usually drawn from (and returned
/// to) a BufferPool. Move-only; empty handles are valid and inert.
class PooledBuffer {
 public:
  PooledBuffer() = default;
  ~PooledBuffer() { release(); }

  PooledBuffer(PooledBuffer&& other) noexcept
      : storage_(std::move(other.storage_)), state_(std::move(other.state_)),
        live_(std::exchange(other.live_, false)),
        fresh_(std::exchange(other.fresh_, false)) {}
  PooledBuffer& operator=(PooledBuffer&& other) noexcept {
    if (this != &other) {
      release();
      storage_ = std::move(other.storage_);
      state_ = std::move(other.state_);
      live_ = std::exchange(other.live_, false);
      fresh_ = std::exchange(other.fresh_, false);
    }
    return *this;
  }
  PooledBuffer(const PooledBuffer&) = delete;
  PooledBuffer& operator=(const PooledBuffer&) = delete;

  /// Wrap an already-filled buffer with no pool behind it (legacy flat
  /// packets); destruction simply frees it.
  [[nodiscard]] static PooledBuffer unpooled(std::vector<std::byte> bytes);

  [[nodiscard]] bool live() const noexcept { return live_; }
  /// True when acquire() had to heap-allocate this block (a pool miss) —
  /// the signal behind the allocs_hot_path counter.
  [[nodiscard]] bool fresh() const noexcept { return fresh_; }
  [[nodiscard]] std::size_t size() const noexcept { return storage_.size(); }
  [[nodiscard]] std::span<const std::byte> bytes() const noexcept {
    return storage_;
  }
  /// Mutable backing store for builders (append/patch while encoding).
  [[nodiscard]] std::vector<std::byte>& storage() noexcept { return storage_; }

  /// Hand the storage back to the pool (or free it) immediately.
  void release() noexcept;

 private:
  friend class BufferPool;
  struct PoolState;
  PooledBuffer(std::vector<std::byte> storage, std::shared_ptr<PoolState> state)
      : storage_(std::move(storage)), state_(std::move(state)), live_(true) {}

  std::vector<std::byte> storage_;
  std::shared_ptr<PoolState> state_;
  bool live_ = false;
  bool fresh_ = false;
};

/// A freelist of byte blocks with hit/miss accounting. Single-threaded,
/// like everything the progression engine drives.
class BufferPool {
 public:
  /// `block_capacity` is reserved in every freshly allocated block so the
  /// common packet sizes never regrow; `max_free` bounds the retained
  /// freelist (blocks beyond it are freed on return).
  explicit BufferPool(std::size_t block_capacity = 0,
                      std::size_t max_free = kDefaultMaxFree);

  /// Take a block (empty, capacity preserved) from the freelist, or
  /// allocate a fresh one (a pool miss — the hot path's only allocation).
  [[nodiscard]] PooledBuffer acquire();

  [[nodiscard]] std::size_t free_count() const noexcept;
  /// Freelist reuse / fresh allocations / blocks returned for recycling.
  [[nodiscard]] std::uint64_t hit_count() const noexcept;
  [[nodiscard]] std::uint64_t miss_count() const noexcept;
  [[nodiscard]] std::uint64_t recycled_count() const noexcept;

  /// Register `<prefix>hits`, `<prefix>misses`, `<prefix>recycled` into the
  /// metrics tree (compiled out with NMAD_METRICS=OFF like all obs types).
  void register_into(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;

  static constexpr std::size_t kDefaultMaxFree = 64;

 private:
  std::shared_ptr<PooledBuffer::PoolState> state_;
};

}  // namespace nmad::proto
