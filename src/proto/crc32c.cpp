#include "proto/crc32c.hpp"

#include <array>

#if defined(__SSE4_2__)
#include <nmmintrin.h>
#endif

namespace nmad::proto {

namespace {

/// Slicing-by-4 tables for the reflected Castagnoli polynomial, built at
/// static-init time (256 * 4 u32 — fits comfortably in L1).
struct Tables {
  std::array<std::array<std::uint32_t, 256>, 4> t{};

  Tables() {
    constexpr std::uint32_t kPoly = 0x82f63b78u;
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t crc = i;
      for (int bit = 0; bit < 8; ++bit) {
        crc = (crc >> 1) ^ ((crc & 1u) ? kPoly : 0u);
      }
      t[0][i] = crc;
    }
    for (std::uint32_t i = 0; i < 256; ++i) {
      t[1][i] = (t[0][i] >> 8) ^ t[0][t[0][i] & 0xffu];
      t[2][i] = (t[1][i] >> 8) ^ t[0][t[1][i] & 0xffu];
      t[3][i] = (t[2][i] >> 8) ^ t[0][t[2][i] & 0xffu];
    }
  }
};

const Tables& tables() {
  static const Tables t;
  return t;
}

}  // namespace

std::uint32_t crc32c_update(std::uint32_t state,
                            std::span<const std::byte> data) noexcept {
  const auto* p = reinterpret_cast<const unsigned char*>(data.data());
  std::size_t n = data.size();
  std::uint32_t crc = state;

#if defined(__SSE4_2__)
  // Hardware CRC32C where the baseline ISA guarantees it.
  while (n >= 8) {
    std::uint64_t v;
    __builtin_memcpy(&v, p, 8);
    crc = static_cast<std::uint32_t>(_mm_crc32_u64(crc, v));
    p += 8;
    n -= 8;
  }
  while (n > 0) {
    crc = _mm_crc32_u8(crc, *p++);
    --n;
  }
  return crc;
#else
  const Tables& tb = tables();
  while (n >= 4) {
    crc ^= static_cast<std::uint32_t>(p[0]) |
           (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
    crc = tb.t[3][crc & 0xffu] ^ tb.t[2][(crc >> 8) & 0xffu] ^
          tb.t[1][(crc >> 16) & 0xffu] ^ tb.t[0][(crc >> 24) & 0xffu];
    p += 4;
    n -= 4;
  }
  while (n > 0) {
    crc = (crc >> 8) ^ tb.t[0][(crc ^ *p++) & 0xffu];
    --n;
  }
  return crc;
#endif
}

std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
  return crc32c_finish(crc32c_update(kCrc32cInit, data));
}

}  // namespace nmad::proto
