// Receive-side reassembly of messages from (possibly out-of-order,
// possibly overlapping-free) chunks.
//
// With multi-rail stripping, one message's chunks arrive over different
// NICs in arbitrary order; with aggregation, several messages' segments
// arrive in one packet. Each in-flight incoming message owns a
// MessageAssembly that tracks which byte ranges have landed (an ordered
// interval set) and reports completion when coverage reaches total length.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>

#include "util/expected.hpp"

namespace nmad::proto {

class MessageAssembly {
 public:
  /// `dest` must stay valid until complete(); its size is the message length.
  explicit MessageAssembly(std::span<std::byte> dest) : dest_(dest) {}

  /// Copy `payload` into the message at `offset`. Returns true when new
  /// bytes were applied, false for a chunk whose range is already fully
  /// covered — an exact duplicate, which the reliability layer produces
  /// legitimately (a retransmission whose original did arrive, or a
  /// requeued packet after a rail failover) and which is ignored. Chunks
  /// that fall outside the message or *partially* overlap received bytes
  /// are still errors: the protocol never re-chunks sent data, so a
  /// partial overlap means corrupted addressing.
  util::Expected<bool> add_chunk(std::uint64_t offset,
                                 std::span<const std::byte> payload);

  [[nodiscard]] std::uint64_t bytes_received() const noexcept { return received_; }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept { return dest_.size(); }
  [[nodiscard]] bool complete() const noexcept { return received_ == dest_.size(); }

  /// Number of maximal contiguous received ranges (test/diagnostic aid).
  [[nodiscard]] std::size_t fragment_count() const noexcept { return intervals_.size(); }

  /// Switch the destination buffer, copying already-received ranges across.
  /// Used when a message that started assembling into unexpected-message
  /// temporary storage is matched by a late-posted receive. `new_dest` must
  /// be the same size as the current destination.
  void rebind(std::span<std::byte> new_dest);

 private:
  std::span<std::byte> dest_;
  /// Maximal disjoint received intervals: start -> end (exclusive).
  std::map<std::uint64_t, std::uint64_t> intervals_;
  std::uint64_t received_ = 0;
};

}  // namespace nmad::proto
