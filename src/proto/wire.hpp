// Wire format of nmad packets.
//
// Every packet a driver puts on a wire — simulated or real TCP — is encoded
// with this format. A packet is:
//
//   PacketHeader (16 bytes)
//   SegHeader x seg_count (20 bytes each)
//   concatenated segment payloads
//
// A *data* packet can carry several segments (possibly from different
// messages — the paper's aggregation optimization merges segments across
// logical channels), each addressed by (tag, msg_seq, offset) into its
// destination message. Rendezvous control packets reuse SegHeader with an
// empty payload. All integers are little-endian on the wire.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "util/expected.hpp"

namespace nmad::proto {

/// Application-level message tag (like an MPI tag).
using Tag = std::uint32_t;
/// Per-gate message sequence number; (gate, msg_seq) identifies a message.
using MsgSeq = std::uint32_t;

enum class PacketKind : std::uint8_t {
  kData = 1,    ///< carries one or more data segments
  kRdvReq = 2,  ///< rendezvous request: announces a large message
  kRdvAck = 3,  ///< rendezvous grant: receiver is ready
};

/// Addressing and extent of one segment within its message.
struct SegHeader {
  Tag tag = 0;
  MsgSeq msg_seq = 0;
  std::uint32_t offset = 0;     ///< byte offset within the full message
  std::uint32_t len = 0;        ///< payload bytes carried in this packet
  std::uint32_t total_len = 0;  ///< full message length (same in every chunk)

  friend bool operator==(const SegHeader&, const SegHeader&) = default;
};

inline constexpr std::size_t kPacketHeaderBytes = 16;
inline constexpr std::size_t kSegHeaderBytes = 20;
inline constexpr std::uint16_t kMagic = 0x4d4e;  // "NM"
inline constexpr std::uint8_t kVersion = 1;

/// Total on-wire size of a packet carrying the given payload split across
/// `seg_count` segments.
constexpr std::size_t packet_wire_size(std::size_t seg_count,
                                       std::size_t payload_bytes) noexcept {
  return kPacketHeaderBytes + seg_count * kSegHeaderBytes + payload_bytes;
}

/// Incrementally builds an encoded packet.
class PacketBuilder {
 public:
  explicit PacketBuilder(PacketKind kind);

  /// Append a segment. For control packets, pass an empty payload.
  /// `payload.size()` must equal `header.len`.
  void add_segment(const SegHeader& header, std::span<const std::byte> payload);

  [[nodiscard]] std::size_t seg_count() const noexcept { return headers_.size(); }
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload_.size(); }
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return packet_wire_size(headers_.size(), payload_.size());
  }

  /// Encode into a fresh buffer. The builder may not be reused afterwards.
  [[nodiscard]] std::vector<std::byte> finish() &&;

 private:
  PacketKind kind_;
  std::vector<SegHeader> headers_;
  std::vector<std::byte> payload_;
};

/// A decoded view into an encoded packet. Does not own the bytes: the
/// spans point into the buffer passed to decode_packet, which must outlive
/// the DecodedPacket.
struct DecodedPacket {
  PacketKind kind{};
  struct Segment {
    SegHeader header;
    std::span<const std::byte> payload;
  };
  std::vector<Segment> segments;
};

/// Validate and decode an encoded packet (checks magic, version, lengths).
util::Expected<DecodedPacket> decode_packet(std::span<const std::byte> wire);

/// Convenience: build a single-segment data packet.
std::vector<std::byte> encode_data_packet(const SegHeader& header,
                                          std::span<const std::byte> payload);

/// Convenience: build a rendezvous request for a message of `total_len`.
std::vector<std::byte> encode_rdv_req(Tag tag, MsgSeq seq, std::uint32_t total_len);

/// Convenience: build a rendezvous grant.
std::vector<std::byte> encode_rdv_ack(Tag tag, MsgSeq seq);

}  // namespace nmad::proto
