// Wire format of nmad packets.
//
// Every packet a driver puts on a wire — simulated or real TCP — is encoded
// with this format. A packet is:
//
//   PacketHeader (16 bytes)
//   SegHeader x seg_count (20 bytes each)
//   concatenated segment payloads
//
// A *data* packet can carry several segments (possibly from different
// messages — the paper's aggregation optimization merges segments across
// logical channels), each addressed by (tag, msg_seq, offset) into its
// destination message. Rendezvous control packets reuse SegHeader with an
// empty payload. All integers are little-endian on the wire.
#pragma once

#include <array>
#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

#include "proto/pool.hpp"
#include "util/expected.hpp"

namespace nmad::proto {

/// Application-level message tag (like an MPI tag).
using Tag = std::uint32_t;
/// Per-gate message sequence number; (gate, msg_seq) identifies a message.
using MsgSeq = std::uint32_t;

enum class PacketKind : std::uint8_t {
  kData = 1,    ///< carries one or more data segments
  kRdvReq = 2,  ///< rendezvous request: announces a large message
  kRdvAck = 3,  ///< rendezvous grant: receiver is ready
};

/// Addressing and extent of one segment within its message.
struct SegHeader {
  Tag tag = 0;
  MsgSeq msg_seq = 0;
  std::uint32_t offset = 0;     ///< byte offset within the full message
  std::uint32_t len = 0;        ///< payload bytes carried in this packet
  std::uint32_t total_len = 0;  ///< full message length (same in every chunk)

  friend bool operator==(const SegHeader&, const SegHeader&) = default;
};

inline constexpr std::size_t kPacketHeaderBytes = 16;
inline constexpr std::size_t kSegHeaderBytes = 20;
inline constexpr std::uint16_t kMagic = 0x4d4e;  // "NM"
inline constexpr std::uint8_t kVersion = 1;

// --------------------------------------------------------------------------
// Frame envelope (per-rail reliability layer)
// --------------------------------------------------------------------------
//
// Every frame a driver puts on a wire is the encoded packet prefixed by a
// fixed 24-byte *envelope* — the per-rail reliability header added by the
// fault-tolerance subsystem (core/rail_guard.hpp):
//
//   magic(2) version(1) flags(1) seq(4) ack_small(4) ack_large(4)
//   epoch(4) crc32c(4)
//
//  - `seq` is a per-(rail, track) sequence number starting at 1; 0 marks an
//    unsequenced frame (raw driver tests). The receiver suppresses
//    duplicate sequence numbers (retransmissions, injected duplication).
//  - `ack_small` / `ack_large` piggyback the sender's *receive* state on
//    this rail: cumulative highest-contiguous sequence received per track.
//    An envelope with flags bit kFrameAckOnly set carries no packet at all
//    (standalone ack on an otherwise idle rail).
//  - `epoch` names the rail's incarnation: a reconnect handshake bumps it,
//    fencing every frame (and every sequence number) of the previous life
//    of the link. 0 marks an unfenced frame (raw driver tests, acks-off
//    configurations). Probe and reconnect handshake frames are
//    envelope-only frames carrying the flags below.
//  - `crc32c` covers the envelope (with the crc field zeroed) plus the
//    packet bytes, folded span-by-span at the gather boundary so the
//    zero-copy packet path never flattens a frame to checksum it.
//
// The envelope is sealed by the RailGuard at post time and validated by it
// at delivery; corrupt or malformed frames are counted and dropped (the
// ack/retransmit protocol recovers the data), never trusted.

inline constexpr std::size_t kFrameEnvelopeBytes = 24;
inline constexpr std::uint16_t kFrameMagic = 0x464e;  // "NF"
inline constexpr std::uint8_t kFrameVersion = 2;

enum FrameFlags : std::uint8_t {
  kFrameAckOnly = 1u << 0,  ///< envelope-only frame: acks, no packet
  /// Keepalive probe (envelope-only; always combined with kFrameAckOnly).
  kFrameProbe = 1u << 1,
  /// Immediate reply to a keepalive probe (envelope-only).
  kFrameProbeReply = 1u << 2,
  /// Reconnect handshake: "adopt my epoch, reset sequencing state".
  kFrameReconnect = 1u << 3,
  /// Reconnect acknowledgment: "epoch adopted, state reset".
  kFrameReconnectAck = 1u << 4,
};

struct FrameEnvelope {
  std::uint8_t flags = 0;
  std::uint32_t seq = 0;        ///< per-(rail, track) sequence; 0 = unsequenced
  std::uint32_t ack_small = 0;  ///< cumulative ack of peer seqs, small track
  std::uint32_t ack_large = 0;  ///< cumulative ack of peer seqs, large track
  std::uint32_t epoch = 0;      ///< rail incarnation; 0 = unfenced
  std::uint32_t checksum = 0;   ///< CRC32C over envelope (crc zeroed) + packet
};

/// Encode `env` into `out` (>= kFrameEnvelopeBytes) and seal it: the
/// checksum is computed over the envelope prefix plus `head` plus each
/// payload span, in wire order, and stored in the crc field.
void seal_frame_envelope(std::span<std::byte> out, const FrameEnvelope& env,
                         std::span<const std::byte> head,
                         std::span<const std::span<const std::byte>> payloads);

/// Validate the fixed fields (size, magic, version, ack-only length rules)
/// and decode the envelope. Does NOT verify the checksum — callers decide
/// whether to pay for verify_frame_checksum (the fuzz target exercises
/// both paths independently).
util::Expected<FrameEnvelope> decode_frame_envelope(std::span<const std::byte> frame);

/// Recompute the checksum of a contiguous received frame (envelope +
/// packet) and compare with the stored crc field.
[[nodiscard]] bool verify_frame_checksum(std::span<const std::byte> frame) noexcept;

/// Total on-wire size of a packet carrying the given payload split across
/// `seg_count` segments.
constexpr std::size_t packet_wire_size(std::size_t seg_count,
                                       std::size_t payload_bytes) noexcept {
  return kPacketHeaderBytes + seg_count * kSegHeaderBytes + payload_bytes;
}

/// Exact wire size of a rendezvous control packet (one SegHeader, no
/// payload) — small enough to encode into stack or pooled storage with no
/// intermediate builder state.
inline constexpr std::size_t kControlPacketBytes =
    kPacketHeaderBytes + kSegHeaderBytes;

/// A scatter-gather packet: the encoded header block (packet header + seg
/// headers, usually pooled) plus an iovec-style list of payload spans that
/// reference the segments *in place*. Drivers gather the pieces only at the
/// wire boundary, so single-segment eager packets and DMA chunks carry user
/// memory zero-copy; only aggregation stages payloads (into the recycled
/// `staging` block, which the span list then points into).
///
/// Lifetime: payload spans are borrowed — the referenced request memory must
/// stay valid until the driver reports local send completion (on_sent),
/// which is exactly the SendRequest lifetime contract. Destroying the view
/// returns the pooled blocks to their arenas.
class PacketView {
 public:
  /// Payload span lists up to this long live inline in the view; longer
  /// lists spill to the heap (counted by heap_allocs()). Aggregated staged
  /// runs and memory-adjacent segments merge, so almost every packet fits.
  static constexpr std::size_t kInlineSpans = 4;

  PacketView() = default;
  PacketView(PacketView&&) = default;
  PacketView& operator=(PacketView&&) = default;
  PacketView(const PacketView&) = delete;
  PacketView& operator=(const PacketView&) = delete;

  /// Wrap a fully encoded flat packet (header + payload already
  /// contiguous). Compatibility shim for pre-gather call sites; reports
  /// zero copied bytes because the copy happened before the view existed.
  [[nodiscard]] static PacketView flat(std::vector<std::byte> wire);

  /// Wrap an encoded head-only packet (e.g. a control packet: the whole
  /// wire image lives in `head`, there is no payload).
  [[nodiscard]] static PacketView from_encoded(PooledBuffer head);

  /// Non-owning view of the same packet: borrows this view's head block and
  /// payload span list without touching pool ownership. Used by the
  /// retransmit path, which must re-post a frame the original (retained)
  /// view still owns. The alias must not outlive the original.
  [[nodiscard]] PacketView alias() const;

  /// Encoded packet header + seg headers (for flat views: the whole wire).
  [[nodiscard]] std::span<const std::byte> head() const noexcept {
    return alias_head_.data() != nullptr ? alias_head_ : head_.bytes();
  }
  /// Payload pieces, in wire order.
  [[nodiscard]] std::span<const std::span<const std::byte>> payload_spans()
      const noexcept;
  [[nodiscard]] std::size_t span_count() const noexcept { return span_count_; }
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload_bytes_; }
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return head().size() + payload_bytes_;
  }
  /// Payload bytes that were memcpy'd while building this packet
  /// (aggregation staging only; zero for the zero-copy paths).
  [[nodiscard]] std::size_t copied_bytes() const noexcept { return copied_bytes_; }
  /// Heap allocations performed while building this packet: pool misses on
  /// the head/staging blocks plus a span-list spill beyond kInlineSpans.
  [[nodiscard]] std::uint64_t heap_allocs() const noexcept;

  /// Append the full wire image (head + payloads) to `out` — the gather a
  /// driver performs at the wire boundary, also used by tests.
  void gather_into(std::vector<std::byte>& out) const;
  [[nodiscard]] std::vector<std::byte> to_bytes() const;

  /// Drop the span list and return the pooled blocks to their arenas now
  /// (destruction does the same implicitly).
  void reset() noexcept;

 private:
  friend class GatherBuilder;

  PooledBuffer head_;
  PooledBuffer staging_;
  /// Set only on alias() views: borrowed head bytes owned by the original.
  std::span<const std::byte> alias_head_{};
  std::array<std::span<const std::byte>, kInlineSpans> inline_{};
  std::vector<std::span<const std::byte>> overflow_;
  std::uint32_t span_count_ = 0;
  std::size_t payload_bytes_ = 0;
  std::size_t copied_bytes_ = 0;
};

/// Gather-aware packet builder: encodes headers incrementally into the
/// (pooled) head block and records payload *references* instead of copying
/// them. Segments are either referenced in place (`add_segment`, zero-copy)
/// or staged (`add_segment_staged`, the paper's aggregation memcpy into a
/// contiguous area). finish() seals the header and resolves the span list.
class GatherBuilder {
 public:
  /// `staging` may be a default (dead) handle when no segment will be
  /// staged; add_segment_staged requires a live one.
  GatherBuilder(PacketKind kind, PooledBuffer head, PooledBuffer staging = {});

  /// Append a segment whose payload is referenced in place (zero-copy).
  /// `payload.size()` must equal `header.len`; the memory must outlive the
  /// send (the SendRequest lifetime contract).
  void add_segment(const SegHeader& header, std::span<const std::byte> payload);

  /// Append a segment whose payload is memcpy'd into the staging block —
  /// the aggregation path's deliberate copy. Consecutive staged segments
  /// resolve to a single contiguous span.
  void add_segment_staged(const SegHeader& header,
                          std::span<const std::byte> payload);

  [[nodiscard]] std::size_t seg_count() const noexcept { return seg_count_; }
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload_bytes_; }
  /// Bytes memcpy'd into staging so far (== the packet's copied_bytes()).
  [[nodiscard]] std::size_t staged_bytes() const noexcept { return staged_bytes_; }
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return packet_wire_size(seg_count_, payload_bytes_);
  }

  /// Seal the header (patch seg_count/payload_len) and resolve the payload
  /// span list. The builder may not be reused afterwards.
  [[nodiscard]] PacketView finish() &&;

 private:
  /// data == nullptr marks a staged range of `len` bytes (resolved against
  /// the staging block at finish(), when it can no longer reallocate).
  struct Entry {
    const std::byte* data = nullptr;
    std::size_t len = 0;
  };
  void push_entry(Entry e);

  PooledBuffer head_;
  PooledBuffer staging_;
  std::array<Entry, PacketView::kInlineSpans> inline_entries_{};
  std::vector<Entry> overflow_entries_;
  std::size_t entry_count_ = 0;
  std::size_t seg_count_ = 0;
  std::size_t payload_bytes_ = 0;
  std::size_t staged_bytes_ = 0;
};

/// Incrementally builds an encoded packet.
class PacketBuilder {
 public:
  explicit PacketBuilder(PacketKind kind);

  /// Append a segment. For control packets, pass an empty payload.
  /// `payload.size()` must equal `header.len`.
  void add_segment(const SegHeader& header, std::span<const std::byte> payload);

  [[nodiscard]] std::size_t seg_count() const noexcept { return headers_.size(); }
  [[nodiscard]] std::size_t payload_bytes() const noexcept { return payload_.size(); }
  [[nodiscard]] std::size_t wire_size() const noexcept {
    return packet_wire_size(headers_.size(), payload_.size());
  }

  /// Encode into a fresh buffer. The builder may not be reused afterwards.
  [[nodiscard]] std::vector<std::byte> finish() &&;

 private:
  PacketKind kind_;
  std::vector<SegHeader> headers_;
  std::vector<std::byte> payload_;
};

/// A decoded view into an encoded packet. Does not own the bytes: the
/// spans point into the buffer passed to decode_packet, which must outlive
/// the DecodedPacket.
struct DecodedPacket {
  PacketKind kind{};
  struct Segment {
    SegHeader header;
    std::span<const std::byte> payload;
  };
  std::vector<Segment> segments;
};

/// Validate and decode an encoded packet (checks magic, version, lengths).
util::Expected<DecodedPacket> decode_packet(std::span<const std::byte> wire);

/// Convenience: build a single-segment data packet (flat, copies the
/// payload — legacy/test path; the hot path uses encode_data_packet_view).
std::vector<std::byte> encode_data_packet(const SegHeader& header,
                                          std::span<const std::byte> payload);

/// Convenience: build a rendezvous request for a message of `total_len`.
std::vector<std::byte> encode_rdv_req(Tag tag, MsgSeq seq, std::uint32_t total_len);

/// Convenience: build a rendezvous grant.
std::vector<std::byte> encode_rdv_ack(Tag tag, MsgSeq seq);

/// Zero-copy single-segment data packet: pooled header block + a span
/// referencing `payload` in place.
PacketView encode_data_packet_view(BufferPool& pool, const SegHeader& header,
                                   std::span<const std::byte> payload);

/// Fixed-size stack-encoded control-packet fast paths: write the complete
/// kControlPacketBytes wire image directly into `out` (which must be at
/// least that large) with no builder, no intermediate vectors.
void encode_rdv_req_into(std::span<std::byte> out, Tag tag, MsgSeq seq,
                         std::uint32_t total_len);
void encode_rdv_ack_into(std::span<std::byte> out, Tag tag, MsgSeq seq);

/// Pooled control packets (the fast paths above, into a recycled block).
PacketView encode_rdv_req_view(BufferPool& pool, Tag tag, MsgSeq seq,
                               std::uint32_t total_len);
PacketView encode_rdv_ack_view(BufferPool& pool, Tag tag, MsgSeq seq);

}  // namespace nmad::proto
