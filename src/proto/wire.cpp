#include "proto/wire.hpp"

#include <cstring>
#include "util/fmt.hpp"

#include "util/panic.hpp"

namespace nmad::proto {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xff));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(std::span<const std::byte> in, std::size_t off) {
  return static_cast<std::uint16_t>(std::to_integer<unsigned>(in[off]) |
                                    (std::to_integer<unsigned>(in[off + 1]) << 8));
}
std::uint32_t get_u32(std::span<const std::byte> in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | std::to_integer<std::uint32_t>(in[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

}  // namespace

PacketBuilder::PacketBuilder(PacketKind kind) : kind_(kind) {}

void PacketBuilder::add_segment(const SegHeader& header,
                                std::span<const std::byte> payload) {
  NMAD_ASSERT(payload.size() == header.len, "segment payload/len mismatch");
  NMAD_ASSERT(header.len == 0 ||
                  static_cast<std::uint64_t>(header.offset) + header.len <=
                      header.total_len,
              "segment extent exceeds message length");
  headers_.push_back(header);
  payload_.insert(payload_.end(), payload.begin(), payload.end());
}

std::vector<std::byte> PacketBuilder::finish() && {
  NMAD_ASSERT(!headers_.empty(), "encoding packet with no segments");
  NMAD_ASSERT(headers_.size() <= 0xffff, "too many segments in one packet");
  std::vector<std::byte> out;
  out.reserve(wire_size());

  // PacketHeader: magic(2) version(1) kind(1) seg_count(2) reserved(2)
  //               payload_len(4) reserved(4)
  put_u16(out, kMagic);
  out.push_back(std::byte{kVersion});
  out.push_back(std::byte{static_cast<std::uint8_t>(kind_)});
  put_u16(out, static_cast<std::uint16_t>(headers_.size()));
  put_u16(out, 0);
  put_u32(out, static_cast<std::uint32_t>(payload_.size()));
  put_u32(out, 0);
  NMAD_ASSERT(out.size() == kPacketHeaderBytes, "packet header layout drift");

  for (const SegHeader& h : headers_) {
    put_u32(out, h.tag);
    put_u32(out, h.msg_seq);
    put_u32(out, h.offset);
    put_u32(out, h.len);
    put_u32(out, h.total_len);
  }
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

util::Expected<DecodedPacket> decode_packet(std::span<const std::byte> wire) {
  if (wire.size() < kPacketHeaderBytes) {
    return util::make_error(util::sformat("packet too short: %zu bytes", wire.size()));
  }
  if (get_u16(wire, 0) != kMagic) {
    return util::make_error("bad packet magic");
  }
  const auto version = std::to_integer<std::uint8_t>(wire[2]);
  if (version != kVersion) {
    return util::make_error(util::sformat("unsupported packet version %u", version));
  }
  const auto kind_raw = std::to_integer<std::uint8_t>(wire[3]);
  if (kind_raw < 1 || kind_raw > 3) {
    return util::make_error(util::sformat("unknown packet kind %u", kind_raw));
  }
  const std::uint16_t seg_count = get_u16(wire, 4);
  const std::uint32_t payload_len = get_u32(wire, 8);
  const std::size_t expected = packet_wire_size(seg_count, payload_len);
  if (wire.size() != expected) {
    return util::make_error(util::sformat(
        "packet size mismatch: got %zu bytes, header implies %zu", wire.size(),
        expected));
  }
  if (seg_count == 0) {
    return util::make_error("packet with zero segments");
  }

  DecodedPacket pkt;
  pkt.kind = static_cast<PacketKind>(kind_raw);
  pkt.segments.reserve(seg_count);

  std::size_t hdr_off = kPacketHeaderBytes;
  std::size_t payload_off = kPacketHeaderBytes + seg_count * kSegHeaderBytes;
  std::uint64_t payload_sum = 0;
  for (std::uint16_t i = 0; i < seg_count; ++i) {
    SegHeader h;
    h.tag = get_u32(wire, hdr_off + 0);
    h.msg_seq = get_u32(wire, hdr_off + 4);
    h.offset = get_u32(wire, hdr_off + 8);
    h.len = get_u32(wire, hdr_off + 12);
    h.total_len = get_u32(wire, hdr_off + 16);
    hdr_off += kSegHeaderBytes;
    payload_sum += h.len;
    if (payload_sum > payload_len) {
      return util::make_error("segment lengths exceed packet payload");
    }
    if (h.len > 0 && static_cast<std::uint64_t>(h.offset) + h.len > h.total_len) {
      return util::make_error("segment extent exceeds message length");
    }
    pkt.segments.push_back(
        DecodedPacket::Segment{h, wire.subspan(payload_off, h.len)});
    payload_off += h.len;
  }
  if (payload_sum != payload_len) {
    return util::make_error("segment lengths do not cover packet payload");
  }
  return pkt;
}

std::vector<std::byte> encode_data_packet(const SegHeader& header,
                                          std::span<const std::byte> payload) {
  PacketBuilder b(PacketKind::kData);
  b.add_segment(header, payload);
  return std::move(b).finish();
}

std::vector<std::byte> encode_rdv_req(Tag tag, MsgSeq seq, std::uint32_t total_len) {
  PacketBuilder b(PacketKind::kRdvReq);
  b.add_segment(SegHeader{tag, seq, 0, 0, total_len}, {});
  return std::move(b).finish();
}

std::vector<std::byte> encode_rdv_ack(Tag tag, MsgSeq seq) {
  PacketBuilder b(PacketKind::kRdvAck);
  b.add_segment(SegHeader{tag, seq, 0, 0, 0}, {});
  return std::move(b).finish();
}

}  // namespace nmad::proto
