#include "proto/wire.hpp"

#include <cstring>
#include "proto/crc32c.hpp"
#include "util/fmt.hpp"

#include "util/panic.hpp"

namespace nmad::proto {

namespace {

void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  for (int i = 0; i < 2; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xff));
}
void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(std::byte((v >> (8 * i)) & 0xff));
}

std::uint16_t get_u16(std::span<const std::byte> in, std::size_t off) {
  return static_cast<std::uint16_t>(std::to_integer<unsigned>(in[off]) |
                                    (std::to_integer<unsigned>(in[off + 1]) << 8));
}
std::uint32_t get_u32(std::span<const std::byte> in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) | std::to_integer<std::uint32_t>(in[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

void store_u16(std::byte* p, std::uint16_t v) {
  p[0] = std::byte(v & 0xff);
  p[1] = std::byte((v >> 8) & 0xff);
}
void store_u32(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = std::byte((v >> (8 * i)) & 0xff);
}

void append_packet_header(std::vector<std::byte>& out, PacketKind kind,
                          std::uint16_t seg_count, std::uint32_t payload_len) {
  // PacketHeader: magic(2) version(1) kind(1) seg_count(2) reserved(2)
  //               payload_len(4) reserved(4)
  put_u16(out, kMagic);
  out.push_back(std::byte{kVersion});
  out.push_back(std::byte{static_cast<std::uint8_t>(kind)});
  put_u16(out, seg_count);
  put_u16(out, 0);
  put_u32(out, payload_len);
  put_u32(out, 0);
}

void append_seg_header(std::vector<std::byte>& out, const SegHeader& h) {
  put_u32(out, h.tag);
  put_u32(out, h.msg_seq);
  put_u32(out, h.offset);
  put_u32(out, h.len);
  put_u32(out, h.total_len);
}

void check_segment(const SegHeader& header, std::span<const std::byte> payload) {
  NMAD_ASSERT(payload.size() == header.len, "segment payload/len mismatch");
  NMAD_ASSERT(header.len == 0 ||
                  static_cast<std::uint64_t>(header.offset) + header.len <=
                      header.total_len,
              "segment extent exceeds message length");
}

/// Encode a complete one-segment zero-payload control packet into `out`.
void encode_control_into(std::span<std::byte> out, PacketKind kind,
                         const SegHeader& h) {
  NMAD_ASSERT(out.size() >= kControlPacketBytes,
              "control packet buffer too small");
  std::byte* p = out.data();
  store_u16(p + 0, kMagic);
  p[2] = std::byte{kVersion};
  p[3] = std::byte{static_cast<std::uint8_t>(kind)};
  store_u16(p + 4, 1);   // seg_count
  store_u16(p + 6, 0);   // reserved
  store_u32(p + 8, 0);   // payload_len
  store_u32(p + 12, 0);  // reserved
  store_u32(p + 16, h.tag);
  store_u32(p + 20, h.msg_seq);
  store_u32(p + 24, h.offset);
  store_u32(p + 28, h.len);
  store_u32(p + 32, h.total_len);
}

}  // namespace

PacketBuilder::PacketBuilder(PacketKind kind) : kind_(kind) {}

void PacketBuilder::add_segment(const SegHeader& header,
                                std::span<const std::byte> payload) {
  NMAD_ASSERT(payload.size() == header.len, "segment payload/len mismatch");
  NMAD_ASSERT(header.len == 0 ||
                  static_cast<std::uint64_t>(header.offset) + header.len <=
                      header.total_len,
              "segment extent exceeds message length");
  headers_.push_back(header);
  payload_.insert(payload_.end(), payload.begin(), payload.end());
}

std::vector<std::byte> PacketBuilder::finish() && {
  NMAD_ASSERT(!headers_.empty(), "encoding packet with no segments");
  NMAD_ASSERT(headers_.size() <= 0xffff, "too many segments in one packet");
  std::vector<std::byte> out;
  out.reserve(wire_size());
  append_packet_header(out, kind_, static_cast<std::uint16_t>(headers_.size()),
                       static_cast<std::uint32_t>(payload_.size()));
  NMAD_ASSERT(out.size() == kPacketHeaderBytes, "packet header layout drift");
  for (const SegHeader& h : headers_) append_seg_header(out, h);
  out.insert(out.end(), payload_.begin(), payload_.end());
  return out;
}

// --------------------------------------------------------------------------
// PacketView / GatherBuilder
// --------------------------------------------------------------------------

PacketView PacketView::flat(std::vector<std::byte> wire) {
  return from_encoded(PooledBuffer::unpooled(std::move(wire)));
}

PacketView PacketView::from_encoded(PooledBuffer head) {
  PacketView view;
  view.head_ = std::move(head);
  return view;
}

PacketView PacketView::alias() const {
  PacketView view;
  view.alias_head_ = head();
  view.inline_ = inline_;
  view.overflow_ = overflow_;
  view.span_count_ = span_count_;
  view.payload_bytes_ = payload_bytes_;
  // copied_bytes_ stays 0: the copy was charged when the original was built.
  return view;
}

std::span<const std::span<const std::byte>> PacketView::payload_spans()
    const noexcept {
  if (!overflow_.empty()) return overflow_;
  return {inline_.data(), span_count_};
}

std::uint64_t PacketView::heap_allocs() const noexcept {
  return (head_.fresh() ? 1 : 0) + (staging_.fresh() ? 1 : 0) +
         (overflow_.empty() ? 0 : 1);
}

void PacketView::gather_into(std::vector<std::byte>& out) const {
  out.reserve(out.size() + wire_size());
  const auto h = head();
  out.insert(out.end(), h.begin(), h.end());
  for (const auto& s : payload_spans()) {
    out.insert(out.end(), s.begin(), s.end());
  }
}

std::vector<std::byte> PacketView::to_bytes() const {
  std::vector<std::byte> out;
  gather_into(out);
  return out;
}

void PacketView::reset() noexcept {
  head_.release();
  staging_.release();
  alias_head_ = {};
  overflow_.clear();
  span_count_ = 0;
  payload_bytes_ = 0;
  copied_bytes_ = 0;
}

GatherBuilder::GatherBuilder(PacketKind kind, PooledBuffer head,
                             PooledBuffer staging)
    : head_(std::move(head)), staging_(std::move(staging)) {
  NMAD_ASSERT(head_.live(), "gather builder needs a live head block");
  head_.storage().clear();
  staging_.storage().clear();
  // Placeholder header; seg_count and payload_len are patched at finish().
  append_packet_header(head_.storage(), kind, 0, 0);
}

void GatherBuilder::push_entry(Entry e) {
  if (e.len == 0) return;
  // Merge with the previous entry when the bytes are contiguous: staged
  // runs always are (the staging block is filled sequentially), and
  // adjacent user segments often are.
  Entry* last = nullptr;
  if (entry_count_ > 0) {
    last = overflow_entries_.empty() ? &inline_entries_[entry_count_ - 1]
                                     : &overflow_entries_.back();
  }
  if (last != nullptr) {
    const bool both_staged = last->data == nullptr && e.data == nullptr;
    const bool contiguous =
        last->data != nullptr && e.data == last->data + last->len;
    if (both_staged || contiguous) {
      last->len += e.len;
      return;
    }
  }
  if (entry_count_ < inline_entries_.size()) {
    inline_entries_[entry_count_] = e;
  } else {
    if (overflow_entries_.empty()) {
      // Spill: move the inline list to the heap (counted in heap_allocs).
      overflow_entries_.assign(inline_entries_.begin(), inline_entries_.end());
    }
    overflow_entries_.push_back(e);
  }
  entry_count_ += 1;
}

void GatherBuilder::add_segment(const SegHeader& header,
                                std::span<const std::byte> payload) {
  check_segment(header, payload);
  NMAD_ASSERT(seg_count_ < 0xffff, "too many segments in one packet");
  append_seg_header(head_.storage(), header);
  seg_count_ += 1;
  payload_bytes_ += payload.size();
  push_entry(Entry{payload.data(), payload.size()});
}

void GatherBuilder::add_segment_staged(const SegHeader& header,
                                       std::span<const std::byte> payload) {
  check_segment(header, payload);
  NMAD_ASSERT(seg_count_ < 0xffff, "too many segments in one packet");
  NMAD_ASSERT(staging_.live() || payload.empty(),
              "staged segment without a staging block");
  append_seg_header(head_.storage(), header);
  seg_count_ += 1;
  payload_bytes_ += payload.size();
  staged_bytes_ += payload.size();
  // The copy the paper charges for aggregation. The span is recorded as a
  // staged range (not a pointer) because the staging vector may reallocate
  // as later segments are appended; finish() resolves it.
  auto& stage = staging_.storage();
  stage.insert(stage.end(), payload.begin(), payload.end());
  push_entry(Entry{nullptr, payload.size()});
}

PacketView GatherBuilder::finish() && {
  NMAD_ASSERT(seg_count_ > 0, "encoding packet with no segments");
  auto& head = head_.storage();
  store_u16(head.data() + 4, static_cast<std::uint16_t>(seg_count_));
  store_u32(head.data() + 8, static_cast<std::uint32_t>(payload_bytes_));

  PacketView view;
  view.head_ = std::move(head_);
  view.staging_ = std::move(staging_);
  view.payload_bytes_ = payload_bytes_;
  view.copied_bytes_ = staged_bytes_;

  const std::span<const Entry> entries =
      overflow_entries_.empty()
          ? std::span<const Entry>(inline_entries_.data(), entry_count_)
          : std::span<const Entry>(overflow_entries_);
  const std::byte* stage_base = view.staging_.bytes().data();
  std::size_t stage_off = 0;
  if (!overflow_entries_.empty()) view.overflow_.reserve(entries.size());
  for (const Entry& e : entries) {
    std::span<const std::byte> s;
    if (e.data == nullptr) {
      s = std::span<const std::byte>(stage_base + stage_off, e.len);
      stage_off += e.len;
    } else {
      s = std::span<const std::byte>(e.data, e.len);
    }
    if (!view.overflow_.empty() || entries.size() > PacketView::kInlineSpans) {
      view.overflow_.push_back(s);
    } else {
      view.inline_[view.span_count_] = s;
    }
    view.span_count_ += 1;
  }
  NMAD_ASSERT(stage_off == view.staging_.size(),
              "staged ranges do not cover the staging block");
  return view;
}

// --------------------------------------------------------------------------
// Frame envelope
// --------------------------------------------------------------------------

void seal_frame_envelope(std::span<std::byte> out, const FrameEnvelope& env,
                         std::span<const std::byte> head,
                         std::span<const std::span<const std::byte>> payloads) {
  NMAD_ASSERT(out.size() >= kFrameEnvelopeBytes, "envelope buffer too small");
  std::byte* p = out.data();
  store_u16(p + 0, kFrameMagic);
  p[2] = std::byte{kFrameVersion};
  p[3] = std::byte{env.flags};
  store_u32(p + 4, env.seq);
  store_u32(p + 8, env.ack_small);
  store_u32(p + 12, env.ack_large);
  store_u32(p + 16, env.epoch);
  // Checksum the envelope with the crc field absent, then the packet bytes
  // span by span — the streamed fold that keeps the gather path zero-copy.
  std::uint32_t crc = crc32c_update(kCrc32cInit, std::span<const std::byte>(p, 20));
  crc = crc32c_update(crc, head);
  for (const auto& s : payloads) crc = crc32c_update(crc, s);
  store_u32(p + 20, crc32c_finish(crc));
}

util::Expected<FrameEnvelope> decode_frame_envelope(std::span<const std::byte> frame) {
  if (frame.size() < kFrameEnvelopeBytes) {
    return util::make_error(
        util::sformat("frame too short for envelope: %zu bytes", frame.size()));
  }
  if (get_u16(frame, 0) != kFrameMagic) {
    return util::make_error("bad frame magic");
  }
  const auto version = std::to_integer<std::uint8_t>(frame[2]);
  if (version != kFrameVersion) {
    return util::make_error(util::sformat("unsupported frame version %u", version));
  }
  FrameEnvelope env;
  env.flags = std::to_integer<std::uint8_t>(frame[3]);
  env.seq = get_u32(frame, 4);
  env.ack_small = get_u32(frame, 8);
  env.ack_large = get_u32(frame, 12);
  env.epoch = get_u32(frame, 16);
  env.checksum = get_u32(frame, 20);
  if ((env.flags & kFrameAckOnly) != 0 && frame.size() != kFrameEnvelopeBytes) {
    return util::make_error("ack-only frame carries payload bytes");
  }
  if ((env.flags & kFrameAckOnly) == 0 && frame.size() == kFrameEnvelopeBytes) {
    return util::make_error("data frame carries no packet");
  }
  constexpr std::uint8_t kControlFlags =
      kFrameProbe | kFrameProbeReply | kFrameReconnect | kFrameReconnectAck;
  if ((env.flags & kControlFlags) != 0 && (env.flags & kFrameAckOnly) == 0) {
    return util::make_error("probe/handshake frame must be envelope-only");
  }
  return env;
}

bool verify_frame_checksum(std::span<const std::byte> frame) noexcept {
  if (frame.size() < kFrameEnvelopeBytes) return false;
  std::uint32_t crc = crc32c_update(kCrc32cInit, frame.first(20));
  crc = crc32c_update(crc, frame.subspan(kFrameEnvelopeBytes));
  return crc32c_finish(crc) == get_u32(frame, 20);
}

util::Expected<DecodedPacket> decode_packet(std::span<const std::byte> wire) {
  if (wire.size() < kPacketHeaderBytes) {
    return util::make_error(util::sformat("packet too short: %zu bytes", wire.size()));
  }
  if (get_u16(wire, 0) != kMagic) {
    return util::make_error("bad packet magic");
  }
  const auto version = std::to_integer<std::uint8_t>(wire[2]);
  if (version != kVersion) {
    return util::make_error(util::sformat("unsupported packet version %u", version));
  }
  const auto kind_raw = std::to_integer<std::uint8_t>(wire[3]);
  if (kind_raw < 1 || kind_raw > 3) {
    return util::make_error(util::sformat("unknown packet kind %u", kind_raw));
  }
  const std::uint16_t seg_count = get_u16(wire, 4);
  const std::uint32_t payload_len = get_u32(wire, 8);
  const std::size_t expected = packet_wire_size(seg_count, payload_len);
  if (wire.size() != expected) {
    return util::make_error(util::sformat(
        "packet size mismatch: got %zu bytes, header implies %zu", wire.size(),
        expected));
  }
  if (seg_count == 0) {
    return util::make_error("packet with zero segments");
  }

  DecodedPacket pkt;
  pkt.kind = static_cast<PacketKind>(kind_raw);
  pkt.segments.reserve(seg_count);

  std::size_t hdr_off = kPacketHeaderBytes;
  std::size_t payload_off = kPacketHeaderBytes + seg_count * kSegHeaderBytes;
  std::uint64_t payload_sum = 0;
  for (std::uint16_t i = 0; i < seg_count; ++i) {
    SegHeader h;
    h.tag = get_u32(wire, hdr_off + 0);
    h.msg_seq = get_u32(wire, hdr_off + 4);
    h.offset = get_u32(wire, hdr_off + 8);
    h.len = get_u32(wire, hdr_off + 12);
    h.total_len = get_u32(wire, hdr_off + 16);
    hdr_off += kSegHeaderBytes;
    payload_sum += h.len;
    if (payload_sum > payload_len) {
      return util::make_error("segment lengths exceed packet payload");
    }
    if (h.len > 0 && static_cast<std::uint64_t>(h.offset) + h.len > h.total_len) {
      return util::make_error("segment extent exceeds message length");
    }
    pkt.segments.push_back(
        DecodedPacket::Segment{h, wire.subspan(payload_off, h.len)});
    payload_off += h.len;
  }
  if (payload_sum != payload_len) {
    return util::make_error("segment lengths do not cover packet payload");
  }
  return pkt;
}

std::vector<std::byte> encode_data_packet(const SegHeader& header,
                                          std::span<const std::byte> payload) {
  PacketBuilder b(PacketKind::kData);
  b.add_segment(header, payload);
  return std::move(b).finish();
}

std::vector<std::byte> encode_rdv_req(Tag tag, MsgSeq seq, std::uint32_t total_len) {
  std::vector<std::byte> out(kControlPacketBytes);
  encode_rdv_req_into(out, tag, seq, total_len);
  return out;
}

std::vector<std::byte> encode_rdv_ack(Tag tag, MsgSeq seq) {
  std::vector<std::byte> out(kControlPacketBytes);
  encode_rdv_ack_into(out, tag, seq);
  return out;
}

PacketView encode_data_packet_view(BufferPool& pool, const SegHeader& header,
                                   std::span<const std::byte> payload) {
  GatherBuilder b(PacketKind::kData, pool.acquire());
  b.add_segment(header, payload);
  return std::move(b).finish();
}

void encode_rdv_req_into(std::span<std::byte> out, Tag tag, MsgSeq seq,
                         std::uint32_t total_len) {
  encode_control_into(out, PacketKind::kRdvReq, SegHeader{tag, seq, 0, 0, total_len});
}

void encode_rdv_ack_into(std::span<std::byte> out, Tag tag, MsgSeq seq) {
  encode_control_into(out, PacketKind::kRdvAck, SegHeader{tag, seq, 0, 0, 0});
}

PacketView encode_rdv_req_view(BufferPool& pool, Tag tag, MsgSeq seq,
                               std::uint32_t total_len) {
  PooledBuffer head = pool.acquire();
  head.storage().resize(kControlPacketBytes);
  encode_rdv_req_into(head.storage(), tag, seq, total_len);
  return PacketView::from_encoded(std::move(head));
}

PacketView encode_rdv_ack_view(BufferPool& pool, Tag tag, MsgSeq seq) {
  PooledBuffer head = pool.acquire();
  head.storage().resize(kControlPacketBytes);
  encode_rdv_ack_into(head.storage(), tag, seq);
  return PacketView::from_encoded(std::move(head));
}

}  // namespace nmad::proto
