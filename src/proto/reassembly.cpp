#include "proto/reassembly.hpp"

#include <cstring>

#include "util/fmt.hpp"
#include "util/panic.hpp"

namespace nmad::proto {

void MessageAssembly::rebind(std::span<std::byte> new_dest) {
  NMAD_ASSERT(new_dest.size() == dest_.size(), "rebind to differently-sized buffer");
  if (new_dest.data() == dest_.data()) return;
  for (const auto& [start, end] : intervals_) {
    std::memcpy(new_dest.data() + start, dest_.data() + start, end - start);
  }
  dest_ = new_dest;
}

util::Expected<bool> MessageAssembly::add_chunk(std::uint64_t offset,
                                                std::span<const std::byte> payload) {
  if (payload.empty()) return false;
  const std::uint64_t end = offset + payload.size();
  if (end > dest_.size()) {
    return util::make_error(util::sformat(
        "chunk [%llu, %llu) exceeds message length %zu",
        static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(end), dest_.size()));
  }

  // Find the first interval whose end is > offset; overlap exists if it
  // starts before our end.
  auto it = intervals_.upper_bound(offset);
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second > offset) {
      if (prev->first <= offset && prev->second >= end) {
        // Fully covered: a retransmitted or requeued chunk whose original
        // made it. The payload is byte-identical by the protocol's
        // chunking invariant; nothing to apply.
        return false;
      }
      return util::make_error(util::sformat(
          "chunk [%llu, %llu) overlaps received range [%llu, %llu)",
          static_cast<unsigned long long>(offset),
          static_cast<unsigned long long>(end),
          static_cast<unsigned long long>(prev->first),
          static_cast<unsigned long long>(prev->second)));
    }
  }
  if (it != intervals_.end() && it->first < end) {
    return util::make_error(util::sformat(
        "chunk [%llu, %llu) overlaps received range [%llu, %llu)",
        static_cast<unsigned long long>(offset),
        static_cast<unsigned long long>(end),
        static_cast<unsigned long long>(it->first),
        static_cast<unsigned long long>(it->second)));
  }

  std::memcpy(dest_.data() + offset, payload.data(), payload.size());
  received_ += payload.size();

  // Insert and merge with adjacent intervals.
  std::uint64_t new_start = offset;
  std::uint64_t new_end = end;
  if (it != intervals_.begin()) {
    auto prev = std::prev(it);
    if (prev->second == offset) {
      new_start = prev->first;
      intervals_.erase(prev);
    }
  }
  if (it != intervals_.end() && it->first == end) {
    new_end = it->second;
    intervals_.erase(it);
  }
  intervals_.emplace(new_start, new_end);
  return true;
}

}  // namespace nmad::proto
