#include "coll/bcast.hpp"

#include "util/panic.hpp"

namespace nmad::coll {

std::vector<std::pair<std::size_t, std::size_t>> segment_bounds(
    std::size_t total, std::uint32_t segment_bytes, std::uint32_t elem_size) {
  NMAD_ASSERT(elem_size > 0, "element size must be positive");
  std::size_t seg = segment_bytes == 0 ? total : segment_bytes;
  // Keep whole elements per segment: a combine must never see half an
  // element. A segment carries at least one element.
  seg = std::max<std::size_t>(seg - seg % elem_size, elem_size);
  std::vector<std::pair<std::size_t, std::size_t>> bounds;
  std::size_t off = 0;
  do {
    const std::size_t len = std::min(seg, total - off);
    bounds.emplace_back(off, len);
    off += len;
  } while (off < total);
  return bounds;
}

BcastOp::BcastOp(Communicator& comm, std::span<std::byte> buffer,
                 std::size_t root, core::Tag tag, Algo algo)
    : CollOp(comm, algo), shape_(comm.tree(root)), tag_(tag) {
  comm.metrics_.tree_depth.set(static_cast<std::int64_t>(shape_.depth));
  comm.metrics_.levels.set(static_cast<std::int64_t>(shape_.levels));
  for (auto [off, len] : segment_bounds(buffer.size(), comm.config().segment_bytes,
                                        /*elem_size=*/1)) {
    segs_.push_back(buffer.subspan(off, len));
  }
  // Tree edges this rank participates in (its "rounds" of the op).
  comm.metrics_.rounds.inc(shape_.children.size() +
                           (shape_.parent != TreeShape::kNoParent ? 1 : 0));
  if (shape_.parent == TreeShape::kNoParent) {
    // Root: every segment is ready — send them all, largest subtree first.
    for (const auto& seg : segs_) {
      for (auto child = shape_.children.rbegin(); child != shape_.children.rend();
           ++child) {
        (void)post_send(*child, tag_, seg);
      }
    }
    next_forward_ = segs_.size();
  } else {
    // Interior/leaf: pre-post one receive per segment, in segment order.
    for (const auto& seg : segs_) {
      recvs_.push_back(post_recv(shape_.parent, tag_, seg));
    }
  }
}

bool BcastOp::step() {
  if (group_.any_failed()) {
    finish(false);
    return true;
  }
  bool changed = false;
  while (next_forward_ < segs_.size() && recvs_[next_forward_]->completed()) {
    NMAD_ASSERT(recvs_[next_forward_]->received_len() ==
                    segs_[next_forward_].size(),
                "broadcast segment length mismatch");
    for (auto child = shape_.children.rbegin(); child != shape_.children.rend();
         ++child) {
      (void)post_send(*child, tag_, segs_[next_forward_]);
    }
    ++next_forward_;
    changed = true;
  }
  if (next_forward_ == segs_.size() && group_.all_settled()) {
    finish(!group_.any_failed());
    return true;
  }
  return changed;
}

}  // namespace nmad::coll
