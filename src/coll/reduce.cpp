#include "coll/reduce.hpp"

#include <cstring>

#include "util/panic.hpp"

namespace nmad::coll {

ReduceOp::ReduceOp(Communicator& comm, std::span<const std::byte> contrib,
                   std::span<std::byte> result, std::size_t root,
                   CombineFn combine, std::uint32_t elem_size, core::Tag tag,
                   Algo algo)
    : CollOp(comm, algo), shape_(comm.tree(root)), tag_(tag), combine_(combine) {
  NMAD_ASSERT(combine_ != nullptr, "reduce needs a combine function");
  NMAD_ASSERT(elem_size > 0 && contrib.size() % elem_size == 0,
              "contribution is not a whole number of elements");
  const bool is_root = shape_.parent == TreeShape::kNoParent;
  NMAD_ASSERT(!is_root || result.size() == contrib.size(),
              "root reduce needs a contribution-sized result buffer");
  if (result.size() == contrib.size()) {
    acc_ = result;  // caller-provided scratch (and the root's destination)
  } else {
    NMAD_ASSERT(result.empty(), "reduce result must be empty or full-sized");
    acc_storage_.resize(contrib.size());
    acc_ = acc_storage_;
  }
  if (!contrib.empty() && acc_.data() != contrib.data()) {
    std::memcpy(acc_.data(), contrib.data(), contrib.size());
  }

  bounds_ = segment_bounds(contrib.size(), comm.config().segment_bytes, elem_size);
  combined_.assign(bounds_.size(), 0);
  comm.metrics_.tree_depth.set(static_cast<std::int64_t>(shape_.depth));
  comm.metrics_.levels.set(static_cast<std::int64_t>(shape_.levels));
  comm.metrics_.rounds.inc(shape_.children.size() + (is_root ? 0 : 1));

  // One landing buffer per child, with every segment's receive pre-posted
  // in segment order (ordinal matching).
  child_buf_.resize(shape_.children.size());
  child_recvs_.resize(shape_.children.size());
  for (std::size_t c = 0; c < shape_.children.size(); ++c) {
    child_buf_[c].resize(contrib.size());
    std::span<std::byte> buf = child_buf_[c];
    for (auto [off, len] : bounds_) {
      child_recvs_[c].push_back(
          post_recv(shape_.children[c], tag_, buf.subspan(off, len)));
    }
  }
}

bool ReduceOp::step() {
  if (group_.any_failed()) {
    finish(false);
    return true;
  }
  bool changed = false;
  // Fold in arrived child partials, always in child order per segment so
  // the combine order is deterministic.
  for (std::size_t s = 0; s < bounds_.size(); ++s) {
    while (combined_[s] < shape_.children.size() &&
           child_recvs_[combined_[s]][s]->completed()) {
      const auto& recv = child_recvs_[combined_[s]][s];
      NMAD_ASSERT(recv->received_len() == bounds_[s].second,
                  "reduce segment length mismatch");
      std::span<const std::byte> in(child_buf_[combined_[s]].data() +
                                        bounds_[s].first,
                                    bounds_[s].second);
      combine_(in, acc_seg(s));
      ++combined_[s];
      changed = true;
    }
  }
  // Forward fully-accumulated segments towards the root, in order.
  while (next_up_ < bounds_.size() &&
         combined_[next_up_] == shape_.children.size()) {
    if (shape_.parent != TreeShape::kNoParent) {
      (void)post_send(shape_.parent, tag_, acc_seg(next_up_));
    }
    ++next_up_;
    changed = true;
  }
  if (next_up_ == bounds_.size() && group_.all_settled()) {
    finish(!group_.any_failed());
    return true;
  }
  return changed;
}

AllreduceOp::AllreduceOp(Communicator& comm, std::span<const std::byte> contrib,
                         std::span<std::byte> result, CombineFn combine,
                         std::uint32_t elem_size)
    : CollOp(comm, Algo::kAllreduce), result_(result) {
  NMAD_ASSERT(result.size() == contrib.size(),
              "allreduce needs a contribution-sized result on every rank");
  // Both phases draw their tags now, so every rank agrees on the streams
  // no matter when its reduce phase finishes.
  const core::Tag reduce_tag = comm.next_tag(Algo::kAllreduce, 0);
  bcast_tag_ = comm.next_tag(Algo::kAllreduce, 1);
  reduce_ = std::make_shared<ReduceOp>(comm, contrib, result, /*root=*/0,
                                       combine, elem_size, reduce_tag,
                                       Algo::kAllreduce);
  reduce_->mark_subsidiary();
}

bool AllreduceOp::step() {
  if (!bcast_) {
    const bool changed = reduce_->try_advance();
    if (!reduce_->done()) return changed;
    if (reduce_->failed()) {
      finish(false);
      return true;
    }
    bcast_ = std::make_shared<BcastOp>(*comm_, result_, /*root=*/0, bcast_tag_,
                                       Algo::kAllreduce);
    bcast_->mark_subsidiary();
    return true;
  }
  const bool changed = bcast_->try_advance();
  if (bcast_->done()) {
    finish(bcast_->completed());
    return true;
  }
  return changed;
}

void AllreduceOp::on_abort() {
  if (reduce_ && !reduce_->done()) reduce_->abort();
  if (bcast_ && !bcast_->done()) bcast_->abort();
}

}  // namespace nmad::coll
