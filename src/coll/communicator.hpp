// The collectives layer: group operations composed from the multi-rail
// point-to-point engine.
//
// A coll::Communicator binds one rank of an N-party group to a Session and
// one gate per peer. The algorithms (binomial-tree broadcast and reduce,
// reduce+broadcast allreduce, dissemination barrier — see bcast.hpp,
// reduce.hpp, barrier.hpp) are built purely from Session::isend/irecv, so
// every segment of a collective flows through the normal strategy backlog:
// large segments are split across rails by the installed strategy and
// collectives inherit the paper's bandwidth aggregation for free, with no
// special-cased path anywhere below this layer.
//
// Non-blocking by design: every operation returns a CollHandle — a small
// state machine that posts the next round of sends/receives whenever
// try_advance() observes the previous round settling. A blocking wrapper
// exists (Communicator::wait and the bcast/reduce/... conveniences), but
// simulation tests drive N ranks from one thread, which only works with
// handles: post one op per rank, then coll::wait_all() round-robins
// advancement while pumping the shared engine.
//
// Tag discipline: the communicator carves per-instance tag streams out of
// the reserved space [core::kReservedTagBase, 0xffffffff]. Each algorithm
// owns a 0x1000-tag window and the k-th instance of an algorithm uses the
// k-th tag of its window (mod the window size), so concurrent collectives
// never cross-match as long as (a) every rank issues collectives on a
// communicator in the same order — the usual MPI rule — and (b) no more
// than 0x1000 instances of one algorithm are in flight at once.
//
// Failure semantics: a dead rail is invisible here (the rail guard fails
// over and the strategy re-splits; the collective just slows down). A dead
// *gate* (every rail lost) fails the constituent requests, which marks the
// operation failed; ranks whose own gates are healthy but whose peers died
// are released by the wait_all driver's quiescence/stall detection. A
// collective degrades or fails — it never hangs.
//
// Thread model: one thread drives a communicator and its handles
// (try_advance posts sends/receives and mutates op state). Request
// completion flags are atomics, so this composes with threaded progression:
// the app thread polls/advances while progress threads settle requests.
#pragma once

#include <cstdint>
#include <cstring>
#include <functional>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "coll/topology.hpp"
#include "core/request_group.hpp"
#include "core/session.hpp"
#include "obs/metrics.hpp"
#include "util/panic.hpp"

namespace nmad::core {
class MultiNodePlatform;
}  // namespace nmad::core

namespace nmad::coll {

class Communicator;

/// Combines one received contribution into the accumulator (both spans have
/// the same length): acc = acc OP in. Must be deterministic; the layer
/// guarantees a deterministic combine order (children in increasing
/// binomial-mask order), so floating-point reductions are reproducible for
/// a fixed (size, root) even though the order differs from a serial scan.
using CombineFn = void (*)(std::span<const std::byte> in,
                           std::span<std::byte> acc);

/// Built-in elementwise reductions for trivially copyable arithmetic types.
enum class ReduceKind : std::uint8_t { kSum, kMin, kMax, kBxor };

/// The CombineFn implementing `kind` over elements of type T. Buffers may
/// be unaligned (they are raw byte spans); elements are memcpy'd.
template <typename T>
  requires std::is_arithmetic_v<T>
[[nodiscard]] CombineFn combine_fn(ReduceKind kind) {
  auto make = []<ReduceKind K>() -> CombineFn {
    return +[](std::span<const std::byte> in, std::span<std::byte> acc) {
      for (std::size_t off = 0; off + sizeof(T) <= acc.size(); off += sizeof(T)) {
        T a, b;
        std::memcpy(&a, acc.data() + off, sizeof(T));
        std::memcpy(&b, in.data() + off, sizeof(T));
        if constexpr (K == ReduceKind::kSum) {
          a = static_cast<T>(a + b);
        } else if constexpr (K == ReduceKind::kMin) {
          a = b < a ? b : a;
        } else if constexpr (K == ReduceKind::kMax) {
          a = b > a ? b : a;
        } else {
          static_assert(K == ReduceKind::kBxor);
          if constexpr (std::is_integral_v<T>) a = static_cast<T>(a ^ b);
        }
        std::memcpy(acc.data() + off, &a, sizeof(T));
      }
    };
  };
  switch (kind) {
    case ReduceKind::kSum: return make.template operator()<ReduceKind::kSum>();
    case ReduceKind::kMin: return make.template operator()<ReduceKind::kMin>();
    case ReduceKind::kMax: return make.template operator()<ReduceKind::kMax>();
    case ReduceKind::kBxor:
      NMAD_ASSERT(std::is_integral_v<T>,
                  "bitwise xor needs an integral element type");
      return make.template operator()<ReduceKind::kBxor>();
  }
  return nullptr;
}

struct CollConfig {
  /// Large payloads are chopped into independent messages of at most this
  /// many bytes (rounded down to the element size for reductions), so
  /// intermediate tree ranks forward segment k while segment k+1 is still
  /// arriving — pipelining down the tree — and each segment is re-split
  /// across rails by the strategy. 0 disables segmentation.
  std::uint32_t segment_bytes = 256 * 1024;
  /// First tag this communicator may use; must be inside the reserved
  /// space. Give distinct bases to communicators sharing gates.
  core::Tag tag_base = core::kReservedTagBase;
  /// Compose two-level hierarchy trees (coll/topology.hpp) when the
  /// communicator carries a non-flat Topology. Off forces the flat
  /// binomial shapes even on heterogeneous worlds — the comparison arm of
  /// bench/coll_scale, and a safety hatch. All ranks must agree.
  bool hierarchical = true;
};

/// Per-communicator counters (compiled out with NMAD_METRICS=OFF).
struct CollMetrics {
  obs::Counter bcast_ops, reduce_ops, allreduce_ops, barrier_ops;
  /// Payload bytes this rank sent inside each algorithm (allreduce counts
  /// both of its phases).
  obs::Counter bcast_bytes, reduce_bytes, allreduce_bytes;
  /// Segment messages posted (sends) by collective ops on this rank.
  obs::Counter segments_sent;
  /// Communication rounds this rank executed: tree edges it sent or
  /// received on, and dissemination rounds of barriers.
  obs::Counter rounds;
  obs::Counter completed_ops, failed_ops;
  /// Depth of the last tree-shaped operation (high-water = deepest seen).
  obs::Gauge tree_depth;
  /// Hierarchy levels of the last tree-shaped operation: 1 = flat
  /// binomial, 2 = intra-domain + inter-domain composition.
  obs::Gauge levels;
  /// Tree-edge sends split by locality: within this rank's domain (fast
  /// rails) vs. across domains (slow rails). Only counted when a non-flat
  /// Topology is installed.
  obs::Counter level_intra_sends, level_inter_sends;

  void register_into(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;
};

/// Which algorithm an op accounts its traffic to (allreduce passes itself
/// down to its two phases).
enum class Algo : std::uint8_t { kBcast, kReduce, kAllreduce, kBarrier };

/// Base of every collective state machine. Created by Communicator::i*();
/// the owner polls try_advance() until done(), typically via wait_all().
class CollOp {
 public:
  virtual ~CollOp() = default;
  CollOp(const CollOp&) = delete;
  CollOp& operator=(const CollOp&) = delete;

  /// Poll: observe settled requests, post the next round(s). Returns true
  /// if any state changed. Must be called from the single driving thread.
  bool try_advance();

  /// Settled (completed or failed) — the state waits terminate on.
  [[nodiscard]] bool done() const noexcept { return done_; }
  [[nodiscard]] bool failed() const noexcept { return failed_; }
  [[nodiscard]] bool completed() const noexcept { return done_ && !failed_; }

  /// Give up: mark the op failed and stop posting. Used by the wait_all
  /// driver when the world is quiescent/stalled with the op unfinished
  /// (e.g. a peer's gate died and its messages will never arrive).
  void abort();

  /// Monotonic change counter — the driver's progress detector.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Every request this op posted so far (multi-gate group). Exposed for
  /// the blocking fallback path, which parks in Session::wait_group.
  [[nodiscard]] const core::RequestGroup& requests() const noexcept {
    return group_;
  }

  /// Internal: exclude this op from the completed/failed op counters — it
  /// is a phase of a composite (allreduce), which counts itself.
  void mark_subsidiary() noexcept { subsidiary_ = true; }

 protected:
  explicit CollOp(Communicator& comm, Algo algo) : comm_(&comm), algo_(algo) {}

  /// One poll pass; return true iff state changed. try_advance() loops
  /// until a pass changes nothing.
  virtual bool step() = 0;
  /// Extra teardown on abort() (e.g. aborting sub-ops).
  virtual void on_abort() {}

  /// Settle the op (updates completed/failed counters). Idempotent-free:
  /// callers must not finish twice (try_advance stops stepping once done).
  void finish(bool ok);

  core::SendHandle post_send(std::size_t peer, core::Tag tag,
                             std::span<const std::byte> data);
  core::RecvHandle post_recv(std::size_t peer, core::Tag tag,
                             std::span<std::byte> buffer);

  Communicator* comm_;
  Algo algo_;
  core::RequestGroup group_;

 private:
  bool done_ = false;
  bool failed_ = false;
  bool subsidiary_ = false;
  std::uint64_t version_ = 0;
};

using CollHandle = std::shared_ptr<CollOp>;

/// How wait_all() pumps the world while it round-robins try_advance().
struct DriveHooks {
  /// Serial mode: drive the shared engine until `pred` holds; return false
  /// on global quiescence with `pred` still unmet (see
  /// core::MultiNodePlatform::run_until). Unused in threaded mode.
  std::function<bool(const std::function<bool()>&)> run_until;
  /// Threaded mode: progress threads own the engine, so wait_all spins on
  /// the handles with a wall-clock stall watchdog instead.
  bool threaded = false;
  /// Threaded stall budget: if no handle advances for this long, the
  /// remaining ops are aborted (a dead peer must degrade, not hang).
  std::uint64_t stall_ms = 5000;
};

/// Drive every handle to settlement: round-robin try_advance() while
/// pumping the engine (serial) or spinning under a stall watchdog
/// (threaded). On global quiescence/stall, unfinished ops are aborted.
/// Returns true iff every op completed successfully.
bool wait_all(std::span<const CollHandle> ops, const DriveHooks& hooks);

/// Resolves a peer rank to a gate on first use — the lazy-session hook: a
/// Communicator over a lazy MultiNodePlatform starts with kNoGate entries
/// and the resolver (platform.ensure_gate) establishes the edge on demand.
using GateResolver = std::function<core::GateId(std::size_t peer)>;

class Communicator {
 public:
  /// Bind rank `rank` of an N-party group: peer_gates[r] is this session's
  /// gate towards rank r (entry [rank] is ignored; kNoGate entries are
  /// resolved on first use when a GateResolver is installed). All ranks
  /// must agree on size, config and the order they issue collectives in.
  Communicator(core::Session& session, std::vector<core::GateId> peer_gates,
               std::size_t rank, CollConfig config = {});

  [[nodiscard]] std::size_t rank() const noexcept { return rank_; }
  [[nodiscard]] std::size_t size() const noexcept { return gates_.size(); }
  [[nodiscard]] core::Session& session() noexcept { return *session_; }
  /// Gate towards `peer`, resolving (and memoizing) kNoGate entries
  /// through the installed GateResolver — the point where a lazy platform
  /// actually establishes the edge.
  [[nodiscard]] core::GateId gate_to(std::size_t peer) {
    core::GateId& g = gates_[peer];
    if (g == core::kNoGate && resolver_) g = resolver_(peer);
    return g;
  }
  [[nodiscard]] const CollConfig& config() const noexcept { return config_; }

  /// Install the lazy-edge resolver (see GateResolver).
  void set_gate_resolver(GateResolver resolver) {
    resolver_ = std::move(resolver);
  }
  /// Install the locality descriptor hierarchical trees compose over.
  /// All ranks must install the identical topology (each computes only its
  /// own TreeShape from it). Null, a flat() topology, or
  /// config.hierarchical=false keep the flat binomial shapes.
  void set_topology(std::shared_ptr<const Topology> topology) {
    NMAD_ASSERT(!topology || topology->size() == size(),
                "topology size does not match the communicator");
    topology_ = std::move(topology);
  }
  /// The installed topology when hierarchical composition is active, else
  /// nullptr (flat shapes).
  [[nodiscard]] const Topology* topology() const noexcept {
    return config_.hierarchical && topology_ && !topology_->flat()
               ? topology_.get()
               : nullptr;
  }
  /// This rank's shape in the tree rooted at `root`: the two-level
  /// hierarchy composition when a non-flat topology is active, else the
  /// flat binomial tree.
  [[nodiscard]] TreeShape tree(std::size_t root) const {
    if (const Topology* topo = topology()) {
      return hierarchy_tree(rank_, root, *topo);
    }
    return binomial_tree(rank_, root, size());
  }

  // --- non-blocking collectives -------------------------------------------
  /// Broadcast `buffer` from rank `root` to every rank. The span must stay
  /// valid (and, on non-roots, writable) until the handle settles.
  [[nodiscard]] CollHandle ibcast(std::span<std::byte> buffer, std::size_t root);

  /// Elementwise reduction to `root`: combines every rank's `contrib`
  /// (deterministic order) into `result`. `result` must be contrib-sized
  /// on the root; on other ranks it may be empty (internal scratch is
  /// used) or contrib-sized (used as scratch, cheaper). Segment boundaries
  /// are aligned to `elem_size`.
  [[nodiscard]] CollHandle ireduce(std::span<const std::byte> contrib,
                                   std::span<std::byte> result,
                                   std::size_t root, CombineFn combine,
                                   std::uint32_t elem_size = 1);

  /// Reduce-to-0 then broadcast: every rank ends with the full reduction
  /// in `result` (contrib-sized everywhere).
  [[nodiscard]] CollHandle iallreduce(std::span<const std::byte> contrib,
                                      std::span<std::byte> result,
                                      CombineFn combine,
                                      std::uint32_t elem_size = 1);

  /// Dissemination barrier: completes once every rank entered (posted its
  /// ibarrier). ceil(log2 N) rounds of zero-byte tokens.
  [[nodiscard]] CollHandle ibarrier();

  // --- typed convenience ----------------------------------------------------
  template <typename T>
    requires std::is_arithmetic_v<T>
  [[nodiscard]] CollHandle ireduce(std::span<const T> contrib,
                                   std::span<T> result, std::size_t root,
                                   ReduceKind kind) {
    return ireduce(std::as_bytes(contrib), std::as_writable_bytes(result),
                   root, combine_fn<T>(kind), sizeof(T));
  }
  template <typename T>
    requires std::is_arithmetic_v<T>
  [[nodiscard]] CollHandle iallreduce(std::span<const T> contrib,
                                      std::span<T> result, ReduceKind kind) {
    return iallreduce(std::as_bytes(contrib), std::as_writable_bytes(result),
                      combine_fn<T>(kind), sizeof(T));
  }

  // --- blocking wrappers ----------------------------------------------------
  /// Drive one handle to settlement: via the installed DriveHooks when
  /// set, else by parking in Session::wait_group between advances (works
  /// wherever Session::wait works — i.e. whenever the other ranks are
  /// concurrently making progress). Returns true iff the op completed.
  bool wait(const CollHandle& op);
  bool bcast(std::span<std::byte> buffer, std::size_t root) {
    return wait(ibcast(buffer, root));
  }
  bool reduce(std::span<const std::byte> contrib, std::span<std::byte> result,
              std::size_t root, CombineFn combine, std::uint32_t elem_size = 1) {
    return wait(ireduce(contrib, result, root, combine, elem_size));
  }
  bool allreduce(std::span<const std::byte> contrib, std::span<std::byte> result,
                 CombineFn combine, std::uint32_t elem_size = 1) {
    return wait(iallreduce(contrib, result, combine, elem_size));
  }
  bool barrier() { return wait(ibarrier()); }

  /// Install the drive hooks blocking wrappers use (see hooks_for()).
  void set_drive_hooks(DriveHooks hooks) { hooks_ = std::move(hooks); }
  [[nodiscard]] const DriveHooks& drive_hooks() const noexcept { return hooks_; }

  // --- observability --------------------------------------------------------
  [[nodiscard]] const CollMetrics& metrics() const noexcept { return metrics_; }
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix = "coll.") const {
    metrics_.register_into(registry, prefix);
  }

 private:
  friend class CollOp;
  friend class BcastOp;
  friend class ReduceOp;
  friend class AllreduceOp;
  friend class BarrierOp;

  /// Per-instance tag: the k-th instance of `algo` gets the k-th tag of
  /// the algorithm's 0x1000-tag window. `stream` distinguishes allreduce's
  /// two phases (0 = combine, 1 = distribute).
  [[nodiscard]] core::Tag next_tag(Algo algo, std::size_t stream = 0);

  core::Session* session_;
  std::vector<core::GateId> gates_;
  std::size_t rank_;
  CollConfig config_;
  std::shared_ptr<const Topology> topology_;
  GateResolver resolver_;
  DriveHooks hooks_;
  CollMetrics metrics_;
  /// Instance counters, one per tag stream (4 algorithms + allreduce's
  /// second phase).
  std::uint32_t instance_[5] = {};
};

/// Communicator for rank `rank` of a MultiNodePlatform, with drive hooks
/// matching the platform's progress mode already installed.
[[nodiscard]] Communicator make_communicator(core::MultiNodePlatform& platform,
                                             std::size_t rank,
                                             CollConfig config = {});

/// Drive hooks for a MultiNodePlatform (serial: engine pump + chaos flush;
/// threaded: stall-watchdog spinning).
[[nodiscard]] DriveHooks hooks_for(core::MultiNodePlatform& platform);

}  // namespace nmad::coll
