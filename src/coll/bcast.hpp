// Binomial-tree broadcast (and the tree/segmentation vocabulary shared by
// the tree-shaped collectives).
//
// The classic hypercube-style algorithm: rank `root` is the tree's rank 0
// (ranks are rotated so any root works); a rank with virtual rank vr has
// its parent at vr minus its lowest set bit, and its children at vr + 2^k
// for each k below that bit. ceil(log2 N) levels, so the latency grows
// logarithmically while every edge is an ordinary point-to-point message
// that the installed strategy stripes across rails.
//
// Large payloads are segmented (CollConfig::segment_bytes): each segment is
// an independent message, an interior rank forwards segment k to its
// children as soon as it arrives — while segment k+1 is still in flight —
// and segments must be forwarded in order because per-(gate, tag) matching
// is ordinal.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "coll/communicator.hpp"

namespace nmad::coll {

/// This rank's place in the binomial tree rooted at `root`.
struct TreeShape {
  /// Actual rank of the parent; kNoParent at the root.
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::size_t parent = kNoParent;
  /// Actual ranks of the children, in increasing-mask order (the
  /// deterministic combine order of reductions; broadcast iterates it in
  /// reverse so the largest subtree starts first).
  std::vector<std::size_t> children;
  /// Levels of the whole tree: ceil(log2(size)).
  std::size_t depth = 0;
};

[[nodiscard]] TreeShape binomial_tree(std::size_t rank, std::size_t root,
                                      std::size_t size);

/// (offset, length) of each segment of a `total`-byte payload. Boundaries
/// are multiples of elem_size; always at least one segment (possibly
/// zero-length) so even empty messages synchronize the tree.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> segment_bounds(
    std::size_t total, std::uint32_t segment_bytes, std::uint32_t elem_size);

class BcastOp final : public CollOp {
 public:
  BcastOp(Communicator& comm, std::span<std::byte> buffer, std::size_t root,
          core::Tag tag, Algo algo);

 private:
  bool step() override;

  TreeShape shape_;
  core::Tag tag_;
  std::vector<std::span<std::byte>> segs_;
  /// Per-segment receive from the parent (empty at the root).
  std::vector<core::RecvHandle> recvs_;
  /// Next segment to forward to the children; segments must go out in
  /// order (ordinal matching), so a straggler blocks later forwards.
  std::size_t next_forward_ = 0;
};

}  // namespace nmad::coll
