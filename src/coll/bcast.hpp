// Tree broadcast (and the segmentation vocabulary shared by the
// tree-shaped collectives).
//
// The tree shape comes from Communicator::tree(): the classic binomial
// hypercube-style algorithm on homogeneous worlds — rank `root` is the
// tree's rank 0 (ranks are rotated so any root works); a rank with virtual
// rank vr has its parent at vr minus its lowest set bit, and its children
// at vr + 2^k for each k below that bit; ceil(log2 N) levels — or the
// two-level hierarchy composition (coll/topology.hpp) when the communicator
// carries a non-flat Topology. Either way every edge is an ordinary
// point-to-point message that the installed strategy stripes across rails.
//
// Large payloads are segmented (CollConfig::segment_bytes): each segment is
// an independent message, an interior rank forwards segment k to its
// children as soon as it arrives — while segment k+1 is still in flight —
// and segments must be forwarded in order because per-(gate, tag) matching
// is ordinal.
#pragma once

#include <cstddef>
#include <span>
#include <utility>
#include <vector>

#include "coll/communicator.hpp"
#include "coll/topology.hpp"

namespace nmad::coll {

/// (offset, length) of each segment of a `total`-byte payload. Boundaries
/// are multiples of elem_size; always at least one segment (possibly
/// zero-length) so even empty messages synchronize the tree.
[[nodiscard]] std::vector<std::pair<std::size_t, std::size_t>> segment_bounds(
    std::size_t total, std::uint32_t segment_bytes, std::uint32_t elem_size);

class BcastOp final : public CollOp {
 public:
  BcastOp(Communicator& comm, std::span<std::byte> buffer, std::size_t root,
          core::Tag tag, Algo algo);

 private:
  bool step() override;

  TreeShape shape_;
  core::Tag tag_;
  std::vector<std::span<std::byte>> segs_;
  /// Per-segment receive from the parent (empty at the root).
  std::vector<core::RecvHandle> recvs_;
  /// Next segment to forward to the children; segments must go out in
  /// order (ordinal matching), so a straggler blocks later forwards.
  std::size_t next_forward_ = 0;
};

}  // namespace nmad::coll
