// Locality topology for hierarchical collectives.
//
// At 500 ranks a flat binomial tree treats every edge alike, but the rail
// sets are not alike: ranks on one host talk over fast intra-host rails
// while cross-host edges ride the slow inter-host NICs (the asymmetry the
// source paper measures between Myri-10G and slower rails). A Topology
// groups ranks into locality *domains* — same host id, or same fast-rail
// cluster when derived from the online rate estimator — and
// hierarchy_tree() composes a two-level spanning tree over it, HiCCL-style:
//
//   level 0 (intra-domain): a binomial tree over each domain's members,
//     rooted at the domain leader, riding the fast rails;
//   level 1 (inter-domain): a binomial tree over the domain *leaders*,
//     rooted at the global root's leader, so each slow cross-host edge is
//     traversed once instead of O(members) times.
//
// Leader election rule: the root rank leads its own domain; every other
// domain is led by its smallest member. The composition degenerates to the
// flat binomial tree when the topology is flat() — one domain, or all
// domains singletons — so homogeneous worlds keep today's exact shapes.
//
// Every edge of either level is an ordinary point-to-point message through
// the strategy backlog, so hierarchical collectives inherit striping,
// aggregation and rail failover unchanged.
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace nmad::coll {

/// One rank's place in a (possibly composed) collective tree.
struct TreeShape {
  /// Actual rank of the parent; kNoParent at the root.
  static constexpr std::size_t kNoParent = static_cast<std::size_t>(-1);
  std::size_t parent = kNoParent;
  /// Actual ranks of the children, in deterministic order (binomial trees:
  /// increasing-mask order — the documented combine order of reductions;
  /// broadcast iterates it in reverse so the largest/slowest subtree starts
  /// first). hierarchy_tree() appends inter-domain children *after* the
  /// intra-domain ones, so broadcast's reverse iteration starts the slow
  /// cross-domain edges before the fast local ones.
  std::vector<std::size_t> children;
  /// Levels of the whole tree: ceil(log2(size)) for a binomial tree, the
  /// sum of the per-level depths for a composed tree.
  std::size_t depth = 0;
  /// Hierarchy levels composing the tree: 1 = flat binomial, 2 =
  /// intra-domain + inter-domain.
  std::size_t levels = 1;
};

/// This rank's place in the binomial tree rooted at `root` (ranks are
/// rotated so any root works; see bcast.hpp for the algorithm).
[[nodiscard]] TreeShape binomial_tree(std::size_t rank, std::size_t root,
                                      std::size_t size);

/// One locality domain: the ranks sharing a host (or fast-rail cluster),
/// sorted ascending.
struct Domain {
  std::vector<std::size_t> members;
};

/// The per-rank hierarchy descriptor: a partition of ranks 0..size-1 into
/// locality domains. Domain ids are dense and deterministic (ordered by
/// first appearance scanning rank 0 upwards), so every rank derives the
/// identical descriptor from the identical metadata — a correctness
/// requirement, since each rank computes only its own TreeShape.
class Topology {
 public:
  /// Group by host id: host_of[r] is rank r's host (any integer labels).
  [[nodiscard]] static Topology from_hosts(
      const std::vector<std::size_t>& host_of);

  [[nodiscard]] std::size_t size() const noexcept { return domain_of_.size(); }
  /// Dense domain id of `rank`.
  [[nodiscard]] std::size_t domain_of(std::size_t rank) const;
  [[nodiscard]] const std::vector<Domain>& domains() const noexcept {
    return domains_;
  }
  /// Leader of `domain` for a collective rooted at `root`: the root itself
  /// in the root's own domain, else the domain's smallest member.
  [[nodiscard]] std::size_t leader(std::size_t domain, std::size_t root) const;
  /// A flat topology carries no exploitable locality: one domain (all
  /// edges alike) or all-singleton domains (no intra level). Collectives
  /// fall back to the flat binomial tree.
  [[nodiscard]] bool flat() const noexcept;

 private:
  std::vector<std::size_t> domain_of_;
  std::vector<Domain> domains_;
};

/// Derive host labels from a peer-rate matrix (e.g. the online rate
/// estimator's per-peer delivered MB/s): ranks joined by a "fast" link —
/// rate >= fast_fraction * the global maximum — are clustered into one
/// domain via union-find. peer_mbps must be square; entry [i][j] <= 0 means
/// no direct link. Returns dense labels suitable for Topology::from_hosts.
[[nodiscard]] std::vector<std::size_t> hosts_from_rates(
    const std::vector<std::vector<double>>& peer_mbps,
    double fast_fraction = 0.5);

/// Compose this rank's shape in the two-level hierarchy tree rooted at
/// `root` (see the file comment). Falls back to binomial_tree when the
/// topology is flat(). The edge set over all ranks is a spanning tree
/// (exactly size-1 edges), so tree-shaped collectives work unchanged.
[[nodiscard]] TreeShape hierarchy_tree(std::size_t rank, std::size_t root,
                                       const Topology& topology);

}  // namespace nmad::coll
