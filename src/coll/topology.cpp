#include "coll/topology.hpp"

#include <algorithm>
#include <bit>

#include "util/panic.hpp"

namespace nmad::coll {

TreeShape binomial_tree(std::size_t rank, std::size_t root, std::size_t size) {
  NMAD_ASSERT(size > 0 && rank < size && root < size, "bad tree parameters");
  TreeShape shape;
  shape.depth = size > 1 ? std::bit_width(size - 1) : 0;
  const std::size_t vr = (rank + size - root) % size;
  for (std::size_t mask = 1; mask < size; mask <<= 1) {
    if (vr & mask) {
      shape.parent = (vr - mask + root) % size;
      break;
    }
    if (vr + mask < size) shape.children.push_back((vr + mask + root) % size);
  }
  return shape;
}

// --- Topology ---------------------------------------------------------------

Topology Topology::from_hosts(const std::vector<std::size_t>& host_of) {
  NMAD_ASSERT(!host_of.empty(), "topology needs at least one rank");
  Topology topo;
  topo.domain_of_.resize(host_of.size());
  // Dense ids by first appearance: every rank scanning the same host list
  // derives the same domain numbering.
  std::vector<std::size_t> seen_hosts;
  for (std::size_t r = 0; r < host_of.size(); ++r) {
    const auto it =
        std::find(seen_hosts.begin(), seen_hosts.end(), host_of[r]);
    std::size_t id;
    if (it == seen_hosts.end()) {
      id = seen_hosts.size();
      seen_hosts.push_back(host_of[r]);
      topo.domains_.emplace_back();
    } else {
      id = static_cast<std::size_t>(it - seen_hosts.begin());
    }
    topo.domain_of_[r] = id;
    topo.domains_[id].members.push_back(r);  // rank order => sorted
  }
  return topo;
}

std::size_t Topology::domain_of(std::size_t rank) const {
  NMAD_ASSERT(rank < domain_of_.size(), "rank outside the topology");
  return domain_of_[rank];
}

std::size_t Topology::leader(std::size_t domain, std::size_t root) const {
  NMAD_ASSERT(domain < domains_.size(), "domain out of range");
  if (domain == domain_of(root)) return root;
  return domains_[domain].members.front();
}

bool Topology::flat() const noexcept {
  if (domains_.size() <= 1) return true;
  return std::all_of(domains_.begin(), domains_.end(), [](const Domain& d) {
    return d.members.size() == 1;
  });
}

std::vector<std::size_t> hosts_from_rates(
    const std::vector<std::vector<double>>& peer_mbps, double fast_fraction) {
  const std::size_t n = peer_mbps.size();
  NMAD_ASSERT(n > 0, "rate matrix is empty");
  for (const auto& row : peer_mbps) {
    NMAD_ASSERT(row.size() == n, "rate matrix is not square");
  }
  double max_rate = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      if (i != j) max_rate = std::max(max_rate, peer_mbps[i][j]);
    }
  }
  // Union-find over "fast" links: ranks joined by a link at or above the
  // fraction of the fastest observed rate share a domain.
  std::vector<std::size_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = i;
  auto find = [&](std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };
  const double threshold = fast_fraction * max_rate;
  if (max_rate > 0.0) {
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) {
        const double rate = std::max(peer_mbps[i][j], peer_mbps[j][i]);
        if (rate >= threshold && rate > 0.0) {
          parent[find(j)] = find(i);
        }
      }
    }
  }
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) labels[i] = find(i);
  return labels;  // from_hosts densifies by first appearance
}

// --- hierarchy composition --------------------------------------------------

TreeShape hierarchy_tree(std::size_t rank, std::size_t root,
                         const Topology& topology) {
  const std::size_t size = topology.size();
  NMAD_ASSERT(rank < size && root < size, "bad tree parameters");
  if (topology.flat()) return binomial_tree(rank, root, size);

  const std::size_t my_domain = topology.domain_of(rank);
  const std::size_t root_domain = topology.domain_of(root);
  const auto& members = topology.domains()[my_domain].members;
  const std::size_t my_leader = topology.leader(my_domain, root);

  // Intra-domain level: a binomial tree over member *indices*, rooted at
  // the leader's index, then translated back to actual ranks.
  const auto index_of = [&](std::size_t r) {
    const auto it = std::lower_bound(members.begin(), members.end(), r);
    NMAD_ASSERT(it != members.end() && *it == r, "rank missing from domain");
    return static_cast<std::size_t>(it - members.begin());
  };
  const TreeShape intra =
      binomial_tree(index_of(rank), index_of(my_leader), members.size());

  TreeShape shape;
  shape.levels = 2;
  shape.children.reserve(intra.children.size() + 4);
  for (std::size_t child_idx : intra.children) {
    shape.children.push_back(members[child_idx]);
  }

  if (rank == my_leader) {
    // Inter-domain level: a binomial tree over domain ids rooted at the
    // root's domain, with each edge carried by the domains' leaders.
    // Inter children go last so broadcast's reverse iteration starts the
    // slow cross-domain edges before the fast local fan-out.
    const TreeShape inter = binomial_tree(
        my_domain, root_domain, topology.domains().size());
    for (std::size_t child_domain : inter.children) {
      shape.children.push_back(topology.leader(child_domain, root));
    }
    if (inter.parent != TreeShape::kNoParent) {
      shape.parent = topology.leader(inter.parent, root);
    }
  } else {
    shape.parent = members[intra.parent];
  }

  // Depth of the composition: the inter level stacked on the deepest
  // intra tree (every domain finishes its local fan-out after the leader
  // relay).
  std::size_t max_members = 0;
  for (const auto& d : topology.domains()) {
    max_members = std::max(max_members, d.members.size());
  }
  const std::size_t inter_depth =
      topology.domains().size() > 1
          ? std::bit_width(topology.domains().size() - 1)
          : 0;
  const std::size_t intra_depth =
      max_members > 1 ? std::bit_width(max_members - 1) : 0;
  shape.depth = inter_depth + intra_depth;
  return shape;
}

}  // namespace nmad::coll
