#include "coll/communicator.hpp"

#include <chrono>
#include <thread>

#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/reduce.hpp"
#include "core/platform.hpp"
#include "obs/registry.hpp"
#include "util/panic.hpp"

namespace nmad::coll {

namespace {
/// Tags per algorithm stream: instance k of an algorithm uses the k-th tag
/// of its window (mod this), so up to 0x1000 instances of one algorithm
/// can be in flight before streams could cross-match.
constexpr core::Tag kTagWindow = 0x1000;
/// Streams: bcast, reduce, barrier, allreduce-combine, allreduce-distribute.
constexpr std::size_t kTagStreams = 5;
}  // namespace

// --- CollMetrics ------------------------------------------------------------

void CollMetrics::register_into(obs::MetricsRegistry& registry,
                                const std::string& prefix) const {
  registry.add(prefix + "bcast.ops", &bcast_ops);
  registry.add(prefix + "bcast.bytes", &bcast_bytes);
  registry.add(prefix + "reduce.ops", &reduce_ops);
  registry.add(prefix + "reduce.bytes", &reduce_bytes);
  registry.add(prefix + "allreduce.ops", &allreduce_ops);
  registry.add(prefix + "allreduce.bytes", &allreduce_bytes);
  registry.add(prefix + "barrier.ops", &barrier_ops);
  registry.add(prefix + "segments_sent", &segments_sent);
  registry.add(prefix + "rounds", &rounds);
  registry.add(prefix + "completed_ops", &completed_ops);
  registry.add(prefix + "failed_ops", &failed_ops);
  registry.add(prefix + "tree_depth", &tree_depth);
  registry.add(prefix + "levels", &levels);
  registry.add(prefix + "level_intra_sends", &level_intra_sends);
  registry.add(prefix + "level_inter_sends", &level_inter_sends);
}

// --- CollOp -----------------------------------------------------------------

bool CollOp::try_advance() {
  if (done_) return false;
  bool changed = false;
  while (step()) {
    changed = true;
    if (done_) break;
  }
  if (changed) ++version_;
  return changed;
}

void CollOp::abort() {
  if (done_) return;
  on_abort();
  finish(false);
  ++version_;
}

void CollOp::finish(bool ok) {
  NMAD_ASSERT(!done_, "collective op finished twice");
  done_ = true;
  failed_ = !ok;
  if (!subsidiary_) {
    (ok ? comm_->metrics_.completed_ops : comm_->metrics_.failed_ops).inc();
  }
}

core::SendHandle CollOp::post_send(std::size_t peer, core::Tag tag,
                                   std::span<const std::byte> data) {
  core::SendHandle h = comm_->session_->isend(comm_->gate_to(peer), tag, data);
  group_.add(h);
  comm_->metrics_.segments_sent.inc();
  if (const Topology* topo = comm_->topology()) {
    (topo->domain_of(peer) == topo->domain_of(comm_->rank_)
         ? comm_->metrics_.level_intra_sends
         : comm_->metrics_.level_inter_sends)
        .inc();
  }
  switch (algo_) {
    case Algo::kBcast: comm_->metrics_.bcast_bytes.inc(data.size()); break;
    case Algo::kReduce: comm_->metrics_.reduce_bytes.inc(data.size()); break;
    case Algo::kAllreduce:
      comm_->metrics_.allreduce_bytes.inc(data.size());
      break;
    case Algo::kBarrier: break;
  }
  return h;
}

core::RecvHandle CollOp::post_recv(std::size_t peer, core::Tag tag,
                                   std::span<std::byte> buffer) {
  core::RecvHandle h = comm_->session_->irecv(comm_->gate_to(peer), tag, buffer);
  group_.add(h);
  return h;
}

// --- Communicator -----------------------------------------------------------

Communicator::Communicator(core::Session& session,
                           std::vector<core::GateId> peer_gates,
                           std::size_t rank, CollConfig config)
    : session_(&session),
      gates_(std::move(peer_gates)),
      rank_(rank),
      config_(config) {
  NMAD_ASSERT(!gates_.empty(), "communicator needs at least one rank");
  NMAD_ASSERT(rank_ < gates_.size(), "rank out of range");
  NMAD_ASSERT(config_.tag_base >= core::kReservedTagBase,
              "collective tags must live in the reserved tag space");
  NMAD_ASSERT(config_.tag_base <=
                  core::Tag{0xffffffff} - kTagStreams * kTagWindow,
              "tag_base leaves no room for the collective tag windows");
}

core::Tag Communicator::next_tag(Algo algo, std::size_t stream) {
  std::size_t idx = 0;
  switch (algo) {
    case Algo::kBcast: idx = 0; break;
    case Algo::kReduce: idx = 1; break;
    case Algo::kBarrier: idx = 2; break;
    case Algo::kAllreduce: idx = 3 + stream; break;
  }
  const std::uint32_t instance = instance_[idx]++;
  return config_.tag_base +
         static_cast<core::Tag>(idx) * kTagWindow + (instance % kTagWindow);
}

CollHandle Communicator::ibcast(std::span<std::byte> buffer, std::size_t root) {
  NMAD_ASSERT(root < size(), "broadcast root out of range");
  metrics_.bcast_ops.inc();
  return std::make_shared<BcastOp>(*this, buffer, root, next_tag(Algo::kBcast),
                                   Algo::kBcast);
}

CollHandle Communicator::ireduce(std::span<const std::byte> contrib,
                                 std::span<std::byte> result, std::size_t root,
                                 CombineFn combine, std::uint32_t elem_size) {
  NMAD_ASSERT(root < size(), "reduce root out of range");
  metrics_.reduce_ops.inc();
  return std::make_shared<ReduceOp>(*this, contrib, result, root, combine,
                                    elem_size, next_tag(Algo::kReduce),
                                    Algo::kReduce);
}

CollHandle Communicator::iallreduce(std::span<const std::byte> contrib,
                                    std::span<std::byte> result,
                                    CombineFn combine, std::uint32_t elem_size) {
  metrics_.allreduce_ops.inc();
  return std::make_shared<AllreduceOp>(*this, contrib, result, combine,
                                       elem_size);
}

CollHandle Communicator::ibarrier() {
  metrics_.barrier_ops.inc();
  return std::make_shared<BarrierOp>(*this, next_tag(Algo::kBarrier));
}

bool Communicator::wait(const CollHandle& op) {
  if (hooks_.run_until != nullptr || hooks_.threaded) {
    return wait_all(std::span<const CollHandle>(&op, 1), hooks_);
  }
  // Fallback without hooks: park in the session between advances. Works
  // wherever Session::wait works — the other ranks must be progressing
  // concurrently (threaded progression, or real drivers with the peers on
  // other processes); Session's deadlock detection fires otherwise.
  while (!op->done()) {
    if (op->try_advance()) continue;
    session_->wait_group(op->requests());
    const bool advanced = op->try_advance();
    NMAD_ASSERT(advanced || op->done(),
                "collective stuck with every request settled");
  }
  return op->completed();
}

// --- drivers ----------------------------------------------------------------

bool wait_all(std::span<const CollHandle> ops, const DriveHooks& hooks) {
  auto all_done = [&] {
    bool all = true;
    for (const auto& h : ops) {
      h->try_advance();
      if (!h->done()) all = false;
    }
    return all;
  };
  auto abort_rest = [&] {
    for (const auto& h : ops) {
      if (!h->done()) h->abort();
    }
  };

  if (!hooks.threaded) {
    NMAD_ASSERT(hooks.run_until != nullptr, "serial DriveHooks needs run_until");
    if (!all_done() && !hooks.run_until(all_done) && !all_done()) {
      // Global quiescence with ops unfinished: the pattern cannot complete
      // (e.g. a peer's gate lost every rail mid-collective and this rank's
      // receives will never match). Degrade instead of hanging.
      abort_rest();
    }
  } else {
    // Progress threads own the engine; spin on the handles and reset the
    // stall deadline whenever any op changes state.
    const auto stall = std::chrono::milliseconds(hooks.stall_ms);
    auto deadline = std::chrono::steady_clock::now() + stall;
    std::uint64_t last_versions = ~std::uint64_t{0};
    while (!all_done()) {
      std::uint64_t versions = 0;
      for (const auto& h : ops) versions += h->version();
      if (versions != last_versions) {
        last_versions = versions;
        deadline = std::chrono::steady_clock::now() + stall;
      } else if (std::chrono::steady_clock::now() > deadline) {
        abort_rest();
        break;
      }
      std::this_thread::yield();
    }
  }

  bool ok = true;
  for (const auto& h : ops) ok &= h->completed();
  return ok;
}

DriveHooks hooks_for(core::MultiNodePlatform& platform) {
  DriveHooks hooks;
  if (platform.progress_mode() == core::ProgressMode::kThreaded) {
    hooks.threaded = true;
  } else {
    hooks.run_until = [&platform](const std::function<bool()>& pred) {
      return platform.run_until(pred);
    };
  }
  return hooks;
}

Communicator make_communicator(core::MultiNodePlatform& platform,
                               std::size_t rank, CollConfig config) {
  Communicator comm(platform.session(rank), platform.gates_from(rank), rank,
                    config);
  comm.set_drive_hooks(hooks_for(platform));
  if (platform.config().lazy) {
    // Lazy platform: kNoGate entries are resolved (and the edge
    // established) on first use by a collective.
    comm.set_gate_resolver([&platform, rank](std::size_t peer) {
      return platform.ensure_gate(rank, peer);
    });
  }
  if (config.hierarchical && !platform.config().hosts.empty()) {
    comm.set_topology(std::make_shared<const Topology>(
        Topology::from_hosts(platform.config().hosts)));
  }
  return comm;
}

}  // namespace nmad::coll
