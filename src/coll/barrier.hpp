// Barrier: dissemination on flat worlds, tree gather/release on
// hierarchical ones.
//
// Dissemination (the default): ceil(log2 N) rounds of zero-byte tokens. In
// round k, rank r sends to (r + 2^k) mod N and receives from (r - 2^k)
// mod N; after the last round every rank has (transitively) heard from
// every other, so leaving the barrier proves all N ranks entered it. No
// root and no fan-in hotspot — every round is one send and one receive per
// rank — but every round crosses arbitrary (mostly slow) edges.
//
// When the communicator carries a non-flat Topology, dissemination's
// all-to-all round structure would put O(N log N) tokens on the slow
// inter-domain rails. The tree barrier instead gathers zero-byte tokens up
// the hierarchy tree rooted at rank 0 (fast intra-domain edges first, one
// token per slow edge) and releases back down it: a rank leaves only after
// the root heard from everyone, which proves all N ranks entered.
#pragma once

#include <cstddef>
#include <vector>

#include "coll/communicator.hpp"
#include "coll/topology.hpp"

namespace nmad::coll {

class BarrierOp final : public CollOp {
 public:
  explicit BarrierOp(Communicator& comm, core::Tag tag);

 private:
  bool step() override;
  void post_round();
  bool tree_step();

  core::Tag tag_;
  // --- dissemination state ---
  std::size_t round_ = 0;
  std::size_t total_rounds_ = 0;
  core::SendHandle send_;
  core::RecvHandle recv_;
  std::byte token_{};
  // --- tree (hierarchical) state ---
  bool tree_mode_ = false;
  TreeShape shape_;
  /// One gather token expected from each child.
  std::vector<core::RecvHandle> gathers_;
  /// The release token from the parent (null at the root).
  core::RecvHandle release_;
  /// Gather sent up (non-root) / all gathers seen (root).
  bool up_sent_ = false;
  /// Release forwarded to the children.
  bool released_ = false;
};

}  // namespace nmad::coll
