// Dissemination barrier: ceil(log2 N) rounds of zero-byte tokens. In round
// k, rank r sends to (r + 2^k) mod N and receives from (r - 2^k) mod N;
// after the last round every rank has (transitively) heard from every
// other, so leaving the barrier proves all N ranks entered it. Unlike a
// tree barrier there is no root and no fan-in hotspot — every round is one
// send and one receive per rank.
#pragma once

#include <cstddef>

#include "coll/communicator.hpp"

namespace nmad::coll {

class BarrierOp final : public CollOp {
 public:
  explicit BarrierOp(Communicator& comm, core::Tag tag);

 private:
  bool step() override;
  void post_round();

  core::Tag tag_;
  std::size_t round_ = 0;
  std::size_t total_rounds_;
  core::SendHandle send_;
  core::RecvHandle recv_;
  std::byte token_{};
};

}  // namespace nmad::coll
