#include "coll/barrier.hpp"

#include <bit>

namespace nmad::coll {

BarrierOp::BarrierOp(Communicator& comm, core::Tag tag)
    : CollOp(comm, Algo::kBarrier),
      tag_(tag),
      total_rounds_(comm.size() > 1 ? std::bit_width(comm.size() - 1) : 0) {
  if (total_rounds_ == 0) {
    finish(true);  // single rank: trivially synchronized
    return;
  }
  post_round();
}

void BarrierOp::post_round() {
  const std::size_t n = comm_->size();
  const std::size_t dist = std::size_t{1} << round_;
  const std::size_t to = (comm_->rank() + dist) % n;
  const std::size_t from = (comm_->rank() + n - dist) % n;
  comm_->metrics_.rounds.inc();
  recv_ = post_recv(from, tag_, std::span<std::byte>(&token_, 0));
  send_ = post_send(to, tag_, {});
}

bool BarrierOp::step() {
  if (group_.any_failed()) {
    finish(false);
    return true;
  }
  if (!send_->done() || !recv_->done()) return false;
  ++round_;
  if (round_ == total_rounds_) {
    finish(true);
    return true;
  }
  post_round();
  return true;
}

}  // namespace nmad::coll
