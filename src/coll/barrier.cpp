#include "coll/barrier.hpp"

#include <bit>

namespace nmad::coll {

BarrierOp::BarrierOp(Communicator& comm, core::Tag tag)
    : CollOp(comm, Algo::kBarrier),
      tag_(tag),
      total_rounds_(comm.size() > 1 ? std::bit_width(comm.size() - 1) : 0) {
  if (comm.size() <= 1) {
    finish(true);  // single rank: trivially synchronized
    return;
  }
  if (comm.topology() != nullptr) {
    // Hierarchical world: gather/release over the composed tree rooted at
    // rank 0 — one token per slow inter-domain edge instead of
    // dissemination's O(N log N).
    tree_mode_ = true;
    shape_ = comm.tree(/*root=*/0);
    comm.metrics_.levels.set(static_cast<std::int64_t>(shape_.levels));
    comm.metrics_.rounds.inc(
        shape_.children.size() +
        (shape_.parent != TreeShape::kNoParent ? 1 : 0));
    // The parent->child direction of an edge carries only the release and
    // child->parent only the gather, so both ends can pre-post now
    // (per-(gate, tag) matching is ordinal within one direction).
    if (shape_.parent != TreeShape::kNoParent) {
      release_ = post_recv(shape_.parent, tag_, std::span<std::byte>(&token_, 0));
    }
    for (std::size_t child : shape_.children) {
      gathers_.push_back(post_recv(child, tag_, std::span<std::byte>(&token_, 0)));
    }
    if (shape_.children.empty()) {
      // Leaf: nothing to gather — announce entry immediately.
      (void)post_send(shape_.parent, tag_, {});
      up_sent_ = true;
    }
    return;
  }
  post_round();
}

void BarrierOp::post_round() {
  const std::size_t n = comm_->size();
  const std::size_t dist = std::size_t{1} << round_;
  const std::size_t to = (comm_->rank() + dist) % n;
  const std::size_t from = (comm_->rank() + n - dist) % n;
  comm_->metrics_.rounds.inc();
  recv_ = post_recv(from, tag_, std::span<std::byte>(&token_, 0));
  send_ = post_send(to, tag_, {});
}

bool BarrierOp::tree_step() {
  bool changed = false;
  if (!up_sent_) {
    for (const auto& g : gathers_) {
      if (!g->completed()) return false;
    }
    // Every subtree checked in.
    if (shape_.parent != TreeShape::kNoParent) {
      (void)post_send(shape_.parent, tag_, {});
    } else {
      // Root: all N ranks entered — release the tree.
      for (std::size_t child : shape_.children) {
        (void)post_send(child, tag_, {});
      }
      released_ = true;
    }
    up_sent_ = true;
    changed = true;
  }
  if (!released_ && release_ && release_->completed()) {
    for (std::size_t child : shape_.children) {
      (void)post_send(child, tag_, {});
    }
    released_ = true;
    changed = true;
  }
  if (released_ && group_.all_settled()) {
    finish(!group_.any_failed());
    return true;
  }
  return changed;
}

bool BarrierOp::step() {
  if (group_.any_failed()) {
    finish(false);
    return true;
  }
  if (tree_mode_) return tree_step();
  if (!send_->done() || !recv_->done()) return false;
  ++round_;
  if (round_ == total_rounds_) {
    finish(true);
    return true;
  }
  post_round();
  return true;
}

}  // namespace nmad::coll
