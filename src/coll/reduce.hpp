// Binomial-tree reduction and reduce+broadcast allreduce.
//
// Reduce inverts the broadcast tree: every rank seeds an accumulator with
// its own contribution, combines each child's partial result as it arrives
// (children in increasing-mask order — a fixed, documented combine order,
// so results are deterministic for a given (size, root)), and forwards the
// accumulated segment to its parent. Segmentation pipelines exactly like
// broadcast, but upwards: segment k travels towards the root while the
// children still compute segment k+1.
//
// Allreduce is the composition the paper's layering makes natural: a
// reduction to rank 0 followed by a broadcast from rank 0, each phase on
// its own per-instance tag stream. Every segment of both phases is a
// normal point-to-point message, striped across rails by the strategy.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "coll/bcast.hpp"
#include "coll/communicator.hpp"

namespace nmad::coll {

class ReduceOp final : public CollOp {
 public:
  ReduceOp(Communicator& comm, std::span<const std::byte> contrib,
           std::span<std::byte> result, std::size_t root, CombineFn combine,
           std::uint32_t elem_size, core::Tag tag, Algo algo);

 private:
  bool step() override;
  [[nodiscard]] std::span<std::byte> acc_seg(std::size_t s) const {
    return acc_.subspan(bounds_[s].first, bounds_[s].second);
  }

  TreeShape shape_;
  core::Tag tag_;
  CombineFn combine_;
  /// Accumulator: the caller's result span when provided, else internal.
  std::vector<std::byte> acc_storage_;
  std::span<std::byte> acc_;
  std::vector<std::pair<std::size_t, std::size_t>> bounds_;
  /// Landing buffers for the children's partials, one full-size buffer per
  /// child; child_recvs_[c][s] receives child c's segment s into it.
  std::vector<std::vector<std::byte>> child_buf_;
  std::vector<std::vector<core::RecvHandle>> child_recvs_;
  /// Per segment: how many children have been combined in (in child
  /// order — the deterministic combine order).
  std::vector<std::size_t> combined_;
  /// Next accumulated segment to send up (sends must be in order).
  std::size_t next_up_ = 0;
};

class AllreduceOp final : public CollOp {
 public:
  AllreduceOp(Communicator& comm, std::span<const std::byte> contrib,
              std::span<std::byte> result, CombineFn combine,
              std::uint32_t elem_size);

 private:
  bool step() override;
  void on_abort() override;

  std::span<std::byte> result_;
  core::Tag bcast_tag_;
  std::shared_ptr<ReduceOp> reduce_;
  /// Created when the reduce phase settles (rank 0 then owns the data).
  std::shared_ptr<BcastOp> bcast_;
};

}  // namespace nmad::coll
