// The transmit-layer driver abstraction (paper §2, bottom layer).
//
// A Driver is one rail endpoint: one NIC port connected to a peer node. It
// exposes two *tracks*, mirroring NewMadeleine's track model:
//
//  - kSmall: the eager track. Packets up to the NIC's PIO threshold are
//    pushed with Programmed I/O; also carries rendezvous control packets.
//  - kLarge: the put/get track. Bulk data moved by the NIC's DMA engine
//    after a rendezvous handshake.
//
// Each track accepts ONE outstanding send: the scheduling layer is
// explicitly notified (`on_sent`) when the track becomes idle again, and
// that notification is what triggers the optimizing strategy — the paper's
// core idea of scheduling in relationship with NIC activity rather than
// with API calls.
//
// Thread safety: drivers are NOT internally synchronized. Every entry —
// post_send, deliver upcalls, stats reads — happens with the world
// progress mutex held: on the application thread in serial mode, on the
// progress threads in threaded mode (core/progress.hpp). Implementations
// must not spawn their own threads that touch driver state without taking
// that same lock.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "netmodel/nic_profile.hpp"
#include "proto/wire.hpp"

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::drv {

enum class Track : std::uint8_t { kSmall = 0, kLarge = 1 };
inline constexpr int kTrackCount = 2;

[[nodiscard]] constexpr const char* track_name(Track t) noexcept {
  return t == Track::kSmall ? "small" : "large";
}

/// Static description of a rail, used by strategies to pick rails without
/// touching driver-specific APIs (the paper's "driver capabilities provided
/// by the underlying layer").
struct Capabilities {
  std::string name;
  /// Largest eager-track packet *payload* this driver accepts (protocol
  /// headers ride on top). Also the PIO/DMA boundary of the NIC.
  std::uint32_t max_small_packet = 8 * 1024;
  /// Host memory copy bandwidth, MB/s (cost model for aggregation copies).
  double copy_bandwidth_mbps = 2500.0;
  /// Estimated minimal one-way latency, µs (strategy rail-selection hint).
  double latency_us = 0.0;
  /// Estimated bulk bandwidth, MB/s (strategy split-ratio fallback).
  double bandwidth_mbps = 0.0;
  /// Cost of polling this rail when idle, µs (progression overhead).
  double poll_cost_us = 0.0;
};

/// An encoded packet handed to a driver, plus scheduling metadata. The
/// packet is a scatter-gather PacketView (proto/wire.hpp format): a pooled
/// header block plus payload spans referencing the request's segments in
/// place. The driver gathers the pieces at the wire boundary and releases
/// the view — recycling the pooled blocks — on local send completion.
struct SendDesc {
  Track track = Track::kSmall;
  proto::PacketView view;
  /// Extra CPU time the progression engine spent building this packet
  /// (e.g. aggregation memcpys); the driver charges it to the host CPU
  /// before the transfer starts.
  double extra_cpu_us = 0.0;
  /// Per-rail reliability envelope (proto::FrameEnvelope wire image),
  /// sealed by the RailGuard before the post. Drivers transmit it in front
  /// of the packet bytes; it is all-zero (and ignored by the receiver's
  /// custom deliver) for raw driver-level tests that bypass the guard.
  std::array<std::byte, proto::kFrameEnvelopeBytes> envelope{};

  SendDesc() = default;
  SendDesc(Track t, proto::PacketView v, double cpu = 0.0)
      : track(t), view(std::move(v)), extra_cpu_us(cpu) {}
  /// Legacy flat-buffer form (tests, pre-gather call sites).
  SendDesc(Track t, std::vector<std::byte> wire, double cpu = 0.0)
      : track(t), view(proto::PacketView::flat(std::move(wire))),
        extra_cpu_us(cpu) {}

  [[nodiscard]] std::size_t wire_size() const noexcept {
    return view.wire_size();
  }
  /// Full on-wire size: envelope + packet. This is what the receiver's
  /// DeliverFn sees; ack-only frames are envelope-only (wire_size() == 0).
  [[nodiscard]] std::size_t frame_size() const noexcept {
    return proto::kFrameEnvelopeBytes + view.wire_size();
  }
};

/// Why a rail stopped working, as reported by the driver itself.
enum class RailErrorKind : std::uint8_t {
  kSendFailed = 1,  ///< a send syscall / NIC op returned a hard error
  kRecvFailed = 2,  ///< the receive path returned a hard error
  kPeerGone = 3,    ///< the peer closed its endpoint (clean or crash)
};

[[nodiscard]] constexpr const char* rail_error_name(RailErrorKind k) noexcept {
  switch (k) {
    case RailErrorKind::kSendFailed: return "send_failed";
    case RailErrorKind::kRecvFailed: return "recv_failed";
    case RailErrorKind::kPeerGone: return "peer_gone";
  }
  return "unknown";
}

/// A recoverable rail failure event. Drivers surface these through the
/// ErrorFn upcall instead of panicking; the reliability layer reacts by
/// marking the rail dead and failing its traffic over to the survivors.
struct RailError {
  RailErrorKind kind = RailErrorKind::kSendFailed;
  Track track = Track::kSmall;
  int sys_errno = 0;    ///< errno for socket-backed drivers, 0 otherwise
  std::string detail;   ///< human-readable context for logs
};

class Driver {
 public:
  using Callback = std::function<void()>;
  /// Upcall invoked on the receiving side with the track and a view of the
  /// raw encoded packet bytes. The span is NOT owning: it points into the
  /// driver's receive storage and is valid only for the duration of the
  /// upcall — consumers must decode (and copy what they keep) before
  /// returning.
  using DeliverFn = std::function<void(Track, std::span<const std::byte>)>;
  /// Upcall invoked when the driver hits a non-recoverable I/O failure on
  /// this rail. After reporting, the failed track (or the whole endpoint,
  /// for kPeerGone) goes permanently non-idle: post_send must not be called
  /// again and no further delivers occur. The rail is expected to be
  /// declared dead by the reliability layer; the process keeps running.
  using ErrorFn = std::function<void(const RailError&)>;

  virtual ~Driver() = default;

  [[nodiscard]] virtual const Capabilities& caps() const noexcept = 0;

  /// True when `post_send` may be called for this track.
  [[nodiscard]] virtual bool send_idle(Track track) const noexcept = 0;

  /// Hand one packet to the NIC. Requires send_idle(track). `on_sent`
  /// fires when the track is free again (local completion).
  virtual void post_send(SendDesc desc, Callback on_sent) = 0;

  /// Install the receive upcall (set once, by the scheduling layer).
  virtual void set_deliver(DeliverFn deliver) = 0;

  /// Install the rail-failure upcall. Optional: drivers that cannot fail
  /// (pure simulation) keep the default no-op. Without a handler installed,
  /// a real driver that hits an error still must not crash — it parks the
  /// failed track and drops the event.
  virtual void set_error(ErrorFn on_error) { (void)on_error; }

  /// Drive I/O for drivers that need active progression (e.g. sockets).
  /// Returns true if any work was performed. Simulated drivers are pumped
  /// by the event engine and return false.
  virtual bool progress() { return false; }

  /// Attempt to re-establish a failed endpoint so the reliability layer can
  /// run its reconnect handshake: un-park failed tracks, re-open sockets,
  /// clear kill switches. Returns true when the endpoint is ready to carry
  /// frames again (the handshake still decides whether the *rail* is
  /// usable). Default: nothing to re-establish, revival trivially succeeds
  /// — right for simulated drivers whose faults live in a chaos wrapper.
  virtual bool revive() { return true; }

  /// Register this driver's own counters (NIC-level transfer and polling
  /// stats) under `prefix` — the scheduling layer calls this for each rail
  /// so driver internals appear in the same metrics tree as the rail
  /// counters. Default: nothing to expose.
  virtual void register_metrics(obs::MetricsRegistry& registry,
                                const std::string& prefix) const {
    (void)registry;
    (void)prefix;
  }

  Driver() = default;
  Driver(const Driver&) = delete;
  Driver& operator=(const Driver&) = delete;
};

}  // namespace nmad::drv
