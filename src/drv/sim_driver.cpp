#include "drv/sim_driver.hpp"

#include <algorithm>
#include "util/fmt.hpp"
#include <utility>

#include "obs/registry.hpp"
#include "util/panic.hpp"

namespace nmad::drv {

SimDriver::SimDriver(SimWorld& world, NodeId node, netmodel::NicProfile profile,
                     sim::ConstraintId tx_link)
    : world_(world), node_(node), profile_(std::move(profile)), tx_link_(tx_link) {
  caps_.name = profile_.name;
  caps_.max_small_packet = profile_.pio_threshold;
  caps_.copy_bandwidth_mbps = profile_.copy_bandwidth_mbps;
  caps_.latency_us = profile_.min_latency_us();
  caps_.bandwidth_mbps = profile_.dma_bandwidth_mbps;
  caps_.poll_cost_us = profile_.poll_cost_us;
}

bool SimDriver::send_idle(Track track) const noexcept {
  return !busy_[static_cast<std::size_t>(track)];
}

void SimDriver::set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

void SimDriver::register_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.add_raw(prefix + "eager_packets", &stats_.eager_packets);
  registry.add_raw(prefix + "eager_bytes", &stats_.eager_bytes);
  registry.add_raw(prefix + "dma_packets", &stats_.dma_packets);
  registry.add_raw(prefix + "dma_bytes", &stats_.dma_bytes);
  registry.add_raw(prefix + "delivered_packets", &stats_.delivered_packets);
  registry.add_raw(prefix + "polls", &stats_.polls);
}

void SimDriver::post_send(SendDesc desc, Callback on_sent) {
  NMAD_ASSERT(send_idle(desc.track), "post_send on busy track");
  // wire_size() == 0 is legal: an ack-only frame is just the envelope.
  busy_[static_cast<std::size_t>(desc.track)] = true;
  if (desc.track == Track::kSmall) {
    // max_small_packet caps the *payload*; allow protocol headers on top
    // (generously: aggregated packets carry one SegHeader per segment).
    NMAD_ASSERT(desc.wire_size() <= caps_.max_small_packet + 4096,
                "eager packet exceeds small-track limit");
    send_eager(std::move(desc), std::move(on_sent));
  } else {
    send_dma(std::move(desc), std::move(on_sent));
  }
}

void SimDriver::send_eager(SendDesc desc, Callback on_sent) {
  auto& engine = world_.engine();
  const std::size_t wire_bytes = desc.wire_size();
  stats_.eager_packets += 1;
  stats_.eager_bytes += wire_bytes;

  // PIO: the CPU is held for setup + packet building + the host->NIC copy.
  const sim::TimeNs cpu_time =
      sim::us_to_ns(profile_.send_overhead_us + desc.extra_cpu_us) +
      sim::transfer_ns(wire_bytes, profile_.pio_bandwidth_mbps);

  world_.trace().record(engine.now(), "pio.start",
                        util::sformat("%s %zuB", profile_.name.c_str(), wire_bytes));

  // Gather the scatter-gather view into the transit buffer now, while the
  // request's segments are guaranteed alive (completion has not fired).
  // This models the NIC reading host memory during the PIO injection — it
  // is the simulated wire, not a host-side staging copy, so it is not
  // charged to bytes_copied. Gathering here also lets the pooled header
  // block recycle as soon as this frame leaves post_send. The reliability
  // envelope rides in front of the packet; like real NIC hardware framing
  // it is excluded from the calibrated PIO timing and byte stats above.
  auto wire = std::make_shared<std::vector<std::byte>>();
  wire->reserve(desc.frame_size());
  wire->insert(wire->end(), desc.envelope.begin(), desc.envelope.end());
  desc.view.gather_into(*wire);
  desc.view.reset();

  const sim::TimeNs cpu_done = world_.cpu(node_).acquire(
      cpu_time, [this, on_sent = std::move(on_sent)]() mutable {
        // The NIC accepted the packet: the track can take the next one.
        busy_[static_cast<std::size_t>(Track::kSmall)] = false;
        world_.trace().record(world_.engine().now(), "pio.done", profile_.name);
        if (on_sent) on_sent();
      });

  // Wire transit: constant hardware latency after injection. Delivery on
  // the eager track is FIFO per link direction.
  sim::TimeNs delivery = cpu_done + sim::us_to_ns(profile_.wire_latency_us);
  delivery = std::max(delivery, last_eager_delivery_);
  last_eager_delivery_ = delivery;
  engine.schedule_at(delivery, [this, wire]() mutable {
    peer_->arrive(Track::kSmall, std::move(*wire));
  });
}

void SimDriver::send_dma(SendDesc desc, Callback on_sent) {
  auto& engine = world_.engine();
  const std::size_t wire_bytes = desc.wire_size();
  stats_.dma_packets += 1;
  stats_.dma_bytes += wire_bytes;

  // The CPU only programs the descriptor (plus any packing work); the
  // transfer itself runs on the NIC's DMA engine.
  const sim::TimeNs cpu_time =
      sim::us_to_ns(profile_.dma_setup_us + desc.extra_cpu_us);

  // Gather into the transit buffer at post time (the DMA engine reads the
  // chunk's user memory directly; the copy below is the simulated wire,
  // not a host-side copy — see send_eager). The view's pooled blocks are
  // recycled immediately. The envelope is NIC framing: carried in front of
  // the packet but excluded from the modeled flow size and byte stats.
  auto wire = std::make_shared<std::vector<std::byte>>();
  wire->reserve(desc.frame_size());
  wire->insert(wire->end(), desc.envelope.begin(), desc.envelope.end());
  desc.view.gather_into(*wire);
  desc.view.reset();

  world_.trace().record(engine.now(), "dma.program",
                        util::sformat("%s %zuB", profile_.name.c_str(), wire_bytes));

  world_.cpu(node_).acquire(cpu_time, [this, wire, wire_bytes,
                                       on_sent = std::move(on_sent)]() mutable {
    // DMA engine spin-up, then a fluid flow across link + both buses.
    world_.engine().schedule(
        sim::us_to_ns(profile_.dma_start_us),
        [this, wire, wire_bytes, on_sent = std::move(on_sent)]() mutable {
          world_.trace().record(world_.engine().now(), "dma.start",
                                util::sformat("%s %zuB", profile_.name.c_str(), wire_bytes));
          const std::vector<sim::ConstraintId> constraints{
              tx_link_, world_.bus(node_), world_.bus(peer_->node_)};
          world_.net().start_flow(
              wire_bytes, constraints,
              [this, wire, on_sent = std::move(on_sent)]() mutable {
                busy_[static_cast<std::size_t>(Track::kLarge)] = false;
                world_.trace().record(world_.engine().now(), "dma.done",
                                      profile_.name);
                if (on_sent) on_sent();
                // Last byte hits the remote NIC one wire latency later.
                world_.engine().schedule(
                    sim::us_to_ns(profile_.wire_latency_us), [this, wire]() mutable {
                      peer_->arrive(Track::kLarge, std::move(*wire));
                    });
              });
        });
  });
}

void SimDriver::arrive(Track track, std::vector<std::byte> wire) {
  // Receive-side host processing: per-packet overhead plus the progression
  // engine's cost of having polled the node's other rails. Each sibling
  // rail is charged one poll — the counter behind the Fig. 6 gap.
  for (SimDriver* rail : world_.rails(node_)) {
    if (rail != this) rail->stats_.polls += 1;
  }
  const sim::TimeNs penalty = world_.poll_penalty(node_, this);
  const sim::TimeNs recv_cost = sim::us_to_ns(profile_.recv_overhead_us) + penalty;
  auto buf = std::make_shared<std::vector<std::byte>>(std::move(wire));
  world_.engine().schedule(recv_cost, [this, track, buf]() mutable {
    stats_.delivered_packets += 1;
    world_.trace().record(world_.engine().now(), "deliver",
                          util::sformat("%s %s %zuB", profile_.name.c_str(),
                                      track_name(track), buf->size()));
    NMAD_ASSERT(deliver_ != nullptr, "packet arrived with no deliver upcall");
    // Non-owning delivery: `buf` stays alive for the duration of the
    // upcall (DeliverFn contract).
    deliver_(track, std::span<const std::byte>(*buf));
  });
}

}  // namespace nmad::drv
