#include "drv/tcp_driver.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/registry.hpp"
#include "util/fmt.hpp"
#include "util/panic.hpp"

namespace nmad::drv {

namespace {

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  NMAD_ASSERT(flags >= 0, "fcntl(F_GETFL) failed");
  NMAD_ASSERT(::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
              "fcntl(F_SETFL, O_NONBLOCK) failed");
}

void set_nodelay(int fd) {
  int one = 1;
  // Best effort: socketpairs (AF_UNIX) reject TCP options; that is fine.
  (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Capabilities tcp_caps() {
  Capabilities caps;
  caps.name = "tcp";
  caps.max_small_packet = 32 * 1024;
  caps.latency_us = 30.0;       // strategy hints only; real time rules here
  caps.bandwidth_mbps = 110.0;
  caps.poll_cost_us = 0.0;
  caps.copy_bandwidth_mbps = 5000.0;
  return caps;
}

std::uint32_t read_frame_len(const std::vector<std::byte>& in, std::size_t off) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i) {
    v = (v << 8) |
        std::to_integer<std::uint32_t>(in[off + static_cast<std::size_t>(i)]);
  }
  return v;
}

/// Dial both track sockets to `addr`, retrying each connect up to
/// `attempts` times (10 ms apart). Returns {-1, -1} on failure with
/// nothing leaked.
std::pair<int, int> dial_pair(const sockaddr_in& addr, int attempts) {
  int fds[2] = {-1, -1};
  for (int& fd : fds) {
    fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    int rc = -1;
    for (int attempt = 0; attempt < attempts; ++attempt) {
      rc = ::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                     sizeof(addr));
      if (rc == 0) break;
      if (attempt + 1 < attempts) ::usleep(10 * 1000);
    }
    if (rc != 0) {
      ::close(fd);
      fd = -1;
      break;
    }
  }
  if (fds[0] < 0 || fds[1] < 0) {
    if (fds[0] >= 0) ::close(fds[0]);
    return {-1, -1};
  }
  return {fds[0], fds[1]};
}

}  // namespace

TcpDriver::TcpDriver(int fd_small, int fd_large) : caps_(tcp_caps()) {
  tracks_[0].fd = fd_small;
  tracks_[1].fd = fd_large;
  for (auto& ts : tracks_) {
    set_nonblocking(ts.fd);
    set_nodelay(ts.fd);
  }
}

TcpDriver::~TcpDriver() {
  for (auto& ts : tracks_) {
    if (ts.fd >= 0) ::close(ts.fd);
  }
}

std::pair<std::unique_ptr<TcpDriver>, std::unique_ptr<TcpDriver>>
TcpDriver::create_pair() {
  int small[2];
  int large[2];
  NMAD_ASSERT(::socketpair(AF_UNIX, SOCK_STREAM, 0, small) == 0,
              "socketpair(small) failed");
  NMAD_ASSERT(::socketpair(AF_UNIX, SOCK_STREAM, 0, large) == 0,
              "socketpair(large) failed");
  auto a = std::unique_ptr<TcpDriver>(new TcpDriver(small[0], large[0]));
  auto b = std::unique_ptr<TcpDriver>(new TcpDriver(small[1], large[1]));
  return {std::move(a), std::move(b)};
}

util::Expected<std::unique_ptr<TcpDriver>> TcpDriver::listen_one(std::uint16_t port) {
  const int listener = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listener < 0) return util::make_error("socket() failed");
  int one = 1;
  ::setsockopt(listener, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(listener);
    return util::make_error(util::sformat("bind(%u) failed: %s", port,
                                          std::strerror(errno)));
  }
  if (::listen(listener, 2) != 0) {
    ::close(listener);
    return util::make_error("listen() failed");
  }
  // Track sockets accepted in order: small first, then large.
  const int fd_small = ::accept(listener, nullptr, nullptr);
  const int fd_large = ::accept(listener, nullptr, nullptr);
  ::close(listener);
  if (fd_small < 0 || fd_large < 0) {
    if (fd_small >= 0) ::close(fd_small);
    return util::make_error("accept() failed");
  }
  return std::unique_ptr<TcpDriver>(new TcpDriver(fd_small, fd_large));
}

util::Expected<std::unique_ptr<TcpDriver>> TcpDriver::connect_to(
    const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return util::make_error(util::sformat("bad address '%s'", host.c_str()));
  }
  // Retry briefly: the listener may still be coming up.
  const auto [fd_small, fd_large] = dial_pair(addr, 200);
  if (fd_small < 0) {
    return util::make_error(util::sformat("connect(%s:%u) failed: %s",
                                          host.c_str(), port,
                                          std::strerror(errno)));
  }
  auto drv = std::unique_ptr<TcpDriver>(new TcpDriver(fd_small, fd_large));
  // The dialing side can always re-establish: one quick re-dial per revive
  // attempt (the reliability layer's reconnect backoff paces the calls).
  drv->set_reconnector([addr] { return dial_pair(addr, 1); });
  return drv;
}

bool TcpDriver::revive() {
  if (!tracks_[0].failed && !tracks_[1].failed) return true;
  if (!reconnector_) return false;
  const auto now = std::chrono::steady_clock::now();
  if (now < next_reconnect_attempt_) return false;
  const auto [fd_small, fd_large] = reconnector_();
  if (fd_small < 0 || fd_large < 0) {
    if (fd_small >= 0) ::close(fd_small);
    if (fd_large >= 0) ::close(fd_large);
    next_reconnect_attempt_ = now + reconnect_backoff_;
    reconnect_backoff_ =
        std::min(reconnect_backoff_ * 2, std::chrono::milliseconds(2000));
    return false;
  }
  const int fresh[kTrackCount] = {fd_small, fd_large};
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    TrackState& ts = tracks_[i];
    if (ts.fd >= 0) ::close(ts.fd);
    ts.fd = fresh[i];
    set_nonblocking(ts.fd);
    set_nodelay(ts.fd);
    // Both directions restart from nothing: the in-flight frame died with
    // the old socket (the guard requeued its retained copy) and stale
    // inbound bytes belong to the fenced epoch anyway.
    ts.busy = false;
    ts.out = SendDesc{};
    ts.out_off = 0;
    ts.out_total = 0;
    ts.on_sent = nullptr;
    ts.in.clear();
    ts.in_off = 0;
    ts.failed = false;
  }
  reconnect_backoff_ = std::chrono::milliseconds(50);
  next_reconnect_attempt_ = {};
  stats_.reconnects += 1;
  return true;
}

bool TcpDriver::send_idle(Track track) const noexcept {
  const TrackState& ts = tracks_[static_cast<std::size_t>(track)];
  return !ts.busy && !ts.failed;
}

void TcpDriver::set_deliver(DeliverFn deliver) { deliver_ = std::move(deliver); }

void TcpDriver::set_error(ErrorFn on_error) { on_error_ = std::move(on_error); }

void TcpDriver::fail(Track track, RailErrorKind kind, int sys_errno,
                     const char* detail) {
  TrackState& ts = tracks_[static_cast<std::size_t>(track)];
  if (ts.failed) return;
  ts.failed = true;
  // Drop the in-flight frame: its bytes can no longer reach the peer. The
  // reliability layer re-posts retained packets on a surviving rail, so
  // releasing the view here is safe (it holds an alias, not the original).
  ts.busy = false;
  ts.out = SendDesc{};
  ts.out_off = 0;
  ts.out_total = 0;
  ts.on_sent = nullptr;
  stats_.rail_errors += 1;
  if (on_error_) {
    RailError err;
    err.kind = kind;
    err.track = track;
    err.sys_errno = sys_errno;
    err.detail = detail;
    on_error_(err);
  }
}

void TcpDriver::post_send(SendDesc desc, Callback on_sent) {
  TrackState& ts = tracks_[static_cast<std::size_t>(desc.track)];
  NMAD_ASSERT(!ts.busy, "post_send on busy TCP track");
  NMAD_ASSERT(!ts.failed, "post_send on failed TCP track");
  // The on-wire frame is envelope + packet; the length prefix covers both.
  const std::size_t frame_size = desc.frame_size();
  NMAD_ASSERT(frame_size <= 0xffffffffu, "frame too large");

  ts.busy = true;
  ts.out = std::move(desc);
  ts.out_off = 0;
  ts.out_total = 4 + frame_size;
  for (int i = 0; i < 4; ++i) {
    ts.frame_len[static_cast<std::size_t>(i)] =
        std::byte((frame_size >> (8 * i)) & 0xff);
  }
  ts.on_sent = std::move(on_sent);
  stats_.packets_sent += 1;
  stats_.bytes_sent += frame_size;
  // Kick the write immediately; completion is reported from progress() so
  // the on_sent upcall never runs inside post_send (Driver contract).
}

bool TcpDriver::flush_writes(Track track, TrackState& ts) {
  if (!ts.busy || ts.failed) return false;
  bool worked = false;
  while (ts.out_off < ts.out_total) {
    // Gather straight from the PacketView: length prefix, header block and
    // payload spans as separate iovecs (no flattening copy). Rebuilt per
    // attempt because a short write can stop mid-iovec.
    ts.iov.clear();
    std::size_t skip = ts.out_off;
    auto add = [&](const std::byte* p, std::size_t n) {
      if (n == 0) return;
      if (skip >= n) {
        skip -= n;
        return;
      }
      p += skip;
      n -= skip;
      skip = 0;
      ts.iov.push_back(iovec{const_cast<std::byte*>(p), n});
    };
    add(ts.frame_len.data(), ts.frame_len.size());
    add(ts.out.envelope.data(), ts.out.envelope.size());
    const auto head = ts.out.view.head();
    add(head.data(), head.size());
    for (const auto& s : ts.out.view.payload_spans()) add(s.data(), s.size());

    msghdr msg{};
    msg.msg_iov = ts.iov.data();
    msg.msg_iovlen = ts.iov.size();
    // sendmsg rather than writev: the gather semantics are identical but
    // writev cannot pass MSG_NOSIGNAL.
    const ssize_t n = ::sendmsg(ts.fd, &msg, MSG_NOSIGNAL);
    if (n > 0) {
      ts.out_off += static_cast<std::size_t>(n);
      worked = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return worked;
    // Hard send failure (EPIPE/ECONNRESET when the peer died, or any other
    // socket error): park the track and surface a recoverable RailError
    // instead of panicking — the reliability layer fails over.
    const RailErrorKind kind = (errno == EPIPE || errno == ECONNRESET)
                                   ? RailErrorKind::kPeerGone
                                   : RailErrorKind::kSendFailed;
    fail(track, kind, errno, "TCP send failed");
    return true;
  }
  // Frame fully handed to the kernel: release the view (recycling its
  // pooled blocks — the payload spans are not read past this point), then
  // report the track idle.
  ts.busy = false;
  ts.out = SendDesc{};
  ts.out_off = 0;
  ts.out_total = 0;
  Callback cb = std::move(ts.on_sent);
  ts.on_sent = nullptr;
  if (cb) cb();
  return true;
}

bool TcpDriver::drain_reads(Track track, TrackState& ts) {
  if (ts.failed) return false;
  bool worked = false;
  bool peer_gone = false;
  bool recv_failed = false;
  int recv_errno = 0;
  std::byte buf[64 * 1024];
  for (;;) {
    const ssize_t n = ::recv(ts.fd, buf, sizeof(buf), 0);
    if (n > 0) {
      ts.in.insert(ts.in.end(), buf, buf + n);
      worked = true;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n == 0) {
      // Peer closed its end (clean exit or crash). Deliver the complete
      // frames already buffered, then park the track with peer_gone.
      peer_gone = true;
      break;
    }
    recv_failed = true;
    recv_errno = errno;
    break;
  }
  // Deliver every complete frame in place: spans into ts.in, no per-frame
  // vector. Safe against re-entrancy because deliver upcalls post sends
  // (touching `out`) but never recurse into progress()/drain_reads.
  while (ts.in.size() - ts.in_off >= 4) {
    const std::uint32_t len = read_frame_len(ts.in, ts.in_off);
    if (ts.in.size() - ts.in_off < 4 + static_cast<std::size_t>(len)) break;
    const std::span<const std::byte> frame(ts.in.data() + ts.in_off + 4, len);
    ts.in_off += 4 + static_cast<std::size_t>(len);
    stats_.packets_received += 1;
    stats_.bytes_received += len;
    NMAD_ASSERT(deliver_ != nullptr, "TCP frame arrived with no deliver upcall");
    deliver_(track, frame);
    worked = true;
  }
  // Compact the consumed prefix once per drain (not once per frame).
  if (ts.in_off > 0) {
    ts.in.erase(ts.in.begin(),
                ts.in.begin() + static_cast<std::ptrdiff_t>(ts.in_off));
    ts.in_off = 0;
  }
  if (peer_gone) {
    fail(track, RailErrorKind::kPeerGone, 0, "peer closed connection");
    worked = true;
  } else if (recv_failed) {
    fail(track, RailErrorKind::kRecvFailed, recv_errno, "TCP recv failed");
    worked = true;
  }
  return worked;
}

bool TcpDriver::progress() {
  stats_.progress_polls += 1;
  bool worked = false;
  for (std::size_t i = 0; i < tracks_.size(); ++i) {
    worked |= flush_writes(static_cast<Track>(i), tracks_[i]);
    worked |= drain_reads(static_cast<Track>(i), tracks_[i]);
  }
  return worked;
}

void TcpDriver::register_metrics(obs::MetricsRegistry& registry,
                                 const std::string& prefix) const {
  registry.add_raw(prefix + "packets_sent", &stats_.packets_sent);
  registry.add_raw(prefix + "bytes_sent", &stats_.bytes_sent);
  registry.add_raw(prefix + "packets_received", &stats_.packets_received);
  registry.add_raw(prefix + "bytes_received", &stats_.bytes_received);
  registry.add_raw(prefix + "polls", &stats_.progress_polls);
  registry.add_raw(prefix + "rail_errors", &stats_.rail_errors);
  registry.add_raw(prefix + "reconnects", &stats_.reconnects);
}

}  // namespace nmad::drv
