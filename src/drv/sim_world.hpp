// The simulated two-sided platform: nodes (CPU + I/O bus) connected by
// point-to-point NIC links, all advancing on one discrete-event engine.
//
// This substitutes for the paper's physical testbed (two dual-core Opteron
// boxes with a Myri-10G NIC and a Quadrics QM500 NIC each); see DESIGN.md
// §2 for the substitution argument.
#pragma once

#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "netmodel/nic_profile.hpp"
#include "sim/engine.hpp"
#include "sim/fair_share.hpp"
#include "sim/serial_resource.hpp"
#include "sim/trace.hpp"

namespace nmad::drv {

class SimDriver;

struct NodeId {
  std::uint32_t value = 0;
  friend bool operator==(NodeId, NodeId) = default;
};

class SimWorld {
 public:
  SimWorld();
  ~SimWorld();
  SimWorld(const SimWorld&) = delete;
  SimWorld& operator=(const SimWorld&) = delete;

  /// Add a host. The host's CPU serializes PIO transfers (pio_cores
  /// servers) and its I/O bus is a shared bandwidth constraint crossed by
  /// every DMA flow entering or leaving the node.
  NodeId add_node(const netmodel::HostProfile& host);

  /// Connect `a` and `b` with one NIC pair of the given technology.
  /// Returns the two endpoints (first belongs to `a`). The SimWorld owns
  /// the drivers; pointers stay valid for the world's lifetime.
  std::pair<SimDriver*, SimDriver*> add_link(NodeId a, NodeId b,
                                             const netmodel::NicProfile& nic);

  [[nodiscard]] sim::Engine& engine() noexcept { return engine_; }

  /// The world progress lock for threaded progression (core/progress.hpp):
  /// any thread stepping the engine or entering a scheduler attached to
  /// this world must hold it. One lock for the whole world — engine events
  /// cross sessions (a send completion on node A schedules a delivery into
  /// node B's scheduler), so per-session locking cannot contain them.
  /// Serial mode never touches it. Lock order: progress_mutex() first,
  /// then the engine's internal queue mutex (a leaf, taken by
  /// schedule/cancel under any caller's locks).
  [[nodiscard]] std::mutex& progress_mutex() noexcept { return progress_mutex_; }
  [[nodiscard]] sim::FairShareNet& net() noexcept { return net_; }
  [[nodiscard]] sim::Trace& trace() noexcept { return trace_; }
  [[nodiscard]] sim::TimeNs now() const noexcept { return engine_.now(); }

  [[nodiscard]] sim::SerialResource& cpu(NodeId node);
  [[nodiscard]] sim::ConstraintId bus(NodeId node) const;

  /// Progression-poll penalty paid when a packet is delivered on `to_rail`
  /// of `node`: the engine polled every other rail of the node first
  /// (paper §3.3: "this overhead is mainly due to a polling operation on
  /// the Myri-10G NIC").
  [[nodiscard]] sim::TimeNs poll_penalty(NodeId node, const SimDriver* to_rail) const;

  /// All rail endpoints attached to a node.
  [[nodiscard]] const std::vector<SimDriver*>& rails(NodeId node) const;

 private:
  friend class SimDriver;

  struct Node {
    std::string name;
    std::unique_ptr<sim::SerialResource> cpu;
    sim::ConstraintId bus;
    std::vector<SimDriver*> rails;
  };

  sim::Engine engine_;
  std::mutex progress_mutex_;
  sim::FairShareNet net_;
  sim::Trace trace_;
  std::vector<Node> nodes_;
  std::vector<std::unique_ptr<SimDriver>> drivers_;
};

}  // namespace nmad::drv
