#include "drv/chaos_driver.hpp"

#include <algorithm>
#include <utility>

#include "obs/registry.hpp"
#include "util/panic.hpp"

namespace nmad::drv {

ChaosDriver::ChaosDriver(Driver& inner, std::uint64_t seed, ChaosConfig cfg)
    : inner_(&inner),
      rng_(seed),
      flap_rng_(seed ^ 0x9e3779b97f4a7c15ULL),
      cfg_(std::move(cfg)) {
  NMAD_ASSERT(cfg_.window >= 1, "chaos window must be >= 1");
  NMAD_ASSERT(!cfg_.flap.enabled || cfg_.clock != nullptr,
              "flap windows need a chaos clock");
  NMAD_ASSERT(!cfg_.flap.enabled ||
                  (cfg_.flap.up_ns > 0 && cfg_.flap.down_ns > 0),
              "flap windows must have positive lengths");
}

ChaosDriver::ChaosDriver(Driver& inner, std::uint64_t seed, std::size_t window)
    : ChaosDriver(inner, seed, ChaosConfig::uniform(FaultProfile{}, window)) {}

ChaosDriver::~ChaosDriver() {
  // Stragglers held past teardown would reference freed pool blocks on the
  // next access; push them through the upcall now (which is a guarded no-op
  // once the scheduler is gone) and insist the buffer really drained.
  flush();
  NMAD_ASSERT(pending_.empty(), "chaos driver destroyed with frames in flight");
}

void ChaosDriver::post_send(SendDesc desc, Callback on_sent) {
  if (killed_) {
    // A dead NIC port: the frame vanishes and local completion never
    // fires. Callers are expected to have checked send_idle() (false once
    // killed), but a post raced against kill() must not crash.
    stats_.swallowed_sends += 1;
    (void)desc;
    (void)on_sent;
    return;
  }
  inner_->post_send(std::move(desc), std::move(on_sent));
}

void ChaosDriver::set_deliver(DeliverFn deliver) {
  deliver_ = std::move(deliver);
  inner_->set_deliver([this](Track track, std::span<const std::byte> wire) {
    on_inner_deliver(track, wire);
  });
}

void ChaosDriver::on_inner_deliver(Track track, std::span<const std::byte> wire) {
  stats_.frames_seen += 1;
  if (killed_) {
    stats_.discarded_recvs += 1;
    return;
  }
  if (flap_down_now()) {
    // Receive-side blackout: the frame vanishes on the wire. Sends keep
    // completing locally so the tracks never wedge — the peers only see
    // silence, which is what the keepalive/retransmit machinery probes.
    stats_.flap_drops += 1;
    return;
  }
  const FaultProfile& p = cfg_.track[static_cast<std::size_t>(track)];
  if (p.drop > 0.0 && rng_.next_double() < p.drop) {
    stats_.drops += 1;
    return;
  }
  Held held{track, std::vector<std::byte>(wire.begin(), wire.end()), 0};
  if (p.corrupt > 0.0 && !held.wire.empty() &&
      rng_.next_double() < p.corrupt) {
    // Flip one random bit in one random byte: the classic single-event
    // upset the CRC must catch.
    const std::size_t at = rng_.next_below(held.wire.size());
    held.wire[at] ^= std::byte(1u << rng_.next_below(8));
    stats_.corruptions += 1;
  }
  if (p.delay > 0.0 && rng_.next_double() < p.delay) {
    held.delay_rounds = 1;
    stats_.delays += 1;
  }
  if (p.duplicate > 0.0 && rng_.next_double() < p.duplicate) {
    pending_.push_back(Held{held.track, held.wire, held.delay_rounds});
    stats_.duplicates += 1;
  }
  pending_.push_back(std::move(held));
  if (pending_.size() >= cfg_.window) release_all(true);
}

void ChaosDriver::release_all(bool honor_delays) {
  std::shuffle(pending_.begin(), pending_.end(), rng_);
  // Swap out first: a deliver upcall may trigger sends whose completions
  // append new pending packets.
  std::vector<Held> batch;
  batch.swap(pending_);
  for (Held& held : batch) {
    if (honor_delays && held.delay_rounds > 0) {
      held.delay_rounds -= 1;
      pending_.push_back(std::move(held));
      continue;
    }
    NMAD_ASSERT(deliver_ != nullptr, "chaos delivery with no upcall");
    deliver_(held.track, std::span<const std::byte>(held.wire));
  }
}

void ChaosDriver::kill() {
  if (killed_) return;
  killed_ = true;
  // Frames already buffered die with the port.
  stats_.discarded_recvs += pending_.size();
  pending_.clear();
}

bool ChaosDriver::revive() {
  if (!revivable_) return false;
  if (killed_) {
    killed_ = false;
    stats_.revives += 1;
  }
  return inner_->revive();
}

bool ChaosDriver::flap_down_now() {
  if (!cfg_.flap.enabled) return false;
  const sim::TimeNs now = cfg_.clock();
  if (now < cfg_.flap.start_ns) return false;
  if (cfg_.flap.stop_ns != 0 && now >= cfg_.flap.stop_ns) return false;
  const auto draw_window = [this](sim::TimeNs mean) {
    const double scaled =
        static_cast<double>(mean) *
        (1.0 + cfg_.flap.jitter * (flap_rng_.next_double() - 0.5));
    return std::max<sim::TimeNs>(1, static_cast<sim::TimeNs>(scaled));
  };
  if (!flap_initialized_) {
    // The schedule starts in an up window at start_ns.
    flap_initialized_ = true;
    flap_down_ = false;
    flap_next_edge_ = cfg_.flap.start_ns + draw_window(cfg_.flap.up_ns);
  }
  // Advance the alternating up/down schedule to `now`. Each window length
  // is its mean ± jitter/2, drawn from the dedicated flap stream — the
  // boundaries depend only on the seed, never on traffic timing.
  while (now >= flap_next_edge_) {
    flap_down_ = !flap_down_;
    if (flap_down_) stats_.flap_downs += 1;
    flap_next_edge_ +=
        draw_window(flap_down_ ? cfg_.flap.down_ns : cfg_.flap.up_ns);
  }
  return flap_down_;
}

void ChaosDriver::flush() {
  while (!pending_.empty()) release_all(false);
}

void ChaosDriver::register_metrics(obs::MetricsRegistry& registry,
                                   const std::string& prefix) const {
  inner_->register_metrics(registry, prefix);
  registry.add_raw(prefix + "chaos.frames_seen", &stats_.frames_seen);
  registry.add_raw(prefix + "chaos.drops", &stats_.drops);
  registry.add_raw(prefix + "chaos.duplicates", &stats_.duplicates);
  registry.add_raw(prefix + "chaos.corruptions", &stats_.corruptions);
  registry.add_raw(prefix + "chaos.delays", &stats_.delays);
  registry.add_raw(prefix + "chaos.swallowed_sends", &stats_.swallowed_sends);
  registry.add_raw(prefix + "chaos.discarded_recvs", &stats_.discarded_recvs);
  registry.add_raw(prefix + "chaos.revives", &stats_.revives);
  registry.add_raw(prefix + "chaos.flap_downs", &stats_.flap_downs);
  registry.add_raw(prefix + "chaos.flap_drops", &stats_.flap_drops);
}

}  // namespace nmad::drv
