#include "drv/chaos_driver.hpp"

#include <algorithm>
#include <utility>

#include "util/panic.hpp"

namespace nmad::drv {

ChaosDriver::ChaosDriver(Driver& inner, std::uint64_t seed, std::size_t window)
    : inner_(&inner), rng_(seed), window_(window) {
  NMAD_ASSERT(window_ >= 1, "chaos window must be >= 1");
}

void ChaosDriver::set_deliver(DeliverFn deliver) {
  deliver_ = std::move(deliver);
  inner_->set_deliver([this](Track track, std::span<const std::byte> wire) {
    pending_.push_back(Held{track, std::vector<std::byte>(wire.begin(), wire.end())});
    if (pending_.size() >= window_) release_all();
  });
}

void ChaosDriver::release_all() {
  std::shuffle(pending_.begin(), pending_.end(), rng_);
  // Swap out first: a deliver upcall may trigger sends whose completions
  // append new pending packets.
  std::vector<Held> batch;
  batch.swap(pending_);
  for (Held& held : batch) {
    NMAD_ASSERT(deliver_ != nullptr, "chaos delivery with no upcall");
    deliver_(held.track, std::span<const std::byte>(held.wire));
  }
}

void ChaosDriver::flush() {
  if (!pending_.empty()) release_all();
}

}  // namespace nmad::drv
