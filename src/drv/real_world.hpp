// Progression pump for real (non-simulated) drivers.
//
// Plays the role SimWorld's event engine plays for SimDriver: supplies the
// clock (wall time), the deferred-execution queue that disconnects request
// processing from API calls, and the progress loop that polls drivers
// until a completion predicate holds.
#pragma once

#include <deque>
#include <functional>
#include <queue>
#include <vector>

#include "drv/driver.hpp"
#include "sim/time.hpp"

namespace nmad::drv {

class RealWorld {
 public:
  /// Register a driver to be polled by the progress loop. Drivers are not
  /// owned; they must outlive the RealWorld.
  void attach(Driver* driver);

  /// Monotonic wall-clock time (ns since the first call).
  [[nodiscard]] sim::TimeNs now() const;

  /// Queue work for the next progression round (Scheduler::DeferFn).
  void defer(std::function<void()> fn);

  /// Run `fn` once at least `delay` wall-clock time has passed, checked at
  /// progression-round granularity (Scheduler::TimerFn — retransmission
  /// timeouts, delayed acks).
  void schedule_after(sim::TimeNs delay, std::function<void()> fn);

  /// Drive drivers and deferred work until `pred()` holds. Spins politely
  /// (sched_yield) when nothing progresses. Session::ProgressFn.
  void progress_until(const std::function<bool()>& pred);

  /// One progression round; returns true if any work happened.
  bool progress_once();

 private:
  struct Timer {
    sim::TimeNs deadline;
    std::uint64_t order;  ///< insertion order breaks deadline ties (FIFO)
    std::function<void()> fn;
    bool operator>(const Timer& other) const noexcept {
      return deadline != other.deadline ? deadline > other.deadline
                                        : order > other.order;
    }
  };

  std::vector<Driver*> drivers_;
  std::deque<std::function<void()>> deferred_;
  std::priority_queue<Timer, std::vector<Timer>, std::greater<Timer>> timers_;
  std::uint64_t timer_order_ = 0;
  mutable sim::TimeNs epoch_ = 0;
};

}  // namespace nmad::drv
