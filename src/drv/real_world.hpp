// Progression pump for real (non-simulated) drivers.
//
// Plays the role SimWorld's event engine plays for SimDriver: supplies the
// clock (wall time), the deferred-execution queue that disconnects request
// processing from API calls, and the progress loop that polls drivers
// until a completion predicate holds.
#pragma once

#include <deque>
#include <functional>
#include <vector>

#include "drv/driver.hpp"
#include "sim/time.hpp"

namespace nmad::drv {

class RealWorld {
 public:
  /// Register a driver to be polled by the progress loop. Drivers are not
  /// owned; they must outlive the RealWorld.
  void attach(Driver* driver);

  /// Monotonic wall-clock time (ns since the first call).
  [[nodiscard]] sim::TimeNs now() const;

  /// Queue work for the next progression round (Scheduler::DeferFn).
  void defer(std::function<void()> fn);

  /// Drive drivers and deferred work until `pred()` holds. Spins politely
  /// (sched_yield) when nothing progresses. Session::ProgressFn.
  void progress_until(const std::function<bool()>& pred);

  /// One progression round; returns true if any work happened.
  bool progress_once();

 private:
  std::vector<Driver*> drivers_;
  std::deque<std::function<void()>> deferred_;
  mutable sim::TimeNs epoch_ = 0;
};

}  // namespace nmad::drv
