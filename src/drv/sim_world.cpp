#include "drv/sim_world.hpp"

#include "util/fmt.hpp"
#include <utility>

#include "drv/sim_driver.hpp"
#include "util/panic.hpp"

namespace nmad::drv {

SimWorld::SimWorld() : net_(engine_) {}
SimWorld::~SimWorld() = default;

NodeId SimWorld::add_node(const netmodel::HostProfile& host) {
  if (auto s = host.validate(); !s) NMAD_PANIC("invalid HostProfile");
  Node node;
  node.name = util::sformat("%s#%zu", host.name.c_str(), nodes_.size());
  node.cpu = std::make_unique<sim::SerialResource>(engine_, host.pio_cores,
                                                   node.name + ".cpu");
  node.bus = net_.add_constraint(host.bus_bandwidth_mbps, node.name + ".bus");
  nodes_.push_back(std::move(node));
  return NodeId{static_cast<std::uint32_t>(nodes_.size() - 1)};
}

std::pair<SimDriver*, SimDriver*> SimWorld::add_link(
    NodeId a, NodeId b, const netmodel::NicProfile& nic) {
  NMAD_ASSERT(a.value < nodes_.size() && b.value < nodes_.size(),
              "add_link on unknown node");
  NMAD_ASSERT(!(a == b), "add_link requires two distinct nodes");
  if (auto s = nic.validate(); !s) NMAD_PANIC("invalid NicProfile");

  const auto link_ab = net_.add_constraint(
      nic.dma_bandwidth_mbps,
      util::sformat("%s.%u->%u", nic.name.c_str(), a.value, b.value));
  const auto link_ba = net_.add_constraint(
      nic.dma_bandwidth_mbps,
      util::sformat("%s.%u->%u", nic.name.c_str(), b.value, a.value));

  auto drv_a = std::make_unique<SimDriver>(*this, a, nic, link_ab);
  auto drv_b = std::make_unique<SimDriver>(*this, b, nic, link_ba);
  drv_a->peer_ = drv_b.get();
  drv_b->peer_ = drv_a.get();
  nodes_[a.value].rails.push_back(drv_a.get());
  nodes_[b.value].rails.push_back(drv_b.get());

  SimDriver* pa = drv_a.get();
  SimDriver* pb = drv_b.get();
  drivers_.push_back(std::move(drv_a));
  drivers_.push_back(std::move(drv_b));
  return {pa, pb};
}

sim::SerialResource& SimWorld::cpu(NodeId node) {
  NMAD_ASSERT(node.value < nodes_.size(), "unknown node");
  return *nodes_[node.value].cpu;
}

sim::ConstraintId SimWorld::bus(NodeId node) const {
  NMAD_ASSERT(node.value < nodes_.size(), "unknown node");
  return nodes_[node.value].bus;
}

const std::vector<SimDriver*>& SimWorld::rails(NodeId node) const {
  NMAD_ASSERT(node.value < nodes_.size(), "unknown node");
  return nodes_[node.value].rails;
}

sim::TimeNs SimWorld::poll_penalty(NodeId node, const SimDriver* to_rail) const {
  NMAD_ASSERT(node.value < nodes_.size(), "unknown node");
  double penalty_us = 0.0;
  for (const SimDriver* rail : nodes_[node.value].rails) {
    if (rail != to_rail) penalty_us += rail->profile().poll_cost_us;
  }
  return sim::us_to_ns(penalty_us);
}

}  // namespace nmad::drv
