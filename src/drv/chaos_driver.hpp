// ChaosDriver: a decorator that deliberately perturbs the delivery order
// of an underlying driver.
//
// Multi-rail transfers already arrive out of order *across* rails; this
// decorator additionally scrambles order *within* one rail's track, which
// no real NIC in the paper's platform does. It exists purely to harden the
// receive path: matching, rendezvous and reassembly must be fully
// order-independent, and the chaos property tests prove it. (Packet loss
// is out of scope: the paper's networks are reliable, and the protocol has
// no retransmission layer.)
#pragma once

#include <cstdint>
#include <vector>

#include "drv/driver.hpp"
#include "util/rng.hpp"

namespace nmad::drv {

class ChaosDriver final : public Driver {
 public:
  /// Wraps `inner` (not owned). Deliveries are buffered until `window`
  /// packets are pending, then released in a seeded-random order; flush()
  /// (or any later delivery) releases stragglers.
  ChaosDriver(Driver& inner, std::uint64_t seed, std::size_t window = 4);

  [[nodiscard]] const Capabilities& caps() const noexcept override {
    return inner_->caps();
  }
  [[nodiscard]] bool send_idle(Track track) const noexcept override {
    return inner_->send_idle(track);
  }
  void post_send(SendDesc desc, Callback on_sent) override {
    inner_->post_send(std::move(desc), std::move(on_sent));
  }
  void set_deliver(DeliverFn deliver) override;
  bool progress() override { return inner_->progress(); }
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const override {
    inner_->register_metrics(registry, prefix);
  }

  /// Release every buffered packet (in scrambled order).
  void flush();

  [[nodiscard]] std::size_t buffered() const noexcept { return pending_.size(); }

 private:
  void release_all();

  Driver* inner_;
  util::Xoshiro256 rng_;
  std::size_t window_;
  DeliverFn deliver_;
  /// Deferred deliveries must own their bytes: the inner driver's span is
  /// only valid during its upcall, and these are released later.
  struct Held {
    Track track;
    std::vector<std::byte> wire;
  };
  std::vector<Held> pending_;
};

}  // namespace nmad::drv
