// ChaosDriver: a decorator that injects rail faults into an underlying
// driver — the adversary the reliability layer is tested against.
//
// Historically this only scrambled delivery *order* (matching, rendezvous
// and reassembly must be order-independent). It has since grown into a full
// seeded fault injector: per-track probabilities of dropping, duplicating,
// corrupting (single byte flip) and delaying received frames, plus a hard
// kill() that silences the rail in both directions mid-run. Packet loss is
// decidedly *in* scope now — the frame envelope (proto/wire.hpp), per-rail
// ack/retransmit and the rail health state machine (core/rail_guard.hpp)
// exist precisely so that every fault injected here is either healed by
// retransmission or escalated to a dead-rail failover. The chaos property
// tests assert the end-to-end guarantee: a seeded run either completes with
// byte-identical payloads or reports a dead rail — never a hang, never
// wrong data.
//
// Every injection is counted and exposed in the metrics tree (chaos.*), so
// soak tests can assert that faults actually fired.
//
// Thread safety: like every driver, not internally synchronized — the
// buffer, RNG and stats are touched only under the world progress mutex.
// In threaded mode, flush() is typically wired as the progress threads'
// idle hook (runs under the lock); tests reading stats() with progress
// threads live must take the world mutex first.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "drv/driver.hpp"
#include "util/rng.hpp"

namespace nmad::drv {

/// Per-track fault probabilities, each in [0, 1], applied independently to
/// every frame the inner driver delivers.
struct FaultProfile {
  double drop = 0.0;       ///< discard the frame entirely
  double duplicate = 0.0;  ///< deliver the frame twice
  double corrupt = 0.0;    ///< flip one random byte before delivery
  double delay = 0.0;      ///< hold the frame across one extra release round
};

struct ChaosConfig {
  /// Deliveries are buffered until this many frames are pending, then
  /// released in a seeded-random order (window = 1 disables scrambling).
  std::size_t window = 4;
  std::array<FaultProfile, kTrackCount> track{};

  /// Same fault probabilities on both tracks.
  [[nodiscard]] static ChaosConfig uniform(FaultProfile profile,
                                           std::size_t window = 4) {
    ChaosConfig cfg;
    cfg.window = window;
    cfg.track.fill(profile);
    return cfg;
  }
};

class ChaosDriver final : public Driver {
 public:
  /// Wraps `inner` (not owned) with fault injection per `cfg`.
  ChaosDriver(Driver& inner, std::uint64_t seed, ChaosConfig cfg);
  /// Order-scrambling only (the legacy decorator behavior).
  ChaosDriver(Driver& inner, std::uint64_t seed, std::size_t window = 4);

  /// Flushes stragglers through the (possibly defunct) deliver upcall and
  /// verifies none remain: frames held past session teardown would
  /// reference freed pool blocks.
  ~ChaosDriver() override;

  [[nodiscard]] const Capabilities& caps() const noexcept override {
    return inner_->caps();
  }
  [[nodiscard]] bool send_idle(Track track) const noexcept override {
    return !killed_ && inner_->send_idle(track);
  }
  void post_send(SendDesc desc, Callback on_sent) override;
  void set_deliver(DeliverFn deliver) override;
  void set_error(ErrorFn on_error) override { inner_->set_error(std::move(on_error)); }
  bool progress() override { return inner_->progress(); }
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const override;

  /// Hard-kill the rail: every future send is swallowed (its completion
  /// never fires) and every future receive is discarded, in both cases
  /// silently — exactly what a dead NIC port looks like to the peers. The
  /// reliability layer must detect this via retransmission timeouts.
  void kill();
  [[nodiscard]] bool killed() const noexcept { return killed_; }

  /// Release every buffered frame (in scrambled order, delays ignored).
  void flush();

  [[nodiscard]] std::size_t buffered() const noexcept { return pending_.size(); }

  struct Stats {
    std::uint64_t frames_seen = 0;  ///< frames offered by the inner driver
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t delays = 0;
    std::uint64_t swallowed_sends = 0;   ///< posts discarded after kill()
    std::uint64_t discarded_recvs = 0;   ///< deliveries discarded after kill()
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void on_inner_deliver(Track track, std::span<const std::byte> wire);
  void release_all(bool honor_delays);

  Driver* inner_;
  util::Xoshiro256 rng_;
  ChaosConfig cfg_;
  DeliverFn deliver_;
  bool killed_ = false;
  /// Deferred deliveries must own their bytes: the inner driver's span is
  /// only valid during its upcall, and these are released later.
  struct Held {
    Track track;
    std::vector<std::byte> wire;
    /// Release rounds this frame still sits out (delay injection).
    std::uint32_t delay_rounds = 0;
  };
  std::vector<Held> pending_;
  Stats stats_;
};

}  // namespace nmad::drv
