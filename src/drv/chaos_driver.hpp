// ChaosDriver: a decorator that injects rail faults into an underlying
// driver — the adversary the reliability layer is tested against.
//
// Historically this only scrambled delivery *order* (matching, rendezvous
// and reassembly must be order-independent). It has since grown into a full
// seeded fault injector: per-track probabilities of dropping, duplicating,
// corrupting (single byte flip) and delaying received frames, plus a hard
// kill() that silences the rail in both directions mid-run. Packet loss is
// decidedly *in* scope now — the frame envelope (proto/wire.hpp), per-rail
// ack/retransmit and the rail health state machine (core/rail_guard.hpp)
// exist precisely so that every fault injected here is either healed by
// retransmission or escalated to a dead-rail failover. The chaos property
// tests assert the end-to-end guarantee: a seeded run either completes with
// byte-identical payloads or reports a dead rail — never a hang, never
// wrong data.
//
// Every injection is counted and exposed in the metrics tree (chaos.*), so
// soak tests can assert that faults actually fired.
//
// Thread safety: like every driver, not internally synchronized — the
// buffer, RNG and stats are touched only under the world progress mutex.
// In threaded mode, flush() is typically wired as the progress threads'
// idle hook (runs under the lock); tests reading stats() with progress
// threads live must take the world mutex first.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "drv/driver.hpp"
#include "sim/time.hpp"
#include "util/rng.hpp"

namespace nmad::drv {

/// Per-track fault probabilities, each in [0, 1], applied independently to
/// every frame the inner driver delivers.
struct FaultProfile {
  double drop = 0.0;       ///< discard the frame entirely
  double duplicate = 0.0;  ///< deliver the frame twice
  double corrupt = 0.0;    ///< flip one random byte before delivery
  double delay = 0.0;      ///< hold the frame across one extra release round
};

/// A seeded schedule of link-down windows. While a window is down, every
/// frame the inner driver delivers is discarded (receive-side blackout;
/// sends still complete locally so the NIC tracks never wedge) — the
/// reliability layer sees unanswered frames and unanswered keepalive
/// probes, exactly like a flapping cable. Flapping one wrapper of a link
/// models an asymmetric partition; flapping both models a symmetric one.
struct FlapSpec {
  bool enabled = false;
  /// Mean lengths of the alternating up/down windows.
  sim::TimeNs up_ns = 10'000'000;
  sim::TimeNs down_ns = 3'000'000;
  /// Per-window uniform jitter (fraction of the mean, +/- jitter/2), drawn
  /// from a dedicated RNG stream so the schedule is a pure function of the
  /// chaos seed regardless of traffic.
  double jitter = 0.5;
  /// Flapping is active in [start_ns, stop_ns); stop_ns = 0 never stops.
  sim::TimeNs start_ns = 0;
  sim::TimeNs stop_ns = 0;
};

struct ChaosConfig {
  /// Deliveries are buffered until this many frames are pending, then
  /// released in a seeded-random order (window = 1 disables scrambling).
  std::size_t window = 4;
  std::array<FaultProfile, kTrackCount> track{};
  /// Seeded partition/flap windows. Requires `clock` when enabled.
  FlapSpec flap;
  /// Time source for the flap schedule (virtual time over the simulator).
  std::function<sim::TimeNs()> clock;

  /// Same fault probabilities on both tracks.
  [[nodiscard]] static ChaosConfig uniform(FaultProfile profile,
                                           std::size_t window = 4) {
    ChaosConfig cfg;
    cfg.window = window;
    cfg.track.fill(profile);
    return cfg;
  }
};

class ChaosDriver final : public Driver {
 public:
  /// Wraps `inner` (not owned) with fault injection per `cfg`.
  ChaosDriver(Driver& inner, std::uint64_t seed, ChaosConfig cfg);
  /// Order-scrambling only (the legacy decorator behavior).
  ChaosDriver(Driver& inner, std::uint64_t seed, std::size_t window = 4);

  /// Flushes stragglers through the (possibly defunct) deliver upcall and
  /// verifies none remain: frames held past session teardown would
  /// reference freed pool blocks.
  ~ChaosDriver() override;

  [[nodiscard]] const Capabilities& caps() const noexcept override {
    return inner_->caps();
  }
  [[nodiscard]] bool send_idle(Track track) const noexcept override {
    return !killed_ && inner_->send_idle(track);
  }
  void post_send(SendDesc desc, Callback on_sent) override;
  void set_deliver(DeliverFn deliver) override;
  void set_error(ErrorFn on_error) override { inner_->set_error(std::move(on_error)); }
  bool progress() override { return inner_->progress(); }
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const override;

  /// Hard-kill the rail: every future send is swallowed (its completion
  /// never fires) and every future receive is discarded, in both cases
  /// silently — exactly what a dead NIC port looks like to the peers. The
  /// reliability layer must detect this via retransmission timeouts (or
  /// keepalive probe misses when the rail is idle).
  void kill();
  [[nodiscard]] bool killed() const noexcept { return killed_; }

  /// Clear the kill switch (and forward to the inner driver): the port is
  /// ready to carry frames again. Called by the reliability layer's
  /// reconnect machinery before it proposes a new epoch.
  bool revive() override;

  /// Gate for revive(): while false, revive attempts fail and the kill
  /// switch stays set, so a test can hold an outage open for as long as it
  /// needs (the reconnect machinery keeps backing off and retrying) and
  /// then release recovery at a deterministic point.
  void set_revivable(bool revivable) noexcept { revivable_ = revivable; }

  /// Release every buffered frame (in scrambled order, delays ignored).
  void flush();

  [[nodiscard]] std::size_t buffered() const noexcept { return pending_.size(); }

  struct Stats {
    std::uint64_t frames_seen = 0;  ///< frames offered by the inner driver
    std::uint64_t drops = 0;
    std::uint64_t duplicates = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t delays = 0;
    std::uint64_t swallowed_sends = 0;   ///< posts discarded after kill()
    std::uint64_t discarded_recvs = 0;   ///< deliveries discarded after kill()
    std::uint64_t revives = 0;           ///< kill switches cleared
    std::uint64_t flap_downs = 0;        ///< down windows entered
    std::uint64_t flap_drops = 0;        ///< deliveries lost to down windows
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// True while the seeded flap schedule holds the link down at the
  /// current clock() time (always false without flap.enabled).
  [[nodiscard]] bool flap_down_now();

 private:
  void on_inner_deliver(Track track, std::span<const std::byte> wire);
  void release_all(bool honor_delays);

  Driver* inner_;
  util::Xoshiro256 rng_;
  /// Dedicated stream for flap-window lengths: drawing them must not
  /// perturb the legacy fault/shuffle sequence of a given seed.
  util::Xoshiro256 flap_rng_;
  ChaosConfig cfg_;
  DeliverFn deliver_;
  bool killed_ = false;
  bool revivable_ = true;
  bool flap_down_ = false;
  bool flap_initialized_ = false;
  sim::TimeNs flap_next_edge_ = 0;
  /// Deferred deliveries must own their bytes: the inner driver's span is
  /// only valid during its upcall, and these are released later.
  struct Held {
    Track track;
    std::vector<std::byte> wire;
    /// Release rounds this frame still sits out (delay injection).
    std::uint32_t delay_rounds = 0;
  };
  std::vector<Held> pending_;
  Stats stats_;
};

}  // namespace nmad::drv
