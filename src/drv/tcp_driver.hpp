// TCP/socket driver: the legacy-API transmit-layer driver the real
// NewMadeleine also ships ("the legacy socket API on top of TCP/IP", §2).
//
// Unlike SimDriver this moves bytes through real kernel sockets in real
// time. It exists to demonstrate that the scheduling layer is genuinely
// driver-agnostic — the same strategies, rendezvous protocol and matching
// run unchanged — and to provide a functional (non-simulated) transport
// for multi-process runs.
//
// Each endpoint uses two stream sockets, one per track, mirroring the
// eager/bulk track separation: a large transfer in flight on the bulk
// socket never head-of-line-blocks rendezvous control traffic.
//
// Framing per socket: 4-byte little-endian payload length, then the
// encoded packet (proto/wire.hpp format). Outbound frames are gathered
// straight from the SendDesc's PacketView with sendmsg (length prefix,
// header block and payload spans as separate iovecs — no flattening copy);
// inbound frames are decoded in place from the receive buffer and handed
// up as non-owning spans.
//
// Thread safety: no internal locks. post_send and progress() (the poll
// that drains sockets and fires deliver upcalls) must both run under the
// world progress mutex; with threaded progression, wire progress() as the
// ProgressEngine poll hook so a progress thread owns the sockets while
// the application thread stays on the lock-free submission path.
#pragma once

#include <sys/uio.h>

#include <array>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "drv/driver.hpp"
#include "util/expected.hpp"

namespace nmad::drv {

class TcpDriver final : public Driver {
 public:
  /// Build a connected endpoint pair inside one process (socketpair per
  /// track). The canonical way to run tests and single-process demos.
  static std::pair<std::unique_ptr<TcpDriver>, std::unique_ptr<TcpDriver>>
  create_pair();

  /// Two-process setup: listen on `port` (both track sockets accepted, in
  /// track order) / connect to a listener.
  static util::Expected<std::unique_ptr<TcpDriver>> listen_one(std::uint16_t port);
  static util::Expected<std::unique_ptr<TcpDriver>> connect_to(const std::string& host,
                                                               std::uint16_t port);

  ~TcpDriver() override;

  [[nodiscard]] const Capabilities& caps() const noexcept override { return caps_; }
  [[nodiscard]] bool send_idle(Track track) const noexcept override;
  void post_send(SendDesc desc, Callback on_sent) override;
  void set_deliver(DeliverFn deliver) override;
  void set_error(ErrorFn on_error) override;
  bool progress() override;

  /// True once `track` hit a hard I/O failure (send error, recv error or
  /// peer close) and was parked. A failed track stays parked until a
  /// successful revive() swaps in fresh sockets.
  [[nodiscard]] bool failed(Track track) const noexcept {
    return tracks_[static_cast<std::size_t>(track)].failed;
  }

  /// Produces a fresh connected socket pair (fd_small, fd_large) for this
  /// endpoint, or {-1, -1} on failure. Installed automatically by
  /// connect_to() (re-dials the saved host:port); tests and listen-side
  /// harnesses install their own. Without one, revive() cannot recover a
  /// failed endpoint.
  using Reconnector = std::function<std::pair<int, int>()>;
  void set_reconnector(Reconnector fn) { reconnector_ = std::move(fn); }

  /// Re-establish failed tracks through the reconnector, with capped
  /// exponential backoff on wall-clock time (a revive call inside the
  /// backoff window fails fast instead of re-dialing). On success both
  /// tracks get fresh sockets and cleared buffers; the reliability layer's
  /// epoch handshake then decides when the rail carries traffic again.
  bool revive() override;

  struct Stats {
    std::uint64_t packets_sent = 0;
    std::uint64_t bytes_sent = 0;
    std::uint64_t packets_received = 0;
    std::uint64_t bytes_received = 0;
    /// Progression rounds that polled this endpoint's sockets.
    std::uint64_t progress_polls = 0;
    /// Hard I/O failures surfaced as RailError events (one per track max).
    std::uint64_t rail_errors = 0;
    /// Successful socket re-establishments (both tracks swapped).
    std::uint64_t reconnects = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const override;

 private:
  struct TrackState {
    int fd = -1;
    // Outbound frame currently draining into the socket (one at a time —
    // the Driver contract). The descriptor's PacketView keeps the pooled
    // header block and the referenced payload spans alive until the whole
    // frame has been handed to the kernel; completion then releases it
    // (recycling the blocks) before firing on_sent.
    SendDesc out;
    std::array<std::byte, 4> frame_len{};
    std::size_t out_off = 0;    ///< cumulative bytes accepted by the kernel
    std::size_t out_total = 0;  ///< 4-byte prefix + wire size
    Callback on_sent;
    bool busy = false;
    // Scratch iovec list, rebuilt per flush attempt from out_off.
    std::vector<iovec> iov;
    // Inbound reassembly of the length-prefixed frame stream. Complete
    // frames are delivered as spans into this buffer; `in_off` tracks the
    // consumed prefix, compacted once per drain.
    std::vector<std::byte> in;
    std::size_t in_off = 0;
    // Permanently parked after a hard I/O failure: no further sends are
    // accepted, no further reads are attempted, pending output is dropped.
    bool failed = false;
  };

  TcpDriver(int fd_small, int fd_large);
  bool flush_writes(Track track, TrackState& ts);
  bool drain_reads(Track track, TrackState& ts);
  /// Park `track` after a hard failure and surface one RailError upcall.
  void fail(Track track, RailErrorKind kind, int sys_errno, const char* detail);

  Capabilities caps_;
  std::array<TrackState, kTrackCount> tracks_;
  DeliverFn deliver_;
  ErrorFn on_error_;
  Reconnector reconnector_;
  /// Wall-clock backoff between re-dial attempts (doubles per failure up
  /// to the cap; resets on success).
  std::chrono::milliseconds reconnect_backoff_{50};
  std::chrono::steady_clock::time_point next_reconnect_attempt_{};
  Stats stats_;
};

}  // namespace nmad::drv
