// Simulated NIC driver: implements the Driver interface on top of the
// discrete-event platform, with distinct PIO and DMA semantics.
//
// Eager (small track) sends model Programmed I/O: the host CPU is occupied
// for the send overhead plus the full host->NIC copy, so concurrent eager
// sends on different rails of one node serialize — the effect that defeats
// naive multi-rail balancing for small messages (paper §3.2).
//
// Large-track sends model DMA: the CPU is occupied only while programming
// the descriptor; the transfer itself is a fluid flow across the NIC link
// and both hosts' I/O buses (FairShareNet), so concurrent DMA transfers
// genuinely overlap and contend only for bus capacity.
//
// Thread safety: all state (track status, stats) is plain data driven by
// engine events; post_send and the event callbacks run with the world
// progress mutex held in threaded mode (engine steppers are serialized by
// it), so no internal locking is needed. Read stats only under that mutex
// while progress threads are live.
#pragma once

#include <array>
#include <cstdint>

#include "drv/driver.hpp"
#include "drv/sim_world.hpp"

namespace nmad::drv {

class SimDriver final : public Driver {
 public:
  /// Construct an endpoint on `node`. Use SimWorld::add_link, which wires
  /// up the peer and the link constraints.
  SimDriver(SimWorld& world, NodeId node, netmodel::NicProfile profile,
            sim::ConstraintId tx_link);

  [[nodiscard]] const Capabilities& caps() const noexcept override { return caps_; }
  [[nodiscard]] bool send_idle(Track track) const noexcept override;
  void post_send(SendDesc desc, Callback on_sent) override;
  void set_deliver(DeliverFn deliver) override;
  void register_metrics(obs::MetricsRegistry& registry,
                        const std::string& prefix) const override;

  [[nodiscard]] const netmodel::NicProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] NodeId node() const noexcept { return node_; }
  [[nodiscard]] SimDriver* peer() const noexcept { return peer_; }
  /// The FairShareNet constraint this endpoint's outgoing DMA flows cross
  /// (its direction of the NIC link). Exposed so scenario players
  /// (sim/net_scenario.hpp) can shape or congest a specific rail.
  [[nodiscard]] sim::ConstraintId tx_link() const noexcept { return tx_link_; }

  // --- statistics (reported by benches, asserted by tests) ---------------
  struct Stats {
    std::uint64_t eager_packets = 0;
    std::uint64_t eager_bytes = 0;  ///< wire bytes incl. headers
    std::uint64_t dma_packets = 0;
    std::uint64_t dma_bytes = 0;
    std::uint64_t delivered_packets = 0;
    /// Times the progression engine polled this NIC because a packet
    /// arrived on a *sibling* rail of the same node — the per-rail cost
    /// behind the paper's Fig. 6 polling gap. A rail that is connected but
    /// carries no traffic still accumulates polls; a silently-dead rail
    /// shows zero here *and* zero bytes (what CI's bench-smoke gate keys on).
    std::uint64_t polls = 0;
  };
  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  friend class SimWorld;

  void send_eager(SendDesc desc, Callback on_sent);
  void send_dma(SendDesc desc, Callback on_sent);
  /// Called on the *receiving* endpoint when bytes arrive off the wire.
  void arrive(Track track, std::vector<std::byte> wire);

  SimWorld& world_;
  NodeId node_;
  netmodel::NicProfile profile_;
  Capabilities caps_;
  sim::ConstraintId tx_link_;
  SimDriver* peer_ = nullptr;
  DeliverFn deliver_;
  std::array<bool, kTrackCount> busy_{{false, false}};
  /// Enforces FIFO delivery on the eager track even when CPU queueing
  /// reorders nominal completion instants.
  sim::TimeNs last_eager_delivery_ = 0;
  Stats stats_;
};

}  // namespace nmad::drv
