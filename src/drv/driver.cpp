#include "drv/driver.hpp"

// Driver is a pure interface; this translation unit exists to anchor the
// vtable (key function idiom keeps RTTI/vtable emission in one object).

namespace nmad::drv {}  // namespace nmad::drv
