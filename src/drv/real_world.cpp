#include "drv/real_world.hpp"

#include <sched.h>

#include <chrono>
#include <utility>

#include "util/panic.hpp"

namespace nmad::drv {

void RealWorld::attach(Driver* driver) {
  NMAD_ASSERT(driver != nullptr, "attaching null driver");
  drivers_.push_back(driver);
}

sim::TimeNs RealWorld::now() const {
  const auto t = std::chrono::duration_cast<std::chrono::nanoseconds>(
                     std::chrono::steady_clock::now().time_since_epoch())
                     .count();
  if (epoch_ == 0) epoch_ = t;
  return t - epoch_;
}

void RealWorld::defer(std::function<void()> fn) {
  deferred_.push_back(std::move(fn));
}

void RealWorld::schedule_after(sim::TimeNs delay, std::function<void()> fn) {
  timers_.push(Timer{now() + delay, timer_order_++, std::move(fn)});
}

bool RealWorld::progress_once() {
  bool worked = false;
  // Drain the deferred queue first: submissions become packets here.
  while (!deferred_.empty()) {
    auto fn = std::move(deferred_.front());
    deferred_.pop_front();
    fn();
    worked = true;
  }
  // Fire expired timers (retransmission deadlines). Timers run after the
  // deferred queue so a round's submissions are on the wire before its
  // timeouts are judged.
  while (!timers_.empty() && timers_.top().deadline <= now()) {
    auto fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
    worked = true;
  }
  for (Driver* d : drivers_) worked |= d->progress();
  return worked;
}

void RealWorld::progress_until(const std::function<bool()>& pred) {
  while (!pred()) {
    if (!progress_once()) {
      ::sched_yield();
    }
  }
}

}  // namespace nmad::drv
