#include "api/mpi_like.hpp"

#include "util/panic.hpp"

namespace nmad::api {

bool MpiRequest::test() const {
  if (send_) return send_->completed();
  if (recv_) return recv_->completed();
  return true;  // null request: trivially complete
}

void MpiRequest::wait() {
  if (send_) session_->wait(send_);
  if (recv_) session_->wait(recv_);
}

RecvStatus MpiRequest::status() const {
  NMAD_ASSERT(recv_ != nullptr, "status() on a non-receive request");
  NMAD_ASSERT(recv_->completed(), "status() before completion");
  return RecvStatus{recv_->received_len(), tag_};
}

MpiRequest Communicator::isend_bytes(std::span<const std::byte> data,
                                     core::Tag tag) {
  NMAD_ASSERT(tag < core::kReservedTagBase,
              "tag collides with the reserved (collective/barrier) tag space");
  MpiRequest req;
  req.session_ = session_;
  req.tag_ = tag;
  req.send_ = session_->isend(gate_, tag, data);
  return req;
}

MpiRequest Communicator::irecv_bytes(std::span<std::byte> buffer, core::Tag tag) {
  NMAD_ASSERT(tag < core::kReservedTagBase,
              "tag collides with the reserved (collective/barrier) tag space");
  MpiRequest req;
  req.session_ = session_;
  req.tag_ = tag;
  req.recv_ = session_->irecv(gate_, tag, buffer);
  return req;
}

void Communicator::send_bytes(std::span<const std::byte> data, core::Tag tag) {
  isend_bytes(data, tag).wait();
}

RecvStatus Communicator::recv_bytes(std::span<std::byte> buffer, core::Tag tag) {
  MpiRequest req = irecv_bytes(buffer, tag);
  req.wait();
  return req.status();
}

RecvStatus Communicator::sendrecv(std::span<const std::byte> send_data,
                                  core::Tag send_tag,
                                  std::span<std::byte> recv_buffer,
                                  core::Tag recv_tag) {
  MpiRequest recv = irecv_bytes(recv_buffer, recv_tag);
  MpiRequest send = isend_bytes(send_data, send_tag);
  send.wait();
  recv.wait();
  return recv.status();
}

void Communicator::barrier() {
  if (group_) {
    // N-party: dissemination across every rank of the group.
    const bool ok = group_->barrier();
    NMAD_ASSERT(ok, "N-party barrier failed (a peer's gate died)");
    return;
  }
  // Two-party: exchange zero-byte tokens; completion of the inbound token
  // proves the peer reached its barrier() too.
  std::byte dummy;
  auto recv = session_->irecv(gate_, kBarrierTag, std::span<std::byte>(&dummy, 0));
  auto send = session_->isend(gate_, kBarrierTag, {});
  session_->wait(recv);
  session_->wait(send);
}

}  // namespace nmad::api
