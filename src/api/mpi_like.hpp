// An MPI-flavored API layer over the collect layer.
//
// The paper's top layer is explicitly multi-API ("since NewMadeleine is
// organized in a modular fashion, several flavors of APIs may be
// implemented", §2), and its stated next step is wiring the library under
// MPICH-Madeleine (§4). This header provides that flavor in miniature: a
// Communicator with blocking/non-blocking typed send/recv, wildcard-free
// tag matching, sendrecv, and a barrier — enough to port small MPI-style
// kernels onto the multi-rail engine unchanged.
//
// Two shapes exist: the original two-party communicator bound to one gate
// (the paper's whole evaluation is two nodes), and an N-party form bound
// to one gate per peer, whose barrier() runs the collectives layer's
// dissemination algorithm (src/coll/). Richer group operations
// (broadcast/reduce/allreduce) live in coll::Communicator, reachable via
// group().
//
// Tag discipline: user tags must stay below core::kReservedTagBase — the
// space above it carries the collective tag streams and the barrier token,
// and a user message there would silently cross-match protocol traffic, so
// both posting paths reject it.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <type_traits>
#include <vector>

#include "coll/communicator.hpp"
#include "core/session.hpp"

namespace nmad::api {

/// Completion information for a receive (MPI_Status in miniature).
struct RecvStatus {
  std::uint32_t bytes = 0;
  core::Tag tag = 0;
};

/// A non-blocking operation handle (MPI_Request in miniature).
class MpiRequest {
 public:
  MpiRequest() = default;

  [[nodiscard]] bool test() const;
  void wait();
  /// Valid for receives, after completion.
  [[nodiscard]] RecvStatus status() const;

 private:
  friend class Communicator;
  core::Session* session_ = nullptr;
  core::SendHandle send_;
  core::RecvHandle recv_;
  core::Tag tag_ = 0;
};

/// One endpoint of an MPI-style communicator: two-party (bound to a single
/// gate) or N-party (one gate per peer).
class Communicator {
 public:
  Communicator(core::Session& session, core::GateId gate)
      : session_(&session), gate_(gate) {}

  /// N-party: peer_gates[r] is this session's gate towards rank r (entry
  /// [rank] is ignored). Point-to-point calls on this object address the
  /// default peer — rank 0, or rank 1 when this endpoint is rank 0; use
  /// to_peer(r) for an explicit destination. barrier() synchronizes all N
  /// ranks via dissemination.
  Communicator(core::Session& session, std::vector<core::GateId> peer_gates,
               std::size_t rank)
      : session_(&session),
        group_(std::make_shared<coll::Communicator>(session, peer_gates, rank)) {
    gate_ = peer_gates[rank == 0 ? (peer_gates.size() > 1 ? 1 : 0) : 0];
  }

  /// Group size: 2 for the two-party form.
  [[nodiscard]] std::size_t size() const noexcept {
    return group_ ? group_->size() : 2;
  }
  /// This endpoint's rank; the two-party form has no rank numbering.
  [[nodiscard]] std::size_t rank() const noexcept {
    return group_ ? group_->rank() : 0;
  }
  /// N-party only: a two-party view addressing rank r for point-to-point
  /// traffic. Copies share this communicator's group state.
  [[nodiscard]] Communicator to_peer(std::size_t r) const {
    Communicator c(*this);
    c.gate_ = group_ ? group_->gate_to(r) : gate_;
    return c;
  }
  /// N-party only: the collectives-layer communicator behind barrier() —
  /// broadcast/reduce/allreduce and non-blocking handles live there.
  [[nodiscard]] coll::Communicator& group() noexcept { return *group_; }

  // --- byte-level primitives ----------------------------------------------
  MpiRequest isend_bytes(std::span<const std::byte> data, core::Tag tag);
  MpiRequest irecv_bytes(std::span<std::byte> buffer, core::Tag tag);
  void send_bytes(std::span<const std::byte> data, core::Tag tag);
  RecvStatus recv_bytes(std::span<std::byte> buffer, core::Tag tag);

  // --- typed convenience (trivially copyable element types) ----------------
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  MpiRequest isend(std::span<const T> data, core::Tag tag) {
    return isend_bytes(std::as_bytes(data), tag);
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  MpiRequest irecv(std::span<T> buffer, core::Tag tag) {
    return irecv_bytes(std::as_writable_bytes(buffer), tag);
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(std::span<const T> data, core::Tag tag) {
    send_bytes(std::as_bytes(data), tag);
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  RecvStatus recv(std::span<T> buffer, core::Tag tag) {
    return recv_bytes(std::as_writable_bytes(buffer), tag);
  }

  /// Simultaneous exchange (MPI_Sendrecv): both directions in flight at
  /// once, so the multi-rail engine can overlap them.
  RecvStatus sendrecv(std::span<const std::byte> send_data, core::Tag send_tag,
                      std::span<std::byte> recv_buffer, core::Tag recv_tag);

  /// Barrier. Two-party: a zero-byte token each way on a reserved tag.
  /// N-party: the collectives layer's dissemination barrier (all ranks
  /// must be progressing concurrently — see coll::Communicator::wait).
  void barrier();

  [[nodiscard]] core::Session& session() noexcept { return *session_; }
  [[nodiscard]] core::GateId gate() const noexcept { return gate_; }

 private:
  /// Tag of the two-party barrier token, at the very top of the reserved
  /// space (above the collective tag windows).
  static constexpr core::Tag kBarrierTag = 0xffffffffu;
  static_assert(kBarrierTag >= core::kReservedTagBase);

  core::Session* session_;
  core::GateId gate_ = 0;
  /// Set only for the N-party form (shared so copies stay cheap and agree
  /// on collective instance counters).
  std::shared_ptr<coll::Communicator> group_;
};

}  // namespace nmad::api
