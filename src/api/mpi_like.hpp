// An MPI-flavored API layer over the collect layer.
//
// The paper's top layer is explicitly multi-API ("since NewMadeleine is
// organized in a modular fashion, several flavors of APIs may be
// implemented", §2), and its stated next step is wiring the library under
// MPICH-Madeleine (§4). This header provides that flavor in miniature: a
// Communicator with blocking/non-blocking typed send/recv, wildcard-free
// tag matching, sendrecv, and a two-party barrier — enough to port small
// MPI-style kernels onto the multi-rail engine unchanged.
//
// Scope note: this is a point-to-point communicator between two endpoints
// (the paper's whole evaluation is two nodes); collectives beyond
// barrier/sendrecv are out of scope.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <vector>

#include "core/session.hpp"

namespace nmad::api {

/// Completion information for a receive (MPI_Status in miniature).
struct RecvStatus {
  std::uint32_t bytes = 0;
  core::Tag tag = 0;
};

/// A non-blocking operation handle (MPI_Request in miniature).
class MpiRequest {
 public:
  MpiRequest() = default;

  [[nodiscard]] bool test() const;
  void wait();
  /// Valid for receives, after completion.
  [[nodiscard]] RecvStatus status() const;

 private:
  friend class Communicator;
  core::Session* session_ = nullptr;
  core::SendHandle send_;
  core::RecvHandle recv_;
  core::Tag tag_ = 0;
};

/// One endpoint of a two-party MPI-style communicator bound to a gate.
class Communicator {
 public:
  Communicator(core::Session& session, core::GateId gate)
      : session_(&session), gate_(gate) {}

  // --- byte-level primitives ----------------------------------------------
  MpiRequest isend_bytes(std::span<const std::byte> data, core::Tag tag);
  MpiRequest irecv_bytes(std::span<std::byte> buffer, core::Tag tag);
  void send_bytes(std::span<const std::byte> data, core::Tag tag);
  RecvStatus recv_bytes(std::span<std::byte> buffer, core::Tag tag);

  // --- typed convenience (trivially copyable element types) ----------------
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  MpiRequest isend(std::span<const T> data, core::Tag tag) {
    return isend_bytes(std::as_bytes(data), tag);
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  MpiRequest irecv(std::span<T> buffer, core::Tag tag) {
    return irecv_bytes(std::as_writable_bytes(buffer), tag);
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  void send(std::span<const T> data, core::Tag tag) {
    send_bytes(std::as_bytes(data), tag);
  }
  template <typename T>
    requires std::is_trivially_copyable_v<T>
  RecvStatus recv(std::span<T> buffer, core::Tag tag) {
    return recv_bytes(std::as_writable_bytes(buffer), tag);
  }

  /// Simultaneous exchange (MPI_Sendrecv): both directions in flight at
  /// once, so the multi-rail engine can overlap them.
  RecvStatus sendrecv(std::span<const std::byte> send_data, core::Tag send_tag,
                      std::span<std::byte> recv_buffer, core::Tag recv_tag);

  /// Two-party barrier: a zero-byte token each way on a reserved tag.
  void barrier();

  [[nodiscard]] core::Session& session() noexcept { return *session_; }
  [[nodiscard]] core::GateId gate() const noexcept { return gate_; }

 private:
  /// Tag space reserved for barrier tokens; user tags must stay below.
  static constexpr core::Tag kBarrierTag = 0xffffffffu;

  core::Session* session_;
  core::GateId gate_;
};

}  // namespace nmad::api
