// Observability primitives: the event-counter vocabulary every layer of
// the library speaks (rail counters in the scheduler and drivers, strategy
// counters in strat/, request aggregates in core/).
//
// Design constraints (docs/ARCHITECTURE.md §Observability):
//  - zero heap allocation and no branches beyond the arithmetic on the hot
//    path: Counter::inc is one add, Histogram::record is a bit_width plus
//    two adds into fixed storage;
//  - the whole layer compiles out: with NMAD_METRICS_ENABLED=0 (CMake
//    option NMAD_METRICS=OFF) every type below collapses to an empty
//    no-op shell with the identical API, so instrumented code builds
//    unchanged and readers observe zeros;
//  - single-threaded by design, like the progression engine that drives
//    all instrumented paths — increments are plain (non-atomic) stores.
#pragma once

#include <array>
#include <bit>
#include <cstdint>

#if !defined(NMAD_METRICS_ENABLED)
#define NMAD_METRICS_ENABLED 1
#endif

namespace nmad::obs {

inline constexpr bool kMetricsEnabled = NMAD_METRICS_ENABLED != 0;

/// Number of log2 buckets in every Histogram: bucket 0 holds exact zeros,
/// bucket i (i >= 1) holds values in [2^(i-1), 2^i), and the last bucket
/// absorbs everything beyond it.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Index of the bucket a value falls into (shared by the live histogram
/// and snapshot consumers).
[[nodiscard]] constexpr std::size_t histogram_bucket_index(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const auto w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

/// Smallest value belonging to bucket `i` (0, 1, 2, 4, 8, ...).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_lower_bound(std::size_t i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

#if NMAD_METRICS_ENABLED

/// Monotonic event counter. Wraps around on overflow (mod 2^64), which
/// snapshot deltas handle transparently via unsigned subtraction.
class Counter {
 public:
  void inc(std::uint64_t n = 1) noexcept { value_ += n; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }
  void reset() noexcept { value_ = 0; }

 private:
  std::uint64_t value_ = 0;
};

/// Signed level indicator with a high-water mark (e.g. backlog depth).
class Gauge {
 public:
  void set(std::int64_t v) noexcept {
    value_ = v;
    if (v > high_water_) high_water_ = v;
  }
  void add(std::int64_t d) noexcept { set(value_ + d); }
  void sub(std::int64_t d) noexcept { set(value_ - d); }
  [[nodiscard]] std::int64_t value() const noexcept { return value_; }
  [[nodiscard]] std::int64_t high_water() const noexcept { return high_water_; }
  void reset() noexcept { value_ = 0; high_water_ = 0; }

 private:
  std::int64_t value_ = 0;
  std::int64_t high_water_ = 0;
};

/// Fixed-log2-bucket histogram for sizes and latencies. All storage is
/// inline; record() never allocates.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept {
    buckets_[histogram_bucket_index(v)] += 1;
    count_ += 1;
    sum_ += v;
  }
  [[nodiscard]] std::uint64_t count() const noexcept { return count_; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return sum_; }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i];
  }
  void reset() noexcept {
    buckets_.fill(0);
    count_ = 0;
    sum_ = 0;
  }

 private:
  std::array<std::uint64_t, kHistogramBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

#else  // NMAD_METRICS_ENABLED == 0: no-op shells, identical API.

class Counter {
 public:
  void inc(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void sub(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  [[nodiscard]] std::int64_t high_water() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t) const noexcept { return 0; }
  void reset() noexcept {}
};

#endif  // NMAD_METRICS_ENABLED

}  // namespace nmad::obs
