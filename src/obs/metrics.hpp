// Observability primitives: the event-counter vocabulary every layer of
// the library speaks (rail counters in the scheduler and drivers, strategy
// counters in strat/, request aggregates in core/).
//
// Design constraints (docs/ARCHITECTURE.md §Observability):
//  - zero heap allocation and no locks on the hot path: Counter::inc is one
//    relaxed atomic add, Histogram::record is a bit_width plus two relaxed
//    adds into fixed storage;
//  - the whole layer compiles out: with NMAD_METRICS_ENABLED=0 (CMake
//    option NMAD_METRICS=OFF) every type below collapses to an empty
//    no-op shell with the identical API, so instrumented code builds
//    unchanged and readers observe zeros;
//  - race-free under the threaded progression engine: every cell is a
//    std::atomic updated with memory_order_relaxed, so per-rail progress
//    threads increment concurrently without serializing on each other.
//    Relaxed ordering is sufficient — metrics are monotonic event tallies
//    read on the cold path (snapshots), never used for synchronization.
//    Cross-cell consistency (e.g. a histogram's count vs its buckets) is
//    only guaranteed on a quiescent engine, which is when snapshots are
//    taken.
//
// The types are copyable (setup-time convenience: Rail vectors move while
// gates are assembled); copies transfer the current values with relaxed
// loads and must not race with concurrent writers — which holds because
// copies only happen before the progress threads start.
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>

#if !defined(NMAD_METRICS_ENABLED)
#define NMAD_METRICS_ENABLED 1
#endif

namespace nmad::obs {

inline constexpr bool kMetricsEnabled = NMAD_METRICS_ENABLED != 0;

/// Number of log2 buckets in every Histogram: bucket 0 holds exact zeros,
/// bucket i (i >= 1) holds values in [2^(i-1), 2^i), and the last bucket
/// absorbs everything beyond it.
inline constexpr std::size_t kHistogramBuckets = 64;

/// Index of the bucket a value falls into (shared by the live histogram
/// and snapshot consumers).
[[nodiscard]] constexpr std::size_t histogram_bucket_index(std::uint64_t v) noexcept {
  if (v == 0) return 0;
  const auto w = static_cast<std::size_t>(std::bit_width(v));
  return w < kHistogramBuckets ? w : kHistogramBuckets - 1;
}

/// Smallest value belonging to bucket `i` (0, 1, 2, 4, 8, ...).
[[nodiscard]] constexpr std::uint64_t histogram_bucket_lower_bound(std::size_t i) noexcept {
  return i == 0 ? 0 : std::uint64_t{1} << (i - 1);
}

#if NMAD_METRICS_ENABLED

/// Monotonic event counter. Wraps around on overflow (mod 2^64), which
/// snapshot deltas handle transparently via unsigned subtraction.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter& other) noexcept
      : value_(other.value_.load(std::memory_order_relaxed)) {}
  Counter& operator=(const Counter& other) noexcept {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    return *this;
  }

  void inc(std::uint64_t n = 1) noexcept {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Signed level indicator with a high-water mark (e.g. backlog depth).
/// add/sub are atomic read-modify-writes; the high-water mark is maintained
/// with a relaxed CAS max, so concurrent updaters never lose a peak.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge& other) noexcept
      : value_(other.value_.load(std::memory_order_relaxed)),
        high_water_(other.high_water_.load(std::memory_order_relaxed)) {}
  Gauge& operator=(const Gauge& other) noexcept {
    value_.store(other.value_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    high_water_.store(other.high_water_.load(std::memory_order_relaxed),
                      std::memory_order_relaxed);
    return *this;
  }

  void set(std::int64_t v) noexcept {
    value_.store(v, std::memory_order_relaxed);
    raise_high_water(v);
  }
  void add(std::int64_t d) noexcept {
    const std::int64_t nv = value_.fetch_add(d, std::memory_order_relaxed) + d;
    raise_high_water(nv);
  }
  void sub(std::int64_t d) noexcept { add(-d); }
  [[nodiscard]] std::int64_t value() const noexcept {
    return value_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t high_water() const noexcept {
    return high_water_.load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    value_.store(0, std::memory_order_relaxed);
    high_water_.store(0, std::memory_order_relaxed);
  }

 private:
  void raise_high_water(std::int64_t v) noexcept {
    std::int64_t hw = high_water_.load(std::memory_order_relaxed);
    while (v > hw && !high_water_.compare_exchange_weak(
                         hw, v, std::memory_order_relaxed)) {
    }
  }

  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> high_water_{0};
};

/// Fixed-log2-bucket histogram for sizes and latencies. All storage is
/// inline; record() never allocates.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram& other) noexcept { *this = other; }
  Histogram& operator=(const Histogram& other) noexcept {
    for (std::size_t i = 0; i < kHistogramBuckets; ++i) {
      buckets_[i].store(other.buckets_[i].load(std::memory_order_relaxed),
                        std::memory_order_relaxed);
    }
    count_.store(other.count_.load(std::memory_order_relaxed),
                 std::memory_order_relaxed);
    sum_.store(other.sum_.load(std::memory_order_relaxed),
               std::memory_order_relaxed);
    return *this;
  }

  void record(std::uint64_t v) noexcept {
    buckets_[histogram_bucket_index(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t count() const noexcept {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t i) const noexcept {
    return buckets_[i].load(std::memory_order_relaxed);
  }
  void reset() noexcept {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kHistogramBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
};

#else  // NMAD_METRICS_ENABLED == 0: no-op shells, identical API.

class Counter {
 public:
  void inc(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void reset() noexcept {}
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  void sub(std::int64_t) noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
  [[nodiscard]] std::int64_t high_water() const noexcept { return 0; }
  void reset() noexcept {}
};

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] std::uint64_t count() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t sum() const noexcept { return 0; }
  [[nodiscard]] std::uint64_t bucket(std::size_t) const noexcept { return 0; }
  void reset() noexcept {}
};

#endif  // NMAD_METRICS_ENABLED

}  // namespace nmad::obs
