#include "obs/registry.hpp"

#include <utility>

#include "util/fmt.hpp"
#include "util/panic.hpp"

namespace nmad::obs {

namespace {

/// Intermediate tree for the nested-JSON renderer: either an object (has
/// children) or a leaf holding an already-rendered JSON value.
struct JsonNode {
  std::map<std::string, JsonNode> children;
  std::string value;
  bool leaf = false;
};

void insert_path(JsonNode& root, const std::string& dotted, std::string value) {
  JsonNode* node = &root;
  std::size_t start = 0;
  for (;;) {
    const std::size_t dot = dotted.find('.', start);
    const std::string part = dotted.substr(start, dot - start);
    NMAD_ASSERT(!part.empty(), "empty component in metric name");
    NMAD_ASSERT(!node->leaf, "metric name nests under a leaf value");
    node = &node->children[part];
    if (dot == std::string::npos) break;
    start = dot + 1;
  }
  NMAD_ASSERT(!node->leaf && node->children.empty(),
              "duplicate or conflicting metric name");
  node->leaf = true;
  node->value = std::move(value);
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += util::sformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

void render(const JsonNode& node, std::string& out, int depth, int indent) {
  if (node.leaf) {
    out += node.value;
    return;
  }
  if (node.children.empty()) {
    out += "{}";
    return;
  }
  const std::string pad(static_cast<std::size_t>(depth + 1) * indent, ' ');
  out += "{\n";
  bool first = true;
  for (const auto& [key, child] : node.children) {
    if (!first) out += ",\n";
    first = false;
    out += pad;
    out += '"';
    out += json_escape(key);
    out += "\": ";
    render(child, out, depth + 1, indent);
  }
  out += "\n";
  out.append(static_cast<std::size_t>(depth) * indent, ' ');
  out += "}";
}

std::string render_histogram(const HistogramData& h) {
  std::string buckets;
  for (std::size_t i = 0; i < h.buckets.size(); ++i) {
    if (h.buckets[i] == 0) continue;
    if (!buckets.empty()) buckets += ", ";
    buckets += util::sformat("\"%llu\": %llu",
                             static_cast<unsigned long long>(histogram_bucket_lower_bound(i)),
                             static_cast<unsigned long long>(h.buckets[i]));
  }
  return util::sformat("{\"count\": %llu, \"sum\": %llu, \"buckets\": {%s}}",
                       static_cast<unsigned long long>(h.count),
                       static_cast<unsigned long long>(h.sum), buckets.c_str());
}

}  // namespace

Snapshot delta(const Snapshot& before, const Snapshot& after) {
  Snapshot d;
  for (const auto& [name, v] : after.counters) {
    auto it = before.counters.find(name);
    const std::uint64_t base = it == before.counters.end() ? 0 : it->second;
    d.counters[name] = v - base;  // wraparound-correct by unsigned arithmetic
  }
  d.gauges = after.gauges;
  for (const auto& [name, h] : after.histograms) {
    HistogramData out = h;
    if (auto it = before.histograms.find(name); it != before.histograms.end()) {
      out.count -= it->second.count;
      out.sum -= it->second.sum;
      for (std::size_t i = 0; i < out.buckets.size(); ++i) {
        out.buckets[i] -= it->second.buckets[i];
      }
    }
    d.histograms[name] = out;
  }
  d.labels = after.labels;
  return d;
}

std::string dump_json(const Snapshot& snapshot, int indent) {
  JsonNode root;
  for (const auto& [name, v] : snapshot.counters) {
    insert_path(root, name,
                util::sformat("%llu", static_cast<unsigned long long>(v)));
  }
  for (const auto& [name, g] : snapshot.gauges) {
    insert_path(root, name,
                util::sformat("{\"value\": %lld, \"hwm\": %lld}",
                              static_cast<long long>(g.value),
                              static_cast<long long>(g.high_water)));
  }
  for (const auto& [name, h] : snapshot.histograms) {
    insert_path(root, name, render_histogram(h));
  }
  for (const auto& [name, s] : snapshot.labels) {
    insert_path(root, name, "\"" + json_escape(s) + "\"");
  }
  std::string out;
  render(root, out, 0, indent);
  return out;
}

void MetricsRegistry::check_fresh(const std::string& name) const {
  const bool taken = counters_.contains(name) || raw_counters_.contains(name) ||
                     atomic_counters_.contains(name) ||
                     gauges_.contains(name) || histograms_.contains(name) ||
                     labels_.contains(name);
  NMAD_ASSERT(!taken, "duplicate metric name registered");
}

void MetricsRegistry::add(std::string name, const Counter* counter) {
  NMAD_ASSERT(counter != nullptr, "null counter registered");
  check_fresh(name);
  counters_.emplace(std::move(name), counter);
}

void MetricsRegistry::add(std::string name, const Gauge* gauge) {
  NMAD_ASSERT(gauge != nullptr, "null gauge registered");
  check_fresh(name);
  gauges_.emplace(std::move(name), gauge);
}

void MetricsRegistry::add(std::string name, const Histogram* histogram) {
  NMAD_ASSERT(histogram != nullptr, "null histogram registered");
  check_fresh(name);
  histograms_.emplace(std::move(name), histogram);
}

void MetricsRegistry::add_raw(std::string name, const std::uint64_t* cell) {
  NMAD_ASSERT(cell != nullptr, "null raw counter registered");
  check_fresh(name);
  raw_counters_.emplace(std::move(name), cell);
}

void MetricsRegistry::add(std::string name,
                          const std::atomic<std::uint64_t>* cell) {
  NMAD_ASSERT(cell != nullptr, "null atomic counter registered");
  check_fresh(name);
  atomic_counters_.emplace(std::move(name), cell);
}

void MetricsRegistry::label(std::string name, std::string value) {
  check_fresh(name);
  labels_.emplace(std::move(name), std::move(value));
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot s;
  for (const auto& [name, c] : counters_) s.counters[name] = c->value();
  for (const auto& [name, cell] : raw_counters_) s.counters[name] = *cell;
  for (const auto& [name, cell] : atomic_counters_) {
    s.counters[name] = cell->load(std::memory_order_relaxed);
  }
  for (const auto& [name, g] : gauges_) {
    s.gauges[name] = GaugeData{g->value(), g->high_water()};
  }
  for (const auto& [name, h] : histograms_) {
    HistogramData data;
    data.count = h->count();
    data.sum = h->sum();
    for (std::size_t i = 0; i < data.buckets.size(); ++i) data.buckets[i] = h->bucket(i);
    s.histograms[name] = data;
  }
  s.labels = labels_;
  return s;
}

std::string MetricsRegistry::dump_json(int indent) const {
  return obs::dump_json(snapshot(), indent);
}

std::size_t MetricsRegistry::size() const noexcept {
  return counters_.size() + raw_counters_.size() + atomic_counters_.size() +
         gauges_.size() + histograms_.size() + labels_.size();
}

}  // namespace nmad::obs
