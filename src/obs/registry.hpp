// MetricsRegistry: a cold-path directory of live metrics.
//
// Instrumented components own their metric objects inline (hot path);
// registration only records {dotted name -> pointer} so tools can read
// everything in one place. Reading is done through value-typed Snapshots —
// plain data that outlives the instrumented objects — so benchmarks can
// capture a platform's counters right before tearing it down, and tests
// can diff two captures with delta().
//
// Naming convention: dot-separated hierarchical names
// ("a.gate0.rail1.bytes_sent"); dump_json() nests objects on the dots, so
// a snapshot renders as a tree CI tooling can walk (ci/check_bench_json.py
// gates on the per-rail subtrees).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "obs/metrics.hpp"

namespace nmad::obs {

/// Value-typed copy of one Histogram.
struct HistogramData {
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kHistogramBuckets> buckets{};
};

/// Value-typed copy of one Gauge.
struct GaugeData {
  std::int64_t value = 0;
  std::int64_t high_water = 0;
};

/// A point-in-time copy of every registered metric. Plain data: safe to
/// keep after the instrumented objects are gone.
struct Snapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, GaugeData> gauges;
  std::map<std::string, HistogramData> histograms;
  /// Non-numeric annotations (NIC names, strategy names).
  std::map<std::string, std::string> labels;
};

/// Per-name difference `after - before`. Counters and histogram buckets
/// subtract with unsigned wraparound (so counter overflow between the two
/// snapshots still yields the true event count); gauges and labels are
/// level/state, not flow — they are taken from `after` as-is. Names absent
/// from `before` are treated as zero.
[[nodiscard]] Snapshot delta(const Snapshot& before, const Snapshot& after);

/// Render a snapshot as pretty-printed JSON, nesting objects on the '.'
/// separators in metric names. Deterministic (keys sorted). Histograms
/// render as {"count", "sum", "buckets": {"<lower_bound>": n, ...}} with
/// empty buckets omitted; gauges as {"value", "hwm"}.
[[nodiscard]] std::string dump_json(const Snapshot& snapshot, int indent = 2);

class MetricsRegistry {
 public:
  /// Register a live metric under `name`. The pointed-to object must stay
  /// alive for any later snapshot()/dump_json() call. Names must be unique
  /// across all kinds.
  void add(std::string name, const Counter* counter);
  void add(std::string name, const Gauge* gauge);
  void add(std::string name, const Histogram* histogram);
  /// Register a plain uint64 cell (pre-obs driver stats) as a counter.
  void add_raw(std::string name, const std::uint64_t* cell);
  /// Register a ground-truth atomic counter (progression-engine
  /// backpressure cells, which must stay live — and registrable — even
  /// when obs::Counter is compiled out with NMAD_METRICS=OFF).
  void add(std::string name, const std::atomic<std::uint64_t>* cell);
  /// Attach a string annotation (copied immediately, no lifetime coupling).
  void label(std::string name, std::string value);

  [[nodiscard]] Snapshot snapshot() const;
  [[nodiscard]] std::string dump_json(int indent = 2) const;
  [[nodiscard]] std::size_t size() const noexcept;

 private:
  void check_fresh(const std::string& name) const;

  std::map<std::string, const Counter*> counters_;
  std::map<std::string, const std::uint64_t*> raw_counters_;
  std::map<std::string, const std::atomic<std::uint64_t>*> atomic_counters_;
  std::map<std::string, const Gauge*> gauges_;
  std::map<std::string, const Histogram*> histograms_;
  std::map<std::string, std::string> labels_;
};

}  // namespace nmad::obs
