#include "strat/strategy.hpp"

#include <array>

#include "strat/builtin.hpp"
#include "util/panic.hpp"

namespace nmad::strat {

namespace {
constexpr std::array<std::string_view, 6> kNames{
    "single_rail", "aggreg", "greedy", "aggreg_greedy", "split_balance",
    "iso_split"};
}  // namespace

std::unique_ptr<Strategy> make_strategy(std::string_view name,
                                        const StrategyConfig& cfg) {
  if (name == "single_rail") return make_single_rail(cfg);
  if (name == "aggreg") return make_aggreg(cfg);
  if (name == "greedy") return make_greedy(cfg);
  if (name == "aggreg_greedy") return make_aggreg_greedy(cfg);
  if (name == "split_balance") return make_split_balance(cfg);
  if (name == "iso_split") return make_iso_split(cfg);
  NMAD_PANIC("unknown strategy name");
}

std::span<const std::string_view> strategy_names() noexcept { return kNames; }

}  // namespace nmad::strat
