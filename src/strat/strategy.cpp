#include "strat/strategy.hpp"

#include <array>

#include "obs/registry.hpp"
#include "strat/builtin.hpp"
#include "util/panic.hpp"

namespace nmad::strat {

void StrategyMetrics::register_into(obs::MetricsRegistry& registry,
                                    const std::string& prefix) const {
  registry.add(prefix + "small_submitted", &small_submitted);
  registry.add(prefix + "large_submitted", &large_submitted);
  registry.add(prefix + "rdv_grants", &rdv_grants);
  registry.add(prefix + "stale_grants", &stale_grants);
  registry.add(prefix + "aggregation_hits", &aggregation_hits);
  registry.add(prefix + "aggregation_misses", &aggregation_misses);
  registry.add(prefix + "segments_split", &segments_split);
  registry.add(prefix + "chunks_created", &chunks_created);
  registry.add(prefix + "backlog_depth", &backlog_depth);
}

namespace {
constexpr std::array<std::string_view, 6> kNames{
    "single_rail", "aggreg", "greedy", "aggreg_greedy", "split_balance",
    "iso_split"};
}  // namespace

std::unique_ptr<Strategy> make_strategy(std::string_view name,
                                        const StrategyConfig& cfg) {
  if (name == "single_rail") return make_single_rail(cfg);
  if (name == "aggreg") return make_aggreg(cfg);
  if (name == "greedy") return make_greedy(cfg);
  if (name == "aggreg_greedy") return make_aggreg_greedy(cfg);
  if (name == "split_balance") return make_split_balance(cfg);
  if (name == "iso_split") return make_iso_split(cfg);
  NMAD_PANIC("unknown strategy name");
}

std::span<const std::string_view> strategy_names() noexcept { return kNames; }

}  // namespace nmad::strat
