#include "strat/rate_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "obs/registry.hpp"
#include "util/panic.hpp"

namespace nmad::strat {

namespace {

/// Relaxed load/store shorthands: all cross-thread traffic on the published
/// estimates is monotonic telemetry, same contract as the obs types.
double ld(const std::atomic<double>& a) {
  return a.load(std::memory_order_relaxed);
}
void st(std::atomic<double>& a, double v) {
  a.store(v, std::memory_order_relaxed);
}

}  // namespace

RateEstimator::RateEstimator(std::size_t rails, core::AdaptiveConfig cfg)
    : cfg_(cfg), rails_(rails) {
  NMAD_ASSERT(rails > 0, "estimator needs at least one rail");
  NMAD_ASSERT(cfg_.ewma_alpha > 0.0 && cfg_.ewma_alpha <= 1.0,
              "ewma_alpha must be in (0, 1]");
  NMAD_ASSERT(cfg_.confidence_halflife_ns > 0, "confidence halflife must be > 0");
}

double RateEstimator::decayed_conf(const RailEst& r, sim::TimeNs now) const {
  const double c = ld(r.conf);
  if (c <= 0.0) return 0.0;
  const sim::TimeNs last = r.last_event.load(std::memory_order_relaxed);
  if (now <= last) return c;
  const double halflives = static_cast<double>(now - last) /
                           static_cast<double>(cfg_.confidence_halflife_ns);
  return c * std::exp2(-halflives);
}

void RateEstimator::bump_confidence(RailEst& r, sim::TimeNs now) {
  // Decay to now, then move toward 1 by one EWMA step: a steady sample
  // stream converges to full confidence, a stale estimate fades.
  const double c = decayed_conf(r, now);
  st(r.conf, c + cfg_.ewma_alpha * (1.0 - c));
  r.last_event.store(now, std::memory_order_relaxed);
  r.nsamples.fetch_add(1, std::memory_order_relaxed);
  r.c_samples.inc();
  r.g_confidence_pct.set(static_cast<std::int64_t>(ld(r.conf) * 100.0));
}

void RateEstimator::note_transfer(core::RailIndex rail, std::uint64_t bytes,
                                  sim::TimeNs duration, sim::TimeNs now) {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  if (bytes == 0) return;
  RailEst& r = rails_[rail];
  // bytes[B] / duration[ns] * 1000 == MB/s with MB = 1e6 B (paper axis).
  const double mbps =
      static_cast<double>(bytes) * 1000.0 /
      static_cast<double>(std::max<sim::TimeNs>(duration, 1));
  const double prev = ld(r.bw_mbps);
  // Fast attack: when the observed rate is far outside the estimate (a
  // recovered link jumping back to nominal, or a sudden collapse), the
  // smooth alpha would take ~1/alpha samples to catch up — and an
  // under-weighted rail produces few samples. Double the step for >=2x
  // deviations so regime changes converge in a couple of observations.
  double alpha = cfg_.ewma_alpha;
  if (prev > 0.0 && (mbps > 2.0 * prev || mbps < 0.5 * prev)) {
    alpha = std::min(2.0 * alpha, 0.75);
  }
  const double next = prev <= 0.0 ? mbps : prev + alpha * (mbps - prev);
  st(r.bw_mbps, next);
  bump_confidence(r, now);
  r.g_bandwidth_mbps.set(static_cast<std::int64_t>(next));
}

void RateEstimator::note_rtt(core::RailIndex rail, sim::TimeNs rtt,
                             sim::TimeNs now) {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  RailEst& r = rails_[rail];
  const double sample = static_cast<double>(std::max<sim::TimeNs>(rtt, 1));
  const double prev = ld(r.rtt_ns);
  const double next =
      prev <= 0.0 ? sample : prev + cfg_.ewma_alpha * (sample - prev);
  st(r.rtt_ns, next);
  bump_confidence(r, now);
  r.g_rtt_us.set(static_cast<std::int64_t>(next / 2000.0));
}

void RateEstimator::note_timeout(core::RailIndex rail, sim::TimeNs now) {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  RailEst& r = rails_[rail];
  // A timeout is *evidence*, not absence of data: decay both what we
  // believe (bandwidth) and how much we believe it (confidence), so the
  // rail sheds split weight before the guard's state machine reacts.
  st(r.conf, decayed_conf(r, now) * cfg_.timeout_penalty);
  st(r.bw_mbps, ld(r.bw_mbps) * cfg_.timeout_penalty);
  r.last_event.store(now, std::memory_order_relaxed);
  r.g_bandwidth_mbps.set(static_cast<std::int64_t>(ld(r.bw_mbps)));
  r.g_confidence_pct.set(static_cast<std::int64_t>(ld(r.conf) * 100.0));
}

void RateEstimator::note_state(core::RailIndex rail, core::RailState state,
                               sim::TimeNs now) {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  RailEst& r = rails_[rail];
  const auto prev = static_cast<core::RailState>(
      r.state.exchange(static_cast<std::uint8_t>(state),
                       std::memory_order_relaxed));
  if (prev != core::RailState::kHealthy && state == core::RailState::kHealthy) {
    // Recovery — from suspect, or straight from dead/probing after a
    // reconnect handshake: start the ramp clock so the rail's weight
    // climbs back gradually instead of snapping to full.
    r.recovered_at.store(now, std::memory_order_relaxed);
  }
}

double RateEstimator::bandwidth_mbps(core::RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  return ld(rails_[rail].bw_mbps);
}

double RateEstimator::latency_us(core::RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  return ld(rails_[rail].rtt_ns) / 2000.0;
}

double RateEstimator::confidence(core::RailIndex rail, sim::TimeNs now) const {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  return decayed_conf(rails_[rail], now);
}

std::uint64_t RateEstimator::samples(core::RailIndex rail) const {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  return rails_[rail].nsamples.load(std::memory_order_relaxed);
}

double RateEstimator::health_factor(const RailEst& r, sim::TimeNs now) const {
  switch (static_cast<core::RailState>(r.state.load(std::memory_order_relaxed))) {
    case core::RailState::kDead:
    case core::RailState::kProbing:  // carries no traffic until the handshake
      return 0.0;
    case core::RailState::kSuspect:
      return cfg_.suspect_penalty;
    case core::RailState::kHealthy:
      break;
  }
  const sim::TimeNs rec = r.recovered_at.load(std::memory_order_relaxed);
  if (rec == 0 || cfg_.recovery_ramp_ns <= 0 ||
      now >= rec + cfg_.recovery_ramp_ns) {
    return 1.0;
  }
  const double frac = static_cast<double>(now - rec) /
                      static_cast<double>(cfg_.recovery_ramp_ns);
  return cfg_.suspect_penalty + (1.0 - cfg_.suspect_penalty) * frac;
}

double RateEstimator::effective_rate(core::RailIndex rail, double prior_mbps,
                                     sim::TimeNs now) const {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  const RailEst& r = rails_[rail];
  const double c = decayed_conf(r, now);
  const double live = ld(r.bw_mbps);
  // Confidence-weighted blend: no samples -> the boot-time prior is the
  // law; a confident live estimate overrides it almost entirely.
  const double blended =
      live > 0.0 ? (1.0 - c) * prior_mbps + c * live : prior_mbps;
  return blended * health_factor(r, now);
}

std::optional<std::vector<double>> RateEstimator::derive_ratios(
    std::span<const double> prior_mbps, std::span<const double> current,
    sim::TimeNs now) const {
  NMAD_ASSERT(prior_mbps.size() == rails_.size() &&
                  current.size() == rails_.size(),
              "derive_ratios vector size mismatch");
  std::vector<double> next(rails_.size(), 0.0);
  double sum = 0.0;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    next[i] = effective_rate(static_cast<core::RailIndex>(i), prior_mbps[i], now);
    sum += next[i];
  }
  if (sum <= 0.0) return std::nullopt;  // every rail dead: about to fail anyway
  for (double& w : next) w /= sum;

  // Weight floor for live rails: a starved rail carries no traffic, so the
  // estimator would never observe its recovery.
  bool floored = false;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    const auto state = static_cast<core::RailState>(
        rails_[i].state.load(std::memory_order_relaxed));
    if (state != core::RailState::kDead && state != core::RailState::kProbing &&
        next[i] < cfg_.min_weight) {
      next[i] = cfg_.min_weight;
      floored = true;
    }
  }
  if (floored) {
    sum = 0.0;
    for (double w : next) sum += w;
    for (double& w : next) w /= sum;
  }

  double max_delta = 0.0;
  for (std::size_t i = 0; i < rails_.size(); ++i) {
    max_delta = std::max(max_delta, std::abs(next[i] - current[i]));
  }
  if (max_delta <= cfg_.hysteresis) return std::nullopt;
  return next;
}

void RateEstimator::publish_weight(core::RailIndex rail, double weight) {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  rails_[rail].g_weight_pct.set(static_cast<std::int64_t>(weight * 100.0));
}

void RateEstimator::register_rail_into(obs::MetricsRegistry& registry,
                                       core::RailIndex rail,
                                       const std::string& prefix) const {
  NMAD_ASSERT(rail < rails_.size(), "estimator rail index out of range");
  const RailEst& r = rails_[rail];
  registry.add(prefix + "bandwidth_mbps", &r.g_bandwidth_mbps);
  registry.add(prefix + "rtt_us", &r.g_rtt_us);
  registry.add(prefix + "confidence_pct", &r.g_confidence_pct);
  registry.add(prefix + "weight_pct", &r.g_weight_pct);
  registry.add(prefix + "samples", &r.c_samples);
}

}  // namespace nmad::strat
