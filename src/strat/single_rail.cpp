// StrategySingleRail: the non-rewriting baseline. Every segment travels on
// one fixed rail, one segment per packet, in submission order. This is the
// "regular messages" reference of Figures 2-5.

#include "core/gate.hpp"
#include "strat/backlog.hpp"
#include "strat/builtin.hpp"

namespace nmad::strat {

namespace {

class StrategySingleRail final : public BacklogBase {
 public:
  explicit StrategySingleRail(StrategyConfig cfg) : BacklogBase(cfg) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "single_rail";
  }

  std::optional<PacketPlan> try_pack(core::Gate& gate, core::Rail& rail,
                                     drv::Track track) override {
    // The fixed rail owns all traffic while it lives; once dead, any
    // surviving rail the pump offers may take over.
    if (rail.index() != cfg_.rail && gate.rail(cfg_.rail).alive()) {
      return std::nullopt;
    }
    if (track == drv::Track::kSmall) return pack_small_single(gate, rail);
    return pack_chunk(gate, rail);
  }

 private:
  void plan_grant(core::Gate& gate, core::MsgKey /*key*/,
                  std::vector<LargeEntry> entries) override {
    const std::int32_t affinity = gate.rail(cfg_.rail).alive()
                                      ? static_cast<std::int32_t>(cfg_.rail)
                                      : Chunk::kAnyRail;
    for (const LargeEntry& e : entries) {
      push_whole_chunk(e, affinity);
    }
  }
};

}  // namespace

std::unique_ptr<Strategy> make_single_rail(const StrategyConfig& cfg) {
  return std::make_unique<StrategySingleRail>(cfg);
}

}  // namespace nmad::strat
