// StrategyAggreg: single rail with opportunistic aggregation of small
// segments (paper §3.1, the "with opportunistic aggregation" series of
// Figures 2-3). Small segments accumulated in the backlog while the NIC is
// busy are copied into one contiguous eager packet when it goes idle.

#include "core/gate.hpp"
#include "strat/backlog.hpp"
#include "strat/builtin.hpp"

namespace nmad::strat {

namespace {

class StrategyAggreg final : public BacklogBase {
 public:
  explicit StrategyAggreg(StrategyConfig cfg) : BacklogBase(cfg) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "aggreg"; }

  std::optional<PacketPlan> try_pack(core::Gate& gate, core::Rail& rail,
                                     drv::Track track) override {
    // As single_rail: the configured rail owns the traffic while alive.
    if (rail.index() != cfg_.rail && gate.rail(cfg_.rail).alive()) {
      return std::nullopt;
    }
    if (track == drv::Track::kSmall) return pack_small_aggregated(gate, rail);
    return pack_chunk(gate, rail);
  }

 private:
  void plan_grant(core::Gate& gate, core::MsgKey /*key*/,
                  std::vector<LargeEntry> entries) override {
    const std::int32_t affinity = gate.rail(cfg_.rail).alive()
                                      ? static_cast<std::int32_t>(cfg_.rail)
                                      : Chunk::kAnyRail;
    for (const LargeEntry& e : entries) {
      push_whole_chunk(e, affinity);
    }
  }
};

}  // namespace

std::unique_ptr<Strategy> make_aggreg(const StrategyConfig& cfg) {
  return std::make_unique<StrategyAggreg>(cfg);
}

}  // namespace nmad::strat
