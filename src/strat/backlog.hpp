// Shared machinery for the built-in strategies: the segment backlog, the
// parked-until-granted large messages, the granted-chunk queue, and the
// packet-building helpers (single-segment eager, aggregated eager, DMA
// chunk). Each concrete strategy only supplies policy: which rail may take
// small segments, whether they are aggregated, and how a granted large
// message is split into chunks.
#pragma once

#include <deque>
#include <map>
#include <optional>
#include <vector>

#include "strat/strategy.hpp"

namespace nmad::strat {

class BacklogBase : public Strategy {
 public:
  explicit BacklogBase(StrategyConfig cfg) : cfg_(cfg) {}

  void on_submit_small(core::Gate& gate, SmallEntry entry) override;
  void on_submit_large(core::Gate& gate, LargeEntry entry) override;
  void on_rdv_granted(core::Gate& gate, core::MsgKey key) override;
  [[nodiscard]] bool has_backlog() const noexcept override;
  /// Chunks pinned to the dead rail float to "first free NIC" so the
  /// survivors drain them.
  void on_rail_dead(core::Gate& gate, core::RailIndex rail) override;
  /// Drop the whole backlog: the requests it belongs to are being failed.
  void on_gate_failed(core::Gate& gate) override;

 protected:
  /// A granted piece of a large message, ready for a DMA track.
  struct Chunk {
    core::SendRequest* req = nullptr;
    std::span<const std::byte> data;
    std::uint32_t msg_offset = 0;
    /// Rail that must carry this chunk, or kAnyRail for "first free NIC".
    static constexpr std::int32_t kAnyRail = -1;
    std::int32_t rail_affinity = kAnyRail;
  };

  /// Policy hook: a message's rendezvous was granted; turn its large
  /// segments into chunks (push onto chunks_, possibly splitting).
  virtual void plan_grant(core::Gate& gate, core::MsgKey key,
                          std::vector<LargeEntry> entries) = 0;

  /// Pop the first small entry and emit it as one zero-copy eager packet
  /// (no rewriting — the paper's "regular" path): a pooled header block
  /// from `gate` plus a span referencing the segment in place.
  [[nodiscard]] std::optional<PacketPlan> pack_small_single(core::Gate& gate,
                                                           core::Rail& rail);

  /// Opportunistic aggregation: drain queued small entries into one eager
  /// packet while the payload fits both the rail's eager limit and the
  /// aggregation limit; charges the memcpy cost to the packet (paper §3.1:
  /// "copy the segments into a contiguous memory area and send them as a
  /// single chunk"; the copy overhead "is very low" but not zero). The
  /// staging buffer is recycled from `gate`'s pool; a packet that would
  /// carry a single segment falls back to the zero-copy single path.
  [[nodiscard]] std::optional<PacketPlan> pack_small_aggregated(core::Gate& gate,
                                                               core::Rail& rail);

  /// Emit the first queued chunk admissible on `rail` as a zero-copy DMA
  /// packet.
  [[nodiscard]] std::optional<PacketPlan> pack_chunk(core::Gate& gate,
                                                     core::Rail& rail);

  /// Split `entry` across `shares` (railindex, weight) pairs, honoring
  /// cfg_.min_chunk, and queue the chunks with rail affinity.
  void push_split_chunks(const LargeEntry& entry,
                         const std::vector<std::pair<std::int32_t, double>>& shares);

  /// Queue one unsplit chunk covering the whole entry.
  void push_whole_chunk(const LargeEntry& entry, std::int32_t affinity);

  /// Refresh the backlog-depth gauge (small + parked + granted chunks).
  void update_depth() noexcept;

  StrategyConfig cfg_;
  std::deque<SmallEntry> small_;
  std::map<core::MsgKey, std::vector<LargeEntry>> parked_;
  std::deque<Chunk> chunks_;
  /// Large entries currently parked (avoids walking parked_ per update).
  std::size_t parked_count_ = 0;
  /// Cap on segments per aggregated packet (bounds header overhead).
  static constexpr std::size_t kMaxAggregatedSegments = 64;
};

}  // namespace nmad::strat
