// StrategyAggregGreedy: the paper's second multi-rail strategy (§3.3).
// Small segments are aggregated and *favored onto the fastest-latency
// rail* (Quadrics on the paper's platform); large segments are balanced
// greedily across all rails. This fixes greedy's small-message regression
// while keeping the large-message aggregation gains — at the price of the
// Fig. 6 polling gap, which is a property of the platform (the idle NIC
// still has to be polled), not of this strategy.

#include "core/gate.hpp"
#include "strat/backlog.hpp"
#include "strat/builtin.hpp"

namespace nmad::strat {

namespace {

class StrategyAggregGreedy final : public BacklogBase {
 public:
  explicit StrategyAggregGreedy(StrategyConfig cfg) : BacklogBase(cfg) {}

  [[nodiscard]] std::string_view name() const noexcept override {
    return "aggreg_greedy";
  }

  std::optional<PacketPlan> try_pack(core::Gate& gate, core::Rail& rail,
                                     drv::Track track) override {
    if (track == drv::Track::kSmall) {
      if (rail.index() != gate.fastest_rail()) return std::nullopt;
      return pack_small_aggregated(gate, rail);
    }
    return pack_chunk(gate, rail);
  }

 private:
  void plan_grant(core::Gate& /*gate*/, core::MsgKey /*key*/,
                  std::vector<LargeEntry> entries) override {
    for (const LargeEntry& e : entries) {
      push_whole_chunk(e, Chunk::kAnyRail);
    }
  }
};

}  // namespace

std::unique_ptr<Strategy> make_aggreg_greedy(const StrategyConfig& cfg) {
  return std::make_unique<StrategyAggregGreedy>(cfg);
}

}  // namespace nmad::strat
