// The optimizing-scheduler ("strategy") plugin interface — the paper's
// middle layer (§2): interchangeable modules that rewrite the backlog of
// application requests into network packets, queried just-in-time whenever
// a NIC track becomes idle.
//
// The core scheduler performs the mechanics every strategy shares:
// classifying segments as small (eager-eligible) or large (rendezvous),
// emitting/answering rendezvous control packets, crediting completions and
// matching receives. Strategies own the *policy*: which backlog entry goes
// out next, on which rail, whether small segments are aggregated into one
// packet, and how a granted large message is split into chunks across
// rails.
//
// Strategies are oblivious to where traffic comes from: the collectives
// layer (src/coll/) deliberately emits every broadcast/reduce segment as an
// ordinary point-to-point message, so collective traffic enters the same
// backlog, is aggregated and rail-striped by the same policies, and needs
// no special-casing here (tests/test_coll.cpp verifies this).
//
// Locking contract: strategies keep plain (non-atomic) state — backlogs,
// windows, ratio samplers. The core scheduler consults them only with the
// world progress mutex held (serial mode holds it implicitly by being
// single-threaded; threaded progression takes it around every
// submit/pump/completion, see core/progress.hpp), so strategy code never
// needs its own synchronization.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/reliability.hpp"
#include "core/request.hpp"
#include "core/types.hpp"
#include "drv/driver.hpp"
#include "obs/metrics.hpp"

namespace nmad::core {
class Gate;
class Rail;
}  // namespace nmad::core

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::strat {

/// One small (eager-eligible) segment waiting in the backlog.
struct SmallEntry {
  core::SendRequest* req = nullptr;
  std::span<const std::byte> data;
  std::uint32_t msg_offset = 0;
};

/// One large segment of a message whose rendezvous has been granted; the
/// strategy turns it into chunks when large tracks go idle.
struct LargeEntry {
  core::SendRequest* req = nullptr;
  std::span<const std::byte> data;
  std::uint32_t msg_offset = 0;
};

/// Payload-bytes credit applied to a send request when the packet carrying
/// it completes locally.
struct Contribution {
  core::SendRequest* req = nullptr;
  std::uint32_t bytes = 0;
};

/// A packet the strategy decided to emit, plus its completion bookkeeping.
struct PacketPlan {
  drv::SendDesc desc;
  std::vector<Contribution> contribs;
};

/// Policy-level event counters, one set per strategy instance (i.e. per
/// gate). Compiled out with NMAD_METRICS=OFF like all obs types.
struct StrategyMetrics {
  /// Backlog entries accepted, by class.
  obs::Counter small_submitted;
  obs::Counter large_submitted;
  /// Rendezvous grants received from the peer.
  obs::Counter rdv_grants;
  /// Grants for messages no longer parked: failover reposts whose original
  /// landed, or grants for requests that failed during an outage. Dropped —
  /// grants are idempotent, not trusted to resurrect anything.
  obs::Counter stale_grants;
  /// Eager packets that coalesced >= 2 segments / went out alone.
  obs::Counter aggregation_hits;
  obs::Counter aggregation_misses;
  /// Large segments split into >= 2 chunks, and total chunks queued.
  obs::Counter segments_split;
  obs::Counter chunks_created;
  /// Entries waiting (small + parked + granted chunks); high-water mark is
  /// the optimization-window depth the paper's §2 mechanism builds up.
  obs::Gauge backlog_depth;

  void register_into(obs::MetricsRegistry& registry,
                     const std::string& prefix) const;
};

class Strategy {
 public:
  virtual ~Strategy() = default;

  [[nodiscard]] virtual std::string_view name() const noexcept = 0;

  /// A small segment entered the backlog (in submission order).
  virtual void on_submit_small(core::Gate& gate, SmallEntry entry) = 0;

  /// A large segment was submitted; it must be *parked* until
  /// on_rdv_granted fires for its message.
  virtual void on_submit_large(core::Gate& gate, LargeEntry entry) = 0;

  /// The receiver granted the rendezvous for message `key`: the parked
  /// large segments of that message become eligible for packing.
  virtual void on_rdv_granted(core::Gate& gate, core::MsgKey key) = 0;

  /// Just-in-time packing: `rail`'s `track` is idle — produce the next
  /// packet for it, or nullopt to leave the track idle. Called repeatedly
  /// until it returns nullopt.
  virtual std::optional<PacketPlan> try_pack(core::Gate& gate, core::Rail& rail,
                                             drv::Track track) = 0;

  /// True while any backlog (small, parked or granted large) remains.
  [[nodiscard]] virtual bool has_backlog() const noexcept = 0;

  /// Rail `rail` was declared dead. The strategy must stop targeting it:
  /// retarget any backlog pinned to that rail so the survivors can drain
  /// it. Default: no-op (single-rail strategies with a live rail, stateless
  /// policies).
  virtual void on_rail_dead(core::Gate& gate, core::RailIndex rail) {
    (void)gate;
    (void)rail;
  }

  /// Rail `rail` completed a reconnect handshake and is healthy again
  /// under a new epoch. Strategies that dropped it from their rail sets
  /// re-include it here; the adaptive rate estimator ramps its weight back
  /// in on its own. Default: no-op (rail-oblivious policies).
  virtual void on_rail_revived(core::Gate& gate, core::RailIndex rail) {
    (void)gate;
    (void)rail;
  }

  /// Every rail of the gate died: drop all backlog (the scheduler fails
  /// the requests). Default: no-op.
  virtual void on_gate_failed(core::Gate& gate) { (void)gate; }

  [[nodiscard]] const StrategyMetrics& metrics() const noexcept { return metrics_; }

  Strategy() = default;
  Strategy(const Strategy&) = delete;
  Strategy& operator=(const Strategy&) = delete;

 protected:
  StrategyMetrics metrics_;
};

/// Knobs shared by the built-in strategies; every field has the value used
/// in the paper's experiments as its default.
struct StrategyConfig {
  /// Aggregate small segments while the packet's payload stays at or below
  /// this (paper §3.1: copying wins below ~16 KB of accumulated data).
  std::uint32_t aggregation_limit = 16 * 1024;
  /// Never create a DMA chunk smaller than this when splitting, so every
  /// chunk stays on the DMA path (paper §3.4: packs "large enough to avoid
  /// the transfer of the different chunks with a PIO operation").
  std::uint32_t min_chunk = 8 * 1024 + 1;
  /// For single-rail strategies: which rail to use.
  core::RailIndex rail = 0;
  /// Per-rail reliability layer (sequencing, ack/retransmit, failover) —
  /// see core/reliability.hpp. Acks are off by default.
  core::ReliabilityConfig reliability;
  /// Online adaptive striping (core/reliability.hpp): re-derive the gate's
  /// split ratios each optimization window from live rail-rate estimates.
  /// Off by default — boot-time ratios stay frozen, the paper's v3.
  core::AdaptiveConfig adaptive;
};

/// Instantiate a built-in strategy by name. Known names:
///   "single_rail"    — everything on one rail (cfg.rail), no rewriting
///   "aggreg"         — single rail + opportunistic aggregation (Figs. 2-3)
///   "greedy"         — v1 greedy multi-rail balancing (Figs. 4-5)
///   "aggreg_greedy"  — v2 aggregation on fastest rail + greedy large (Fig. 6)
///   "split_balance"  — v3 sampling-ratio adaptive stripping (Fig. 7)
///   "iso_split"      — 50/50 stripping baseline (Fig. 7)
std::unique_ptr<Strategy> make_strategy(std::string_view name,
                                        const StrategyConfig& cfg = {});

/// Names accepted by make_strategy, in documentation order.
std::span<const std::string_view> strategy_names() noexcept;

}  // namespace nmad::strat
