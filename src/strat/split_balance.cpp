// StrategySplitBalance: the paper's third, final multi-rail strategy
// (§3.4) — and StrategyIsoSplit, the 50/50 baseline it is compared against
// in Figure 7.
//
// Small segments behave as in v2 (aggregated, fastest rail). A granted
// large message is *stripped* into chunks sized by per-rail ratios — from
// boot-time sampling for split_balance ("an adaptive stripping ratio can
// be determined... according to samplings performed on the different
// available NICs"), equal for iso_split — across the rails whose DMA
// tracks are idle at grant time. Every chunk is kept above the PIO
// threshold. If fewer than two DMA tracks are idle, the whole segment goes
// to the first free NIC, per the paper's closing recipe: "to split the
// large ones following some previously processed ratios when both NICs
// are available and if not, to send them over the first free one."

#include "core/gate.hpp"
#include "strat/backlog.hpp"
#include "strat/builtin.hpp"

namespace nmad::strat {

namespace {

class StrategySplitBase : public BacklogBase {
 public:
  explicit StrategySplitBase(StrategyConfig cfg) : BacklogBase(cfg) {}

  std::optional<PacketPlan> try_pack(core::Gate& gate, core::Rail& rail,
                                     drv::Track track) override {
    if (track == drv::Track::kSmall) {
      if (rail.index() != gate.fastest_rail()) return std::nullopt;
      return pack_small_aggregated(gate, rail);
    }
    return pack_chunk(gate, rail);
  }

 protected:
  /// Weight given to `rail` when splitting (policy hook).
  [[nodiscard]] virtual double rail_weight(core::Gate& gate,
                                           core::RailIndex rail) const = 0;

  void plan_grant(core::Gate& gate, core::MsgKey /*key*/,
                  std::vector<LargeEntry> entries) override {
    // Just-in-time rail selection: split across the healthy DMA tracks
    // that are idle right now (dead or suspect rails take no new stripes).
    std::vector<std::pair<std::int32_t, double>> shares;
    for (core::Rail& rail : gate.rails()) {
      if (rail.healthy() && rail.idle(drv::Track::kLarge)) {
        shares.emplace_back(static_cast<std::int32_t>(rail.index()),
                            rail_weight(gate, rail.index()));
      }
    }
    for (const LargeEntry& e : entries) {
      if (shares.size() < 2) {
        push_whole_chunk(e, Chunk::kAnyRail);
      } else {
        push_split_chunks(e, shares);
      }
    }
  }
};

class StrategySplitBalance final : public StrategySplitBase {
 public:
  using StrategySplitBase::StrategySplitBase;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "split_balance";
  }

 protected:
  [[nodiscard]] double rail_weight(core::Gate& gate,
                                   core::RailIndex rail) const override {
    // Boot-time sampling (or capability default) — re-derived online from
    // the gate's live rate estimates when adaptive striping is enabled
    // (gate.maybe_refresh_ratios). Read under the world progress lock,
    // per the strategy locking contract.
    return gate.ratio(rail);
  }
};

class StrategyIsoSplit final : public StrategySplitBase {
 public:
  using StrategySplitBase::StrategySplitBase;
  [[nodiscard]] std::string_view name() const noexcept override {
    return "iso_split";
  }

 protected:
  [[nodiscard]] double rail_weight(core::Gate& /*gate*/,
                                   core::RailIndex /*rail*/) const override {
    return 1.0;  // equal stripes regardless of rail speed
  }
};

}  // namespace

std::unique_ptr<Strategy> make_split_balance(const StrategyConfig& cfg) {
  return std::make_unique<StrategySplitBalance>(cfg);
}

std::unique_ptr<Strategy> make_iso_split(const StrategyConfig& cfg) {
  return std::make_unique<StrategyIsoSplit>(cfg);
}

}  // namespace nmad::strat
