#include "strat/backlog.hpp"

#include <algorithm>
#include <utility>

#include "core/gate.hpp"
#include "proto/wire.hpp"
#include "util/panic.hpp"

namespace nmad::strat {

namespace {

proto::SegHeader header_for(const core::SendRequest& req, std::uint32_t msg_offset,
                            std::uint32_t len) {
  return proto::SegHeader{req.tag(), req.seq(), msg_offset, len, req.total_len()};
}

}  // namespace

void BacklogBase::update_depth() noexcept {
  metrics_.backlog_depth.set(
      static_cast<std::int64_t>(small_.size() + parked_count_ + chunks_.size()));
}

void BacklogBase::on_submit_small(core::Gate& /*gate*/, SmallEntry entry) {
  small_.push_back(entry);
  metrics_.small_submitted.inc();
  update_depth();
}

void BacklogBase::on_submit_large(core::Gate& /*gate*/, LargeEntry entry) {
  parked_[entry.req->key()].push_back(entry);
  parked_count_ += 1;
  metrics_.large_submitted.inc();
  update_depth();
}

void BacklogBase::on_rdv_granted(core::Gate& gate, core::MsgKey key) {
  auto it = parked_.find(key);
  if (it == parked_.end()) {
    // A grant for a message we no longer hold. With failover and rail
    // resurrection in play this is legal noise, not a protocol error: a
    // dead rail's retained control frames are replayed on a survivor, so
    // the duplicate of a grant that already landed — or a grant for a
    // request that failed during a total outage — can arrive here. Grants
    // are idempotent; only the first one moves chunks.
    metrics_.stale_grants.inc();
    return;
  }
  std::vector<LargeEntry> entries = std::move(it->second);
  parked_.erase(it);
  parked_count_ -= entries.size();
  metrics_.rdv_grants.inc();
  plan_grant(gate, key, std::move(entries));
  update_depth();
}

bool BacklogBase::has_backlog() const noexcept {
  return !small_.empty() || !parked_.empty() || !chunks_.empty();
}

void BacklogBase::on_rail_dead(core::Gate& /*gate*/, core::RailIndex rail) {
  const auto idx = static_cast<std::int32_t>(rail);
  for (Chunk& c : chunks_) {
    if (c.rail_affinity == idx) c.rail_affinity = Chunk::kAnyRail;
  }
}

void BacklogBase::on_gate_failed(core::Gate& /*gate*/) {
  small_.clear();
  parked_.clear();
  parked_count_ = 0;
  chunks_.clear();
  update_depth();
}

std::optional<PacketPlan> BacklogBase::pack_small_single(core::Gate& gate,
                                                         core::Rail& /*rail*/) {
  if (small_.empty()) return std::nullopt;
  SmallEntry entry = small_.front();
  small_.pop_front();

  // Zero-copy: pooled header block + a span referencing the segment in
  // place; the user memory rides to the driver untouched.
  const auto len = static_cast<std::uint32_t>(entry.data.size());
  PacketPlan plan;
  plan.desc = drv::SendDesc{
      drv::Track::kSmall,
      proto::encode_data_packet_view(
          gate.header_pool(), header_for(*entry.req, entry.msg_offset, len),
          entry.data)};
  plan.contribs.push_back(Contribution{entry.req, len});
  metrics_.aggregation_misses.inc();
  update_depth();
  return plan;
}

std::optional<PacketPlan> BacklogBase::pack_small_aggregated(core::Gate& gate,
                                                             core::Rail& rail) {
  if (small_.empty()) return std::nullopt;

  const std::uint64_t budget =
      std::min<std::uint64_t>(rail.caps().max_small_packet, cfg_.aggregation_limit);

  // Pre-scan how many queued entries this packet will coalesce: always at
  // least one (a lone segment can equal the budget), afterwards only while
  // the payload still fits.
  std::size_t take = 0;
  std::uint64_t packed = 0;
  for (const SmallEntry& entry : small_) {
    if (take == kMaxAggregatedSegments) break;
    if (take > 0 && packed + entry.data.size() > budget) break;
    packed += entry.data.size();
    take += 1;
  }
  // Nothing to coalesce: use the zero-copy single-segment path instead of
  // paying the staging copy for one segment.
  if (take == 1) return pack_small_single(gate, rail);

  // Aggregation proper — the paper's deliberate memcpy into a contiguous
  // staging area (recycled from the gate's pool, not reallocated), charged
  // to the packet via extra_cpu_us.
  proto::GatherBuilder builder(proto::PacketKind::kData,
                               gate.header_pool().acquire(),
                               gate.staging_pool().acquire());
  PacketPlan plan;
  for (std::size_t i = 0; i < take; ++i) {
    const SmallEntry& entry = small_.front();
    const auto len = static_cast<std::uint32_t>(entry.data.size());
    builder.add_segment_staged(header_for(*entry.req, entry.msg_offset, len),
                               entry.data);
    plan.contribs.push_back(Contribution{entry.req, len});
    small_.pop_front();
  }
  metrics_.aggregation_hits.inc();
  const double copy_cost_us =
      static_cast<double>(packed) / rail.caps().copy_bandwidth_mbps;
  plan.desc = drv::SendDesc{drv::Track::kSmall, std::move(builder).finish(),
                            copy_cost_us};
  update_depth();
  return plan;
}

std::optional<PacketPlan> BacklogBase::pack_chunk(core::Gate& gate,
                                                  core::Rail& rail) {
  const auto idx = static_cast<std::int32_t>(rail.index());
  auto it = std::find_if(chunks_.begin(), chunks_.end(), [idx](const Chunk& c) {
    return c.rail_affinity == Chunk::kAnyRail || c.rail_affinity == idx;
  });
  if (it == chunks_.end()) return std::nullopt;
  Chunk chunk = *it;
  chunks_.erase(it);

  // DMA chunks are always zero-copy: the paper charges no host copy for
  // the rendezvous path, and neither do we.
  const auto len = static_cast<std::uint32_t>(chunk.data.size());
  PacketPlan plan;
  plan.desc = drv::SendDesc{
      drv::Track::kLarge,
      proto::encode_data_packet_view(
          gate.header_pool(), header_for(*chunk.req, chunk.msg_offset, len),
          chunk.data)};
  plan.contribs.push_back(Contribution{chunk.req, len});
  update_depth();
  return plan;
}

void BacklogBase::push_whole_chunk(const LargeEntry& entry, std::int32_t affinity) {
  chunks_.push_back(Chunk{entry.req, entry.data, entry.msg_offset, affinity});
  metrics_.chunks_created.inc();
  update_depth();
}

void BacklogBase::push_split_chunks(
    const LargeEntry& entry,
    const std::vector<std::pair<std::int32_t, double>>& shares) {
  NMAD_ASSERT(!shares.empty(), "split with no shares");
  const std::uint64_t len = entry.data.size();

  // Drop the lowest-weight shares until every chunk can be at least
  // min_chunk (so no chunk falls back onto the PIO path — paper §3.4).
  std::vector<std::pair<std::int32_t, double>> active(shares.begin(), shares.end());
  std::sort(active.begin(), active.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  while (active.size() > 1 && len / active.size() < cfg_.min_chunk) {
    active.pop_back();
  }
  // Also drop shares whose proportional slice would be below min_chunk.
  for (;;) {
    double total_w = 0;
    for (const auto& [_, w] : active) total_w += w;
    NMAD_ASSERT(total_w > 0.0, "split with zero total weight");
    const double slice =
        static_cast<double>(len) * active.back().second / total_w;
    if (active.size() == 1 || slice >= static_cast<double>(cfg_.min_chunk)) break;
    active.pop_back();
  }

  double total_w = 0;
  for (const auto& [_, w] : active) total_w += w;

  std::uint64_t offset = 0;
  std::uint64_t chunks_made = 0;
  for (std::size_t i = 0; i < active.size(); ++i) {
    std::uint64_t chunk_len;
    if (i + 1 == active.size()) {
      chunk_len = len - offset;  // remainder absorbs rounding
    } else {
      chunk_len = static_cast<std::uint64_t>(
          static_cast<double>(len) * active[i].second / total_w + 0.5);
      chunk_len = std::min(chunk_len, len - offset);
    }
    if (chunk_len == 0) continue;
    chunks_.push_back(Chunk{
        entry.req, entry.data.subspan(offset, chunk_len),
        entry.msg_offset + static_cast<std::uint32_t>(offset), active[i].first});
    offset += chunk_len;
    chunks_made += 1;
  }
  NMAD_ASSERT(offset == len, "split chunks do not cover the segment");
  metrics_.chunks_created.inc(chunks_made);
  if (chunks_made >= 2) metrics_.segments_split.inc();
  update_depth();
}

}  // namespace nmad::strat
