// Internal factory hooks for the built-in strategies (one per .cpp).
// Applications use strat::make_strategy (strategy.hpp) instead.
#pragma once

#include <memory>

#include "strat/strategy.hpp"

namespace nmad::strat {

std::unique_ptr<Strategy> make_single_rail(const StrategyConfig& cfg);
std::unique_ptr<Strategy> make_aggreg(const StrategyConfig& cfg);
std::unique_ptr<Strategy> make_greedy(const StrategyConfig& cfg);
std::unique_ptr<Strategy> make_aggreg_greedy(const StrategyConfig& cfg);
std::unique_ptr<Strategy> make_split_balance(const StrategyConfig& cfg);
std::unique_ptr<Strategy> make_iso_split(const StrategyConfig& cfg);

}  // namespace nmad::strat
