// StrategyGreedy: the paper's first multi-rail strategy (§3.2). "Each time
// a NIC becomes idle, the strategy code is invoked and simply sends the
// first available segment (if any) on the corresponding network." No
// aggregation, no splitting: whole segments are balanced across whichever
// rails report idle, for both the eager and the DMA paths.

#include "core/gate.hpp"
#include "strat/backlog.hpp"
#include "strat/builtin.hpp"

namespace nmad::strat {

namespace {

class StrategyGreedy final : public BacklogBase {
 public:
  explicit StrategyGreedy(StrategyConfig cfg) : BacklogBase(cfg) {}

  [[nodiscard]] std::string_view name() const noexcept override { return "greedy"; }

  std::optional<PacketPlan> try_pack(core::Gate& gate, core::Rail& rail,
                                     drv::Track track) override {
    if (track == drv::Track::kSmall) return pack_small_single(gate, rail);
    return pack_chunk(gate, rail);
  }

 private:
  void plan_grant(core::Gate& /*gate*/, core::MsgKey /*key*/,
                  std::vector<LargeEntry> entries) override {
    for (const LargeEntry& e : entries) {
      push_whole_chunk(e, Chunk::kAnyRail);  // first free NIC takes it
    }
  }
};

}  // namespace

std::unique_ptr<Strategy> make_greedy(const StrategyConfig& cfg) {
  return std::make_unique<StrategyGreedy>(cfg);
}

}  // namespace nmad::strat
