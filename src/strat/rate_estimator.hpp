// RateEstimator: online per-rail bandwidth/latency estimation feeding the
// adaptive-striping policy (ROADMAP: re-derive split ratios online from the
// observations the reliability layer already produces).
//
// Signal sources — all things RailGuard and the drivers already emit:
//   * delivered-bytes deltas: every locally-completed DMA frame yields a
//     (bytes, duration) sample, so the estimate tracks the rate the fabric
//     actually granted (FairShareNet sharing included), not the nominal
//     link capacity;
//   * ack round-trip timing (ack_enabled gates): per-frame RTT samples,
//     skipping retransmitted frames (Karn's algorithm — a retried frame's
//     ack is ambiguous);
//   * retransmit timeouts: each one decays confidence and bandwidth, so a
//     silent rail sheds split weight *before* the guard turns it suspect;
//   * guard state transitions: suspect rails are down-weighted outright,
//     recovered rails ramp back in gradually.
//
// Thread model: all writers (note_*) run on the progression engine — under
// the world progress mutex in threaded mode, single-threaded in serial mode
// — so EWMA read-modify-write needs no CAS. Published estimates are relaxed
// atomics, safe to read from any thread (app-side observers, the obs
// snapshot path), exactly like the obs metric types. The policy methods
// (effective_rate, derive_ratios) are called by the gate on the progression
// engine only.
//
// The functional state lives in plain std::atomic fields, NOT in obs types:
// the estimator must keep working in NMAD_METRICS=OFF builds, where the obs
// gauges below compile out to no-ops.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/reliability.hpp"
#include "core/types.hpp"
#include "obs/metrics.hpp"
#include "sim/time.hpp"

namespace nmad::obs {
class MetricsRegistry;
}  // namespace nmad::obs

namespace nmad::strat {

class RateEstimator {
 public:
  RateEstimator(std::size_t rails, core::AdaptiveConfig cfg);

  [[nodiscard]] const core::AdaptiveConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t rail_count() const noexcept { return rails_.size(); }

  // --- sample intake (progression engine only) -----------------------------
  /// A frame of `bytes` wire bytes finished its transfer after `duration`.
  /// Callers feed only DMA-track frames: PIO completions measure the host
  /// copy, not the link, and would pollute the split currency.
  void note_transfer(core::RailIndex rail, std::uint64_t bytes,
                     sim::TimeNs duration, sim::TimeNs now);
  /// Ack round-trip for a never-retransmitted frame (Karn: the caller must
  /// skip retried frames — their acks are ambiguous).
  void note_rtt(core::RailIndex rail, sim::TimeNs rtt, sim::TimeNs now);
  /// A retransmit timeout fired on the rail.
  void note_timeout(core::RailIndex rail, sim::TimeNs now);
  /// The guard's state machine moved the rail to `state`.
  void note_state(core::RailIndex rail, core::RailState state, sim::TimeNs now);

  // --- published estimates (relaxed atomics; any thread) -------------------
  /// EWMA delivered bandwidth in MB/s; 0 until the first sample.
  [[nodiscard]] double bandwidth_mbps(core::RailIndex rail) const;
  /// EWMA one-way latency (rtt/2) in µs; 0 until the first RTT sample.
  [[nodiscard]] double latency_us(core::RailIndex rail) const;
  /// Estimate confidence in [0, 1], decayed to `now` (halves every
  /// confidence_halflife_ns without a sample).
  [[nodiscard]] double confidence(core::RailIndex rail, sim::TimeNs now) const;
  [[nodiscard]] std::uint64_t samples(core::RailIndex rail) const;

  // --- policy (progression engine only) ------------------------------------
  /// Unnormalized effective rate of one rail in MB/s currency: the
  /// boot-time prior blended toward the live EWMA by the rail's current
  /// confidence, multiplied by the health factor (suspect penalty /
  /// recovery ramp; 0 for dead rails).
  [[nodiscard]] double effective_rate(core::RailIndex rail, double prior_mbps,
                                      sim::TimeNs now) const;

  /// Re-derive normalized split weights from the live estimates.
  /// `prior_mbps` carries the boot-time ratios scaled to MB/s currency;
  /// `current` is the currently installed normalized ratio vector. Returns
  /// nullopt when hysteresis holds the current ratios (no rail's weight
  /// moved by more than cfg.hysteresis).
  [[nodiscard]] std::optional<std::vector<double>> derive_ratios(
      std::span<const double> prior_mbps, std::span<const double> current,
      sim::TimeNs now) const;

  /// Record the weight the gate actually installed (metrics mirror only).
  void publish_weight(core::RailIndex rail, double weight);

  /// Register one rail's `est.*` gauges/counters under `prefix`
  /// (".../railN.est.").
  void register_rail_into(obs::MetricsRegistry& registry, core::RailIndex rail,
                          const std::string& prefix) const;

  RateEstimator(const RateEstimator&) = delete;
  RateEstimator& operator=(const RateEstimator&) = delete;

 private:
  struct RailEst {
    // Published estimates — relaxed atomics, readable from any thread.
    std::atomic<double> bw_mbps{0.0};
    std::atomic<double> rtt_ns{0.0};
    /// Confidence as of `last_event`; readers decay it forward to now.
    std::atomic<double> conf{0.0};
    std::atomic<sim::TimeNs> last_event{0};
    std::atomic<std::uint64_t> nsamples{0};
    // Health view, written on guard state transitions.
    std::atomic<std::uint8_t> state{
        static_cast<std::uint8_t>(core::RailState::kHealthy)};
    std::atomic<sim::TimeNs> recovered_at{0};
    // Metrics mirrors (no-ops with NMAD_METRICS=OFF).
    obs::Gauge g_bandwidth_mbps;
    obs::Gauge g_rtt_us;
    obs::Gauge g_confidence_pct;
    obs::Gauge g_weight_pct;
    obs::Counter c_samples;
  };

  /// Decayed confidence + sample bump, shared by every accepted sample.
  void bump_confidence(RailEst& r, sim::TimeNs now);
  [[nodiscard]] double decayed_conf(const RailEst& r, sim::TimeNs now) const;
  /// Suspect penalty / recovery ramp multiplier (0 for dead rails).
  [[nodiscard]] double health_factor(const RailEst& r, sim::TimeNs now) const;

  core::AdaptiveConfig cfg_;
  /// deque: RailEst holds atomics (immovable); deque never relocates and
  /// the set is fixed at construction.
  std::deque<RailEst> rails_;
};

}  // namespace nmad::strat
