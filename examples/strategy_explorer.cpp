// Strategy explorer: runs a user-chosen workload under every built-in
// strategy and prints a comparison table — the tool you reach for when
// deciding which optimizing scheduler fits a communication pattern.
//
//   usage: strategy_explorer [total_bytes] [segments]
//   e.g.   strategy_explorer 1M 4

#include <cstdio>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "sim/time.hpp"
#include "util/byte_size.hpp"

namespace {

using namespace nmad;

double one_way_us(const std::string& strategy, std::uint64_t total,
                  int segments) {
  core::PlatformConfig cfg = core::paper_platform(strategy);
  cfg.sampled_ratios = (strategy == "split_balance");
  core::TwoNodePlatform p(std::move(cfg));

  std::vector<std::byte> payload(total, std::byte{0x2a});
  std::vector<std::byte> sink(total);

  const std::uint64_t base = total / static_cast<std::uint64_t>(segments);
  std::vector<core::RecvHandle> recvs;
  std::vector<core::SendHandle> sends;
  std::uint64_t off = 0;
  for (int i = 0; i < segments; ++i) {
    const std::uint64_t len = (i + 1 == segments) ? total - off : base;
    recvs.push_back(p.b().irecv(p.gate_ba(), 0,
                                std::span<std::byte>(sink.data() + off, len)));
    off += len;
  }
  const sim::TimeNs t0 = p.now();
  off = 0;
  for (int i = 0; i < segments; ++i) {
    const std::uint64_t len = (i + 1 == segments) ? total - off : base;
    sends.push_back(p.a().isend(
        p.gate_ab(), 0, std::span<const std::byte>(payload.data() + off, len)));
    off += len;
  }
  p.b().wait_all(sends, recvs);

  sim::TimeNs done = t0;
  for (const auto& r : recvs) done = std::max(done, r->completion_time());
  return sim::ns_to_us(done - t0);
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t total = 256 * 1024;
  int segments = 2;
  if (argc > 1) {
    auto parsed = util::parse_byte_size(argv[1]);
    if (!parsed) {
      std::fprintf(stderr, "bad size '%s': %s\n", argv[1],
                   parsed.error().message.c_str());
      return 2;
    }
    total = parsed.value();
  }
  if (argc > 2) segments = std::max(1, std::atoi(argv[2]));

  std::printf("workload: %s in %d segment(s), Myri-10G + Quadrics platform\n\n",
              util::format_byte_size(total).c_str(), segments);
  std::printf("%-16s %14s %14s\n", "strategy", "one-way (us)", "bandwidth MB/s");

  for (std::string_view name : strat::strategy_names()) {
    const double us = one_way_us(std::string(name), total, segments);
    std::printf("%-16s %14.2f %14.2f\n", std::string(name).c_str(), us,
                static_cast<double>(total) / us);
  }
  return 0;
}
