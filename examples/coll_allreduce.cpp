// Collectives walk-through: five ranks in a full mesh run a broadcast, an
// allreduce and a barrier over the multi-rail engine.
//
//   $ ./coll_allreduce            # 5 ranks, Myri-10G + Quadrics per edge
//   $ ./coll_allreduce 7          # choose the rank count
//
// Every tree edge of a collective is an ordinary point-to-point message,
// so each segment is striped across both rails by the installed strategy —
// collectives inherit the paper's bandwidth aggregation for free. Exits
// non-zero on any wrong result, so this doubles as an end-to-end test.

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "coll/communicator.hpp"
#include "core/platform.hpp"
#include "sim/time.hpp"

int main(int argc, char** argv) {
  using namespace nmad;

  const std::size_t ranks = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 5;
  if (ranks < 2 || ranks > 64) {
    std::fprintf(stderr, "usage: %s [ranks 2..64]\n", argv[0]);
    return 2;
  }

  // N hosts, fully meshed, the paper's rail pair on every edge. The
  // progress mode follows NMAD_PROGRESS_MODE (serial by default).
  core::MultiNodeConfig cfg;
  cfg.nodes = ranks;
  cfg.strategy = "aggreg_greedy";
  core::MultiNodePlatform platform(cfg);

  // One communicator per rank; make_communicator installs drive hooks
  // matching the platform's progress mode.
  std::vector<coll::Communicator> comms;
  comms.reserve(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    comms.push_back(coll::make_communicator(platform, r));
  }
  const coll::DriveHooks hooks = coll::hooks_for(platform);

  // Broadcast 1 MB from rank 0 — segmented, pipelined down the binomial
  // tree, each segment striped across the rails.
  const std::size_t kBytes = 1 << 20;
  std::vector<std::vector<std::byte>> bufs(ranks,
                                           std::vector<std::byte>(kBytes));
  for (std::size_t i = 0; i < kBytes; ++i) bufs[0][i] = std::byte(i * 31 & 0xff);

  // Allreduce: every rank contributes rank+1 per element; the global sum is
  // N(N+1)/2 everywhere.
  const std::size_t kElems = 64 * 1024;
  std::vector<std::vector<std::uint64_t>> contrib(ranks), result(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    contrib[r].assign(kElems, r + 1);
    result[r].resize(kElems);
  }

  // Post everything as non-blocking handles — all ranks, all operations in
  // flight at once — then drive them together.
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < ranks; ++r) {
    ops.push_back(comms[r].ibcast(bufs[r], /*root=*/0));
    ops.push_back(comms[r].iallreduce<std::uint64_t>(contrib[r], result[r],
                                                     coll::ReduceKind::kSum));
    ops.push_back(comms[r].ibarrier());
  }
  if (!coll::wait_all(ops, hooks)) {
    std::fprintf(stderr, "a collective failed\n");
    return 1;
  }

  // Verify.
  const std::uint64_t expected_sum = ranks * (ranks + 1) / 2;
  for (std::size_t r = 0; r < ranks; ++r) {
    if (bufs[r] != bufs[0]) {
      std::fprintf(stderr, "rank %zu: broadcast corrupted\n", r);
      return 1;
    }
    for (std::uint64_t v : result[r]) {
      if (v != expected_sum) {
        std::fprintf(stderr, "rank %zu: allreduce got %llu, want %llu\n", r,
                     static_cast<unsigned long long>(v),
                     static_cast<unsigned long long>(expected_sum));
        return 1;
      }
    }
  }

  std::printf("%zu ranks: bcast(1 MB) + allreduce(%zu x u64) + barrier OK\n",
              ranks, kElems);
  std::printf("allreduce sum per element: %llu\n",
              static_cast<unsigned long long>(expected_sum));
  std::printf("virtual time elapsed: %.1f us\n", sim::ns_to_us(platform.now()));

  // What the collectives layer did, per rank 0's communicator.
  const coll::CollMetrics& m = comms[0].metrics();
  std::printf("rank 0: %llu segments sent, %llu rounds, tree depth %lld\n",
              static_cast<unsigned long long>(m.segments_sent.value()),
              static_cast<unsigned long long>(m.rounds.value()),
              static_cast<long long>(m.tree_depth.high_water()));
  return 0;
}
