// Quickstart: build the paper's two-node platform (Myri-10G + Quadrics),
// send a message each way with the full v3 strategy, and print what
// happened — in a dozen lines of API.
//
//   $ ./quickstart                    # run
//   $ ./quickstart trace.json         # also dump a chrome://tracing file
//
// Everything runs in simulated virtual time, so this works on any machine.

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "sim/time.hpp"
#include "sim/trace_export.hpp"

int main(int argc, char** argv) {
  using namespace nmad;

  // The paper's testbed: two hosts linked by Myri-10G and Quadrics rails,
  // running the final adaptive strategy with sampled stripping ratios.
  core::PlatformConfig cfg = core::paper_platform("split_balance");
  cfg.sampled_ratios = true;
  core::TwoNodePlatform platform(std::move(cfg));
  if (argc > 1) platform.world().trace().enable();

  // A small greeting (eager path) and a large payload (stripped DMA path).
  const std::string greeting = "hello from node A over two rails";
  std::vector<std::byte> big(4 * 1024 * 1024);
  for (std::size_t i = 0; i < big.size(); ++i) big[i] = std::byte(i & 0xff);

  std::string greeting_rx(greeting.size(), '\0');
  std::vector<std::byte> big_rx(big.size());

  // Non-blocking receives first, then the sends, then wait.
  auto r1 = platform.b().irecv(platform.gate_ba(), /*tag=*/1,
                               std::as_writable_bytes(std::span(greeting_rx)));
  auto r2 = platform.b().irecv(platform.gate_ba(), /*tag=*/2, big_rx);
  auto s1 = platform.a().isend(platform.gate_ab(), /*tag=*/1,
                               std::as_bytes(std::span(greeting)));
  auto s2 = platform.a().isend(platform.gate_ab(), /*tag=*/2, big);

  platform.b().wait(r1);
  platform.b().wait(r2);
  platform.a().wait(s1);
  platform.a().wait(s2);

  std::printf("received: \"%s\"\n", greeting_rx.c_str());
  std::printf("large payload intact: %s\n",
              std::memcmp(big.data(), big_rx.data(), big.size()) == 0 ? "yes" : "NO");
  std::printf("virtual time elapsed: %.1f us\n", sim::ns_to_us(platform.now()));

  // Show how the strategy divided the work between the rails.
  for (auto* rail : platform.rails_a()) {
    const auto& st = rail->stats();
    std::printf("rail %-9s eager: %llu pkt / %llu B   dma: %llu pkt / %llu B\n",
                rail->caps().name.c_str(),
                static_cast<unsigned long long>(st.eager_packets),
                static_cast<unsigned long long>(st.eager_bytes),
                static_cast<unsigned long long>(st.dma_packets),
                static_cast<unsigned long long>(st.dma_bytes));
  }

  if (argc > 1) {
    if (auto s = sim::write_chrome_trace(platform.world().trace(), argv[1]); s) {
      std::printf("trace written to %s (open in chrome://tracing)\n", argv[1]);
    } else {
      std::fprintf(stderr, "trace export failed: %s\n", s.error().message.c_str());
      return 1;
    }
  }
  return 0;
}
