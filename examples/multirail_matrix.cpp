// Halo exchange of a matrix boundary using the incremental pack/unpack
// API — the non-contiguous-data scenario the paper's collect layer is
// designed for ("messages may be constituted of one or more segments
// through incremental message construction/extraction commands").
//
// Node A owns a matrix and ships its boundary *column* (one non-contiguous
// element per row) plus its boundary row to node B. The strategy
// aggregates the many small column pieces into few packets.

#include <cstdio>
#include <vector>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "sim/time.hpp"

namespace {

constexpr std::size_t kRows = 256;
constexpr std::size_t kCols = 512;

}  // namespace

int main() {
  using namespace nmad;

  core::TwoNodePlatform platform(core::paper_platform("aggreg_greedy"));

  // Row-major matrix of doubles on node A.
  std::vector<double> matrix(kRows * kCols);
  for (std::size_t r = 0; r < kRows; ++r) {
    for (std::size_t c = 0; c < kCols; ++c) {
      matrix[r * kCols + c] = static_cast<double>(r) * 1000.0 + static_cast<double>(c);
    }
  }

  // Pack the last column (non-contiguous: one double per row) and the last
  // row (contiguous) as a single logical message.
  core::PackBuilder pack = platform.a().pack(platform.gate_ab(), /*tag=*/3);
  for (std::size_t r = 0; r < kRows; ++r) {
    pack.add(std::as_bytes(std::span(&matrix[r * kCols + (kCols - 1)], 1)));
  }
  pack.add(std::as_bytes(std::span(&matrix[(kRows - 1) * kCols], kCols)));

  // Node B unpacks into its own halo storage.
  std::vector<double> halo_col(kRows);
  std::vector<double> halo_row(kCols);
  core::UnpackBuilder unpack = platform.b().unpack(platform.gate_ba(), /*tag=*/3);
  unpack.add(std::as_writable_bytes(std::span(halo_col)));
  unpack.add(std::as_writable_bytes(std::span(halo_row)));

  auto recv = unpack.submit();
  auto send = pack.submit();
  platform.b().wait(recv);
  platform.a().wait(send);

  bool ok = true;
  for (std::size_t r = 0; r < kRows; ++r) {
    ok = ok && halo_col[r] == matrix[r * kCols + (kCols - 1)];
  }
  for (std::size_t c = 0; c < kCols; ++c) {
    ok = ok && halo_row[c] == matrix[(kRows - 1) * kCols + c];
  }

  std::printf("halo exchange of %zu column elements + %zu row elements: %s\n",
              kRows, kCols, ok ? "intact" : "CORRUPT");
  std::printf("virtual time: %.1f us\n", sim::ns_to_us(platform.now()));

  // The aggregating strategy coalesced the 256 tiny column segments.
  const auto& fast_rail = *platform.rails_a()[1];  // quadrics = fastest
  std::printf("packets on the fast rail: %llu eager (aggregation turned %zu "
              "segments into them)\n",
              static_cast<unsigned long long>(fast_rail.stats().eager_packets),
              kRows + 1);
  return ok ? 0 : 1;
}
