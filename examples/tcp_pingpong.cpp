// Two-process ping-pong over real localhost TCP — the non-simulated
// deployment of the library. The parent forks: the child connects to the
// parent's listener, and both run the identical Session/strategy stack
// that the simulated experiments use, exchanging real bytes in real time.
//
//   $ ./tcp_pingpong            # forks its own peer
//   $ ./tcp_pingpong 7777       # custom port

#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/session.hpp"
#include "drv/real_world.hpp"
#include "drv/tcp_driver.hpp"
#include "sim/time.hpp"

namespace {

using namespace nmad;

std::unique_ptr<core::Session> make_session(drv::RealWorld& world,
                                            const char* name) {
  auto clock = [&world] { return world.now(); };
  auto defer = [&world](std::function<void()> fn) { world.defer(std::move(fn)); };
  auto progress = [&world](const std::function<bool()>& pred) {
    world.progress_until(pred);
  };
  return std::make_unique<core::Session>(name, clock, defer, progress);
}

int run_peer(std::unique_ptr<drv::TcpDriver> driver, bool is_server) {
  drv::RealWorld world;
  world.attach(driver.get());
  auto session = make_session(world, is_server ? "server" : "client");
  const core::GateId gate = session->connect({driver.get()}, "aggreg");

  constexpr int kIters = 200;
  constexpr std::size_t kSize = 64 * 1024;
  std::vector<std::byte> payload(kSize, std::byte{0x42});
  std::vector<std::byte> sink(kSize);

  const sim::TimeNs t0 = world.now();
  for (int i = 0; i < kIters; ++i) {
    if (is_server) {
      auto recv = session->irecv(gate, 0, sink);
      session->wait(recv);
      auto send = session->isend(gate, 0, payload);
      session->wait(send);
    } else {
      auto send = session->isend(gate, 0, payload);
      auto recv = session->irecv(gate, 0, sink);
      session->wait(recv);
      session->wait(send);
    }
  }
  const double total_us = sim::ns_to_us(world.now() - t0);

  if (!is_server) {
    const double rtt_us = total_us / kIters;
    std::printf("tcp_pingpong: %d iterations of %zu KB\n", kIters, kSize / 1024);
    std::printf("  round-trip:  %.1f us\n", rtt_us);
    std::printf("  throughput:  %.1f MB/s (both directions)\n",
                2.0 * kSize / rtt_us);
    std::printf("  payload intact: %s\n",
                sink == payload ? "yes" : "NO");
  }
  return sink == payload ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint16_t port =
      argc > 1 ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 8421;

  const pid_t child = ::fork();
  if (child < 0) {
    std::perror("fork");
    return 1;
  }
  if (child == 0) {
    // Child: connect and run the client side.
    auto driver = drv::TcpDriver::connect_to("127.0.0.1", port);
    if (!driver) {
      std::fprintf(stderr, "client: %s\n", driver.error().message.c_str());
      return 1;
    }
    return run_peer(std::move(driver.value()), /*is_server=*/false);
  }

  auto driver = drv::TcpDriver::listen_one(port);
  if (!driver) {
    std::fprintf(stderr, "server: %s\n", driver.error().message.c_str());
    return 1;
  }
  const int rc = run_peer(std::move(driver.value()), /*is_server=*/true);

  int status = 0;
  ::waitpid(child, &status, 0);
  return rc != 0 || !WIFEXITED(status) || WEXITSTATUS(status) != 0;
}
