// Beyond the paper's 2-rail testbed: a THREE-rail heterogeneous platform
// (Myri-10G + Quadrics + Dolphin SCI) running the adaptive stripping
// strategy — the generality the paper's design promises ("the strategy
// code is a generic plug-in") but its evaluation hardware could not show.
//
// Prints the sampled stripping ratios and how an 8 MB segment is divided,
// then compares aggregate bandwidth against each rail alone.

#include <cstdio>
#include <vector>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "sim/time.hpp"

namespace {

using namespace nmad;

double one_way_us(core::TwoNodePlatform& p, std::size_t size) {
  static std::vector<std::byte> payload;
  if (payload.size() < size) payload.assign(size, std::byte{0x11});
  std::vector<std::byte> sink(size);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  const sim::TimeNs t0 = p.now();
  auto send = p.a().isend(p.gate_ab(), 0,
                          std::span<const std::byte>(payload.data(), size));
  p.b().wait(recv);
  p.a().wait(send);
  return sim::ns_to_us(recv->completion_time() - t0);
}

}  // namespace

int main() {
  constexpr std::size_t kSize = 8 * 1024 * 1024;
  const std::vector<netmodel::NicProfile> rails = {
      netmodel::myri10g(), netmodel::quadrics_qm500(), netmodel::dolphin_sci()};

  std::printf("single-rail baselines (8 MB, one-way):\n");
  for (const auto& nic : rails) {
    core::PlatformConfig cfg;
    cfg.links = {nic};
    cfg.strategy = "single_rail";
    core::TwoNodePlatform p(std::move(cfg));
    const double us = one_way_us(p, kSize);
    std::printf("  %-9s %8.1f us  %7.1f MB/s\n", nic.name.c_str(), us,
                kSize / us);
  }

  core::PlatformConfig cfg;
  cfg.links = rails;
  cfg.strategy = "split_balance";
  cfg.sampled_ratios = true;
  core::TwoNodePlatform p(std::move(cfg));

  auto& gate = p.a().scheduler().gate(p.gate_ab());
  std::printf("\nsampled stripping ratios:\n");
  for (std::size_t i = 0; i < rails.size(); ++i) {
    std::printf("  %-9s %.3f\n", rails[i].name.c_str(),
                gate.ratio(static_cast<core::RailIndex>(i)));
  }

  const double us = one_way_us(p, kSize);
  std::printf("\n3-rail adaptive stripping: %8.1f us  %7.1f MB/s\n", us,
              kSize / us);

  std::printf("\nper-rail DMA division of the 8 MB segment:\n");
  for (std::size_t i = 0; i < rails.size(); ++i) {
    auto& rail = gate.rail(static_cast<core::RailIndex>(i));
    std::printf("  %-9s %2llu chunk(s), %9llu bytes\n", rails[i].name.c_str(),
                static_cast<unsigned long long>(rail.tx.packets[1]),
                static_cast<unsigned long long>(rail.tx.payload_bytes[1]));
  }
  return 0;
}
