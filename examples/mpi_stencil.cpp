// A 1-D Jacobi heat-diffusion kernel written MPI-style against the
// api::Communicator layer — the kind of application code the paper's §4
// MPICH-Madeleine plan targets. Two "ranks" (the two simulated nodes) each
// own half the domain and exchange one-cell halos every iteration with
// sendrecv, over the full multi-rail engine.

#include <cmath>
#include <cstdio>
#include <vector>

#include "api/mpi_like.hpp"
#include "core/platform.hpp"
#include "sim/time.hpp"

namespace {

constexpr std::size_t kCellsPerRank = 1 << 15;
constexpr int kIterations = 50;
constexpr double kAlpha = 0.25;

void step(std::vector<double>& cells, double left_halo, double right_halo) {
  std::vector<double> next(cells.size());
  for (std::size_t i = 0; i < cells.size(); ++i) {
    const double left = i == 0 ? left_halo : cells[i - 1];
    const double right = i + 1 == cells.size() ? right_halo : cells[i + 1];
    next[i] = cells[i] + kAlpha * (left - 2.0 * cells[i] + right);
  }
  cells = std::move(next);
}

}  // namespace

int main() {
  using namespace nmad;

  core::TwoNodePlatform platform(core::paper_platform("aggreg_greedy"));
  api::Communicator rank0(platform.a(), platform.gate_ab());
  api::Communicator rank1(platform.b(), platform.gate_ba());

  // Initial condition: a hot spike in the middle of rank0's domain.
  std::vector<double> cells0(kCellsPerRank, 0.0);
  std::vector<double> cells1(kCellsPerRank, 0.0);
  cells0[kCellsPerRank / 2] = 1000.0;

  for (int iter = 0; iter < kIterations; ++iter) {
    // Exchange the boundary cells (rank0's right edge <-> rank1's left
    // edge). Both directions overlap through sendrecv's non-blocking core.
    double edge0 = cells0.back();
    double edge1 = cells1.front();
    double halo0 = 0.0, halo1 = 0.0;

    auto r1 = rank1.irecv(std::span<double>(&halo1, 1), 1);
    auto s1 = rank1.isend(std::span<const double>(&edge1, 1), 2);
    rank0.sendrecv(std::as_bytes(std::span(&edge0, 1)), 1,
                   std::as_writable_bytes(std::span(&halo0, 1)), 2);
    r1.wait();
    s1.wait();

    step(cells0, /*left=*/cells0.front(), /*right=*/halo0);
    step(cells1, /*left=*/halo1, /*right=*/cells1.back());
  }

  // Total heat is conserved up to the open outer boundaries.
  double total = 0.0;
  for (double c : cells0) total += c;
  for (double c : cells1) total += c;

  std::printf("mpi_stencil: %d iterations over 2 ranks x %zu cells\n",
              kIterations, kCellsPerRank);
  std::printf("  heat conserved: %.6f of 1000 (loss through open ends)\n", total);
  std::printf("  heat that crossed to rank1: %.6f\n",
              [&] { double s = 0; for (double c : cells1) s += c; return s; }());
  std::printf("  virtual time: %.1f us (%.2f us per halo exchange)\n",
              sim::ns_to_us(platform.now()),
              sim::ns_to_us(platform.now()) / kIterations);
  const bool ok = std::abs(total - 1000.0) < 1.0;
  std::printf("  %s\n", ok ? "OK" : "HEAT NOT CONSERVED");
  return ok ? 0 : 1;
}
