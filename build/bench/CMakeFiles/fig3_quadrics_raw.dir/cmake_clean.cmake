file(REMOVE_RECURSE
  "CMakeFiles/fig3_quadrics_raw.dir/fig3_quadrics_raw.cpp.o"
  "CMakeFiles/fig3_quadrics_raw.dir/fig3_quadrics_raw.cpp.o.d"
  "fig3_quadrics_raw"
  "fig3_quadrics_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_quadrics_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
