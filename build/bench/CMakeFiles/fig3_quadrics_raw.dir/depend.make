# Empty dependencies file for fig3_quadrics_raw.
# This may be replaced when dependencies are built.
