# Empty compiler generated dependencies file for abl_parallel_pio.
# This may be replaced when dependencies are built.
