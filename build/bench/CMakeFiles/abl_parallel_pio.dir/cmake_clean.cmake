file(REMOVE_RECURSE
  "CMakeFiles/abl_parallel_pio.dir/abl_parallel_pio.cpp.o"
  "CMakeFiles/abl_parallel_pio.dir/abl_parallel_pio.cpp.o.d"
  "abl_parallel_pio"
  "abl_parallel_pio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_parallel_pio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
