file(REMOVE_RECURSE
  "CMakeFiles/fig6_aggreg_fastest.dir/fig6_aggreg_fastest.cpp.o"
  "CMakeFiles/fig6_aggreg_fastest.dir/fig6_aggreg_fastest.cpp.o.d"
  "fig6_aggreg_fastest"
  "fig6_aggreg_fastest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_aggreg_fastest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
