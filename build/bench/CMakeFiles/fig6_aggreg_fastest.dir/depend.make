# Empty dependencies file for fig6_aggreg_fastest.
# This may be replaced when dependencies are built.
