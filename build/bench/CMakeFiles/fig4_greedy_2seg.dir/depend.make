# Empty dependencies file for fig4_greedy_2seg.
# This may be replaced when dependencies are built.
