file(REMOVE_RECURSE
  "CMakeFiles/fig4_greedy_2seg.dir/fig4_greedy_2seg.cpp.o"
  "CMakeFiles/fig4_greedy_2seg.dir/fig4_greedy_2seg.cpp.o.d"
  "fig4_greedy_2seg"
  "fig4_greedy_2seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_greedy_2seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
