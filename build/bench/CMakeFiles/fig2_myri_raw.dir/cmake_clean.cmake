file(REMOVE_RECURSE
  "CMakeFiles/fig2_myri_raw.dir/fig2_myri_raw.cpp.o"
  "CMakeFiles/fig2_myri_raw.dir/fig2_myri_raw.cpp.o.d"
  "fig2_myri_raw"
  "fig2_myri_raw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_myri_raw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
