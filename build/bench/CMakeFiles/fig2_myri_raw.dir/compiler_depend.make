# Empty compiler generated dependencies file for fig2_myri_raw.
# This may be replaced when dependencies are built.
