# Empty compiler generated dependencies file for abl_split_ratio.
# This may be replaced when dependencies are built.
