file(REMOVE_RECURSE
  "CMakeFiles/abl_split_ratio.dir/abl_split_ratio.cpp.o"
  "CMakeFiles/abl_split_ratio.dir/abl_split_ratio.cpp.o.d"
  "abl_split_ratio"
  "abl_split_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_split_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
