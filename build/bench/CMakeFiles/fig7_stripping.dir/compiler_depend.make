# Empty compiler generated dependencies file for fig7_stripping.
# This may be replaced when dependencies are built.
