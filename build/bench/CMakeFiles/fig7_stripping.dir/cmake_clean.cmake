file(REMOVE_RECURSE
  "CMakeFiles/fig7_stripping.dir/fig7_stripping.cpp.o"
  "CMakeFiles/fig7_stripping.dir/fig7_stripping.cpp.o.d"
  "fig7_stripping"
  "fig7_stripping.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_stripping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
