# Empty dependencies file for fig5_greedy_4seg.
# This may be replaced when dependencies are built.
