file(REMOVE_RECURSE
  "CMakeFiles/fig5_greedy_4seg.dir/fig5_greedy_4seg.cpp.o"
  "CMakeFiles/fig5_greedy_4seg.dir/fig5_greedy_4seg.cpp.o.d"
  "fig5_greedy_4seg"
  "fig5_greedy_4seg.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_greedy_4seg.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
