# Empty compiler generated dependencies file for abl_poll_cost.
# This may be replaced when dependencies are built.
