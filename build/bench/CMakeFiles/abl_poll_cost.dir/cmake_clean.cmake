file(REMOVE_RECURSE
  "CMakeFiles/abl_poll_cost.dir/abl_poll_cost.cpp.o"
  "CMakeFiles/abl_poll_cost.dir/abl_poll_cost.cpp.o.d"
  "abl_poll_cost"
  "abl_poll_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_poll_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
