file(REMOVE_RECURSE
  "CMakeFiles/abl_opt_window.dir/abl_opt_window.cpp.o"
  "CMakeFiles/abl_opt_window.dir/abl_opt_window.cpp.o.d"
  "abl_opt_window"
  "abl_opt_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_opt_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
