# Empty compiler generated dependencies file for nmad_bench_harness.
# This may be replaced when dependencies are built.
