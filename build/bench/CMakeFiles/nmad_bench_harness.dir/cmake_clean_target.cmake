file(REMOVE_RECURSE
  "libnmad_bench_harness.a"
)
