file(REMOVE_RECURSE
  "CMakeFiles/nmad_bench_harness.dir/harness.cpp.o"
  "CMakeFiles/nmad_bench_harness.dir/harness.cpp.o.d"
  "libnmad_bench_harness.a"
  "libnmad_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nmad_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
