# Empty dependencies file for abl_pio_threshold.
# This may be replaced when dependencies are built.
