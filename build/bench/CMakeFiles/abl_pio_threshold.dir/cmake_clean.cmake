file(REMOVE_RECURSE
  "CMakeFiles/abl_pio_threshold.dir/abl_pio_threshold.cpp.o"
  "CMakeFiles/abl_pio_threshold.dir/abl_pio_threshold.cpp.o.d"
  "abl_pio_threshold"
  "abl_pio_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pio_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
