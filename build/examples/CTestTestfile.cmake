# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test([=[example_quickstart]=] "/root/repo/build/examples/quickstart")
set_tests_properties([=[example_quickstart]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_multirail_matrix]=] "/root/repo/build/examples/multirail_matrix")
set_tests_properties([=[example_multirail_matrix]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_strategy_explorer]=] "/root/repo/build/examples/strategy_explorer" "512K" "4")
set_tests_properties([=[example_strategy_explorer]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_three_rails]=] "/root/repo/build/examples/three_rails")
set_tests_properties([=[example_three_rails]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_mpi_stencil]=] "/root/repo/build/examples/mpi_stencil")
set_tests_properties([=[example_mpi_stencil]=] PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test([=[example_tcp_pingpong]=] "/root/repo/build/examples/tcp_pingpong" "8431")
set_tests_properties([=[example_tcp_pingpong]=] PROPERTIES  TIMEOUT "60" _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;20;add_test;/root/repo/examples/CMakeLists.txt;0;")
