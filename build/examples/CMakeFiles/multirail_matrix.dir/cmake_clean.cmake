file(REMOVE_RECURSE
  "CMakeFiles/multirail_matrix.dir/multirail_matrix.cpp.o"
  "CMakeFiles/multirail_matrix.dir/multirail_matrix.cpp.o.d"
  "multirail_matrix"
  "multirail_matrix.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multirail_matrix.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
