# Empty dependencies file for multirail_matrix.
# This may be replaced when dependencies are built.
