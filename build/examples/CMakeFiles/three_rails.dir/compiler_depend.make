# Empty compiler generated dependencies file for three_rails.
# This may be replaced when dependencies are built.
