file(REMOVE_RECURSE
  "CMakeFiles/three_rails.dir/three_rails.cpp.o"
  "CMakeFiles/three_rails.dir/three_rails.cpp.o.d"
  "three_rails"
  "three_rails.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/three_rails.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
