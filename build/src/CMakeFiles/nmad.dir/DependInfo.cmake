
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/api/mpi_like.cpp" "src/CMakeFiles/nmad.dir/api/mpi_like.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/api/mpi_like.cpp.o.d"
  "/root/repo/src/core/gate.cpp" "src/CMakeFiles/nmad.dir/core/gate.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/core/gate.cpp.o.d"
  "/root/repo/src/core/platform.cpp" "src/CMakeFiles/nmad.dir/core/platform.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/core/platform.cpp.o.d"
  "/root/repo/src/core/request.cpp" "src/CMakeFiles/nmad.dir/core/request.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/core/request.cpp.o.d"
  "/root/repo/src/core/scheduler.cpp" "src/CMakeFiles/nmad.dir/core/scheduler.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/core/scheduler.cpp.o.d"
  "/root/repo/src/core/session.cpp" "src/CMakeFiles/nmad.dir/core/session.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/core/session.cpp.o.d"
  "/root/repo/src/drv/chaos_driver.cpp" "src/CMakeFiles/nmad.dir/drv/chaos_driver.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/drv/chaos_driver.cpp.o.d"
  "/root/repo/src/drv/driver.cpp" "src/CMakeFiles/nmad.dir/drv/driver.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/drv/driver.cpp.o.d"
  "/root/repo/src/drv/real_world.cpp" "src/CMakeFiles/nmad.dir/drv/real_world.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/drv/real_world.cpp.o.d"
  "/root/repo/src/drv/sim_driver.cpp" "src/CMakeFiles/nmad.dir/drv/sim_driver.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/drv/sim_driver.cpp.o.d"
  "/root/repo/src/drv/sim_world.cpp" "src/CMakeFiles/nmad.dir/drv/sim_world.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/drv/sim_world.cpp.o.d"
  "/root/repo/src/drv/tcp_driver.cpp" "src/CMakeFiles/nmad.dir/drv/tcp_driver.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/drv/tcp_driver.cpp.o.d"
  "/root/repo/src/netmodel/nic_profile.cpp" "src/CMakeFiles/nmad.dir/netmodel/nic_profile.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/netmodel/nic_profile.cpp.o.d"
  "/root/repo/src/netmodel/transfer_model.cpp" "src/CMakeFiles/nmad.dir/netmodel/transfer_model.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/netmodel/transfer_model.cpp.o.d"
  "/root/repo/src/proto/reassembly.cpp" "src/CMakeFiles/nmad.dir/proto/reassembly.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/proto/reassembly.cpp.o.d"
  "/root/repo/src/proto/wire.cpp" "src/CMakeFiles/nmad.dir/proto/wire.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/proto/wire.cpp.o.d"
  "/root/repo/src/sampling/ratio_table.cpp" "src/CMakeFiles/nmad.dir/sampling/ratio_table.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sampling/ratio_table.cpp.o.d"
  "/root/repo/src/sampling/sampler.cpp" "src/CMakeFiles/nmad.dir/sampling/sampler.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sampling/sampler.cpp.o.d"
  "/root/repo/src/sim/engine.cpp" "src/CMakeFiles/nmad.dir/sim/engine.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sim/engine.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/nmad.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/fair_share.cpp" "src/CMakeFiles/nmad.dir/sim/fair_share.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sim/fair_share.cpp.o.d"
  "/root/repo/src/sim/serial_resource.cpp" "src/CMakeFiles/nmad.dir/sim/serial_resource.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sim/serial_resource.cpp.o.d"
  "/root/repo/src/sim/trace.cpp" "src/CMakeFiles/nmad.dir/sim/trace.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sim/trace.cpp.o.d"
  "/root/repo/src/sim/trace_export.cpp" "src/CMakeFiles/nmad.dir/sim/trace_export.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/sim/trace_export.cpp.o.d"
  "/root/repo/src/strat/aggreg.cpp" "src/CMakeFiles/nmad.dir/strat/aggreg.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/strat/aggreg.cpp.o.d"
  "/root/repo/src/strat/aggreg_greedy.cpp" "src/CMakeFiles/nmad.dir/strat/aggreg_greedy.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/strat/aggreg_greedy.cpp.o.d"
  "/root/repo/src/strat/backlog.cpp" "src/CMakeFiles/nmad.dir/strat/backlog.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/strat/backlog.cpp.o.d"
  "/root/repo/src/strat/greedy.cpp" "src/CMakeFiles/nmad.dir/strat/greedy.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/strat/greedy.cpp.o.d"
  "/root/repo/src/strat/single_rail.cpp" "src/CMakeFiles/nmad.dir/strat/single_rail.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/strat/single_rail.cpp.o.d"
  "/root/repo/src/strat/split_balance.cpp" "src/CMakeFiles/nmad.dir/strat/split_balance.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/strat/split_balance.cpp.o.d"
  "/root/repo/src/strat/strategy.cpp" "src/CMakeFiles/nmad.dir/strat/strategy.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/strat/strategy.cpp.o.d"
  "/root/repo/src/util/byte_size.cpp" "src/CMakeFiles/nmad.dir/util/byte_size.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/util/byte_size.cpp.o.d"
  "/root/repo/src/util/fmt.cpp" "src/CMakeFiles/nmad.dir/util/fmt.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/util/fmt.cpp.o.d"
  "/root/repo/src/util/log.cpp" "src/CMakeFiles/nmad.dir/util/log.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/util/log.cpp.o.d"
  "/root/repo/src/util/panic.cpp" "src/CMakeFiles/nmad.dir/util/panic.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/util/panic.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/nmad.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/nmad.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
