# Empty dependencies file for nmad.
# This may be replaced when dependencies are built.
