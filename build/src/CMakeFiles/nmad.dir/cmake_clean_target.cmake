file(REMOVE_RECURSE
  "libnmad.a"
)
