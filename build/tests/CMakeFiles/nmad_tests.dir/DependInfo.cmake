
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_behavior_trace.cpp" "tests/CMakeFiles/nmad_tests.dir/test_behavior_trace.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_behavior_trace.cpp.o.d"
  "/root/repo/tests/test_chaos.cpp" "tests/CMakeFiles/nmad_tests.dir/test_chaos.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_chaos.cpp.o.d"
  "/root/repo/tests/test_core_matching.cpp" "tests/CMakeFiles/nmad_tests.dir/test_core_matching.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_core_matching.cpp.o.d"
  "/root/repo/tests/test_error_paths.cpp" "tests/CMakeFiles/nmad_tests.dir/test_error_paths.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_error_paths.cpp.o.d"
  "/root/repo/tests/test_fair_share.cpp" "tests/CMakeFiles/nmad_tests.dir/test_fair_share.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_fair_share.cpp.o.d"
  "/root/repo/tests/test_integration_property.cpp" "tests/CMakeFiles/nmad_tests.dir/test_integration_property.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_integration_property.cpp.o.d"
  "/root/repo/tests/test_model_properties.cpp" "tests/CMakeFiles/nmad_tests.dir/test_model_properties.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_model_properties.cpp.o.d"
  "/root/repo/tests/test_mpi_like.cpp" "tests/CMakeFiles/nmad_tests.dir/test_mpi_like.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_mpi_like.cpp.o.d"
  "/root/repo/tests/test_multi_node.cpp" "tests/CMakeFiles/nmad_tests.dir/test_multi_node.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_multi_node.cpp.o.d"
  "/root/repo/tests/test_paper_claims.cpp" "tests/CMakeFiles/nmad_tests.dir/test_paper_claims.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_paper_claims.cpp.o.d"
  "/root/repo/tests/test_reassembly.cpp" "tests/CMakeFiles/nmad_tests.dir/test_reassembly.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_reassembly.cpp.o.d"
  "/root/repo/tests/test_sampling.cpp" "tests/CMakeFiles/nmad_tests.dir/test_sampling.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_sampling.cpp.o.d"
  "/root/repo/tests/test_session_misc.cpp" "tests/CMakeFiles/nmad_tests.dir/test_session_misc.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_session_misc.cpp.o.d"
  "/root/repo/tests/test_sim_driver.cpp" "tests/CMakeFiles/nmad_tests.dir/test_sim_driver.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_sim_driver.cpp.o.d"
  "/root/repo/tests/test_sim_engine.cpp" "tests/CMakeFiles/nmad_tests.dir/test_sim_engine.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_sim_engine.cpp.o.d"
  "/root/repo/tests/test_smoke.cpp" "tests/CMakeFiles/nmad_tests.dir/test_smoke.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_smoke.cpp.o.d"
  "/root/repo/tests/test_soak.cpp" "tests/CMakeFiles/nmad_tests.dir/test_soak.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_soak.cpp.o.d"
  "/root/repo/tests/test_strategies.cpp" "tests/CMakeFiles/nmad_tests.dir/test_strategies.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_strategies.cpp.o.d"
  "/root/repo/tests/test_tcp_driver.cpp" "tests/CMakeFiles/nmad_tests.dir/test_tcp_driver.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_tcp_driver.cpp.o.d"
  "/root/repo/tests/test_trace_export.cpp" "tests/CMakeFiles/nmad_tests.dir/test_trace_export.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_trace_export.cpp.o.d"
  "/root/repo/tests/test_transfer_model.cpp" "tests/CMakeFiles/nmad_tests.dir/test_transfer_model.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_transfer_model.cpp.o.d"
  "/root/repo/tests/test_util.cpp" "tests/CMakeFiles/nmad_tests.dir/test_util.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_util.cpp.o.d"
  "/root/repo/tests/test_wire.cpp" "tests/CMakeFiles/nmad_tests.dir/test_wire.cpp.o" "gcc" "tests/CMakeFiles/nmad_tests.dir/test_wire.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/nmad.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
