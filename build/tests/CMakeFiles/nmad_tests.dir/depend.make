# Empty dependencies file for nmad_tests.
# This may be replaced when dependencies are built.
