// Tests pinned to the paper's §4 capability claims about the engine:
//
//   "Data segments can be aggregated into the same physical packet even if
//    they belong to different logical channels (e.g. different MPI
//    communicators). They can be reordered so as to group small segments,
//    or even sent out-of-order. Finally, large data segments can be split
//    on the sending side (and later reassembled on the receiving side)
//    into several chunks that may be sent through different networks."
//
// Each sentence gets a test observing the claimed behavior directly.
#include <gtest/gtest.h>

#include <vector>

#include "core/platform.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

TEST(PaperClaims, AggregationAcrossLogicalChannels) {
  // Four small messages on four different tags (the paper's "different
  // logical channels"), submitted back-to-back: one physical packet.
  TwoNodePlatform p(pin_serial(paper_platform("aggreg_greedy")));
  const auto payload = random_bytes(64, 1);
  std::vector<std::vector<std::byte>> sinks(4, std::vector<std::byte>(64));
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (Tag tag = 0; tag < 4; ++tag) {
    recvs.push_back(p.b().irecv(p.gate_ba(), tag, sinks[tag]));
  }
  for (Tag tag = 0; tag < 4; ++tag) {
    sends.push_back(p.a().isend(p.gate_ab(), tag, payload));
  }
  p.b().wait_all(sends, recvs);

  auto& gate = p.a().scheduler().gate(p.gate_ab());
  const auto eager_packets =
      gate.rail(0).tx.packets[0] + gate.rail(1).tx.packets[0];
  EXPECT_EQ(eager_packets, 1u);  // one physical packet for four channels
  EXPECT_EQ(gate.rail(1).tx.segments, 4u);
  for (auto& s : sinks) EXPECT_EQ(s, payload);
}

TEST(PaperClaims, SmallMessageOvertakesEarlierLargeMessage) {
  // A large message is submitted FIRST, a small one after it. The small
  // one must complete delivery long before the large one: the engine sends
  // out-of-order with respect to submission.
  TwoNodePlatform p(pin_serial(paper_platform("aggreg_greedy")));
  const auto big = random_bytes(4 << 20, 2);
  const auto small = random_bytes(32, 3);
  std::vector<std::byte> sink_big(big.size());
  std::vector<std::byte> sink_small(small.size());

  auto recv_big = p.b().irecv(p.gate_ba(), 1, sink_big);
  auto recv_small = p.b().irecv(p.gate_ba(), 2, sink_small);
  auto send_big = p.a().isend(p.gate_ab(), 1, big);
  auto send_small = p.a().isend(p.gate_ab(), 2, small);

  p.b().wait_all(std::vector<SendHandle>{send_big, send_small},
                 std::vector<RecvHandle>{recv_big, recv_small});
  EXPECT_EQ(sink_big, big);
  EXPECT_EQ(sink_small, small);
  // Out-of-order: the small message (submitted second) landed first, by a
  // wide margin — the big transfer takes milliseconds of virtual time.
  EXPECT_LT(recv_small->completion_time(), recv_big->completion_time() / 10);
}

TEST(PaperClaims, BacklogSmallSegmentsAreGrouped) {
  // "Reordered so as to group small segments": while the eager track is
  // busy with a first packet, later small submissions accumulate and leave
  // grouped. Submit one small message; then, once it is in flight, submit
  // five more in a burst: they must travel as one packet, not five.
  TwoNodePlatform p(pin_serial(paper_platform("aggreg_greedy")));
  const auto payload = random_bytes(256, 4);
  std::vector<std::vector<std::byte>> sinks(6, std::vector<std::byte>(256));
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < 6; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
  }
  sends.push_back(p.a().isend(p.gate_ab(), 0, payload));
  // Let the first packet reach the NIC (track busy), then burst.
  auto& gate_a = p.a().scheduler().gate(p.gate_ab());
  p.world().engine().run_until([&] {
    return gate_a.rail(0).tx.packets[0] + gate_a.rail(1).tx.packets[0] >= 1;
  });
  for (int i = 1; i < 6; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 0, payload));
  }
  p.b().wait_all(sends, recvs);

  auto& gate = p.a().scheduler().gate(p.gate_ab());
  const auto eager_packets =
      gate.rail(0).tx.packets[0] + gate.rail(1).tx.packets[0];
  EXPECT_EQ(eager_packets, 2u);  // 1 first + 1 grouped backlog
  for (auto& s : sinks) EXPECT_EQ(s, payload);
}

TEST(PaperClaims, LargeSegmentSplitAcrossDifferentNetworks) {
  // "Split on the sending side ... into several chunks that may be sent
  // through different networks" — verify the chunks of ONE message really
  // traveled on BOTH technologies and were reassembled byte-exactly.
  PlatformConfig cfg = paper_platform("split_balance");
  cfg.sampled_ratios = true;
  TwoNodePlatform p(pin_serial(std::move(cfg)));

  const auto payload = random_bytes(2 << 20, 5);
  std::vector<std::byte> sink(payload.size());
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  auto& gate = p.a().scheduler().gate(p.gate_ab());
  EXPECT_EQ(gate.rail(0).tx.packets[1], 1u);  // myri chunk
  EXPECT_EQ(gate.rail(1).tx.packets[1], 1u);  // quadrics chunk
  EXPECT_EQ(gate.rail(0).tx.payload_bytes[1] + gate.rail(1).tx.payload_bytes[1],
            payload.size());
  EXPECT_GT(gate.rail(0).tx.payload_bytes[1],
            gate.rail(1).tx.payload_bytes[1]);  // "major part through Myri-10G"
  EXPECT_EQ(sink, payload);
}

TEST(PaperClaims, ControlPacketsAreNotStarvedByDataBacklog) {
  // The rendezvous handshake must cut ahead of a deep small-message
  // backlog, or large transfers would be serialized behind eager traffic.
  TwoNodePlatform p(pin_serial(paper_platform("aggreg_greedy")));
  const auto small = random_bytes(8000, 6);
  const auto big = random_bytes(4 << 20, 7);

  // 40 near-threshold messages (64 KB of eager traffic backlog) + 1 large.
  std::vector<std::vector<std::byte>> sinks(40, std::vector<std::byte>(small.size()));
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < 40; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
  }
  std::vector<std::byte> sink_big(big.size());
  auto recv_big = p.b().irecv(p.gate_ba(), 1, sink_big);
  for (int i = 0; i < 40; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 0, small));
  }
  auto send_big = p.a().isend(p.gate_ab(), 1, big);

  // The large DMA must start while eager traffic is still flowing: its
  // completion time must not exceed the eager drain time by much (the DMA
  // overlaps the eager stream on the other rail).
  sends.push_back(send_big);
  recvs.push_back(recv_big);
  p.b().wait_all(sends, recvs);

  sim::TimeNs last_small = 0;
  for (int i = 0; i < 40; ++i) {
    last_small = std::max(last_small, recvs[i]->completion_time());
  }
  // 4 MB at >=1092 MB/s is ~3.8 ms; the eager stream is ~0.46 ms. If the
  // handshake were starved behind the eager backlog the big transfer would
  // finish around eager_drain + 3.8 ms; overlapped, it finishes ~3.8 ms.
  EXPECT_LT(recv_big->completion_time(),
            sim::us_to_ns(4200));
  EXPECT_EQ(sink_big, big);
}

}  // namespace
