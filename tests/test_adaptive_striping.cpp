// Integration tests for online adaptive striping: the estimator fed from
// real traffic re-derives a gate's split ratios when the fabric changes
// (sim/net_scenario.hpp profiles over FairShareNet), stays parked on a
// static network, and its published estimates are safe to read from
// application threads while progress threads write (the TSan soak).
#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <thread>
#include <vector>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "sim/net_scenario.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

PlatformConfig adaptive_platform(bool enabled) {
  strat::StrategyConfig scfg;
  scfg.adaptive.enabled = enabled;
  return pin_serial(paper_platform("split_balance", scfg));
}

/// One wave of `n` 1 MB messages a->b, waited to completion.
void run_wave(TwoNodePlatform& p, int n = 2) {
  static const std::vector<std::byte> payload(1 << 20, std::byte{0x5a});
  std::vector<std::vector<std::byte>> sinks(n,
                                            std::vector<std::byte>(1 << 20));
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < n; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
  }
  for (int i = 0; i < n; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 0, payload));
  }
  p.b().wait_all(sends, recvs);
}

TEST(AdaptiveStriping, RatiosShiftWhenARailDegrades) {
  TwoNodePlatform p(adaptive_platform(true));
  Gate& gate = p.a().scheduler().gate(p.gate_ab());
  const double boot_myri = gate.ratio(0);
  EXPECT_GT(boot_myri, gate.ratio(1));  // Myri-heavy boot prior

  // Degrade the Myri a->b link to a quarter of nominal and keep sending:
  // the estimator observes the granted rates and the gate re-derives the
  // split toward Quadrics within a few optimization windows.
  const sim::ConstraintId myri_ab = p.rails_a()[0]->tx_link();
  const double nominal = p.world().net().capacity(myri_ab);
  p.world().net().set_capacity(myri_ab, nominal * 0.25);
  for (int i = 0; i < 20; ++i) run_wave(p);

  EXPECT_LT(gate.ratio(0), boot_myri - 0.15);
  EXPECT_NEAR(gate.ratio(0) + gate.ratio(1), 1.0, 1e-6);
  // The estimator's live view backs the shift: Myri's observed bandwidth
  // sits near the degraded capacity, far below Quadrics'.
  EXPECT_LT(gate.estimator().bandwidth_mbps(0),
            gate.estimator().bandwidth_mbps(1));

  // Restore the link: the ratios climb back toward the boot prior.
  p.world().net().set_capacity(myri_ab, nominal);
  for (int i = 0; i < 20; ++i) run_wave(p);
  EXPECT_GT(gate.ratio(0), gate.ratio(1));
}

TEST(AdaptiveStriping, StaticNetworkKeepsBootRatios) {
  TwoNodePlatform p(adaptive_platform(true));
  Gate& gate = p.a().scheduler().gate(p.gate_ab());
  const double boot_myri = gate.ratio(0);
  for (int i = 0; i < 20; ++i) run_wave(p);
  // Hysteresis parks the ratios: steady estimates near the prior never
  // clear the install threshold, so there is no thrash to measure.
  EXPECT_NEAR(gate.ratio(0), boot_myri, gate.estimator().config().hysteresis);
}

TEST(AdaptiveStriping, DisabledEstimatorStillObservesButNeverInstalls) {
  TwoNodePlatform p(adaptive_platform(false));
  Gate& gate = p.a().scheduler().gate(p.gate_ab());
  const double boot_myri = gate.ratio(0);

  const sim::ConstraintId myri_ab = p.rails_a()[0]->tx_link();
  p.world().net().set_capacity(myri_ab, p.world().net().capacity(myri_ab) * 0.25);
  for (int i = 0; i < 10; ++i) run_wave(p);

  // The estimator keeps ingesting (observability is free)...
  EXPECT_GT(gate.estimator().samples(0), 0u);
  // ...but the frozen gate never rewrites its ratios.
  EXPECT_EQ(gate.ratio(0), boot_myri);
}

TEST(NetScenario, ShapedLinkFollowsItsPhases) {
  sim::Engine engine;
  sim::FairShareNet net(engine);
  const sim::ConstraintId link = net.add_constraint(1000.0, "link");

  sim::NetScenario scenario(engine, net);
  scenario.shape_link(link, 1000.0,
                      sim::profile_degrade_recover(1'000'000, 3'000'000, 0.25));

  engine.run_for(1'500'000);
  EXPECT_DOUBLE_EQ(net.capacity(link), 250.0);
  engine.run_for(2'000'000);
  EXPECT_DOUBLE_EQ(net.capacity(link), 1000.0);
}

TEST(NetScenario, DriftStepsThroughIntermediateCapacities) {
  sim::Engine engine;
  sim::FairShareNet net(engine);
  const sim::ConstraintId link = net.add_constraint(1000.0, "link");

  sim::NetScenario scenario(engine, net);
  scenario.shape_link(link, 1000.0,
                      sim::profile_drift(0, 10'000'000, 1.0, 0.5, /*steps=*/10));

  engine.run_for(5'000'000);  // halfway through the drift
  EXPECT_LT(net.capacity(link), 1000.0);
  EXPECT_GT(net.capacity(link), 500.0);
  engine.run_for(6'000'000);
  EXPECT_DOUBLE_EQ(net.capacity(link), 500.0);
}

TEST(NetScenario, CrossTrafficInjectsWithinItsWindowOnly) {
  sim::Engine engine;
  sim::FairShareNet net(engine);
  const sim::ConstraintId link = net.add_constraint(1000.0, "link");

  sim::NetScenario scenario(engine, net);
  // 500 MB/s offered in 100 KB chunks over [1 ms, 3 ms): chunks drain
  // faster than they arrive, so the window leaves no standing backlog.
  scenario.add_cross_traffic(link, 500.0, 100 * 1024, 1'000'000, 3'000'000,
                             /*seed=*/7);

  engine.run_for(500'000);
  EXPECT_EQ(net.active_flows(), 0u);  // nothing before the window
  bool saw_flow = false;
  for (int i = 0; i < 50; ++i) {
    engine.run_for(50'000);
    saw_flow = saw_flow || net.active_flows() > 0;
  }
  EXPECT_TRUE(saw_flow);
  engine.run();  // past the stop time everything drains
  EXPECT_EQ(net.active_flows(), 0u);
}

// The concurrency contract under test: progress threads write the
// estimator (EWMA + confidence under the world mutex) while an application
// thread hammers the published relaxed-atomic reads. TSan must stay quiet.
TEST(AdaptiveStriping, ThreadedPublishedReadsAreRaceFree) {
  strat::StrategyConfig scfg;
  scfg.adaptive.enabled = true;
  PlatformConfig cfg = paper_platform("split_balance", scfg);
  cfg.progress_mode = ProgressMode::kThreaded;
  TwoNodePlatform p(cfg);
  strat::RateEstimator& est = p.a().scheduler().gate(p.gate_ab()).estimator();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> reads{0};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_acquire)) {
      double acc = 0.0;
      for (RailIndex r = 0; r < 2; ++r) {
        acc += est.bandwidth_mbps(r);
        acc += est.latency_us(r);
        acc += est.confidence(r, 0);
        acc += static_cast<double>(est.samples(r));
      }
      reads.fetch_add(1, std::memory_order_relaxed);
      (void)acc;
    }
  });

  for (int i = 0; i < 30; ++i) run_wave(p);
  stop.store(true, std::memory_order_release);
  reader.join();

  EXPECT_GT(reads.load(), 0u);
  EXPECT_GT(est.samples(0) + est.samples(1), 0u);
}

}  // namespace
