// Sampling subsystem tests: the boot-time measurements must recover the
// profiles' actual bulk bandwidths (that is the whole point of adaptive
// ratios), and the cache file must round-trip.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/platform.hpp"
#include "sampling/ratio_table.hpp"
#include "sampling/sampler.hpp"

namespace {

using namespace nmad;
using namespace nmad::sampling;

TEST(Sampler, RecoversProfileBandwidths) {
  const netmodel::HostProfile host;
  const auto samples =
      sample_rails(host, host, {netmodel::myri10g(), netmodel::quadrics_qm500()});
  ASSERT_EQ(samples.size(), 2u);

  EXPECT_EQ(samples[0].rail_name, "myri10g");
  EXPECT_EQ(samples[1].rail_name, "quadrics");
  // Fitted bulk bandwidth within 2% of the configured DMA rate.
  EXPECT_NEAR(samples[0].bandwidth_mbps, 1210.0, 1210.0 * 0.02);
  EXPECT_NEAR(samples[1].bandwidth_mbps, 858.0, 858.0 * 0.02);
  // Latency close to the calibrated minimum (isolated rail, no polling).
  EXPECT_NEAR(samples[0].latency_us, 2.8, 0.2);
  EXPECT_NEAR(samples[1].latency_us, 1.7, 0.2);
  // The linear model must fit bulk transfers almost perfectly.
  EXPECT_GT(samples[0].fit_r2, 0.999);
  EXPECT_GT(samples[1].fit_r2, 0.999);
}

TEST(Sampler, WeightsAreNormalizedAndOrdered) {
  const netmodel::HostProfile host;
  const auto weights = measure_rail_weights(
      host, host, {netmodel::myri10g(), netmodel::quadrics_qm500()});
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_NEAR(weights[0] + weights[1], 1.0, 1e-12);
  EXPECT_GT(weights[0], weights[1]);  // myri is the faster bulk rail
  EXPECT_NEAR(weights[0], 1210.0 / (1210.0 + 858.0), 0.01);
}

TEST(Sampler, SamplingSizesSpanBulkRange) {
  const auto sizes = sampling_sizes();
  ASSERT_GE(sizes.size(), 4u);
  EXPECT_EQ(sizes.front(), 64u * 1024);
  EXPECT_EQ(sizes.back(), 4u * 1024 * 1024);
}

TEST(Platform, SampledRatiosInstalledOnGates) {
  core::PlatformConfig cfg = core::paper_platform("split_balance");
  cfg.sampled_ratios = true;
  core::TwoNodePlatform p(std::move(cfg));
  const auto& ratios = p.a().scheduler().gate(p.gate_ab()).ratios();
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_NEAR(ratios[0], 0.585, 0.02);  // 1210/(1210+858)
  // Sampling runs in a scratch world: the main clock must still be at 0.
  EXPECT_EQ(p.now(), 0);
}

TEST(RatioTable, SerializeParseRoundTrip) {
  const netmodel::HostProfile host;
  RatioTable table(sample_rails(host, host, {netmodel::myri10g(),
                                             netmodel::quadrics_qm500()}));
  const std::string text = table.serialize();
  const auto parsed = RatioTable::parse(text);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->samples().size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(parsed->samples()[i].rail_name, table.samples()[i].rail_name);
    EXPECT_NEAR(parsed->samples()[i].latency_us, table.samples()[i].latency_us, 1e-5);
    EXPECT_NEAR(parsed->samples()[i].slope_us_per_byte,
                table.samples()[i].slope_us_per_byte, 1e-12);
    EXPECT_NEAR(parsed->samples()[i].bandwidth_mbps,
                table.samples()[i].bandwidth_mbps, 0.1);
  }
  const auto w1 = table.weights();
  const auto w2 = parsed->weights();
  EXPECT_NEAR(w1[0], w2[0], 1e-6);
}

TEST(RatioTable, ParseRejectsMalformedInput) {
  EXPECT_FALSE(RatioTable::parse("").has_value());
  EXPECT_FALSE(RatioTable::parse("wrong header\nmyri 1 2 3 4\n").has_value());
  EXPECT_FALSE(RatioTable::parse("# nmad sampling cache v1\n").has_value());
  EXPECT_FALSE(
      RatioTable::parse("# nmad sampling cache v1\nmyri not numbers\n").has_value());
  EXPECT_FALSE(
      RatioTable::parse("# nmad sampling cache v1\nmyri 1.0 2.0 -3.0e-4 1.0\n")
          .has_value());  // negative slope
}

TEST(RatioTable, ParseSkipsCommentsAndBlankLines) {
  const auto parsed = RatioTable::parse(
      "# nmad sampling cache v1\n"
      "\n"
      "# a comment\n"
      "myri 2.8 10.0 8.264463e-04 0.9999\n");
  ASSERT_TRUE(parsed.has_value());
  ASSERT_EQ(parsed->samples().size(), 1u);
  EXPECT_NEAR(parsed->samples()[0].bandwidth_mbps, 1210.0, 1.0);
}

TEST(RatioTable, FileSaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "nmad_sampling_test.cache").string();
  const netmodel::HostProfile host;
  RatioTable table(sample_rails(host, host, {netmodel::quadrics_qm500()}));
  ASSERT_TRUE(table.save(path).has_value());

  const auto loaded = RatioTable::load(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->samples().size(), 1u);
  EXPECT_EQ(loaded->samples()[0].rail_name, "quadrics");
  std::remove(path.c_str());

  EXPECT_FALSE(RatioTable::load("/nonexistent/dir/x.cache").has_value());
}

}  // namespace
