// Core-layer semantics: receive matching, unexpected messages, late
// receives, rendezvous gating, per-tag ordering, zero-length messages,
// and the pack/unpack collect-layer API.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

TwoNodePlatform make_platform(const char* strategy = "aggreg_greedy") {
  return TwoNodePlatform(pin_serial(paper_platform(strategy)));
}

TEST(Matching, UnexpectedEagerMessageBuffersUntilRecvPosted) {
  auto p = make_platform();
  const auto payload = random_bytes(512, 1);
  auto send = p.a().isend(p.gate_ab(), 5, payload);
  p.a().wait(send);  // message has fully arrived at b, no recv posted

  std::vector<std::byte> sink(512);
  auto recv = p.b().irecv(p.gate_ba(), 5, sink);
  p.b().wait(recv);
  EXPECT_EQ(sink, payload);
  EXPECT_EQ(recv->received_len(), 512u);
  // The late receive completes "now", not at packet-arrival time.
  EXPECT_EQ(recv->completion_time(), p.now());
}

TEST(Matching, RendezvousWaitsForReceivePosting) {
  auto p = make_platform();
  const auto payload = random_bytes(1 << 20, 2);
  auto send = p.a().isend(p.gate_ab(), 5, payload);

  // Drain the world: without a posted recv the RDV must not be granted and
  // the bulk data must not move.
  p.world().engine().run();
  EXPECT_FALSE(send->completed());
  EXPECT_EQ(p.rails_a()[0]->stats().dma_packets +
                p.rails_a()[1]->stats().dma_packets,
            0u);

  std::vector<std::byte> sink(1 << 20);
  auto recv = p.b().irecv(p.gate_ba(), 5, sink);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(sink, payload);
}

TEST(Matching, TagsMatchIndependently) {
  auto p = make_platform();
  const auto pay_a = random_bytes(100, 3);
  const auto pay_b = random_bytes(200, 4);

  // Post receives in the opposite tag order from the sends.
  std::vector<std::byte> sink_b(200), sink_a(100);
  auto recv_b = p.b().irecv(p.gate_ba(), 20, sink_b);
  auto recv_a = p.b().irecv(p.gate_ba(), 10, sink_a);

  auto send_a = p.a().isend(p.gate_ab(), 10, pay_a);
  auto send_b = p.a().isend(p.gate_ab(), 20, pay_b);
  p.b().wait(recv_a);
  p.b().wait(recv_b);
  p.a().wait(send_a);
  p.a().wait(send_b);
  EXPECT_EQ(sink_a, pay_a);
  EXPECT_EQ(sink_b, pay_b);
}

TEST(Matching, SameTagMatchesInSendOrder) {
  auto p = make_platform();
  const auto first = random_bytes(300, 5);
  const auto second = random_bytes(300, 6);

  std::vector<std::byte> sink1(300), sink2(300);
  auto recv1 = p.b().irecv(p.gate_ba(), 1, sink1);
  auto recv2 = p.b().irecv(p.gate_ba(), 1, sink2);
  auto s1 = p.a().isend(p.gate_ab(), 1, first);
  auto s2 = p.a().isend(p.gate_ab(), 1, second);
  p.b().wait(recv1);
  p.b().wait(recv2);
  p.a().wait(s1);
  p.a().wait(s2);
  EXPECT_EQ(sink1, first);
  EXPECT_EQ(sink2, second);
}

TEST(Matching, MixedSizesSameTagKeepOrderAcrossPaths) {
  // A large (rendezvous) message followed by a small (eager) one with the
  // same tag: the eager packet overtakes on the wire, but per-tag sequence
  // numbers keep the matching correct.
  auto p = make_platform();
  const auto big = random_bytes(256 * 1024, 7);
  const auto small = random_bytes(64, 8);

  std::vector<std::byte> sink_big(256 * 1024), sink_small(64);
  auto recv_big = p.b().irecv(p.gate_ba(), 9, sink_big);
  auto recv_small = p.b().irecv(p.gate_ba(), 9, sink_small);
  auto s1 = p.a().isend(p.gate_ab(), 9, big);
  auto s2 = p.a().isend(p.gate_ab(), 9, small);
  p.b().wait(recv_big);
  p.b().wait(recv_small);
  p.a().wait(s1);
  p.a().wait(s2);
  EXPECT_EQ(sink_big, big);
  EXPECT_EQ(sink_small, small);
}

TEST(Matching, ZeroLengthMessageCompletesBothSides) {
  auto p = make_platform();
  auto recv = p.b().irecv(p.gate_ba(), 3, {});
  auto send = p.a().isend(p.gate_ab(), 3, {});
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(recv->received_len(), 0u);
  EXPECT_TRUE(send->completed());
}

TEST(Matching, ReceiveBufferMayBeLargerThanMessage) {
  auto p = make_platform();
  const auto payload = random_bytes(100, 9);
  std::vector<std::byte> sink(1000, std::byte{0xcc});
  auto recv = p.b().irecv(p.gate_ba(), 1, sink);
  auto send = p.a().isend(p.gate_ab(), 1, payload);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(recv->received_len(), 100u);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(), sink.begin()));
  EXPECT_EQ(sink[100], std::byte{0xcc});  // rest untouched
}

TEST(Matching, LateRecvForPartiallyArrivedMultiSegmentMessage) {
  // Submit a mixed message (eager head + rendezvous bulk). The eager part
  // arrives into unexpected storage; posting the receive later must migrate
  // it and let the DMA land directly in the user buffer.
  auto p = make_platform();
  const auto head = random_bytes(1024, 10);
  const auto bulk = random_bytes(512 * 1024, 11);

  auto pack = p.a().pack(p.gate_ab(), 2);
  pack.add(head).add(bulk);
  auto send = pack.submit();
  p.world().engine().run();  // eager head delivered unexpected; RDV parked
  EXPECT_FALSE(send->completed());

  std::vector<std::byte> sink(head.size() + bulk.size());
  auto recv = p.b().irecv(p.gate_ba(), 2, sink);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_TRUE(std::equal(head.begin(), head.end(), sink.begin()));
  EXPECT_TRUE(std::equal(bulk.begin(), bulk.end(), sink.begin() + head.size()));
}

TEST(PackUnpack, ScatterGatherRoundTrip) {
  auto p = make_platform();
  const auto seg1 = random_bytes(100, 12);
  const auto seg2 = random_bytes(5000, 13);
  const auto seg3 = random_bytes(3, 14);

  auto pack = p.a().pack(p.gate_ab(), 4);
  pack.add(seg1).add(seg2).add(seg3);

  std::vector<std::byte> out1(100), out2(5000), out3(3);
  auto unpack = p.b().unpack(p.gate_ba(), 4);
  unpack.add(out1).add(out2).add(out3);

  auto recv = unpack.submit();
  auto send = pack.submit();
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(out1, seg1);
  EXPECT_EQ(out2, seg2);
  EXPECT_EQ(out3, seg3);
}

TEST(PackUnpack, UnpackSegmentationMayDifferFromPack) {
  // The receiver's extraction layout is independent of the sender's
  // construction layout — only total size matters.
  auto p = make_platform();
  const auto data = random_bytes(600, 15);

  auto pack = p.a().pack(p.gate_ab(), 4);
  pack.add(std::span(data).subspan(0, 200)).add(std::span(data).subspan(200));

  std::vector<std::byte> out1(450), out2(150);
  auto unpack = p.b().unpack(p.gate_ba(), 4);
  unpack.add(out1).add(out2);

  auto recv = unpack.submit();
  auto send = pack.submit();
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_TRUE(std::equal(out1.begin(), out1.end(), data.begin()));
  EXPECT_TRUE(std::equal(out2.begin(), out2.end(), data.begin() + 450));
}

TEST(Matching, BidirectionalSimultaneousTraffic) {
  auto p = make_platform();
  const auto pay_ab = random_bytes(100000, 16);
  const auto pay_ba = random_bytes(70000, 17);

  std::vector<std::byte> sink_b(100000), sink_a(70000);
  auto recv_b = p.b().irecv(p.gate_ba(), 1, sink_b);
  auto recv_a = p.a().irecv(p.gate_ab(), 1, sink_a);
  auto send_ab = p.a().isend(p.gate_ab(), 1, pay_ab);
  auto send_ba = p.b().isend(p.gate_ba(), 1, pay_ba);

  p.a().wait_all(std::vector<SendHandle>{send_ab}, std::vector<RecvHandle>{recv_a});
  p.b().wait_all(std::vector<SendHandle>{send_ba}, std::vector<RecvHandle>{recv_b});
  EXPECT_EQ(sink_b, pay_ab);
  EXPECT_EQ(sink_a, pay_ba);
}

TEST(Scheduler, PendingRequestsDrainToZero) {
  auto p = make_platform();
  const auto payload = random_bytes(50000, 18);
  std::vector<std::byte> sink(50000);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  EXPECT_GE(p.a().scheduler().pending_requests(), 1u);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(p.a().scheduler().pending_requests(), 0u);
  EXPECT_EQ(p.b().scheduler().pending_requests(), 0u);
  EXPECT_FALSE(p.a().scheduler().gate(p.gate_ab()).strategy().has_backlog());
}

TEST(Scheduler, OptimizationWindowAggregatesBurst) {
  // Back-to-back isends in one progression round must end up in one packet
  // under an aggregating strategy — the deferred-processing design of §2.
  auto p = make_platform("aggreg_greedy");
  const int kMessages = 8;
  const auto payload = random_bytes(64, 19);

  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  std::vector<std::vector<std::byte>> sinks(kMessages, std::vector<std::byte>(64));
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
  }
  for (int i = 0; i < kMessages; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 0, payload));
  }
  p.b().wait_all(sends, recvs);

  // All eight 64-byte messages traveled in a single eager packet on the
  // fastest rail (Quadrics, index 1).
  auto& gate = p.a().scheduler().gate(p.gate_ab());
  EXPECT_EQ(gate.rail(1).tx.packets[0], 1u);
  EXPECT_EQ(gate.rail(1).tx.segments, 8u);
  EXPECT_EQ(gate.rail(0).tx.packets[0], 0u);
  for (auto& s : sinks) EXPECT_EQ(s, payload);
}

TEST(Gate, RatioNormalizationAndAccessors) {
  auto p = make_platform();
  auto& gate = p.a().scheduler().gate(p.gate_ab());
  EXPECT_EQ(gate.rail_count(), 2u);
  EXPECT_EQ(gate.fastest_rail(), 1u);  // quadrics
  EXPECT_EQ(gate.small_threshold(), 8u * 1024);

  gate.set_ratios({3.0, 1.0});
  EXPECT_DOUBLE_EQ(gate.ratio(0), 0.75);
  EXPECT_DOUBLE_EQ(gate.ratio(1), 0.25);

  // Defaults derive from capability bandwidths (myri > quadrics).
  auto q = make_platform();
  auto& gate_q = q.a().scheduler().gate(q.gate_ab());
  EXPECT_GT(gate_q.ratio(0), gate_q.ratio(1));
  EXPECT_NEAR(gate_q.ratio(0) + gate_q.ratio(1), 1.0, 1e-12);
}

}  // namespace
