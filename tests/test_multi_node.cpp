// Beyond the paper's two-node testbed: the library is not structurally
// limited to a pair of hosts. These tests build three-node topologies
// (one session per node, one gate per peer) and heterogeneous rail sets,
// checking that scheduling state is correctly isolated per gate.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/session.hpp"
#include "drv/sim_driver.hpp"
#include "drv/sim_world.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

/// Three nodes in a triangle; every edge is a 2-rail (myri + quadrics)
/// multi-rail link. Sessions share one simulated world.
struct Triangle {
  drv::SimWorld world;
  std::array<std::unique_ptr<Session>, 3> sessions;
  // gate[i][j]: node i's gate towards node j (i != j).
  GateId gate[3][3] = {};

  explicit Triangle(const char* strategy = "aggreg_greedy") {
    netmodel::HostProfile host;
    std::array<drv::NodeId, 3> nodes{world.add_node(host), world.add_node(host),
                                     world.add_node(host)};
    auto clock = [this] { return world.now(); };
    auto defer = [this](std::function<void()> fn) {
      world.engine().schedule(0, std::move(fn));
    };
    auto progress = [this](const std::function<bool()>& pred) {
      world.engine().run_until(pred);
    };
    for (int i = 0; i < 3; ++i) {
      sessions[i] = std::make_unique<Session>(std::to_string(i), clock, defer,
                                              progress);
    }
    for (int i = 0; i < 3; ++i) {
      for (int j = i + 1; j < 3; ++j) {
        auto [m_i, m_j] = world.add_link(nodes[i], nodes[j], netmodel::myri10g());
        auto [q_i, q_j] =
            world.add_link(nodes[i], nodes[j], netmodel::quadrics_qm500());
        gate[i][j] = sessions[i]->connect({m_i, q_i}, strategy);
        gate[j][i] = sessions[j]->connect({m_j, q_j}, strategy);
      }
    }
  }
};

TEST(MultiNode, RingExchangeAcrossThreeNodes) {
  Triangle t;
  const std::size_t kSize = 50000;
  std::array<std::vector<std::byte>, 3> payloads{
      random_bytes(kSize, 1), random_bytes(kSize, 2), random_bytes(kSize, 3)};
  std::array<std::vector<std::byte>, 3> sinks{
      std::vector<std::byte>(kSize), std::vector<std::byte>(kSize),
      std::vector<std::byte>(kSize)};

  // Ring: i sends to (i+1) % 3.
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < 3; ++i) {
    const int from = (i + 2) % 3;
    recvs.push_back(t.sessions[i]->irecv(t.gate[i][from], 0, sinks[i]));
  }
  for (int i = 0; i < 3; ++i) {
    const int to = (i + 1) % 3;
    sends.push_back(t.sessions[i]->isend(t.gate[i][to], 0, payloads[i]));
  }
  t.sessions[0]->wait_all(sends, recvs);
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sinks[i], payloads[(i + 2) % 3]) << "node " << i;
  }
}

TEST(MultiNode, GatesKeepIndependentSequenceSpaces) {
  // Same tag, messages to two different peers: per-gate sequence numbers
  // must not interfere.
  Triangle t;
  const auto to1 = random_bytes(3000, 4);
  const auto to2 = random_bytes(7000, 5);
  std::vector<std::byte> sink1(3000), sink2(7000);

  auto r1 = t.sessions[1]->irecv(t.gate[1][0], 9, sink1);
  auto r2 = t.sessions[2]->irecv(t.gate[2][0], 9, sink2);
  auto s1 = t.sessions[0]->isend(t.gate[0][1], 9, to1);
  auto s2 = t.sessions[0]->isend(t.gate[0][2], 9, to2);
  t.sessions[0]->wait_all(std::vector<SendHandle>{s1, s2},
                          std::vector<RecvHandle>{r1, r2});
  EXPECT_EQ(sink1, to1);
  EXPECT_EQ(sink2, to2);
}

TEST(MultiNode, HubNodeCpuCouplesItsLinks) {
  // Node 0 sends large messages to nodes 1 and 2 simultaneously; both
  // transfers cross node 0's I/O bus, so their aggregate is bus-capped
  // while each alone would run at link speed.
  Triangle t("single_rail");  // rail 0 = myri on each gate
  const std::size_t kSize = 4 << 20;
  const auto payload = random_bytes(kSize, 6);
  std::vector<std::byte> sink1(kSize), sink2(kSize);

  auto r1 = t.sessions[1]->irecv(t.gate[1][0], 0, sink1);
  auto r2 = t.sessions[2]->irecv(t.gate[2][0], 0, sink2);
  const sim::TimeNs t0 = t.world.now();
  auto s1 = t.sessions[0]->isend(t.gate[0][1], 0, payload);
  auto s2 = t.sessions[0]->isend(t.gate[0][2], 0, payload);
  t.sessions[0]->wait_all(std::vector<SendHandle>{s1, s2},
                          std::vector<RecvHandle>{r1, r2});
  EXPECT_EQ(sink1, payload);
  EXPECT_EQ(sink2, payload);

  const double us = sim::ns_to_us(
      std::max(r1->completion_time(), r2->completion_time()) - t0);
  const double aggregate_mbps = 2.0 * kSize / us;
  // Two myri links could carry 2x1210, but node 0's bus caps at 1950.
  EXPECT_LT(aggregate_mbps, 1960.0);
  EXPECT_GT(aggregate_mbps, 1700.0);
}

TEST(MultiNode, HeterogeneousFourRailGate) {
  // One gate bundling four different technologies, with adaptive split.
  drv::SimWorld world;
  netmodel::HostProfile host;
  host.bus_bandwidth_mbps = 4000.0;  // wide bus to let all rails matter
  const auto na = world.add_node(host);
  const auto nb = world.add_node(host);

  std::vector<drv::Driver*> rails_a, rails_b;
  for (const auto& nic : {netmodel::myri10g(), netmodel::quadrics_qm500(),
                          netmodel::dolphin_sci(), netmodel::gige_tcp()}) {
    auto [ea, eb] = world.add_link(na, nb, nic);
    rails_a.push_back(ea);
    rails_b.push_back(eb);
  }
  auto clock = [&world] { return world.now(); };
  auto defer = [&world](std::function<void()> fn) {
    world.engine().schedule(0, std::move(fn));
  };
  auto progress = [&world](const std::function<bool()>& pred) {
    world.engine().run_until(pred);
  };
  Session a("A", clock, defer, progress);
  Session b("B", clock, defer, progress);
  const GateId gab = a.connect(rails_a, "split_balance");
  const GateId gba = b.connect(rails_b, "split_balance");
  (void)gba;

  const std::size_t kSize = 8 << 20;
  const auto payload = random_bytes(kSize, 7);
  std::vector<std::byte> sink(kSize);
  auto recv = b.irecv(0, 0, sink);
  auto send = a.isend(gab, 0, payload);
  b.wait(recv);
  a.wait(send);
  EXPECT_EQ(sink, payload);

  // All four DMA tracks carried a chunk, fastest rail the biggest.
  auto& gate = a.scheduler().gate(gab);
  std::uint64_t myri_bytes = gate.rail(0).tx.payload_bytes[1];
  for (RailIndex i = 0; i < 4; ++i) {
    EXPECT_EQ(gate.rail(i).tx.packets[1], 1u) << "rail " << i;
    EXPECT_LE(gate.rail(i).tx.payload_bytes[1], myri_bytes);
  }
}

}  // namespace
