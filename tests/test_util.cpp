// Unit tests for the util subsystem: byte sizes, statistics, RNG, fmt,
// Expected, logging.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "util/byte_size.hpp"
#include "util/expected.hpp"
#include "util/fmt.hpp"
#include "util/log.hpp"
#include "util/panic.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace {

using namespace nmad::util;

// --- byte_size --------------------------------------------------------------

TEST(ByteSize, ParsesPlainNumbers) {
  EXPECT_EQ(parse_byte_size("0").value(), 0u);
  EXPECT_EQ(parse_byte_size("4").value(), 4u);
  EXPECT_EQ(parse_byte_size("123456").value(), 123456u);
}

TEST(ByteSize, ParsesSuffixes) {
  EXPECT_EQ(parse_byte_size("4K").value(), 4096u);
  EXPECT_EQ(parse_byte_size("4k").value(), 4096u);
  EXPECT_EQ(parse_byte_size("4KB").value(), 4096u);
  EXPECT_EQ(parse_byte_size("4KiB").value(), 4096u);
  EXPECT_EQ(parse_byte_size("2M").value(), 2u * 1024 * 1024);
  EXPECT_EQ(parse_byte_size("1G").value(), 1024u * 1024 * 1024);
  EXPECT_EQ(parse_byte_size("8B").value(), 8u);
}

TEST(ByteSize, ParsesFractionsWithUnits) {
  EXPECT_EQ(parse_byte_size("1.5K").value(), 1536u);
  EXPECT_EQ(parse_byte_size("0.5M").value(), 512u * 1024);
}

TEST(ByteSize, RejectsGarbage) {
  EXPECT_FALSE(parse_byte_size(""));
  EXPECT_FALSE(parse_byte_size("K"));
  EXPECT_FALSE(parse_byte_size("12X"));
  EXPECT_FALSE(parse_byte_size("1.5"));     // fraction without unit
  EXPECT_FALSE(parse_byte_size("4KQ"));
  EXPECT_FALSE(parse_byte_size("4BB"));
  EXPECT_FALSE(parse_byte_size("-3"));
}

TEST(ByteSize, FormatPicksLargestExactUnit) {
  EXPECT_EQ(format_byte_size(4), "4");
  EXPECT_EQ(format_byte_size(4096), "4K");
  EXPECT_EQ(format_byte_size(8 * 1024 * 1024), "8M");
  EXPECT_EQ(format_byte_size(1024ull * 1024 * 1024), "1G");
  EXPECT_EQ(format_byte_size(1500), "1500");  // not an exact multiple
}

TEST(ByteSize, RoundTripPowerOfTwoSizes) {
  for (std::uint64_t s = 1; s <= (1ull << 33); s *= 2) {
    EXPECT_EQ(parse_byte_size(format_byte_size(s)).value(), s) << s;
  }
}

// --- stats ------------------------------------------------------------------

TEST(Stats, RunningStatsMatchesDirectComputation) {
  RunningStats st;
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0, 10.0};
  double sum = 0;
  for (double x : xs) {
    st.add(x);
    sum += x;
  }
  EXPECT_EQ(st.count(), xs.size());
  EXPECT_DOUBLE_EQ(st.mean(), sum / static_cast<double>(xs.size()));
  EXPECT_DOUBLE_EQ(st.min(), 1.0);
  EXPECT_DOUBLE_EQ(st.max(), 10.0);

  double var = 0;
  for (double x : xs) var += (x - st.mean()) * (x - st.mean());
  var /= static_cast<double>(xs.size() - 1);
  EXPECT_NEAR(st.variance(), var, 1e-12);
}

TEST(Stats, RunningStatsEdgeCases) {
  RunningStats st;
  EXPECT_EQ(st.mean(), 0.0);
  st.add(5.0);
  EXPECT_EQ(st.variance(), 0.0);  // single sample
  EXPECT_EQ(st.stddev(), 0.0);
  st.reset();
  EXPECT_EQ(st.count(), 0u);
}

TEST(Stats, PercentileInterpolates) {
  std::vector<double> xs{10, 20, 30, 40};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 0.5), 25.0);
  EXPECT_DOUBLE_EQ(median({7.0}), 7.0);
}

TEST(Stats, LinearFitRecoversLine) {
  std::vector<double> x, y;
  for (int i = 0; i < 20; ++i) {
    x.push_back(i);
    y.push_back(3.5 + 2.0 * i);
  }
  const LinearFit fit = fit_linear(x, y);
  EXPECT_NEAR(fit.intercept, 3.5, 1e-9);
  EXPECT_NEAR(fit.slope, 2.0, 1e-9);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(Stats, LinearFitR2DropsWithNoise) {
  std::vector<double> x{0, 1, 2, 3}, y{0, 5, 1, 6};
  const LinearFit fit = fit_linear(x, y);
  EXPECT_LT(fit.r2, 1.0);
  EXPECT_GE(fit.r2, 0.0);
}

// --- rng --------------------------------------------------------------------

TEST(Rng, DeterministicAcrossInstances) {
  Xoshiro256 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge) {
  Xoshiro256 a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) equal += (a.next() == b.next());
  EXPECT_LT(equal, 3);
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 rng(7);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(17), 17u);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.next_double();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);  // uniform mean
}

// --- fmt --------------------------------------------------------------------

TEST(Fmt, FormatsLikePrintf) {
  EXPECT_EQ(sformat("x=%d y=%s", 3, "abc"), "x=3 y=abc");
  EXPECT_EQ(sformat("%.2f", 1.2345), "1.23");
  EXPECT_EQ(sformat("%s", ""), "");
}

TEST(Fmt, HandlesLongOutput) {
  const std::string big(5000, 'q');
  EXPECT_EQ(sformat("%s!", big.c_str()).size(), 5001u);
}

// --- Expected ---------------------------------------------------------------

TEST(Expected, ValueAndErrorStates) {
  Expected<int> ok(5);
  EXPECT_TRUE(ok.has_value());
  EXPECT_EQ(ok.value(), 5);
  EXPECT_EQ(ok.value_or(9), 5);

  Expected<int> bad(make_error("nope"));
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().message, "nope");
  EXPECT_EQ(bad.value_or(9), 9);
}

TEST(Expected, VoidSpecialization) {
  nmad::util::Status ok{};
  EXPECT_TRUE(ok.has_value());
  nmad::util::Status bad = make_error("broken");
  EXPECT_FALSE(bad.has_value());
  EXPECT_EQ(bad.error().message, "broken");
}

// --- panic hook -------------------------------------------------------------

TEST(Panic, HookInterceptsAssertFailure) {
  set_panic_hook(+[](std::string_view msg) {
    throw std::runtime_error(std::string(msg));
  });
  EXPECT_THROW(NMAD_PANIC("boom"), std::runtime_error);
  try {
    NMAD_ASSERT(1 == 2, "math is broken");
    FAIL() << "assert did not fire";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken"), std::string::npos);
  }
  set_panic_hook(nullptr);
}

// --- log --------------------------------------------------------------------

TEST(Log, ParseLevels) {
  EXPECT_EQ(parse_log_level("error"), LogLevel::kError);
  EXPECT_EQ(parse_log_level("trace"), LogLevel::kTrace);
  EXPECT_EQ(parse_log_level("bogus"), LogLevel::kOff);
  EXPECT_EQ(parse_log_level(""), LogLevel::kOff);
}

TEST(Log, SetAndGetLevel) {
  const LogLevel before = log_level();
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(before);
}

}  // namespace
