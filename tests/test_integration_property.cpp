// Property-style integration sweep: for every strategy, across message
// sizes spanning the eager/rendezvous boundary and segment counts, data
// delivered must be byte-exact, all requests must complete, and the
// simulation must drain. Parameterized gtest generates the full matrix.
#include <gtest/gtest.h>

#include <mutex>
#include <tuple>
#include <vector>

#include "core/platform.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

using Param = std::tuple<std::string /*strategy*/, std::size_t /*total size*/,
                         int /*segments*/>;

class DeliveryMatrix : public ::testing::TestWithParam<Param> {};

TEST_P(DeliveryMatrix, ByteExactDelivery) {
  const auto& [strategy, total, segments] = GetParam();

  TwoNodePlatform p(paper_platform(strategy));
  util::Xoshiro256 rng(total * 31 + segments);
  std::vector<std::byte> payload(total);
  for (auto& b : payload) b = std::byte(rng.next() & 0xff);
  std::vector<std::byte> sink(total, std::byte{0});

  // `segments` independent messages (the paper's multi-segment benchmark
  // convention), sizes as equal as possible.
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  const std::size_t base = total / segments;
  std::size_t off = 0;
  for (int i = 0; i < segments; ++i) {
    const std::size_t len = (i + 1 == segments) ? total - off : base;
    recvs.push_back(
        p.b().irecv(p.gate_ba(), 0, std::span<std::byte>(sink.data() + off, len)));
    off += len;
  }
  off = 0;
  for (int i = 0; i < segments; ++i) {
    const std::size_t len = (i + 1 == segments) ? total - off : base;
    sends.push_back(p.a().isend(
        p.gate_ab(), 0, std::span<const std::byte>(payload.data() + off, len)));
    off += len;
  }
  p.b().wait_all(sends, recvs);

  EXPECT_EQ(sink, payload);
  for (const auto& r : recvs) EXPECT_TRUE(r->completed());
  for (const auto& s : sends) EXPECT_TRUE(s->completed());
  {
    // In threaded mode the progress threads are still live: the world
    // progress mutex serializes us against them (engine steppers must be
    // externally serialized), making the drain check race-free in both
    // modes.
    std::lock_guard<std::mutex> lock(p.world().progress_mutex());
    EXPECT_EQ(p.a().scheduler().pending_requests(), 0u);
    EXPECT_EQ(p.b().scheduler().pending_requests(), 0u);
    // The world must drain: no leaked events beyond the final completions.
    p.world().engine().run();
    EXPECT_TRUE(p.world().engine().idle());
  }
}

std::vector<std::string> all_strategies() {
  std::vector<std::string> out;
  for (auto name : strat::strategy_names()) out.emplace_back(name);
  return out;
}

INSTANTIATE_TEST_SUITE_P(
    AllStrategiesSizesSegments, DeliveryMatrix,
    ::testing::Combine(
        ::testing::ValuesIn(all_strategies()),
        // Spans eager-only, the PIO threshold (8 KB), the split-viability
        // boundary (2 x min_chunk), and deep rendezvous territory.
        ::testing::Values(std::size_t{1}, std::size_t{100}, std::size_t{8192},
                          std::size_t{8193}, std::size_t{16 * 1024 + 2},
                          std::size_t{100000}, std::size_t{1 << 20}),
        ::testing::Values(1, 2, 4, 7)),
    [](const ::testing::TestParamInfo<Param>& pinfo) {
      return std::get<0>(pinfo.param) + "_" +
             std::to_string(std::get<1>(pinfo.param)) + "b_" +
             std::to_string(std::get<2>(pinfo.param)) + "seg";
    });

// --- randomized stress -------------------------------------------------------

class RandomTrafficStress : public ::testing::TestWithParam<std::string> {};

TEST_P(RandomTrafficStress, ManyRandomMessagesBothDirections) {
  TwoNodePlatform p(paper_platform(GetParam()));
  util::Xoshiro256 rng(0xfeedface);

  constexpr int kMessages = 120;
  struct Msg {
    std::vector<std::byte> payload;
    std::vector<std::byte> sink;
    SendHandle send;
    RecvHandle recv;
    bool a_to_b;
    proto::Tag tag;
  };
  std::vector<Msg> msgs(kMessages);

  // Pre-post all receives (random tags from a small set to exercise
  // same-tag ordering), then fire all sends interleaved.
  for (auto& m : msgs) {
    const std::size_t size = rng.next_below(200000);
    m.payload.resize(size);
    for (auto& b : m.payload) b = std::byte(rng.next() & 0xff);
    m.sink.assign(size, std::byte{0});
    m.a_to_b = rng.next_below(2) == 0;
    m.tag = static_cast<proto::Tag>(rng.next_below(3));
  }
  for (auto& m : msgs) {
    m.recv = m.a_to_b ? p.b().irecv(p.gate_ba(), m.tag, m.sink)
                      : p.a().irecv(p.gate_ab(), m.tag, m.sink);
  }
  for (auto& m : msgs) {
    m.send = m.a_to_b ? p.a().isend(p.gate_ab(), m.tag, m.payload)
                      : p.b().isend(p.gate_ba(), m.tag, m.payload);
  }

  // Session wait rather than stepping the engine directly: works in both
  // serial (drives the engine) and threaded (progress threads drive it)
  // modes.
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  for (const auto& m : msgs) {
    sends.push_back(m.send);
    recvs.push_back(m.recv);
  }
  p.a().wait_all(sends, recvs);
  for (const auto& m : msgs) {
    EXPECT_EQ(m.sink, m.payload);
    EXPECT_EQ(m.recv->received_len(), m.payload.size());
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, RandomTrafficStress,
                         ::testing::ValuesIn(all_strategies()),
                         [](const auto& pinfo) { return pinfo.param; });

}  // namespace
