// TCP-driver tests: the identical core/strategy stack over real kernel
// sockets (socketpair endpoints, single process, RealWorld pump).
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <memory>
#include <span>
#include <vector>

#include "core/session.hpp"
#include "drv/real_world.hpp"
#include "drv/tcp_driver.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

/// Two sessions in one process over a socketpair rail, both pumped by one
/// RealWorld.
struct TcpFixture {
  drv::RealWorld world;
  std::unique_ptr<drv::TcpDriver> drv_a, drv_b;
  std::unique_ptr<Session> a, b;
  GateId gate_ab = 0, gate_ba = 0;

  explicit TcpFixture(const char* strategy = "aggreg") {
    std::tie(drv_a, drv_b) = drv::TcpDriver::create_pair();
    world.attach(drv_a.get());
    world.attach(drv_b.get());
    auto clock = [this] { return world.now(); };
    auto defer = [this](std::function<void()> fn) { world.defer(std::move(fn)); };
    auto progress = [this](const std::function<bool()>& pred) {
      world.progress_until(pred);
    };
    a = std::make_unique<Session>("A", clock, defer, progress);
    b = std::make_unique<Session>("B", clock, defer, progress);
    gate_ab = a->connect({drv_a.get()}, strategy);
    gate_ba = b->connect({drv_b.get()}, strategy);
  }
};

TEST(TcpDriver, SmallMessageRoundTrip) {
  TcpFixture f;
  const auto payload = random_bytes(1000, 1);
  std::vector<std::byte> sink(1000);
  auto recv = f.b->irecv(f.gate_ba, 1, sink);
  auto send = f.a->isend(f.gate_ab, 1, payload);
  f.b->wait(recv);
  f.a->wait(send);
  EXPECT_EQ(sink, payload);
}

TEST(TcpDriver, LargeMessageUsesRendezvousOverSockets) {
  TcpFixture f;
  const auto payload = random_bytes(2 << 20, 2);
  std::vector<std::byte> sink(2 << 20);
  auto recv = f.b->irecv(f.gate_ba, 1, sink);
  auto send = f.a->isend(f.gate_ab, 1, payload);
  f.b->wait(recv);
  f.a->wait(send);
  EXPECT_EQ(sink, payload);
  // Bulk data flowed as rendezvous chunks plus control frames.
  EXPECT_GE(f.drv_a->stats().packets_sent, 2u);   // RDV_REQ + chunk(s)
  EXPECT_GE(f.drv_b->stats().packets_sent, 1u);   // RDV_ACK
}

TEST(TcpDriver, UnexpectedMessageBuffersUntilRecv) {
  TcpFixture f;
  const auto payload = random_bytes(128, 3);
  auto send = f.a->isend(f.gate_ab, 9, payload);
  f.a->wait(send);
  // Let the frame actually arrive and sit unexpected.
  for (int i = 0; i < 100; ++i) f.world.progress_once();

  std::vector<std::byte> sink(128);
  auto recv = f.b->irecv(f.gate_ba, 9, sink);
  f.b->wait(recv);
  EXPECT_EQ(sink, payload);
}

TEST(TcpDriver, ManyMessagesBothDirections) {
  TcpFixture f;
  constexpr int kCount = 40;
  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  util::Xoshiro256 rng(4);

  for (int i = 0; i < kCount; ++i) {
    payloads.push_back(random_bytes(rng.next_below(60000), 100 + i));
    sinks.emplace_back(payloads.back().size());
  }
  for (int i = 0; i < kCount; ++i) {
    recvs.push_back(i % 2 == 0 ? f.b->irecv(f.gate_ba, 0, sinks[i])
                               : f.a->irecv(f.gate_ab, 0, sinks[i]));
  }
  for (int i = 0; i < kCount; ++i) {
    sends.push_back(i % 2 == 0 ? f.a->isend(f.gate_ab, 0, payloads[i])
                               : f.b->isend(f.gate_ba, 0, payloads[i]));
  }
  f.a->wait_all(sends, recvs);
  for (int i = 0; i < kCount; ++i) EXPECT_EQ(sinks[i], payloads[i]) << i;
}

TEST(TcpDriver, AggregationHappensOverSocketsToo) {
  TcpFixture f("aggreg");
  constexpr int kCount = 6;
  const auto payload = random_bytes(50, 5);
  std::vector<std::vector<std::byte>> sinks(kCount, std::vector<std::byte>(50));
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < kCount; ++i) {
    recvs.push_back(f.b->irecv(f.gate_ba, 0, sinks[i]));
  }
  for (int i = 0; i < kCount; ++i) {
    sends.push_back(f.a->isend(f.gate_ab, 0, payload));
  }
  f.a->wait_all(sends, recvs);
  for (auto& s : sinks) EXPECT_EQ(s, payload);
  // All six submissions were queued before the first progression round, so
  // the strategy coalesced them into one frame.
  EXPECT_EQ(f.drv_a->stats().packets_sent, 1u);
}

TEST(TcpDriver, PeerCloseSurfacesRailErrorInsteadOfCrashing) {
  auto [da, db] = drv::TcpDriver::create_pair();
  da->set_deliver([](drv::Track, std::span<const std::byte>) {});
  std::vector<drv::RailError> errors;
  da->set_error([&](const drv::RailError& e) { errors.push_back(e); });

  // The peer endpoint goes away (clean close of both track sockets).
  db.reset();

  for (int i = 0; i < 1000 && errors.empty(); ++i) da->progress();
  ASSERT_FALSE(errors.empty()) << "peer close never surfaced";
  for (const auto& e : errors) {
    EXPECT_EQ(e.kind, drv::RailErrorKind::kPeerGone);
    EXPECT_TRUE(da->failed(e.track));
    EXPECT_FALSE(da->send_idle(e.track));  // parked, never idle again
  }
  EXPECT_GE(da->stats().rail_errors, 1u);
  // Further progression on the dead endpoint is a harmless no-op.
  for (int i = 0; i < 10; ++i) da->progress();
}

TEST(TcpDriver, PeerProcessExitFailsPendingRequestsCleanly) {
  // Regression for the original failure mode: one side of a transfer
  // _exit()s and the survivor used to panic (or SIGPIPE) instead of
  // failing the pending requests over a dead rail.
  auto [da, db] = drv::TcpDriver::create_pair();

  const pid_t pid = fork();
  ASSERT_GE(pid, 0) << "fork failed";
  if (pid == 0) {
    // Child: hold the peer endpoint open briefly, then vanish without any
    // shutdown handshake. _exit skips destructors — the hard-crash case.
    usleep(30 * 1000);
    _exit(0);
  }
  // Parent: drop its copy of the peer endpoint so the child's _exit is the
  // event that delivers EOF on the survivor's sockets.
  db.reset();

  drv::RealWorld world;
  world.attach(da.get());
  auto clock = [&world] { return world.now(); };
  auto defer = [&world](std::function<void()> fn) { world.defer(std::move(fn)); };
  auto progress = [&world](const std::function<bool()>& pred) {
    world.progress_until(pred);
  };
  auto timer = [&world](sim::TimeNs delay, std::function<void()> fn) {
    world.schedule_after(delay, std::move(fn));
  };
  Session a("A", clock, defer, progress, timer);
  strat::StrategyConfig scfg;
  scfg.reliability.ack_enabled = true;
  const GateId gate = a.connect({da.get()}, "single_rail", scfg);

  const auto payload = random_bytes(4096, 6);
  auto send = a.isend(gate, 1, payload);
  // The peer never acks and then dies: the request must settle as failed
  // (rail dead -> gate failed), not hang and not crash the process.
  a.wait(send);
  EXPECT_TRUE(send->failed());
  EXPECT_FALSE(send->completed());
  EXPECT_TRUE(a.scheduler().gate(gate).failed());
  for (auto& rail : a.scheduler().gate(gate).rails()) {
    EXPECT_EQ(rail.guard.state(), RailState::kDead);
  }

  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  EXPECT_TRUE(WIFEXITED(status));
}

TEST(TcpDriver, TrackIdleContract) {
  auto [da, db] = drv::TcpDriver::create_pair();
  db->set_deliver([](drv::Track, std::span<const std::byte>) {});
  da->set_deliver([](drv::Track, std::span<const std::byte>) {});
  EXPECT_TRUE(da->send_idle(drv::Track::kSmall));

  bool sent = false;
  const auto wire = nmad::proto::encode_data_packet(
      nmad::proto::SegHeader{0, 0, 0, 4, 4},
      std::vector<std::byte>(4, std::byte{1}));
  da->post_send(drv::SendDesc{drv::Track::kSmall, wire, 0.0}, [&] { sent = true; });
  EXPECT_FALSE(da->send_idle(drv::Track::kSmall));
  EXPECT_TRUE(da->send_idle(drv::Track::kLarge));
  while (!sent) da->progress();
  EXPECT_TRUE(da->send_idle(drv::Track::kSmall));
}

}  // namespace
