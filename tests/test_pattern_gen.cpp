// Property tests for the CommBench-style group-to-group pattern generator
// (bench/pattern_gen.hpp): the rank-set math across the sweep space —
// group disjointness, no self-sends, closed-form pair counts, direction
// containment — plus serial-mode determinism of the pattern runner and the
// sparse-mesh platform construction it relies on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "core/platform.hpp"
#include "pattern_gen.hpp"

namespace {

using namespace nmad;
using namespace nmad::bench;

/// Every valid point with p <= 12 plus a few larger rail/dense points —
/// 300+ points, small enough to enumerate exhaustively.
std::vector<PatternPoint> sweep_space() {
  std::vector<PatternPoint> out;
  for (Pattern pattern : {Pattern::kRail, Pattern::kFan, Pattern::kDense}) {
    for (std::size_t p = 2; p <= 12; ++p) {
      for (std::size_t g = 1; g <= p; ++g) {
        if (p % g != 0) continue;
        for (std::size_t k = 1; k <= g; ++k) {
          for (Direction d : {Direction::kUni, Direction::kBi,
                              Direction::kOmni}) {
            PatternPoint pt{pattern, p, g, k, d};
            if (pt.valid()) out.push_back(pt);
          }
        }
      }
    }
    out.push_back({pattern, 16, 8, 8, Direction::kUni});
    out.push_back({pattern, 16, 4, 2, Direction::kOmni});
  }
  for (std::size_t p : {2, 3, 8, 16}) {
    for (Direction d : {Direction::kUni, Direction::kBi, Direction::kOmni}) {
      out.push_back(p2p_point(p, d));
    }
  }
  return out;
}

std::set<Pair> pair_set(const PatternPoint& pt) {
  const auto pairs = generate_pairs(pt);
  return {pairs.begin(), pairs.end()};
}

TEST(PatternGen, PairsAreUniqueSelfSendFreeAndInRange) {
  for (const PatternPoint& pt : sweep_space()) {
    const auto pairs = generate_pairs(pt);
    std::set<Pair> unique(pairs.begin(), pairs.end());
    EXPECT_EQ(unique.size(), pairs.size()) << pt.label();
    for (const Pair& pr : pairs) {
      EXPECT_NE(pr.sender, pr.receiver) << pt.label();
      EXPECT_LT(pr.sender, pt.p) << pt.label();
      EXPECT_LT(pr.receiver, pt.p) << pt.label();
    }
  }
}

TEST(PatternGen, CountsMatchClosedForm) {
  for (const PatternPoint& pt : sweep_space()) {
    // Recompute the closed form here, independent of the implementation.
    const std::size_t G = pt.p / pt.g;
    std::size_t expect = 0;
    if (pt.pattern == Pattern::kP2P) {
      expect = pt.direction == Direction::kUni ? 1 : 2;
    } else {
      const std::size_t per_root = pt.pattern == Pattern::kDense
                                       ? pt.k * pt.k * (G - 1)
                                       : pt.k * (G - 1);
      expect = pt.direction == Direction::kUni  ? per_root
               : pt.direction == Direction::kBi ? 2 * per_root
                                                : G * per_root;
    }
    EXPECT_EQ(generate_pairs(pt).size(), expect) << pt.label();
    EXPECT_EQ(expected_pair_count(pt), expect) << pt.label();
  }
}

TEST(PatternGen, UniSenderAndReceiverGroupsAreDisjoint) {
  // Unidirectional group patterns send strictly root-group -> other
  // groups: the sender and receiver rank sets cannot intersect.
  for (const PatternPoint& pt : sweep_space()) {
    if (pt.direction != Direction::kUni) continue;
    std::set<std::size_t> senders, receivers;
    for (const Pair& pr : generate_pairs(pt)) {
      senders.insert(pr.sender);
      receivers.insert(pr.receiver);
    }
    std::vector<std::size_t> both;
    std::set_intersection(senders.begin(), senders.end(), receivers.begin(),
                          receivers.end(), std::back_inserter(both));
    EXPECT_TRUE(both.empty()) << pt.label();
    if (pt.pattern != Pattern::kP2P) {
      // All senders live in group 0 (the root), no receiver does.
      for (std::size_t s : senders) EXPECT_LT(s, pt.g) << pt.label();
      for (std::size_t r : receivers) EXPECT_GE(r, pt.g) << pt.label();
    }
  }
}

TEST(PatternGen, BiAndOmniContainUni) {
  for (PatternPoint pt : sweep_space()) {
    if (pt.direction != Direction::kUni) continue;
    const std::set<Pair> uni = pair_set(pt);
    pt.direction = Direction::kBi;
    const std::set<Pair> bi = pair_set(pt);
    pt.direction = Direction::kOmni;
    const std::set<Pair> omni = pair_set(pt);
    EXPECT_TRUE(std::includes(bi.begin(), bi.end(), uni.begin(), uni.end()))
        << pt.label();
    EXPECT_TRUE(
        std::includes(omni.begin(), omni.end(), uni.begin(), uni.end()))
        << pt.label();
  }
}

TEST(PatternGen, P2PBiAndOmniCoincide) {
  for (std::size_t p : {2, 5, 8}) {
    EXPECT_EQ(pair_set(p2p_point(p, Direction::kBi)),
              pair_set(p2p_point(p, Direction::kOmni)));
  }
}

TEST(PatternGen, InvalidPointsAreRejected) {
  EXPECT_FALSE((PatternPoint{Pattern::kRail, 4, 3, 1, Direction::kUni}.valid()))
      << "g must divide p";
  EXPECT_FALSE((PatternPoint{Pattern::kRail, 4, 2, 3, Direction::kUni}.valid()))
      << "k must not exceed g";
  EXPECT_FALSE((PatternPoint{Pattern::kRail, 4, 4, 1, Direction::kUni}.valid()))
      << "group patterns need two groups";
  EXPECT_FALSE((PatternPoint{Pattern::kDense, 1, 1, 1, Direction::kUni}.valid()))
      << "p >= 2";
  EXPECT_TRUE(p2p_point(2, Direction::kUni).valid());
}

TEST(PatternGen, EdgesAreSortedUniqueAndCoverEveryPair) {
  for (const PatternPoint& pt : sweep_space()) {
    const auto pairs = generate_pairs(pt);
    const auto edges = pattern_edges(pairs);
    EXPECT_TRUE(std::is_sorted(edges.begin(), edges.end())) << pt.label();
    EXPECT_EQ(std::adjacent_find(edges.begin(), edges.end()), edges.end())
        << pt.label();
    for (const auto& [i, j] : edges) EXPECT_LT(i, j) << pt.label();
    for (const Pair& pr : pairs) {
      const auto e = std::minmax(pr.sender, pr.receiver);
      EXPECT_TRUE(std::binary_search(edges.begin(), edges.end(),
                                     std::make_pair(e.first, e.second)))
          << pt.label();
    }
  }
}

TEST(PatternGen, BusDegreeAndWireBoundness) {
  const std::vector<netmodel::NicProfile> rails = {
      netmodel::dolphin_sci(), netmodel::myrinet2000_gm2()};  // 585 MB/s
  const netmodel::HostProfile host{};  // 1950 MB/s bus

  // A single pair touches each bus once: wire-bound for sci+gm2.
  const auto p2p = generate_pairs(p2p_point(2, Direction::kUni));
  EXPECT_EQ(max_bus_degree(p2p), 1u);
  EXPECT_TRUE(wire_bound(p2p, rails, host));

  // The fan leader of fan/uni/p8g4k4 (G = 2) carries k(G-1) = 4 transfers;
  // its bus share (1950/4 = 487.5) is below the 585 rail aggregate:
  // bus-bound.
  const auto fan =
      generate_pairs({Pattern::kFan, 8, 4, 4, Direction::kUni});
  EXPECT_EQ(max_bus_degree(fan), 4u);
  EXPECT_FALSE(wire_bound(fan, rails, host));

  // Rail pairs are endpoint-disjoint in uni: degree 1 regardless of k.
  const auto rail =
      generate_pairs({Pattern::kRail, 8, 4, 4, Direction::kUni});
  EXPECT_EQ(max_bus_degree(rail), 1u);
  EXPECT_TRUE(wire_bound(rail, rails, host));

  // A faster rail set (myri10g alone is 1210 MB/s) tips degree-2 points
  // over the bus: bi p2p is wire-bound on sci+gm2, not on myri+quadrics.
  const std::vector<netmodel::NicProfile> fast = {
      netmodel::myri10g(), netmodel::quadrics_qm500()};
  const auto bi = generate_pairs(p2p_point(2, Direction::kBi));
  EXPECT_EQ(max_bus_degree(bi), 2u);
  EXPECT_TRUE(wire_bound(bi, rails, host));
  EXPECT_FALSE(wire_bound(bi, fast, host));
}

TEST(PatternGen, SparseMeshBuildsOnlyListedEdges) {
  core::MultiNodeConfig cfg;
  cfg.nodes = 6;
  cfg.links = {netmodel::dolphin_sci(), netmodel::myrinet2000_gm2()};
  cfg.strategy = "split_balance";
  cfg.progress_mode = core::ProgressMode::kSerial;
  cfg.edges = {{0, 3}, {1, 4}};
  core::MultiNodePlatform platform(cfg);
  EXPECT_TRUE(platform.has_gate(0, 3));
  EXPECT_TRUE(platform.has_gate(3, 0));
  EXPECT_TRUE(platform.has_gate(1, 4));
  EXPECT_FALSE(platform.has_gate(0, 1));
  EXPECT_FALSE(platform.has_gate(2, 5));
  EXPECT_FALSE(platform.has_gate(5, 2));
}

TEST(PatternGen, RunnerDeliversExactlyThePairSet) {
  for (const PatternPoint& pt :
       {PatternPoint{Pattern::kRail, 6, 2, 1, Direction::kOmni},
        PatternPoint{Pattern::kDense, 4, 2, 2, Direction::kBi},
        p2p_point(16, Direction::kUni)}) {  // 16 ranks, 1 sparse edge
    PatternRunOpts opts;
    opts.links = {netmodel::dolphin_sci(), netmodel::myrinet2000_gm2()};
    opts.msg_bytes = 64 * 1024;
    opts.iters = 2;
    opts.progress_mode = core::ProgressMode::kSerial;
    const PatternRunResult r = run_pattern_point(pt, opts);
    EXPECT_TRUE(r.data_ok) << pt.label();
    EXPECT_EQ(r.delivered_bytes,
              expected_delivered_bytes(pt, opts.msg_bytes, opts.iters))
        << pt.label();
    EXPECT_GT(r.aggregate_mbps, 0.0) << pt.label();
  }
}

TEST(PatternGen, SerialRunsAreDeterministic) {
  // Same point, same opts, fresh worlds: serial mode must reproduce the
  // virtual-time trajectory bit for bit — byte counts and series values.
  PatternRunOpts opts;
  opts.links = {netmodel::dolphin_sci(), netmodel::myrinet2000_gm2()};
  opts.msg_bytes = 256 * 1024;
  opts.iters = 2;
  opts.warmup = true;
  opts.progress_mode = core::ProgressMode::kSerial;
  const PatternPoint pt{Pattern::kDense, 8, 4, 2, Direction::kOmni};

  const PatternRunResult a = run_pattern_point(pt, opts);
  const PatternRunResult b = run_pattern_point(pt, opts);
  EXPECT_EQ(a.delivered_bytes, b.delivered_bytes);
  EXPECT_EQ(a.elapsed_us, b.elapsed_us);        // bitwise, not approximate
  EXPECT_EQ(a.aggregate_mbps, b.aggregate_mbps);
  EXPECT_TRUE(a.data_ok);
  EXPECT_TRUE(b.data_ok);
}

}  // namespace
