// Physics-monotonicity properties of the simulated platform: perturbing
// each NicProfile/HostProfile parameter must move end-to-end transfer
// times in the physically correct direction. These catch sign errors and
// forgotten couplings anywhere between the profile and the wire.
#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "core/platform.hpp"
#include "sim/time.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;
using netmodel::NicProfile;

/// One-way time for `size` bytes on a single-rail platform built from `nic`.
double one_way_us(const NicProfile& nic, std::size_t size,
                  int pio_cores = 1) {
  PlatformConfig cfg;
  cfg.links = {nic};
  cfg.strategy = "single_rail";
  cfg.host_a.pio_cores = pio_cores;
  cfg.host_b.pio_cores = pio_cores;
  TwoNodePlatform p(pin_serial(std::move(cfg)));

  std::vector<std::byte> payload(size, std::byte{0x44});
  std::vector<std::byte> sink(size);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  const sim::TimeNs t0 = p.now();
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);
  return sim::ns_to_us(recv->completion_time() - t0);
}

struct ParamCase {
  std::string name;
  std::function<void(NicProfile&, double)> apply;  // scale the parameter
  std::size_t probe_size;  // message size where the parameter matters
};

class SlowerParamMakesSlower : public ::testing::TestWithParam<ParamCase> {};

TEST_P(SlowerParamMakesSlower, Holds) {
  const ParamCase& pc = GetParam();
  NicProfile base = netmodel::myri10g();
  NicProfile worse = base;
  pc.apply(worse, 2.0);  // make the parameter 2x worse
  ASSERT_TRUE(worse.validate().has_value());

  const double t_base = one_way_us(base, pc.probe_size);
  const double t_worse = one_way_us(worse, pc.probe_size);
  EXPECT_GT(t_worse, t_base) << pc.name << " at " << pc.probe_size << "B";

  NicProfile better = base;
  pc.apply(better, 0.5);  // and 2x better
  ASSERT_TRUE(better.validate().has_value());
  const double t_better = one_way_us(better, pc.probe_size);
  EXPECT_LT(t_better, t_base) << pc.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllParameters, SlowerParamMakesSlower,
    ::testing::Values(
        ParamCase{"send_overhead",
                  [](NicProfile& p, double f) { p.send_overhead_us *= f; }, 64},
        ParamCase{"recv_overhead",
                  [](NicProfile& p, double f) { p.recv_overhead_us *= f; }, 64},
        ParamCase{"wire_latency",
                  [](NicProfile& p, double f) { p.wire_latency_us *= f; }, 64},
        ParamCase{"pio_bandwidth_inverse",
                  [](NicProfile& p, double f) { p.pio_bandwidth_mbps /= f; },
                  4096},
        ParamCase{"dma_setup",
                  [](NicProfile& p, double f) { p.dma_setup_us *= f; },
                  64 * 1024},
        ParamCase{"dma_bandwidth_inverse",
                  [](NicProfile& p, double f) { p.dma_bandwidth_mbps /= f; },
                  4 << 20},
        ParamCase{"dma_start",
                  [](NicProfile& p, double f) { p.dma_start_us *= f; },
                  64 * 1024}),
    [](const auto& pinfo) { return pinfo.param.name; });

TEST(ModelProperties, BusNeverMattersForOneIsolatedRail) {
  // A single Myri-10G DMA flow (1210 MB/s) is below the bus (1950 MB/s):
  // halving or doubling the bus must not change anything.
  for (double bus : {1300.0, 1950.0, 4000.0}) {
    PlatformConfig cfg;
    cfg.links = {netmodel::myri10g()};
    cfg.strategy = "single_rail";
    cfg.host_a.bus_bandwidth_mbps = bus;
    cfg.host_b.bus_bandwidth_mbps = bus;
    TwoNodePlatform p(pin_serial(std::move(cfg)));

    std::vector<std::byte> payload(4 << 20, std::byte{0x1});
    std::vector<std::byte> sink(4 << 20);
    auto recv = p.b().irecv(p.gate_ba(), 0, sink);
    auto send = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv);
    p.a().wait(send);
    static sim::TimeNs reference = -1;
    if (reference < 0) reference = recv->completion_time();
    EXPECT_EQ(recv->completion_time(), reference) << "bus " << bus;
  }
}

TEST(ModelProperties, NarrowBusThrottlesTwoRailAggregate) {
  // Sweep the bus downward under a 2-rail hetero split: aggregate
  // bandwidth must track the bus once it binds.
  for (double bus : {2500.0, 1600.0, 1000.0}) {
    PlatformConfig cfg = paper_platform("iso_split");
    cfg.host_a.bus_bandwidth_mbps = bus;
    cfg.host_b.bus_bandwidth_mbps = bus;
    TwoNodePlatform p(pin_serial(std::move(cfg)));

    const std::size_t size = 8 << 20;
    std::vector<std::byte> payload(size, std::byte{0x2});
    std::vector<std::byte> sink(size);
    auto recv = p.b().irecv(p.gate_ba(), 0, sink);
    const sim::TimeNs t0 = p.now();
    auto send = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv);
    p.a().wait(send);
    const double mbps =
        static_cast<double>(size) / sim::ns_to_us(recv->completion_time() - t0);
    EXPECT_LT(mbps, bus + 1.0) << "bus " << bus;
    if (bus <= 1600.0) {
      // Bound by the bus, and achieving most of it.
      EXPECT_GT(mbps, bus * 0.9) << "bus " << bus;
    }
  }
}

TEST(ModelProperties, ExtraPioCoresNeverHurtAndOnlyHelpMultiRail) {
  // Single rail: one PIO stream, a second core changes nothing.
  const double single_1 = one_way_us(netmodel::myri10g(), 4096, 1);
  const double single_2 = one_way_us(netmodel::myri10g(), 4096, 2);
  EXPECT_DOUBLE_EQ(single_1, single_2);
}

TEST(ModelProperties, LatencyOrderingAcrossAllPresets) {
  // End-to-end 4-byte latency must respect the presets' design ordering:
  // sci < quadrics < myri10g < gm2 < tcp (SCI was historically the
  // lowest-latency interconnect of the set).
  const double t_quad = one_way_us(netmodel::quadrics_qm500(), 4);
  const double t_sci = one_way_us(netmodel::dolphin_sci(), 4);
  const double t_myri = one_way_us(netmodel::myri10g(), 4);
  const double t_gm2 = one_way_us(netmodel::myrinet2000_gm2(), 4);
  const double t_tcp = one_way_us(netmodel::gige_tcp(), 4);
  EXPECT_LT(t_sci, t_quad);
  EXPECT_LT(t_quad, t_myri);
  EXPECT_LT(t_myri, t_gm2);
  EXPECT_LT(t_gm2, t_tcp);
  EXPECT_NEAR(t_gm2, 6.5, 0.3);  // GM-2 calibration
}

TEST(ModelProperties, BandwidthOrderingAcrossAllPresets) {
  auto bw = [](const NicProfile& nic) {
    const double us = one_way_us(nic, 8 << 20);
    return static_cast<double>(8 << 20) / us;
  };
  const double myri = bw(netmodel::myri10g());
  const double quad = bw(netmodel::quadrics_qm500());
  const double sci = bw(netmodel::dolphin_sci());
  const double gm2 = bw(netmodel::myrinet2000_gm2());
  EXPECT_GT(myri, quad);
  EXPECT_GT(quad, sci);
  EXPECT_GT(sci, gm2);
  EXPECT_NEAR(gm2, 245.0, 10.0);
}

}  // namespace
