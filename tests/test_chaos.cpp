// Chaos property tests: the receive path (matching + rendezvous +
// reassembly) must be fully order-independent, so scrambling delivery
// order within each rail must never change what the application observes.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/session.hpp"
#include "drv/chaos_driver.hpp"
#include "drv/sim_driver.hpp"
#include "drv/sim_world.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

/// Paper platform with every rail endpoint wrapped in a ChaosDriver.
struct ChaosFixture {
  drv::SimWorld world;
  std::vector<std::unique_ptr<drv::ChaosDriver>> wrappers;
  std::unique_ptr<Session> a, b;
  GateId gate_ab = 0, gate_ba = 0;

  explicit ChaosFixture(std::uint64_t seed, const char* strategy,
                        std::size_t window) {
    netmodel::HostProfile host;
    const auto na = world.add_node(host);
    const auto nb = world.add_node(host);

    std::vector<drv::Driver*> rails_a, rails_b;
    for (const auto& nic : {netmodel::myri10g(), netmodel::quadrics_qm500()}) {
      auto [ea, eb] = world.add_link(na, nb, nic);
      wrappers.push_back(
          std::make_unique<drv::ChaosDriver>(*ea, seed++, window));
      rails_a.push_back(wrappers.back().get());
      wrappers.push_back(
          std::make_unique<drv::ChaosDriver>(*eb, seed++, window));
      rails_b.push_back(wrappers.back().get());
    }

    auto clock = [this] { return world.now(); };
    auto defer = [this](std::function<void()> fn) {
      world.engine().schedule(0, std::move(fn));
    };
    // Progress: run the engine; when it drains with the predicate unmet,
    // flush the chaos buffers (packets held below the window) and retry.
    auto progress = [this](const std::function<bool()>& pred) {
      for (int round = 0; round < 1000; ++round) {
        if (world.engine().run_until(pred)) return;
        bool flushed = false;
        for (auto& w : wrappers) {
          flushed |= w->buffered() > 0;
          w->flush();
        }
        if (!flushed && world.engine().idle()) return;  // genuine deadlock
      }
    };
    a = std::make_unique<Session>("A", clock, defer, progress);
    b = std::make_unique<Session>("B", clock, defer, progress);
    gate_ab = a->connect(rails_a, "aggreg_greedy");
    gate_ba = b->connect(rails_b, "aggreg_greedy");
    (void)strategy;
  }
};

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, ScrambledDeliveryStillByteExact) {
  ChaosFixture f(GetParam(), "aggreg_greedy", /*window=*/3);
  util::Xoshiro256 rng(GetParam() * 7 + 1);

  constexpr int kMessages = 30;
  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < kMessages; ++i) {
    payloads.push_back(random_bytes(rng.next_below(120000), GetParam() + i));
    sinks.emplace_back(payloads.back().size());
  }
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(f.b->irecv(f.gate_ba, static_cast<proto::Tag>(i % 4),
                               sinks[i]));
  }
  for (int i = 0; i < kMessages; ++i) {
    sends.push_back(f.a->isend(f.gate_ab, static_cast<proto::Tag>(i % 4),
                               payloads[i]));
  }
  f.a->wait_all(sends, recvs);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(sinks[i], payloads[i]) << "message " << i;
    EXPECT_EQ(recvs[i]->received_len(), payloads[i].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

TEST(Chaos, WindowOneIsTransparent) {
  // window=1 releases every packet immediately: behavior must be identical
  // to the unwrapped platform, including virtual timing.
  ChaosFixture f(42, "aggreg_greedy", /*window=*/1);
  const auto payload = random_bytes(100000, 5);
  std::vector<std::byte> sink(100000);
  auto recv = f.b->irecv(f.gate_ba, 0, sink);
  auto send = f.a->isend(f.gate_ab, 0, payload);
  f.b->wait(recv);
  f.a->wait(send);
  EXPECT_EQ(sink, payload);
  for (auto& w : f.wrappers) EXPECT_EQ(w->buffered(), 0u);
}

}  // namespace
