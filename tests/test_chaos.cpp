// Chaos property tests: the receive path (matching + rendezvous +
// reassembly) must be fully order-independent, so scrambling delivery
// order within each rail must never change what the application observes.
//
// With the fault injector armed (drop / duplicate / corrupt) and
// ack/retransmit enabled, the guarantee strengthens to the reliability
// contract: every seeded run either completes with byte-identical payloads
// or reports a dead rail — never a hang, never wrong data. The failover
// tests hard-kill one rail mid-rendezvous and assert the transfer finishes
// on the survivor with the dead rail's un-acked frames requeued.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/platform.hpp"
#include "core/session.hpp"
#include "drv/chaos_driver.hpp"
#include "drv/sim_driver.hpp"
#include "drv/sim_world.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

/// Paper platform with every rail endpoint wrapped in a ChaosDriver.
struct ChaosFixture {
  drv::SimWorld world;
  // Layout: wrappers[2*link + 0] is A's endpoint, [2*link + 1] is B's.
  std::vector<std::unique_ptr<drv::ChaosDriver>> wrappers;
  std::unique_ptr<Session> a, b;
  GateId gate_ab = 0, gate_ba = 0;

  ChaosFixture(std::uint64_t seed, const char* strategy,
               drv::ChaosConfig cfg, strat::StrategyConfig scfg = {}) {
    netmodel::HostProfile host;
    const auto na = world.add_node(host);
    const auto nb = world.add_node(host);

    // Flap schedules run on virtual time; bind the world clock unless the
    // test supplied its own time source.
    if (cfg.flap.enabled && cfg.clock == nullptr) {
      cfg.clock = [this] { return world.now(); };
    }

    std::vector<drv::Driver*> rails_a, rails_b;
    for (const auto& nic : {netmodel::myri10g(), netmodel::quadrics_qm500()}) {
      auto [ea, eb] = world.add_link(na, nb, nic);
      wrappers.push_back(std::make_unique<drv::ChaosDriver>(*ea, seed++, cfg));
      rails_a.push_back(wrappers.back().get());
      wrappers.push_back(std::make_unique<drv::ChaosDriver>(*eb, seed++, cfg));
      rails_b.push_back(wrappers.back().get());
    }

    auto clock = [this] { return world.now(); };
    auto defer = [this](std::function<void()> fn) {
      world.engine().schedule(0, std::move(fn));
    };
    auto timer = [this](sim::TimeNs delay, std::function<void()> fn) {
      world.engine().schedule(delay, std::move(fn));
    };
    // Progress: run the engine; when it drains with the predicate unmet,
    // flush the chaos buffers (packets held below the window) and retry.
    auto progress = [this](const std::function<bool()>& pred) {
      for (int round = 0; round < 1000; ++round) {
        if (world.engine().run_until(pred)) return;
        bool flushed = false;
        for (auto& w : wrappers) {
          flushed |= w->buffered() > 0;
          w->flush();
        }
        if (!flushed && world.engine().idle()) return;  // genuine deadlock
      }
    };
    a = std::make_unique<Session>("A", clock, defer, progress, timer);
    b = std::make_unique<Session>("B", clock, defer, progress, timer);
    gate_ab = a->connect(rails_a, strategy, scfg);
    gate_ba = b->connect(rails_b, strategy, scfg);
  }

  /// Order-scrambling only (the legacy decorator behavior).
  ChaosFixture(std::uint64_t seed, const char* strategy, std::size_t window)
      : ChaosFixture(seed, strategy,
                     drv::ChaosConfig::uniform(drv::FaultProfile{}, window)) {}

  /// Switch both sessions to threaded progression: one progress thread per
  /// rail, sharing the world mutex. The idle hook replaces the serial
  /// progress callback's chaos-buffer flush — it runs on a progress thread
  /// under the world mutex whenever the engine drains, releasing packets
  /// the window is holding back so the run cannot stall below the window.
  void start_threaded() {
    auto idle = [this] {
      for (auto& w : wrappers) w->flush();
    };
    const std::size_t threads = wrappers.size() / 2;  // one per rail
    a->start_threaded(world.progress_mutex(), &world.engine(), threads, idle);
    b->start_threaded(world.progress_mutex(), &world.engine(), threads, idle);
  }

  ~ChaosFixture() {
    // Progress threads of BOTH sessions must stop before either session
    // dies: engine events cross sessions, so a live thread of one could
    // step a callback into the other's freed scheduler. No-op in serial.
    a->stop_threaded();
    b->stop_threaded();
    // Drain the chaos buffers while the sessions (the deliver upcall
    // targets) are still alive; dead guards drop the frames harmlessly.
    // The wrappers' own destructor flush must find nothing left.
    for (auto& w : wrappers) w->flush();
  }

  [[nodiscard]] drv::ChaosDriver& side_a(std::size_t link) {
    return *wrappers[2 * link];
  }
  [[nodiscard]] drv::ChaosDriver& side_b(std::size_t link) {
    return *wrappers[2 * link + 1];
  }
  /// Hard-kill both endpoints of one physical link.
  void kill_link(std::size_t link) {
    side_a(link).kill();
    side_b(link).kill();
  }
};

class ChaosSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosSweep, ScrambledDeliveryStillByteExact) {
  ChaosFixture f(GetParam(), "aggreg_greedy", /*window=*/3);
  util::Xoshiro256 rng(GetParam() * 7 + 1);

  constexpr int kMessages = 30;
  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < kMessages; ++i) {
    payloads.push_back(random_bytes(rng.next_below(120000), GetParam() + i));
    sinks.emplace_back(payloads.back().size());
  }
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(f.b->irecv(f.gate_ba, static_cast<proto::Tag>(i % 4),
                               sinks[i]));
  }
  for (int i = 0; i < kMessages; ++i) {
    sends.push_back(f.a->isend(f.gate_ab, static_cast<proto::Tag>(i % 4),
                               payloads[i]));
  }
  f.a->wait_all(sends, recvs);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(sinks[i], payloads[i]) << "message " << i;
    EXPECT_EQ(recvs[i]->received_len(), payloads[i].size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSweep,
                         ::testing::Values(1u, 2u, 3u, 17u, 99u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

TEST(Chaos, WindowOneIsTransparent) {
  // window=1 releases every packet immediately: behavior must be identical
  // to the unwrapped platform, including virtual timing.
  ChaosFixture f(42, "aggreg_greedy", /*window=*/1);
  const auto payload = random_bytes(100000, 5);
  std::vector<std::byte> sink(100000);
  auto recv = f.b->irecv(f.gate_ba, 0, sink);
  auto send = f.a->isend(f.gate_ab, 0, payload);
  f.b->wait(recv);
  f.a->wait(send);
  EXPECT_EQ(sink, payload);
  for (auto& w : f.wrappers) EXPECT_EQ(w->buffered(), 0u);
}

// --------------------------------------------------------------------------
// Fault-injection soak: the ISSUE's acceptance profile (drop=1%, dup=1%,
// corrupt=0.5%) over three seeds. Every run must either deliver
// byte-identical payloads or fail the requests of a gate whose rails all
// died — never hang, never hand over wrong bytes.
// --------------------------------------------------------------------------

class ChaosFaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ChaosFaultSoak, LossDupCorruptHealOrReportDeadRail) {
  drv::FaultProfile profile;
  profile.drop = 0.01;
  profile.duplicate = 0.01;
  profile.corrupt = 0.005;
  strat::StrategyConfig scfg;
  scfg.reliability.ack_enabled = true;
  ChaosFixture f(GetParam(), "aggreg_greedy",
                 drv::ChaosConfig::uniform(profile, /*window=*/3), scfg);
  util::Xoshiro256 rng(GetParam() * 13 + 5);

  auto injected = [&f] {
    std::uint64_t n = 0;
    for (auto& w : f.wrappers) {
      n += w->stats().drops + w->stats().duplicates + w->stats().corruptions;
    }
    return n;
  };

  // One wave of mixed-size traffic, fully validated. Waves repeat (bounded)
  // until the profile has demonstrably fired — a single wave can dodge a
  // ~2.5%-per-frame profile on an unlucky seed, which would make the test
  // vacuous.
  constexpr int kMessages = 24;
  constexpr int kMaxWaves = 8;
  int wave = 0;
  for (; wave < kMaxWaves; ++wave) {
    std::vector<std::vector<std::byte>> payloads, sinks;
    std::vector<RecvHandle> recvs;
    std::vector<SendHandle> sends;
    for (int i = 0; i < kMessages; ++i) {
      payloads.push_back(
          random_bytes(1 + rng.next_below(90000), GetParam() + i + wave * 100));
      sinks.emplace_back(payloads.back().size(), std::byte{0});
    }
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(f.b->irecv(f.gate_ba, static_cast<proto::Tag>(i % 3),
                                 sinks[i]));
    }
    for (int i = 0; i < kMessages; ++i) {
      sends.push_back(f.a->isend(f.gate_ab, static_cast<proto::Tag>(i % 3),
                                 payloads[i]));
    }
    // wait_all panics if the run hangs (progress exhausted with requests
    // neither completed nor failed) — the "never hang" half of the contract.
    f.a->wait_all(sends, recvs);

    for (int i = 0; i < kMessages; ++i) {
      if (recvs[i]->completed()) {
        EXPECT_EQ(sinks[i], payloads[i]) << "message " << i << " corrupted";
        EXPECT_EQ(recvs[i]->received_len(), payloads[i].size());
      } else {
        // A request may only fail when its whole gate lost every rail.
        EXPECT_TRUE(recvs[i]->failed());
        EXPECT_TRUE(f.b->scheduler().gate(f.gate_ba).failed());
      }
      if (!sends[i]->completed()) {
        EXPECT_TRUE(sends[i]->failed());
        EXPECT_TRUE(f.a->scheduler().gate(f.gate_ab).failed());
      }
    }
    if (injected() > 0 || f.a->scheduler().gate(f.gate_ab).failed()) break;
  }
  EXPECT_GT(injected(), 0u)
      << "fault profile injected nothing across " << wave + 1 << " waves";

  // Every injected fault that mattered was healed by the reliability layer:
  // with acks on, drops/corruptions surface as retransmits and CRC drops.
  if (obs::kMetricsEnabled && !f.a->scheduler().gate(f.gate_ab).failed()) {
    std::uint64_t retransmits = 0;
    for (auto* s : {f.a.get(), f.b.get()}) {
      auto& gate = s->scheduler().gate(0);
      for (auto& rail : gate.rails()) {
        retransmits += rail.guard.metrics.retransmits.value();
      }
    }
    EXPECT_GT(retransmits, 0u) << "faults fired but nothing was retransmitted";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosFaultSoak,
                         ::testing::Values(11u, 23u, 37u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

// --------------------------------------------------------------------------
// Threaded chaos soak: the same fault profile with per-rail progress
// threads driving the engine. The contract is unchanged — every wave
// either delivers byte-identical payloads or reports a dead gate, never a
// hang (the progression engine's stall watchdog panics a genuine deadlock,
// and a wall-clock bound catches pathological slowdowns) and never wrong
// bytes. All non-atomic chaos/gate state is read under the world progress
// mutex, which serializes against the live progress threads.
// --------------------------------------------------------------------------

class ThreadedChaosFaultSoak : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreadedChaosFaultSoak, LossDupCorruptUnderProgressThreads) {
  const auto wall_start = std::chrono::steady_clock::now();
  drv::FaultProfile profile;
  profile.drop = 0.01;
  profile.duplicate = 0.01;
  profile.corrupt = 0.005;
  strat::StrategyConfig scfg;
  scfg.reliability.ack_enabled = true;
  ChaosFixture f(GetParam(), "aggreg_greedy",
                 drv::ChaosConfig::uniform(profile, /*window=*/3), scfg);
  f.start_threaded();
  util::Xoshiro256 rng(GetParam() * 29 + 3);

  auto injected = [&f] {
    // ChaosDriver stats are plain counters mutated on the progress threads
    // (all sends and deliveries run under the world mutex there).
    std::lock_guard<std::mutex> lock(f.world.progress_mutex());
    std::uint64_t n = 0;
    for (auto& w : f.wrappers) {
      n += w->stats().drops + w->stats().duplicates + w->stats().corruptions;
    }
    return n;
  };
  auto gate_failed = [&f](Session& s, GateId g) {
    std::lock_guard<std::mutex> lock(f.world.progress_mutex());
    return s.scheduler().gate(g).failed();
  };

  constexpr int kMessages = 24;
  constexpr int kMaxWaves = 8;
  int wave = 0;
  for (; wave < kMaxWaves; ++wave) {
    std::vector<std::vector<std::byte>> payloads, sinks;
    std::vector<RecvHandle> recvs;
    std::vector<SendHandle> sends;
    for (int i = 0; i < kMessages; ++i) {
      payloads.push_back(
          random_bytes(1 + rng.next_below(90000), GetParam() + i + wave * 100));
      sinks.emplace_back(payloads.back().size(), std::byte{0});
    }
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(f.b->irecv(f.gate_ba, static_cast<proto::Tag>(i % 3),
                                 sinks[i]));
    }
    for (int i = 0; i < kMessages; ++i) {
      sends.push_back(f.a->isend(f.gate_ab, static_cast<proto::Tag>(i % 3),
                                 payloads[i]));
    }
    // In threaded mode wait_all spins on the (atomic) settled flags while
    // the progress threads run; its stall watchdog panics a genuine hang.
    f.a->wait_all(sends, recvs);

    for (int i = 0; i < kMessages; ++i) {
      if (recvs[i]->completed()) {
        EXPECT_EQ(sinks[i], payloads[i]) << "message " << i << " corrupted";
        EXPECT_EQ(recvs[i]->received_len(), payloads[i].size());
      } else {
        // A request may only fail when its whole gate lost every rail.
        EXPECT_TRUE(recvs[i]->failed());
        EXPECT_TRUE(gate_failed(*f.b, f.gate_ba));
      }
      if (!sends[i]->completed()) {
        EXPECT_TRUE(sends[i]->failed());
        EXPECT_TRUE(gate_failed(*f.a, f.gate_ab));
      }
    }
    if (injected() > 0 || gate_failed(*f.a, f.gate_ab)) break;
  }
  EXPECT_GT(injected(), 0u)
      << "fault profile injected nothing across " << wave + 1 << " waves";

  if (obs::kMetricsEnabled && !gate_failed(*f.a, f.gate_ab)) {
    // RailGuard metrics are atomic counters — safe to read lock-free.
    std::uint64_t retransmits = 0;
    for (auto* s : {f.a.get(), f.b.get()}) {
      auto& gate = s->scheduler().gate(0);
      for (auto& rail : gate.rails()) {
        retransmits += rail.guard.metrics.retransmits.value();
      }
    }
    EXPECT_GT(retransmits, 0u) << "faults fired but nothing was retransmitted";
  }

  // Wall-clock watchdog: this soak simulates ~milliseconds of virtual
  // traffic; anything near this bound means live-lock, not load.
  const auto elapsed = std::chrono::duration_cast<std::chrono::seconds>(
      std::chrono::steady_clock::now() - wall_start);
  EXPECT_LT(elapsed.count(), 120) << "threaded chaos soak wall-clock blowout";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedChaosFaultSoak,
                         ::testing::Values(11u, 23u, 37u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

// --------------------------------------------------------------------------
// Live failover: hard-kill one rail mid-rendezvous.
// --------------------------------------------------------------------------

TEST(ChaosFailover, RailKillMidRendezvousCompletesOnSurvivor) {
  strat::StrategyConfig scfg;
  scfg.reliability.ack_enabled = true;
  // Transparent wrappers (window=1, no faults): the only injected event is
  // the kill, so the test isolates the failover machinery.
  ChaosFixture f(7, "split_balance",
                 drv::ChaosConfig::uniform(drv::FaultProfile{}, 1), scfg);

  const auto payload = random_bytes(2 << 20, 9);
  std::vector<std::byte> sink(payload.size(), std::byte{0});
  auto recv = f.b->irecv(f.gate_ba, 4, sink);
  auto send = f.a->isend(f.gate_ab, 4, payload);

  // Run until the rendezvous is granted and BOTH rails carry un-acked
  // chunks — the split strategy stripes the bulk across them — then cut
  // link 0 (both endpoints, like a yanked cable).
  auto& gate_a = f.a->scheduler().gate(f.gate_ab);
  const bool armed = f.world.engine().run_until([&] {
    return gate_a.rail(0).guard.unacked_count() > 0 &&
           gate_a.rail(1).guard.unacked_count() > 0;
  });
  ASSERT_TRUE(armed) << "transfer never put chunks in flight on both rails";
  ASSERT_FALSE(send->done());
  f.kill_link(0);

  f.a->wait_all(std::span(&send, 1), std::span(&recv, 1));
  ASSERT_TRUE(send->completed());
  ASSERT_TRUE(recv->completed());
  EXPECT_EQ(sink, payload);

  // The killed rail was detected dead via retransmission timeouts and its
  // retained frames were surrendered for repost on the survivor.
  EXPECT_EQ(gate_a.rail(0).guard.state(), RailState::kDead);
  EXPECT_TRUE(gate_a.rail(1).alive());
  EXPECT_EQ(gate_a.rail(0).guard.unacked_count(), 0u);
  if (obs::kMetricsEnabled) {
    const auto& m = gate_a.rail(0).guard.metrics;
    EXPECT_GT(m.timeouts.value(), 0u);
    EXPECT_GT(m.requeued_packets.value(), 0u);
    EXPECT_GT(m.requeued_bytes.value(), 0u);
    EXPECT_EQ(m.state.value(), 2);  // RailState::kDead, as the CI gate sees it
    EXPECT_GT(m.state_transitions.value(), 0u);
  }
  EXPECT_FALSE(gate_a.failed());

  // The failed-over gate keeps working: a follow-up message rides the
  // survivor end to end.
  const auto second = random_bytes(60000, 10);
  std::vector<std::byte> sink2(second.size());
  auto recv2 = f.b->irecv(f.gate_ba, 5, sink2);
  auto send2 = f.a->isend(f.gate_ab, 5, second);
  f.a->wait_all(std::span(&send2, 1), std::span(&recv2, 1));
  EXPECT_TRUE(send2->completed());
  EXPECT_EQ(sink2, second);
}

TEST(ChaosFailover, AllRailsDeadFailsRequestsInsteadOfHanging) {
  strat::StrategyConfig scfg;
  scfg.reliability.ack_enabled = true;
  ChaosFixture f(21, "split_balance",
                 drv::ChaosConfig::uniform(drv::FaultProfile{}, 1), scfg);

  const auto payload = random_bytes(2 << 20, 11);
  std::vector<std::byte> sink(payload.size());
  auto recv = f.b->irecv(f.gate_ba, 0, sink);
  auto send = f.a->isend(f.gate_ab, 0, payload);

  auto& gate_a = f.a->scheduler().gate(f.gate_ab);
  const bool armed = f.world.engine().run_until([&] {
    return gate_a.rail(0).guard.unacked_count() > 0 &&
           gate_a.rail(1).guard.unacked_count() > 0;
  });
  ASSERT_TRUE(armed);
  f.kill_link(0);
  f.kill_link(1);

  // wait() returns when the request *settles* — and with every rail dead,
  // settling means failing, not completing.
  f.a->wait(send);
  EXPECT_TRUE(send->failed());
  EXPECT_FALSE(send->completed());
  EXPECT_TRUE(gate_a.failed());
  EXPECT_EQ(gate_a.rail(0).guard.state(), RailState::kDead);
  EXPECT_EQ(gate_a.rail(1).guard.state(), RailState::kDead);
  EXPECT_FALSE(recv->completed());

  // Submissions on a failed gate settle immediately as failed.
  auto late = f.a->isend(f.gate_ab, 1, payload);
  EXPECT_TRUE(late->failed());
  auto late_recv = f.a->irecv(f.gate_ab, 1, sink);
  EXPECT_TRUE(late_recv->failed());
}

// --------------------------------------------------------------------------
// Rail resurrection: keepalive probing detects a dead *idle* rail (zero
// application traffic), the reconnect machinery revives the endpoint, and
// the epoch handshake fences every frame of the previous incarnation. The
// end-to-end contract: the rail re-enters the stripe set and carries
// byte-identical traffic under the new epoch.
// --------------------------------------------------------------------------

strat::StrategyConfig resurrection_scfg() {
  strat::StrategyConfig scfg;
  scfg.reliability.ack_enabled = true;
  scfg.reliability.keepalive_enabled = true;
  scfg.reliability.reconnect_enabled = true;
  return scfg;
}

TEST(ChaosResurrection, IdleRailKilledIsDetectedRevivedAndRejoinsTheStripe) {
  ChaosFixture f(51, "split_balance",
                 drv::ChaosConfig::uniform(drv::FaultProfile{}, 1),
                 resurrection_scfg());

  // Warm-up: a striped transfer proves both rails carry traffic.
  const auto warm = random_bytes(1 << 20, 1);
  std::vector<std::byte> sink(warm.size());
  auto recv = f.b->irecv(f.gate_ba, 0, sink);
  auto send = f.a->isend(f.gate_ab, 0, warm);
  f.a->wait_all(std::span(&send, 1), std::span(&recv, 1));
  ASSERT_EQ(sink, warm);

  auto& gate_a = f.a->scheduler().gate(f.gate_ab);
  auto& gate_b = f.b->scheduler().gate(f.gate_ba);
  // Drain every trailing ack: the kill must land on a *fully idle* rail so
  // that only the keepalive machinery — no retransmit timer — can notice.
  const bool drained = f.world.engine().run_until([&] {
    for (auto* g : {&gate_a, &gate_b}) {
      for (auto& r : g->rails()) {
        if (r.guard.unacked_count() != 0) return false;
      }
    }
    return true;
  });
  ASSERT_TRUE(drained);
  ASSERT_TRUE(gate_a.rail(0).guard.healthy());
  ASSERT_EQ(gate_a.rail(0).guard.epoch(), 1u);

  // Asymmetric cut: B's endpoint of link 0 goes dark (discards every
  // receive, refuses every send). A's probes go unanswered; B's guard
  // cannot even emit a probe — both converge to dead on keepalive alone.
  f.side_b(0).kill();
  const bool resurrected = f.world.engine().run_until([&] {
    return gate_a.rail(0).guard.epoch() >= 2 &&
           gate_b.rail(0).guard.epoch() >= 2 &&
           gate_a.rail(0).guard.healthy() && gate_b.rail(0).guard.healthy();
  });
  ASSERT_TRUE(resurrected) << "idle rail never came back";
  EXPECT_EQ(gate_a.rail(0).guard.epoch(), gate_b.rail(0).guard.epoch());
  EXPECT_GE(f.side_b(0).stats().revives, 1u);  // the kill switch was cleared
  if (obs::kMetricsEnabled) {
    // A actually probed the silent rail, and both ends count a reconnect.
    EXPECT_GE(gate_a.rail(0).guard.metrics.probes_sent.value(), 1u);
    EXPECT_GE(gate_a.rail(0).guard.metrics.reconnects.value(), 1u);
    EXPECT_GE(gate_b.rail(0).guard.metrics.reconnects.value(), 1u);
  }
  EXPECT_FALSE(gate_a.failed());

  // The resurrected rail re-enters the stripe set: a second bulk transfer
  // puts chunks in flight on rail 0 again and delivers byte-identical.
  const auto after = random_bytes(1 << 20, 2);
  std::vector<std::byte> sink2(after.size());
  auto recv2 = f.b->irecv(f.gate_ba, 1, sink2);
  auto send2 = f.a->isend(f.gate_ab, 1, after);
  const bool striped = f.world.engine().run_until(
      [&] { return gate_a.rail(0).guard.unacked_count() > 0; });
  EXPECT_TRUE(striped) << "revived rail carried no data";
  f.a->wait_all(std::span(&send2, 1), std::span(&recv2, 1));
  ASSERT_TRUE(send2->completed());
  ASSERT_TRUE(recv2->completed());
  EXPECT_EQ(sink2, after);
  EXPECT_TRUE(gate_a.rail(0).guard.healthy());
  EXPECT_TRUE(gate_b.rail(0).guard.healthy());
  if (obs::kMetricsEnabled) {
    // Stale frames of epoch 1 may have been *fenced* (dropped), but byte-
    // identical delivery plus zero CRC/malformed damage means none was
    // ever accepted into the new incarnation.
    EXPECT_EQ(gate_b.rail(0).guard.metrics.crc_drops.value(), 0u);
    EXPECT_EQ(gate_b.rail(0).guard.metrics.malformed_drops.value(), 0u);
  }
}

TEST(ChaosResurrection, IdleRailResurrectionUnderProgressThreads) {
  ChaosFixture f(52, "split_balance",
                 drv::ChaosConfig::uniform(drv::FaultProfile{}, 1),
                 resurrection_scfg());
  f.start_threaded();

  // Poll a predicate under the world mutex while the progress threads run
  // the engine (the threaded stand-in for run_until).
  auto poll_until = [&](const std::function<bool()>& pred) {
    for (int i = 0; i < 20000; ++i) {
      {
        std::lock_guard<std::mutex> lock(f.world.progress_mutex());
        if (pred()) return true;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return false;
  };

  const auto warm = random_bytes(1 << 20, 3);
  std::vector<std::byte> sink(warm.size());
  auto recv = f.b->irecv(f.gate_ba, 0, sink);
  auto send = f.a->isend(f.gate_ab, 0, warm);
  f.a->wait_all(std::span(&send, 1), std::span(&recv, 1));
  ASSERT_EQ(sink, warm);

  auto& gate_a = f.a->scheduler().gate(f.gate_ab);
  auto& gate_b = f.b->scheduler().gate(f.gate_ba);
  ASSERT_TRUE(poll_until([&] {
    for (auto* g : {&gate_a, &gate_b}) {
      for (auto& r : g->rails()) {
        if (r.guard.unacked_count() != 0) return false;
      }
    }
    return true;
  }));
  {
    std::lock_guard<std::mutex> lock(f.world.progress_mutex());
    f.side_b(0).kill();
  }
  ASSERT_TRUE(poll_until([&] {
    return gate_a.rail(0).guard.epoch() >= 2 &&
           gate_b.rail(0).guard.epoch() >= 2 &&
           gate_a.rail(0).guard.healthy() && gate_b.rail(0).guard.healthy();
  })) << "idle rail never came back under progress threads";

  const auto after = random_bytes(1 << 20, 4);
  std::vector<std::byte> sink2(after.size());
  auto recv2 = f.b->irecv(f.gate_ba, 1, sink2);
  auto send2 = f.a->isend(f.gate_ab, 1, after);
  f.a->wait_all(std::span(&send2, 1), std::span(&recv2, 1));
  ASSERT_TRUE(send2->completed());
  EXPECT_EQ(sink2, after);
  {
    std::lock_guard<std::mutex> lock(f.world.progress_mutex());
    EXPECT_EQ(gate_a.rail(0).guard.epoch(), gate_b.rail(0).guard.epoch());
    EXPECT_TRUE(gate_a.rail(0).guard.healthy());
    if (obs::kMetricsEnabled) {
      EXPECT_GE(gate_a.rail(0).guard.metrics.reconnects.value(), 1u);
    }
  }
}

// --------------------------------------------------------------------------
// Total outage then recovery: when EVERY rail dies, in-flight requests fail
// (the established contract) — and stay failed after the rails come back.
// Only *new* submissions ride the resurrected gate. No zombie requests.
// --------------------------------------------------------------------------

class TotalOutageRecovery : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TotalOutageRecovery, FailedRequestsStayFailedNewOnesSucceed) {
  strat::StrategyConfig scfg = resurrection_scfg();
  // The outage must be decisive: every rail dies (and the gate fails its
  // requests) before the first reconnect attempt can resurrect anything.
  scfg.reliability.reconnect_backoff_ns = 50'000'000;
  ChaosFixture f(GetParam(), "split_balance",
                 drv::ChaosConfig::uniform(drv::FaultProfile{}, 1), scfg);

  const auto payload = random_bytes(2 << 20, GetParam());
  std::vector<std::byte> sink(payload.size());
  auto recv = f.b->irecv(f.gate_ba, 0, sink);
  auto send = f.a->isend(f.gate_ab, 0, payload);

  auto& gate_a = f.a->scheduler().gate(f.gate_ab);
  auto& gate_b = f.b->scheduler().gate(f.gate_ba);
  const bool armed = f.world.engine().run_until([&] {
    return gate_a.rail(0).guard.unacked_count() > 0 &&
           gate_a.rail(1).guard.unacked_count() > 0;
  });
  ASSERT_TRUE(armed);
  f.kill_link(0);
  f.kill_link(1);

  // Every rail dead: the in-flight requests settle as failed.
  f.a->wait(send);
  ASSERT_TRUE(send->failed());
  EXPECT_TRUE(gate_a.failed());
  f.b->wait(recv);
  ASSERT_TRUE(recv->failed());

  // The reconnect machinery revives every rail and un-fails the gates.
  const bool recovered = f.world.engine().run_until([&] {
    if (gate_a.failed() || gate_b.failed()) return false;
    for (auto* g : {&gate_a, &gate_b}) {
      for (auto& r : g->rails()) {
        if (!r.guard.healthy() || r.guard.epoch() < 2) return false;
      }
    }
    return true;
  });
  ASSERT_TRUE(recovered) << "gates never recovered from the total outage";

  // No zombie resurrection: the failed requests are settled history.
  EXPECT_TRUE(send->failed());
  EXPECT_FALSE(send->completed());
  EXPECT_TRUE(recv->failed());
  EXPECT_FALSE(recv->completed());

  // New submissions (fresh tag) ride the resurrected gate end to end.
  const auto fresh = random_bytes(1 << 20, GetParam() + 1000);
  std::vector<std::byte> sink2(fresh.size());
  auto recv2 = f.b->irecv(f.gate_ba, 9, sink2);
  auto send2 = f.a->isend(f.gate_ab, 9, fresh);
  f.a->wait_all(std::span(&send2, 1), std::span(&recv2, 1));
  ASSERT_TRUE(send2->completed());
  ASSERT_TRUE(recv2->completed());
  EXPECT_EQ(sink2, fresh);
  if (obs::kMetricsEnabled) {
    for (auto& r : gate_a.rails()) {
      EXPECT_GE(r.guard.metrics.reconnects.value(), 1u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TotalOutageRecovery,
                         ::testing::Values(5u, 19u, 63u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

class ThreadedTotalOutageRecovery
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ThreadedTotalOutageRecovery, FailedRequestsStayFailedNewOnesSucceed) {
  strat::StrategyConfig scfg = resurrection_scfg();
  ChaosFixture f(GetParam(), "split_balance",
                 drv::ChaosConfig::uniform(drv::FaultProfile{}, 1), scfg);
  f.start_threaded();

  auto poll_until = [&](const std::function<bool()>& pred) {
    for (int i = 0; i < 20000; ++i) {
      {
        std::lock_guard<std::mutex> lock(f.world.progress_mutex());
        if (pred()) return true;
      }
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
    return false;
  };

  // Latch revival shut, then cut every link BEFORE submitting. Under
  // free-running progress threads the kill/detect/reconnect cycle runs at
  // sim speed, so without the latch the rails can resurrect before the
  // submissions even land; with it, the outage provably outlives the
  // requests (the reconnect machinery keeps backing off against a revive
  // that cannot succeed) and "submitted during a total outage" is exact.
  auto& gate_a = f.a->scheduler().gate(f.gate_ab);
  auto& gate_b = f.b->scheduler().gate(f.gate_ba);
  {
    std::lock_guard<std::mutex> lock(f.world.progress_mutex());
    for (auto& w : f.wrappers) w->set_revivable(false);
    f.kill_link(0);
    f.kill_link(1);
  }
  const auto payload = random_bytes(2 << 20, GetParam());
  std::vector<std::byte> sink(payload.size());
  auto recv = f.b->irecv(f.gate_ba, 0, sink);
  auto send = f.a->isend(f.gate_ab, 0, payload);

  f.a->wait(send);
  ASSERT_TRUE(send->failed());
  f.b->wait(recv);
  ASSERT_TRUE(recv->failed());

  // Release the latch: the next backoff tick revives the ports, and the
  // epoch handshake re-arms both gates.
  {
    std::lock_guard<std::mutex> lock(f.world.progress_mutex());
    for (auto& w : f.wrappers) w->set_revivable(true);
  }

  ASSERT_TRUE(poll_until([&] {
    if (gate_a.failed() || gate_b.failed()) return false;
    for (auto* g : {&gate_a, &gate_b}) {
      for (auto& r : g->rails()) {
        if (!r.guard.healthy() || r.guard.epoch() < 2) return false;
      }
    }
    return true;
  })) << "gates never recovered from the total outage";

  EXPECT_TRUE(send->failed());
  EXPECT_FALSE(send->completed());

  const auto fresh = random_bytes(1 << 20, GetParam() + 1000);
  std::vector<std::byte> sink2(fresh.size());
  auto recv2 = f.b->irecv(f.gate_ba, 9, sink2);
  auto send2 = f.a->isend(f.gate_ab, 9, fresh);
  f.a->wait_all(std::span(&send2, 1), std::span(&recv2, 1));
  ASSERT_TRUE(send2->completed());
  EXPECT_EQ(sink2, fresh);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ThreadedTotalOutageRecovery,
                         ::testing::Values(5u, 63u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

// --------------------------------------------------------------------------
// Seeded flapping link: alternating up/down windows on one rail. The run
// must stay byte-exact through every flap, healing each down window either
// by retransmission or by a full death-and-resurrection cycle.
// --------------------------------------------------------------------------

class FlappingRail : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FlappingRail, TrafficSurvivesLinkFlapByteExact) {
  drv::ChaosConfig cfg = drv::ChaosConfig::uniform(drv::FaultProfile{}, 1);
  cfg.flap.enabled = true;
  cfg.flap.up_ns = 8'000'000;
  cfg.flap.down_ns = 4'000'000;
  cfg.flap.start_ns = 1'000'000;
  strat::StrategyConfig scfg = resurrection_scfg();
  // Every wrapper flaps on its own seeded schedule (the fixture binds the
  // virtual clock): down windows overlap unpredictably, so each wave heals
  // through retransmission, failover, or a full resurrection cycle.
  ChaosFixture f(GetParam(), "split_balance", cfg, scfg);
  util::Xoshiro256 rng(GetParam() * 3 + 1);

  constexpr int kMessages = 16;
  for (int wave = 0; wave < 3; ++wave) {
    std::vector<std::vector<std::byte>> payloads, sinks;
    std::vector<RecvHandle> recvs;
    std::vector<SendHandle> sends;
    for (int i = 0; i < kMessages; ++i) {
      payloads.push_back(
          random_bytes(1 + rng.next_below(200000), GetParam() + i + wave * 50));
      sinks.emplace_back(payloads.back().size(), std::byte{0});
    }
    for (int i = 0; i < kMessages; ++i) {
      recvs.push_back(f.b->irecv(f.gate_ba, static_cast<proto::Tag>(i % 2),
                                 sinks[i]));
    }
    for (int i = 0; i < kMessages; ++i) {
      sends.push_back(f.a->isend(f.gate_ab, static_cast<proto::Tag>(i % 2),
                                 payloads[i]));
    }
    f.a->wait_all(sends, recvs);
    for (int i = 0; i < kMessages; ++i) {
      if (recvs[i]->completed()) {
        EXPECT_EQ(sinks[i], payloads[i]) << "message " << i << " corrupted";
      } else {
        EXPECT_TRUE(recvs[i]->failed());
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FlappingRail,
                         ::testing::Values(101u, 202u, 303u),
                         [](const auto& pinfo) {
                           return "seed" + std::to_string(pinfo.param);
                         });

// --------------------------------------------------------------------------
// Destructor straggler flush (satellite: frames held past teardown used to
// reference freed pool blocks; now the destructor pushes them through the
// upcall and asserts the buffer drained — exercised under ASan in CI).
// --------------------------------------------------------------------------

/// Minimal inner driver whose deliveries the test triggers by hand.
struct StubDriver final : drv::Driver {
  drv::Capabilities caps_{};
  DeliverFn deliver;

  [[nodiscard]] const drv::Capabilities& caps() const noexcept override {
    return caps_;
  }
  [[nodiscard]] bool send_idle(drv::Track) const noexcept override {
    return true;
  }
  void post_send(drv::SendDesc, Callback on_sent) override {
    if (on_sent) on_sent();
  }
  void set_deliver(DeliverFn d) override { deliver = std::move(d); }
};

TEST(Chaos, DestructorFlushesBufferedStragglers) {
  StubDriver inner;
  std::vector<std::vector<std::byte>> got;
  std::vector<std::vector<std::byte>> frames;
  for (int i = 0; i < 3; ++i) {
    frames.push_back(random_bytes(64 + 32 * i, 100 + i));
  }
  {
    drv::ChaosDriver chaos(inner, /*seed=*/1, /*window=*/64);
    chaos.set_deliver([&](drv::Track, std::span<const std::byte> wire) {
      got.emplace_back(wire.begin(), wire.end());
    });
    for (const auto& fr : frames) inner.deliver(drv::Track::kSmall, fr);
    ASSERT_EQ(chaos.buffered(), 3u);  // held below the window...
  }  // ...and flushed (not leaked, not dangled) by the destructor.
  ASSERT_EQ(got.size(), 3u);
  std::sort(got.begin(), got.end());
  std::sort(frames.begin(), frames.end());
  EXPECT_EQ(got, frames);
}

TEST(Chaos, KillDiscardsBufferAndSwallowsSends) {
  StubDriver inner;
  std::size_t delivered = 0;
  drv::ChaosDriver chaos(inner, /*seed=*/2, /*window=*/64);
  chaos.set_deliver([&](drv::Track, std::span<const std::byte>) { ++delivered; });
  const auto frame = random_bytes(128, 3);
  inner.deliver(drv::Track::kSmall, frame);
  ASSERT_EQ(chaos.buffered(), 1u);

  chaos.kill();
  EXPECT_EQ(chaos.buffered(), 0u);  // frames died with the port
  EXPECT_FALSE(chaos.send_idle(drv::Track::kSmall));
  inner.deliver(drv::Track::kSmall, frame);  // post-kill rx: discarded
  EXPECT_EQ(chaos.buffered(), 0u);
  EXPECT_EQ(delivered, 0u);

  bool sent = false;
  chaos.post_send(drv::SendDesc{}, [&] { sent = true; });  // swallowed
  EXPECT_FALSE(sent);
  EXPECT_EQ(chaos.stats().swallowed_sends, 1u);
  EXPECT_EQ(chaos.stats().discarded_recvs, 2u);  // buffered + post-kill rx
}

}  // namespace
