// Tests for the obs/ metrics subsystem: primitive semantics (counter
// wraparound, histogram bucket boundaries), registry snapshot/delta/JSON,
// and end-to-end assertions that instrumented strategy behavior matches
// the paper (aggregation sends fewer packets, large messages go
// rendezvous).
//
// The whole file must also pass with NMAD_METRICS=OFF (CI runs ctest on
// that configuration): value-sensitive assertions are gated on
// obs::kMetricsEnabled, while the API-surface parts run in both modes to
// prove the no-op shells keep instrumented code compiling and linking.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <vector>

#include "core/platform.hpp"
#include "obs/metrics.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;

// --- histogram bucket boundaries (constexpr, mode-independent) -------------

TEST(MetricsBuckets, BoundaryMapping) {
  // Bucket 0 is exact zeros; bucket i holds [2^(i-1), 2^i).
  static_assert(obs::histogram_bucket_index(0) == 0);
  static_assert(obs::histogram_bucket_index(1) == 1);
  static_assert(obs::histogram_bucket_index(2) == 2);
  static_assert(obs::histogram_bucket_index(3) == 2);
  static_assert(obs::histogram_bucket_index(4) == 3);
  static_assert(obs::histogram_bucket_index(7) == 3);
  static_assert(obs::histogram_bucket_index(8) == 4);
  for (std::size_t i = 1; i < 63; ++i) {
    const std::uint64_t lo = obs::histogram_bucket_lower_bound(i);
    EXPECT_EQ(obs::histogram_bucket_index(lo), i) << "lower edge of bucket " << i;
    EXPECT_EQ(obs::histogram_bucket_index(2 * lo - 1), i)
        << "upper edge of bucket " << i;
  }
}

TEST(MetricsBuckets, HugeValuesClampToLastBucket) {
  EXPECT_EQ(obs::histogram_bucket_index(std::numeric_limits<std::uint64_t>::max()),
            obs::kHistogramBuckets - 1);
  EXPECT_EQ(obs::histogram_bucket_index(std::uint64_t{1} << 63),
            obs::kHistogramBuckets - 1);
}

// --- primitives --------------------------------------------------------------

TEST(MetricsPrimitives, CounterIncAndOverflowWrap) {
  obs::Counter c;
  c.inc();
  c.inc(41);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(c.value(), 42u);
  } else {
    EXPECT_EQ(c.value(), 0u);  // no-op shell always reads zero
  }

  // Wraps mod 2^64 instead of saturating or trapping.
  obs::Counter wrap;
  wrap.inc(std::numeric_limits<std::uint64_t>::max());
  wrap.inc(3);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(wrap.value(), 2u);
  }
}

TEST(MetricsPrimitives, GaugeTracksHighWater) {
  obs::Gauge g;
  g.set(5);
  g.add(7);
  g.sub(10);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(g.value(), 2);
    EXPECT_EQ(g.high_water(), 12);
  }
  g.reset();
  EXPECT_EQ(g.value(), 0);
  EXPECT_EQ(g.high_water(), 0);
}

TEST(MetricsPrimitives, HistogramCountsSumsAndBuckets) {
  obs::Histogram h;
  for (std::uint64_t v : {0ull, 1ull, 2ull, 3ull, 1024ull}) h.record(v);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1030u);
    EXPECT_EQ(h.bucket(0), 1u);   // the zero
    EXPECT_EQ(h.bucket(1), 1u);   // 1
    EXPECT_EQ(h.bucket(2), 2u);   // 2, 3
    EXPECT_EQ(h.bucket(11), 1u);  // 1024 = 2^10 -> bucket 11
  }
}

// --- registry: snapshot, delta, JSON ----------------------------------------

TEST(MetricsRegistry, SnapshotReadsLiveValues) {
  obs::Counter c;
  obs::Gauge g;
  obs::Histogram h;
  std::uint64_t raw = 0;

  obs::MetricsRegistry reg;
  reg.add("x.count", &c);
  reg.add("x.depth", &g);
  reg.add("x.sizes", &h);
  reg.add_raw("x.raw", &raw);
  reg.label("x.nic", "myri10g");

  c.inc(3);
  g.set(9);
  h.record(100);
  raw = 17;

  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.counters.count("x.count"), 1u);
  ASSERT_EQ(snap.counters.count("x.raw"), 1u);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(snap.counters.at("x.count"), 3u);
    EXPECT_EQ(snap.gauges.at("x.depth").value, 9);
    EXPECT_EQ(snap.histograms.at("x.sizes").count, 1u);
    EXPECT_EQ(snap.labels.at("x.nic"), "myri10g");
    // raw cells are always live (pre-obs driver stats don't compile out)
    EXPECT_EQ(snap.counters.at("x.raw"), 17u);
  }
}

TEST(MetricsRegistry, DeltaSubtractsWithWraparound) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";

  obs::Counter c;
  obs::Gauge g;
  obs::MetricsRegistry reg;
  reg.add("c", &c);
  reg.add("g", &g);

  c.inc(std::numeric_limits<std::uint64_t>::max() - 1);
  g.set(4);
  const obs::Snapshot before = reg.snapshot();

  c.inc(5);  // wraps past 2^64
  g.set(2);
  const obs::Snapshot after = reg.snapshot();

  const obs::Snapshot d = obs::delta(before, after);
  EXPECT_EQ(d.counters.at("c"), 5u);  // true event count despite the wrap
  // Gauges are level, not flow: delta keeps the after-state.
  EXPECT_EQ(d.gauges.at("g").value, 2);
}

TEST(MetricsRegistry, DumpJsonNestsOnDots) {
  obs::Counter c0;
  obs::Counter c1;
  obs::MetricsRegistry reg;
  reg.add("a.rail0.bytes_sent", &c0);
  reg.add("a.rail1.bytes_sent", &c1);
  c0.inc(10);
  c1.inc(20);

  const std::string json = reg.dump_json();
  // Keys nest as objects; values present in both modes (zeros when off).
  EXPECT_NE(json.find("\"rail0\""), std::string::npos);
  EXPECT_NE(json.find("\"rail1\""), std::string::npos);
  EXPECT_NE(json.find("\"bytes_sent\""), std::string::npos);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_NE(json.find("10"), std::string::npos);
    EXPECT_NE(json.find("20"), std::string::npos);
  }
}

// --- end-to-end: instrumented behavior matches the paper --------------------

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

/// Total packets_sent by session a across all rails after sending 8 x 128B
/// segments as one multi-segment message.
std::uint64_t packets_for_eight_segments(const char* strategy) {
  core::TwoNodePlatform p(core::pin_serial(core::paper_platform(strategy)));
  obs::MetricsRegistry reg;
  p.a().register_metrics(reg, "a.");
  const obs::Snapshot before = reg.snapshot();

  const auto payload = random_bytes(8 * 128, 11);
  std::vector<std::byte> sink(8 * 128);
  auto unpack = p.b().unpack(p.gate_ba(), 5);
  auto pack = p.a().pack(p.gate_ab(), 5);
  for (int i = 0; i < 8; ++i) {
    pack.add({payload.data() + i * 128, 128});
    unpack.add({sink.data() + i * 128, 128});
  }
  auto recv = unpack.submit();
  auto send = pack.submit();
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(payload, sink);

  const obs::Snapshot d = obs::delta(before, reg.snapshot());
  std::uint64_t packets = 0;
  for (const auto& [name, v] : d.counters) {
    if (name.ends_with(".packets_sent") && name.find(".drv.") == std::string::npos) {
      packets += v;
    }
  }
  return packets;
}

TEST(MetricsEndToEnd, AggregationSendsFewerPacketsThanGreedy) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";

  const std::uint64_t aggreg = packets_for_eight_segments("aggreg");
  const std::uint64_t greedy = packets_for_eight_segments("greedy");
  // The aggregating strategy folds the 8 small segments into fewer wire
  // packets than greedy's per-segment dispatch (paper §2: the optimization
  // window exists to do exactly this).
  EXPECT_LT(aggreg, greedy);
  EXPECT_GE(aggreg, 1u);
}

TEST(MetricsEndToEnd, SmallMessageIsPioLargeIsRendezvous) {
  if constexpr (!obs::kMetricsEnabled) GTEST_SKIP() << "metrics compiled out";

  core::TwoNodePlatform p(core::pin_serial(core::paper_platform("single_rail")));
  obs::MetricsRegistry reg;
  p.a().register_metrics(reg, "a.");
  p.b().register_metrics(reg, "b.");  // the receive counters live on b
  const obs::Snapshot t0 = reg.snapshot();

  // Small: eager on the PIO track, no rendezvous.
  const auto small = random_bytes(256, 21);
  std::vector<std::byte> small_sink(256);
  auto r1 = p.b().irecv(p.gate_ba(), 1, small_sink);
  auto s1 = p.a().isend(p.gate_ab(), 1, small);
  p.b().wait(r1);
  p.a().wait(s1);
  const obs::Snapshot t1 = reg.snapshot();

  // Large: must take the rendezvous/DMA path.
  const auto large = random_bytes(1 << 20, 22);
  std::vector<std::byte> large_sink(1 << 20);
  auto r2 = p.b().irecv(p.gate_ba(), 2, large_sink);
  auto s2 = p.a().isend(p.gate_ab(), 2, large);
  p.b().wait(r2);
  p.a().wait(s2);
  const obs::Snapshot t2 = reg.snapshot();

  const obs::Snapshot small_d = obs::delta(t0, t1);
  const obs::Snapshot large_d = obs::delta(t1, t2);
  auto sum_ending = [](const obs::Snapshot& s, const char* suffix) {
    std::uint64_t total = 0;
    for (const auto& [name, v] : s.counters) {
      if (name.ends_with(suffix)) total += v;
    }
    return total;
  };
  EXPECT_GT(sum_ending(small_d, ".pio_transfers"), 0u);
  EXPECT_EQ(sum_ending(small_d, ".rdv_transfers"), 0u);
  EXPECT_GT(sum_ending(large_d, ".rdv_transfers"), 0u);
  EXPECT_GT(sum_ending(large_d, ".requests.recv_bytes_delivered"), 0u);
}

TEST(MetricsEndToEnd, RegistryCoversEveryLayer) {
  core::TwoNodePlatform p(core::pin_serial(core::paper_platform("aggreg_greedy")));
  obs::MetricsRegistry reg;
  p.a().register_metrics(reg, "a.");
  p.b().register_metrics(reg, "b.");

  const obs::Snapshot snap = reg.snapshot();
  // Request aggregates, per-gate strategy counters, per-rail counters and
  // driver internals must all be present — in both build modes (with
  // metrics off the names still register and read zero).
  EXPECT_EQ(snap.counters.count("a.requests.sends_posted"), 1u);
  EXPECT_EQ(snap.counters.count("a.gate0.strat.aggregation_hits"), 1u);
  EXPECT_EQ(snap.gauges.count("a.gate0.strat.backlog_depth"), 1u);
  EXPECT_EQ(snap.counters.count("a.gate0.rail0.bytes_sent"), 1u);
  EXPECT_EQ(snap.counters.count("a.gate0.rail1.pio_transfers"), 1u);
  EXPECT_EQ(snap.counters.count("b.gate0.rail0.drv.polls"), 1u);
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(snap.labels.at("a.gate0.strategy"), "aggreg_greedy");
    EXPECT_FALSE(snap.labels.at("a.gate0.rail0.nic").empty());
  }
}

}  // namespace
