// Unit tests for the online rail-rate estimator (strat/rate_estimator.hpp)
// on a hand-cranked clock: EWMA convergence, confidence decay, the
// timeout/suspect down-weighting signals, the recovery ramp, and the
// hysteresis that keeps ratios parked under sample noise.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>

#include "strat/rate_estimator.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using strat::RateEstimator;

core::AdaptiveConfig test_cfg() {
  core::AdaptiveConfig cfg;
  cfg.enabled = true;
  return cfg;
}

/// One (bytes, duration) sample that reads as `mbps`: bytes * 1000 / ns.
void feed_mbps(RateEstimator& est, core::RailIndex rail, double mbps,
               sim::TimeNs now) {
  const sim::TimeNs duration = 1'000'000;  // 1 ms
  const auto bytes = static_cast<std::uint64_t>(mbps * 1000.0);
  est.note_transfer(rail, bytes, duration, now);
}

TEST(RateEstimator, StartsWithNoEstimateAndNoConfidence) {
  RateEstimator est(2, test_cfg());
  EXPECT_EQ(est.bandwidth_mbps(0), 0.0);
  EXPECT_EQ(est.latency_us(0), 0.0);
  EXPECT_EQ(est.confidence(0, 1'000'000), 0.0);
  EXPECT_EQ(est.samples(0), 0u);
}

TEST(RateEstimator, EwmaConvergesToSteadyRate) {
  RateEstimator est(1, test_cfg());
  sim::TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 1'000'000;
    feed_mbps(est, 0, 1000.0, now);
  }
  EXPECT_NEAR(est.bandwidth_mbps(0), 1000.0, 1.0);
  // Steady state balances the per-gap decay (2^(-1/20) per ms) against the
  // per-sample bump, just above 0.9 with the default alpha.
  EXPECT_GT(est.confidence(0, now), 0.85);
  EXPECT_EQ(est.samples(0), 40u);
}

TEST(RateEstimator, FirstSampleSetsEstimateDirectly) {
  RateEstimator est(1, test_cfg());
  feed_mbps(est, 0, 800.0, 1'000'000);
  EXPECT_NEAR(est.bandwidth_mbps(0), 800.0, 1.0);
}

TEST(RateEstimator, FastAttackTracksRegimeChangeInFewSamples) {
  RateEstimator est(1, test_cfg());
  sim::TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 1'000'000;
    feed_mbps(est, 0, 200.0, now);
  }
  // The link recovers to 1200 MB/s: a 6x jump must converge much faster
  // than 1/alpha smooth steps.
  for (int i = 0; i < 5; ++i) {
    now += 1'000'000;
    feed_mbps(est, 0, 1200.0, now);
  }
  EXPECT_GT(est.bandwidth_mbps(0), 1000.0);
}

TEST(RateEstimator, ConfidenceHalvesPerHalflifeWithoutSamples) {
  auto cfg = test_cfg();
  cfg.confidence_halflife_ns = 10'000'000;
  RateEstimator est(1, cfg);
  sim::TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 100'000;
    feed_mbps(est, 0, 1000.0, now);
  }
  const double c0 = est.confidence(0, now);
  ASSERT_GT(c0, 0.9);
  EXPECT_NEAR(est.confidence(0, now + cfg.confidence_halflife_ns), c0 / 2.0,
              0.01);
  EXPECT_NEAR(est.confidence(0, now + 2 * cfg.confidence_halflife_ns),
              c0 / 4.0, 0.01);
  // ...and the bandwidth estimate itself is retained (only trust decays).
  EXPECT_NEAR(est.bandwidth_mbps(0), 1000.0, 1.0);
}

TEST(RateEstimator, RttSamplesPublishOneWayLatency) {
  RateEstimator est(1, test_cfg());
  sim::TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 100'000;
    est.note_rtt(0, /*rtt=*/20'000, now);  // 20 us round trip
  }
  EXPECT_NEAR(est.latency_us(0), 10.0, 0.5);  // one-way us
}

TEST(RateEstimator, TimeoutDecaysBothBandwidthAndConfidence) {
  auto cfg = test_cfg();
  cfg.timeout_penalty = 0.5;
  RateEstimator est(1, cfg);
  sim::TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 100'000;
    feed_mbps(est, 0, 1000.0, now);
  }
  const double c0 = est.confidence(0, now);
  est.note_timeout(0, now);
  EXPECT_NEAR(est.bandwidth_mbps(0), 500.0, 1.0);
  EXPECT_NEAR(est.confidence(0, now), c0 * 0.5, 0.01);
  est.note_timeout(0, now);
  EXPECT_NEAR(est.bandwidth_mbps(0), 250.0, 1.0);
}

TEST(RateEstimator, SuspectRailIsDownWeightedBeforeDeath) {
  auto cfg = test_cfg();
  cfg.suspect_penalty = 0.25;
  RateEstimator est(1, cfg);
  sim::TimeNs now = 1'000'000;
  feed_mbps(est, 0, 1000.0, now);

  const double healthy = est.effective_rate(0, 1000.0, now);
  est.note_state(0, core::RailState::kSuspect, now);
  const double suspect = est.effective_rate(0, 1000.0, now);
  EXPECT_NEAR(suspect, healthy * cfg.suspect_penalty, 1.0);

  est.note_state(0, core::RailState::kDead, now);
  EXPECT_EQ(est.effective_rate(0, 1000.0, now), 0.0);
}

TEST(RateEstimator, RecoveryRampsWeightBackGradually) {
  auto cfg = test_cfg();
  cfg.suspect_penalty = 0.25;
  cfg.recovery_ramp_ns = 10'000'000;
  RateEstimator est(1, cfg);
  const sim::TimeNs t0 = 1'000'000;
  feed_mbps(est, 0, 1000.0, t0);
  est.note_state(0, core::RailState::kSuspect, t0);
  est.note_state(0, core::RailState::kHealthy, t0);  // recovery at t0

  // Prior == live == 1000, so the confidence blend is exactly 1000 and the
  // effective rate isolates the health factor. Just after recovery the
  // rail re-enters near the suspect weight...
  EXPECT_LT(est.effective_rate(0, 1000.0, t0 + 1), 300.0);
  // ...climbs monotonically through the ramp...
  double prev = 0.0;
  for (int i = 1; i <= 10; ++i) {
    const sim::TimeNs t = t0 + i * (cfg.recovery_ramp_ns / 10);
    const double r = est.effective_rate(0, 1000.0, t);
    EXPECT_GE(r, prev);
    prev = r;
  }
  // ...and is fully restored once the ramp completes.
  EXPECT_NEAR(est.effective_rate(0, 1000.0, t0 + cfg.recovery_ramp_ns), 1000.0,
              10.0);
}

TEST(RateEstimator, PriorRulesUntilSamplesArrive) {
  RateEstimator est(2, test_cfg());
  const sim::TimeNs now = 1'000'000;
  // No samples: the effective rate IS the prior.
  EXPECT_EQ(est.effective_rate(0, 1200.0, now), 1200.0);
  // Confident live samples override a wrong prior almost entirely.
  sim::TimeNs t = 0;
  for (int i = 0; i < 40; ++i) {
    t += 100'000;
    feed_mbps(est, 1, 300.0, t);
  }
  EXPECT_NEAR(est.effective_rate(1, 850.0, t), 300.0, 40.0);
}

TEST(RateEstimator, DeriveRatiosShiftsTowardTheFasterRail) {
  RateEstimator est(2, test_cfg());
  const std::array<double, 2> prior{1200.0, 850.0};
  std::vector<double> current{0.585, 0.415};  // the boot-time normalized prior

  // Rail 0 degrades to 300 MB/s, rail 1 holds 850.
  sim::TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 100'000;
    feed_mbps(est, 0, 300.0, now);
    feed_mbps(est, 1, 850.0, now);
  }
  auto next = est.derive_ratios(prior, current, now);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR((*next)[0], 300.0 / 1150.0, 0.05);
  EXPECT_NEAR((*next)[1], 850.0 / 1150.0, 0.05);
}

TEST(RateEstimator, HysteresisHoldsRatiosUnderNoisySamples) {
  RateEstimator est(2, test_cfg());
  const std::array<double, 2> prior{1000.0, 1000.0};
  std::vector<double> current{0.5, 0.5};
  util::Xoshiro256 rng(0xada9);

  // +-5% noise around symmetric rates: the derived weights wiggle inside
  // the hysteresis band, so the estimator must never propose an install.
  sim::TimeNs now = 0;
  int installs = 0;
  for (int i = 0; i < 200; ++i) {
    now += 100'000;
    const double n0 = 0.95 + 0.1 * (static_cast<double>(rng.next() % 1000) / 1000.0);
    const double n1 = 0.95 + 0.1 * (static_cast<double>(rng.next() % 1000) / 1000.0);
    feed_mbps(est, 0, 1000.0 * n0, now);
    feed_mbps(est, 1, 1000.0 * n1, now);
    if (auto next = est.derive_ratios(prior, current, now)) {
      current = *next;
      ++installs;
    }
  }
  EXPECT_EQ(installs, 0) << "ratio thrash under noise";
}

TEST(RateEstimator, MinWeightFloorKeepsProbeTrafficFlowing) {
  auto cfg = test_cfg();
  cfg.min_weight = 0.05;
  RateEstimator est(2, cfg);
  const std::array<double, 2> prior{1000.0, 1000.0};
  const std::vector<double> current{0.5, 0.5};

  // Rail 0 collapses to ~1% of rail 1: the floor must keep it at 5% so
  // its recovery stays observable.
  sim::TimeNs now = 0;
  for (int i = 0; i < 40; ++i) {
    now += 100'000;
    feed_mbps(est, 0, 10.0, now);
    feed_mbps(est, 1, 1000.0, now);
  }
  auto next = est.derive_ratios(prior, current, now);
  ASSERT_TRUE(next.has_value());
  EXPECT_NEAR((*next)[0], cfg.min_weight, 0.01);
  EXPECT_NEAR((*next)[0] + (*next)[1], 1.0, 1e-9);
}

TEST(RateEstimator, DeadRailGetsNoFloorAndAllDeadGetsNoRatios) {
  RateEstimator est(2, test_cfg());
  const std::array<double, 2> prior{1000.0, 1000.0};
  const std::vector<double> current{0.5, 0.5};
  const sim::TimeNs now = 1'000'000;

  est.note_state(0, core::RailState::kDead, now);
  auto next = est.derive_ratios(prior, current, now);
  ASSERT_TRUE(next.has_value());
  EXPECT_EQ((*next)[0], 0.0);
  EXPECT_NEAR((*next)[1], 1.0, 1e-9);

  est.note_state(1, core::RailState::kDead, now);
  EXPECT_FALSE(est.derive_ratios(prior, current, now).has_value());
}

}  // namespace
