// Threaded progression engine: byte-identity against serial mode across
// the PIO/rendezvous boundary, completion-event ordering guarantees, mode
// resolution, and shutdown robustness. These tests pin kThreaded
// explicitly so they exercise the progress threads even when the suite
// runs without NMAD_PROGRESS_MODE set.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <map>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/platform.hpp"
#include "core/progress.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

PlatformConfig pin_threaded(PlatformConfig cfg) {
  cfg.progress_mode = ProgressMode::kThreaded;
  return cfg;
}

// --- mode resolution ---------------------------------------------------------

TEST(ProgressMode, ExplicitPinWinsOverEnvironment) {
  // Save the suite-level setting so running all tests in one process (no
  // ctest filter) stays hermetic.
  const char* saved = std::getenv("NMAD_PROGRESS_MODE");
  const std::string saved_value = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("NMAD_PROGRESS_MODE", "threaded", 1), 0);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kSerial), ProgressMode::kSerial);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kDefault),
            ProgressMode::kThreaded);
  ASSERT_EQ(setenv("NMAD_PROGRESS_MODE", "serial", 1), 0);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kDefault), ProgressMode::kSerial);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kThreaded),
            ProgressMode::kThreaded);
  ASSERT_EQ(unsetenv("NMAD_PROGRESS_MODE"), 0);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kDefault), ProgressMode::kSerial);

  if (saved != nullptr) {
    ASSERT_EQ(setenv("NMAD_PROGRESS_MODE", saved_value.c_str(), 1), 0);
  }
}

TEST(ProgressMode, PlatformReportsResolvedMode) {
  TwoNodePlatform serial(pin_serial(paper_platform("aggreg_greedy")));
  EXPECT_EQ(serial.progress_mode(), ProgressMode::kSerial);
  EXPECT_FALSE(serial.a().threaded());

  TwoNodePlatform threaded(pin_threaded(paper_platform("aggreg_greedy")));
  EXPECT_EQ(threaded.progress_mode(), ProgressMode::kThreaded);
  EXPECT_TRUE(threaded.a().threaded());
  EXPECT_TRUE(threaded.b().threaded());
  // One progress thread per rail (the paper platform has two rails).
  EXPECT_EQ(threaded.a().progress_engine()->thread_count(), 2u);
}

// --- byte identity vs serial -------------------------------------------------

/// Run `rounds` of two-rail ping-pong at `size` bytes on `p`; returns the
/// bytes B received on the final round. Fails the test on any corruption.
std::vector<std::byte> pingpong(TwoNodePlatform& p, std::size_t size,
                                int rounds, std::uint64_t seed) {
  std::vector<std::byte> sink_b(size), sink_a(size);
  std::vector<std::byte> last;
  for (int r = 0; r < rounds; ++r) {
    const auto payload = random_bytes(size, seed + r);
    auto recv_b = p.b().irecv(p.gate_ba(), 0, sink_b);
    auto send_ab = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv_b);
    p.a().wait(send_ab);
    EXPECT_EQ(recv_b->received_len(), size);
    EXPECT_EQ(sink_b, payload) << "A->B corrupted at size " << size;

    // Echo back the received bytes (not the original): corruption on
    // either leg is visible at A.
    auto recv_a = p.a().irecv(p.gate_ab(), 0, sink_a);
    auto send_ba = p.b().isend(p.gate_ba(), 0, sink_b);
    p.a().wait(recv_a);
    p.b().wait(send_ba);
    EXPECT_EQ(sink_a, payload) << "B->A corrupted at size " << size;
    last = sink_a;
  }
  return last;
}

class ThreadedPingPong : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadedPingPong, ByteIdenticalToSerial) {
  const std::size_t size = GetParam();
  TwoNodePlatform serial(pin_serial(paper_platform("aggreg_greedy")));
  TwoNodePlatform threaded(pin_threaded(paper_platform("aggreg_greedy")));
  const auto from_serial = pingpong(serial, size, 3, size * 7 + 1);
  const auto from_threaded = pingpong(threaded, size, 3, size * 7 + 1);
  EXPECT_EQ(from_serial, from_threaded);
}

// Sizes straddle the PIO threshold (8 KB eager boundary) and the
// rendezvous path: pure-eager, boundary, boundary+1, multi-chunk DMA.
INSTANTIATE_TEST_SUITE_P(EagerAndRendezvous, ThreadedPingPong,
                         ::testing::Values(std::size_t{1}, std::size_t{100},
                                           std::size_t{8192}, std::size_t{8193},
                                           std::size_t{64 * 1024},
                                           std::size_t{1 << 20}),
                         [](const auto& pinfo) {
                           return std::to_string(pinfo.param) + "b";
                         });

TEST(ThreadedProgress, MultiStrategyBurstBothDirections) {
  for (const char* strategy : {"single_rail", "greedy", "split_balance"}) {
    TwoNodePlatform p(pin_threaded(paper_platform(strategy)));
    constexpr int kMessages = 40;
    std::vector<std::vector<std::byte>> payloads, sinks;
    std::vector<SendHandle> sends;
    std::vector<RecvHandle> recvs;
    util::Xoshiro256 rng(0xabcd);
    for (int i = 0; i < kMessages; ++i) {
      const std::size_t size = 1 + rng.next_below(150000);
      payloads.push_back(random_bytes(size, i));
      sinks.emplace_back(size, std::byte{0});
    }
    for (int i = 0; i < kMessages; ++i) {
      const bool a_to_b = i % 2 == 0;
      recvs.push_back(a_to_b ? p.b().irecv(p.gate_ba(), 0, sinks[i])
                             : p.a().irecv(p.gate_ab(), 0, sinks[i]));
    }
    for (int i = 0; i < kMessages; ++i) {
      const bool a_to_b = i % 2 == 0;
      sends.push_back(a_to_b ? p.a().isend(p.gate_ab(), 0, payloads[i])
                             : p.b().isend(p.gate_ba(), 0, payloads[i]));
    }
    p.a().wait_all(sends, recvs);
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ(sinks[i], payloads[i]) << strategy << " msg " << i;
    }
  }
}

// --- completion-event ordering ----------------------------------------------

// Contract (see CompletionEvent in core/scheduler.hpp): single-rail
// traffic on one track settles strictly in seq order within a (gate, tag)
// stream — the eager track is FIFO and matching is sequential, so the
// completion ring must never show a same-stream inversion there.
TEST(ThreadedProgress, SingleRailEagerCompletionsInSeqOrder) {
  PlatformConfig cfg = pin_threaded(paper_platform("single_rail"));
  TwoNodePlatform p(std::move(cfg));
  constexpr int kPerTag = 30;
  constexpr int kTags = 3;
  constexpr std::size_t kSize = 512;  // eager-only: all on the PIO track

  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < kPerTag * kTags; ++i) {
    payloads.push_back(random_bytes(kSize, 1000 + i));
    sinks.emplace_back(kSize, std::byte{0});
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    recvs.push_back(
        p.b().irecv(p.gate_ba(), static_cast<proto::Tag>(i % kTags), sinks[i]));
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    sends.push_back(
        p.a().isend(p.gate_ab(), static_cast<proto::Tag>(i % kTags), payloads[i]));
  }
  p.b().wait_all(sends, recvs);
  for (int i = 0; i < kPerTag * kTags; ++i) {
    ASSERT_EQ(sinks[i], payloads[i]);
  }

  // Drain B's completion ring: per (kind, gate, tag) stream, seqs must be
  // exactly 0..kPerTag-1 in order. At this volume (90 events vs capacity
  // 4096) nothing may have stalled or spilled to the overflow list.
  ProgressEngine* engine_b = p.b().progress_engine();
  ASSERT_NE(engine_b, nullptr);
  EXPECT_EQ(engine_b->completion_stalls(), 0u);
  EXPECT_EQ(engine_b->completion_overflows(), 0u);
  std::map<std::tuple<CompletionEvent::Kind, GateId, proto::Tag>,
           std::vector<proto::MsgSeq>>
      streams;
  CompletionEvent ev;
  std::size_t total = 0;
  while (engine_b->pop_completion(ev)) {
    EXPECT_FALSE(ev.failed);
    streams[{ev.kind, ev.gate, ev.tag}].push_back(ev.seq);
    ++total;
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kPerTag * kTags));  // all recvs
  for (const auto& [key, seqs] : streams) {
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kPerTag));
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i) << "single-rail stream completion out of seq order";
    }
  }
}

// With multiple rails and mixed sizes, same-stream settlement MAY reorder
// (a small eager message overtakes an earlier rendezvous transfer) — but
// the event set per stream must still be a complete, duplicate-free
// permutation, and matching stays byte-exact in post order.
TEST(ThreadedProgress, MultiRailCompletionsArePermutationPerStream) {
  TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
  constexpr int kPerTag = 30;
  constexpr int kTags = 3;

  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  util::Xoshiro256 rng(42);
  // Mixed sizes so eager and rendezvous completions interleave.
  for (int i = 0; i < kPerTag * kTags; ++i) {
    const std::size_t size = 1 + rng.next_below(60000);
    payloads.push_back(random_bytes(size, 1000 + i));
    sinks.emplace_back(size, std::byte{0});
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    recvs.push_back(
        p.b().irecv(p.gate_ba(), static_cast<proto::Tag>(i % kTags), sinks[i]));
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    sends.push_back(
        p.a().isend(p.gate_ab(), static_cast<proto::Tag>(i % kTags), payloads[i]));
  }
  p.b().wait_all(sends, recvs);
  for (int i = 0; i < kPerTag * kTags; ++i) {
    ASSERT_EQ(sinks[i], payloads[i]);
  }

  ProgressEngine* engine_b = p.b().progress_engine();
  ASSERT_NE(engine_b, nullptr);
  EXPECT_EQ(engine_b->completion_stalls(), 0u);
  EXPECT_EQ(engine_b->completion_overflows(), 0u);
  std::map<std::tuple<CompletionEvent::Kind, GateId, proto::Tag>,
           std::vector<proto::MsgSeq>>
      streams;
  CompletionEvent ev;
  while (engine_b->pop_completion(ev)) {
    EXPECT_FALSE(ev.failed);
    streams[{ev.kind, ev.gate, ev.tag}].push_back(ev.seq);
  }
  for (auto& [key, seqs] : streams) {
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kPerTag));
    std::sort(seqs.begin(), seqs.end());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i) << "stream events lost or duplicated";
    }
  }
}

// Submission-order preservation: N same-tag messages posted back-to-back
// from the app thread must match in post order even though they traverse
// the submission ring — the k-th recv gets the k-th payload, byte-exact.
TEST(ThreadedProgress, SameTagMatchingFollowsPostOrder) {
  TwoNodePlatform p(pin_threaded(paper_platform("split_balance")));
  constexpr int kMessages = 50;
  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < kMessages; ++i) {
    // Distinct sizes double as identity markers.
    payloads.push_back(random_bytes(100 + 997 * i, 77 + i));
    sinks.emplace_back(payloads.back().size(), std::byte{0});
  }
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 9, sinks[i]));
  }
  for (int i = 0; i < kMessages; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 9, payloads[i]));
  }
  p.b().wait_all(sends, recvs);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(recvs[i]->received_len(), payloads[i].size());
    EXPECT_EQ(sinks[i], payloads[i]) << "message " << i << " mismatched";
  }
}

// --- many-thread submission (per-thread lanes) -------------------------------

/// One worker's traffic in the multi-thread soak: thread t owns tag t for
/// A->B and tag 100+t for B->A, so every (gate, tag) stream has exactly
/// one producing thread and matching order stays deterministic per stream
/// even with T threads submitting concurrently.
struct WorkerTraffic {
  std::vector<std::vector<std::byte>> payloads_ab, payloads_ba;
  std::vector<std::vector<std::byte>> sinks_ab, sinks_ba;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
};

void run_worker(TwoNodePlatform& p, unsigned t, int messages,
                WorkerTraffic& out) {
  util::Xoshiro256 rng(0x5eed0 + t);
  for (int i = 0; i < messages; ++i) {
    const std::size_t size = 1 + rng.next_below(8192);
    out.payloads_ab.push_back(random_bytes(size, t * 1000 + i));
    out.sinks_ab.emplace_back(size, std::byte{0});
    const std::size_t size_back = 1 + rng.next_below(8192);
    out.payloads_ba.push_back(random_bytes(size_back, t * 1000 + 500 + i));
    out.sinks_ba.emplace_back(size_back, std::byte{0});
  }
  const auto tag_ab = static_cast<proto::Tag>(t);
  const auto tag_ba = static_cast<proto::Tag>(100 + t);
  for (int i = 0; i < messages; ++i) {
    // Interleave {send, recv} x {session A, session B} from this thread.
    out.recvs.push_back(p.b().irecv(p.gate_ba(), tag_ab, out.sinks_ab[i]));
    out.sends.push_back(p.a().isend(p.gate_ab(), tag_ab, out.payloads_ab[i]));
    out.recvs.push_back(p.a().irecv(p.gate_ab(), tag_ba, out.sinks_ba[i]));
    out.sends.push_back(p.b().isend(p.gate_ba(), tag_ba, out.payloads_ba[i]));
  }
  // Each worker waits on its own handles (wait is safe from T threads).
  p.a().wait_all(out.sends, out.recvs);
}

void check_worker(const WorkerTraffic& w, unsigned t) {
  for (std::size_t i = 0; i < w.payloads_ab.size(); ++i) {
    EXPECT_EQ(w.sinks_ab[i], w.payloads_ab[i])
        << "thread " << t << " A->B msg " << i << " corrupted";
    EXPECT_EQ(w.sinks_ba[i], w.payloads_ba[i])
        << "thread " << t << " B->A msg " << i << " corrupted";
  }
}

class MultiThreadSoak : public ::testing::TestWithParam<unsigned> {};

// T producer threads, {send, recv} interleaved across both sessions, vs
// the identical pattern run serially: every stream must deliver the same
// bytes. Under TSan (CI tsan-threaded job) this is the concurrency proof
// for lane registration, per-lane rings and completion routing.
TEST_P(MultiThreadSoak, ProducersAcrossTwoSessionsByteIdenticalToSerial) {
  const unsigned kThreads = GetParam();
  constexpr int kMessages = 25;

  // Serial reference: same per-thread streams, submitted from one thread.
  std::vector<WorkerTraffic> serial_traffic(kThreads);
  {
    TwoNodePlatform serial(pin_serial(paper_platform("aggreg_greedy")));
    for (unsigned t = 0; t < kThreads; ++t) {
      run_worker(serial, t, kMessages, serial_traffic[t]);
    }
    for (unsigned t = 0; t < kThreads; ++t) check_worker(serial_traffic[t], t);
  }

  // Threaded: one producer thread per stream pair, all concurrent.
  std::vector<WorkerTraffic> traffic(kThreads);
  {
    TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
    std::vector<std::thread> workers;
    workers.reserve(kThreads);
    for (unsigned t = 0; t < kThreads; ++t) {
      workers.emplace_back(
          [&p, t, &traffic] { run_worker(p, t, kMessages, traffic[t]); });
    }
    for (auto& w : workers) w.join();
    for (unsigned t = 0; t < kThreads; ++t) check_worker(traffic[t], t);

    // Lossless stack: lanes registered for every producer, nothing dropped
    // (the drop counter is gone by design — overflow is the counted,
    // lossless fallback and this volume must not even need it).
    ProgressEngine* ea = p.a().progress_engine();
    ProgressEngine* eb = p.b().progress_engine();
    ASSERT_NE(ea, nullptr);
    ASSERT_NE(eb, nullptr);
    EXPECT_GE(ea->lane_count(), kThreads);
    EXPECT_GE(eb->lane_count(), kThreads);
    EXPECT_EQ(ea->completion_overflows(), 0u);
    EXPECT_EQ(eb->completion_overflows(), 0u);

    // The engines' ground-truth counters register as metrics (and stay
    // live even with NMAD_METRICS=OFF).
    obs::MetricsRegistry registry;
    p.a().register_metrics(registry, "a.");
    const auto snap = registry.snapshot();
    ASSERT_TRUE(snap.counters.contains("a.progress.completions"));
    EXPECT_GT(snap.counters.at("a.progress.completions"), 0u);
    EXPECT_EQ(snap.counters.at("a.progress.ring.overflows"), 0u);
  }

  // Byte identity threaded vs serial, stream by stream.
  for (unsigned t = 0; t < kThreads; ++t) {
    EXPECT_EQ(traffic[t].sinks_ab, serial_traffic[t].sinks_ab);
    EXPECT_EQ(traffic[t].sinks_ba, serial_traffic[t].sinks_ba);
  }
}

INSTANTIATE_TEST_SUITE_P(ProducerCounts, MultiThreadSoak,
                         ::testing::Values(2u, 4u, 8u),
                         [](const auto& pinfo) {
                           return std::to_string(pinfo.param) + "threads";
                         });

// Completion routing: each submitting thread must observe exactly the
// events for ITS OWN requests on its completion ring — nothing foreign,
// nothing missing — while T threads submit concurrently.
TEST(ThreadedProgress, CompletionEventsRouteToSubmittingThread) {
  TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
  constexpr unsigned kThreads = 4;
  constexpr int kMessages = 20;
  std::atomic<bool> failed{false};

  auto worker = [&](unsigned t) {
    WorkerTraffic w;
    run_worker(p, t, kMessages, w);
    check_worker(w, t);
    const auto tag_ab = static_cast<proto::Tag>(t);
    const auto tag_ba = static_cast<proto::Tag>(100 + t);
    // This thread submitted, per engine: kMessages sends + kMessages recvs
    // (A: tag_ab sends + tag_ba recvs; B: tag_ba sends + tag_ab recvs).
    // Events can trail the done() flag by one hook call, so spin until all
    // arrive; every event popped here must carry one of this thread's tags.
    for (Session* s : {&p.a(), &p.b()}) {
      std::size_t mine = 0;
      CompletionEvent ev;
      while (mine < 2 * static_cast<std::size_t>(kMessages)) {
        if (!s->progress_engine()->pop_completion(ev)) {
          std::this_thread::yield();
          continue;
        }
        ++mine;
        if (ev.tag != tag_ab && ev.tag != tag_ba) {
          failed.store(true);
          ADD_FAILURE() << "thread " << t << " received foreign event tag "
                        << ev.tag << " on session " << s->name();
          return;
        }
      }
    }
  };

  std::vector<std::thread> workers;
  for (unsigned t = 0; t < kThreads; ++t) workers.emplace_back(worker, t);
  for (auto& w : workers) w.join();
  EXPECT_FALSE(failed.load());
}

// Bursts held simultaneously on both sessions by different threads: they
// share the ONE world mutex, so they serialize (never deadlock, never
// overlap) and all traffic lands once both are released.
TEST(ThreadedProgress, ConcurrentBurstsOnTwoSessionsSerialize) {
  TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
  constexpr int kMessages = 20;
  std::vector<std::vector<std::byte>> payloads, sinks;
  for (int i = 0; i < kMessages; ++i) {
    payloads.push_back(random_bytes(2048 + 64 * i, 7 * i + 1));
    sinks.emplace_back(payloads.back().size(), std::byte{0});
  }
  std::vector<SendHandle> sends(kMessages);
  std::vector<RecvHandle> recvs(kMessages);

  std::thread recv_burster([&] {
    auto burst = p.b().submission_burst();
    for (int i = 0; i < kMessages; ++i) {
      recvs[i] = p.b().irecv(p.gate_ba(), 3, sinks[i]);
    }
  });
  std::thread send_burster([&] {
    auto burst = p.a().submission_burst();
    for (int i = 0; i < kMessages; ++i) {
      sends[i] = p.a().isend(p.gate_ab(), 3, payloads[i]);
    }
  });
  recv_burster.join();
  send_burster.join();
  p.a().wait_all(sends, recvs);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(sinks[i], payloads[i]) << "burst msg " << i;
  }
}

// flush_submissions drains EVERY thread's lane, not just the caller's:
// after T producers pushed receives and the main thread flushed, all of
// them must be in B's matching table — the peer's sends then find a
// posted receive (no unexpected-message staging).
TEST(ThreadedProgress, FlushDrainsAllThreadsLanes) {
  TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
  constexpr unsigned kThreads = 4;
  constexpr int kMessages = 10;
  std::vector<std::vector<std::byte>> payloads(kThreads * kMessages);
  std::vector<std::vector<std::byte>> sinks(kThreads * kMessages);
  std::vector<RecvHandle> recvs(kThreads * kMessages);
  for (unsigned t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kMessages; ++i) {
      const std::size_t idx = t * kMessages + static_cast<std::size_t>(i);
      payloads[idx] = random_bytes(512 + idx, idx + 1);
      sinks[idx].assign(payloads[idx].size(), std::byte{0});
    }
  }

  std::vector<std::thread> posters;
  for (unsigned t = 0; t < kThreads; ++t) {
    posters.emplace_back([&, t] {
      for (int i = 0; i < kMessages; ++i) {
        const std::size_t idx = t * kMessages + static_cast<std::size_t>(i);
        recvs[idx] =
            p.b().irecv(p.gate_ba(), static_cast<proto::Tag>(t), sinks[idx]);
      }
    });
  }
  for (auto& th : posters) th.join();
  // join() gives the happens-before edge: everything the posters pushed is
  // flushable now, from the main thread, across all their lanes.
  p.b().flush_submissions();

  std::vector<SendHandle> sends;
  for (unsigned t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kMessages; ++i) {
      const std::size_t idx = t * kMessages + static_cast<std::size_t>(i);
      sends.push_back(
          p.a().isend(p.gate_ab(), static_cast<proto::Tag>(t), payloads[idx]));
    }
  }
  p.a().wait_all(sends, recvs);
  for (std::size_t idx = 0; idx < payloads.size(); ++idx) {
    EXPECT_EQ(sinks[idx], payloads[idx]);
  }
  // Every receive was matchable before its message arrived.
  EXPECT_EQ(p.b().scheduler().metrics().unexpected_msgs.value(), 0u);
}

// A completion ring too small for the traffic must spill (counted), never
// drop: with capacity 2 and nobody popping during the run, all events must
// still be delivered afterwards, oldest-first per lane.
TEST(ThreadedProgress, TinyCompletionRingOverflowsLosslessly) {
  PlatformConfig cfg = pin_threaded(paper_platform("single_rail"));
  cfg.completion_ring_capacity = 2;
  TwoNodePlatform p(std::move(cfg));
  constexpr int kMessages = 40;
  constexpr std::size_t kSize = 256;  // eager-only: settles in seq order

  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < kMessages; ++i) {
    payloads.push_back(random_bytes(kSize, 3000 + i));
    sinks.emplace_back(kSize, std::byte{0});
  }
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 5, sinks[i]));
  }
  for (int i = 0; i < kMessages; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 5, payloads[i]));
  }
  p.b().wait_all(sends, recvs);
  for (int i = 0; i < kMessages; ++i) {
    ASSERT_EQ(sinks[i], payloads[i]);
  }

  ProgressEngine* engine_b = p.b().progress_engine();
  ASSERT_NE(engine_b, nullptr);
  // 40 recv events hit a 2-slot ring with no consumer: the spill path ran.
  EXPECT_GT(engine_b->completion_overflows(), 0u);
  // ... but every event is still delivered, in seq order (single rail,
  // eager track, one stream): ring entries first, then the overflow list.
  // Events can trail the done() flag by one hook call, so spin them in.
  CompletionEvent ev;
  std::size_t total = 0;
  while (total < static_cast<std::size_t>(kMessages)) {
    if (!engine_b->pop_completion(ev)) {
      std::this_thread::yield();
      continue;
    }
    EXPECT_EQ(ev.kind, CompletionEvent::Kind::kRecv);
    EXPECT_EQ(ev.tag, 5u);
    EXPECT_EQ(ev.seq, total);
    ++total;
  }
  EXPECT_FALSE(engine_b->pop_completion(ev));  // nothing duplicated
  EXPECT_EQ(engine_b->completions_enqueued(), static_cast<std::uint64_t>(kMessages));
}

// --- shutdown ---------------------------------------------------------------

TEST(ThreadedProgress, CleanShutdownWithIdleThreads) {
  // Construct, move a little data, destroy. Threads must join without
  // hanging even though they are mid-backoff.
  for (int i = 0; i < 5; ++i) {
    TwoNodePlatform p(pin_threaded(paper_platform("single_rail")));
    const auto payload = random_bytes(256, i);
    std::vector<std::byte> sink(256);
    auto recv = p.b().irecv(p.gate_ba(), 0, sink);
    auto send = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv);
    p.a().wait(send);
    EXPECT_EQ(sink, payload);
  }
}

TEST(ThreadedProgress, StopThreadedFallsBackToSerial) {
  TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
  ASSERT_TRUE(p.a().threaded());
  p.a().stop_threaded();
  p.b().stop_threaded();
  EXPECT_FALSE(p.a().threaded());
  // Serial entry points still work after the fallback.
  const auto payload = random_bytes(4096, 3);
  std::vector<std::byte> sink(4096);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(sink, payload);
}

}  // namespace
