// Threaded progression engine: byte-identity against serial mode across
// the PIO/rendezvous boundary, completion-event ordering guarantees, mode
// resolution, and shutdown robustness. These tests pin kThreaded
// explicitly so they exercise the progress threads even when the suite
// runs without NMAD_PROGRESS_MODE set.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <map>
#include <string>
#include <tuple>
#include <vector>

#include "core/platform.hpp"
#include "core/progress.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

PlatformConfig pin_threaded(PlatformConfig cfg) {
  cfg.progress_mode = ProgressMode::kThreaded;
  return cfg;
}

// --- mode resolution ---------------------------------------------------------

TEST(ProgressMode, ExplicitPinWinsOverEnvironment) {
  // Save the suite-level setting so running all tests in one process (no
  // ctest filter) stays hermetic.
  const char* saved = std::getenv("NMAD_PROGRESS_MODE");
  const std::string saved_value = saved != nullptr ? saved : "";

  ASSERT_EQ(setenv("NMAD_PROGRESS_MODE", "threaded", 1), 0);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kSerial), ProgressMode::kSerial);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kDefault),
            ProgressMode::kThreaded);
  ASSERT_EQ(setenv("NMAD_PROGRESS_MODE", "serial", 1), 0);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kDefault), ProgressMode::kSerial);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kThreaded),
            ProgressMode::kThreaded);
  ASSERT_EQ(unsetenv("NMAD_PROGRESS_MODE"), 0);
  EXPECT_EQ(resolve_progress_mode(ProgressMode::kDefault), ProgressMode::kSerial);

  if (saved != nullptr) {
    ASSERT_EQ(setenv("NMAD_PROGRESS_MODE", saved_value.c_str(), 1), 0);
  }
}

TEST(ProgressMode, PlatformReportsResolvedMode) {
  TwoNodePlatform serial(pin_serial(paper_platform("aggreg_greedy")));
  EXPECT_EQ(serial.progress_mode(), ProgressMode::kSerial);
  EXPECT_FALSE(serial.a().threaded());

  TwoNodePlatform threaded(pin_threaded(paper_platform("aggreg_greedy")));
  EXPECT_EQ(threaded.progress_mode(), ProgressMode::kThreaded);
  EXPECT_TRUE(threaded.a().threaded());
  EXPECT_TRUE(threaded.b().threaded());
  // One progress thread per rail (the paper platform has two rails).
  EXPECT_EQ(threaded.a().progress_engine()->thread_count(), 2u);
}

// --- byte identity vs serial -------------------------------------------------

/// Run `rounds` of two-rail ping-pong at `size` bytes on `p`; returns the
/// bytes B received on the final round. Fails the test on any corruption.
std::vector<std::byte> pingpong(TwoNodePlatform& p, std::size_t size,
                                int rounds, std::uint64_t seed) {
  std::vector<std::byte> sink_b(size), sink_a(size);
  std::vector<std::byte> last;
  for (int r = 0; r < rounds; ++r) {
    const auto payload = random_bytes(size, seed + r);
    auto recv_b = p.b().irecv(p.gate_ba(), 0, sink_b);
    auto send_ab = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv_b);
    p.a().wait(send_ab);
    EXPECT_EQ(recv_b->received_len(), size);
    EXPECT_EQ(sink_b, payload) << "A->B corrupted at size " << size;

    // Echo back the received bytes (not the original): corruption on
    // either leg is visible at A.
    auto recv_a = p.a().irecv(p.gate_ab(), 0, sink_a);
    auto send_ba = p.b().isend(p.gate_ba(), 0, sink_b);
    p.a().wait(recv_a);
    p.b().wait(send_ba);
    EXPECT_EQ(sink_a, payload) << "B->A corrupted at size " << size;
    last = sink_a;
  }
  return last;
}

class ThreadedPingPong : public ::testing::TestWithParam<std::size_t> {};

TEST_P(ThreadedPingPong, ByteIdenticalToSerial) {
  const std::size_t size = GetParam();
  TwoNodePlatform serial(pin_serial(paper_platform("aggreg_greedy")));
  TwoNodePlatform threaded(pin_threaded(paper_platform("aggreg_greedy")));
  const auto from_serial = pingpong(serial, size, 3, size * 7 + 1);
  const auto from_threaded = pingpong(threaded, size, 3, size * 7 + 1);
  EXPECT_EQ(from_serial, from_threaded);
}

// Sizes straddle the PIO threshold (8 KB eager boundary) and the
// rendezvous path: pure-eager, boundary, boundary+1, multi-chunk DMA.
INSTANTIATE_TEST_SUITE_P(EagerAndRendezvous, ThreadedPingPong,
                         ::testing::Values(std::size_t{1}, std::size_t{100},
                                           std::size_t{8192}, std::size_t{8193},
                                           std::size_t{64 * 1024},
                                           std::size_t{1 << 20}),
                         [](const auto& pinfo) {
                           return std::to_string(pinfo.param) + "b";
                         });

TEST(ThreadedProgress, MultiStrategyBurstBothDirections) {
  for (const char* strategy : {"single_rail", "greedy", "split_balance"}) {
    TwoNodePlatform p(pin_threaded(paper_platform(strategy)));
    constexpr int kMessages = 40;
    std::vector<std::vector<std::byte>> payloads, sinks;
    std::vector<SendHandle> sends;
    std::vector<RecvHandle> recvs;
    util::Xoshiro256 rng(0xabcd);
    for (int i = 0; i < kMessages; ++i) {
      const std::size_t size = 1 + rng.next_below(150000);
      payloads.push_back(random_bytes(size, i));
      sinks.emplace_back(size, std::byte{0});
    }
    for (int i = 0; i < kMessages; ++i) {
      const bool a_to_b = i % 2 == 0;
      recvs.push_back(a_to_b ? p.b().irecv(p.gate_ba(), 0, sinks[i])
                             : p.a().irecv(p.gate_ab(), 0, sinks[i]));
    }
    for (int i = 0; i < kMessages; ++i) {
      const bool a_to_b = i % 2 == 0;
      sends.push_back(a_to_b ? p.a().isend(p.gate_ab(), 0, payloads[i])
                             : p.b().isend(p.gate_ba(), 0, payloads[i]));
    }
    p.a().wait_all(sends, recvs);
    for (int i = 0; i < kMessages; ++i) {
      EXPECT_EQ(sinks[i], payloads[i]) << strategy << " msg " << i;
    }
  }
}

// --- completion-event ordering ----------------------------------------------

// Contract (see CompletionEvent in core/scheduler.hpp): single-rail
// traffic on one track settles strictly in seq order within a (gate, tag)
// stream — the eager track is FIFO and matching is sequential, so the
// completion ring must never show a same-stream inversion there.
TEST(ThreadedProgress, SingleRailEagerCompletionsInSeqOrder) {
  PlatformConfig cfg = pin_threaded(paper_platform("single_rail"));
  TwoNodePlatform p(std::move(cfg));
  constexpr int kPerTag = 30;
  constexpr int kTags = 3;
  constexpr std::size_t kSize = 512;  // eager-only: all on the PIO track

  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < kPerTag * kTags; ++i) {
    payloads.push_back(random_bytes(kSize, 1000 + i));
    sinks.emplace_back(kSize, std::byte{0});
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    recvs.push_back(
        p.b().irecv(p.gate_ba(), static_cast<proto::Tag>(i % kTags), sinks[i]));
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    sends.push_back(
        p.a().isend(p.gate_ab(), static_cast<proto::Tag>(i % kTags), payloads[i]));
  }
  p.b().wait_all(sends, recvs);
  for (int i = 0; i < kPerTag * kTags; ++i) {
    ASSERT_EQ(sinks[i], payloads[i]);
  }

  // Drain B's completion ring: per (kind, gate, tag) stream, seqs must be
  // exactly 0..kPerTag-1 in order. The ring is observational but must not
  // have dropped anything at this volume (capacity 4096).
  ProgressEngine* engine_b = p.b().progress_engine();
  ASSERT_NE(engine_b, nullptr);
  EXPECT_EQ(engine_b->completions_dropped(), 0u);
  std::map<std::tuple<CompletionEvent::Kind, GateId, proto::Tag>,
           std::vector<proto::MsgSeq>>
      streams;
  CompletionEvent ev;
  std::size_t total = 0;
  while (engine_b->pop_completion(ev)) {
    EXPECT_FALSE(ev.failed);
    streams[{ev.kind, ev.gate, ev.tag}].push_back(ev.seq);
    ++total;
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kPerTag * kTags));  // all recvs
  for (const auto& [key, seqs] : streams) {
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kPerTag));
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i) << "single-rail stream completion out of seq order";
    }
  }
}

// With multiple rails and mixed sizes, same-stream settlement MAY reorder
// (a small eager message overtakes an earlier rendezvous transfer) — but
// the event set per stream must still be a complete, duplicate-free
// permutation, and matching stays byte-exact in post order.
TEST(ThreadedProgress, MultiRailCompletionsArePermutationPerStream) {
  TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
  constexpr int kPerTag = 30;
  constexpr int kTags = 3;

  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  util::Xoshiro256 rng(42);
  // Mixed sizes so eager and rendezvous completions interleave.
  for (int i = 0; i < kPerTag * kTags; ++i) {
    const std::size_t size = 1 + rng.next_below(60000);
    payloads.push_back(random_bytes(size, 1000 + i));
    sinks.emplace_back(size, std::byte{0});
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    recvs.push_back(
        p.b().irecv(p.gate_ba(), static_cast<proto::Tag>(i % kTags), sinks[i]));
  }
  for (int i = 0; i < kPerTag * kTags; ++i) {
    sends.push_back(
        p.a().isend(p.gate_ab(), static_cast<proto::Tag>(i % kTags), payloads[i]));
  }
  p.b().wait_all(sends, recvs);
  for (int i = 0; i < kPerTag * kTags; ++i) {
    ASSERT_EQ(sinks[i], payloads[i]);
  }

  ProgressEngine* engine_b = p.b().progress_engine();
  ASSERT_NE(engine_b, nullptr);
  EXPECT_EQ(engine_b->completions_dropped(), 0u);
  std::map<std::tuple<CompletionEvent::Kind, GateId, proto::Tag>,
           std::vector<proto::MsgSeq>>
      streams;
  CompletionEvent ev;
  while (engine_b->pop_completion(ev)) {
    EXPECT_FALSE(ev.failed);
    streams[{ev.kind, ev.gate, ev.tag}].push_back(ev.seq);
  }
  for (auto& [key, seqs] : streams) {
    ASSERT_EQ(seqs.size(), static_cast<std::size_t>(kPerTag));
    std::sort(seqs.begin(), seqs.end());
    for (std::size_t i = 0; i < seqs.size(); ++i) {
      EXPECT_EQ(seqs[i], i) << "stream events lost or duplicated";
    }
  }
}

// Submission-order preservation: N same-tag messages posted back-to-back
// from the app thread must match in post order even though they traverse
// the submission ring — the k-th recv gets the k-th payload, byte-exact.
TEST(ThreadedProgress, SameTagMatchingFollowsPostOrder) {
  TwoNodePlatform p(pin_threaded(paper_platform("split_balance")));
  constexpr int kMessages = 50;
  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<SendHandle> sends;
  std::vector<RecvHandle> recvs;
  for (int i = 0; i < kMessages; ++i) {
    // Distinct sizes double as identity markers.
    payloads.push_back(random_bytes(100 + 997 * i, 77 + i));
    sinks.emplace_back(payloads.back().size(), std::byte{0});
  }
  for (int i = 0; i < kMessages; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 9, sinks[i]));
  }
  for (int i = 0; i < kMessages; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 9, payloads[i]));
  }
  p.b().wait_all(sends, recvs);
  for (int i = 0; i < kMessages; ++i) {
    EXPECT_EQ(recvs[i]->received_len(), payloads[i].size());
    EXPECT_EQ(sinks[i], payloads[i]) << "message " << i << " mismatched";
  }
}

// --- shutdown ---------------------------------------------------------------

TEST(ThreadedProgress, CleanShutdownWithIdleThreads) {
  // Construct, move a little data, destroy. Threads must join without
  // hanging even though they are mid-backoff.
  for (int i = 0; i < 5; ++i) {
    TwoNodePlatform p(pin_threaded(paper_platform("single_rail")));
    const auto payload = random_bytes(256, i);
    std::vector<std::byte> sink(256);
    auto recv = p.b().irecv(p.gate_ba(), 0, sink);
    auto send = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv);
    p.a().wait(send);
    EXPECT_EQ(sink, payload);
  }
}

TEST(ThreadedProgress, StopThreadedFallsBackToSerial) {
  TwoNodePlatform p(pin_threaded(paper_platform("aggreg_greedy")));
  ASSERT_TRUE(p.a().threaded());
  p.a().stop_threaded();
  p.b().stop_threaded();
  EXPECT_FALSE(p.a().threaded());
  // Serial entry points still work after the fallback.
  const auto payload = random_bytes(4096, 3);
  std::vector<std::byte> sink(4096);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(sink, payload);
}

}  // namespace
