// Error-path and misuse tests: the library must fail loudly and precisely
// (via panic) on contract violations, and reject malformed input at the
// protocol boundary. Uses the panic hook to turn aborts into exceptions.
#include <gtest/gtest.h>

#include <span>
#include <stdexcept>
#include <string>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "proto/wire.hpp"
#include "util/panic.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

class PanicAsException : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_panic_hook(+[](std::string_view msg) {
      throw std::runtime_error(std::string(msg));
    });
  }
  void TearDown() override { util::set_panic_hook(nullptr); }
};

using ErrorPaths = PanicAsException;

TEST_F(ErrorPaths, RecvBufferSmallerThanMessagePanics) {
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  std::vector<std::byte> payload(100, std::byte{1});
  std::vector<std::byte> tiny(10);
  auto recv = p.b().irecv(p.gate_ba(), 0, tiny);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  EXPECT_THROW(p.world().engine().run(), std::runtime_error);
}

TEST_F(ErrorPaths, UnknownGateIdPanics) {
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  EXPECT_THROW((void)p.a().scheduler().gate(99), std::runtime_error);
}

TEST_F(ErrorPaths, UnknownStrategyNamePanics) {
  EXPECT_THROW((void)strat::make_strategy("clairvoyant"), std::runtime_error);
}

TEST_F(ErrorPaths, BadRatioVectorPanics) {
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  auto& gate = p.a().scheduler().gate(p.gate_ab());
  EXPECT_THROW(gate.set_ratios({1.0}), std::runtime_error);        // wrong arity
  EXPECT_THROW(gate.set_ratios({0.0, 0.0}), std::runtime_error);   // zero sum
  EXPECT_THROW(gate.set_ratios({-1.0, 2.0}), std::runtime_error);  // negative
}

TEST_F(ErrorPaths, PostSendOnBusyTrackPanics) {
  drv::SimWorld world;
  netmodel::HostProfile host;
  const auto na = world.add_node(host);
  const auto nb = world.add_node(host);
  auto [da, db] = world.add_link(na, nb, netmodel::myri10g());
  db->set_deliver([](drv::Track, std::span<const std::byte>) {});

  const auto wire = proto::encode_data_packet(proto::SegHeader{0, 0, 0, 4, 4},
                                              std::vector<std::byte>(4));
  da->post_send(drv::SendDesc{drv::Track::kSmall, wire, 0.0}, nullptr);
  EXPECT_THROW(
      da->post_send(drv::SendDesc{drv::Track::kSmall, wire, 0.0}, nullptr),
      std::runtime_error);
}

TEST_F(ErrorPaths, OversizedEagerPacketPanics) {
  drv::SimWorld world;
  netmodel::HostProfile host;
  const auto na = world.add_node(host);
  const auto nb = world.add_node(host);
  auto [da, db] = world.add_link(na, nb, netmodel::myri10g());
  db->set_deliver([](drv::Track, std::span<const std::byte>) {});

  const std::uint32_t huge = 64 * 1024;
  const auto wire = proto::encode_data_packet(
      proto::SegHeader{0, 0, 0, huge, huge}, std::vector<std::byte>(huge));
  EXPECT_THROW(
      da->post_send(drv::SendDesc{drv::Track::kSmall, wire, 0.0}, nullptr),
      std::runtime_error);
}

TEST_F(ErrorPaths, CorruptPacketDeliveryPanics) {
  // Hand a garbage frame directly to the scheduler's deliver upcall — the
  // scheduler must refuse to process it (protocol violation), not
  // silently drop or misparse it.
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  drv::Driver& rail = p.a().scheduler().gate(p.gate_ab()).rail(0).driver();
  (void)rail;  // the deliver hook was installed by the scheduler
  auto* sim_rail = p.rails_b()[0];
  // Simulate arrival of garbage at node b by invoking the other side.
  std::vector<std::byte> garbage(32, std::byte{0x5a});
  // Deliver through the driver's installed upcall path.
  // SimDriver exposes no public inject; emulate via set_deliver capture —
  // instead we decode-check directly here:
  EXPECT_FALSE(proto::decode_packet(garbage).has_value());
  (void)sim_rail;
}

TEST_F(ErrorPaths, SchedulerRequiresClockAndDefer) {
  EXPECT_THROW(Scheduler(nullptr, [](std::function<void()>) {}),
               std::runtime_error);
  EXPECT_THROW(Scheduler([] { return sim::TimeNs{0}; }, nullptr),
               std::runtime_error);
}

TEST_F(ErrorPaths, GateNeedsRailsAndStrategy) {
  EXPECT_THROW(Gate(0, {}, strat::make_strategy("greedy"), {}),
               std::runtime_error);
}

TEST_F(ErrorPaths, PackBuilderDoubleSubmitPanics) {
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  std::vector<std::byte> data(8, std::byte{2});
  auto pack = p.a().pack(p.gate_ab(), 0);
  pack.add(data);
  auto h = pack.submit();
  EXPECT_THROW((void)pack.submit(), std::runtime_error);
  // Drain cleanly so the fixture tears down without pending work.
  std::vector<std::byte> sink(8);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  p.b().wait(recv);
  p.a().wait(h);
}

TEST_F(ErrorPaths, WorldRejectsSelfLink) {
  drv::SimWorld world;
  netmodel::HostProfile host;
  const auto na = world.add_node(host);
  EXPECT_THROW((void)world.add_link(na, na, netmodel::myri10g()),
               std::runtime_error);
}

TEST_F(ErrorPaths, MessageOverlapOnWireIsRejected) {
  // Two chunks covering the same bytes constitute a protocol violation
  // that must terminate processing (each byte is sent exactly once).
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  std::vector<std::byte> sink(100);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  (void)recv;

  // Craft two overlapping data packets for the same message and feed them
  // through the wire decode + scheduler path by sending a legitimate one
  // and asserting the reassembly layer's rejection directly.
  proto::MessageAssembly assembly(sink);
  std::vector<std::byte> chunk(60, std::byte{9});
  EXPECT_TRUE(assembly.add_chunk(0, chunk).has_value());
  EXPECT_FALSE(assembly.add_chunk(30, chunk).has_value());
}

}  // namespace
