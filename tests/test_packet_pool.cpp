// Pooled-buffer arena and packet-lifetime tests: blocks must recycle once
// the driver completes a send, steady-state traffic must stop allocating,
// and — the ASan-enforced contract — a completed request's payload spans
// must never be read after the caller reclaims the memory.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <span>
#include <vector>

#include "core/platform.hpp"
#include "core/session.hpp"
#include "drv/real_world.hpp"
#include "drv/tcp_driver.hpp"
#include "proto/pool.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::proto;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

TEST(BufferPool, AcquireReleaseRecyclesBlocks) {
  BufferPool pool(512, /*max_free=*/4);
  EXPECT_EQ(pool.free_count(), 0u);
  {
    PooledBuffer b = pool.acquire();
    EXPECT_TRUE(b.live());
    EXPECT_TRUE(b.fresh());  // first acquire is necessarily a miss
    EXPECT_GE(b.storage().capacity(), 512u);
  }
  // Destruction returned the block to the freelist.
  EXPECT_EQ(pool.free_count(), 1u);
  EXPECT_EQ(pool.miss_count(), 1u);
  EXPECT_EQ(pool.recycled_count(), 1u);

  PooledBuffer again = pool.acquire();
  EXPECT_FALSE(again.fresh());  // served from the freelist
  EXPECT_EQ(pool.hit_count(), 1u);
  EXPECT_EQ(pool.free_count(), 0u);
}

TEST(BufferPool, MaxFreeBoundsRetainedBlocks) {
  BufferPool pool(64, /*max_free=*/2);
  {
    PooledBuffer a = pool.acquire();
    PooledBuffer b = pool.acquire();
    PooledBuffer c = pool.acquire();
    (void)a;
    (void)b;
    (void)c;
  }
  // Only two of the three blocks were retained; the third was freed.
  EXPECT_EQ(pool.free_count(), 2u);
  EXPECT_EQ(pool.recycled_count(), 2u);
}

TEST(BufferPool, HandlesOutliveThePoolFrontend) {
  PooledBuffer escaped;
  {
    BufferPool pool(128);
    escaped = pool.acquire();
    escaped.storage().assign(16, std::byte{0x2a});
  }
  // Pool destroyed first: the handle still owns valid storage and its
  // release degrades to a plain free.
  EXPECT_EQ(escaped.bytes().size(), 16u);
  EXPECT_EQ(escaped.bytes()[0], std::byte{0x2a});
  escaped.release();
  EXPECT_FALSE(escaped.live());
}

TEST(PacketPool, ViewResetReturnsHeadAndStagingBlocks) {
  BufferPool heads(256, 8);
  BufferPool staging(1024, 8);
  std::vector<std::byte> payload(50, std::byte{1});
  GatherBuilder builder(PacketKind::kData, heads.acquire(), staging.acquire());
  builder.add_segment_staged(SegHeader{0, 0, 0, 50, 50}, payload);
  builder.add_segment_staged(SegHeader{1, 1, 0, 50, 50}, payload);
  PacketView view = std::move(builder).finish();
  EXPECT_EQ(heads.free_count(), 0u);
  EXPECT_EQ(staging.free_count(), 0u);

  view.reset();
  EXPECT_EQ(heads.free_count(), 1u);
  EXPECT_EQ(staging.free_count(), 1u);
}

TEST(PacketPool, SteadyStateTrafficReusesGatePools) {
  // Ping messages through the simulated paper platform: after warm-up, the
  // gate's header pool must serve every packet from its freelist.
  core::TwoNodePlatform p(core::paper_platform("aggreg"));
  const BufferPool& pool =
      p.a().scheduler().gate(p.gate_ab()).header_pool();

  auto ping = [&](std::uint64_t seed) {
    const auto payload = random_bytes(512, seed);
    std::vector<std::byte> sink(512);
    auto recv = p.b().irecv(p.gate_ba(), 0, sink);
    auto send = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv);
    p.a().wait(send);
    EXPECT_EQ(sink, payload);
  };

  ping(1);  // warm-up: first packets miss and seed the freelist
  const auto misses_after_warmup = pool.miss_count();
  const auto hits_before = pool.hit_count();
  for (std::uint64_t i = 2; i < 12; ++i) ping(i);
  EXPECT_EQ(pool.miss_count(), misses_after_warmup)
      << "steady-state packets must not allocate header blocks";
  EXPECT_GT(pool.hit_count(), hits_before);
  EXPECT_GT(pool.recycled_count(), 0u);
}

/// Two sessions over a socketpair rail (mirrors test_tcp_driver.cpp).
struct TcpFixture {
  drv::RealWorld world;
  std::unique_ptr<drv::TcpDriver> drv_a, drv_b;
  std::unique_ptr<core::Session> a, b;
  core::GateId gate_ab = 0, gate_ba = 0;

  TcpFixture() {
    std::tie(drv_a, drv_b) = drv::TcpDriver::create_pair();
    world.attach(drv_a.get());
    world.attach(drv_b.get());
    auto clock = [this] { return world.now(); };
    auto defer = [this](std::function<void()> fn) { world.defer(std::move(fn)); };
    auto progress = [this](const std::function<bool()>& pred) {
      world.progress_until(pred);
    };
    a = std::make_unique<core::Session>("A", clock, defer, progress);
    b = std::make_unique<core::Session>("B", clock, defer, progress);
    gate_ab = a->connect({drv_a.get()}, "aggreg");
    gate_ba = b->connect({drv_b.get()}, "aggreg");
  }
};

TEST(PacketPool, NoSpanReadAfterSendCompletion) {
  // The zero-copy contract under ASan: once the driver reports local send
  // completion the packet's payload spans must never be touched again. We
  // complete the send, then free *and clobber* the payload memory before
  // the receiver drains the socket; a stale span read would either trip
  // ASan (freed) or corrupt the received bytes (clobbered).
  TcpFixture f;
  const auto original = random_bytes(3000, 42);
  auto payload = std::make_unique<std::vector<std::byte>>(original);

  std::vector<std::byte> sink(3000);
  auto recv = f.b->irecv(f.gate_ba, 7, sink);
  auto send = f.a->isend(f.gate_ab, 7, *payload);
  f.a->wait(send);  // driver handed every byte to the kernel

  std::memset(payload->data(), 0xdd, payload->size());  // clobber...
  payload.reset();                                      // ...then free

  f.b->wait(recv);
  EXPECT_EQ(sink, original);
}

}  // namespace
