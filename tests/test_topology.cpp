// Locality topology and lazy platform tests: domain grouping from host
// labels and rate matrices, the two-level hierarchy tree's structural
// invariants (spanning tree, leader rule, flat fallback), the sparse-mesh
// edge validation, and lazy session/edge establishment (counts, metrics,
// and a collective over a world that starts with zero edges).
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>
#include <string>
#include <vector>

#include "coll/bcast.hpp"
#include "coll/communicator.hpp"
#include "coll/topology.hpp"
#include "core/platform.hpp"
#include "obs/registry.hpp"
#include "pattern_gen.hpp"
#include "util/panic.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

// --- descriptor construction -------------------------------------------------

TEST(Topology, FromHostsAssignsDenseIdsByFirstAppearance) {
  // Host labels are arbitrary integers; domain ids must be dense and
  // ordered by first appearance so every rank derives the same descriptor.
  const coll::Topology topo =
      coll::Topology::from_hosts({7, 7, 3, 9, 3, 7});
  ASSERT_EQ(topo.size(), 6u);
  ASSERT_EQ(topo.domains().size(), 3u);
  EXPECT_EQ(topo.domain_of(0), 0u);  // host 7 seen first
  EXPECT_EQ(topo.domain_of(2), 1u);  // host 3 second
  EXPECT_EQ(topo.domain_of(3), 2u);  // host 9 third
  EXPECT_EQ(topo.domains()[0].members, (std::vector<std::size_t>{0, 1, 5}));
  EXPECT_EQ(topo.domains()[1].members, (std::vector<std::size_t>{2, 4}));
  EXPECT_EQ(topo.domains()[2].members, (std::vector<std::size_t>{3}));
  EXPECT_FALSE(topo.flat());
}

TEST(Topology, LeaderIsRootInRootsDomainElseSmallestMember) {
  const coll::Topology topo = coll::Topology::from_hosts({0, 0, 0, 1, 1, 1});
  // Root 4 lives in domain 1: it leads there, domain 0 keeps rank 0.
  EXPECT_EQ(topo.leader(1, /*root=*/4), 4u);
  EXPECT_EQ(topo.leader(0, /*root=*/4), 0u);
  EXPECT_EQ(topo.leader(0, /*root=*/2), 2u);
}

TEST(Topology, FlatWhenOneDomainOrAllSingletons) {
  EXPECT_TRUE(coll::Topology::from_hosts({5, 5, 5, 5}).flat());
  EXPECT_TRUE(coll::Topology::from_hosts({0, 1, 2, 3}).flat());
  EXPECT_TRUE(coll::Topology::from_hosts({0}).flat());
  EXPECT_FALSE(coll::Topology::from_hosts({0, 0, 1, 1}).flat());
}

TEST(Topology, HostsFromRatesClustersFastCliques) {
  // 4 ranks: {0,1} and {2,3} joined by ~1200 MB/s links, everything else
  // ~100 MB/s. At the default fast_fraction the slow links fall below the
  // threshold and two domains emerge.
  const double f = 1200.0, s = 100.0;
  const std::vector<std::vector<double>> rates{
      {0, f, s, s}, {f, 0, s, s}, {s, s, 0, f}, {s, s, f, 0}};
  const auto hosts = coll::hosts_from_rates(rates);
  const coll::Topology topo = coll::Topology::from_hosts(hosts);
  EXPECT_EQ(topo.domains().size(), 2u);
  EXPECT_EQ(topo.domain_of(0), topo.domain_of(1));
  EXPECT_EQ(topo.domain_of(2), topo.domain_of(3));
  EXPECT_NE(topo.domain_of(0), topo.domain_of(2));

  // A zero/negative entry means "no direct link" and never clusters, even
  // with a tiny threshold.
  const std::vector<std::vector<double>> gapped{
      {0, 0, 0}, {0, 0, f}, {0, f, 0}};
  const auto gapped_hosts = coll::hosts_from_rates(gapped, /*fast_fraction=*/0.01);
  EXPECT_NE(gapped_hosts[0], gapped_hosts[1]);
  EXPECT_EQ(gapped_hosts[1], gapped_hosts[2]);
}

// --- hierarchy tree shape ----------------------------------------------------

/// Structural audit of the composed tree over every rank: each non-root
/// rank's parent lists it as a child, and the edge set is a spanning tree.
void expect_spanning(const coll::Topology& topo, std::size_t root) {
  const std::size_t n = topo.size();
  std::size_t edges = 0;
  for (std::size_t rank = 0; rank < n; ++rank) {
    const auto shape = coll::hierarchy_tree(rank, root, topo);
    if (rank == root) {
      EXPECT_EQ(shape.parent, coll::TreeShape::kNoParent);
    } else {
      ASSERT_NE(shape.parent, coll::TreeShape::kNoParent);
      ASSERT_LT(shape.parent, n);
      const auto parent = coll::hierarchy_tree(shape.parent, root, topo);
      EXPECT_NE(
          std::find(parent.children.begin(), parent.children.end(), rank),
          parent.children.end())
          << "root " << root << " rank " << rank;
    }
    edges += shape.children.size();
  }
  EXPECT_EQ(edges, n - 1) << "root " << root;
}

TEST(HierarchyTree, SpansEveryRootAndHostShape) {
  for (const auto& hosts : std::vector<std::vector<std::size_t>>{
           {0, 0, 0, 1, 1, 1},                    // two even hosts
           {0, 0, 0, 0, 1, 1, 1},                 // ragged split
           {0, 1, 1, 2, 2, 2, 2, 3},              // mixed sizes + singleton
           bench::group_labels(13, 3),            // ragged tail grouping
       }) {
    const coll::Topology topo = coll::Topology::from_hosts(hosts);
    for (std::size_t root = 0; root < topo.size(); ++root) {
      expect_spanning(topo, root);
    }
  }
}

TEST(HierarchyTree, OnlyLeadersCrossDomains) {
  const coll::Topology topo = coll::Topology::from_hosts({0, 0, 0, 1, 1, 1});
  const std::size_t root = 1;
  for (std::size_t rank = 0; rank < topo.size(); ++rank) {
    const auto shape = coll::hierarchy_tree(rank, root, topo);
    EXPECT_EQ(shape.levels, 2u);
    const bool is_leader =
        topo.leader(topo.domain_of(rank), root) == rank;
    for (std::size_t child : shape.children) {
      const bool crosses = topo.domain_of(child) != topo.domain_of(rank);
      if (crosses) {
        // Cross-domain edges connect leaders only, and hierarchy_tree
        // appends them after the intra-domain children so broadcast's
        // reverse iteration starts the slow edges first.
        EXPECT_TRUE(is_leader) << "rank " << rank << " child " << child;
        EXPECT_EQ(topo.leader(topo.domain_of(child), root), child);
      }
    }
    // Children lists are intra-first: once a cross-domain child appears,
    // no intra-domain child may follow.
    bool seen_inter = false;
    for (std::size_t child : shape.children) {
      const bool crosses = topo.domain_of(child) != topo.domain_of(rank);
      if (crosses) seen_inter = true;
      if (seen_inter) {
        EXPECT_TRUE(crosses) << "rank " << rank;
      }
    }
    // Non-leaders never leave their domain in either direction.
    if (!is_leader && shape.parent != coll::TreeShape::kNoParent) {
      EXPECT_EQ(topo.domain_of(shape.parent), topo.domain_of(rank));
    }
  }
}

TEST(HierarchyTree, FlatTopologyDegeneratesToBinomial) {
  const coll::Topology topo = coll::Topology::from_hosts({4, 4, 4, 4, 4});
  ASSERT_TRUE(topo.flat());
  for (std::size_t rank = 0; rank < 5; ++rank) {
    const auto hier = coll::hierarchy_tree(rank, /*root=*/2, topo);
    const auto flat = coll::binomial_tree(rank, /*root=*/2, 5);
    EXPECT_EQ(hier.parent, flat.parent);
    EXPECT_EQ(hier.children, flat.children);
    EXPECT_EQ(hier.depth, flat.depth);
    EXPECT_EQ(hier.levels, 1u);
  }
}

// --- sparse-mesh edge validation ---------------------------------------------

class EdgeValidation : public ::testing::Test {
 protected:
  void SetUp() override {
    util::set_panic_hook(+[](std::string_view msg) {
      throw std::runtime_error(std::string(msg));
    });
  }
  void TearDown() override { util::set_panic_hook(nullptr); }

  static MultiNodeConfig sparse(
      std::vector<std::pair<std::size_t, std::size_t>> edges) {
    MultiNodeConfig cfg;
    cfg.nodes = 4;
    cfg.progress_mode = ProgressMode::kSerial;
    cfg.edges = std::move(edges);
    return cfg;
  }
};

TEST_F(EdgeValidation, RejectsSelfLoops) {
  EXPECT_THROW(MultiNodePlatform{sparse({{1, 1}})}, std::runtime_error);
}

TEST_F(EdgeValidation, RejectsOutOfRangeEndpoints) {
  EXPECT_THROW(MultiNodePlatform{sparse({{0, 4}})}, std::runtime_error);
}

TEST_F(EdgeValidation, RejectsDuplicatesIncludingFlippedOnes) {
  EXPECT_THROW(MultiNodePlatform{sparse({{0, 1}, {0, 1}})},
               std::runtime_error);
  // {2, 1} is the same undirected edge as {1, 2}.
  EXPECT_THROW(MultiNodePlatform{sparse({{1, 2}, {2, 1}})},
               std::runtime_error);
}

TEST_F(EdgeValidation, AcceptsAValidSparseSetInEitherOrientation) {
  MultiNodePlatform platform(sparse({{2, 0}, {1, 3}}));
  EXPECT_TRUE(platform.has_gate(0, 2));
  EXPECT_TRUE(platform.has_gate(3, 1));
  EXPECT_FALSE(platform.has_gate(0, 1));
  EXPECT_EQ(platform.established_edges(), 2u);
  EXPECT_EQ(platform.lazy_edges(), 0u);
}

// --- lazy establishment ------------------------------------------------------

TEST(LazyPlatform, StartsEmptyAndEstablishesOnFirstUse) {
  MultiNodeConfig cfg;
  cfg.nodes = 5;
  cfg.lazy = true;
  cfg.progress_mode = ProgressMode::kSerial;
  MultiNodePlatform platform(cfg);
  EXPECT_EQ(platform.established_edges(), 0u);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) {
      EXPECT_FALSE(platform.has_gate(i, j)) << i << "," << j;
    }
  }

  // First use creates the edge (both directions at once); repeats are free.
  const GateId g02 = platform.ensure_gate(0, 2);
  EXPECT_EQ(platform.ensure_gate(0, 2), g02);
  EXPECT_TRUE(platform.has_gate(2, 0));
  EXPECT_EQ(platform.established_edges(), 1u);
  EXPECT_EQ(platform.lazy_edges(), 1u);

  // The lazily-built edge carries real traffic.
  util::Xoshiro256 rng(3);
  std::vector<std::byte> payload(20000), sink(20000);
  for (auto& b : payload) b = std::byte(rng.next() & 0xff);
  auto recv = platform.session(2).irecv(platform.gate(2, 0), 0, sink);
  auto send = platform.session(0).isend(g02, 0, payload);
  platform.session(0).wait(send);
  platform.session(2).wait(recv);
  EXPECT_EQ(sink, payload);

  if constexpr (obs::kMetricsEnabled) {
    obs::MetricsRegistry registry;
    platform.register_metrics(registry);
    const auto snap = registry.snapshot();
    EXPECT_EQ(snap.counters.at("platform.sessions_established"), 1);
    EXPECT_EQ(snap.counters.at("platform.sessions_lazy_created"), 1);
  }
}

TEST(LazyPlatform, NamedEdgesAreEagerTheRestLazy) {
  MultiNodeConfig cfg;
  cfg.nodes = 4;
  cfg.lazy = true;
  cfg.edges = {{0, 1}};
  cfg.progress_mode = ProgressMode::kSerial;
  MultiNodePlatform platform(cfg);
  EXPECT_TRUE(platform.has_gate(0, 1));
  EXPECT_EQ(platform.established_edges(), 1u);
  EXPECT_EQ(platform.lazy_edges(), 0u);
  (void)platform.ensure_gate(2, 3);
  EXPECT_EQ(platform.established_edges(), 2u);
  EXPECT_EQ(platform.lazy_edges(), 1u);
}

TEST(LazyPlatform, EnsureGateOnEagerWorldRejectsUnknownEdges) {
  util::set_panic_hook(+[](std::string_view msg) {
    throw std::runtime_error(std::string(msg));
  });
  MultiNodeConfig cfg;
  cfg.nodes = 3;
  cfg.edges = {{0, 1}};
  cfg.progress_mode = ProgressMode::kSerial;
  MultiNodePlatform platform(cfg);
  // A listed edge resolves; an unlisted one is a hard error, not a silent
  // on-demand build — only lazy worlds may grow.
  EXPECT_EQ(platform.ensure_gate(0, 1), platform.gate(0, 1));
  EXPECT_THROW((void)platform.ensure_gate(0, 2), std::runtime_error);
  util::set_panic_hook(nullptr);
}

TEST(LazyPlatform, CollectiveOverLazyWorldBuildsOnlyTreeEdges) {
  // 9 ranks on 3 hosts, lazy: a hierarchical broadcast must establish a
  // spanning tree's worth of edges (8), not the 36-edge mesh.
  MultiNodeConfig cfg;
  cfg.nodes = 9;
  cfg.hosts = bench::group_labels(9, 3);
  cfg.links = {netmodel::gige_tcp()};
  cfg.intra_host_links = {netmodel::myri10g()};
  cfg.strategy = "single_rail";
  cfg.lazy = true;
  cfg.progress_mode = ProgressMode::kSerial;
  MultiNodePlatform platform(cfg);

  std::vector<coll::Communicator> comms;
  for (std::size_t r = 0; r < 9; ++r) {
    comms.push_back(coll::make_communicator(platform, r));
  }
  util::Xoshiro256 rng(17);
  std::vector<std::vector<std::byte>> bufs(9, std::vector<std::byte>(50000));
  for (auto& b : bufs[0]) b = std::byte(rng.next() & 0xff);
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < 9; ++r) {
    ops.push_back(comms[r].ibcast(bufs[r], /*root=*/0));
  }
  ASSERT_TRUE(coll::wait_all(ops, coll::hooks_for(platform)));
  for (std::size_t r = 1; r < 9; ++r) EXPECT_EQ(bufs[r], bufs[0]);
  EXPECT_EQ(platform.established_edges(), 8u);
  EXPECT_EQ(platform.lazy_edges(), 8u);
}

// --- group labels (bench vocabulary feeding hosts) ---------------------------

TEST(GroupLabels, ContiguousWithRaggedTail) {
  EXPECT_EQ(bench::group_labels(6, 3), (std::vector<std::size_t>{0, 0, 0, 1, 1, 1}));
  // 7 = 3+3+1: the tail group holds the remainder.
  EXPECT_EQ(bench::group_labels(7, 3),
            (std::vector<std::size_t>{0, 0, 0, 1, 1, 1, 2}));
  EXPECT_EQ(bench::group_labels(2, 5), (std::vector<std::size_t>{0, 0}));
}

}  // namespace
