// Tests of the max-min fair fluid-flow model — the substrate that produces
// the paper's bus-contention effects (1675 MB/s greedy plateau, hetero-
// split approaching the bus ceiling).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "sim/engine.hpp"
#include "sim/fair_share.hpp"

namespace {

using namespace nmad::sim;

constexpr double kMB = 1.0e6;  // bytes per "MB" in bandwidth units

/// Expected ns to move `bytes` at `mbps`.
TimeNs ns_for(double bytes, double mbps) {
  return static_cast<TimeNs>(bytes * 1000.0 / mbps + 0.5);
}

TEST(FairShare, SingleFlowRunsAtLinkRate) {
  Engine engine;
  FairShareNet net(engine);
  const auto link = net.add_constraint(1000.0, "link");
  TimeNs done = -1;
  net.start_flow(static_cast<std::uint64_t>(kMB), {link}, [&] { done = engine.now(); });
  EXPECT_DOUBLE_EQ(net.flow_rate(FlowId{1}), 1000.0);
  engine.run();
  EXPECT_NEAR(static_cast<double>(done), static_cast<double>(ns_for(kMB, 1000.0)), 2.0);
}

TEST(FairShare, TwoFlowsShareOneLinkEqually) {
  Engine engine;
  FairShareNet net(engine);
  const auto link = net.add_constraint(1000.0, "link");
  std::vector<TimeNs> done;
  net.start_flow(static_cast<std::uint64_t>(kMB), {link},
                 [&] { done.push_back(engine.now()); });
  net.start_flow(static_cast<std::uint64_t>(kMB), {link},
                 [&] { done.push_back(engine.now()); });
  EXPECT_DOUBLE_EQ(net.constraint_load(link), 1000.0);  // conservation
  EXPECT_DOUBLE_EQ(net.flow_rate(FlowId{1}), 500.0);
  EXPECT_DOUBLE_EQ(net.flow_rate(FlowId{2}), 500.0);
  engine.run();
  ASSERT_EQ(done.size(), 2u);
  // Both finish together at 2 MB / 1000 MB/s.
  EXPECT_NEAR(static_cast<double>(done[1]), 2.0 * kMB, 1e4);
}

TEST(FairShare, HeterogeneousLinksUnderSharedBus) {
  // The paper's platform: myri (1210) + quadrics (858) crossing a 1950 bus.
  // Water-filling: fair share 975 each; quadrics freezes at 858; myri gets
  // the residual 1092.
  Engine engine;
  FairShareNet net(engine);
  const auto bus = net.add_constraint(1950.0, "bus");
  const auto myri = net.add_constraint(1210.0, "myri");
  const auto quad = net.add_constraint(858.0, "quad");

  net.start_flow(100 * static_cast<std::uint64_t>(kMB), {myri, bus}, nullptr);
  net.start_flow(100 * static_cast<std::uint64_t>(kMB), {quad, bus}, nullptr);

  EXPECT_NEAR(net.flow_rate(FlowId{1}), 1092.0, 1e-6);
  EXPECT_NEAR(net.flow_rate(FlowId{2}), 858.0, 1e-6);
  EXPECT_NEAR(net.constraint_load(bus), 1950.0, 1e-6);
  engine.run();
}

TEST(FairShare, RatesRecomputeWhenFlowFinishes) {
  Engine engine;
  FairShareNet net(engine);
  const auto link = net.add_constraint(1000.0, "link");
  // Flow 1: 1 MB; flow 2: 3 MB. They share until flow 1 drains at 2 ms,
  // then flow 2 runs alone.
  TimeNs done1 = -1, done2 = -1;
  net.start_flow(static_cast<std::uint64_t>(kMB), {link}, [&] { done1 = engine.now(); });
  net.start_flow(static_cast<std::uint64_t>(3 * kMB), {link},
                 [&] { done2 = engine.now(); });
  engine.run();
  // done1: 1MB at 500 => 2 ms. done2: 1MB at 500 (2ms) + 2MB at 1000 (2ms).
  EXPECT_NEAR(static_cast<double>(done1), 2.0e6, 1e4);
  EXPECT_NEAR(static_cast<double>(done2), 4.0e6, 1e4);
}

TEST(FairShare, LateJoinerSlowsExistingFlow) {
  Engine engine;
  FairShareNet net(engine);
  const auto link = net.add_constraint(1000.0, "link");
  TimeNs done1 = -1;
  net.start_flow(static_cast<std::uint64_t>(2 * kMB), {link},
                 [&] { done1 = engine.now(); });
  // After 1 ms (1 MB moved), a second flow joins.
  engine.schedule(1000000, [&] {
    net.start_flow(static_cast<std::uint64_t>(kMB), {link}, nullptr);
    EXPECT_DOUBLE_EQ(net.flow_rate(FlowId{1}), 500.0);
  });
  engine.run();
  // Flow 1: 1 MB at 1000 (1 ms) + 1 MB at 500 (2 ms) = 3 ms.
  EXPECT_NEAR(static_cast<double>(done1), 3.0e6, 1e4);
}

TEST(FairShare, ManyFlowsConserveEveryConstraint) {
  Engine engine;
  FairShareNet net(engine);
  const auto bus_a = net.add_constraint(2000.0, "bus_a");
  const auto bus_b = net.add_constraint(1500.0, "bus_b");
  std::vector<ConstraintId> links;
  for (int i = 0; i < 5; ++i) {
    links.push_back(net.add_constraint(400.0 + 100.0 * i, "link"));
  }
  for (int i = 0; i < 5; ++i) {
    net.start_flow(10 * static_cast<std::uint64_t>(kMB), {links[i], bus_a, bus_b},
                   nullptr);
  }
  // No constraint oversubscribed; every flow gets a positive rate.
  EXPECT_LE(net.constraint_load(bus_a), 2000.0 + 1e-6);
  EXPECT_LE(net.constraint_load(bus_b), 1500.0 + 1e-6);
  for (int i = 0; i < 5; ++i) {
    EXPECT_LE(net.constraint_load(links[i]), 400.0 + 100.0 * i + 1e-6);
    EXPECT_GT(net.flow_rate(FlowId{static_cast<std::uint64_t>(i + 1)}), 0.0);
  }
  // The tightest constraint (bus_b) is saturated.
  EXPECT_NEAR(net.constraint_load(bus_b), 1500.0, 1e-6);
  engine.run();
  EXPECT_EQ(net.active_flows(), 0u);
}

TEST(FairShare, ZeroByteFlowCompletesInstantly) {
  Engine engine;
  FairShareNet net(engine);
  const auto link = net.add_constraint(100.0, "link");
  TimeNs done = -1;
  net.start_flow(0, {link}, [&] { done = engine.now(); });
  engine.run();
  EXPECT_EQ(done, 0);
}

TEST(FairShare, CompletionCallbackCanStartNewFlow) {
  Engine engine;
  FairShareNet net(engine);
  const auto link = net.add_constraint(1000.0, "link");
  TimeNs done2 = -1;
  net.start_flow(static_cast<std::uint64_t>(kMB), {link}, [&] {
    net.start_flow(static_cast<std::uint64_t>(kMB), {link},
                   [&] { done2 = engine.now(); });
  });
  engine.run();
  EXPECT_NEAR(static_cast<double>(done2), 2.0e6, 1e4);
}

TEST(FairShare, MaxMinIsWorkConserving) {
  // A flow crossing only an uncontended link must get that link's full
  // capacity even while an unrelated bottleneck exists elsewhere.
  Engine engine;
  FairShareNet net(engine);
  const auto narrow = net.add_constraint(10.0, "narrow");
  const auto wide = net.add_constraint(1000.0, "wide");
  net.start_flow(static_cast<std::uint64_t>(kMB), {narrow}, nullptr);
  net.start_flow(static_cast<std::uint64_t>(kMB), {wide}, nullptr);
  EXPECT_DOUBLE_EQ(net.flow_rate(FlowId{1}), 10.0);
  EXPECT_DOUBLE_EQ(net.flow_rate(FlowId{2}), 1000.0);
  engine.run();
}

}  // namespace
