// Behavioral tests using the simulation trace: these assert on the
// *sequence of physical actions* (PIO occupancy, DMA programming, wire
// deliveries) rather than end-state — the level at which the paper argues.
#include <gtest/gtest.h>

#include <vector>

#include "core/platform.hpp"
#include "sim/trace.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> filled(std::size_t n) {
  return std::vector<std::byte>(n, std::byte{0x3c});
}

TEST(Trace, SmallMessageTakesPioPathOnly) {
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  p.world().trace().enable();

  const auto payload = filled(512);
  std::vector<std::byte> sink(512);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  auto& trace = p.world().trace();
  EXPECT_EQ(trace.count("pio.start"), 1u);
  EXPECT_EQ(trace.count("dma.start"), 0u);
  EXPECT_EQ(trace.count("deliver"), 1u);
}

TEST(Trace, LargeMessageDoesRendezvousThenDma) {
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  p.world().trace().enable();

  const auto payload = filled(200000);
  std::vector<std::byte> sink(200000);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  auto& trace = p.world().trace();
  // REQ and ACK ride the PIO path; the payload rides DMA, after both.
  EXPECT_EQ(trace.count("pio.start"), 2u);
  EXPECT_EQ(trace.count("dma.start"), 1u);
  const auto pio = trace.by_category("pio.start");
  const auto dma = trace.by_category("dma.start");
  EXPECT_LT(pio[0].time, dma[0].time);
  EXPECT_LT(pio[1].time, dma[0].time);
}

TEST(Trace, GreedySmallMessagesPioSerialize) {
  // Two eager sends on two rails: the second pio.start must not begin
  // before the first pio.done (single progression CPU).
  TwoNodePlatform p(pin_serial(paper_platform("greedy")));
  p.world().trace().enable();

  const auto payload = filled(4096);
  std::vector<std::byte> sink1(4096), sink2(4096);
  auto r1 = p.b().irecv(p.gate_ba(), 0, sink1);
  auto r2 = p.b().irecv(p.gate_ba(), 0, sink2);
  auto s1 = p.a().isend(p.gate_ab(), 0, payload);
  auto s2 = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait_all(std::vector<SendHandle>{s1, s2},
                 std::vector<RecvHandle>{r1, r2});

  auto& trace = p.world().trace();
  const auto starts = trace.by_category("pio.start");
  const auto dones = trace.by_category("pio.done");
  ASSERT_EQ(starts.size(), 2u);
  ASSERT_EQ(dones.size(), 2u);
  // Injection (CPU release) of packet 1 happens before packet 2's
  // injection completes at the earliest after its own copy: with one CPU,
  // done[1] - done[0] >= the second packet's full copy time.
  EXPECT_GE(dones[1].time - dones[0].time, sim::us_to_ns(4096 / 900.0));
}

TEST(Trace, ParallelPioCoresOverlap) {
  // Same workload on a 2-core progression engine (§4 future work): the
  // two PIO windows overlap, so the gap between completions shrinks to
  // (roughly) the difference of copy speeds.
  PlatformConfig cfg = paper_platform("greedy");
  cfg.host_a.pio_cores = 2;
  cfg.host_b.pio_cores = 2;
  TwoNodePlatform p(pin_serial(std::move(cfg)));
  p.world().trace().enable();

  const auto payload = filled(4096);
  std::vector<std::byte> sink1(4096), sink2(4096);
  auto r1 = p.b().irecv(p.gate_ba(), 0, sink1);
  auto r2 = p.b().irecv(p.gate_ba(), 0, sink2);
  auto s1 = p.a().isend(p.gate_ab(), 0, payload);
  auto s2 = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait_all(std::vector<SendHandle>{s1, s2},
                 std::vector<RecvHandle>{r1, r2});

  const auto dones = p.world().trace().by_category("pio.done");
  ASSERT_EQ(dones.size(), 2u);
  EXPECT_LT(dones[1].time - dones[0].time, sim::us_to_ns(4096 / 900.0));
}

TEST(Trace, SplitChunksStreamConcurrently) {
  // Adaptive stripping: both rails' DMA engines must be active at the same
  // virtual time for one message.
  TwoNodePlatform p(pin_serial(paper_platform("split_balance")));
  p.world().trace().enable();

  const auto payload = filled(1 << 20);
  std::vector<std::byte> sink(1 << 20);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  const auto starts = p.world().trace().by_category("dma.start");
  const auto dones = p.world().trace().by_category("dma.done");
  ASSERT_EQ(starts.size(), 2u);
  ASSERT_EQ(dones.size(), 2u);
  // Second chunk starts before the first finishes => true overlap.
  EXPECT_LT(starts[1].time, dones[0].time);
}

TEST(Trace, DumpRendersAllEvents) {
  TwoNodePlatform p(pin_serial(paper_platform("single_rail")));
  p.world().trace().enable();
  const auto payload = filled(16);
  std::vector<std::byte> sink(16);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  const std::string dump = p.world().trace().dump();
  EXPECT_NE(dump.find("pio.start"), std::string::npos);
  EXPECT_NE(dump.find("deliver"), std::string::npos);
  p.world().trace().clear();
  EXPECT_TRUE(p.world().trace().events().empty());
}

TEST(Determinism, IdenticalRunsProduceIdenticalVirtualTimes) {
  auto run_once = [] {
    TwoNodePlatform p(pin_serial(paper_platform("split_balance")));
    util::Xoshiro256 rng(11);
    std::vector<RecvHandle> recvs;
    std::vector<SendHandle> sends;
    std::vector<std::vector<std::byte>> bufs;
    for (int i = 0; i < 20; ++i) {
      const std::size_t size = 1 + rng.next_below(300000);
      bufs.emplace_back(size, std::byte{1});
      bufs.emplace_back(size, std::byte{0});
    }
    for (int i = 0; i < 20; ++i) {
      recvs.push_back(p.b().irecv(p.gate_ba(), 0, bufs[2 * i + 1]));
    }
    for (int i = 0; i < 20; ++i) {
      sends.push_back(p.a().isend(p.gate_ab(), 0, bufs[2 * i]));
    }
    p.b().wait_all(sends, recvs);
    return p.now();
  };
  const auto t1 = run_once();
  const auto t2 = run_once();
  EXPECT_EQ(t1, t2);
  EXPECT_GT(t1, 0);
}

}  // namespace
