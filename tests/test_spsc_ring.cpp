// SpscRing unit + stress coverage: capacity rounding, full/empty
// boundaries, wraparound correctness, move semantics of slots, and a
// two-thread soak (1M ops) that TSan exercises for ordering bugs — the
// ring is the lock-free spine of the threaded progression engine.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "core/spsc_ring.hpp"

namespace {

using nmad::core::SpscRing;
using nmad::core::spsc_push_backoff;

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(1).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(2).capacity(), 2u);
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(4).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1000).capacity(), 1024u);
  EXPECT_EQ(SpscRing<int>(1024).capacity(), 1024u);
}

TEST(SpscRing, PushPopSingleElement) {
  SpscRing<int> ring(4);
  EXPECT_TRUE(ring.empty());
  EXPECT_TRUE(ring.try_push(42));
  EXPECT_FALSE(ring.empty());
  EXPECT_EQ(ring.size(), 1u);
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 42);
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PopOnEmptyFails) {
  SpscRing<int> ring(4);
  int out = 0;
  EXPECT_FALSE(ring.try_pop(out));
  // ... including right after a push/pop pair returned it to empty.
  EXPECT_TRUE(ring.try_push(1));
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_FALSE(ring.try_pop(out));
}

TEST(SpscRing, PushOnFullFailsAndDoesNotConsume) {
  SpscRing<std::unique_ptr<int>> ring(4);
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.try_push(std::make_unique<int>(i)));
  }
  EXPECT_EQ(ring.size(), ring.capacity());
  auto extra = std::make_unique<int>(99);
  EXPECT_FALSE(ring.try_push(std::move(extra)));
  // A failed push must leave the value intact for a retry.
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 99);
  // Freeing one slot makes the retry succeed.
  std::unique_ptr<int> out;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(*out, 0);
  EXPECT_TRUE(ring.try_push(std::move(extra)));
}

TEST(SpscRing, FifoAcrossWraparound) {
  SpscRing<std::uint64_t> ring(8);
  std::uint64_t next_push = 0, next_pop = 0;
  // Interleave pushes and pops so the indices wrap the 8-slot ring many
  // times, at every possible phase offset.
  for (int round = 0; round < 100; ++round) {
    const int burst = 1 + round % 8;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_push(next_push + 0));
      ++next_push;
    }
    std::uint64_t out = 0;
    for (int i = 0; i < burst; ++i) {
      ASSERT_TRUE(ring.try_pop(out));
      ASSERT_EQ(out, next_pop);
      ++next_pop;
    }
  }
  EXPECT_TRUE(ring.empty());
}

TEST(SpscRing, PoppedSlotReleasesItsElement) {
  SpscRing<std::shared_ptr<int>> ring(4);
  auto tracked = std::make_shared<int>(7);
  std::weak_ptr<int> weak = tracked;
  ASSERT_TRUE(ring.try_push(std::move(tracked)));
  std::shared_ptr<int> out;
  ASSERT_TRUE(ring.try_pop(out));
  out.reset();
  // The ring must not retain a copy in the vacated slot.
  EXPECT_TRUE(weak.expired());
}

// --- backpressure path (spsc_push_backoff) -----------------------------------

TEST(SpscRingBackpressure, FastPathDoesNotStall) {
  SpscRing<int> ring(4);
  int stalls = 0;
  EXPECT_TRUE(spsc_push_backoff(ring, 1, 0, [&] { ++stalls; }));
  EXPECT_EQ(stalls, 0);  // room available: the stall hook must not fire
  int out = 0;
  EXPECT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1);
}

TEST(SpscRingBackpressure, BoundedSpinOnFullCountsOneStallAndPreservesValue) {
  SpscRing<std::unique_ptr<int>> ring(2);
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(0)));
  ASSERT_TRUE(ring.try_push(std::make_unique<int>(1)));
  int stalls = 0;
  auto extra = std::make_unique<int>(99);
  // Nobody drains: the bounded spin must give up, fire the stall hook
  // exactly once, and hand the value back intact for the spill path.
  EXPECT_FALSE(spsc_push_backoff(ring, std::move(extra), 8, [&] { ++stalls; }));
  EXPECT_EQ(stalls, 1);
  ASSERT_NE(extra, nullptr);
  EXPECT_EQ(*extra, 99);
}

TEST(SpscRingBackpressure, SpinSucceedsOnceConsumerDrains) {
  SpscRing<std::uint64_t> ring(2);
  ASSERT_TRUE(ring.try_push(0));
  ASSERT_TRUE(ring.try_push(1));
  std::atomic<int> stalls{0};

  std::thread producer([&] {
    // Effectively unbounded budget: must block until the consumer makes
    // room, then deliver — losslessly, with exactly one stall counted.
    EXPECT_TRUE(spsc_push_backoff(ring, std::uint64_t{2}, ~std::uint64_t{0},
                                  [&] { stalls.fetch_add(1); }));
  });

  // Give the producer time to hit the full ring, then drain one slot.
  while (stalls.load() == 0) std::this_thread::yield();
  std::uint64_t out = 0;
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 0u);
  producer.join();
  EXPECT_EQ(stalls.load(), 1);
  // FIFO held across the stall: 1 then the late 2.
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 1u);
  ASSERT_TRUE(ring.try_pop(out));
  EXPECT_EQ(out, 2u);
}

// Two-thread soak through spsc_push_backoff on a tiny ring: every push
// stalls constantly, nothing may be lost or reordered — the lossless
// guarantee the progression engine's submission path relies on.
TEST(SpscRingBackpressure, TwoThreadStressLossless) {
  constexpr std::uint64_t kOps = 100'000;
  SpscRing<std::uint64_t> ring(4);
  std::atomic<std::uint64_t> stalls{0};

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kOps; ++i) {
      ASSERT_TRUE(spsc_push_backoff(ring, i + 0, ~std::uint64_t{0},
                                    [&] { stalls.fetch_add(1); }));
    }
  });

  std::uint64_t received = 0;
  while (received < kOps) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, received);
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

// Two-thread soak: 1M elements streamed through a deliberately small ring
// so both the full and the empty boundary are hit constantly. Values must
// arrive intact, in order, exactly once. Run under TSan this doubles as
// the memory-ordering proof for the Lamport queue.
TEST(SpscRing, TwoThreadStress1MOps) {
  constexpr std::uint64_t kOps = 1'000'000;
  SpscRing<std::uint64_t> ring(64);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kOps;) {
      if (ring.try_push(i + 0)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t received = 0;
  std::uint64_t checksum = 0;
  while (received < kOps) {
    std::uint64_t out = 0;
    if (ring.try_pop(out)) {
      ASSERT_EQ(out, received);  // strict FIFO, no loss, no duplication
      checksum += out;
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(checksum, kOps * (kOps - 1) / 2);
}

// Same soak with a payload that owns memory: ASan/TSan catch double-frees
// or leaks if a slot is dropped or handed out twice.
TEST(SpscRing, TwoThreadStressOwningPayload) {
  constexpr std::uint64_t kOps = 100'000;
  SpscRing<std::unique_ptr<std::uint64_t>> ring(32);

  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kOps;) {
      auto v = std::make_unique<std::uint64_t>(i);
      if (ring.try_push(std::move(v))) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });

  std::uint64_t received = 0;
  while (received < kOps) {
    std::unique_ptr<std::uint64_t> out;
    if (ring.try_pop(out)) {
      ASSERT_NE(out, nullptr);
      ASSERT_EQ(*out, received);
      ++received;
    } else {
      std::this_thread::yield();
    }
  }
  producer.join();
  EXPECT_TRUE(ring.empty());
}

}  // namespace
