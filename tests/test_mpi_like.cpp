// Tests of the MPI-flavored API layer.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/mpi_like.hpp"
#include "core/platform.hpp"
#include "util/panic.hpp"

namespace {

using namespace nmad;

struct CommFixture {
  core::TwoNodePlatform platform{core::paper_platform("aggreg_greedy")};
  api::Communicator a{platform.a(), platform.gate_ab()};
  api::Communicator b{platform.b(), platform.gate_ba()};
};

TEST(MpiLike, TypedBlockingSendRecv) {
  CommFixture f;
  std::vector<double> data(1000);
  std::iota(data.begin(), data.end(), 0.0);
  std::vector<double> out(1000);

  auto recv = f.b.irecv(std::span<double>(out), 1);
  f.a.send(std::span<const double>(data), 1);
  recv.wait();
  EXPECT_EQ(recv.status().bytes, 1000u * sizeof(double));
  EXPECT_EQ(recv.status().tag, 1u);
  EXPECT_EQ(out, data);
}

TEST(MpiLike, NonBlockingTestAndWait) {
  CommFixture f;
  std::vector<int> data(64, 7);
  std::vector<int> out(64);

  api::MpiRequest recv = f.b.irecv(std::span<int>(out), 2);
  EXPECT_FALSE(recv.test());
  api::MpiRequest send = f.a.isend(std::span<const int>(data), 2);
  recv.wait();
  send.wait();
  EXPECT_TRUE(recv.test());
  EXPECT_TRUE(send.test());
  EXPECT_EQ(out, data);
}

TEST(MpiLike, SendrecvExchangesBothDirections) {
  CommFixture f;
  std::vector<std::byte> out_a(4096), out_b(4096);
  std::vector<std::byte> data_a(4096, std::byte{0xaa});
  std::vector<std::byte> data_b(4096, std::byte{0xbb});

  // Both sides call sendrecv "simultaneously": to avoid driving the world
  // from one side before the other posts, use the non-blocking pieces for
  // side b and the blocking sendrecv on side a.
  auto recv_b = f.b.irecv_bytes(out_b, 5);
  auto send_b = f.a.session().scheduler().pending_requests();  // just probe
  (void)send_b;
  auto send_back = f.b.isend_bytes(data_b, 6);
  const api::RecvStatus st = f.a.sendrecv(data_a, 5, out_a, 6);
  recv_b.wait();
  send_back.wait();

  EXPECT_EQ(st.bytes, 4096u);
  EXPECT_EQ(out_a, data_b);
  EXPECT_EQ(out_b, data_a);
}

TEST(MpiLike, BarrierSynchronizesTwoParties) {
  CommFixture f;
  // a reaches the barrier "late": b posts its token first, then a enters.
  auto token_b_recv = f.b.session().irecv(f.b.gate(), 0xffffffffu, {});
  auto token_b_send = f.b.session().isend(f.b.gate(), 0xffffffffu, {});
  f.a.barrier();
  f.b.session().wait(token_b_recv);
  f.b.session().wait(token_b_send);
  EXPECT_GT(f.platform.now(), 0);
}

TEST(MpiLike, LargeTypedTransferUsesMultiRail) {
  CommFixture f;
  std::vector<std::uint64_t> data(1 << 17);  // 1 MB
  std::iota(data.begin(), data.end(), 0u);
  std::vector<std::uint64_t> out(data.size());

  auto recv = f.b.irecv(std::span<std::uint64_t>(out), 3);
  f.a.send(std::span<const std::uint64_t>(data), 3);
  recv.wait();
  EXPECT_EQ(out, data);
  // The greedy strategy moved the bulk over at least one DMA track.
  auto& gate = f.platform.a().scheduler().gate(f.platform.gate_ab());
  EXPECT_GE(gate.rail(0).tx.packets[1] + gate.rail(1).tx.packets[1], 1u);
}

TEST(MpiLike, NullRequestIsTriviallyComplete) {
  api::MpiRequest req;
  EXPECT_TRUE(req.test());
  req.wait();  // no-op, must not crash
}

TEST(MpiLike, RejectsTagsInReservedSpace) {
  // Regression: user tags at or above kReservedTagBase would cross-match
  // collective streams or the barrier token; both posting paths must
  // reject them (and the largest user tag must still work).
  CommFixture f;
  std::vector<std::byte> buf(16);
  util::set_panic_hook(+[](std::string_view msg) {
    throw std::runtime_error(std::string(msg));
  });
  EXPECT_THROW((void)f.a.isend_bytes(buf, core::kReservedTagBase),
               std::runtime_error);
  EXPECT_THROW((void)f.b.irecv_bytes(buf, core::kReservedTagBase),
               std::runtime_error);
  EXPECT_THROW((void)f.a.isend_bytes(buf, 0xffffffffu), std::runtime_error);
  util::set_panic_hook(nullptr);

  auto recv = f.b.irecv_bytes(buf, core::kReservedTagBase - 1);
  std::vector<std::byte> data(16, std::byte{0x5a});
  f.a.send_bytes(data, core::kReservedTagBase - 1);
  recv.wait();
  EXPECT_EQ(buf, data);
}

TEST(MpiLike, NPartyBarrierSynchronizesAllRanks) {
  // Four ranks, threaded progression, one app thread per rank blocking in
  // barrier() — the generalized form of the two-party token exchange.
  core::MultiNodeConfig cfg;
  cfg.nodes = 4;
  cfg.progress_mode = core::ProgressMode::kThreaded;
  core::MultiNodePlatform platform(cfg);

  std::vector<api::Communicator> comms;
  comms.reserve(cfg.nodes);
  for (std::size_t r = 0; r < cfg.nodes; ++r) {
    comms.emplace_back(platform.session(r), platform.gates_from(r), r);
    EXPECT_EQ(comms.back().size(), cfg.nodes);
    EXPECT_EQ(comms.back().rank(), r);
  }

  for (int iteration = 0; iteration < 3; ++iteration) {
    std::atomic<int> entered{0};
    std::vector<std::thread> threads;
    for (std::size_t r = 0; r < cfg.nodes; ++r) {
      threads.emplace_back([&, r] {
        entered.fetch_add(1);
        comms[r].barrier();
        // Nobody may leave before everybody entered.
        EXPECT_EQ(entered.load(), static_cast<int>(cfg.nodes));
      });
    }
    for (auto& t : threads) t.join();
  }
}

}  // namespace
