// End-to-end smoke tests: bytes really travel from one session to the
// other through the full stack (collect -> strategy -> driver -> wire ->
// reassembly -> matching).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

TEST(Smoke, SmallMessageRoundTrip) {
  core::TwoNodePlatform p(core::paper_platform("single_rail"));
  const auto payload = random_bytes(1024, 1);
  std::vector<std::byte> sink(1024);

  auto recv = p.b().irecv(p.gate_ba(), 42, sink);
  auto send = p.a().isend(p.gate_ab(), 42, payload);
  p.b().wait(recv);
  p.a().wait(send);

  EXPECT_EQ(recv->received_len(), 1024u);
  EXPECT_EQ(payload, sink);
  EXPECT_GT(p.now(), 0);
}

TEST(Smoke, LargeMessageUsesRendezvous) {
  core::TwoNodePlatform p(core::paper_platform("single_rail"));
  const auto payload = random_bytes(1 << 20, 2);
  std::vector<std::byte> sink(1 << 20);

  auto recv = p.b().irecv(p.gate_ba(), 7, sink);
  auto send = p.a().isend(p.gate_ab(), 7, payload);
  p.b().wait(recv);
  p.a().wait(send);

  EXPECT_EQ(payload, sink);
  // The bulk must have traveled on the DMA track.
  EXPECT_GE(p.rails_a()[0]->stats().dma_packets, 1u);
}

TEST(Smoke, EveryStrategyDeliversCorrectly) {
  for (std::string_view name : strat::strategy_names()) {
    core::TwoNodePlatform p(core::paper_platform(std::string(name)));
    const auto payload = random_bytes(200000, 3);
    std::vector<std::byte> sink(200000);

    auto recv = p.b().irecv(p.gate_ba(), 1, sink);
    auto send = p.a().isend(p.gate_ab(), 1, payload);
    p.b().wait(recv);
    p.a().wait(send);
    EXPECT_EQ(payload, sink) << "strategy " << name;
  }
}

}  // namespace
