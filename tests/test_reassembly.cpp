// Reassembly tests: arbitrary chunk orders, interval merging, overlap
// rejection, rebind migration, and randomized permutation properties.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "proto/reassembly.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad::proto;

std::vector<std::byte> pattern(std::size_t n) {
  std::vector<std::byte> out(n);
  for (std::size_t i = 0; i < n; ++i) out[i] = std::byte(i * 7 + 1);
  return out;
}

TEST(Reassembly, InOrderChunks) {
  const auto src = pattern(100);
  std::vector<std::byte> dest(100);
  MessageAssembly assembly(dest);
  EXPECT_FALSE(assembly.complete());
  EXPECT_TRUE(assembly.add_chunk(0, std::span(src).subspan(0, 40)).has_value());
  EXPECT_EQ(assembly.fragment_count(), 1u);
  EXPECT_TRUE(assembly.add_chunk(40, std::span(src).subspan(40, 60)).has_value());
  EXPECT_TRUE(assembly.complete());
  EXPECT_EQ(assembly.fragment_count(), 1u);  // merged
  EXPECT_EQ(dest, src);
}

TEST(Reassembly, OutOfOrderChunksMerge) {
  const auto src = pattern(90);
  std::vector<std::byte> dest(90);
  MessageAssembly assembly(dest);
  EXPECT_TRUE(assembly.add_chunk(60, std::span(src).subspan(60, 30)).has_value());
  EXPECT_TRUE(assembly.add_chunk(0, std::span(src).subspan(0, 30)).has_value());
  EXPECT_EQ(assembly.fragment_count(), 2u);
  EXPECT_FALSE(assembly.complete());
  EXPECT_TRUE(assembly.add_chunk(30, std::span(src).subspan(30, 30)).has_value());
  EXPECT_TRUE(assembly.complete());
  EXPECT_EQ(assembly.fragment_count(), 1u);
  EXPECT_EQ(dest, src);
}

TEST(Reassembly, RejectsOverlaps) {
  const auto src = pattern(64);
  std::vector<std::byte> dest(64);
  MessageAssembly assembly(dest);
  EXPECT_TRUE(assembly.add_chunk(10, std::span(src).subspan(10, 20)).has_value());
  // A fully-covered duplicate (failover repost / retransmission whose
  // original landed) is tolerated but applies nothing.
  auto dup = assembly.add_chunk(10, std::span(src).subspan(10, 20));
  ASSERT_TRUE(dup.has_value());
  EXPECT_FALSE(*dup);
  EXPECT_EQ(assembly.bytes_received(), 20u);
  // Sub-range duplicate is also fully covered: tolerated.
  auto sub = assembly.add_chunk(15, std::span(src).subspan(15, 5));
  ASSERT_TRUE(sub.has_value());
  EXPECT_FALSE(*sub);
  // Partial front overlap, partial back overlap, engulfing: still errors.
  EXPECT_FALSE(assembly.add_chunk(5, std::span(src).subspan(5, 10)).has_value());
  EXPECT_FALSE(assembly.add_chunk(25, std::span(src).subspan(25, 10)).has_value());
  EXPECT_FALSE(assembly.add_chunk(0, std::span(src).subspan(0, 64)).has_value());
  // Adjacent (non-overlapping) chunks are fine.
  EXPECT_TRUE(assembly.add_chunk(0, std::span(src).subspan(0, 10)).has_value());
  EXPECT_TRUE(assembly.add_chunk(30, std::span(src).subspan(30, 34)).has_value());
  EXPECT_TRUE(assembly.complete());
}

TEST(Reassembly, RejectsOutOfBounds) {
  const auto src = pattern(32);
  std::vector<std::byte> dest(16);
  MessageAssembly assembly(dest);
  EXPECT_FALSE(assembly.add_chunk(0, std::span(src).subspan(0, 17)).has_value());
  EXPECT_FALSE(assembly.add_chunk(16, std::span(src).subspan(0, 1)).has_value());
  EXPECT_TRUE(assembly.add_chunk(15, std::span(src).subspan(0, 1)).has_value());
}

TEST(Reassembly, EmptyMessageIsCompleteImmediately) {
  MessageAssembly assembly({});
  EXPECT_TRUE(assembly.complete());
  EXPECT_EQ(assembly.total_bytes(), 0u);
  // Empty chunk is a no-op.
  EXPECT_TRUE(assembly.add_chunk(0, {}).has_value());
}

TEST(Reassembly, RebindMigratesReceivedRanges) {
  const auto src = pattern(80);
  std::vector<std::byte> temp(80);
  std::vector<std::byte> user(80, std::byte{0xee});
  MessageAssembly assembly(temp);
  EXPECT_TRUE(assembly.add_chunk(0, std::span(src).subspan(0, 20)).has_value());
  EXPECT_TRUE(assembly.add_chunk(50, std::span(src).subspan(50, 30)).has_value());

  assembly.rebind(user);
  // Received ranges copied; the hole untouched.
  EXPECT_TRUE(std::equal(src.begin(), src.begin() + 20, user.begin()));
  EXPECT_TRUE(std::equal(src.begin() + 50, src.end(), user.begin() + 50));
  EXPECT_EQ(user[30], std::byte{0xee});

  // Further chunks land in the new buffer.
  EXPECT_TRUE(assembly.add_chunk(20, std::span(src).subspan(20, 30)).has_value());
  EXPECT_TRUE(assembly.complete());
  EXPECT_EQ(user, src);
}

TEST(Reassembly, RandomPermutationsReconstructExactly) {
  nmad::util::Xoshiro256 rng(7);
  for (int round = 0; round < 50; ++round) {
    const std::size_t total = 1 + rng.next_below(5000);
    const auto src = pattern(total);

    // Random partition into chunks.
    std::vector<std::pair<std::size_t, std::size_t>> chunks;
    std::size_t off = 0;
    while (off < total) {
      const std::size_t len = 1 + rng.next_below(std::min<std::size_t>(600, total - off));
      chunks.emplace_back(off, len);
      off += len;
    }
    std::shuffle(chunks.begin(), chunks.end(), rng);

    std::vector<std::byte> dest(total);
    MessageAssembly assembly(dest);
    for (std::size_t i = 0; i < chunks.size(); ++i) {
      EXPECT_FALSE(assembly.complete());
      auto [o, l] = chunks[i];
      ASSERT_TRUE(assembly.add_chunk(o, std::span(src).subspan(o, l)).has_value());
      EXPECT_EQ(assembly.bytes_received(),
                std::accumulate(chunks.begin(), chunks.begin() + i + 1, 0ull,
                                [](std::uint64_t acc, auto c) { return acc + c.second; }));
    }
    EXPECT_TRUE(assembly.complete());
    EXPECT_EQ(assembly.fragment_count(), 1u);
    EXPECT_EQ(dest, src);
  }
}

}  // namespace
