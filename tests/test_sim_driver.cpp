// Simulated-driver semantics: PIO serialization on the host CPU, DMA
// overlap under bus contention, eager FIFO delivery, poll penalties, and
// calibration of the presets against the paper's platform numbers.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "drv/sim_driver.hpp"
#include "drv/sim_world.hpp"
#include "netmodel/nic_profile.hpp"
#include "proto/wire.hpp"
#include "sim/time.hpp"

namespace {

using namespace nmad;
using namespace nmad::drv;

struct Fixture {
  SimWorld world;
  NodeId na, nb;
  SimDriver* myri_a = nullptr;
  SimDriver* myri_b = nullptr;
  SimDriver* quad_a = nullptr;
  SimDriver* quad_b = nullptr;

  Fixture() {
    netmodel::HostProfile host;
    na = world.add_node(host);
    nb = world.add_node(host);
    std::tie(myri_a, myri_b) = world.add_link(na, nb, netmodel::myri10g());
    std::tie(quad_a, quad_b) = world.add_link(na, nb, netmodel::quadrics_qm500());
  }
};

std::vector<std::byte> data_packet(std::uint32_t payload_len) {
  std::vector<std::byte> payload(payload_len, std::byte{0x7f});
  return proto::encode_data_packet(
      proto::SegHeader{0, 0, 0, payload_len, payload_len}, payload);
}

TEST(SimDriver, CapsReflectProfile) {
  Fixture f;
  EXPECT_EQ(f.myri_a->caps().name, "myri10g");
  EXPECT_NEAR(f.myri_a->caps().latency_us, 2.8, 1e-9);
  EXPECT_NEAR(f.quad_a->caps().latency_us, 1.7, 1e-9);
  EXPECT_EQ(f.myri_a->caps().max_small_packet, 8u * 1024);
  EXPECT_GT(f.myri_a->caps().bandwidth_mbps, f.quad_a->caps().bandwidth_mbps);
}

TEST(SimDriver, MinimalEagerLatencyMatchesPaper) {
  Fixture f;
  sim::TimeNs delivered = -1;
  f.myri_b->set_deliver([&](Track, std::span<const std::byte>) {
    delivered = f.world.now();
  });
  f.quad_b->set_deliver([](Track, std::span<const std::byte>) {});

  f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(4), 0.0}, nullptr);
  f.world.engine().run();
  // 2.8 us host+wire latency, + PIO copy of the 40-byte header+payload,
  // + the poll penalty for the receiver's second (Quadrics) rail.
  const double us = sim::ns_to_us(delivered);
  EXPECT_NEAR(us, 2.8 + 40.0 / 900.0 + 0.3, 0.02);
}

TEST(SimDriver, TrackBusyUntilSendCompletes) {
  Fixture f;
  f.myri_b->set_deliver([](Track, std::span<const std::byte>) {});
  EXPECT_TRUE(f.myri_a->send_idle(Track::kSmall));
  bool sent = false;
  f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(1024), 0.0},
                      [&] { sent = true; });
  EXPECT_FALSE(f.myri_a->send_idle(Track::kSmall));
  EXPECT_TRUE(f.myri_a->send_idle(Track::kLarge));  // tracks independent
  f.world.engine().run();
  EXPECT_TRUE(sent);
  EXPECT_TRUE(f.myri_a->send_idle(Track::kSmall));
}

TEST(SimDriver, PioSendsOnDistinctRailsSerializeOnCpu) {
  // The paper's key small-message effect (§3.2): the host CPU is the
  // bottleneck, so "parallel" PIO sends on two NICs are sequential.
  Fixture f;
  sim::TimeNs myri_sent = -1, quad_sent = -1;
  f.myri_b->set_deliver([](Track, std::span<const std::byte>) {});
  f.quad_b->set_deliver([](Track, std::span<const std::byte>) {});

  const auto pkt = data_packet(4096);
  f.myri_a->post_send(SendDesc{Track::kSmall, pkt, 0.0},
                      [&] { myri_sent = f.world.now(); });
  f.quad_a->post_send(SendDesc{Track::kSmall, pkt, 0.0},
                      [&] { quad_sent = f.world.now(); });
  f.world.engine().run();

  const double myri_cpu = 1.0 + (4096 + 36) / 900.0;  // o_send + copy
  const double quad_cpu = 0.6 + (4096 + 36) / 700.0;
  EXPECT_NEAR(sim::ns_to_us(myri_sent), myri_cpu, 0.02);
  // The Quadrics copy cannot start until the Myri copy released the CPU.
  EXPECT_NEAR(sim::ns_to_us(quad_sent), myri_cpu + quad_cpu, 0.02);
}

TEST(SimDriver, DmaSendsOverlapAndShareTheBus) {
  // The paper's large-message effect: DMA engines work in parallel, capped
  // by the ~2 GB/s host I/O bus -> aggregate ~1675-1950 MB/s.
  Fixture f;
  sim::TimeNs myri_done = -1, quad_done = -1;
  f.myri_b->set_deliver([](Track, std::span<const std::byte>) {});
  f.quad_b->set_deliver([](Track, std::span<const std::byte>) {});

  const std::uint32_t len = 4 * 1024 * 1024;
  f.myri_a->post_send(SendDesc{Track::kLarge, data_packet(len), 0.0},
                      [&] { myri_done = f.world.now(); });
  f.quad_a->post_send(SendDesc{Track::kLarge, data_packet(len), 0.0},
                      [&] { quad_done = f.world.now(); });
  f.world.engine().run();

  // Quadrics runs at its link rate (858); Myri at the bus residual (1092).
  const double quad_us = sim::ns_to_us(quad_done);
  const double myri_us = sim::ns_to_us(myri_done);
  EXPECT_NEAR(myri_us, len / 1092.0, len / 1092.0 * 0.02);
  EXPECT_NEAR(quad_us, len / 858.0, len / 858.0 * 0.02);
  // True overlap: total wall time far below the serialized sum.
  EXPECT_LT(std::max(myri_us, quad_us), len / 1210.0 + len / 858.0);
}

TEST(SimDriver, EagerDeliveryIsFifoPerRail) {
  Fixture f;
  std::vector<std::size_t> sizes;
  f.myri_b->set_deliver([&](Track, std::span<const std::byte> wire) {
    sizes.push_back(wire.size());
    // The next packet can only be posted once the track frees; emulate a
    // pipelined sender posting back-to-back from completions.
  });
  f.quad_b->set_deliver([](Track, std::span<const std::byte>) {});

  // Chain three sends of decreasing size; FIFO delivery must preserve order
  // even though the later (smaller) packets spend less time in PIO.
  f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(8000), 0.0}, [&] {
    f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(100), 0.0}, [&] {
      f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(4), 0.0}, nullptr);
    });
  });
  f.world.engine().run();
  ASSERT_EQ(sizes.size(), 3u);
  EXPECT_GT(sizes[0], sizes[1]);
  EXPECT_GT(sizes[1], sizes[2]);
}

TEST(SimDriver, PollPenaltyScalesWithOtherRails) {
  // One node with three rails: a delivery on one rail pays the poll costs
  // of the other two.
  SimWorld world;
  netmodel::HostProfile host;
  const NodeId na = world.add_node(host);
  const NodeId nb = world.add_node(host);
  auto [m_a, m_b] = world.add_link(na, nb, netmodel::myri10g());
  auto [q_a, q_b] = world.add_link(na, nb, netmodel::quadrics_qm500());
  auto [s_a, s_b] = world.add_link(na, nb, netmodel::dolphin_sci());
  (void)q_a;
  (void)s_a;

  // myri delivery on node b: polls quadrics (0.3) + sci (0.3).
  EXPECT_EQ(world.poll_penalty(nb, m_b), sim::us_to_ns(0.6));
  EXPECT_EQ(world.poll_penalty(nb, q_b), sim::us_to_ns(0.4 + 0.3));
  EXPECT_EQ(world.poll_penalty(nb, s_b), sim::us_to_ns(0.4 + 0.3));
}

TEST(SimDriver, StatsCountPacketsAndBytes) {
  Fixture f;
  int delivered = 0;
  f.myri_b->set_deliver([&](Track, std::span<const std::byte>) { ++delivered; });
  f.quad_b->set_deliver([](Track, std::span<const std::byte>) {});

  f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(100), 0.0}, nullptr);
  f.myri_a->post_send(SendDesc{Track::kLarge, data_packet(100000), 0.0}, nullptr);
  f.world.engine().run();

  EXPECT_EQ(f.myri_a->stats().eager_packets, 1u);
  EXPECT_EQ(f.myri_a->stats().dma_packets, 1u);
  EXPECT_GT(f.myri_a->stats().eager_bytes, 100u);
  EXPECT_GT(f.myri_a->stats().dma_bytes, 100000u);
  EXPECT_EQ(f.myri_b->stats().delivered_packets, 2u);
  EXPECT_EQ(delivered, 2);
}

TEST(SimDriver, ExtraCpuDelaysEagerInjection) {
  Fixture f;
  sim::TimeNs t_plain = -1, t_extra = -1;
  f.myri_b->set_deliver([](Track, std::span<const std::byte>) {});
  f.quad_b->set_deliver([](Track, std::span<const std::byte>) {});

  f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(64), 0.0},
                      [&] { t_plain = f.world.now(); });
  f.world.engine().run();
  const sim::TimeNs cpu_cost = t_plain;  // first send started at t=0

  const sim::TimeNs t1 = f.world.now();
  f.myri_a->post_send(SendDesc{Track::kSmall, data_packet(64), 5.0},
                      [&] { t_extra = f.world.now(); });
  f.world.engine().run();
  EXPECT_EQ(t_extra - t1, cpu_cost + sim::us_to_ns(5.0));
}

TEST(NicProfiles, PresetsValidateAndCalibrate) {
  for (const char* name : {"myri10g", "quadrics", "sci", "gm2", "tcp"}) {
    const auto profile = netmodel::nic_profile_by_name(name);
    ASSERT_TRUE(profile.has_value()) << name;
    EXPECT_TRUE(profile->validate().has_value()) << name;
  }
  EXPECT_FALSE(netmodel::nic_profile_by_name("ethernet").has_value());
  EXPECT_NEAR(netmodel::myri10g().min_latency_us(), 2.8, 1e-9);
  EXPECT_NEAR(netmodel::quadrics_qm500().min_latency_us(), 1.7, 1e-9);
}

TEST(NicProfiles, ValidationCatchesBadFields) {
  auto p = netmodel::myri10g();
  p.pio_bandwidth_mbps = 0.0;
  EXPECT_FALSE(p.validate().has_value());
  p = netmodel::myri10g();
  p.pio_threshold = 0;
  EXPECT_FALSE(p.validate().has_value());
  p = netmodel::myri10g();
  p.poll_cost_us = -1.0;
  EXPECT_FALSE(p.validate().has_value());
  p = netmodel::myri10g();
  p.name.clear();
  EXPECT_FALSE(p.validate().has_value());

  netmodel::HostProfile h;
  h.pio_cores = 0;
  EXPECT_FALSE(h.validate().has_value());
  h = netmodel::HostProfile{};
  h.bus_bandwidth_mbps = -5;
  EXPECT_FALSE(h.validate().has_value());
}

}  // namespace
