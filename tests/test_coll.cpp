// Collectives layer tests: the N-node correctness matrix ({3,4,7} ranks ×
// {serial,threaded} progression × clean/chaos fault profiles), byte-exact
// reduction against a scalar reference, barrier semantics, failure
// semantics (a dead rail degrades a collective, a dead gate fails it —
// neither hangs), and the guarantee that collective segments flow through
// the ordinary strategy backlog (multi-rail striping, no special-casing).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "coll/barrier.hpp"
#include "coll/bcast.hpp"
#include "coll/communicator.hpp"
#include "coll/reduce.hpp"
#include "core/platform.hpp"
#include "obs/registry.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

std::vector<std::uint64_t> random_u64(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::uint64_t> out(n);
  for (auto& v : out) v = rng.next();
  return out;
}

/// The PR-3 acceptance fault profile: 1% drop, 1% duplicate, 0.5% corrupt.
drv::ChaosConfig acceptance_chaos() {
  drv::FaultProfile profile;
  profile.drop = 0.01;
  profile.duplicate = 0.01;
  profile.corrupt = 0.005;
  return drv::ChaosConfig::uniform(profile, /*window=*/3);
}

/// N communicating ranks over a MultiNodePlatform, one coll communicator
/// per rank, all driven from this (single) test thread.
struct CollWorld {
  MultiNodePlatform platform;
  std::vector<coll::Communicator> comms;
  coll::DriveHooks hooks;

  static MultiNodeConfig make_config(std::size_t ranks, ProgressMode mode,
                                     bool chaos, const char* strategy) {
    MultiNodeConfig cfg;
    cfg.nodes = ranks;
    cfg.strategy = strategy;
    cfg.progress_mode = mode;
    if (chaos) {
      cfg.chaos = acceptance_chaos();
      cfg.chaos_seed = 40 + ranks;
      // Faults require the reliability layer, exactly like PR 3's soaks.
      cfg.strat_cfg.reliability.ack_enabled = true;
    }
    return cfg;
  }

  CollWorld(std::size_t ranks, ProgressMode mode, bool chaos,
            const char* strategy = "aggreg_greedy",
            coll::CollConfig ccfg = {.segment_bytes = 64 * 1024})
      : platform(make_config(ranks, mode, chaos, strategy)) {
    comms.reserve(ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      comms.push_back(coll::make_communicator(platform, r, ccfg));
    }
    hooks = coll::hooks_for(platform);
  }

  [[nodiscard]] std::size_t size() const { return comms.size(); }
};

// --- correctness matrix ------------------------------------------------------

struct MatrixParam {
  std::size_t ranks;
  ProgressMode mode;
  bool chaos;
};

class CollMatrix : public ::testing::TestWithParam<MatrixParam> {};

TEST_P(CollMatrix, BcastReduceAllreduceBarrierByteCorrect) {
  const auto [ranks, mode, chaos] = GetParam();
  CollWorld w(ranks, mode, chaos);

  // Broadcast: 300 KB from a non-zero root — several segments at the 64 KB
  // test segment size, each striped across the rails by the strategy.
  const std::size_t kBcastBytes = 300 * 1024;
  const auto truth = random_bytes(kBcastBytes, 7 * ranks);
  std::vector<std::vector<std::byte>> bufs(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    bufs[r] = r == 1 ? truth : std::vector<std::byte>(kBcastBytes);
  }

  // Reduce (sum, root 0) and allreduce (min): uint64 elements, so the
  // scalar reference is byte-exact regardless of combine order.
  const std::size_t kElems = 96 * 1024 / sizeof(std::uint64_t) + 3;
  std::vector<std::vector<std::uint64_t>> contrib(ranks);
  for (std::size_t r = 0; r < ranks; ++r) {
    contrib[r] = random_u64(kElems, 100 * ranks + r);
  }
  std::vector<std::uint64_t> sum_ref(kElems, 0), min_ref(kElems, ~0ull);
  for (std::size_t r = 0; r < ranks; ++r) {
    for (std::size_t i = 0; i < kElems; ++i) {
      sum_ref[i] += contrib[r][i];
      min_ref[i] = std::min(min_ref[i], contrib[r][i]);
    }
  }
  std::vector<std::uint64_t> sum_out(kElems);
  std::vector<std::vector<std::uint64_t>> min_out(
      ranks, std::vector<std::uint64_t>(kElems));

  // Every rank posts all four collectives up front: concurrent instances
  // must not cross-match (per-instance tag streams).
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < ranks; ++r) {
    ops.push_back(w.comms[r].ibcast(bufs[r], /*root=*/1));
    ops.push_back(w.comms[r].ireduce<std::uint64_t>(
        contrib[r], r == 0 ? std::span<std::uint64_t>(sum_out)
                           : std::span<std::uint64_t>{},
        /*root=*/0, coll::ReduceKind::kSum));
    ops.push_back(w.comms[r].iallreduce<std::uint64_t>(contrib[r], min_out[r],
                                                       coll::ReduceKind::kMin));
    ops.push_back(w.comms[r].ibarrier());
  }
  ASSERT_TRUE(coll::wait_all(ops, w.hooks));

  for (std::size_t r = 0; r < ranks; ++r) {
    EXPECT_EQ(bufs[r], truth) << "bcast rank " << r;
    EXPECT_EQ(min_out[r], min_ref) << "allreduce rank " << r;
  }
  EXPECT_EQ(sum_out, sum_ref);
}

std::string matrix_name(const ::testing::TestParamInfo<MatrixParam>& info) {
  const auto& p = info.param;
  return std::to_string(p.ranks) + "ranks_" +
         (p.mode == ProgressMode::kThreaded ? "threaded" : "serial") +
         (p.chaos ? "_chaos" : "_clean");
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, CollMatrix,
    ::testing::Values(
        MatrixParam{3, ProgressMode::kSerial, false},
        MatrixParam{4, ProgressMode::kSerial, false},
        MatrixParam{7, ProgressMode::kSerial, false},
        MatrixParam{3, ProgressMode::kThreaded, false},
        MatrixParam{4, ProgressMode::kThreaded, false},
        MatrixParam{7, ProgressMode::kThreaded, false},
        MatrixParam{3, ProgressMode::kSerial, true},
        MatrixParam{4, ProgressMode::kSerial, true},
        MatrixParam{7, ProgressMode::kSerial, true},
        MatrixParam{3, ProgressMode::kThreaded, true},
        MatrixParam{4, ProgressMode::kThreaded, true},
        MatrixParam{7, ProgressMode::kThreaded, true}),
    matrix_name);

// --- heterogeneous-topology matrix -------------------------------------------

/// Two hosts with fast intra-host rails (Myri-10G + Quadrics) and slow
/// cross-host ones (GigE + Myrinet-2000): the world the hierarchy trees
/// exist for. Each parameter point runs the full collective set twice —
/// hierarchical and flat — over identical inputs and asserts the results
/// are byte-identical, so tree composition can never change semantics.
struct HeteroParam {
  std::size_t ranks;  // split onto two hosts: first half + remainder
  ProgressMode mode;
  bool chaos;
};

class CollHetero : public ::testing::TestWithParam<HeteroParam> {
 protected:
  static MultiNodeConfig make_config(const HeteroParam& p, bool hierarchical) {
    MultiNodeConfig cfg;
    cfg.nodes = p.ranks;
    cfg.strategy = "aggreg_greedy";
    cfg.progress_mode = p.mode;
    cfg.links = {netmodel::gige_tcp(), netmodel::myrinet2000_gm2()};
    cfg.intra_host_links = {netmodel::myri10g(), netmodel::quadrics_qm500()};
    cfg.hosts.assign(p.ranks, 1);
    for (std::size_t r = 0; r < p.ranks / 2; ++r) cfg.hosts[r] = 0;
    if (p.chaos) {
      cfg.chaos = acceptance_chaos();
      cfg.chaos_seed = 90 + p.ranks + (hierarchical ? 7 : 0);
      cfg.strat_cfg.reliability.ack_enabled = true;
    }
    return cfg;
  }

  /// Bcast + reduce + allreduce + barrier on every rank, returning
  /// (bcast buffers, reduce sum at root, allreduce outputs) for the
  /// hier-vs-flat byte comparison.
  struct Results {
    std::vector<std::vector<std::byte>> bcast;
    std::vector<std::uint64_t> sum;
    std::vector<std::vector<std::uint64_t>> min;
  };

  static Results run(const HeteroParam& p, bool hierarchical) {
    const std::size_t ranks = p.ranks;
    MultiNodePlatform platform(make_config(p, hierarchical));
    coll::CollConfig ccfg{.segment_bytes = 64 * 1024};
    ccfg.hierarchical = hierarchical;
    std::vector<coll::Communicator> comms;
    for (std::size_t r = 0; r < ranks; ++r) {
      comms.push_back(coll::make_communicator(platform, r, ccfg));
    }

    Results out;
    const std::size_t kBcastBytes = 200 * 1024;
    const auto truth = random_bytes(kBcastBytes, 19 * ranks);
    out.bcast.resize(ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      out.bcast[r] = r == 1 ? truth : std::vector<std::byte>(kBcastBytes);
    }
    const std::size_t kElems = 64 * 1024 / sizeof(std::uint64_t) + 5;
    std::vector<std::vector<std::uint64_t>> contrib(ranks);
    for (std::size_t r = 0; r < ranks; ++r) {
      contrib[r] = random_u64(kElems, 500 * ranks + r);
    }
    out.sum.resize(kElems);
    out.min.assign(ranks, std::vector<std::uint64_t>(kElems));

    std::vector<coll::CollHandle> ops;
    for (std::size_t r = 0; r < ranks; ++r) {
      ops.push_back(comms[r].ibcast(out.bcast[r], /*root=*/1));
      ops.push_back(comms[r].ireduce<std::uint64_t>(
          contrib[r], r == 0 ? std::span<std::uint64_t>(out.sum)
                             : std::span<std::uint64_t>{},
          /*root=*/0, coll::ReduceKind::kSum));
      ops.push_back(comms[r].iallreduce<std::uint64_t>(
          contrib[r], out.min[r], coll::ReduceKind::kMin));
      ops.push_back(comms[r].ibarrier());
    }
    EXPECT_TRUE(coll::wait_all(ops, coll::hooks_for(platform)));

    // The hierarchical run must actually have used two levels (the split
    // leaves at least 2 ranks per host at every matrix size).
    if constexpr (obs::kMetricsEnabled) {
      const auto& m = comms[0].metrics();
      EXPECT_EQ(m.levels.value(), hierarchical ? 2 : 1);
      if (hierarchical) EXPECT_GT(m.level_inter_sends.value(), 0u);
    }
    return out;
  }
};

TEST_P(CollHetero, HierAndFlatAreByteIdentical) {
  const auto p = GetParam();
  const Results hier = run(p, /*hierarchical=*/true);
  const Results flat = run(p, /*hierarchical=*/false);
  // uint64 sum/min references are order-independent, so both trees must
  // produce bit-equal outputs — the composition is semantically invisible.
  for (std::size_t r = 0; r < p.ranks; ++r) {
    EXPECT_EQ(hier.bcast[r], flat.bcast[r]) << "bcast rank " << r;
    EXPECT_EQ(hier.min[r], flat.min[r]) << "allreduce rank " << r;
  }
  EXPECT_EQ(hier.sum, flat.sum);
}

std::string hetero_name(const ::testing::TestParamInfo<HeteroParam>& info) {
  const auto& p = info.param;
  return std::to_string(p.ranks) + "ranks_" +
         (p.mode == ProgressMode::kThreaded ? "threaded" : "serial") +
         (p.chaos ? "_chaos" : "_clean");
}

INSTANTIATE_TEST_SUITE_P(
    TwoHosts, CollHetero,
    ::testing::Values(
        HeteroParam{6, ProgressMode::kSerial, false},
        HeteroParam{7, ProgressMode::kSerial, false},
        HeteroParam{6, ProgressMode::kThreaded, false},
        HeteroParam{7, ProgressMode::kThreaded, false},
        HeteroParam{6, ProgressMode::kSerial, true},
        HeteroParam{7, ProgressMode::kSerial, true},
        HeteroParam{6, ProgressMode::kThreaded, true},
        HeteroParam{7, ProgressMode::kThreaded, true}),
    hetero_name);

TEST(CollHetero, DeadRailMidHierarchicalBcastFailsOver) {
  // 6 ranks on two hosts, two rails per edge, zero-probability chaos so
  // links can be killed with reliability on. Killing one rail of the slow
  // inter-host leader edge AND one fast intra-host rail mid-collective
  // must degrade, not break, the hierarchical broadcast.
  const std::size_t ranks = 6;
  MultiNodeConfig cfg;
  cfg.nodes = ranks;
  cfg.progress_mode = ProgressMode::kSerial;
  cfg.links = {netmodel::gige_tcp(), netmodel::myrinet2000_gm2()};
  cfg.intra_host_links = {netmodel::myri10g(), netmodel::quadrics_qm500()};
  cfg.hosts = {0, 0, 0, 1, 1, 1};
  cfg.chaos = drv::ChaosConfig::uniform(drv::FaultProfile{}, /*window=*/1);
  cfg.strat_cfg.reliability.ack_enabled = true;
  MultiNodePlatform platform(cfg);
  std::vector<coll::Communicator> comms;
  for (std::size_t r = 0; r < ranks; ++r) {
    comms.push_back(coll::make_communicator(platform, r));
  }

  const auto truth = random_bytes(1 << 20, 33);
  std::vector<std::vector<std::byte>> bufs(ranks,
                                           std::vector<std::byte>(truth.size()));
  bufs[0] = truth;
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < ranks; ++r) {
    ops.push_back(comms[r].ibcast(bufs[r], /*root=*/0));
  }
  // Root 0 leads host 0; rank 3 leads host 1: {0,3} is the only
  // inter-domain edge of the tree. Kill its rail 0 plus a fast rail.
  platform.kill_link(0, 3, 0);
  platform.kill_link(0, 1, 0);
  ASSERT_TRUE(coll::wait_all(ops, coll::hooks_for(platform)));
  for (std::size_t r = 1; r < ranks; ++r) {
    EXPECT_EQ(bufs[r], truth) << "rank " << r;
  }
}

// --- algorithm shape ---------------------------------------------------------

TEST(CollTree, BinomialShapeIsConsistent) {
  for (std::size_t size : {1u, 2u, 3u, 4u, 5u, 7u, 8u, 13u}) {
    for (std::size_t root = 0; root < size; ++root) {
      std::size_t edges = 0;
      for (std::size_t rank = 0; rank < size; ++rank) {
        const auto shape = coll::binomial_tree(rank, root, size);
        if (rank == root) {
          EXPECT_EQ(shape.parent, coll::TreeShape::kNoParent);
        } else {
          ASSERT_NE(shape.parent, coll::TreeShape::kNoParent);
          // Our parent must list us as one of its children.
          const auto parent = coll::binomial_tree(shape.parent, root, size);
          EXPECT_NE(std::find(parent.children.begin(), parent.children.end(),
                              rank),
                    parent.children.end())
              << "size " << size << " root " << root << " rank " << rank;
        }
        edges += shape.children.size();
      }
      EXPECT_EQ(edges, size - 1) << "size " << size << " root " << root;
    }
  }
}

TEST(CollTree, SegmentBoundsKeepWholeElements) {
  // 100 is not a multiple of 16: the segment size must round down to 96 so
  // no combine ever sees half an element.
  const auto bounds = coll::segment_bounds(/*total=*/1024, /*segment_bytes=*/100,
                                           /*elem_size=*/16);
  std::size_t covered = 0;
  for (auto [off, len] : bounds) {
    EXPECT_EQ(off, covered);
    EXPECT_EQ(len % 16, 0u);
    EXPECT_LE(len, 96u);
    covered += len;
  }
  EXPECT_EQ(covered, 1024u);

  // segment_bytes below one element: a segment still carries a whole element.
  for (auto [off, len] : coll::segment_bounds(64, 10, 16)) EXPECT_EQ(len, 16u);

  // Zero-length payloads still produce one (empty) segment so the tree
  // synchronizes.
  EXPECT_EQ(coll::segment_bounds(0, 4096, 1).size(), 1u);
}

// --- barrier semantics -------------------------------------------------------

TEST(CollBarrier, HoldsUntilLastRankEnters) {
  CollWorld w(4, ProgressMode::kSerial, /*chaos=*/false);
  std::vector<coll::CollHandle> early;
  for (std::size_t r = 0; r + 1 < w.size(); ++r) {
    early.push_back(w.comms[r].ibarrier());
  }
  // Drive the world until quiescent: with rank 3 absent, nobody may leave.
  auto any_done = [&] {
    for (const auto& h : early) {
      h->try_advance();
      if (h->done()) return true;
    }
    return false;
  };
  EXPECT_FALSE(w.platform.run_until(any_done));
  for (const auto& h : early) EXPECT_FALSE(h->done());

  std::vector<coll::CollHandle> all = early;
  all.push_back(w.comms[w.size() - 1].ibarrier());
  EXPECT_TRUE(coll::wait_all(all, w.hooks));
}

// --- failure semantics -------------------------------------------------------

TEST(CollFault, DeadRailDegradesButCompletes) {
  // Zero-probability chaos wrappers (pass-through) so links can be killed,
  // with ack/retransmit on so death is detected and survivors take over.
  MultiNodeConfig cfg;
  cfg.nodes = 3;
  cfg.progress_mode = ProgressMode::kSerial;
  cfg.chaos = drv::ChaosConfig::uniform(drv::FaultProfile{}, /*window=*/1);
  cfg.strat_cfg.reliability.ack_enabled = true;
  MultiNodePlatform platform(cfg);
  std::vector<coll::Communicator> comms;
  for (std::size_t r = 0; r < 3; ++r) {
    comms.push_back(coll::make_communicator(platform, r));
  }

  const auto truth = random_bytes(1 << 20, 11);
  std::vector<std::vector<std::byte>> bufs{truth,
                                           std::vector<std::byte>(truth.size()),
                                           std::vector<std::byte>(truth.size())};
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < 3; ++r) {
    ops.push_back(comms[r].ibcast(bufs[r], /*root=*/0));
  }
  // Kill one of the two rails on every edge mid-collective: the rail guard
  // must fail over and the broadcast must still complete byte-exact.
  platform.kill_link(0, 1, 0);
  platform.kill_link(0, 2, 0);
  platform.kill_link(1, 2, 0);
  ASSERT_TRUE(coll::wait_all(ops, coll::hooks_for(platform)));
  EXPECT_EQ(bufs[1], truth);
  EXPECT_EQ(bufs[2], truth);
}

TEST(CollFault, DeadGateFailsCollectiveWithoutHanging) {
  MultiNodeConfig cfg;
  cfg.nodes = 3;
  cfg.progress_mode = ProgressMode::kSerial;
  cfg.chaos = drv::ChaosConfig::uniform(drv::FaultProfile{}, /*window=*/1);
  cfg.strat_cfg.reliability.ack_enabled = true;
  MultiNodePlatform platform(cfg);
  std::vector<coll::Communicator> comms;
  for (std::size_t r = 0; r < 3; ++r) {
    comms.push_back(coll::make_communicator(platform, r));
  }

  const auto truth = random_bytes(256 * 1024, 12);
  std::vector<std::vector<std::byte>> bufs{truth,
                                           std::vector<std::byte>(truth.size()),
                                           std::vector<std::byte>(truth.size())};
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < 3; ++r) {
    ops.push_back(comms[r].ibcast(bufs[r], /*root=*/0));
  }
  // Sever the 0<->1 edge entirely: rank 1 is unreachable. The collective
  // must settle (degraded), never hang: wait_all aborts the stuck ranks.
  platform.kill_link(0, 1, 0);
  platform.kill_link(0, 1, 1);
  EXPECT_FALSE(coll::wait_all(ops, coll::hooks_for(platform)));
  for (const auto& h : ops) EXPECT_TRUE(h->done());
  EXPECT_TRUE(ops[0]->failed());  // root's send to rank 1 failed
  EXPECT_TRUE(ops[1]->failed());  // rank 1's receives failed or were aborted
  // Rank 2 hangs off the root directly; its subtree is intact.
  EXPECT_TRUE(ops[2]->completed());
  EXPECT_EQ(bufs[2], truth);
}

// --- strategies see ordinary traffic ----------------------------------------

TEST(CollStrat, SegmentsFlowThroughNormalBacklog) {
  // Large broadcast under the adaptive splitter: every segment must be
  // chunked across both rails by the regular strategy machinery — nothing
  // in coll/ special-cases rails or bypasses the backlog.
  CollWorld w(3, ProgressMode::kSerial, /*chaos=*/false, "split_balance",
              coll::CollConfig{.segment_bytes = 512 * 1024});
  const std::size_t kBytes = 2 << 20;
  const auto truth = random_bytes(kBytes, 21);
  std::vector<std::vector<std::byte>> bufs{truth,
                                           std::vector<std::byte>(kBytes),
                                           std::vector<std::byte>(kBytes)};
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < 3; ++r) {
    ops.push_back(w.comms[r].ibcast(bufs[r], /*root=*/0));
  }
  ASSERT_TRUE(coll::wait_all(ops, w.hooks));
  EXPECT_EQ(bufs[1], truth);
  EXPECT_EQ(bufs[2], truth);

  // Root sent to both children; each child gate's strategy split large
  // segments into chunks and both rails carried DMA payload.
  for (std::size_t child : {1u, 2u}) {
    auto& gate = w.platform.session(0).scheduler().gate(w.platform.gate(0, child));
    if constexpr (obs::kMetricsEnabled) {
      EXPECT_GT(gate.strategy().metrics().segments_split.value(), 0u)
          << "child " << child;
      EXPECT_GT(gate.strategy().metrics().chunks_created.value(), 0u);
    }
    for (RailIndex rail = 0; rail < 2; ++rail) {
      EXPECT_GT(gate.rail(rail).tx.payload_bytes[1], 0u)
          << "child " << child << " rail " << rail;
    }
  }
}

// --- observability -----------------------------------------------------------

TEST(CollMetrics, CountersFireAndRegister) {
  CollWorld w(3, ProgressMode::kSerial, /*chaos=*/false);
  obs::MetricsRegistry registry;
  w.platform.register_metrics(registry);
  for (std::size_t r = 0; r < 3; ++r) {
    w.comms[r].register_metrics(registry, "n" + std::to_string(r) + ".coll.");
  }

  // Two allreduces back-to-back plus a barrier on every rank.
  std::vector<std::uint64_t> c{1, 2, 3};
  std::vector<std::vector<std::uint64_t>> outs(3, std::vector<std::uint64_t>(3));
  for (int round = 0; round < 2; ++round) {
    std::vector<coll::CollHandle> ops;
    for (std::size_t r = 0; r < 3; ++r) {
      ops.push_back(w.comms[r].iallreduce<std::uint64_t>(
          c, std::span<std::uint64_t>(outs[r]), coll::ReduceKind::kSum));
    }
    ASSERT_TRUE(coll::wait_all(ops, w.hooks));
    EXPECT_EQ(outs[0], (std::vector<std::uint64_t>{3, 6, 9}));
  }
  std::vector<coll::CollHandle> ops;
  for (std::size_t r = 0; r < 3; ++r) {
    ops.push_back(w.comms[r].ibarrier());
  }
  ASSERT_TRUE(coll::wait_all(ops, w.hooks));

  const auto& m = w.comms[0].metrics();
  if constexpr (obs::kMetricsEnabled) {
    EXPECT_EQ(m.allreduce_ops.value(), 2u);
    EXPECT_EQ(m.barrier_ops.value(), 1u);
    EXPECT_EQ(m.completed_ops.value(), 3u);
    EXPECT_GT(m.allreduce_bytes.value(), 0u);
    EXPECT_GT(m.rounds.value(), 0u);
    EXPECT_GT(m.segments_sent.value(), 0u);
    EXPECT_EQ(m.tree_depth.high_water(), 2);  // ceil(log2 3)
    EXPECT_EQ(m.failed_ops.value(), 0u);
    const auto snap = registry.snapshot();
    EXPECT_TRUE(snap.counters.contains("n0.coll.allreduce.ops"));
    EXPECT_TRUE(snap.counters.contains("n0.coll.rounds"));
    EXPECT_TRUE(snap.gauges.contains("n0.coll.tree_depth"));
  }
}

}  // namespace
