// Wire-format tests: round trips, aggregated packets, malformed-input
// rejection, and a randomized encode/decode property sweep.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "proto/crc32c.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad::proto;

std::vector<std::byte> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(std::byte(static_cast<unsigned char>(x)));
  return out;
}

TEST(Wire, SingleSegmentRoundTrip) {
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  const SegHeader h{7, 42, 100, 5, 4096};
  const auto wire = encode_data_packet(h, payload);
  EXPECT_EQ(wire.size(), packet_wire_size(1, 5));

  const auto decoded = decode_packet(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, PacketKind::kData);
  ASSERT_EQ(decoded->segments.size(), 1u);
  EXPECT_EQ(decoded->segments[0].header, h);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         decoded->segments[0].payload.begin()));
}

TEST(Wire, AggregatedPacketPreservesAllSegments) {
  PacketBuilder builder(PacketKind::kData);
  std::vector<std::vector<std::byte>> payloads;
  for (std::uint32_t i = 0; i < 9; ++i) {
    payloads.push_back(std::vector<std::byte>(i * 3, std::byte(i)));
    builder.add_segment(
        SegHeader{i, i * 10, 0, static_cast<std::uint32_t>(i * 3), i * 3 + 1},
        payloads.back());
  }
  const auto wire = std::move(builder).finish();
  const auto decoded = decode_packet(wire);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->segments.size(), 9u);
  for (std::uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(decoded->segments[i].header.tag, i);
    EXPECT_EQ(decoded->segments[i].header.msg_seq, i * 10);
    ASSERT_EQ(decoded->segments[i].payload.size(), i * 3);
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           decoded->segments[i].payload.begin()));
  }
}

TEST(Wire, ControlPacketsRoundTrip) {
  const auto req = encode_rdv_req(3, 9, 1 << 20);
  auto decoded = decode_packet(req);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, PacketKind::kRdvReq);
  EXPECT_EQ(decoded->segments[0].header.tag, 3u);
  EXPECT_EQ(decoded->segments[0].header.msg_seq, 9u);
  EXPECT_EQ(decoded->segments[0].header.total_len, 1u << 20);
  EXPECT_TRUE(decoded->segments[0].payload.empty());

  const auto ack = encode_rdv_ack(3, 9);
  decoded = decode_packet(ack);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, PacketKind::kRdvAck);
}

TEST(Wire, RejectsTruncatedPacket) {
  const auto wire = encode_data_packet(SegHeader{1, 1, 0, 4, 4}, bytes_of({1, 2, 3, 4}));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const auto truncated =
        std::span<const std::byte>(wire.data(), cut);
    EXPECT_FALSE(decode_packet(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(Wire, RejectsBadMagicVersionKind) {
  auto wire = encode_data_packet(SegHeader{1, 1, 0, 0, 0}, {});
  auto corrupt = wire;
  corrupt[0] = std::byte{0x00};
  EXPECT_FALSE(decode_packet(corrupt).has_value());

  corrupt = wire;
  corrupt[2] = std::byte{99};  // version
  EXPECT_FALSE(decode_packet(corrupt).has_value());

  corrupt = wire;
  corrupt[3] = std::byte{7};  // kind
  EXPECT_FALSE(decode_packet(corrupt).has_value());
}

TEST(Wire, RejectsTrailingGarbage) {
  auto wire = encode_data_packet(SegHeader{1, 1, 0, 2, 2}, bytes_of({1, 2}));
  wire.push_back(std::byte{0});
  EXPECT_FALSE(decode_packet(wire).has_value());
}

TEST(Wire, RejectsExtentBeyondMessage) {
  // Hand-corrupt the offset field of an otherwise valid packet.
  auto wire = encode_data_packet(SegHeader{1, 1, 0, 4, 4}, bytes_of({1, 2, 3, 4}));
  // SegHeader at offset 16; its 'offset' field at +8.
  wire[16 + 8] = std::byte{0xff};
  EXPECT_FALSE(decode_packet(wire).has_value());
}

// --- scatter-gather packet views --------------------------------------------

TEST(WireGather, SingleSegmentViewIsZeroCopyAndByteIdentical) {
  BufferPool pool(256);
  const auto payload = bytes_of({9, 8, 7, 6, 5, 4});
  const SegHeader h{3, 11, 24, 6, 640};
  PacketView view = encode_data_packet_view(pool, h, payload);

  EXPECT_EQ(view.copied_bytes(), 0u);
  EXPECT_EQ(view.span_count(), 1u);
  // The payload span references the caller's memory in place.
  EXPECT_EQ(view.payload_spans()[0].data(), payload.data());

  const auto gathered = view.to_bytes();
  EXPECT_EQ(gathered, encode_data_packet(h, payload));
  EXPECT_EQ(gathered.size(), view.wire_size());
}

TEST(WireGather, MultiSpanPayloadsRoundTrip) {
  // Referenced segments living in *separate* buffers cannot merge, so the
  // view carries one span per segment; the gathered frame must still decode
  // exactly like a flat aggregated packet.
  BufferPool pool(1024);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 7; ++i) {
    payloads.push_back(std::vector<std::byte>(40 + i, std::byte(i + 1)));
  }
  GatherBuilder builder(PacketKind::kData, pool.acquire());
  for (std::uint32_t i = 0; i < 7; ++i) {
    builder.add_segment(
        SegHeader{i, i, 0, static_cast<std::uint32_t>(payloads[i].size()),
                  static_cast<std::uint32_t>(payloads[i].size())},
        payloads[i]);
  }
  PacketView view = std::move(builder).finish();
  EXPECT_EQ(view.span_count(), 7u);
  EXPECT_EQ(view.copied_bytes(), 0u);

  const auto gathered = view.to_bytes();
  const auto decoded = decode_packet(gathered);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->segments.size(), 7u);
  for (std::uint32_t i = 0; i < 7; ++i) {
    EXPECT_EQ(decoded->segments[i].header.tag, i);
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           decoded->segments[i].payload.begin()));
  }
}

TEST(WireGather, EmptyPayloadSegmentsAddHeadersButNoSpans) {
  BufferPool pool(1024);
  const auto payload = bytes_of({1, 2, 3});
  GatherBuilder builder(PacketKind::kData, pool.acquire());
  builder.add_segment(SegHeader{0, 0, 0, 0, 0}, {});
  builder.add_segment(SegHeader{1, 1, 0, 3, 3}, payload);
  builder.add_segment(SegHeader{2, 2, 0, 0, 0}, {});
  PacketView view = std::move(builder).finish();

  EXPECT_EQ(view.span_count(), 1u);
  EXPECT_EQ(view.payload_bytes(), 3u);
  const auto gathered = view.to_bytes();
  const auto decoded = decode_packet(gathered);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->segments.size(), 3u);
  EXPECT_TRUE(decoded->segments[0].payload.empty());
  EXPECT_EQ(decoded->segments[1].payload.size(), 3u);
  EXPECT_TRUE(decoded->segments[2].payload.empty());
}

TEST(WireGather, StagedSegmentsMergeIntoOneSpanAndCountCopies) {
  BufferPool heads(1024);
  BufferPool staging(8192);
  std::vector<std::vector<std::byte>> payloads;
  for (int i = 0; i < 5; ++i) {
    payloads.push_back(std::vector<std::byte>(100, std::byte(0x40 + i)));
  }
  GatherBuilder builder(PacketKind::kData, heads.acquire(), staging.acquire());
  for (std::uint32_t i = 0; i < 5; ++i) {
    builder.add_segment_staged(SegHeader{i, i, 0, 100, 100}, payloads[i]);
  }
  PacketView view = std::move(builder).finish();

  // The aggregation memcpy is the only copy, and consecutive staged
  // segments resolve to a single contiguous span.
  EXPECT_EQ(view.copied_bytes(), 500u);
  EXPECT_EQ(view.span_count(), 1u);
  const auto gathered = view.to_bytes();
  const auto decoded = decode_packet(gathered);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->segments.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) {
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           decoded->segments[i].payload.begin()));
  }
}

TEST(WireGather, MaxSegCountSpillsPastInlineSpansAndRoundTrips) {
  // 64 segments in distinct buffers: far beyond kInlineSpans, exercising
  // the overflow span list end to end.
  BufferPool pool(4096);
  constexpr std::uint32_t kSegs = 64;
  std::vector<std::vector<std::byte>> payloads;
  for (std::uint32_t i = 0; i < kSegs; ++i) {
    payloads.push_back(std::vector<std::byte>(8, std::byte(i)));
  }
  GatherBuilder builder(PacketKind::kData, pool.acquire());
  for (std::uint32_t i = 0; i < kSegs; ++i) {
    builder.add_segment(SegHeader{i, i, 0, 8, 8}, payloads[i]);
  }
  PacketView view = std::move(builder).finish();
  EXPECT_EQ(view.span_count(), kSegs);
  EXPECT_GT(view.span_count(), PacketView::kInlineSpans);

  const auto gathered = view.to_bytes();
  const auto decoded = decode_packet(gathered);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->segments.size(), kSegs);
  for (std::uint32_t i = 0; i < kSegs; ++i) {
    EXPECT_EQ(decoded->segments[i].header.tag, i);
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           decoded->segments[i].payload.begin()));
  }
}

TEST(WireGather, AdjacentReferencedSegmentsMergeSpans) {
  // Two segments that are contiguous in memory (a split message) gather
  // from a single span.
  BufferPool pool(1024);
  std::vector<std::byte> message(200, std::byte{0x5c});
  const std::span<const std::byte> all = message;
  GatherBuilder builder(PacketKind::kData, pool.acquire());
  builder.add_segment(SegHeader{1, 1, 0, 120, 200}, all.subspan(0, 120));
  builder.add_segment(SegHeader{1, 1, 120, 80, 200}, all.subspan(120, 80));
  PacketView view = std::move(builder).finish();
  EXPECT_EQ(view.span_count(), 1u);
  EXPECT_EQ(view.payload_bytes(), 200u);
  ASSERT_TRUE(decode_packet(view.to_bytes()).has_value());
}

TEST(WireGather, ControlFastPathsMatchLegacyEncodersByteForByte) {
  std::array<std::byte, kControlPacketBytes> buf{};
  encode_rdv_req_into(buf, 5, 77, 123456);
  const auto legacy_req = encode_rdv_req(5, 77, 123456);
  EXPECT_TRUE(std::equal(legacy_req.begin(), legacy_req.end(), buf.begin()));

  encode_rdv_ack_into(buf, 5, 77);
  const auto legacy_ack = encode_rdv_ack(5, 77);
  EXPECT_TRUE(std::equal(legacy_ack.begin(), legacy_ack.end(), buf.begin()));

  BufferPool pool(kControlPacketBytes);
  PacketView req = encode_rdv_req_view(pool, 5, 77, 123456);
  EXPECT_EQ(req.to_bytes(), legacy_req);
  EXPECT_EQ(req.copied_bytes(), 0u);
  PacketView ack = encode_rdv_ack_view(pool, 5, 77);
  EXPECT_EQ(ack.to_bytes(), legacy_ack);
}

// --------------------------------------------------------------------------
// Frame envelope (the per-rail reliability header in front of every packet)
// --------------------------------------------------------------------------

std::vector<std::byte> sealed_frame(const FrameEnvelope& env,
                                    std::span<const std::byte> packet) {
  std::vector<std::byte> frame(kFrameEnvelopeBytes + packet.size());
  std::copy(packet.begin(), packet.end(), frame.begin() + kFrameEnvelopeBytes);
  seal_frame_envelope(std::span(frame).first(kFrameEnvelopeBytes), env, packet,
                      {});
  return frame;
}

TEST(FrameEnvelope, SealDecodeRoundTrip) {
  const auto packet = encode_data_packet(SegHeader{3, 9, 0, 8, 8},
                                         std::vector<std::byte>(8, std::byte{0xab}));
  FrameEnvelope env;
  env.seq = 41;
  env.ack_small = 17;
  env.ack_large = 123456789;
  const auto frame = sealed_frame(env, packet);

  const auto decoded = decode_frame_envelope(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->flags, 0);
  EXPECT_EQ(decoded->seq, 41u);
  EXPECT_EQ(decoded->ack_small, 17u);
  EXPECT_EQ(decoded->ack_large, 123456789u);
  EXPECT_TRUE(verify_frame_checksum(frame));
  // The packet bytes behind the envelope are untouched.
  EXPECT_TRUE(std::equal(packet.begin(), packet.end(),
                         frame.begin() + kFrameEnvelopeBytes));
}

TEST(FrameEnvelope, AckOnlyFrameIsEnvelopeSized) {
  FrameEnvelope env;
  env.flags = kFrameAckOnly;
  env.ack_small = 5;
  const auto frame = sealed_frame(env, {});
  ASSERT_EQ(frame.size(), kFrameEnvelopeBytes);
  const auto decoded = decode_frame_envelope(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_NE(decoded->flags & kFrameAckOnly, 0);
  EXPECT_EQ(decoded->ack_small, 5u);
  EXPECT_TRUE(verify_frame_checksum(frame));
  // An ack-only frame carrying trailing bytes is malformed.
  auto padded = frame;
  padded.push_back(std::byte{0});
  EXPECT_FALSE(decode_frame_envelope(padded).has_value());
}

TEST(FrameEnvelope, EpochRoundTripsAndIsCrcCovered) {
  const auto packet = encode_data_packet(SegHeader{5, 2, 0, 8, 8},
                                         std::vector<std::byte>(8, std::byte{0x11}));
  FrameEnvelope env;
  env.seq = 7;
  env.epoch = 0xdeadbeef;
  const auto frame = sealed_frame(env, packet);
  const auto decoded = decode_frame_envelope(frame);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->epoch, 0xdeadbeefu);
  EXPECT_TRUE(verify_frame_checksum(frame));
  // The epoch field (bytes 16..19) is under the checksum: an incarnation
  // number can never be corrupted into silently passing the fence.
  for (std::size_t at = 16; at < 20; ++at) {
    auto tampered = frame;
    tampered[at] ^= std::byte{0x01};
    EXPECT_FALSE(verify_frame_checksum(tampered)) << "byte " << at;
  }
}

TEST(FrameEnvelope, HandshakeAndProbeFramesAreEnvelopeOnly) {
  const auto packet = encode_data_packet(SegHeader{1, 1, 0, 4, 4},
                                         std::vector<std::byte>(4, std::byte{9}));
  for (const std::uint8_t flag :
       {kFrameProbe, kFrameProbeReply, kFrameReconnect, kFrameReconnectAck}) {
    FrameEnvelope env;
    env.flags = static_cast<std::uint8_t>(kFrameAckOnly | flag);
    env.epoch = 3;
    const auto frame = sealed_frame(env, {});
    const auto decoded = decode_frame_envelope(frame);
    ASSERT_TRUE(decoded.has_value()) << "flag " << int(flag);
    EXPECT_EQ(decoded->epoch, 3u);
    EXPECT_NE(decoded->flags & flag, 0);

    // A control flag without kFrameAckOnly claims to carry a packet —
    // malformed by construction, with or without actual payload bytes.
    FrameEnvelope bare;
    bare.flags = flag;
    bare.seq = 1;
    EXPECT_FALSE(decode_frame_envelope(sealed_frame(bare, packet)).has_value())
        << "flag " << int(flag);
  }
}

TEST(FrameEnvelope, RejectsTruncationAtEveryCut) {
  const auto packet = encode_data_packet(SegHeader{1, 1, 0, 4, 4},
                                         std::vector<std::byte>(4, std::byte{1}));
  FrameEnvelope env;
  env.seq = 1;
  const auto frame = sealed_frame(env, packet);
  for (std::size_t cut = 0; cut < kFrameEnvelopeBytes; ++cut) {
    EXPECT_FALSE(decode_frame_envelope(std::span(frame).first(cut)).has_value())
        << "cut at " << cut;
  }
}

TEST(FrameEnvelope, RejectsBadMagicAndVersion) {
  FrameEnvelope env;
  env.seq = 1;
  const auto packet = encode_data_packet(SegHeader{1, 1, 0, 4, 4},
                                         std::vector<std::byte>(4, std::byte{1}));
  auto bad_magic = sealed_frame(env, packet);
  bad_magic[0] ^= std::byte{0xff};
  EXPECT_FALSE(decode_frame_envelope(bad_magic).has_value());

  auto bad_version = sealed_frame(env, packet);
  bad_version[2] ^= std::byte{0xff};
  EXPECT_FALSE(decode_frame_envelope(bad_version).has_value());
}

TEST(FrameEnvelope, ChecksumCatchesEverySingleBitFlip) {
  const auto packet = encode_data_packet(SegHeader{2, 7, 0, 16, 16},
                                         std::vector<std::byte>(16, std::byte{0x5c}));
  FrameEnvelope env;
  env.seq = 3;
  env.ack_small = 2;
  const auto frame = sealed_frame(env, packet);
  ASSERT_TRUE(verify_frame_checksum(frame));
  for (std::size_t bit = 0; bit < frame.size() * 8; ++bit) {
    auto flipped = frame;
    flipped[bit / 8] ^= std::byte(1u << (bit % 8));
    EXPECT_FALSE(verify_frame_checksum(flipped)) << "bit " << bit;
  }
}

TEST(FrameEnvelope, Crc32cKnownAnswerAndStreamingEquivalence) {
  // RFC 3720 check value: crc32c("123456789") == 0xe3069283.
  const char* kat = "123456789";
  const auto bytes = std::as_bytes(std::span(kat, 9));
  EXPECT_EQ(crc32c(bytes), 0xe3069283u);

  // Folding the same bytes in arbitrary pieces must match the one-shot.
  nmad::util::Xoshiro256 rng(15);
  const auto data = [&] {
    std::vector<std::byte> d(333);
    for (auto& b : d) b = std::byte(rng.next() & 0xff);
    return d;
  }();
  const auto oneshot = crc32c(data);
  for (int round = 0; round < 20; ++round) {
    std::uint32_t state = kCrc32cInit;
    std::size_t off = 0;
    while (off < data.size()) {
      const std::size_t n =
          std::min<std::size_t>(1 + rng.next_below(64), data.size() - off);
      state = crc32c_update(state, std::span(data).subspan(off, n));
      off += n;
    }
    EXPECT_EQ(crc32c_finish(state), oneshot);
  }
}

TEST(Wire, RandomizedRoundTripSweep) {
  nmad::util::Xoshiro256 rng(2024);
  for (int round = 0; round < 200; ++round) {
    const auto nseg = 1 + rng.next_below(12);
    PacketBuilder builder(PacketKind::kData);
    std::vector<SegHeader> headers;
    std::vector<std::vector<std::byte>> payloads;
    for (std::uint64_t i = 0; i < nseg; ++i) {
      const auto len = static_cast<std::uint32_t>(rng.next_below(300));
      const auto offset = static_cast<std::uint32_t>(rng.next_below(1000));
      SegHeader h{static_cast<Tag>(rng.next_below(5)),
                  static_cast<MsgSeq>(rng.next_below(100)), offset, len,
                  offset + len + static_cast<std::uint32_t>(rng.next_below(50))};
      std::vector<std::byte> payload(len);
      for (auto& b : payload) b = std::byte(rng.next() & 0xff);
      builder.add_segment(h, payload);
      headers.push_back(h);
      payloads.push_back(std::move(payload));
    }
    const auto wire = std::move(builder).finish();
    const auto decoded = decode_packet(wire);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->segments.size(), nseg);
    for (std::uint64_t i = 0; i < nseg; ++i) {
      EXPECT_EQ(decoded->segments[i].header, headers[i]);
      EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                             decoded->segments[i].payload.begin()));
    }
  }
}

}  // namespace
