// Wire-format tests: round trips, aggregated packets, malformed-input
// rejection, and a randomized encode/decode property sweep.
#include <gtest/gtest.h>

#include <vector>

#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad::proto;

std::vector<std::byte> bytes_of(std::initializer_list<int> xs) {
  std::vector<std::byte> out;
  for (int x : xs) out.push_back(std::byte(static_cast<unsigned char>(x)));
  return out;
}

TEST(Wire, SingleSegmentRoundTrip) {
  const auto payload = bytes_of({1, 2, 3, 4, 5});
  const SegHeader h{7, 42, 100, 5, 4096};
  const auto wire = encode_data_packet(h, payload);
  EXPECT_EQ(wire.size(), packet_wire_size(1, 5));

  const auto decoded = decode_packet(wire);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, PacketKind::kData);
  ASSERT_EQ(decoded->segments.size(), 1u);
  EXPECT_EQ(decoded->segments[0].header, h);
  EXPECT_TRUE(std::equal(payload.begin(), payload.end(),
                         decoded->segments[0].payload.begin()));
}

TEST(Wire, AggregatedPacketPreservesAllSegments) {
  PacketBuilder builder(PacketKind::kData);
  std::vector<std::vector<std::byte>> payloads;
  for (std::uint32_t i = 0; i < 9; ++i) {
    payloads.push_back(std::vector<std::byte>(i * 3, std::byte(i)));
    builder.add_segment(
        SegHeader{i, i * 10, 0, static_cast<std::uint32_t>(i * 3), i * 3 + 1},
        payloads.back());
  }
  const auto wire = std::move(builder).finish();
  const auto decoded = decode_packet(wire);
  ASSERT_TRUE(decoded.has_value());
  ASSERT_EQ(decoded->segments.size(), 9u);
  for (std::uint32_t i = 0; i < 9; ++i) {
    EXPECT_EQ(decoded->segments[i].header.tag, i);
    EXPECT_EQ(decoded->segments[i].header.msg_seq, i * 10);
    ASSERT_EQ(decoded->segments[i].payload.size(), i * 3);
    EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                           decoded->segments[i].payload.begin()));
  }
}

TEST(Wire, ControlPacketsRoundTrip) {
  const auto req = encode_rdv_req(3, 9, 1 << 20);
  auto decoded = decode_packet(req);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, PacketKind::kRdvReq);
  EXPECT_EQ(decoded->segments[0].header.tag, 3u);
  EXPECT_EQ(decoded->segments[0].header.msg_seq, 9u);
  EXPECT_EQ(decoded->segments[0].header.total_len, 1u << 20);
  EXPECT_TRUE(decoded->segments[0].payload.empty());

  const auto ack = encode_rdv_ack(3, 9);
  decoded = decode_packet(ack);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->kind, PacketKind::kRdvAck);
}

TEST(Wire, RejectsTruncatedPacket) {
  const auto wire = encode_data_packet(SegHeader{1, 1, 0, 4, 4}, bytes_of({1, 2, 3, 4}));
  for (std::size_t cut = 0; cut < wire.size(); ++cut) {
    const auto truncated =
        std::span<const std::byte>(wire.data(), cut);
    EXPECT_FALSE(decode_packet(truncated).has_value()) << "cut at " << cut;
  }
}

TEST(Wire, RejectsBadMagicVersionKind) {
  auto wire = encode_data_packet(SegHeader{1, 1, 0, 0, 0}, {});
  auto corrupt = wire;
  corrupt[0] = std::byte{0x00};
  EXPECT_FALSE(decode_packet(corrupt).has_value());

  corrupt = wire;
  corrupt[2] = std::byte{99};  // version
  EXPECT_FALSE(decode_packet(corrupt).has_value());

  corrupt = wire;
  corrupt[3] = std::byte{7};  // kind
  EXPECT_FALSE(decode_packet(corrupt).has_value());
}

TEST(Wire, RejectsTrailingGarbage) {
  auto wire = encode_data_packet(SegHeader{1, 1, 0, 2, 2}, bytes_of({1, 2}));
  wire.push_back(std::byte{0});
  EXPECT_FALSE(decode_packet(wire).has_value());
}

TEST(Wire, RejectsExtentBeyondMessage) {
  // Hand-corrupt the offset field of an otherwise valid packet.
  auto wire = encode_data_packet(SegHeader{1, 1, 0, 4, 4}, bytes_of({1, 2, 3, 4}));
  // SegHeader at offset 16; its 'offset' field at +8.
  wire[16 + 8] = std::byte{0xff};
  EXPECT_FALSE(decode_packet(wire).has_value());
}

TEST(Wire, RandomizedRoundTripSweep) {
  nmad::util::Xoshiro256 rng(2024);
  for (int round = 0; round < 200; ++round) {
    const auto nseg = 1 + rng.next_below(12);
    PacketBuilder builder(PacketKind::kData);
    std::vector<SegHeader> headers;
    std::vector<std::vector<std::byte>> payloads;
    for (std::uint64_t i = 0; i < nseg; ++i) {
      const auto len = static_cast<std::uint32_t>(rng.next_below(300));
      const auto offset = static_cast<std::uint32_t>(rng.next_below(1000));
      SegHeader h{static_cast<Tag>(rng.next_below(5)),
                  static_cast<MsgSeq>(rng.next_below(100)), offset, len,
                  offset + len + static_cast<std::uint32_t>(rng.next_below(50))};
      std::vector<std::byte> payload(len);
      for (auto& b : payload) b = std::byte(rng.next() & 0xff);
      builder.add_segment(h, payload);
      headers.push_back(h);
      payloads.push_back(std::move(payload));
    }
    const auto wire = std::move(builder).finish();
    const auto decoded = decode_packet(wire);
    ASSERT_TRUE(decoded.has_value());
    ASSERT_EQ(decoded->segments.size(), nseg);
    for (std::uint64_t i = 0; i < nseg; ++i) {
      EXPECT_EQ(decoded->segments[i].header, headers[i]);
      EXPECT_TRUE(std::equal(payloads[i].begin(), payloads[i].end(),
                             decoded->segments[i].payload.begin()));
    }
  }
}

}  // namespace
