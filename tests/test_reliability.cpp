// RailGuard reliability tests: ack/retransmit protocol mechanics against a
// hand-cranked driver and clock (deterministic, no simulator), plus
// platform-level checks that the ack path is invisible on a clean network
// and that the legacy (ack-off) configuration keeps its exact semantics.
#include <gtest/gtest.h>

#include <algorithm>
#include <span>
#include <vector>

#include "core/platform.hpp"
#include "core/rail_guard.hpp"
#include "core/reliability.hpp"
#include "drv/driver.hpp"
#include "proto/wire.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

/// Driver stub that records every posted frame (envelope + gathered packet)
/// and completes sends synchronously.
struct RecordingDriver final : drv::Driver {
  drv::Capabilities caps_{};
  struct Frame {
    drv::Track track;
    std::vector<std::byte> bytes;
  };
  std::vector<Frame> posted;
  bool idle[drv::kTrackCount] = {true, true};

  [[nodiscard]] const drv::Capabilities& caps() const noexcept override {
    return caps_;
  }
  [[nodiscard]] bool send_idle(drv::Track track) const noexcept override {
    return idle[static_cast<std::size_t>(track)];
  }
  void post_send(drv::SendDesc desc, Callback on_sent) override {
    Frame f;
    f.track = desc.track;
    f.bytes.assign(desc.envelope.begin(), desc.envelope.end());
    desc.view.gather_into(f.bytes);
    posted.push_back(std::move(f));
    if (on_sent) on_sent();
  }
  void set_deliver(DeliverFn) override {}
};

/// A RailGuard wired to a manual clock and a manual timer wheel.
struct GuardHarness {
  RecordingDriver drv;
  sim::TimeNs now = 0;
  struct Timer {
    sim::TimeNs at;
    std::function<void()> fn;
  };
  std::vector<Timer> timers;
  int credit_calls = 0;
  std::vector<std::vector<std::byte>> delivered;
  std::vector<RailState> transitions;
  std::vector<RailGuard::PendingFrame> requeued;
  int revived_calls = 0;
  int kicks = 0;
  RailGuard guard;

  explicit GuardHarness(ReliabilityConfig cfg) {
    RailGuard::Hooks hooks;
    hooks.now = [this] { return now; };
    hooks.timer = [this](sim::TimeNs delay, std::function<void()> fn) {
      timers.push_back({now + delay, std::move(fn)});
    };
    hooks.credit = [this](const std::vector<strat::Contribution>&) {
      ++credit_calls;
    };
    hooks.deliver = [this](drv::Track, std::span<const std::byte> packet) {
      delivered.emplace_back(packet.begin(), packet.end());
    };
    hooks.kick = [this] { ++kicks; };
    hooks.on_state_change = [this](RailState s) { transitions.push_back(s); };
    hooks.on_revived = [this] { ++revived_calls; };
    hooks.requeue = [this](std::vector<RailGuard::PendingFrame> frames) {
      for (auto& f : frames) requeued.push_back(std::move(f));
    };
    guard.init(drv, /*index=*/0, cfg, std::move(hooks));
  }

  /// Fire every timer due by `t` in deadline order (a fired timer may arm
  /// new ones), then settle the clock at `t`.
  void run_to(sim::TimeNs t) {
    for (;;) {
      std::size_t best = timers.size();
      for (std::size_t i = 0; i < timers.size(); ++i) {
        if (timers[i].at <= t && (best == timers.size() ||
                                  timers[i].at < timers[best].at)) {
          best = i;
        }
      }
      if (best == timers.size()) break;
      Timer timer = std::move(timers[best]);
      timers.erase(timers.begin() + static_cast<std::ptrdiff_t>(best));
      now = std::max(now, timer.at);
      timer.fn();
    }
    now = std::max(now, t);
  }
};

ReliabilityConfig deterministic_cfg() {
  ReliabilityConfig cfg;
  cfg.ack_enabled = true;
  cfg.rto_ns = 1'000'000;  // 1 ms
  cfg.rto_backoff = 2.0;
  cfg.rto_max_ns = 8'000'000;
  cfg.max_retries = 6;
  cfg.suspect_after = 2;
  cfg.ack_delay_ns = 200'000;
  cfg.rto_jitter = 0.0;  // exact deadlines for the assertions below
  return cfg;
}

drv::SendDesc make_data_desc(drv::Track track = drv::Track::kSmall) {
  const auto payload = random_bytes(32, 7);
  return drv::SendDesc(track,
                       proto::encode_data_packet(
                           proto::SegHeader{1, 1, 0, 32, 32}, payload));
}

/// Build a sealed inbound frame as the peer's guard would: envelope
/// followed by the encoded packet.
std::vector<std::byte> make_frame(std::uint32_t seq,
                                  std::uint32_t ack_small = 0,
                                  std::uint32_t ack_large = 0,
                                  std::uint8_t flags = 0,
                                  std::uint32_t epoch = 0) {
  std::vector<std::byte> packet;
  if ((flags & proto::kFrameAckOnly) == 0) {
    packet = proto::encode_data_packet(proto::SegHeader{2, 1, 0, 16, 16},
                                       random_bytes(16, seq));
  }
  std::vector<std::byte> frame(proto::kFrameEnvelopeBytes + packet.size());
  std::copy(packet.begin(), packet.end(),
            frame.begin() + proto::kFrameEnvelopeBytes);
  proto::FrameEnvelope env;
  env.flags = flags;
  env.seq = seq;
  env.ack_small = ack_small;
  env.ack_large = ack_large;
  env.epoch = epoch;
  proto::seal_frame_envelope(
      std::span(frame).first(proto::kFrameEnvelopeBytes), env, packet, {});
  return frame;
}

/// Posted frames whose envelope carries `flag` (e.g. kFrameProbe).
std::size_t count_posted(const RecordingDriver& d, std::uint8_t flag) {
  std::size_t n = 0;
  for (const auto& f : d.posted) {
    const auto env = proto::decode_frame_envelope(f.bytes);
    if (env.has_value() && (env->flags & flag) != 0) ++n;
  }
  return n;
}

TEST(RailGuard, RetransmitsVerbatimUntilAckedThenCredits) {
  GuardHarness h(deterministic_cfg());
  h.guard.post(make_data_desc(), {});
  ASSERT_EQ(h.drv.posted.size(), 1u);
  ASSERT_EQ(h.guard.unacked_count(), 1u);
  EXPECT_EQ(h.credit_calls, 0);  // acks on: local completion is not enough

  const auto env0 = proto::decode_frame_envelope(h.drv.posted[0].bytes);
  ASSERT_TRUE(env0.has_value());
  EXPECT_EQ(env0->seq, 1u);

  // First timeout: retransmission must be byte-identical to the original.
  h.run_to(1'100'000);
  ASSERT_EQ(h.drv.posted.size(), 2u);
  EXPECT_EQ(h.drv.posted[1].bytes, h.drv.posted[0].bytes);
  EXPECT_TRUE(h.guard.healthy());  // one timeout < suspect_after

  // Second consecutive timeout (backoff doubled the deadline): suspect.
  h.run_to(3'200'000);
  ASSERT_EQ(h.drv.posted.size(), 3u);
  EXPECT_EQ(h.guard.state(), RailState::kSuspect);
  ASSERT_FALSE(h.transitions.empty());
  EXPECT_EQ(h.transitions.back(), RailState::kSuspect);

  // An ack of the probe heals the rail and finally credits the send.
  h.guard.on_frame(drv::Track::kSmall,
                   make_frame(0, /*ack_small=*/1, 0, proto::kFrameAckOnly));
  EXPECT_EQ(h.guard.state(), RailState::kHealthy);
  EXPECT_EQ(h.transitions.back(), RailState::kHealthy);
  EXPECT_EQ(h.guard.unacked_count(), 0u);
  EXPECT_EQ(h.credit_calls, 1);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.retransmits.value(), 2u);
    EXPECT_EQ(h.guard.metrics.timeouts.value(), 2u);
    EXPECT_EQ(h.guard.metrics.acks_received.value(), 1u);
  }
}

TEST(RailGuard, RetriesExhaustedDeclareTheRailDeadAndSurrenderFrames) {
  auto cfg = deterministic_cfg();
  cfg.max_retries = 3;
  GuardHarness h(cfg);
  h.guard.post(make_data_desc(drv::Track::kLarge), {});
  const auto original = h.drv.posted.at(0).bytes;

  h.run_to(1'000'000'000);  // nobody ever acks
  EXPECT_EQ(h.guard.state(), RailState::kDead);
  EXPECT_FALSE(h.guard.alive());
  EXPECT_EQ(h.transitions.back(), RailState::kDead);

  auto surrendered = h.guard.take_unacked();
  ASSERT_EQ(surrendered.size(), 1u);
  EXPECT_EQ(surrendered[0].desc.track, drv::Track::kLarge);
  EXPECT_EQ(h.guard.unacked_count(), 0u);
  EXPECT_EQ(h.credit_calls, 0);  // un-acked data is requeued, not credited
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.requeued_packets.value(), 1u);
    EXPECT_GT(h.guard.metrics.requeued_bytes.value(), 0u);
    EXPECT_EQ(h.guard.metrics.state.value(), 2);
  }
  // Death was reached strictly after max_retries timeouts, not before.
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.timeouts.value(), cfg.max_retries + 1);
  }
}

TEST(RailGuard, DriverErrorKillsTheRailImmediately) {
  GuardHarness h(deterministic_cfg());
  h.guard.post(make_data_desc(), {});
  drv::RailError err;
  err.kind = drv::RailErrorKind::kPeerGone;
  err.track = drv::Track::kSmall;
  err.detail = "peer closed connection";
  h.guard.on_driver_error(err);
  EXPECT_EQ(h.guard.state(), RailState::kDead);
  EXPECT_EQ(h.guard.take_unacked().size(), 1u);
}

TEST(RailGuard, DuplicateFramesAreSuppressedAndForceAReAck) {
  GuardHarness h(deterministic_cfg());
  const auto frame = make_frame(1);
  h.guard.on_frame(drv::Track::kSmall, frame);
  ASSERT_EQ(h.delivered.size(), 1u);
  const auto packet_bytes = std::vector<std::byte>(
      frame.begin() + proto::kFrameEnvelopeBytes, frame.end());
  EXPECT_EQ(h.delivered[0], packet_bytes);

  // Same sequence again (retransmission or injected duplicate): no second
  // delivery, but the guard owes the peer a fresh ack (its previous one was
  // presumably lost).
  h.guard.on_frame(drv::Track::kSmall, frame);
  EXPECT_EQ(h.delivered.size(), 1u);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.dup_frames.value(), 1u);
  }
  const auto posts_before = h.drv.posted.size();
  EXPECT_TRUE(h.guard.flush());  // emits the standalone ack
  ASSERT_EQ(h.drv.posted.size(), posts_before + 1);
  const auto& ack = h.drv.posted.back();
  EXPECT_EQ(ack.bytes.size(), proto::kFrameEnvelopeBytes);
  const auto env = proto::decode_frame_envelope(ack.bytes);
  ASSERT_TRUE(env.has_value());
  EXPECT_NE(env->flags & proto::kFrameAckOnly, 0);
  EXPECT_EQ(env->ack_small, 1u);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.acks_sent.value(), 1u);
  }
}

TEST(RailGuard, OutOfOrderFramesAllDeliverAndAckAdvancesContiguously) {
  GuardHarness h(deterministic_cfg());
  const auto f1 = make_frame(1), f2 = make_frame(2), f3 = make_frame(3);
  h.guard.on_frame(drv::Track::kSmall, f3);
  h.guard.on_frame(drv::Track::kSmall, f1);
  EXPECT_EQ(h.delivered.size(), 2u);
  // Ack after {1,3}: only seq 1 is contiguous.
  h.run_to(deterministic_cfg().ack_delay_ns + 1);
  const auto env_a = proto::decode_frame_envelope(h.drv.posted.back().bytes);
  ASSERT_TRUE(env_a.has_value());
  EXPECT_EQ(env_a->ack_small, 1u);
  // The hole fills: the cumulative ack jumps to 3.
  h.guard.on_frame(drv::Track::kSmall, f2);
  EXPECT_EQ(h.delivered.size(), 3u);
  h.run_to(h.now + deterministic_cfg().ack_delay_ns + 1);
  const auto env_b = proto::decode_frame_envelope(h.drv.posted.back().bytes);
  ASSERT_TRUE(env_b.has_value());
  EXPECT_EQ(env_b->ack_small, 3u);
}

TEST(RailGuard, CorruptAndMalformedFramesAreDroppedNotTrusted) {
  GuardHarness h(deterministic_cfg());
  auto frame = make_frame(1);
  auto corrupt = frame;
  corrupt[proto::kFrameEnvelopeBytes + 3] ^= std::byte{0x10};
  h.guard.on_frame(drv::Track::kSmall, corrupt);
  EXPECT_TRUE(h.delivered.empty());  // CRC mismatch: dropped, never acked

  h.guard.on_frame(drv::Track::kSmall,
                   std::span(frame).first(proto::kFrameEnvelopeBytes - 1));
  EXPECT_TRUE(h.delivered.empty());  // truncated: malformed

  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.crc_drops.value(), 1u);
    EXPECT_EQ(h.guard.metrics.malformed_drops.value(), 1u);
  }
  // The pristine copy still goes through (the retransmission path).
  h.guard.on_frame(drv::Track::kSmall, frame);
  EXPECT_EQ(h.delivered.size(), 1u);
}

TEST(RailGuard, AckDisabledKeepsLegacyLocalCompletionSemantics) {
  ReliabilityConfig cfg;  // defaults: ack_enabled = false
  GuardHarness h(cfg);
  h.guard.post(make_data_desc(), {});
  // Local completion credits immediately; nothing retained, no timers.
  EXPECT_EQ(h.credit_calls, 1);
  EXPECT_EQ(h.guard.unacked_count(), 0u);
  EXPECT_TRUE(h.timers.empty());
  EXPECT_FALSE(h.guard.flush());
  // Frames are still sequenced and checksummed (corruption detection and
  // duplicate suppression work even without retransmission).
  const auto env = proto::decode_frame_envelope(h.drv.posted.at(0).bytes);
  ASSERT_TRUE(env.has_value());
  EXPECT_EQ(env->seq, 1u);
  EXPECT_TRUE(proto::verify_frame_checksum(h.drv.posted[0].bytes));
}

// --------------------------------------------------------------------------
// Keepalive probing and epoch-fenced reconnection.
// --------------------------------------------------------------------------

ReliabilityConfig keepalive_cfg() {
  auto cfg = deterministic_cfg();
  cfg.keepalive_enabled = true;
  cfg.keepalive_idle_ns = 5'000'000;  // 5 ms idle before the first probe
  cfg.probe_timeout_ns = 2'000'000;   // 2 ms per unanswered probe
  cfg.probe_max_misses = 3;
  return cfg;
}

ReliabilityConfig reconnect_cfg() {
  auto cfg = deterministic_cfg();
  cfg.reconnect_enabled = true;
  cfg.reconnect_backoff_ns = 1'000'000;
  cfg.reconnect_backoff_factor = 2.0;
  cfg.reconnect_backoff_max_ns = 8'000'000;
  cfg.reconnect_max_attempts = 5;  // finite: the harness timer wheel drains
  return cfg;
}

TEST(RailGuard, KeepaliveDetectsSilentDeathOnAnIdleRail) {
  GuardHarness h(keepalive_cfg());
  EXPECT_TRUE(h.guard.healthy());
  // Zero application traffic: the probe cycle alone must walk the rail
  // through healthy -> suspect -> dead. Timeline: probe at 5 ms, misses at
  // 7/9/11 ms (re-probing each time), death on the third miss.
  h.run_to(12'000'000);
  EXPECT_EQ(h.guard.state(), RailState::kDead);
  EXPECT_EQ(count_posted(h.drv, proto::kFrameProbe), 3u);
  ASSERT_GE(h.transitions.size(), 2u);
  EXPECT_EQ(h.transitions[h.transitions.size() - 2], RailState::kSuspect);
  EXPECT_EQ(h.transitions.back(), RailState::kDead);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.probes_sent.value(), 3u);
  }
  // Every probe is an envelope-only frame stamped with the live epoch.
  for (const auto& f : h.drv.posted) {
    EXPECT_EQ(f.bytes.size(), proto::kFrameEnvelopeBytes);
    const auto env = proto::decode_frame_envelope(f.bytes);
    ASSERT_TRUE(env.has_value());
    EXPECT_EQ(env->epoch, h.guard.epoch());
  }
}

TEST(RailGuard, ProbeReplyKeepsAnIdleRailHealthy) {
  GuardHarness h(keepalive_cfg());
  h.run_to(5'500'000);
  ASSERT_EQ(count_posted(h.drv, proto::kFrameProbe), 1u);
  // The peer answers: the rail is idle but alive, so no misses accumulate
  // and the next probe waits out a full idle window again.
  h.guard.on_frame(drv::Track::kSmall,
                   make_frame(0, 0, 0,
                              proto::kFrameAckOnly | proto::kFrameProbeReply,
                              h.guard.epoch()));
  h.run_to(9'000'000);
  EXPECT_TRUE(h.guard.healthy());
  EXPECT_EQ(count_posted(h.drv, proto::kFrameProbe), 1u);
  h.run_to(12'000'000);  // idle window expired again: probe #2
  EXPECT_EQ(count_posted(h.drv, proto::kFrameProbe), 2u);
  EXPECT_TRUE(h.guard.healthy());
}

TEST(RailGuard, IncomingProbeGetsAnImmediateReply) {
  GuardHarness h(deterministic_cfg());
  h.guard.on_frame(drv::Track::kSmall,
                   make_frame(0, 0, 0,
                              proto::kFrameAckOnly | proto::kFrameProbe));
  ASSERT_EQ(h.drv.posted.size(), 1u);
  const auto env = proto::decode_frame_envelope(h.drv.posted[0].bytes);
  ASSERT_TRUE(env.has_value());
  EXPECT_NE(env->flags & proto::kFrameProbeReply, 0);
  EXPECT_EQ(env->flags & proto::kFrameReconnect, 0);
  EXPECT_TRUE(h.delivered.empty());  // envelope-only: nothing to deliver
}

TEST(RailGuard, ReconnectHandshakeResurrectsADeadRail) {
  GuardHarness h(reconnect_cfg());
  h.guard.post(make_data_desc(), {});
  drv::RailError err;
  err.kind = drv::RailErrorKind::kPeerGone;
  err.track = drv::Track::kSmall;
  h.guard.on_driver_error(err);
  EXPECT_EQ(h.guard.state(), RailState::kDead);
  (void)h.guard.take_unacked();  // the scheduler's on_rail_dead would

  // First backoff tick: dead -> probing, a Reconnect proposing epoch 2.
  h.run_to(1'100'000);
  EXPECT_EQ(h.guard.state(), RailState::kProbing);
  ASSERT_GE(count_posted(h.drv, proto::kFrameReconnect), 1u);
  const auto env = proto::decode_frame_envelope(h.drv.posted.back().bytes);
  ASSERT_TRUE(env.has_value());
  EXPECT_NE(env->flags & proto::kFrameReconnect, 0);
  EXPECT_EQ(env->epoch, 2u);

  // While probing, data frames of the old incarnation are quiesced noise:
  // dropped silently, never delivered, never counted as protocol damage.
  h.guard.on_frame(drv::Track::kSmall, make_frame(1, 0, 0, 0, 1));
  EXPECT_TRUE(h.delivered.empty());
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.malformed_drops.value(), 0u);
  }

  // The peer's ack completes the handshake: healthy, epoch adopted.
  h.guard.on_frame(drv::Track::kSmall,
                   make_frame(0, 0, 0,
                              proto::kFrameAckOnly | proto::kFrameReconnectAck,
                              2));
  EXPECT_EQ(h.guard.state(), RailState::kHealthy);
  EXPECT_EQ(h.guard.epoch(), 2u);
  EXPECT_EQ(h.revived_calls, 1);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.reconnects.value(), 1u);
    EXPECT_EQ(h.guard.metrics.epoch.value(), 2);
  }
  // Sequencing restarted: the next data frame is seq 1 under epoch 2.
  h.guard.post(make_data_desc(), {});
  const auto env2 = proto::decode_frame_envelope(h.drv.posted.back().bytes);
  ASSERT_TRUE(env2.has_value());
  EXPECT_EQ(env2->seq, 1u);
  EXPECT_EQ(env2->epoch, 2u);
  // The peer acks it under the new epoch; the straggling backoff timer
  // then finds the rail alive and stands down.
  h.guard.on_frame(drv::Track::kSmall,
                   make_frame(0, /*ack_small=*/1, 0, proto::kFrameAckOnly, 2));
  EXPECT_EQ(h.guard.unacked_count(), 0u);
  h.run_to(1'000'000'000);
  EXPECT_EQ(h.guard.state(), RailState::kHealthy);
}

TEST(RailGuard, ReconnectGivesUpAfterMaxAttemptsAndStaysDead) {
  auto cfg = reconnect_cfg();
  cfg.reconnect_max_attempts = 2;
  GuardHarness h(cfg);
  drv::RailError err;
  err.kind = drv::RailErrorKind::kSendFailed;
  err.track = drv::Track::kLarge;
  h.guard.on_driver_error(err);
  h.run_to(1'000'000'000);  // nobody ever answers the Reconnect frames
  EXPECT_EQ(h.guard.state(), RailState::kDead);
  EXPECT_EQ(h.transitions.back(), RailState::kDead);
  EXPECT_EQ(count_posted(h.drv, proto::kFrameReconnect), 2u);
  EXPECT_TRUE(h.timers.empty());  // gave up: no timer left ticking
}

TEST(RailGuard, PeerInitiatedReconnectAdoptsEpochAndFencesStaleFrames) {
  // Passive adoption needs only the ack machinery — reconnect_enabled
  // governs who *initiates*, not who answers.
  GuardHarness h(deterministic_cfg());
  h.guard.post(make_data_desc(), {});  // one retained frame in epoch 1
  ASSERT_EQ(h.guard.unacked_count(), 1u);

  h.guard.on_frame(drv::Track::kSmall,
                   make_frame(0, 0, 0,
                              proto::kFrameAckOnly | proto::kFrameReconnect,
                              5));
  EXPECT_EQ(h.guard.state(), RailState::kHealthy);
  EXPECT_EQ(h.guard.epoch(), 5u);
  // The retained epoch-1 frame was surrendered for repost, not dropped.
  EXPECT_EQ(h.guard.unacked_count(), 0u);
  ASSERT_EQ(h.requeued.size(), 1u);
  EXPECT_EQ(h.credit_calls, 0);
  // A live endpoint adopting a new epoch is not a resurrection.
  EXPECT_EQ(h.revived_calls, 0);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.reconnects.value(), 0u);
  }
  // The adoption was acked with the new epoch.
  ASSERT_GE(count_posted(h.drv, proto::kFrameReconnectAck), 1u);
  const auto ack = proto::decode_frame_envelope(h.drv.posted.back().bytes);
  ASSERT_TRUE(ack.has_value());
  EXPECT_EQ(ack->epoch, 5u);

  // Epoch fencing: frames of the old incarnation die at the door, frames
  // of the new one (and unfenced raw frames) deliver.
  h.guard.on_frame(drv::Track::kSmall, make_frame(1, 0, 0, 0, 1));
  EXPECT_TRUE(h.delivered.empty());
  h.guard.on_frame(drv::Track::kSmall, make_frame(1, 0, 0, 0, 5));
  EXPECT_EQ(h.delivered.size(), 1u);
  h.guard.on_frame(drv::Track::kSmall, make_frame(2, 0, 0, 0, 0));
  EXPECT_EQ(h.delivered.size(), 2u);
  if (obs::kMetricsEnabled) {
    EXPECT_EQ(h.guard.metrics.stale_frames_dropped.value(), 1u);
  }

  // A duplicate Reconnect for the adopted epoch re-acks idempotently.
  const auto posts_before = h.drv.posted.size();
  h.guard.on_frame(drv::Track::kSmall,
                   make_frame(0, 0, 0,
                              proto::kFrameAckOnly | proto::kFrameReconnect,
                              5));
  EXPECT_EQ(h.guard.epoch(), 5u);
  EXPECT_EQ(h.drv.posted.size(), posts_before + 1);
  EXPECT_EQ(count_posted(h.drv, proto::kFrameReconnectAck), 2u);
}

// --------------------------------------------------------------------------
// Platform-level: the ack path on a clean (lossless) network.
// --------------------------------------------------------------------------

TEST(Reliability, CleanPlatformWithAcksIsRetransmitFree) {
  strat::StrategyConfig cfg;
  cfg.reliability.ack_enabled = true;
  TwoNodePlatform p(pin_serial(paper_platform("aggreg_greedy", cfg)));

  util::Xoshiro256 rng(31);
  std::vector<std::vector<std::byte>> payloads, sinks;
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (int i = 0; i < 12; ++i) {
    payloads.push_back(random_bytes(1 + rng.next_below(200000), 40 + i));
    sinks.emplace_back(payloads.back().size());
  }
  for (int i = 0; i < 12; ++i) {
    recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
  }
  for (int i = 0; i < 12; ++i) {
    sends.push_back(p.a().isend(p.gate_ab(), 0, payloads[i]));
  }
  p.a().wait_all(sends, recvs);
  for (int i = 0; i < 12; ++i) EXPECT_EQ(sinks[i], payloads[i]) << i;

  // Drain trailing delayed acks, then: nothing retained, nobody suspected,
  // and — the CI bench gate's invariant — zero retransmits without faults.
  p.world().engine().run();
  for (Session* s : {&p.a(), &p.b()}) {
    auto& gate = s->scheduler().gate(0);
    for (auto& rail : gate.rails()) {
      EXPECT_EQ(rail.guard.state(), RailState::kHealthy);
      EXPECT_EQ(rail.guard.unacked_count(), 0u);
      if (obs::kMetricsEnabled) {
        EXPECT_EQ(rail.guard.metrics.retransmits.value(), 0u);
        EXPECT_EQ(rail.guard.metrics.timeouts.value(), 0u);
        EXPECT_EQ(rail.guard.metrics.crc_drops.value(), 0u);
        EXPECT_EQ(rail.guard.metrics.state.value(), 0);
      }
    }
  }
  if (obs::kMetricsEnabled) {
    // The protocol actually ran: acks flowed back to the sender.
    std::uint64_t acked = 0;
    for (auto& rail : p.a().scheduler().gate(0).rails()) {
      acked += rail.guard.metrics.acks_received.value();
    }
    EXPECT_GT(acked, 0u);
  }
}

TEST(Reliability, DefaultConfigArmsNoTimersAndEmitsNoAcks) {
  TwoNodePlatform p(pin_serial(paper_platform("aggreg_greedy")));
  const auto payload = random_bytes(150000, 77);
  std::vector<std::byte> sink(payload.size());
  auto recv = p.b().irecv(p.gate_ba(), 2, sink);
  auto send = p.a().isend(p.gate_ab(), 2, payload);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(sink, payload);
  p.world().engine().run();
  for (Session* s : {&p.a(), &p.b()}) {
    for (auto& rail : s->scheduler().gate(0).rails()) {
      EXPECT_EQ(rail.guard.unacked_count(), 0u);
      if (obs::kMetricsEnabled) {
        EXPECT_EQ(rail.guard.metrics.acks_sent.value(), 0u);
        EXPECT_EQ(rail.guard.metrics.acks_received.value(), 0u);
        EXPECT_EQ(rail.guard.metrics.retransmits.value(), 0u);
      }
    }
  }
}

}  // namespace
