// Chrome trace export tests.
#include <gtest/gtest.h>

#include <filesystem>

#include "core/platform.hpp"
#include "sim/trace_export.hpp"

namespace {

using namespace nmad;
using namespace nmad::sim;

Trace make_trace() {
  Trace trace;
  trace.enable();
  trace.record(1000, "pio.start", "myri10g 128B");
  trace.record(2500, "pio.done", "myri10g");
  trace.record(3000, "dma.program", "quadrics 1000B");
  trace.record(4000, "dma.start", "quadrics 1000B");
  trace.record(9000, "dma.done", "quadrics");
  trace.record(9500, "deliver", "quadrics large 1000B");
  return trace;
}

TEST(TraceExport, PairsBecomeDurationEvents) {
  const std::string json = to_chrome_trace(make_trace());
  // One PIO duration of 1.5 us starting at 1 us.
  EXPECT_NE(json.find(R"("ph": "X", "ts": 1.000, "dur": 1.500)"), std::string::npos)
      << json;
  // One DMA duration of 5 us.
  EXPECT_NE(json.find(R"("dur": 5.000)"), std::string::npos);
  // Unpaired categories become instants.
  EXPECT_NE(json.find(R"("name": "deliver", "ph": "i")"), std::string::npos);
  EXPECT_NE(json.find(R"("name": "dma.program", "ph": "i")"), std::string::npos);
  // Valid JSON array shape (no trailing comma).
  EXPECT_EQ(json.front(), '[');
  EXPECT_NE(json.find("]\n"), std::string::npos);
  EXPECT_EQ(json.find(",\n]"), std::string::npos);
}

TEST(TraceExport, UnmatchedEndHandledGracefully) {
  Trace trace;
  trace.enable();
  trace.record(100, "pio.done", "myri10g");
  const std::string json = to_chrome_trace(trace);
  EXPECT_NE(json.find(R"("name": "pio.done", "ph": "i")"), std::string::npos);
}

TEST(TraceExport, EscapesJsonSpecials) {
  Trace trace;
  trace.enable();
  trace.record(1, "note", "say \"hi\"\\path");
  const std::string json = to_chrome_trace(trace);
  EXPECT_NE(json.find(R"(say \"hi\"\\path)"), std::string::npos);
}

TEST(TraceExport, EndToEndPlatformTraceIsWritable) {
  core::TwoNodePlatform p(core::pin_serial(core::paper_platform("split_balance")));
  p.world().trace().enable();
  std::vector<std::byte> payload(1 << 20, std::byte{1});
  std::vector<std::byte> sink(1 << 20);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  const std::string path =
      (std::filesystem::temp_directory_path() / "nmad_trace_test.json").string();
  ASSERT_TRUE(write_chrome_trace(p.world().trace(), path).has_value());
  EXPECT_GT(std::filesystem::file_size(path), 100u);
  std::filesystem::remove(path);

  EXPECT_FALSE(
      write_chrome_trace(p.world().trace(), "/nonexistent/dir/t.json").has_value());
}

}  // namespace
