// Analytic transfer-model tests, including cross-validation against the
// simulator: the closed forms must agree with isolated-rail measurements.
#include <gtest/gtest.h>

#include "core/platform.hpp"
#include "netmodel/transfer_model.hpp"
#include "sim/time.hpp"

namespace {

using namespace nmad;
using namespace nmad::netmodel;

TEST(TransferModel, MinimalEagerMatchesCalibration) {
  const TransferModel myri(myri10g());
  const TransferModel quad(quadrics_qm500());
  EXPECT_NEAR(myri.eager_us(0), 2.8, 1e-9);
  EXPECT_NEAR(quad.eager_us(0), 1.7, 1e-9);
}

TEST(TransferModel, MonotoneInSize) {
  const TransferModel model(myri10g());
  double prev = 0.0;
  for (std::uint64_t s = 1; s <= (1u << 24); s *= 4) {
    const double t = model.transfer_us(s);
    EXPECT_GT(t, prev) << s;
    prev = t;
  }
}

TEST(TransferModel, PathSwitchesAtPioThreshold) {
  const auto profile = myri10g();
  const TransferModel model(profile);
  EXPECT_DOUBLE_EQ(model.transfer_us(profile.pio_threshold),
                   model.eager_us(profile.pio_threshold));
  EXPECT_DOUBLE_EQ(model.transfer_us(profile.pio_threshold + 1),
                   model.rendezvous_us(profile.pio_threshold + 1));
  // The rendezvous handshake makes the bulk path more expensive right at
  // the boundary.
  EXPECT_GT(model.rendezvous_us(profile.pio_threshold),
            model.eager_us(profile.pio_threshold));
}

TEST(TransferModel, BulkCostMatchesDmaBandwidth) {
  const TransferModel model(quadrics_qm500());
  EXPECT_NEAR(model.bulk_cost_per_byte_us(), 1.0 / 858.0, 1e-12);
}

TEST(TransferModel, AgreesWithIsolatedSimulatorRuns) {
  // The analytic model and the simulator are independent implementations
  // of the same physics; on an isolated rail they must agree within a few
  // percent (the model ignores protocol headers).
  for (const auto& profile : {myri10g(), quadrics_qm500()}) {
    const TransferModel model(profile);
    core::PlatformConfig cfg;
    cfg.links = {profile};
    cfg.strategy = "single_rail";
    core::TwoNodePlatform p(core::pin_serial(std::move(cfg)));

    for (std::uint64_t size : {64ull, 4096ull, 262144ull, 4194304ull}) {
      std::vector<std::byte> payload(size, std::byte{0x77});
      std::vector<std::byte> sink(size);
      auto recv = p.b().irecv(p.gate_ba(), 0, sink);
      const sim::TimeNs t0 = p.now();
      auto send = p.a().isend(p.gate_ab(), 0, payload);
      p.b().wait(recv);
      p.a().wait(send);
      const double measured = sim::ns_to_us(recv->completion_time() - t0);
      const double predicted = model.transfer_us(size);
      EXPECT_NEAR(measured, predicted, predicted * 0.06 + 0.35)
          << profile.name << " size " << size;
    }
  }
}

}  // namespace
