// libFuzzer target for the frame decoder — the code that parses bytes a
// fault-injected (or hostile) wire hands to the RailGuard. The reliability
// layer's promise is that corrupt input is *dropped*, never trusted, so the
// decode path must be total: no crash, no UB, no overread on any input.
//
// Exercises, in the same order as RailGuard::on_frame:
//   1. decode_frame_envelope — fixed-field validation (size/magic/version/
//      ack-only length rules);
//   2. verify_frame_checksum — streaming CRC32C over arbitrary bytes,
//      deliberately run even when the envelope was rejected (the two checks
//      are independent defenses);
//   3. decode_packet over the post-envelope bytes — the packet parser the
//      guard's deliver upcall feeds.
//
// Build with -DNMAD_FUZZERS=ON (clang only); see tests/fuzz/CMakeLists.txt.
// Seed corpus: tests/fuzz/corpus/ (valid sealed frames plus edge shapes).
#include <cstddef>
#include <cstdint>
#include <span>

#include "proto/wire.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  const std::span<const std::byte> frame(
      reinterpret_cast<const std::byte*>(data), size);

  const auto env = nmad::proto::decode_frame_envelope(frame);
  const bool crc_ok = nmad::proto::verify_frame_checksum(frame);

  if (env.has_value() && crc_ok &&
      (env->flags & nmad::proto::kFrameAckOnly) == 0) {
    const auto packet = frame.subspan(nmad::proto::kFrameEnvelopeBytes);
    if (const auto decoded = nmad::proto::decode_packet(packet)) {
      // Touch every decoded span so ASan sees any overread.
      std::size_t sum = 0;
      for (const auto& seg : decoded->segments) {
        for (const std::byte b : seg.payload) sum += std::to_integer<unsigned>(b);
      }
      (void)sum;
    }
  }
  return 0;
}
