#!/usr/bin/env python3
"""Regenerate the seed corpus for fuzz_frame_decoder.

Emits a handful of structurally interesting frames into tests/fuzz/corpus/:
valid sealed frames (the fuzzer mutates from deep states instead of
rediscovering the magic/CRC by chance), plus rejected-shape seeds. Mirrors
the C++ wire format (proto/wire.hpp): all integers little-endian, frame =
20-byte envelope + encoded packet, CRC32C (Castagnoli) over the first 16
envelope bytes (the crc field itself is excluded) followed by the packet
bytes.
"""

import os
import struct

POLY = 0x82F63B78  # reflected Castagnoli


def crc32c(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ POLY if crc & 1 else crc >> 1
    return crc ^ 0xFFFFFFFF


def envelope(flags: int, seq: int, ack_small: int, ack_large: int,
             packet: bytes) -> bytes:
    head = struct.pack("<HBBIII", 0x464E, 1, flags, seq, ack_small, ack_large)
    crc = crc32c(head + packet)
    return head + struct.pack("<I", crc) + packet


def packet(kind: int, segments) -> bytes:
    payload_len = sum(len(p) for _, p in segments)
    out = struct.pack("<HBBHHII", 0x4D4E, 1, kind, len(segments), 0,
                      payload_len, 0)
    for header, _ in segments:
        out += struct.pack("<IIIII", *header)
    for _, payload in segments:
        out += payload
    return out


def main():
    corpus = os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")
    os.makedirs(corpus, exist_ok=True)

    # (tag, msg_seq, offset, len, total_len)
    seeds = {
        # Standalone ack: envelope-only, both cumulative acks set.
        "ack_only": envelope(1, 0, 7, 3, b""),
        # Sequenced single-segment data frame (the common case).
        "data_1seg": envelope(0, 1, 0, 0, packet(
            1, [((9, 2, 0, 24, 24), bytes(range(24)))])),
        # Aggregated frame: two segments from different messages.
        "data_2seg": envelope(0, 5, 2, 0, packet(
            1, [((1, 3, 0, 8, 8), b"A" * 8), ((4, 1, 16, 8, 32), b"B" * 8)])),
        # Rendezvous control frames (empty payload, total_len announced).
        "rdv_req": envelope(0, 2, 0, 0, packet(2, [((6, 1, 0, 0, 1 << 20), b"")])),
        "rdv_ack": envelope(0, 1, 0, 0, packet(3, [((6, 1, 0, 0, 0), b"")])),
        # Unsequenced frame (seq 0): the raw-driver-test shape.
        "unsequenced": envelope(0, 0, 0, 0, packet(
            1, [((0, 0, 0, 4, 4), b"\x01\x02\x03\x04")])),
    }
    # Rejected shapes keep the fuzzer exploring the failure paths too.
    seeds["bad_crc"] = bytearray(seeds["data_1seg"])
    seeds["bad_crc"][25] ^= 0x40
    seeds["truncated_envelope"] = seeds["data_1seg"][:13]

    for name, data in seeds.items():
        with open(os.path.join(corpus, name + ".bin"), "wb") as f:
            f.write(bytes(data))
        print(f"wrote corpus/{name}.bin ({len(data)} bytes)")


if __name__ == "__main__":
    main()
