#!/usr/bin/env python3
"""Regenerate the seed corpus for fuzz_frame_decoder.

Emits a handful of structurally interesting frames into tests/fuzz/corpus/:
valid sealed frames (the fuzzer mutates from deep states instead of
rediscovering the magic/CRC by chance), plus rejected-shape seeds. Mirrors
the C++ wire format (proto/wire.hpp): all integers little-endian, frame =
24-byte version-2 envelope (magic, version, flags, seq, ack_small,
ack_large, epoch, crc32c) + encoded packet, CRC32C (Castagnoli) over the
envelope with the crc field zeroed followed by the packet bytes.
"""

import os
import struct

POLY = 0x82F63B78  # reflected Castagnoli


def crc32c(data: bytes) -> int:
    crc = 0xFFFFFFFF
    for byte in data:
        crc ^= byte
        for _ in range(8):
            crc = (crc >> 1) ^ POLY if crc & 1 else crc >> 1
    return crc ^ 0xFFFFFFFF


def envelope(flags: int, seq: int, ack_small: int, ack_large: int,
             packet: bytes, epoch: int = 0) -> bytes:
    head = struct.pack("<HBBIIII", 0x464E, 2, flags, seq, ack_small,
                       ack_large, epoch)
    crc = crc32c(head + packet)
    return head + struct.pack("<I", crc) + packet


def packet(kind: int, segments) -> bytes:
    payload_len = sum(len(p) for _, p in segments)
    out = struct.pack("<HBBHHII", 0x4D4E, 1, kind, len(segments), 0,
                      payload_len, 0)
    for header, _ in segments:
        out += struct.pack("<IIIII", *header)
    for _, payload in segments:
        out += payload
    return out


# Envelope flag bits (proto/wire.hpp FrameFlags).
ACK_ONLY = 1 << 0
PROBE = 1 << 1
PROBE_REPLY = 1 << 2
RECONNECT = 1 << 3
RECONNECT_ACK = 1 << 4


def main():
    corpus = os.path.join(os.path.dirname(os.path.abspath(__file__)), "corpus")
    os.makedirs(corpus, exist_ok=True)

    # (tag, msg_seq, offset, len, total_len)
    seeds = {
        # Standalone ack: envelope-only, both cumulative acks set.
        "ack_only": envelope(ACK_ONLY, 0, 7, 3, b""),
        # Sequenced single-segment data frame (the common case).
        "data_1seg": envelope(0, 1, 0, 0, packet(
            1, [((9, 2, 0, 24, 24), bytes(range(24)))])),
        # Aggregated frame: two segments from different messages.
        "data_2seg": envelope(0, 5, 2, 0, packet(
            1, [((1, 3, 0, 8, 8), b"A" * 8), ((4, 1, 16, 8, 32), b"B" * 8)])),
        # Rendezvous control frames (empty payload, total_len announced).
        "rdv_req": envelope(0, 2, 0, 0, packet(2, [((6, 1, 0, 0, 1 << 20), b"")])),
        "rdv_ack": envelope(0, 1, 0, 0, packet(3, [((6, 1, 0, 0, 0), b"")])),
        # Unsequenced frame (seq 0): the raw-driver-test shape.
        "unsequenced": envelope(0, 0, 0, 0, packet(
            1, [((0, 0, 0, 4, 4), b"\x01\x02\x03\x04")])),
        # Epoch-fenced data frame: a resurrected rail's second life.
        "data_epoch2": envelope(0, 1, 0, 0, packet(
            1, [((3, 1, 0, 8, 8), b"E" * 8)]), epoch=2),
        # Keepalive probe and its reply (envelope-only, epoch-stamped).
        "probe": envelope(ACK_ONLY | PROBE, 0, 4, 2, b"", epoch=1),
        "probe_reply": envelope(ACK_ONLY | PROBE_REPLY, 0, 4, 2, b"", epoch=1),
        # Reconnect handshake pair: the initiator proposes epoch+1, the
        # receiver adopts and acks it.
        "reconnect": envelope(ACK_ONLY | RECONNECT, 0, 0, 0, b"", epoch=3),
        "reconnect_ack": envelope(ACK_ONLY | RECONNECT_ACK, 0, 0, 0, b"",
                                  epoch=3),
    }
    # Rejected shapes keep the fuzzer exploring the failure paths too.
    seeds["bad_crc"] = bytearray(seeds["data_1seg"])
    seeds["bad_crc"][29] ^= 0x40
    seeds["truncated_envelope"] = seeds["data_1seg"][:13]
    # Control flags without kFrameAckOnly are malformed (decode rejects
    # handshake/probe bits on frames that claim to carry a packet).
    seeds["probe_without_ackonly"] = envelope(PROBE, 0, 0, 0, b"", epoch=1)
    # Handshake frames must be envelope-only: a reconnect dragging a
    # payload behind it is rejected.
    seeds["reconnect_with_payload"] = envelope(
        ACK_ONLY | RECONNECT, 0, 0, 0, packet(
            1, [((1, 1, 0, 4, 4), b"\xde\xad\xbe\xef")]), epoch=2)

    for name, data in seeds.items():
        with open(os.path.join(corpus, name + ".bin"), "wb") as f:
            f.write(bytes(data))
        print(f"wrote corpus/{name}.bin ({len(data)} bytes)")


if __name__ == "__main__":
    main()
