// Unit tests for the discrete-event engine: event ordering, cancellation,
// run modes, and the serial (CPU) resource.
#include <gtest/gtest.h>

#include <vector>

#include "sim/engine.hpp"
#include "sim/serial_resource.hpp"

namespace {

using namespace nmad::sim;

TEST(EventQueue, FiresInTimeOrder) {
  Engine engine;
  std::vector<int> order;
  engine.schedule(30, [&] { order.push_back(3); });
  engine.schedule(10, [&] { order.push_back(1); });
  engine.schedule(20, [&] { order.push_back(2); });
  engine.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(engine.now(), 30);
}

TEST(EventQueue, TiesFireInScheduleOrder) {
  Engine engine;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    engine.schedule(5, [&order, i] { order.push_back(i); });
  }
  engine.run();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(EventQueue, CancelPreventsFiring) {
  Engine engine;
  int fired = 0;
  const EventId id = engine.schedule(10, [&] { ++fired; });
  engine.schedule(20, [&] { ++fired; });
  EXPECT_TRUE(engine.cancel(id));
  EXPECT_FALSE(engine.cancel(id));  // double cancel
  engine.run();
  EXPECT_EQ(fired, 1);
}

TEST(EventQueue, CancelledHeadDoesNotBlockNextTime) {
  Engine engine;
  int fired = 0;
  const EventId early = engine.schedule(1, [&] { ++fired; });
  engine.schedule(5, [&] { ++fired; });
  engine.cancel(early);
  EXPECT_TRUE(engine.step());
  EXPECT_EQ(engine.now(), 5);
  EXPECT_EQ(fired, 1);
}

TEST(Engine, EventsCanScheduleEvents) {
  Engine engine;
  std::vector<TimeNs> stamps;
  engine.schedule(10, [&] {
    stamps.push_back(engine.now());
    engine.schedule(5, [&] { stamps.push_back(engine.now()); });
  });
  engine.run();
  EXPECT_EQ(stamps, (std::vector<TimeNs>{10, 15}));
}

TEST(Engine, RunUntilStopsAtPredicate) {
  Engine engine;
  int count = 0;
  for (int i = 1; i <= 10; ++i) {
    engine.schedule(i * 10, [&] { ++count; });
  }
  const bool satisfied = engine.run_until([&] { return count == 3; });
  EXPECT_TRUE(satisfied);
  EXPECT_EQ(count, 3);
  EXPECT_EQ(engine.now(), 30);
  engine.run();
  EXPECT_EQ(count, 10);
}

TEST(Engine, RunUntilReturnsFalseWhenDrained) {
  Engine engine;
  engine.schedule(10, [] {});
  EXPECT_FALSE(engine.run_until([] { return false; }));
}

TEST(Engine, RunForAdvancesClockEvenWithoutEvents) {
  Engine engine;
  engine.run_for(1000);
  EXPECT_EQ(engine.now(), 1000);
  int fired = 0;
  engine.schedule(500, [&] { ++fired; });
  engine.schedule(5000, [&] { ++fired; });
  engine.run_for(1000);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(engine.now(), 2000);
}

TEST(Engine, CountsFiredEvents) {
  Engine engine;
  for (int i = 0; i < 7; ++i) engine.schedule(i, [] {});
  engine.run();
  EXPECT_EQ(engine.events_fired(), 7u);
  EXPECT_TRUE(engine.idle());
}

// --- SerialResource ---------------------------------------------------------

TEST(SerialResource, JobsSerializeFifo) {
  Engine engine;
  SerialResource cpu(engine, 1, "cpu");
  std::vector<TimeNs> completions;
  cpu.acquire(100, [&] { completions.push_back(engine.now()); });
  cpu.acquire(50, [&] { completions.push_back(engine.now()); });
  cpu.acquire(25, [&] { completions.push_back(engine.now()); });
  engine.run();
  EXPECT_EQ(completions, (std::vector<TimeNs>{100, 150, 175}));
  EXPECT_EQ(cpu.total_busy(), 175);
}

TEST(SerialResource, CapacityTwoOverlaps) {
  Engine engine;
  SerialResource cpu(engine, 2, "cpu2");
  std::vector<TimeNs> completions;
  cpu.acquire(100, [&] { completions.push_back(engine.now()); });
  cpu.acquire(100, [&] { completions.push_back(engine.now()); });
  cpu.acquire(100, [&] { completions.push_back(engine.now()); });
  engine.run();
  EXPECT_EQ(completions, (std::vector<TimeNs>{100, 100, 200}));
}

TEST(SerialResource, SaturationReflectsQueue) {
  Engine engine;
  SerialResource cpu(engine, 1, "cpu");
  EXPECT_FALSE(cpu.saturated());
  EXPECT_EQ(cpu.earliest_start(), 0);
  cpu.acquire(100, [] {});
  EXPECT_TRUE(cpu.saturated());
  EXPECT_EQ(cpu.earliest_start(), 100);
  engine.run();  // advances the clock to the job's completion
  EXPECT_FALSE(cpu.saturated());
}

TEST(SerialResource, LateSubmissionStartsAtNow) {
  Engine engine;
  SerialResource cpu(engine, 1, "cpu");
  engine.schedule(500, [&] {
    const TimeNs done = cpu.acquire(10, nullptr);
    EXPECT_EQ(done, 510);
  });
  engine.run();
}

TEST(SerialResource, ZeroDurationJobCompletesImmediately) {
  Engine engine;
  SerialResource cpu(engine, 1, "cpu");
  TimeNs at = -1;
  cpu.acquire(0, [&] { at = engine.now(); });
  engine.run();
  EXPECT_EQ(at, 0);
}

}  // namespace
