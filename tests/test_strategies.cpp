// Strategy-policy tests: each built-in optimizing scheduler is checked for
// the *decisions* it makes (which rail, aggregated or not, split sizes),
// observed through per-rail transmit statistics — not just for data
// integrity.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "core/platform.hpp"
#include "drv/sim_driver.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
  util::Xoshiro256 rng(seed);
  std::vector<std::byte> out(n);
  for (auto& b : out) b = std::byte(rng.next() & 0xff);
  return out;
}

/// Round-trip `count` messages of `size` bytes a->b under `strategy`;
/// returns the platform for stats inspection.
std::unique_ptr<TwoNodePlatform> run_burst(const std::string& strategy,
                                           std::size_t count, std::size_t size,
                                           strat::StrategyConfig cfg = {}) {
  PlatformConfig pc = paper_platform(strategy, cfg);
  auto p = std::make_unique<TwoNodePlatform>(pin_serial(std::move(pc)));
  const auto payload = random_bytes(size, size + count);
  std::vector<std::vector<std::byte>> sinks(count, std::vector<std::byte>(size));
  std::vector<RecvHandle> recvs;
  std::vector<SendHandle> sends;
  for (std::size_t i = 0; i < count; ++i) {
    recvs.push_back(p->b().irecv(p->gate_ba(), 0, sinks[i]));
  }
  for (std::size_t i = 0; i < count; ++i) {
    sends.push_back(p->a().isend(p->gate_ab(), 0, payload));
  }
  p->b().wait_all(sends, recvs);
  for (auto& s : sinks) EXPECT_EQ(s, payload);
  return p;
}

TEST(StrategySingleRail, UsesOnlyConfiguredRail) {
  for (RailIndex rail : {0u, 1u}) {
    strat::StrategyConfig cfg;
    cfg.rail = rail;
    auto p = run_burst("single_rail", 4, 2000, cfg);
    auto& gate = p->a().scheduler().gate(p->gate_ab());
    const RailIndex other = 1 - rail;
    EXPECT_EQ(gate.rail(rail).tx.packets[0], 4u) << "rail " << rail;
    EXPECT_EQ(gate.rail(other).tx.packets[0], 0u);
    EXPECT_EQ(gate.rail(other).tx.packets[1], 0u);
  }
}

TEST(StrategySingleRail, LargeMessagesStayOnConfiguredRail) {
  strat::StrategyConfig cfg;
  cfg.rail = 1;
  auto p = run_burst("single_rail", 2, 500000, cfg);
  EXPECT_EQ(p->rails_a()[0]->stats().dma_packets, 0u);
  EXPECT_EQ(p->rails_a()[1]->stats().dma_packets, 2u);
}

TEST(StrategyAggreg, CoalescesBurstIntoFewPackets) {
  auto no_agg = run_burst("single_rail", 16, 64);
  auto agg = run_burst("aggreg", 16, 64);
  const auto pkts = [](TwoNodePlatform& p) {
    auto& gate = p.a().scheduler().gate(p.gate_ab());
    return gate.rail(0).tx.packets[0] + gate.rail(1).tx.packets[0];
  };
  EXPECT_EQ(pkts(*no_agg), 16u);
  EXPECT_EQ(pkts(*agg), 1u);
}

TEST(StrategyAggreg, RespectsPayloadBudget) {
  // 16 x 1 KB = 16 KB total, but the eager packet budget is 8 KB: the
  // strategy must emit at least two packets and never an oversized one.
  auto p = run_burst("aggreg", 16, 1024);
  auto& gate = p->a().scheduler().gate(p->gate_ab());
  const auto packets = gate.rail(0).tx.packets[0];
  EXPECT_GE(packets, 2u);
  EXPECT_LE(packets, 4u);
  EXPECT_EQ(gate.rail(0).tx.segments, 16u);
}

TEST(StrategyAggreg, AggregationLimitConfigurable) {
  strat::StrategyConfig cfg;
  cfg.aggregation_limit = 128;  // essentially disable aggregation
  auto p = run_burst("aggreg", 8, 100, cfg);
  auto& gate = p->a().scheduler().gate(p->gate_ab());
  EXPECT_EQ(gate.rail(0).tx.packets[0], 8u);  // one packet per message
}

TEST(StrategyGreedy, BalancesSmallMessagesAcrossRails) {
  auto p = run_burst("greedy", 8, 2000);
  auto& gate = p->a().scheduler().gate(p->gate_ab());
  // Both rails carried eager packets; nothing aggregated.
  EXPECT_GT(gate.rail(0).tx.packets[0], 0u);
  EXPECT_GT(gate.rail(1).tx.packets[0], 0u);
  EXPECT_EQ(gate.rail(0).tx.packets[0] + gate.rail(1).tx.packets[0], 8u);
}

TEST(StrategyGreedy, BalancesLargeMessagesWholeAcrossRails) {
  auto p = run_burst("greedy", 4, 400000);
  auto& gate = p->a().scheduler().gate(p->gate_ab());
  // Whole messages, one DMA packet each, spread over both rails.
  EXPECT_EQ(gate.rail(0).tx.packets[1] + gate.rail(1).tx.packets[1], 4u);
  EXPECT_GT(gate.rail(0).tx.packets[1], 0u);
  EXPECT_GT(gate.rail(1).tx.packets[1], 0u);
}

TEST(StrategyAggregGreedy, SmallTrafficStaysOnFastestRail) {
  auto p = run_burst("aggreg_greedy", 8, 64);
  auto& gate = p->a().scheduler().gate(p->gate_ab());
  EXPECT_EQ(gate.rail(0).tx.packets[0], 0u);  // myri carries nothing eager
  EXPECT_EQ(gate.rail(1).tx.packets[0], 1u);  // one aggregated packet on quadrics
  EXPECT_EQ(gate.rail(1).tx.segments, 8u);
}

TEST(StrategyAggregGreedy, LargeTrafficUsesBothRails) {
  auto p = run_burst("aggreg_greedy", 4, 400000);
  EXPECT_GT(p->rails_a()[0]->stats().dma_packets, 0u);
  EXPECT_GT(p->rails_a()[1]->stats().dma_packets, 0u);
}

TEST(StrategySplitBalance, SplitsOneLargeMessageByRatio) {
  PlatformConfig pc = paper_platform("split_balance");
  TwoNodePlatform p(pin_serial(std::move(pc)));
  p.a().scheduler().gate(p.gate_ab()).set_ratios({0.75, 0.25});

  const std::size_t size = 1 << 20;
  const auto payload = random_bytes(size, 42);
  std::vector<std::byte> sink(size);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_EQ(sink, payload);

  auto& gate = p.a().scheduler().gate(p.gate_ab());
  EXPECT_EQ(gate.rail(0).tx.packets[1], 1u);
  EXPECT_EQ(gate.rail(1).tx.packets[1], 1u);
  const double myri_share =
      static_cast<double>(gate.rail(0).tx.payload_bytes[1]) / size;
  EXPECT_NEAR(myri_share, 0.75, 0.01);
}

TEST(StrategyIsoSplit, SplitsEvenRegardlessOfRatios) {
  PlatformConfig pc = paper_platform("iso_split");
  TwoNodePlatform p(pin_serial(std::move(pc)));
  p.a().scheduler().gate(p.gate_ab()).set_ratios({0.9, 0.1});  // must be ignored

  const std::size_t size = 1 << 20;
  const auto payload = random_bytes(size, 43);
  std::vector<std::byte> sink(size);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  auto& gate = p.a().scheduler().gate(p.gate_ab());
  const double myri_share =
      static_cast<double>(gate.rail(0).tx.payload_bytes[1]) / size;
  EXPECT_NEAR(myri_share, 0.5, 0.01);
}

TEST(StrategySplitBalance, NeverCreatesSubThresholdChunks) {
  // A message just above the split viability limit: both chunks must stay
  // above min_chunk, or the message must not be split at all.
  for (std::size_t size : {16u * 1024 + 100u, 20u * 1024, 64u * 1024}) {
    PlatformConfig pc = paper_platform("split_balance");
    TwoNodePlatform p(pin_serial(std::move(pc)));
    const auto payload = random_bytes(size, size);
    std::vector<std::byte> sink(size);
    auto recv = p.b().irecv(p.gate_ba(), 0, sink);
    auto send = p.a().isend(p.gate_ab(), 0, payload);
    p.b().wait(recv);
    p.a().wait(send);
    EXPECT_EQ(sink, payload);

    auto& gate = p.a().scheduler().gate(p.gate_ab());
    const auto min_chunk = gate.config().min_chunk;
    for (auto rail_idx : {0u, 1u}) {
      auto& rail = gate.rail(rail_idx);
      if (rail.tx.packets[1] > 0) {
        EXPECT_GE(rail.tx.payload_bytes[1] / rail.tx.packets[1], min_chunk)
            << "size " << size << " rail " << rail_idx;
      }
    }
  }
}

TEST(StrategySplitBalance, FallsBackToWholeTransferWhenOneRailBusy) {
  // Two large messages submitted together: the first grabs both DMA tracks
  // (split); the second is granted while they are busy and must go whole to
  // the first free NIC — the paper's closing recipe.
  auto p = run_burst("split_balance", 2, 1 << 20);
  auto& gate = p->a().scheduler().gate(p->gate_ab());
  // 2 chunks for message 1 + 1 whole transfer for message 2 = 3 DMA packets.
  EXPECT_EQ(gate.rail(0).tx.packets[1] + gate.rail(1).tx.packets[1], 3u);
}

TEST(StrategyRegistry, NamesConstructAllStrategies) {
  EXPECT_EQ(strat::strategy_names().size(), 6u);
  for (std::string_view name : strat::strategy_names()) {
    auto s = strat::make_strategy(name);
    ASSERT_NE(s, nullptr);
    EXPECT_EQ(s->name(), name);
    EXPECT_FALSE(s->has_backlog());
  }
}

TEST(StrategyConfigDefaults, MatchPaperValues) {
  const strat::StrategyConfig cfg;
  EXPECT_EQ(cfg.aggregation_limit, 16u * 1024);
  EXPECT_EQ(cfg.min_chunk, 8u * 1024 + 1);
  EXPECT_EQ(cfg.rail, 0u);
}

}  // namespace
