// Soak test: enough traffic to cross the scheduler's completed-request
// sweep threshold (4096 live handles) several times, in waves, verifying
// the engine stays correct and bounded over a long virtual run.
#include <gtest/gtest.h>

#include <mutex>
#include <vector>

#include "core/platform.hpp"
#include "util/rng.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

TEST(Soak, TenThousandMessagesInWaves) {
  TwoNodePlatform p(paper_platform("aggreg_greedy"));
  util::Xoshiro256 rng(0x50a4);

  constexpr int kWaves = 25;
  constexpr int kPerWave = 400;  // 10k messages total

  std::uint64_t total_bytes = 0;
  for (int wave = 0; wave < kWaves; ++wave) {
    std::vector<std::vector<std::byte>> payloads(kPerWave);
    std::vector<std::vector<std::byte>> sinks(kPerWave);
    std::vector<RecvHandle> recvs;
    std::vector<SendHandle> sends;
    recvs.reserve(kPerWave);
    sends.reserve(kPerWave);

    for (int i = 0; i < kPerWave; ++i) {
      const std::size_t size = rng.next_below(4000);
      payloads[i].resize(size);
      for (auto& b : payloads[i]) b = std::byte(rng.next() & 0xff);
      sinks[i].assign(size, std::byte{0});
      total_bytes += size;
    }
    for (int i = 0; i < kPerWave; ++i) {
      recvs.push_back(p.b().irecv(p.gate_ba(), 0, sinks[i]));
    }
    for (int i = 0; i < kPerWave; ++i) {
      sends.push_back(p.a().isend(p.gate_ab(), 0, payloads[i]));
    }
    p.b().wait_all(sends, recvs);
    for (int i = 0; i < kPerWave; ++i) {
      ASSERT_EQ(sinks[i], payloads[i]) << "wave " << wave << " msg " << i;
    }
  }

  EXPECT_GT(total_bytes, 10'000'000u);
  // The run must have made sensible virtual progress (not stuck at 0, not
  // runaway): ~20 MB of mostly-aggregated eager traffic.
  EXPECT_GT(p.now(), sim::us_to_ns(1000.0));
  {
    // The world progress mutex serializes these drain checks against any
    // live progress threads (threaded mode); no-op contention in serial.
    std::lock_guard<std::mutex> lock(p.world().progress_mutex());
    EXPECT_EQ(p.a().scheduler().pending_requests(), 0u);
    EXPECT_EQ(p.b().scheduler().pending_requests(), 0u);
    p.world().engine().run();
    EXPECT_TRUE(p.world().engine().idle());
  }
}

}  // namespace
