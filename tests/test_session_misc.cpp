// Session-level odds and ends: test(), scatter receives shorter than the
// registered segments, the sampling cache wiring, and deadlock detection.
#include <gtest/gtest.h>

#include <filesystem>
#include <stdexcept>

#include "core/platform.hpp"
#include "sampling/ratio_table.hpp"
#include "util/panic.hpp"

namespace {

using namespace nmad;
using namespace nmad::core;

TEST(Session, TestReflectsCompletion) {
  TwoNodePlatform p(paper_platform("single_rail"));
  std::vector<std::byte> payload(100, std::byte{1});
  std::vector<std::byte> sink(100);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  EXPECT_FALSE(Session::test(send));
  EXPECT_FALSE(Session::test(recv));
  p.b().wait(recv);
  p.a().wait(send);
  EXPECT_TRUE(Session::test(send));
  EXPECT_TRUE(Session::test(recv));
}

TEST(Session, UnpackScattersShorterMessageIntoLeadingSegments) {
  // The sender ships 150 bytes; the receiver registered 100+100. The first
  // segment fills fully, the second only halfway.
  TwoNodePlatform p(paper_platform("single_rail"));
  std::vector<std::byte> payload(150, std::byte{0x5e});
  std::vector<std::byte> out1(100, std::byte{0}), out2(100, std::byte{0});

  auto unpack = p.b().unpack(p.gate_ba(), 0);
  unpack.add(out1).add(out2);
  auto recv = unpack.submit();
  auto send = p.a().isend(p.gate_ab(), 0, payload);
  p.b().wait(recv);
  p.a().wait(send);

  EXPECT_EQ(recv->received_len(), 150u);
  EXPECT_EQ(out1, std::vector<std::byte>(100, std::byte{0x5e}));
  EXPECT_TRUE(std::equal(out2.begin(), out2.begin() + 50,
                         std::vector<std::byte>(50, std::byte{0x5e}).begin()));
  EXPECT_EQ(out2[50], std::byte{0});  // beyond the message: untouched
}

TEST(Session, SamplingCacheWrittenAndReused) {
  namespace fs = std::filesystem;
  const std::string path =
      (fs::temp_directory_path() / "nmad_platform_cache_test.txt").string();
  std::error_code ec;
  fs::remove(path, ec);

  // First platform: measures and writes the cache.
  {
    PlatformConfig cfg = paper_platform("split_balance");
    cfg.sampled_ratios = true;
    cfg.sampling_cache_path = path;
    TwoNodePlatform p(std::move(cfg));
    EXPECT_NEAR(p.a().scheduler().gate(p.gate_ab()).ratio(0), 0.585, 0.02);
  }
  ASSERT_TRUE(fs::exists(path));

  // Replace the cache with distinguishable fake ratios: a second platform
  // must *load* them instead of re-measuring.
  {
    auto table = sampling::RatioTable::parse(
        "# nmad sampling cache v1\n"
        "myri10g 2.8 10.0 1.0e-03 1.0\n"     // 1000 MB/s
        "quadrics 1.7 10.0 1.0e-03 1.0\n");  // 1000 MB/s -> 50/50 ratios
    ASSERT_TRUE(table.has_value());
    ASSERT_TRUE(table->save(path).has_value());

    PlatformConfig cfg = paper_platform("split_balance");
    cfg.sampled_ratios = true;
    cfg.sampling_cache_path = path;
    TwoNodePlatform p(std::move(cfg));
    EXPECT_NEAR(p.a().scheduler().gate(p.gate_ab()).ratio(0), 0.5, 1e-9);
  }

  // A cache with the wrong rail count is ignored (re-measured).
  {
    auto table = sampling::RatioTable::parse(
        "# nmad sampling cache v1\n"
        "myri10g 2.8 10.0 1.0e-03 1.0\n");
    ASSERT_TRUE(table.has_value());
    ASSERT_TRUE(table->save(path).has_value());

    PlatformConfig cfg = paper_platform("split_balance");
    cfg.sampled_ratios = true;
    cfg.sampling_cache_path = path;
    TwoNodePlatform p(std::move(cfg));
    EXPECT_NEAR(p.a().scheduler().gate(p.gate_ab()).ratio(0), 0.585, 0.02);
  }
  fs::remove(path, ec);
}

TEST(Session, WaitOnUnmatchableRequestPanics) {
  util::set_panic_hook(+[](std::string_view msg) {
    throw std::runtime_error(std::string(msg));
  });
  TwoNodePlatform p(paper_platform("single_rail"));
  std::vector<std::byte> sink(10);
  auto recv = p.b().irecv(p.gate_ba(), 0, sink);
  // Nobody ever sends: the engine drains and wait() must detect the
  // deadlock rather than spin or return silently.
  EXPECT_THROW(p.b().wait(recv), std::runtime_error);
  util::set_panic_hook(nullptr);
}

}  // namespace
