#!/usr/bin/env python3
"""Keep docs/METRICS.md in lock-step with the metrics the source registers.

Source side: every line in src/ that calls ``registry.add(...)``,
``registry.add_raw(...)`` or ``registry.label(...)`` names its metric in the
last string literal on the line (the prefix part is runtime-composed, the
leaf name is always a literal). Those literals are the ground truth.

Doc side: docs/METRICS.md documents metrics as backticked tokens inside
markdown table rows (lines starting with '|'). Tokens may carry placeholder
path components like ``rail<R>.`` or ``gate<G>.``; placeholders are
stripped before matching.

A doc token matches a source literal when, after placeholder stripping, it
equals the literal or ends with ``"." + literal`` or ``"_" + literal``
(pools register composite prefixes like ``pool.header_`` + ``hits``, so the
documented name is ``pool.header_hits``).

Failure modes:
  * a registered metric no metric-table row covers  -> docs are stale;
  * a documented token no registration site matches -> docs list a ghost.

Usage: check_metrics_docs.py [repo_root]   (defaults to the checkout root)
"""

import pathlib
import re
import sys

REGISTER_RE = re.compile(r"registry\.(?:add|add_raw|label)\(")
LITERAL_RE = re.compile(r'"([^"]*)"')
DOC_TOKEN_RE = re.compile(r"`([A-Za-z0-9_.<>]+)`")
PLACEHOLDER_RE = re.compile(r"<[A-Za-z]+>")


def source_metrics(src_root):
    """Map of metric-name literal -> list of 'file:line' registration sites."""
    names = {}
    for path in sorted(src_root.rglob("*.cpp")) + sorted(src_root.rglob("*.hpp")):
        for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), 1):
            if not REGISTER_RE.search(line):
                continue
            literals = LITERAL_RE.findall(line)
            if not literals or not literals[-1]:
                continue
            where = f"{path.relative_to(src_root.parent)}:{lineno}"
            names.setdefault(literals[-1], []).append(where)
    return names


def doc_tokens(doc_path):
    """Map of backticked table token -> list of line numbers."""
    tokens = {}
    for lineno, line in enumerate(
            doc_path.read_text(encoding="utf-8").splitlines(), 1):
        if not line.lstrip().startswith("|"):
            continue
        for token in DOC_TOKEN_RE.findall(line):
            tokens.setdefault(token, []).append(lineno)
    return tokens


def matches(token, literal):
    stripped = PLACEHOLDER_RE.sub("", token)
    return (stripped == literal
            or stripped.endswith("." + literal)
            or stripped.endswith("_" + literal))


def main(argv):
    root = pathlib.Path(argv[1]) if len(argv) > 1 else \
        pathlib.Path(__file__).resolve().parent.parent
    src_root = root / "src"
    doc_path = root / "docs" / "METRICS.md"
    if not src_root.is_dir() or not doc_path.is_file():
        print(f"FAIL cannot find {src_root} or {doc_path}", file=sys.stderr)
        return 2

    registered = source_metrics(src_root)
    documented = doc_tokens(doc_path)
    if not registered:
        print("FAIL no registration sites found in src/ (checker broken?)",
              file=sys.stderr)
        return 2
    if not documented:
        print(f"FAIL no backticked table tokens found in {doc_path}",
              file=sys.stderr)
        return 2

    failures = []
    for literal, sites in sorted(registered.items()):
        if not any(matches(token, literal) for token in documented):
            failures.append(
                f"metric '{literal}' (registered at {sites[0]}) is not "
                f"documented in {doc_path.name}")
    for token, lines in sorted(documented.items()):
        if not any(matches(token, literal) for literal in registered):
            failures.append(
                f"{doc_path.name}:{lines[0]}: documented metric '{token}' "
                "matches no registration site in src/")

    for msg in failures:
        print(f"FAIL {msg}", file=sys.stderr)
    if not failures:
        print(f"OK   {len(registered)} registered metrics, "
              f"{len(documented)} documented tokens, all in sync")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
